GO ?= go

.PHONY: check build test vet race bench

# check is the pre-PR gate: vet, build everything, the full test suite,
# then the suite again under the race detector in short mode (the soak
# tests run in full mode; the parallel worker paths run under -race).
check: ; ./scripts/check.sh

build: ; $(GO) build ./...

vet: ; $(GO) vet ./...

test: ; $(GO) test ./...

race: ; $(GO) test -race ./...

bench: ; $(GO) test -bench=. -benchmem ./...
