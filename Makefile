GO ?= go

.PHONY: check build test vet vet-concurrency nexvet race bench

# check is the pre-PR gate: vet, build everything, the full test suite,
# then the suite again under the race detector in short mode (the soak
# tests run in full mode; the parallel worker paths run under -race).
check: ; ./scripts/check.sh

build: ; $(GO) build ./...

# vet runs the toolchain's vet, then the project analyzers (NV001-NV008)
# through both the -vettool protocol and the standalone stale-baseline run.
vet: nexvet
	$(GO) vet ./...
	$(GO) vet -vettool=bin/nexvet ./...
	./bin/nexvet ./...

# vet-concurrency runs only the concurrency-discipline analyzers (goroutine
# lifecycle, channel ownership, lock-guard consistency) — the fast loop
# while working on goroutine code, without the frame/I-O/determinism sweeps.
vet-concurrency: nexvet
	./bin/nexvet -only NV006,NV007,NV008 ./...

# nexvet builds the invariant checker; the Go build cache keeps this
# incremental, so repeated `make vet` pays nothing when it is unchanged.
nexvet: ; $(GO) build -o bin/nexvet ./cmd/nexvet

test: ; $(GO) test ./...

race: ; $(GO) test -race ./...

bench: ; $(GO) test -bench=. -benchmem ./...
