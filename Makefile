GO ?= go

.PHONY: check build test vet race bench

# check is the pre-PR gate: vet, build everything, then the test suite
# with the race detector in short mode (the soak tests run in full mode).
check: ; ./scripts/check.sh

build: ; $(GO) build ./...

vet: ; $(GO) vet ./...

test: ; $(GO) test ./...

race: ; $(GO) test -race ./...

bench: ; $(GO) test -bench=. -benchmem ./...
