package nexsort

import (
	"bufio"
	"crypto/sha256"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// TestLargeDocumentEndToEnd is the soak test: a multi-hundred-thousand
// element document on a real file-backed scratch device, sorted by both
// external algorithms under a memory budget ~100x smaller than the input,
// cross-checked by digest and verified by the streaming checker.
func TestLargeDocumentEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	dir := t.TempDir()
	docPath := filepath.Join(dir, "big.xml")

	spec := CappedShape(300000, 6)
	spec.Seed = 42
	f, err := os.Create(docPath)
	if err != nil {
		t.Fatal(err)
	}
	bw := bufio.NewWriter(f)
	stats, err := Generate(spec, bw)
	if err != nil {
		t.Fatal(err)
	}
	if err := bw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("document: %d elements, %d bytes, height %d", stats.Elements, stats.Bytes, stats.Height)

	crit := ByAttrOrTag("key")
	cfg := Config{BlockSize: 4096, MemoryBytes: 48 * 4096, ScratchDir: dir}

	digests := map[Algorithm][32]byte{}
	for _, algo := range []Algorithm{NEXSORT, MergeSort} {
		outPath := filepath.Join(dir, algo.String()+".xml")
		res, err := SortFile(docPath, outPath, cfg, Options{Criterion: crit, Algorithm: algo, Compact: true})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if res.Elements != stats.Elements {
			t.Errorf("%v: sorted %d elements, want %d", algo, res.Elements, stats.Elements)
		}
		t.Logf("%v: %d I/Os, %.2fs wall", algo, res.TotalIOs, res.WallSeconds)

		out, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		h := sha256.New()
		if _, err := io.Copy(h, out); err != nil {
			t.Fatal(err)
		}
		out.Close()
		var digest [32]byte
		copy(digest[:], h.Sum(nil))
		digests[algo] = digest

		// Streaming verification of the full output.
		out2, err := os.Open(outPath)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := Check(out2, crit, 0)
		out2.Close()
		if err != nil {
			t.Fatalf("%v: check: %v", algo, err)
		}
		if !rep.Sorted {
			t.Errorf("%v: output not sorted: %v", algo, rep.Violation)
		}
		if rep.Elements != stats.Elements {
			t.Errorf("%v: checker saw %d elements", algo, rep.Elements)
		}
		os.Remove(outPath)
	}
	if digests[NEXSORT] != digests[MergeSort] {
		t.Error("NEXSORT and merge sort disagree on the soak document")
	}
}
