package nexsort

import (
	"io"

	"nexsort/internal/gen"
)

// GenStats describes a generated document.
type GenStats = gen.Stats

// IBMSpec configures the IBM-alphaWorks-style workload generator used in
// the paper's evaluation: the fan-out of each element is uniform in
// [1, MaxFanout] and the tree is Height levels deep.
type IBMSpec = gen.IBMSpec

// CustomSpec configures the exact-shape generator behind the paper's
// Table 2: the fan-out of every element at each level is fixed.
type CustomSpec = gen.CustomSpec

// Generator is a workload spec that can stream a document.
type Generator interface {
	Write(w io.Writer) (gen.Stats, error)
}

// Generate streams a workload document to w.
func Generate(spec Generator, w io.Writer) (GenStats, error) { return spec.Write(w) }

// Table2Spec returns the five document shapes of the paper's Table 2
// (heights 2-6, about three million elements each).
func Table2Spec() []CustomSpec { return gen.Table2Spec() }

// ScaledShapeSeries returns Table 2's construction at a different scale:
// one near-uniform shape per height 2..maxHeight with about target
// elements each.
func ScaledShapeSeries(target int64, maxHeight int) []CustomSpec {
	return gen.ScaledShapeSeries(target, maxHeight)
}

// CappedShape returns the Figure 6 input construction: the smallest
// near-uniform shape reaching about target elements with every fan-out
// capped at maxFan.
func CappedShape(target int64, maxFan int) CustomSpec { return gen.CappedShape(target, maxFan) }
