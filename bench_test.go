// Benchmarks regenerating the paper's evaluation, one per table/figure.
// Each benchmark drives the same internal/bench experiment as cmd/nexbench
// and reports the paper's primary metric — block I/Os — alongside Go's
// timings:
//
//	go test -bench=. -benchmem
//
// The sweeps themselves print through `go test -bench -v` logs when run
// with -benchtime=1x; cmd/nexbench renders the full tables.
package nexsort

import (
	"testing"

	"nexsort/internal/bench"
)

// benchScale keeps `go test -bench=.` in the tens of seconds; cmd/nexbench
// runs the reference scale.
const benchScale = bench.Scale(0.15)

// reportSweep attaches aggregate custom metrics to a benchmark.
func reportSweep(b *testing.B, nexIOs, mergeIOs int64) {
	b.ReportMetric(float64(nexIOs), "nexsort-IOs")
	if mergeIOs > 0 {
		b.ReportMetric(float64(mergeIOs), "mergesort-IOs")
		b.ReportMetric(float64(mergeIOs)/float64(nexIOs), "mergesort/nexsort")
	}
}

// BenchmarkTable1KeyPath regenerates Table 1 (the key-path representation
// of Figure 1's D1).
func BenchmarkTable1KeyPath(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 9 {
			b.Fatalf("%d rows", len(rows))
		}
	}
}

// BenchmarkFig5MainMemory regenerates Figure 5: the same document sorted
// by both algorithms across a ladder of memory budgets.
func BenchmarkFig5MainMemory(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, w, err := bench.Fig5(bench.Fig5Config{
			Scale:     benchScale,
			MemBlocks: []int{24, 48, 96, 192, 384},
		})
		if err != nil {
			b.Fatal(err)
		}
		w.Close()
		var nex, merge int64
		for _, r := range rows {
			nex += r.Nex.TotalIOs
			merge += r.Merge.TotalIOs
		}
		reportSweep(b, nex, merge)
	}
}

// BenchmarkFig6InputSize regenerates Figure 6: growing documents at
// constant maximum fan-out 85 under a small fixed memory.
func BenchmarkFig6InputSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig6(bench.Fig6Config{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		var nex, merge int64
		for _, r := range rows {
			nex += r.Nex.TotalIOs
			merge += r.Merge.TotalIOs
		}
		reportSweep(b, nex, merge)
		b.ReportMetric(float64(rows[len(rows)-1].Merge.Passes), "max-merge-passes")
	}
}

// BenchmarkFig7TreeShape regenerates Figure 7 / Table 2: near-constant
// size, heights 2 through 6.
func BenchmarkFig7TreeShape(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Fig7(bench.Fig7Config{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		var nex, merge int64
		for _, r := range rows {
			nex += r.Nex.TotalIOs
			merge += r.Merge.TotalIOs
		}
		reportSweep(b, nex, merge)
		flat := rows[0]
		deep := rows[len(rows)-1]
		b.ReportMetric(float64(flat.Nex.TotalIOs)/float64(flat.Merge.TotalIOs), "h2-nex/ms")
		b.ReportMetric(float64(deep.Nex.TotalIOs)/float64(deep.Merge.TotalIOs), "h6-nex/ms")
	}
}

// BenchmarkThreshold regenerates the sort-threshold sweep of Section 5
// (the U-shaped curve the paper describes but omits).
func BenchmarkThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Threshold(bench.ThresholdConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		var best, worst int64
		for _, r := range rows {
			if best == 0 || r.Nex.TotalIOs < best {
				best = r.Nex.TotalIOs
			}
			if r.Nex.TotalIOs > worst {
				worst = r.Nex.TotalIOs
			}
		}
		reportSweep(b, best, 0)
		b.ReportMetric(float64(worst)/float64(best), "worst/best-threshold")
	}
}

// BenchmarkBoundsCheck regenerates the Theorem 4.4/4.5 validation grid.
func BenchmarkBoundsCheck(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Bounds(bench.BoundsConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		var maxRatio float64
		for _, r := range rows {
			if r.MeasuredOverUB > maxRatio {
				maxRatio = r.MeasuredOverUB
			}
		}
		b.ReportMetric(maxRatio, "max-measured/UB")
	}
}

// BenchmarkAblation regenerates the Section 3.2 technique ablation.
func BenchmarkAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Ablation(bench.AblationConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Doc == "flat(h=2)" && r.Variant == "+degenerate" {
				b.ReportMetric(float64(r.Result.TotalIOs)/float64(r.Baseline), "flat-degen/plain")
			}
		}
	}
}

// BenchmarkSpillCompression regenerates the compressed-spill experiment on
// a file-backed scratch device. The custom metrics carry the experiment's
// findings: the physical-byte compression ratio per algorithm, and (as a
// 0/1 flag) that the counted block transfers stayed identical — the codec
// must not move the paper's metric.
func BenchmarkSpillCompression(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Spill(bench.SpillConfig{Scale: benchScale, ScratchDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		ios := map[string]int64{}
		invariant := 1.0
		for _, r := range rows {
			if !r.Compress {
				ios[r.Algo] = r.TotalIOs
				continue
			}
			if r.TotalIOs != ios[r.Algo] {
				invariant = 0
			}
			switch r.Algo {
			case bench.AlgoNEXSORT.String():
				b.ReportMetric(r.Ratio, "nexsort-ratio")
			case bench.AlgoMergeSort.String():
				b.ReportMetric(r.Ratio, "mergesort-ratio")
			}
		}
		b.ReportMetric(invariant, "IOs-invariant")
	}
}

// BenchmarkParallelSpeedup compares sequential and pooled-worker execution
// of both sorters on one document. The custom metrics carry the experiment's
// two findings: the wall-clock speedup, and (as a 0/1 flag) that the block
// transfers stayed identical — parallelism must not move the paper's metric.
func BenchmarkParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Parallel(bench.ParallelConfig{Scale: benchScale})
		if err != nil {
			b.Fatal(err)
		}
		var bestNex, bestMerge float64 = 1, 1
		invariant := 1.0
		for _, r := range rows {
			if !r.IOsMatch {
				invariant = 0
			}
			switch {
			case r.Algo == bench.AlgoNEXSORT && r.Speedup > bestNex:
				bestNex = r.Speedup
			case r.Algo == bench.AlgoMergeSort && r.Speedup > bestMerge:
				bestMerge = r.Speedup
			}
		}
		b.ReportMetric(bestNex, "nexsort-speedup")
		b.ReportMetric(bestMerge, "mergesort-speedup")
		b.ReportMetric(invariant, "IOs-invariant")
	}
}

// BenchmarkOverlapPipeline regenerates the asynchronous-I/O experiment on a
// file-backed scratch device with simulated device latency. The custom
// metrics carry the experiment's finding — the best wall-clock speedup over
// the synchronous baseline per algorithm; the logical-ledger invariance is
// hard-checked inside bench.Overlap itself, which fails the benchmark if
// any pipeline depth moves the counted block transfers.
func BenchmarkOverlapPipeline(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Overlap(bench.OverlapConfig{Scale: benchScale, ScratchDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		var bestNex, bestMerge float64 = 1, 1
		for _, r := range rows {
			switch {
			case r.Algo == bench.AlgoNEXSORT.String() && r.Speedup > bestNex:
				bestNex = r.Speedup
			case r.Algo == bench.AlgoMergeSort.String() && r.Speedup > bestMerge:
				bestMerge = r.Speedup
			}
		}
		b.ReportMetric(bestNex, "nexsort-speedup")
		b.ReportMetric(bestMerge, "mergesort-speedup")
	}
}

// BenchmarkPartitionedMerge drives the range-partitioned final merge sweep
// (DESIGN.md §17) under simulated device latency. The experiment
// hard-fails if any partition count changes the output bytes or moves the
// logical ledger, so `-benchtime=1x` in CI doubles as a conformance run;
// the reported metric is the best merge-phase speedup over the serial
// loser tree.
func BenchmarkPartitionedMerge(b *testing.B) {
	dir := b.TempDir()
	for i := 0; i < b.N; i++ {
		rows, err := bench.PMerge(bench.PMergeConfig{Scale: benchScale, ScratchDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		var best float64 = 1
		var atP int
		for _, r := range rows {
			if r.Speedup > best {
				best, atP = r.Speedup, r.Parallel
			}
		}
		b.ReportMetric(best, "merge-speedup")
		b.ReportMetric(float64(atP), "at-parallel")
	}
}
