package nexsort

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestHardenedConfigSortsIdentically checks that turning on the full
// hardening stack (checksums + retry) changes neither the output bytes nor
// the counted block transfers of a fault-free sort.
func TestHardenedConfigSortsIdentically(t *testing.T) {
	crit := apiCriterion()
	plainCfg := Config{BlockSize: 256, MemoryBytes: 16 * 256, InMemory: true}
	hardCfg := plainCfg
	hardCfg.VerifyChecksums = true
	hardCfg.Retry = RetryPolicy{MaxRetries: 3, RetryCorruptReads: true}

	var plain, hard strings.Builder
	pres, err := Sort(strings.NewReader(apiDoc), &plain, plainCfg, Options{Criterion: crit})
	if err != nil {
		t.Fatal(err)
	}
	hres, err := Sort(strings.NewReader(apiDoc), &hard, hardCfg, Options{Criterion: crit})
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != hard.String() {
		t.Error("hardened sort produced different output")
	}
	if pres.TotalIOs != hres.TotalIOs {
		t.Errorf("hardened sort counted %d I/Os, plain counted %d", hres.TotalIOs, pres.TotalIOs)
	}
}

// TestSortFileRemovesPartialOutput checks the no-partial-results contract:
// a failing sort must not leave a half-written output file behind.
func TestSortFileRemovesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "bad.xml")
	outPath := filepath.Join(dir, "out.xml")
	// Malformed input: the sort starts writing, then hits the parse error.
	if err := os.WriteFile(inPath, []byte("<root><a></b></root>"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := SortFile(inPath, outPath, Config{InMemory: true, BlockSize: 256, MemoryBytes: 16 * 256}, Options{Criterion: apiCriterion()})
	if err == nil {
		t.Fatal("sort of malformed input succeeded")
	}
	if _, statErr := os.Stat(outPath); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("partial output left behind: stat = %v", statErr)
	}
}

// TestMergeFilesRemovesPartialOutput does the same for the file-path merge.
func TestMergeFilesRemovesPartialOutput(t *testing.T) {
	dir := t.TempDir()
	leftPath := filepath.Join(dir, "left.xml")
	rightPath := filepath.Join(dir, "right.xml")
	outPath := filepath.Join(dir, "merged.xml")
	if err := os.WriteFile(leftPath, []byte(`<r><e ID="1"/></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	// Malformed right side: the merge fails mid-stream.
	if err := os.WriteFile(rightPath, []byte(`<r><e ID="2">`), 0o644); err != nil {
		t.Fatal(err)
	}
	crit := &Criterion{Rules: []Rule{{Source: ByAttr("ID")}}}

	if _, err := MergeFiles(leftPath, rightPath, outPath, crit, MergeOptions{}); err == nil {
		t.Fatal("merge of malformed input succeeded")
	}
	if _, statErr := os.Stat(outPath); !errors.Is(statErr, os.ErrNotExist) {
		t.Errorf("partial merge output left behind: stat = %v", statErr)
	}

	// And the success path produces a real file.
	if err := os.WriteFile(rightPath, []byte(`<r><e ID="2"/></r>`), 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := MergeFiles(leftPath, rightPath, outPath, crit, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil merge report")
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`ID="1"`, `ID="2"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("merged output missing %s: %q", want, data)
		}
	}
}

// TestErrorHelperExports checks the re-exported failure-model helpers
// against the internal layer's sentinel.
func TestErrorHelperExports(t *testing.T) {
	if !IsCorrupt(ErrCorruptBlock) {
		t.Error("IsCorrupt(ErrCorruptBlock) = false")
	}
	if !errors.Is(ErrCorruptBlock, ErrCorruptBlock) {
		t.Error("ErrCorruptBlock does not match itself")
	}
	if IsTransient(ErrCorruptBlock) {
		t.Error("IsTransient(ErrCorruptBlock) = true")
	}
	if IsCorrupt(nil) || IsTransient(nil) {
		t.Error("nil error classified as a fault")
	}
}
