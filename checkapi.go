package nexsort

import (
	"fmt"
	"io"

	"nexsort/internal/check"
)

// CheckReport summarizes a sortedness verification.
type CheckReport = check.Report

// Violation is the first out-of-order sibling pair a Check found.
type Violation = check.Violation

// Check verifies, in one streaming pass, that the document read from r is
// sorted under crit down to depthLimit (0 = every level): the child list
// of every non-leaf element must have non-decreasing keys. It returns a
// report either way; the error is non-nil only for malformed input.
//
// Use it to skip redundant sorts in pipelines ("is the base document still
// sorted before applying this batch?") and as the acceptance test for
// sorter output.
func Check(r io.Reader, crit *Criterion, depthLimit int) (*CheckReport, error) {
	if crit == nil {
		return nil, fmt.Errorf("nexsort: Check requires a criterion")
	}
	return check.Document(r, crit, depthLimit)
}
