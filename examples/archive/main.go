// Archive demonstrates the scientific-data archiving pattern of Buneman et
// al. that the paper's related work points at (Section 2): new versions of
// a dataset are merged into a growing archive document with a nested-merge
// operation "which needs to sort the input documents at every level" — the
// workload NEXSORT's I/O-efficient sort exists to make scalable.
//
// The archive stays sorted at all times, so each incoming version needs
// one sort (of the small version) and one single-pass merge (of the large
// archive): the steady-state cost is linear per version.
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"strings"

	"nexsort"
)

// versions arrive over time from an instrument; readings are keyed by
// station and timestamp, and later versions can revise earlier readings.
var versions = []string{
	`<observations>
	  <station id="OSLO"><reading ts="2003-07-01" temp="19.2"/></station>
	  <station id="BERGEN"><reading ts="2003-07-01" temp="15.1"/></station>
	</observations>`,
	`<observations>
	  <station id="BERGEN"><reading ts="2003-07-02" temp="14.7"/></station>
	  <station id="OSLO"><reading ts="2003-07-02" temp="21.0"/><reading ts="2003-07-01" temp="19.4"/></station>
	</observations>`,
	`<observations>
	  <station id="TROMSO"><reading ts="2003-07-02" temp="9.8"/></station>
	</observations>`,
}

func main() {
	crit := nexsort.MustParseCriterion("station=@id,reading=@ts")
	cfg := nexsort.Config{BlockSize: 4096, MemoryBytes: 64 << 10, InMemory: true}

	archive := "<observations/>"
	for i, version := range versions {
		// Sort the incoming version (it arrives in instrument order).
		var sorted strings.Builder
		if _, err := nexsort.Sort(strings.NewReader(version), &sorted, cfg,
			nexsort.Options{Criterion: crit}); err != nil {
			log.Fatal(err)
		}
		// Nested-merge it into the archive; the newer version's values
		// win (the revised 2003-07-01 Oslo reading replaces the old one).
		var next strings.Builder
		rep, err := nexsort.ApplyUpdates(
			strings.NewReader(archive), strings.NewReader(sorted.String()),
			crit, &next, "")
		if err != nil {
			log.Fatal(err)
		}
		archive = next.String()
		fmt.Printf("version %d merged: %d matched, archive now %d elements\n",
			i+1, rep.Matched, rep.OutputElements)

		// The invariant the whole scheme rests on: the archive is sorted
		// after every merge, so the next merge is again a single pass.
		chk, err := nexsort.Check(strings.NewReader(archive), crit, 0)
		if err != nil || !chk.Sorted {
			log.Fatalf("archive lost sortedness: %v %v", err, chk)
		}
	}

	fmt.Println("\nfinal archive:")
	var pretty strings.Builder
	if _, err := nexsort.Sort(strings.NewReader(archive), &pretty, cfg,
		nexsort.Options{Criterion: crit, Indent: "  "}); err != nil {
		log.Fatal(err)
	}
	fmt.Println(pretty.String())
}
