// Quickstart: generate a small unsorted XML document, fully sort it with
// NEXSORT, and print the before/after documents plus the sorter's I/O
// accounting.
//
//	go run ./examples/quickstart
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"strings"

	"nexsort"
)

func main() {
	// A workload document: 3 levels, exact fan-outs 3 and 4, every
	// element carrying a random key attribute (the paper's custom
	// generator behind its Table 2).
	var doc bytes.Buffer
	stats, err := nexsort.Generate(nexsort.CustomSpec{
		Fanouts:  []int{3, 4},
		Seed:     42,
		ElemSize: 40, // keep the demo output short
	}, &doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d elements, height %d, max fan-out %d, %d bytes\n\n",
		stats.Elements, stats.Height, stats.MaxFanout, stats.Bytes)

	// Order every element by its key attribute.
	crit := nexsort.ByAttrOrTag("key")

	var sorted strings.Builder
	result, err := nexsort.Sort(strings.NewReader(doc.String()), &sorted,
		nexsort.Config{
			BlockSize:   4096,
			MemoryBytes: 64 << 10,
			InMemory:    true, // demo-sized: keep scratch off disk
		},
		nexsort.Options{Criterion: crit, Indent: "  "})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("sorted document:")
	fmt.Println(sorted.String())

	fmt.Printf("algorithm=%v elements=%d subtree-sorts=%d total I/Os=%d (simulated %.2fs on 2003 hardware)\n",
		result.Algorithm, result.Elements, result.NEXSORT.SubtreeSorts,
		result.TotalIOs, result.SimulatedSeconds)
	fmt.Println("I/O breakdown:")
	for cat, n := range result.IOs {
		fmt.Printf("  %-14s reads=%-4d writes=%d\n", cat, n.Reads, n.Writes)
	}

	// Sanity: the output is a permutation the paper would accept — every
	// child list ordered by key.
	if !strings.Contains(sorted.String(), "key=") {
		fmt.Fprintln(os.Stderr, "unexpected output")
		os.Exit(1)
	}
}
