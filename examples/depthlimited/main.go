// Depthlimited demonstrates depth-limited sorting (Section 3.2 of the
// paper): when the user knows that below some level no reordering is
// useful — say, merging can never match anything deeper — subtrees below
// the limit are treated as atomic units. They are still placed at their
// sorted positions relative to the rest of the document, but their
// interiors keep document order, saving "a good amount of irrelevant
// sorting".
//
//	go run ./examples/depthlimited
package main

import (
	"fmt"
	"log"
	"strings"

	"nexsort"
)

// A document of articles: we want journals and articles ordered, but the
// paragraph list inside each abstract is narrative — its order is meaning,
// not noise.
const library = `<library>
  <journal title="Zoology Letters">
    <article id="9"><para seq="intro">First.</para><para seq="aside">Second.</para></article>
    <article id="2"><para seq="thesis">One.</para><para seq="antithesis">Two.</para></article>
  </journal>
  <journal title="Algorithms Quarterly">
    <article id="7"><para seq="lemma">Alpha.</para><para seq="corollary">Beta.</para></article>
  </journal>
</library>`

func main() {
	crit := nexsort.MustParseCriterion("journal=@title,article=@id,para=@seq")
	cfg := nexsort.Config{BlockSize: 4096, MemoryBytes: 64 << 10, InMemory: true}

	run := func(depth int) string {
		var out strings.Builder
		_, err := nexsort.Sort(strings.NewReader(library), &out, cfg, nexsort.Options{
			Criterion:  crit,
			DepthLimit: depth,
			Indent:     "  ",
		})
		if err != nil {
			log.Fatal(err)
		}
		return out.String()
	}

	fmt.Println("head-to-toe sort (paragraphs get alphabetized — not what we want):")
	fmt.Println(run(0))

	// Root = level 1 (library), journals = level 2, articles = level 3.
	// Depth limit 2 sorts the journal list and each journal's article
	// list, and leaves everything inside an article untouched.
	fmt.Println("\ndepth-limited sort, d=2 (articles ordered, paragraphs intact):")
	fmt.Println(run(2))
}
