// Companymerge reproduces Example 1.1 / Figure 1 of the paper end to end:
// the personnel department's document D1 and the payroll department's D2
// are each fully sorted by the matching attributes (region and branch by
// name, employee by ID), then merged in a single pass — the XML analogue
// of a sort-merge join. Matched employees end up with both their personal
// and their salary information.
//
//	go run ./examples/companymerge
package main

import (
	"fmt"
	"log"
	"strings"

	"nexsort"
)

// D1: personal information, from the personnel department (Figure 1, top
// left).
const d1 = `<company>
  <region name="NE"/>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`

// D2: salary information, from the payroll department (Figure 1, top
// right).
const d2 = `<company>
  <region name="NW"/>
  <region name="AC">
    <branch name="Durham">
      <employee ID="844"/>
      <employee ID="323"><salary>45000</salary><bonus>5000</bonus></employee>
    </branch>
    <branch name="Miami"/>
  </region>
</company>`

func main() {
	// "This ordering criterion should be based on the attributes used in
	// matching": order region by name, branch by name, employee by ID.
	crit := nexsort.MustParseCriterion("region=@name,branch=@name,employee=@ID")

	cfg := nexsort.Config{BlockSize: 4096, MemoryBytes: 64 << 10, InMemory: true}

	fmt.Println("D1 (personnel):")
	fmt.Println(d1)
	fmt.Println("\nD2 (payroll):")
	fmt.Println(d2)

	var merged strings.Builder
	lres, rres, mrep, err := nexsort.SortAndMerge(
		strings.NewReader(d1), strings.NewReader(d2), crit, &merged, cfg,
		nexsort.MergeOptions{Indent: "  "})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmerged document (sorted, one merge pass):")
	fmt.Println(merged.String())
	fmt.Printf("sorted %d + %d elements; %d matched pairs merged; %d elements out\n",
		lres.Elements, rres.Elements, mrep.Matched, mrep.OutputElements)
	fmt.Printf("total I/Os: D1 sort %d, D2 sort %d\n", lres.TotalIOs, rres.TotalIOs)
}
