// Batchupdate demonstrates the paper's second application (Section 1):
// processing a batch of updates against an existing sorted XML document.
// The batch — itself an XML document in the same shape — is sorted by the
// same criterion, then applied in a single merge-like pass: matched
// elements take the update's values, new elements are inserted at their
// sorted positions, and the result stays sorted, ready for the next batch.
//
//	go run ./examples/batchupdate
package main

import (
	"fmt"
	"log"
	"strings"

	"nexsort"
)

// The warehouse inventory, already sorted by SKU (e.g. by a previous run).
const inventory = `<inventory>
  <item sku="A100" qty="12" price="9.50"/>
  <item sku="B200" qty="3" price="120.00"/>
  <item sku="C300" qty="44" price="0.99"/>
</inventory>`

// Today's batch of updates, in arrival (unsorted) order: a restock of
// B200, a price change on C300, and a brand-new item.
const batch = `<inventory>
  <item sku="C300" qty="44" price="1.25"/>
  <item sku="A050" qty="7" price="3.10"/>
  <item sku="B200" qty="30" price="120.00"/>
</inventory>`

func main() {
	crit := nexsort.MustParseCriterion("item=@sku")
	cfg := nexsort.Config{BlockSize: 4096, MemoryBytes: 64 << 10, InMemory: true}

	// Step 1 (the paper): "We first sort the batch of updates according
	// to the same ordering criterion as the existing document."
	var sortedBatch strings.Builder
	if _, err := nexsort.Sort(strings.NewReader(batch), &sortedBatch, cfg,
		nexsort.Options{Criterion: crit}); err != nil {
		log.Fatal(err)
	}

	// Step 2: "process the batched updates in a way similar to merging
	// them with the existing document. The result document remains
	// sorted."
	var updated strings.Builder
	rep, err := nexsort.ApplyUpdates(
		strings.NewReader(inventory),
		strings.NewReader(sortedBatch.String()),
		crit, &updated, "  ")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("inventory before:")
	fmt.Println(inventory)
	fmt.Println("\nupdate batch (as received):")
	fmt.Println(batch)
	fmt.Println("\ninventory after applying the sorted batch:")
	fmt.Println(updated.String())
	fmt.Printf("%d updates matched existing items, %d elements in the result\n",
		rep.Matched-1, rep.OutputElements) // -1: the roots also count as a match
}
