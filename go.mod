module nexsort

go 1.22
