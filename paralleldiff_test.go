package nexsort_test

import (
	"bytes"
	"reflect"
	"testing"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/em/chaostest"
	"nexsort/internal/keys"
)

// The parallel differential suite: the worker pool is an optimization of
// wall-clock time and nothing else. At every parallelism level the sorters
// must produce byte-identical output AND identical per-category block
// transfers — the paper's metric — to their sequential runs. Any divergence
// means a scheduling decision leaked into an algorithmic decision.

// parallelLevels is the ladder the acceptance criteria name: sequential,
// one worker, and more workers than the budget can admit at once.
var parallelLevels = []int{1, 2, 8}

// diffEnv builds a trial environment at the given memory budget and
// parallelism. Block size matches the chaos soak: small enough that a
// few-hundred-element document spills heavily.
func diffEnv(memBlocks, parallelism int) em.Config {
	return em.Config{BlockSize: 512, MemBlocks: memBlocks, Parallelism: parallelism}
}

func TestParallelDifferential(t *testing.T) {
	docs := []struct {
		name     string
		elements int64
		maxFan   int
		seed     int64
	}{
		{"bushy", 300, 6, 3},  // many siblings per level: dispatchable subtrees
		{"wide", 250, 40, 4},  // huge fan-out: big child lists, external sorts
		{"narrow", 200, 2, 5}, // tall and thin: little to run in parallel
	}
	// Two budget shapes: "tight" leaves almost no slack, so most dispatch
	// attempts fall back inline; "roomy" admits concurrent working sets, so
	// the pool actually runs. The invariant must hold in both regimes.
	budgets := []struct {
		name      string
		memBlocks int
	}{
		{"tight", 16},
		{"roomy", 64},
	}
	crit := keys.ByAttrOrTag("key")

	for _, d := range docs {
		doc, _, err := chaostest.Doc(d.elements, d.maxFan, d.seed)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range budgets {
			t.Run(d.name+"/"+b.name, func(t *testing.T) {
				// Sequential baselines, one per algorithm; the two sorters
				// must agree with each other before parallelism enters.
				type base struct {
					output []byte
					ios    map[string]em.IOCount
				}
				seq := map[chaostest.Algorithm]base{}
				for _, algo := range chaostest.Algorithms {
					o := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: diffEnv(b.memBlocks, 1)})
					if o.PanicValue != nil {
						t.Fatalf("%v sequential: panic: %v", algo, o.PanicValue)
					}
					if o.Err != nil {
						t.Fatalf("%v sequential: %v", algo, o.Err)
					}
					if o.BudgetInUse != 0 {
						t.Fatalf("%v sequential: leaked %d budget blocks", algo, o.BudgetInUse)
					}
					if o.FramesLive != 0 {
						t.Fatalf("%v sequential: leaked %d pooled frames", algo, o.FramesLive)
					}
					seq[algo] = base{output: o.Output, ios: o.Stats.Snapshot()}
				}
				if !bytes.Equal(seq[chaostest.Nexsort].output, seq[chaostest.MergeSort].output) {
					t.Fatal("sequential baselines disagree between algorithms")
				}

				for _, p := range parallelLevels[1:] {
					for _, algo := range chaostest.Algorithms {
						o := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: diffEnv(b.memBlocks, p)})
						if o.PanicValue != nil {
							t.Fatalf("%v parallelism=%d: panic: %v", algo, p, o.PanicValue)
						}
						if o.Err != nil {
							t.Fatalf("%v parallelism=%d: %v", algo, p, o.Err)
						}
						if o.BudgetInUse != 0 {
							t.Errorf("%v parallelism=%d: leaked %d budget blocks", algo, p, o.BudgetInUse)
						}
						if o.FramesLive != 0 {
							t.Errorf("%v parallelism=%d: leaked %d pooled frames", algo, p, o.FramesLive)
						}
						if !bytes.Equal(o.Output, seq[algo].output) {
							t.Errorf("%v parallelism=%d: output differs from sequential run", algo, p)
						}
						if got := o.Stats.Snapshot(); !reflect.DeepEqual(got, seq[algo].ios) {
							t.Errorf("%v parallelism=%d: block transfers differ from sequential run\nsequential: %v\nparallel:   %v",
								algo, p, seq[algo].ios, got)
						}
					}
				}
			})
		}
	}
}

// TestCompressedSpillConformance is the spill-format counterpart of the
// differential suite: compression is a representation change below the
// block abstraction, so with it on vs. off — at every parallelism level —
// the output bytes must be identical and the logical per-category I/O
// accounting (reads, writes, and their whole-block byte volumes) must not
// move. What must move is the physical side: on the key-path workload the
// bytes that actually cross the device shrink by at least 2×.
func TestCompressedSpillConformance(t *testing.T) {
	doc, _, err := chaostest.Doc(300, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	crit := keys.ByAttrOrTag("key")

	// logicalSide projects a snapshot onto the logical ledger, which is
	// what must be invariant; the physical counters are supposed to
	// differ between the two configurations.
	logicalSide := func(snap map[string]em.IOCount) map[string]em.IOCount {
		out := make(map[string]em.IOCount, len(snap))
		for k, c := range snap {
			out[k] = em.IOCount{
				Reads: c.Reads, Writes: c.Writes,
				ReadBytes: c.ReadBytes, WriteBytes: c.WriteBytes,
				CacheHits: c.CacheHits, CacheMisses: c.CacheMisses,
			}
		}
		return out
	}
	spillPhysWriteBytes := func(o *chaostest.Outcome) int64 {
		var n int64
		for _, c := range o.Stats.Snapshot() {
			n += c.PhysWriteBytes
		}
		return n
	}

	for _, algo := range chaostest.Algorithms {
		t.Run(algo.String(), func(t *testing.T) {
			for _, p := range parallelLevels {
				plain := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: diffEnv(16, p)})
				env := diffEnv(16, p)
				env.CompressSpill = true
				comp := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: env})
				for name, o := range map[string]*chaostest.Outcome{"plain": plain, "compressed": comp} {
					if o.PanicValue != nil {
						t.Fatalf("%s parallelism=%d: panic: %v", name, p, o.PanicValue)
					}
					if o.Err != nil {
						t.Fatalf("%s parallelism=%d: %v", name, p, o.Err)
					}
					if o.FramesLive != 0 || o.BudgetInUse != 0 {
						t.Fatalf("%s parallelism=%d: leaked %d frames, %d budget blocks",
							name, p, o.FramesLive, o.BudgetInUse)
					}
				}
				if comp.CodecFramesLive != 0 {
					t.Errorf("parallelism=%d: %d codec scratch frames leaked", p, comp.CodecFramesLive)
				}
				if !bytes.Equal(plain.Output, comp.Output) {
					t.Errorf("parallelism=%d: compression changed the output bytes", p)
				}
				want, got := logicalSide(plain.Stats.Snapshot()), logicalSide(comp.Stats.Snapshot())
				if !reflect.DeepEqual(got, want) {
					t.Errorf("parallelism=%d: compression moved the logical I/O counts\nplain:      %v\ncompressed: %v",
						p, want, got)
				}
				plainB, compB := spillPhysWriteBytes(plain), spillPhysWriteBytes(comp)
				if compB == 0 || compB*2 > plainB {
					t.Errorf("parallelism=%d: physical spill write bytes %d vs %d uncompressed; want at least a 2x reduction",
						p, compB, plainB)
				}
			}
		})
	}
}

// TestPartitionedMergeConformance is the range-partitioned-merge axis of
// the differential suite (DESIGN.md §17): partitioning the final merge by
// key range is a wall-clock optimization and nothing else. Against the
// plain serial sorter the output bytes must be identical and every
// logical ledger category except the fence-index side stream must be
// untouched; across partition counts the whole logical ledger — fence
// reads, splitter samples and partitioned-merge counts included — must
// not move at all, with or without spill compression, at pipeline depths
// 0 and 8. The merge-sort trials separately assert that a partitioned
// merge actually ran, so the invariance is never vacuously true.
func TestPartitionedMergeConformance(t *testing.T) {
	doc, _, err := chaostest.Doc(300, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	crit := keys.ByAttrOrTag("key")
	depths := []struct{ ra, wb int }{{0, 0}, {8, 8}}

	// logical projects a snapshot onto the counters that must be invariant
	// across partition counts: the logical block ledger plus the
	// partitioned-merge bookkeeping. The overlap counters are the
	// pipeline's own traffic and PrefetchWasted legitimately varies with
	// where the planner's scans end, so they are projected out.
	logical := func(snap map[string]em.IOCount) map[string]em.IOCount {
		out := make(map[string]em.IOCount, len(snap))
		for k, c := range snap {
			out[k] = em.IOCount{
				Reads: c.Reads, Writes: c.Writes,
				ReadBytes: c.ReadBytes, WriteBytes: c.WriteBytes,
				CacheHits: c.CacheHits, CacheMisses: c.CacheMisses,
				PartitionedMerges: c.PartitionedMerges,
				SplitterSamples:   c.SplitterSamples,
			}
		}
		return out
	}
	// sansFence drops the fence-index category and the partitioned-merge
	// bookkeeping: what remains must match the plain serial sorter's
	// ledger exactly — partitioning may add its side stream but may not
	// move a single run or output block transfer.
	sansFence := func(snap map[string]em.IOCount) map[string]em.IOCount {
		out := make(map[string]em.IOCount, len(snap))
		for k, c := range snap {
			if k == em.CatFenceIndex.String() {
				continue
			}
			c.PartitionedMerges, c.SplitterSamples = 0, 0
			out[k] = c
		}
		return out
	}

	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			for _, algo := range chaostest.Algorithms {
				for _, d := range depths {
					env := diffEnv(24, 2)
					env.CompressSpill = compress
					env.ReadAhead, env.WriteBehind = d.ra, d.wb
					serial := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: env})
					if serial.PanicValue != nil || serial.Err != nil {
						t.Fatalf("%v ra=%d wb=%d serial: panic=%v err=%v", algo, d.ra, d.wb, serial.PanicValue, serial.Err)
					}
					serialIOs := logical(serial.Stats.Snapshot())

					var baseIOs map[string]em.IOCount // partitioned ledger at P=1
					for _, p := range parallelLevels {
						env := diffEnv(24, 2)
						env.CompressSpill = compress
						env.ReadAhead, env.WriteBehind = d.ra, d.wb
						env.MergeParallel = p
						o := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: env})
						if o.PanicValue != nil {
							t.Fatalf("%v ra=%d wb=%d P=%d: panic: %v", algo, d.ra, d.wb, p, o.PanicValue)
						}
						if o.Err != nil {
							t.Fatalf("%v ra=%d wb=%d P=%d: %v", algo, d.ra, d.wb, p, o.Err)
						}
						if o.BudgetInUse != 0 || o.FramesLive != 0 {
							t.Errorf("%v ra=%d wb=%d P=%d: leaked %d budget blocks, %d frames",
								algo, d.ra, d.wb, p, o.BudgetInUse, o.FramesLive)
						}
						if !bytes.Equal(o.Output, serial.Output) {
							t.Errorf("%v ra=%d wb=%d P=%d: output differs from the serial merge", algo, d.ra, d.wb, p)
						}
						got := logical(o.Stats.Snapshot())
						if algo == chaostest.MergeSort && o.Stats.TotalPartitionedMerges() == 0 {
							t.Errorf("%v ra=%d wb=%d P=%d: no partitioned merge ran — the conformance check is vacuous", algo, d.ra, d.wb, p)
						}
						if baseIOs == nil {
							baseIOs = got
						} else if !reflect.DeepEqual(got, baseIOs) {
							t.Errorf("%v ra=%d wb=%d P=%d: partition count moved the logical ledger\nP=1: %v\nP=%d: %v",
								algo, d.ra, d.wb, p, baseIOs, p, got)
						}
						if gotSerial := sansFence(got); !reflect.DeepEqual(gotSerial, serialIOs) {
							t.Errorf("%v ra=%d wb=%d P=%d: partitioning moved the non-fence ledger\nserial:      %v\npartitioned: %v",
								algo, d.ra, d.wb, p, serialIOs, gotSerial)
						}
					}
				}
			}
		})
	}
}

// runNexsortOpts drives core.Sort directly so the paper's optional
// techniques (compaction, graceful degeneration) can be switched on —
// chaostest.Run always sorts with default options.
func runNexsortOpts(t *testing.T, doc []byte, cfg em.Config, opts core.Options) ([]byte, map[string]em.IOCount) {
	t.Helper()
	env, err := em.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var buf bytes.Buffer
	if _, err := core.Sort(env, bytes.NewReader(doc), &buf, opts); err != nil {
		t.Fatalf("core.Sort (parallelism=%d): %v", cfg.Parallelism, err)
	}
	if n := env.Budget.InUse(); n != 0 {
		t.Fatalf("core.Sort (parallelism=%d): leaked %d budget blocks", cfg.Parallelism, n)
	}
	return buf.Bytes(), env.Stats.Snapshot()
}

// TestParallelDifferentialOptions covers the NEXSORT code paths the plain
// differential matrix can't reach: Section 3.2 compaction and graceful
// degeneration. Degenerate mode never dispatches to the pool — its
// incomplete-run cuts make transient budget grants mid-scan — so this also
// pins the sequential fallback as invariant.
func TestParallelDifferentialOptions(t *testing.T) {
	crit := keys.ByAttrOrTag("key")
	variants := []struct {
		name string
		opts core.Options
	}{
		{"compact", core.Options{Criterion: crit, Compact: true}},
		{"degenerate", core.Options{Criterion: crit, Degenerate: true}},
		{"compact-degenerate", core.Options{Criterion: crit, Compact: true, Degenerate: true}},
	}
	doc, _, err := chaostest.Doc(300, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			wantOut, wantIOs := runNexsortOpts(t, doc, diffEnv(48, 1), v.opts)
			for _, p := range parallelLevels[1:] {
				out, ios := runNexsortOpts(t, doc, diffEnv(48, p), v.opts)
				if !bytes.Equal(out, wantOut) {
					t.Errorf("parallelism=%d: output differs from sequential run", p)
				}
				if !reflect.DeepEqual(ios, wantIOs) {
					t.Errorf("parallelism=%d: block transfers differ from sequential run\nsequential: %v\nparallel:   %v",
						p, wantIOs, ios)
				}
			}
		})
	}
}

// TestOverlapPipelineConformance is the asynchronous-I/O counterpart of the
// differential suite: read-ahead and write-behind are wall-clock
// optimizations below the logical block abstraction, so at every
// (Parallelism, ReadAhead, WriteBehind) combination the output bytes must
// be identical and the logical per-category ledger must DeepEqual the
// synchronous run's. The overlap counters (PrefetchHits/PrefetchWasted/
// FlushStalls) are projected out — they are the pipeline's own traffic —
// and the test separately requires that the deep configurations actually
// engaged the pipeline, so the invariance is never vacuously true.
func TestOverlapPipelineConformance(t *testing.T) {
	doc, _, err := chaostest.Doc(300, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	crit := keys.ByAttrOrTag("key")
	depths := []struct{ ra, wb int }{{1, 0}, {0, 1}, {2, 2}, {8, 8}}

	logical := func(snap map[string]em.IOCount) map[string]em.IOCount {
		out := make(map[string]em.IOCount, len(snap))
		for k, c := range snap {
			out[k] = em.IOCount{
				Reads: c.Reads, Writes: c.Writes,
				ReadBytes: c.ReadBytes, WriteBytes: c.WriteBytes,
				CacheHits: c.CacheHits, CacheMisses: c.CacheMisses,
			}
		}
		return out
	}
	overlapTraffic := func(snap map[string]em.IOCount) (hits, waste, stalls int64) {
		for _, c := range snap {
			hits += c.PrefetchHits
			waste += c.PrefetchWasted
			stalls += c.FlushStalls
		}
		return
	}

	for _, compress := range []bool{false, true} {
		name := "plain"
		if compress {
			name = "compressed"
		}
		t.Run(name, func(t *testing.T) {
			for _, algo := range chaostest.Algorithms {
				for _, p := range parallelLevels {
					env := diffEnv(16, p)
					env.CompressSpill = compress
					sync := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: env})
					if sync.PanicValue != nil || sync.Err != nil {
						t.Fatalf("%v P=%d sync: panic=%v err=%v", algo, p, sync.PanicValue, sync.Err)
					}
					if h, w, s := overlapTraffic(sync.Stats.Snapshot()); h+w+s != 0 {
						t.Fatalf("%v P=%d sync: overlap counters moved with the engine off: hits=%d waste=%d stalls=%d", algo, p, h, w, s)
					}
					wantIOs := logical(sync.Stats.Snapshot())
					for _, d := range depths {
						env := diffEnv(16, p)
						env.CompressSpill = compress
						env.ReadAhead, env.WriteBehind = d.ra, d.wb
						o := chaostest.Run(doc, crit, chaostest.Trial{Algorithm: algo, Env: env})
						if o.PanicValue != nil {
							t.Fatalf("%v P=%d ra=%d wb=%d: panic: %v", algo, p, d.ra, d.wb, o.PanicValue)
						}
						if o.Err != nil {
							t.Fatalf("%v P=%d ra=%d wb=%d: %v", algo, p, d.ra, d.wb, o.Err)
						}
						if o.BudgetInUse != 0 || o.FramesLive != 0 {
							t.Errorf("%v P=%d ra=%d wb=%d: leaked %d budget blocks, %d frames",
								algo, p, d.ra, d.wb, o.BudgetInUse, o.FramesLive)
						}
						if !bytes.Equal(o.Output, sync.Output) {
							t.Errorf("%v P=%d ra=%d wb=%d: output differs from the synchronous run", algo, p, d.ra, d.wb)
						}
						if got := logical(o.Stats.Snapshot()); !reflect.DeepEqual(got, wantIOs) {
							t.Errorf("%v P=%d ra=%d wb=%d: pipeline moved the logical ledger\nsync:  %v\nasync: %v",
								algo, p, d.ra, d.wb, wantIOs, got)
						}
						hits, _, _ := overlapTraffic(o.Stats.Snapshot())
						if d.ra > 0 && hits == 0 {
							t.Errorf("%v P=%d ra=%d wb=%d: read-ahead never produced a consumed prefetch", algo, p, d.ra, d.wb)
						}
					}
				}
			}
		})
	}
}
