package nexsort

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"nexsort/internal/merge"
)

// MergeOptions configures a structural merge.
type MergeOptions = merge.Options

// MergeReport summarizes a structural merge.
type MergeReport = merge.Report

// Merge combines two *sorted* XML documents in a single pass — the XML
// sort-merge join of the paper's Example 1.1. Elements at the same
// hierarchical position with the same tag and the same non-empty ordering
// key merge (attribute union, child lists merged recursively); everything
// else copies through in sorted order. Sort both inputs with the same
// criterion first (see SortAndMerge for the full pipeline).
func Merge(left, right io.Reader, crit *Criterion, out io.Writer, opts MergeOptions) (*MergeReport, error) {
	if crit == nil {
		return nil, fmt.Errorf("nexsort: Merge requires a criterion (it defines element matching)")
	}
	return merge.Documents(left, right, crit, out, opts)
}

// MergeContext is Merge bounded by ctx: when ctx is canceled or its
// deadline passes, the merge stops at the next stream operation, its
// parser pipelines are torn down, and the returned error satisfies
// errors.Is against context.Canceled / context.DeadlineExceeded.
func MergeContext(ctx context.Context, left, right io.Reader, crit *Criterion, out io.Writer, opts MergeOptions) (*MergeReport, error) {
	if crit == nil {
		return nil, fmt.Errorf("nexsort: Merge requires a criterion (it defines element matching)")
	}
	return merge.DocumentsContext(ctx, left, right, crit, out, opts)
}

// MergeFiles is Merge over file paths. Like SortFile, it never leaves a
// partial result behind: if the merge fails after the output file was
// created, the file is removed, so outPath either holds a complete merged
// document or does not exist.
func MergeFiles(leftPath, rightPath, outPath string, crit *Criterion, opts MergeOptions) (*MergeReport, error) {
	return mergeFiles(leftPath, rightPath, outPath,
		func(left, right io.Reader, out io.Writer) (*MergeReport, error) {
			return Merge(left, right, crit, out, opts)
		})
}

// MergeFilesContext is MergeFiles bounded by ctx, with MergeContext's
// cancellation semantics. The no-partial-output guarantee holds on the
// cancellation path too: a canceled merge removes whatever it had written
// to outPath before returning the context's error.
func MergeFilesContext(ctx context.Context, leftPath, rightPath, outPath string, crit *Criterion, opts MergeOptions) (*MergeReport, error) {
	return mergeFiles(leftPath, rightPath, outPath,
		func(left, right io.Reader, out io.Writer) (*MergeReport, error) {
			return MergeContext(ctx, left, right, crit, out, opts)
		})
}

// mergeFiles handles the path plumbing shared by MergeFiles and
// MergeFilesContext, removing the output on any failure — including
// cancellation.
func mergeFiles(leftPath, rightPath, outPath string, run func(left, right io.Reader, out io.Writer) (*MergeReport, error)) (*MergeReport, error) {
	left, err := os.Open(leftPath)
	if err != nil {
		return nil, err
	}
	defer left.Close()
	right, err := os.Open(rightPath)
	if err != nil {
		return nil, err
	}
	defer right.Close()

	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	rep, err := run(left, right, out)
	if closeErr := out.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		os.Remove(outPath)
		return nil, err
	}
	return rep, nil
}

// ApplyUpdates applies a sorted batch of updates to a sorted base document
// (the paper's second application): matched elements take the update's
// attribute values, unmatched update elements are inserted at their sorted
// positions, and the result remains sorted.
func ApplyUpdates(base, updates io.Reader, crit *Criterion, out io.Writer, indent string) (*MergeReport, error) {
	if crit == nil {
		return nil, fmt.Errorf("nexsort: ApplyUpdates requires a criterion")
	}
	return merge.ApplyUpdates(base, updates, crit, out, indent)
}

// ApplyUpdatesContext is ApplyUpdates bounded by ctx, with MergeContext's
// cancellation semantics.
func ApplyUpdatesContext(ctx context.Context, base, updates io.Reader, crit *Criterion, out io.Writer, indent string) (*MergeReport, error) {
	if crit == nil {
		return nil, fmt.Errorf("nexsort: ApplyUpdates requires a criterion")
	}
	return merge.ApplyUpdatesContext(ctx, base, updates, crit, out, indent)
}

// SortAndMerge runs the complete Example 1.1 pipeline: NEXSORT both input
// documents by crit into temporary files, then merge them in one pass into
// out. It returns the two sort results and the merge report.
func SortAndMerge(left, right io.Reader, crit *Criterion, out io.Writer, cfg Config, opts MergeOptions) (*Result, *Result, *MergeReport, error) {
	return sortAndMerge(left, right, cfg,
		func(in io.Reader, w io.Writer) (*Result, error) {
			return Sort(in, w, cfg, Options{Criterion: crit})
		},
		func(lf, rf io.Reader) (*MergeReport, error) {
			return Merge(lf, rf, crit, out, opts)
		})
}

// SortAndMergeContext is SortAndMerge bounded by ctx: both sorts and the
// merge observe the context, and a cancellation anywhere in the pipeline
// unwinds it — temporary files removed, scratch released — returning an
// error that satisfies errors.Is against context.Canceled /
// context.DeadlineExceeded.
func SortAndMergeContext(ctx context.Context, left, right io.Reader, crit *Criterion, out io.Writer, cfg Config, opts MergeOptions) (*Result, *Result, *MergeReport, error) {
	return sortAndMerge(left, right, cfg,
		func(in io.Reader, w io.Writer) (*Result, error) {
			return SortContext(ctx, in, w, cfg, Options{Criterion: crit})
		},
		func(lf, rf io.Reader) (*MergeReport, error) {
			return MergeContext(ctx, lf, rf, crit, out, opts)
		})
}

// sortAndMerge is the pipeline shared by SortAndMerge and
// SortAndMergeContext: sort both inputs into a private temp directory,
// then merge the two sorted files. The temp directory (and with it any
// partial sorted file) is removed on every path.
func sortAndMerge(left, right io.Reader, cfg Config,
	sortOne func(io.Reader, io.Writer) (*Result, error),
	mergeBoth func(lf, rf io.Reader) (*MergeReport, error)) (*Result, *Result, *MergeReport, error) {
	dir, err := os.MkdirTemp(cfg.ScratchDir, "nexsort-merge-")
	if err != nil {
		return nil, nil, nil, err
	}
	defer os.RemoveAll(dir)

	sortTo := func(in io.Reader, name string) (*Result, *os.File, error) {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		res, err := sortOne(in, f)
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		if err := f.Close(); err != nil {
			return nil, nil, err
		}
		rf, err := os.Open(path)
		return res, rf, err
	}

	lres, lf, err := sortTo(left, "left.xml")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("nexsort: sorting left document: %w", err)
	}
	defer lf.Close()
	rres, rf, err := sortTo(right, "right.xml")
	if err != nil {
		return nil, nil, nil, fmt.Errorf("nexsort: sorting right document: %w", err)
	}
	defer rf.Close()

	mrep, err := mergeBoth(lf, rf)
	if err != nil {
		return nil, nil, nil, err
	}
	return lres, rres, mrep, nil
}
