package nexsort_test

import (
	"bytes"
	"errors"
	"os"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/em/chaostest"
	"nexsort/internal/keys"
)

// The chaos soak: both external sorters, over a hundred seeded trials of
// probabilistic device faults, with one invariant — the sort either
// produces output byte-identical to the fault-free run or fails with a
// clean typed error. Never silent corruption, never a panic, never a
// leaked budget block or scratch file.

// chaosEnv is the trial environment shape: blocks small enough that a
// few-hundred-element document spills heavily, memory at NEXSORT's
// documented floor plus slack, full hardening on, and the worker pool
// switched on (explicitly, so the soak exercises the concurrent paths even
// on a single-CPU host). Faults must land identically either way: the
// invariant "byte-identical output or a clean typed error, never a panic or
// a leaked budget block" is parallelism-independent.
func chaosEnv() em.Config {
	return em.Config{
		BlockSize:       512,
		MemBlocks:       16,
		VerifyChecksums: true,
		Retry:           em.RetryPolicy{MaxRetries: 6, RetryCorruptReads: true},
		Parallelism:     4,
	}
}

// cleanlyTyped reports whether a trial error is one of the failure model's
// typed outcomes: corruption detected by checksums, a transient fault that
// outlived the retry budget, or an injected permanent device error.
func cleanlyTyped(err error) bool {
	return em.IsCorrupt(err) || em.IsTransient(err) || errors.Is(err, em.ErrChaosPermanent)
}

// chaosTrial runs one trial and enforces the unconditional parts of the
// invariant (no panic, no budget leak), returning the outcome for the
// group-specific assertions.
func chaosTrial(t *testing.T, doc []byte, crit *keys.Criterion, tr chaostest.Trial) *chaostest.Outcome {
	t.Helper()
	o := chaostest.Run(doc, crit, tr)
	if o.PanicValue != nil {
		t.Fatalf("%v seed=%d: sort panicked: %v\ninjected: %v",
			tr.Algorithm, tr.Chaos.Seed, o.PanicValue, o.Injected)
	}
	if o.BudgetInUse != 0 {
		t.Errorf("%v seed=%d: %d budget blocks leaked (err=%v, injected=%v)",
			tr.Algorithm, tr.Chaos.Seed, o.BudgetInUse, o.Err, o.Injected)
	}
	if o.FramesLive != 0 {
		t.Errorf("%v seed=%d: %d pooled frames leaked (err=%v, injected=%v)",
			tr.Algorithm, tr.Chaos.Seed, o.FramesLive, o.Err, o.Injected)
	}
	if o.CodecFramesLive != 0 {
		t.Errorf("%v seed=%d: %d codec scratch frames leaked (err=%v, injected=%v)",
			tr.Algorithm, tr.Chaos.Seed, o.CodecFramesLive, o.Err, o.Injected)
	}
	return o
}

func TestChaosSoak(t *testing.T) {
	doc, stats, err := chaostest.Doc(400, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("document: %d elements, %d bytes, height %d", stats.Elements, stats.Bytes, stats.Height)
	crit := keys.ByAttrOrTag("key")

	want := map[chaostest.Algorithm][]byte{}
	for _, algo := range chaostest.Algorithms {
		want[algo] = chaostest.Baseline(doc, crit, algo, chaosEnv())
	}
	if !bytes.Equal(want[chaostest.Nexsort], want[chaostest.MergeSort]) {
		t.Fatal("fault-free baselines disagree between algorithms")
	}

	trials := 0
	groupsRun := 0
	injected := map[string]int64{}
	note := func(o *chaostest.Outcome) {
		trials++
		for k, v := range o.Injected {
			injected[k] += v
		}
	}

	// Group 1 — transient-only faults under retry. The consecutive-fault
	// cap sits below the retry budget, so every operation eventually goes
	// through: the sort must succeed with byte-identical output, and the
	// retries must show up in the stats.
	t.Run("transient", func(t *testing.T) {
		groupsRun++
		var faulted, retried int
		for seed := int64(1); seed <= 15; seed++ {
			for _, algo := range chaostest.Algorithms {
				tr := chaostest.Trial{Algorithm: algo, Env: chaosEnv(), Chaos: em.ChaosConfig{
					Seed:               seed,
					ReadTransientProb:  0.02,
					WriteTransientProb: 0.02,
					ShortWriteProb:     0.01,
					MaxConsecutive:     4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				if o.Err != nil {
					t.Fatalf("%v seed=%d: transient-only trial failed: %v (injected %v)",
						algo, seed, o.Err, o.Injected)
				}
				if !bytes.Equal(o.Output, want[algo]) {
					t.Fatalf("%v seed=%d: output differs from fault-free run (injected %v)",
						algo, seed, o.Injected)
				}
				if o.Faulted() {
					faulted++
					if o.Stats.TotalRetries() == 0 {
						t.Errorf("%v seed=%d: faults injected but no retries counted", algo, seed)
					} else {
						retried++
					}
				}
			}
		}
		if faulted == 0 {
			t.Error("no transient trial injected a fault; probabilities too low to test anything")
		}
		t.Logf("transient: %d/30 trials faulted, %d surfaced retries in stats", faulted, retried)
	})

	// Group 2 — at-rest corruption: bit flips written to the device and
	// torn writes that report success. Only the checksum layer can see
	// these, and only on the next read of the block — so a trial either
	// never rereads a damaged block (identical output) or surfaces the
	// typed corruption error. A clean run with different bytes is the
	// silent corruption the whole substrate exists to prevent.
	t.Run("at-rest-corruption", func(t *testing.T) {
		groupsRun++
		var detected int
		for seed := int64(1); seed <= 15; seed++ {
			for _, algo := range chaostest.Algorithms {
				tr := chaostest.Trial{Algorithm: algo, Env: chaosEnv(), Chaos: em.ChaosConfig{
					Seed:             seed,
					WriteBitFlipProb: 0.01,
					TornWriteProb:    0.01,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION: clean run, wrong bytes (injected %v)",
							algo, seed, o.Injected)
					}
				case em.IsCorrupt(o.Err):
					detected++
					if o.Stats.TotalChecksumFailures() == 0 {
						t.Errorf("%v seed=%d: corrupt error but no checksum failures counted", algo, seed)
					}
				default:
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
			}
		}
		if detected == 0 {
			t.Error("no at-rest trial surfaced a corruption error; injector never hit a reread block")
		}
		t.Logf("at-rest: %d/30 trials detected corruption via checksums", detected)
	})

	// Group 3 — in-transit read corruption. A reread returns clean bytes,
	// so with checksums catching the damage and RetryCorruptReads
	// rereading (cap below the budget again), every trial must heal to
	// byte-identical output.
	t.Run("in-transit-read", func(t *testing.T) {
		groupsRun++
		var healed int
		for seed := int64(1); seed <= 10; seed++ {
			for _, algo := range chaostest.Algorithms {
				tr := chaostest.Trial{Algorithm: algo, Env: chaosEnv(), Chaos: em.ChaosConfig{
					Seed:            seed,
					ReadBitFlipProb: 0.03,
					MaxConsecutive:  4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				if o.Err != nil {
					t.Fatalf("%v seed=%d: in-transit trial failed: %v (injected %v)",
						algo, seed, o.Err, o.Injected)
				}
				if !bytes.Equal(o.Output, want[algo]) {
					t.Fatalf("%v seed=%d: output differs after in-transit corruption (injected %v)",
						algo, seed, o.Injected)
				}
				if o.Injected["read-bitflip"] > 0 {
					healed++
					if o.Stats.TotalChecksumFailures() == 0 {
						t.Errorf("%v seed=%d: bit flips injected but no checksum failures counted", algo, seed)
					}
				}
			}
		}
		if healed == 0 {
			t.Error("no in-transit trial injected a read bit flip")
		}
		t.Logf("in-transit: %d/20 trials healed read corruption", healed)
	})

	// Group 4 — the full mix, including unretryable permanent errors.
	// Success must mean identical bytes; failure must carry one of the
	// failure model's types.
	t.Run("mixed", func(t *testing.T) {
		groupsRun++
		var failed int
		for seed := int64(1); seed <= 10; seed++ {
			for _, algo := range chaostest.Algorithms {
				tr := chaostest.Trial{Algorithm: algo, Env: chaosEnv(), Chaos: em.ChaosConfig{
					Seed:               seed,
					ReadPermanentProb:  0.002,
					WritePermanentProb: 0.002,
					ReadTransientProb:  0.01,
					WriteTransientProb: 0.01,
					ReadBitFlipProb:    0.01,
					WriteBitFlipProb:   0.005,
					TornWriteProb:      0.005,
					ShortWriteProb:     0.005,
					MaxConsecutive:     4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION under mixed faults (injected %v)",
							algo, seed, o.Injected)
					}
				case cleanlyTyped(o.Err):
					failed++
				default:
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
			}
		}
		t.Logf("mixed: %d/20 trials failed with a typed error", failed)
	})

	// Group 5 — corruption underneath the spill codec. With CompressSpill
	// on, the injector damages the *compressed* representation at rest: a
	// reread of a damaged slot must surface through the codec's own decode
	// checks or the checksum layer stacked above it as a typed
	// corrupt-class error — never as silently wrong decoded bytes — and
	// the codec's per-operation scratch must be clean however the trial
	// ends (chaosTrial asserts CodecFramesLive == 0 on every path).
	t.Run("compressed-at-rest", func(t *testing.T) {
		groupsRun++
		envC := chaosEnv()
		envC.CompressSpill = true
		for _, algo := range chaostest.Algorithms {
			if !bytes.Equal(chaostest.Baseline(doc, crit, algo, envC), want[algo]) {
				t.Fatalf("%v: compressed fault-free baseline differs from the plain baseline", algo)
			}
		}
		var detected int
		for seed := int64(1); seed <= 15; seed++ {
			for _, algo := range chaostest.Algorithms {
				env := chaosEnv()
				env.CompressSpill = true
				tr := chaostest.Trial{Algorithm: algo, Env: env, Chaos: em.ChaosConfig{
					Seed:             seed,
					WriteBitFlipProb: 0.01,
					TornWriteProb:    0.01,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION through the spill codec (injected %v)",
							algo, seed, o.Injected)
					}
				case em.IsCorrupt(o.Err):
					detected++
					if o.Stats.TotalChecksumFailures() == 0 {
						t.Errorf("%v seed=%d: corrupt error but no verification failures counted", algo, seed)
					}
				default:
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
			}
		}
		if detected == 0 {
			t.Error("no compressed trial surfaced a corruption error; injector never hit a reread slot")
		}
		t.Logf("compressed-at-rest: %d/30 trials detected corruption through the codec", detected)
	})

	// Group 6 — the full fault mix underneath the spill codec: transient,
	// permanent, in-transit and at-rest damage all landing on compressed
	// slots, with retry healing what it can. Same contract as the plain
	// mixed group.
	t.Run("compressed-mix", func(t *testing.T) {
		groupsRun++
		var failed int
		for seed := int64(1); seed <= 10; seed++ {
			for _, algo := range chaostest.Algorithms {
				env := chaosEnv()
				env.CompressSpill = true
				tr := chaostest.Trial{Algorithm: algo, Env: env, Chaos: em.ChaosConfig{
					Seed:               seed,
					ReadPermanentProb:  0.002,
					WritePermanentProb: 0.002,
					ReadTransientProb:  0.01,
					WriteTransientProb: 0.01,
					ReadBitFlipProb:    0.01,
					WriteBitFlipProb:   0.005,
					TornWriteProb:      0.005,
					ShortWriteProb:     0.005,
					MaxConsecutive:     4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION under compressed mixed faults (injected %v)",
							algo, seed, o.Injected)
					}
				case cleanlyTyped(o.Err):
					failed++
				default:
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
			}
		}
		t.Logf("compressed-mix: %d/20 trials failed with a typed error", failed)
	})

	// Group 7 — file-backed trials under the full mix: whatever happens
	// to the sort, Env.Close must leave the scratch directory exactly as
	// it found it. A leftover file after a faulted run is a scratch leak.
	t.Run("file-backed", func(t *testing.T) {
		groupsRun++
		dir := t.TempDir()
		for seed := int64(1); seed <= 5; seed++ {
			for _, algo := range chaostest.Algorithms {
				before := dirEntries(t, dir)
				env := chaosEnv()
				env.ScratchDir = dir
				tr := chaostest.Trial{Algorithm: algo, Env: env, Chaos: em.ChaosConfig{
					Seed:               seed,
					ReadPermanentProb:  0.002,
					WritePermanentProb: 0.002,
					ReadTransientProb:  0.01,
					WriteTransientProb: 0.01,
					WriteBitFlipProb:   0.005,
					TornWriteProb:      0.005,
					MaxConsecutive:     4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION on file backend (injected %v)",
							algo, seed, o.Injected)
					}
				case !cleanlyTyped(o.Err):
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
				after := dirEntries(t, dir)
				if after != before {
					t.Fatalf("%v seed=%d: scratch leak: %d dir entries before trial, %d after (err=%v)",
						algo, seed, before, after, o.Err)
				}
			}
		}
	})

	// Group 8 — the full fault mix with the async engine's pipelines on.
	// Faults now land inside write-behind flushes (surfacing at the
	// submitter's next touch point) and in-flight prefetches (surfacing at
	// consumption); the invariant is unchanged: byte-identical output or a
	// cleanly typed error, never a panic, a leaked frame, or a leaked
	// budget block — the engine's own frames included.
	t.Run("async-pipeline", func(t *testing.T) {
		groupsRun++
		var failed int
		for seed := int64(1); seed <= 10; seed++ {
			for _, algo := range chaostest.Algorithms {
				env := chaosEnv()
				env.ReadAhead, env.WriteBehind = 3, 3
				tr := chaostest.Trial{Algorithm: algo, Env: env, Chaos: em.ChaosConfig{
					Seed:               seed + 900,
					ReadPermanentProb:  0.002,
					WritePermanentProb: 0.002,
					ReadTransientProb:  0.01,
					WriteTransientProb: 0.01,
					WriteBitFlipProb:   0.005,
					TornWriteProb:      0.005,
					MaxConsecutive:     4,
				}}
				o := chaosTrial(t, doc, crit, tr)
				note(o)
				switch {
				case o.Err == nil:
					if !bytes.Equal(o.Output, want[algo]) {
						t.Fatalf("%v seed=%d: SILENT CORRUPTION through the async pipelines (injected %v)",
							algo, seed, o.Injected)
					}
				case cleanlyTyped(o.Err):
					failed++
				default:
					t.Fatalf("%v seed=%d: untyped error %v (injected %v)", algo, seed, o.Err, o.Injected)
				}
			}
		}
		t.Logf("async-pipeline: %d/20 trials failed with a typed error", failed)
	})

	t.Logf("chaos soak: %d trials across %d groups, injected faults: %v", trials, groupsRun, injected)
	// The floor applies to the full soak; a -run filter that selects a
	// subset of the groups (CI's -race async leg does) skips it.
	if groupsRun == 8 && trials < 100 {
		t.Errorf("soak ran %d trials, want at least 100", trials)
	}
}

// dirEntries counts entries in dir, for scratch-leak accounting.
func dirEntries(t *testing.T, dir string) int {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(ents)
}
