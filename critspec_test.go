package nexsort

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseCriterion(t *testing.T) {
	c, err := ParseCriterion("region=@name, branch=@name ,employee=@ID,*=name()")
	if err != nil {
		t.Fatal(err)
	}
	want := &Criterion{Rules: []Rule{
		{Tag: "region", Source: ByAttr("name")},
		{Tag: "branch", Source: ByAttr("name")},
		{Tag: "employee", Source: ByAttr("ID")},
		{Tag: "", Source: ByTag()},
	}}
	if !reflect.DeepEqual(c, want) {
		t.Errorf("got %+v, want %+v", c, want)
	}
}

func TestParseCriterionShorthand(t *testing.T) {
	c, err := ParseCriterion("@ID")
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Rules) != 1 || c.Rules[0].Tag != "" || c.Rules[0].Source.Attr != "ID" {
		t.Errorf("shorthand: %+v", c)
	}
}

func TestParseCriterionSources(t *testing.T) {
	c, err := ParseCriterion("a=text(),b=info/name/text(),c=name()")
	if err != nil {
		t.Fatal(err)
	}
	if c.Rules[0].Source.Kind != ByText().Kind {
		t.Errorf("text() rule: %+v", c.Rules[0])
	}
	if got := c.Rules[1].Source.Path; !reflect.DeepEqual(got, []string{"info", "name"}) {
		t.Errorf("path rule: %v", got)
	}
	if c.Rules[2].Source.Kind != ByTag().Kind {
		t.Errorf("name() rule: %+v", c.Rules[2])
	}
}

func TestParseCriterionErrors(t *testing.T) {
	for _, spec := range []string{"", "  ", "a=@", "a=bogus", "a=/text()", "a=x//text()", ","} {
		if _, err := ParseCriterion(spec); err == nil {
			t.Errorf("spec %q should fail", spec)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("MustParseCriterion should panic on bad spec")
		}
	}()
	MustParseCriterion("bad spec")
}

func TestParsedCriterionSorts(t *testing.T) {
	c := MustParseCriterion("employee=@ID")
	var out strings.Builder
	_, err := Sort(strings.NewReader(`<r><employee ID="2"/><employee ID="1"/></r>`), &out,
		Config{BlockSize: 256, MemoryBytes: 256 * 16, InMemory: true}, Options{Criterion: c})
	if err != nil {
		t.Fatal(err)
	}
	want := `<r><employee ID="1"></employee><employee ID="2"></employee></r>`
	if out.String() != want {
		t.Errorf("got %s", out.String())
	}
}
