package nexsort

import (
	"bytes"
	"compress/gzip"
	"context"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const apiDoc = `<company>
  <region name="NE"/>
  <region name="AC">
    <branch name="Durham"><employee ID="454"/><employee ID="323"><name>Smith</name></employee></branch>
    <branch name="Atlanta"/>
  </region>
</company>`

func apiCriterion() *Criterion {
	return &Criterion{Rules: []Rule{
		{Tag: "region", Source: ByAttr("name")},
		{Tag: "branch", Source: ByAttr("name")},
		{Tag: "employee", Source: ByAttr("ID")},
	}}
}

const apiSorted = `<company><region name="AC"><branch name="Atlanta"></branch><branch name="Durham"><employee ID="323"><name>Smith</name></employee><employee ID="454"></employee></branch></region><region name="NE"></region></company>`

func TestSortAllAlgorithmsAgree(t *testing.T) {
	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 20, InMemory: true}
	for _, algo := range []Algorithm{NEXSORT, MergeSort, InMemory} {
		var out strings.Builder
		res, err := Sort(strings.NewReader(apiDoc), &out, cfg, Options{Criterion: apiCriterion(), Algorithm: algo})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		if out.String() != apiSorted {
			t.Errorf("%v output:\n got %s\nwant %s", algo, out.String(), apiSorted)
		}
		if res.Elements != 8 {
			t.Errorf("%v: Elements = %d, want 8", algo, res.Elements)
		}
		if res.TotalIOs <= 0 || res.SimulatedSeconds <= 0 {
			t.Errorf("%v: missing accounting: ios=%d sim=%g", algo, res.TotalIOs, res.SimulatedSeconds)
		}
	}
}

func TestSortFile(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.xml")
	outPath := filepath.Join(dir, "out.xml")
	if err := os.WriteFile(inPath, []byte(apiDoc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 20, ScratchDir: dir}
	res, err := SortFile(inPath, outPath, cfg, Options{Criterion: apiCriterion()})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != apiSorted {
		t.Errorf("file output mismatch: %s", data)
	}
	if res.Algorithm != NEXSORT || res.NEXSORT == nil {
		t.Error("NEXSORT detail report missing")
	}
	// The scratch device file must be gone.
	left, _ := filepath.Glob(filepath.Join(dir, "nexsort-scratch-*"))
	if len(left) != 0 {
		t.Errorf("scratch files left behind: %v", left)
	}
}

func TestDefaultsAndValidation(t *testing.T) {
	if _, err := (Config{BlockSize: 16}).normalize(); err == nil {
		t.Error("tiny block size should fail validation")
	}
	if _, err := (Config{BlockSize: 1 << 20, MemoryBytes: 1 << 20}).normalize(); err == nil {
		t.Error("memory of one block should fail validation")
	}
	cfg, err := DefaultConfig().normalize()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.BlockSize != DefaultBlockSize || cfg.MemBlocks != int(DefaultMemoryBytes/DefaultBlockSize) {
		t.Errorf("defaults: %+v", cfg)
	}
	var out strings.Builder
	if _, err := Sort(strings.NewReader("<a/>"), &out, Config{InMemory: true}, Options{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm should fail")
	}
}

func TestSortAndMergePipeline(t *testing.T) {
	d2 := `<company>
	  <region name="NW"/>
	  <region name="AC"><branch name="Durham"><employee ID="323"><salary>45000</salary></employee></branch></region>
	</company>`
	crit := apiCriterion()
	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 20, ScratchDir: t.TempDir()}
	var out bytes.Buffer
	lres, rres, mrep, err := SortAndMerge(strings.NewReader(apiDoc), strings.NewReader(d2), crit, &out, cfg, MergeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lres.Elements != 8 || rres.Elements != 6 {
		t.Errorf("sort results: %d, %d elements", lres.Elements, rres.Elements)
	}
	if mrep.Matched != 4 { // company, region AC, branch Durham, employee 323
		t.Errorf("Matched = %d, want 4", mrep.Matched)
	}
	want := `<company><region name="AC"><branch name="Atlanta"></branch><branch name="Durham"><employee ID="323"><name>Smith</name><salary>45000</salary></employee><employee ID="454"></employee></branch></region><region name="NE"></region><region name="NW"></region></company>`
	if out.String() != want {
		t.Errorf("pipeline output:\n got %s\nwant %s", out.String(), want)
	}
}

func TestApplyUpdatesAPI(t *testing.T) {
	crit := &Criterion{Rules: []Rule{{Tag: "item", Source: ByAttr("sku")}}}
	base := `<inv><item sku="A" qty="1"/></inv>`
	upd := `<inv><item sku="A" qty="9"/><item sku="B" qty="3"/></inv>`
	var out strings.Builder
	if _, err := ApplyUpdates(strings.NewReader(base), strings.NewReader(upd), crit, &out, ""); err != nil {
		t.Fatal(err)
	}
	want := `<inv><item sku="A" qty="9"></item><item sku="B" qty="3"></item></inv>`
	if out.String() != want {
		t.Errorf("got %s, want %s", out.String(), want)
	}
	if _, err := Merge(strings.NewReader(base), strings.NewReader(upd), nil, &out, MergeOptions{}); err == nil {
		t.Error("nil criterion should fail")
	}
}

func TestGenerateAPI(t *testing.T) {
	var buf bytes.Buffer
	st, err := Generate(CustomSpec{Fanouts: []int{4, 3}, Seed: 1}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Elements != 17 {
		t.Errorf("Elements = %d, want 17", st.Elements)
	}
	specs := Table2Spec()
	if len(specs) != 5 || specs[0].Elements() != 3000001 {
		t.Errorf("Table2Spec = %v", specs)
	}
	if got := CappedShape(1000, 10); got.Elements() < 1000 {
		t.Errorf("CappedShape too small: %v", got)
	}
	if got := ScaledShapeSeries(500, 4); len(got) != 3 {
		t.Errorf("ScaledShapeSeries = %v", got)
	}
	// Generated documents sort cleanly end to end.
	var out strings.Builder
	res, err := Sort(strings.NewReader(buf.String()), &out, Config{BlockSize: 256, MemoryBytes: 256 * 16, InMemory: true},
		Options{Criterion: ByAttrOrTag("key")})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 17 {
		t.Errorf("sorted %d elements", res.Elements)
	}
}

func TestXSortViaAPI(t *testing.T) {
	doc := `<lib><shelf id="2"><book id="9"/><book id="2"/></shelf><shelf id="1"/></lib>`
	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 16, InMemory: true}
	var out strings.Builder
	_, err := Sort(strings.NewReader(doc), &out, cfg, Options{
		Criterion:      ByAttrOrTag("id"),
		Algorithm:      MergeSort,
		SortChildrenOf: []string{"shelf"},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := `<lib><shelf id="2"><book id="2"></book><book id="9"></book></shelf><shelf id="1"></shelf></lib>`
	if out.String() != want {
		t.Errorf("XSort output: %s", out.String())
	}
	// XSort with the wrong algorithm is rejected.
	if _, err := Sort(strings.NewReader(doc), &out, cfg, Options{
		Criterion: ByAttrOrTag("id"), SortChildrenOf: []string{"shelf"},
	}); err == nil {
		t.Error("XSort with NEXSORT should be rejected")
	}
	// RecordOrder with the wrong algorithm is rejected.
	if _, err := Sort(strings.NewReader(doc), &out, cfg, Options{
		Criterion: ByAttrOrTag("id"), Algorithm: InMemory, RecordOrder: "s",
	}); err == nil {
		t.Error("RecordOrder with InMemory should be rejected")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	if NEXSORT.String() != "nexsort" || MergeSort.String() != "mergesort" ||
		InMemory.String() != "inmemory" || Algorithm(9).String() != "algorithm(9)" {
		t.Error("algorithm names")
	}
}

func TestInMemoryIndentAndDepth(t *testing.T) {
	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 16, InMemory: true}
	var out strings.Builder
	_, err := Sort(strings.NewReader(`<r><b k="2"><y k="2"/><x k="1"/></b><a k="1"/></r>`), &out, cfg,
		Options{Criterion: ByAttrOrTag("k"), Algorithm: InMemory, DepthLimit: 1, Indent: " "})
	if err != nil {
		t.Fatal(err)
	}
	want := "<r>\n <a k=\"1\"></a>\n <b k=\"2\">\n  <y k=\"2\"></y>\n  <x k=\"1\"></x>\n </b>\n</r>\n"
	if out.String() != want {
		t.Errorf("got %q\nwant %q", out.String(), want)
	}
}

func TestCheckNilCriterion(t *testing.T) {
	if _, err := Check(strings.NewReader("<a/>"), nil, 0); err == nil {
		t.Error("nil criterion should fail")
	}
}

func TestSortFileGzip(t *testing.T) {
	dir := t.TempDir()
	inPath := filepath.Join(dir, "in.xml.gz")
	outPath := filepath.Join(dir, "out.xml.gz")

	f, err := os.Create(inPath)
	if err != nil {
		t.Fatal(err)
	}
	gz := gzip.NewWriter(f)
	gz.Write([]byte(apiDoc))
	if err := gz.Close(); err != nil {
		t.Fatal(err)
	}
	f.Close()

	cfg := Config{BlockSize: 256, MemoryBytes: 256 * 20, ScratchDir: dir}
	if _, err := SortFile(inPath, outPath, cfg, Options{Criterion: apiCriterion()}); err != nil {
		t.Fatal(err)
	}

	out, err := os.Open(outPath)
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	gzr, err := gzip.NewReader(out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(gzr)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != apiSorted {
		t.Errorf("gzip round trip: %s", data)
	}
	// A non-gzip file with a .gz name fails cleanly.
	badPath := filepath.Join(dir, "bad.xml.gz")
	os.WriteFile(badPath, []byte("<a/>"), 0o644)
	if _, err := SortFile(badPath, outPath, cfg, Options{Criterion: apiCriterion()}); err == nil {
		t.Error("plain file with .gz suffix should fail")
	}
}

func TestSortContextCancellation(t *testing.T) {
	// A pre-cancelled context stops the sort immediately with ctx.Err().
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var doc bytes.Buffer
	if _, err := Generate(CustomSpec{Fanouts: []int{50, 20}, Seed: 1}, &doc); err != nil {
		t.Fatal(err)
	}
	cfg := Config{BlockSize: 1024, MemoryBytes: 1024 * 16, InMemory: true}
	_, err := SortContext(ctx, strings.NewReader(doc.String()), io.Discard, cfg,
		Options{Criterion: ByAttrOrTag("key")})
	if err != context.Canceled {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	// An un-cancelled context sorts normally and reports scratch usage.
	res, err := SortContext(context.Background(), strings.NewReader(doc.String()), io.Discard, cfg,
		Options{Criterion: ByAttrOrTag("key")})
	if err != nil {
		t.Fatal(err)
	}
	if res.NEXSORT.ScratchBlocks <= 0 {
		t.Errorf("ScratchBlocks = %d", res.NEXSORT.ScratchBlocks)
	}
}
