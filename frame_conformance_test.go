package nexsort_test

import (
	"bytes"
	"io"
	"testing"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/em/chaostest"
	"nexsort/internal/extsort"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
)

// frameCrit is the standard generated-workload criterion: order every
// element by the generator's key attribute.
func frameCrit() *keys.Criterion {
	return &keys.Criterion{
		Rules:  []keys.Rule{{Tag: "", Source: keys.ByAttr(gen.DefaultKeyAttr)}},
		KeyCap: 16,
	}
}

// TestFrameConformanceSorters runs both sorters on a spilling workload and
// checks the frame pool's side of the budget contract: every frame released
// by teardown, the live-frame peak contained in the budget's peak, the
// budget's peak contained in M, and the free list actually recycling (the
// point of the substrate).
func TestFrameConformanceSorters(t *testing.T) {
	doc, _, err := chaostest.Doc(2500, 6, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range chaostest.Algorithms {
		t.Run(algo.String(), func(t *testing.T) {
			cfg := em.Config{BlockSize: 512, MemBlocks: 20, InMemory: true, Parallelism: 2}
			env, err := em.NewEnv(cfg)
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()

			var out bytes.Buffer
			switch algo {
			case chaostest.Nexsort:
				_, err = core.Sort(env, bytes.NewReader(doc), &out, core.Options{Criterion: frameCrit()})
			default:
				_, err = extsort.SortXML(env, frameCrit(), bytes.NewReader(doc), io.Writer(&out), extsort.XMLOptions{})
			}
			if err != nil {
				t.Fatal(err)
			}

			pool := env.Dev.Frames()
			if pool.Live() != 0 {
				t.Errorf("%d frames still live after the sort returned", pool.Live())
			}
			if env.Budget.InUse() != 0 {
				t.Errorf("%d budget blocks still granted after the sort returned", env.Budget.InUse())
			}
			if pool.PeakLive() > env.Budget.Peak() {
				t.Errorf("frame peak %d exceeds budget peak %d: a buffer existed without a grant",
					pool.PeakLive(), env.Budget.Peak())
			}
			if env.Budget.Peak() > cfg.MemBlocks {
				t.Errorf("budget peak %d exceeds M=%d", env.Budget.Peak(), cfg.MemBlocks)
			}
			if pool.Recycled() == 0 {
				t.Error("no frame was ever recycled: the pool is not serving repeat acquisitions")
			}
		})
	}
}

// TestCacheKeepsOutputAndConservesReads gives the cached run the cache's
// blocks *on top* of the baseline's M, so the sort itself sees an identical
// free budget and makes identical decisions. Then the cache can only
// reclassify logical reads — every ReadBlock is either a charged transfer
// or a hit — so reads(base) == reads(cached) + hits(cached), the output is
// byte-identical, and on this workload the cache genuinely absorbs
// transfers (hits > 0).
func TestCacheKeepsOutputAndConservesReads(t *testing.T) {
	doc, _, err := chaostest.Doc(1500, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	// A text-sourced key resolves at end tags, so oversized subtrees take
	// the sidecar path: two ReadRange scans over the same spilled region —
	// the repeat-read pattern a clean-block cache exists for.
	crit := &keys.Criterion{
		Rules:  []keys.Rule{{Tag: "", Source: keys.ByText()}},
		KeyCap: 16,
	}

	type outcome struct {
		output      []byte
		reads, hits int64
	}
	run := func(memBlocks, cacheBlocks int) outcome {
		t.Helper()
		env, err := em.NewEnv(em.Config{
			BlockSize: 512, MemBlocks: memBlocks, CacheBlocks: cacheBlocks,
			InMemory: true, Parallelism: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		var out bytes.Buffer
		if _, err := core.Sort(env, bytes.NewReader(doc), &out, core.Options{Criterion: crit}); err != nil {
			t.Fatal(err)
		}
		o := outcome{output: out.Bytes(), hits: env.Stats.TotalCacheHits()}
		for _, c := range env.Stats.Snapshot() {
			o.reads += c.Reads
		}
		return o
	}

	base := run(16, 0)
	cached := run(16+48, 48)

	if !bytes.Equal(base.output, cached.output) {
		t.Error("cached run produced different output bytes")
	}
	if cached.hits == 0 {
		t.Error("cache never hit on a repeat-read workload")
	}
	if cached.reads+cached.hits != base.reads {
		t.Errorf("read conservation broken: %d cached reads + %d hits != %d baseline reads",
			cached.reads, cached.hits, base.reads)
	}
	if base.hits != 0 {
		t.Errorf("baseline (CacheBlocks=0) reported %d cache hits", base.hits)
	}
}
