// Package nexsort is an external-memory XML sorting library: a faithful,
// production-quality implementation of "NEXSORT: Sorting XML in External
// Memory" (Silberstein & Yang, ICDE 2004).
//
// A fully sorted XML document has the children of every non-leaf element
// ordered by a user-supplied criterion. Sorting XML this way is
// fundamentally easier than sorting a flat file — the hierarchy constrains
// the legal orderings — and NEXSORT exploits that: it detects complete
// subtrees while scanning the input, sorts each one exactly once into an
// on-disk run, and stitches the run tree together with a single output
// traversal. Its I/O cost, O(N/B + (N/B)·log_{M/B}(min{kt,N}/B)), matches
// the problem's lower bound up to a constant factor and beats external
// merge sort whenever the document has real hierarchy.
//
// # Quick start
//
//	crit := &nexsort.Criterion{Rules: []nexsort.Rule{
//	    {Tag: "employee", Source: nexsort.ByAttr("ID")},
//	    {Tag: "", Source: nexsort.ByAttr("name")},
//	}}
//	result, err := nexsort.SortFile("in.xml", "sorted.xml",
//	    nexsort.DefaultConfig(), nexsort.Options{Criterion: crit})
//
// Sorted documents merge in one pass with Merge — the XML analogue of a
// sort-merge join (the paper's motivating application) — and sorted batch
// updates apply with ApplyUpdates.
//
// The library also ships the paper's baselines (key-path external merge
// sort, in-memory recursive sort), its workload generators, and an
// external-memory substrate with exact per-category I/O accounting, so
// every figure and table of the paper can be regenerated; see the
// EXPERIMENTS.md file and cmd/nexbench.
package nexsort

import (
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
	"nexsort/internal/xmltree"
)

// Criterion is an ordering specification: rules matched by element tag
// name, each naming where the sort key comes from.
type Criterion = keys.Criterion

// Rule binds a key source to the elements it applies to; Tag "" matches
// every element.
type Rule = keys.Rule

// Source identifies where an element's sort key comes from.
type Source = keys.Source

// ByAttr orders elements by the value of the named attribute.
func ByAttr(name string) Source { return keys.ByAttr(name) }

// ByTag orders elements by their tag name.
func ByTag() Source { return keys.ByTag() }

// ByText orders elements by their first direct text child.
func ByText() Source { return keys.ByText() }

// ByPath orders elements by the first direct text of the first descendant
// reached through the given chain of child tag names, e.g.
// ByPath("personalInfo", "name", "lastName").
func ByPath(chain ...string) Source { return keys.ByPath(chain...) }

// ByAttrOrTag orders every element by the named attribute, falling back to
// document order when the attribute is absent.
func ByAttrOrTag(attr string) *Criterion { return keys.ByAttrOrTag(attr) }

// IOCount is the read/write pair reported for one I/O category, plus the
// hardening layers' retry and checksum-failure tallies.
type IOCount = em.IOCount

// RetryPolicy bounds how the spill device re-attempts transiently faulted
// block transfers; see Config.Retry.
type RetryPolicy = em.RetryPolicy

// ErrCorruptBlock is the sentinel wrapped by every checksum-verification
// failure. errors.Is(err, ErrCorruptBlock) — or IsCorrupt — identifies a
// sort that failed because the scratch device returned damaged data.
var ErrCorruptBlock = em.ErrCorruptBlock

// IsCorrupt reports whether err means a spill block failed checksum
// verification (bit rot or a torn write on the scratch device).
func IsCorrupt(err error) bool { return em.IsCorrupt(err) }

// IsTransient reports whether err is a transient device fault: the kind of
// error that a Config.Retry policy re-attempts, surfaced only once the
// retry budget is exhausted.
func IsTransient(err error) bool { return em.IsTransient(err) }

// ErrScratchExhausted is the sentinel wrapped by every scratch-space
// failure: the scratch device hit Config.ScratchQuotaBlocks, or the
// filesystem underneath returned ENOSPC. errors.Is(err,
// ErrScratchExhausted) — or IsExhausted — identifies a sort that failed
// for want of spill space rather than because of bad input or a device
// fault.
var ErrScratchExhausted = em.ErrScratchExhausted

// IsExhausted reports whether err means the sort ran out of scratch space
// (quota or real ENOSPC). Exhaustion is permanent for the run: retrying in
// place cannot help, but re-running with a larger quota, more memory, or a
// roomier scratch volume can.
func IsExhausted(err error) bool { return em.IsExhausted(err) }

// Algorithm selects the sorting algorithm.
type Algorithm int

// Algorithms.
const (
	// NEXSORT is the paper's contribution and the default.
	NEXSORT Algorithm = iota
	// MergeSort is the competitor: key-path external merge sort.
	MergeSort
	// InMemory is the internal-memory recursive sort — simple and fast
	// when the document fits in RAM, the baseline NEXSORT generalizes.
	InMemory
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case NEXSORT:
		return "nexsort"
	case MergeSort:
		return "mergesort"
	case InMemory:
		return "inmemory"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// Config sets the external-memory environment: the block size B and the
// main-memory budget M of the standard I/O model.
type Config struct {
	// BlockSize is the disk block size in bytes. The paper's testbed uses
	// 64 KiB. Defaults to DefaultBlockSize when zero.
	BlockSize int
	// MemoryBytes is the main memory available to the sort, in bytes
	// (rounded down to whole blocks). The paper's experiments sweep 3-32
	// MB. Defaults to DefaultMemoryBytes when zero.
	MemoryBytes int64
	// ScratchDir hosts the spill device file. Empty selects the system
	// temp directory; set InMemory to avoid disk entirely.
	ScratchDir string
	// InMemory backs the spill device with memory (tests, small inputs).
	InMemory bool
	// VerifyChecksums stores a CRC-32C trailer with every spill block and
	// verifies it on read: torn writes and bit rot on the scratch device
	// surface as typed errors (IsCorrupt) instead of silently corrupted
	// output. Costs 8 bytes of scratch per block and one CRC pass per
	// transfer; the counted block transfers are unchanged.
	VerifyChecksums bool
	// Retry re-attempts spill transfers that fail with a transient device
	// error (IsTransient) under bounded exponential backoff, optionally
	// re-reading blocks that failed checksum verification. The zero
	// policy disables retrying. Re-attempts are tallied per category in
	// the Result's I/O breakdown.
	Retry RetryPolicy
	// Parallelism bounds the goroutines a sort may use: the scanning
	// goroutine plus Parallelism-1 pooled workers that sort and spill
	// runs and independent sibling subtrees in the background, admitted
	// only when the memory budget has room for their working sets. 0
	// defaults to GOMAXPROCS; 1 forces sequential execution. The output
	// and the per-category block-transfer counts are identical at every
	// setting — parallelism buys wall-clock time only.
	Parallelism int
	// CacheBlocks carves this many blocks out of the memory budget for a
	// clean-frame LRU cache on the scratch device: repeat reads of
	// recently touched spill blocks are served from memory and reported
	// as cache hits instead of block transfers. Default 0 (off), which
	// keeps the counted I/Os exactly the paper's model.
	CacheBlocks int
	// ScratchQuotaBlocks caps the scratch device at this many blocks.
	// Writes past the quota fail with ErrScratchExhausted (IsExhausted);
	// as the device approaches the cap the sorters degrade gracefully
	// first — the merge-sort baseline streams its final merge instead of
	// materializing one more run. Default 0 (unlimited), the paper's
	// model.
	ScratchQuotaBlocks int64
	// CompressSpill front-codes and deflates every spill block on its way
	// to the scratch device (see DESIGN.md §14). The sorted output and
	// the counted logical block transfers — the paper's metric, reported
	// in Result.IOs as Reads/Writes/ReadBytes/WriteBytes — are unchanged;
	// what shrinks is the physical side (PhysReadBytes/PhysWriteBytes),
	// typically 2-4x on key-path spill data. Damage to a compressed block
	// at rest surfaces as a typed corruption error (IsCorrupt), exactly
	// like a checksum mismatch. Default off: the paper's model stores
	// blocks verbatim.
	CompressSpill bool
	// ReadAhead reserves this many pipeline blocks (on top of the memory
	// budget, so the sorter's share of M is untouched) for the scratch
	// device's read-ahead worker: sequential run readers prefetch
	// upcoming blocks while the sorter computes, overlapping I/O with
	// work. The sorted output and the counted logical block transfers
	// are identical at every depth — a prefetched block is charged only
	// when consumed. Default 0: fully synchronous I/O, the paper's
	// model.
	ReadAhead int
	// WriteBehind reserves this many pipeline blocks (on top of the
	// memory budget, like ReadAhead) for the scratch device's
	// write-behind queue: full run and stack blocks are flushed by a
	// background goroutine while the sorter keeps going. Like ReadAhead
	// it changes wall-clock time only; flush errors (including scratch
	// exhaustion) surface at the next operation on the same stream with
	// the usual typed taxonomy. Default 0: synchronous writes.
	WriteBehind int
	// MergeParallel range-partitions the final merge of every external
	// sort into up to this many key ranges, merged concurrently on the
	// worker pool and concatenated in key order (DESIGN.md §17). Implies
	// FenceIndex. The sorted output is byte-identical and the counted
	// logical block transfers per category are identical at every
	// setting > 0 — and identical to the serial merge except for the
	// fence-index side stream's own small category, so like Parallelism
	// it buys wall-clock time only. Default 0: the serial single-tree
	// final merge, the paper's model.
	MergeParallel int
	// FenceIndex emits a fence-key sparse index beside every spilled run
	// (the first normalized key of each run block, stored as a tiny
	// compressed side stream): the machinery MergeParallel partitions
	// with. On its own it adds the index streams without changing the
	// merge. Default off.
	FenceIndex bool
}

// Defaults for Config.
const (
	DefaultBlockSize   = 64 << 10
	DefaultMemoryBytes = 8 << 20
)

// DefaultConfig returns the paper-like default environment: 64 KiB blocks,
// 8 MiB of sort memory, scratch in the system temp directory.
func DefaultConfig() Config { return Config{} }

func (c Config) normalize() (em.Config, error) {
	bs := c.BlockSize
	if bs == 0 {
		bs = DefaultBlockSize
	}
	memBytes := c.MemoryBytes
	if memBytes == 0 {
		memBytes = DefaultMemoryBytes
	}
	blocks := int(memBytes / int64(bs))
	dir := c.ScratchDir
	if dir == "" && !c.InMemory {
		dir = os.TempDir()
	}
	cfg := em.Config{
		BlockSize:          bs,
		MemBlocks:          blocks,
		ScratchDir:         dir,
		InMemory:           c.InMemory,
		VerifyChecksums:    c.VerifyChecksums,
		Retry:              c.Retry,
		Parallelism:        c.Parallelism,
		CacheBlocks:        c.CacheBlocks,
		ScratchQuotaBlocks: c.ScratchQuotaBlocks,
		CompressSpill:      c.CompressSpill,
		ReadAhead:          c.ReadAhead,
		WriteBehind:        c.WriteBehind,
		MergeParallel:      c.MergeParallel,
		FenceIndex:         c.FenceIndex,
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Options configures a sort.
type Options struct {
	// Criterion is the ordering specification; nil preserves document
	// order (useful only for testing the machinery).
	Criterion *Criterion
	// Algorithm selects NEXSORT (default), the merge-sort baseline, or
	// the in-memory recursive sort.
	Algorithm Algorithm
	// Threshold is NEXSORT's sort threshold t in bytes; 0 picks twice the
	// block size, the paper's experimentally good setting.
	Threshold int
	// DepthLimit stops recursive sorting below the given level (root =
	// level 1); 0 sorts head to toe.
	DepthLimit int
	// Compact applies the paper's Section 3.2 compaction (name
	// dictionary, end-tag elision) to the working structures.
	Compact bool
	// Degenerate enables NEXSORT's graceful degeneration into external
	// merge sort on flat inputs (Section 3.2).
	Degenerate bool
	// RecordOrder, when non-empty, stamps each output element with an
	// attribute of this name holding its original sibling position
	// (zero-padded): sorting the result by that attribute later restores
	// the original document — the paper's order-preserving merge recipe.
	// NEXSORT algorithm only.
	RecordOrder string
	// SortChildrenOf switches the MergeSort algorithm to XSort semantics
	// (Section 2's related work): only the child lists of the named
	// elements are sorted, nothing recursively. Requires Algorithm ==
	// MergeSort — XSort "is implemented as standard external merge sort".
	SortChildrenOf []string
	// Indent pretty-prints the output with the given unit per level.
	Indent string
}

// Result reports a completed sort.
type Result struct {
	// Algorithm is the algorithm that ran.
	Algorithm Algorithm
	// Elements is N, the number of elements in the input.
	Elements int64
	// InputBytes and OutputBytes are document sizes.
	InputBytes  int64
	OutputBytes int64
	// IOs is the per-category breakdown of block transfers.
	IOs map[string]IOCount
	// TotalIOs is the sum over IOs — the paper's primary metric.
	TotalIOs int64
	// SimulatedSeconds converts TotalIOs through a 2003-era disk cost
	// model, for comparing curve shapes with the paper's figures.
	SimulatedSeconds float64
	// WallSeconds is the measured wall-clock time.
	WallSeconds float64

	// NEXSORT holds algorithm-specific detail when Algorithm == NEXSORT.
	NEXSORT *core.Report
	// MergeSort holds detail when Algorithm == MergeSort.
	MergeSort *extsort.XMLReport
}

// SortContext is Sort bounded by ctx: cancellation or a passed deadline is
// observed within a bounded number of block operations — the environment's
// device refuses further transfers, retry backoffs wake immediately, and
// the input/output streams are guarded — and
// the sort unwinds through its usual typed-error paths, releasing every
// frame and all scratch state. The returned error satisfies errors.Is
// against context.Canceled / context.DeadlineExceeded; nothing of the
// partial output should be used.
func SortContext(ctx context.Context, in io.Reader, out io.Writer, cfg Config, opts Options) (*Result, error) {
	emCfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	env, err := em.NewEnvContext(ctx, emCfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	res, err := sortInEnv(env, &ctxReader{ctx: ctx, r: in}, &ctxWriter{ctx: ctx, w: out}, opts)
	if err != nil {
		// Prefer the context's own error over the wrapped transport error:
		// if the context is over, that is the reason the sort stopped,
		// whatever layer happened to notice first.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return res, nil
}

// ctxReader fails reads once the context is cancelled. The sorters read
// the input in a tight streaming loop, so cancellation takes effect within
// one buffered block.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// ctxWriter fails writes once the context is cancelled, covering the
// output phase after the input has been fully consumed.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}

// Sort sorts the XML document read from in and writes the sorted document
// to out.
func Sort(in io.Reader, out io.Writer, cfg Config, opts Options) (*Result, error) {
	emCfg, err := cfg.normalize()
	if err != nil {
		return nil, err
	}
	env, err := em.NewEnv(emCfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()
	return sortInEnv(env, in, out, opts)
}

// sortInEnv runs a sort inside an existing environment; the benchmark
// harness uses it to keep full control of the accounting.
func sortInEnv(env *em.Env, in io.Reader, out io.Writer, opts Options) (*Result, error) {
	start := time.Now()
	res := &Result{Algorithm: opts.Algorithm}
	if len(opts.SortChildrenOf) > 0 && opts.Algorithm != MergeSort {
		return nil, fmt.Errorf("nexsort: SortChildrenOf (XSort semantics) requires Algorithm == MergeSort")
	}
	if opts.RecordOrder != "" && opts.Algorithm != NEXSORT {
		return nil, fmt.Errorf("nexsort: RecordOrder requires Algorithm == NEXSORT")
	}
	switch opts.Algorithm {
	case NEXSORT:
		rep, err := core.Sort(env, in, out, core.Options{
			Criterion:   opts.Criterion,
			Threshold:   opts.Threshold,
			DepthLimit:  opts.DepthLimit,
			Compact:     opts.Compact,
			Degenerate:  opts.Degenerate,
			RecordOrder: opts.RecordOrder,
			Indent:      opts.Indent,
		})
		if err != nil {
			return nil, err
		}
		res.NEXSORT = rep
		res.Elements = rep.Elements
		res.InputBytes = rep.InputBytes
		res.OutputBytes = rep.OutputBytes

	case MergeSort:
		crit := opts.Criterion
		if crit == nil {
			crit = &Criterion{}
		}
		rep, err := extsort.SortXML(env, crit, in, out, extsort.XMLOptions{
			DepthLimit:     opts.DepthLimit,
			Compact:        opts.Compact,
			Indent:         opts.Indent,
			SortChildrenOf: opts.SortChildrenOf,
		})
		if err != nil {
			return nil, err
		}
		res.MergeSort = rep
		res.Elements = rep.Elements
		res.InputBytes = rep.InputBytes

	case InMemory:
		rep, err := sortInMemory(env, in, out, opts)
		if err != nil {
			return nil, err
		}
		res.Elements = rep.elements
		res.InputBytes = rep.inputBytes
		res.OutputBytes = rep.outputBytes

	default:
		return nil, fmt.Errorf("nexsort: unknown algorithm %v", opts.Algorithm)
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.IOs = env.Stats.Snapshot()
	res.TotalIOs = env.Stats.TotalIOs()
	res.SimulatedSeconds = em.DefaultCostModel().Seconds(res.TotalIOs, env.Conf.BlockSize)
	return res, nil
}

// SortFile is Sort over file paths. Paths ending in ".gz" are read and
// written gzip-compressed transparently (XML interchange files commonly
// ship compressed); the I/O accounting measures the uncompressed stream,
// matching the model's element counts. If the sort fails after the output
// file was created, the partial output is removed: a path either holds a
// complete sorted document or does not exist.
func SortFile(inPath, outPath string, cfg Config, opts Options) (*Result, error) {
	return sortFile(inPath, outPath, func(in io.Reader, out io.Writer) (*Result, error) {
		return Sort(in, out, cfg, opts)
	})
}

// SortFileContext is SortFile bounded by ctx, with SortContext's
// cancellation semantics. The no-partial-output guarantee holds on the
// cancellation path too: a canceled sort removes whatever it had written
// to outPath before returning the context's error.
func SortFileContext(ctx context.Context, inPath, outPath string, cfg Config, opts Options) (*Result, error) {
	return sortFile(inPath, outPath, func(in io.Reader, out io.Writer) (*Result, error) {
		return SortContext(ctx, in, out, cfg, opts)
	})
}

// sortFile handles the path plumbing shared by SortFile and
// SortFileContext: open (ungzip) the input, create the output, run the
// sort, and remove the output on any failure — including cancellation.
func sortFile(inPath, outPath string, run func(io.Reader, io.Writer) (*Result, error)) (*Result, error) {
	in, err := os.Open(inPath)
	if err != nil {
		return nil, err
	}
	defer in.Close()
	var reader io.Reader = in
	if strings.HasSuffix(inPath, ".gz") {
		gz, err := gzip.NewReader(in)
		if err != nil {
			return nil, fmt.Errorf("nexsort: %s: %w", inPath, err)
		}
		defer gz.Close()
		reader = gz
	}

	out, err := os.Create(outPath)
	if err != nil {
		return nil, err
	}
	var writer io.Writer = out
	var gzw *gzip.Writer
	if strings.HasSuffix(outPath, ".gz") {
		gzw = gzip.NewWriter(out)
		writer = gzw
	}

	res, err := run(reader, writer)
	if gzw != nil {
		if closeErr := gzw.Close(); err == nil {
			err = closeErr
		}
	}
	if closeErr := out.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		os.Remove(outPath)
		return nil, err
	}
	return res, nil
}

// inMemoryReport carries the in-memory sorter's counters.
type inMemoryReport struct {
	elements    int64
	inputBytes  int64
	outputBytes int64
}

// sortInMemory is the internal-memory recursive sort of the paper's
// Section 1: read everything, sort the tree, write it out. I/O is charged
// for the streaming read and write; the tree itself is deliberately
// unbudgeted — the whole point of this baseline is that it assumes the
// document fits in memory.
func sortInMemory(env *em.Env, in io.Reader, out io.Writer, opts Options) (*inMemoryReport, error) {
	cr := em.NewCountingReader(in, env.Dev, em.CatInput)
	defer cr.Close()
	tree, err := xmltree.Parse(cr)
	if err != nil {
		return nil, err
	}
	cr.Finish()
	crit := opts.Criterion
	if crit == nil {
		crit = &Criterion{}
	}
	tree.ComputeKeys(crit)
	tree.SortToDepth(opts.DepthLimit)

	cw := em.NewCountingWriter(out, env.Dev, em.CatOutput)
	defer cw.Close()
	var xw *xmltok.Writer
	if opts.Indent != "" {
		xw = xmltok.NewIndentWriter(cw, opts.Indent)
	} else {
		xw = xmltok.NewWriter(cw)
	}
	if err := tree.WriteXML(xw); err != nil {
		return nil, err
	}
	if err := xw.Close(); err != nil {
		return nil, err
	}
	if err := cw.Flush(); err != nil {
		return nil, err
	}
	return &inMemoryReport{
		elements:    int64(tree.CountElements()),
		inputBytes:  cr.BytesRead(),
		outputBytes: cw.BytesWritten(),
	}, nil
}
