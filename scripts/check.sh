#!/bin/sh
# Pre-PR gate: everything must pass before a change ships.
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "check: all gates passed"
