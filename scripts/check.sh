#!/bin/sh
# Pre-PR gate: everything must pass before a change ships.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "check: all gates passed"
