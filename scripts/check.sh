#!/bin/sh
# Pre-PR gate: everything must pass before a change ships.
set -eu

cd "$(dirname "$0")/.."

echo "==> gofmt -l ."
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "==> go vet ./..."
go vet ./...

# nexvet: the project's own invariant analyzers (NV001-NV008). The binary
# build is incremental — the Go build cache makes this a no-op when
# cmd/nexvet and internal/analysis are unchanged. Two runs on purpose:
# the -vettool run proves the unit-checker protocol works per package, the
# standalone run adds the whole-tree stale-baseline check.
echo "==> nexvet (static invariants)"
go build -o bin/nexvet ./cmd/nexvet
go vet -vettool=bin/nexvet ./...
./bin/nexvet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "check: all gates passed"
