// Command xmlgen generates the XML workloads of the paper's evaluation.
//
//	xmlgen -shape ibm -height 5 -fanout 8 -max-elements 100000 > doc.xml
//	xmlgen -shape custom -fanouts 144,144,144 > table2-h4.xml
//	xmlgen -shape capped -elements 1000000 -fanout 85 > fig6.xml
//
// Shapes:
//
//	ibm     the IBM alphaWorks style: height + max fan-out, each
//	        element's fan-out uniform in [1, max]
//	custom  exact fan-out per level (the Table 2 generator)
//	capped  the Figure 6 construction: near-uniform shape of about
//	        -elements elements with fan-outs capped at -fanout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"nexsort"
)

func main() {
	var (
		shape    = flag.String("shape", "custom", "ibm | custom | capped")
		height   = flag.Int("height", 4, "ibm: number of levels")
		fanout   = flag.Int("fanout", 10, "ibm/capped: maximum fan-out")
		fanouts  = flag.String("fanouts", "10,10,10", "custom: per-level fan-outs, comma separated")
		elements = flag.Int64("elements", 100000, "capped: target element count")
		maxElems = flag.Int64("max-elements", 0, "ibm: stop after this many elements (0 = no cap)")
		seed     = flag.Int64("seed", 1, "random seed (documents are reproducible)")
		elemSize = flag.Int("elem-size", 0, "average element size in bytes (0 = the paper's ~150)")
		keyAttr  = flag.String("key", "", "sort-key attribute name (default \"key\")")
		outPath  = flag.String("out", "", "output file (default stdout)")
		quiet    = flag.Bool("q", false, "suppress the stats line on stderr")
	)
	flag.Parse()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	var spec nexsort.Generator
	switch *shape {
	case "ibm":
		spec = nexsort.IBMSpec{
			Height:      *height,
			MaxFanout:   *fanout,
			MaxElements: *maxElems,
			Seed:        *seed,
			ElemSize:    *elemSize,
			KeyAttr:     *keyAttr,
		}
	case "custom":
		fans, err := parseFanouts(*fanouts)
		if err != nil {
			fatal(err)
		}
		spec = nexsort.CustomSpec{Fanouts: fans, Seed: *seed, ElemSize: *elemSize, KeyAttr: *keyAttr}
	case "capped":
		cs := nexsort.CappedShape(*elements, *fanout)
		cs.Seed, cs.ElemSize, cs.KeyAttr = *seed, *elemSize, *keyAttr
		spec = cs
	default:
		fatal(fmt.Errorf("unknown shape %q", *shape))
	}

	stats, err := nexsort.Generate(spec, out)
	if err != nil {
		fatal(err)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "xmlgen: %d elements, height %d, max fan-out %d, %d bytes\n",
			stats.Elements, stats.Height, stats.MaxFanout, stats.Bytes)
	}
}

func parseFanouts(s string) ([]int, error) {
	parts := strings.Split(s, ",")
	fans := make([]int, 0, len(parts))
	for _, p := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad fan-out %q: %w", p, err)
		}
		fans = append(fans, n)
	}
	return fans, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlgen:", err)
	os.Exit(1)
}
