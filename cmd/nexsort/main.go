// Command nexsort sorts an XML document in external memory.
//
//	nexsort -by 'region=@name,branch=@name,employee=@ID' -in big.xml -out sorted.xml
//
// The ordering criterion (-by) uses the spec syntax of
// nexsort.ParseCriterion: comma-separated tag=source rules where source is
// @attr, name(), text(), or a/b/text(). The algorithm, block size, memory
// budget, sort threshold, depth limit and the paper's optional techniques
// (compaction, graceful degeneration) are all flags, so the tool doubles
// as a workbench for the paper's experiments.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"nexsort"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input XML file (default stdin)")
		outPath   = flag.String("out", "", "output file (default stdout)")
		by        = flag.String("by", "", "ordering criterion, e.g. 'employee=@ID,*=name()' (required)")
		algo      = flag.String("algo", "nexsort", "algorithm: nexsort | mergesort | inmemory")
		blockSize = flag.Int("block", nexsort.DefaultBlockSize, "block size in bytes")
		memBytes  = flag.Int64("mem", nexsort.DefaultMemoryBytes, "main-memory budget in bytes")
		threshold = flag.Int("threshold", 0, "NEXSORT sort threshold t in bytes (0 = 2 blocks)")
		depth     = flag.Int("depth", 0, "depth limit (0 = sort head to toe)")
		compactF  = flag.Bool("compact", false, "enable Section 3.2 compaction")
		degen     = flag.Bool("degenerate", false, "enable graceful degeneration on flat inputs")
		xsort     = flag.String("xsort", "", "XSort mode: only sort the child lists of these comma-separated tags (mergesort algorithm only)")
		recSeq    = flag.String("record-order", "", "stamp each element with this attribute holding its original sibling position (nexsort only)")
		indent    = flag.String("indent", "", "pretty-print output with this unit")
		scratch   = flag.String("scratch", "", "scratch directory (default system temp)")
		stats     = flag.Bool("stats", false, "print the I/O accounting to stderr")
		verify    = flag.Bool("verify-checksums", false, "checksum every spill block and verify on read (detects torn writes and bit rot)")
		retries   = flag.Int("retries", 0, "re-attempt transiently faulted spill transfers up to this many times (0 disables)")
		retryBase = flag.Duration("retry-delay", 0, "backoff before the first retry, doubling per attempt")
		retryMax  = flag.Duration("retry-max-delay", 0, "cap on the retry backoff (0 = uncapped)")
		quota     = flag.Int64("scratch-quota", 0, "fail with a scratch-exhausted error once spill storage exceeds this many blocks (0 = unlimited)")
		compress  = flag.Bool("spill-compress", false, "front-code and deflate spill blocks on the scratch device; counted logical I/Os are unchanged, physical scratch bytes shrink")
		readAhead = flag.Int("read-ahead", 0, "prefetch up to this many upcoming blocks per stream on a background worker (0 = synchronous reads); the counted logical I/Os are identical at every depth")
		writeBeh  = flag.Int("write-behind", 0, "hand full blocks to a background flusher and keep computing, up to this queue depth (0 = synchronous writes); the counted logical I/Os are identical at every depth")
		parallel  = flag.Int("parallel", 0, "worker parallelism: sorting overlaps with the input scan on up to this many goroutines (0 = GOMAXPROCS, 1 = sequential); output and I/O counts are identical at every setting")
		mergePar  = flag.Int("merge-parallel", 0, "range-partition the final merge into up to this many key ranges merged concurrently (implies -fence-index); output bytes are identical at every setting and logical I/Os differ from serial only by the fence-index side stream")
		fenceIdx  = flag.Bool("fence-index", false, "emit a fence-key sparse index beside every spilled run (one key per run block, as a tiny side stream)")
	)
	flag.Parse()

	if *by == "" {
		fmt.Fprintln(os.Stderr, "nexsort: -by is required (e.g. -by '@ID')")
		flag.Usage()
		os.Exit(2)
	}
	crit, err := nexsort.ParseCriterion(*by)
	if err != nil {
		fatal(err)
	}
	var algorithm nexsort.Algorithm
	switch *algo {
	case "nexsort":
		algorithm = nexsort.NEXSORT
	case "mergesort":
		algorithm = nexsort.MergeSort
	case "inmemory":
		algorithm = nexsort.InMemory
	default:
		fatal(fmt.Errorf("unknown algorithm %q", *algo))
	}

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	cfg := nexsort.Config{
		BlockSize:       *blockSize,
		MemoryBytes:     *memBytes,
		ScratchDir:      *scratch,
		VerifyChecksums: *verify,
		Retry: nexsort.RetryPolicy{
			MaxRetries:        *retries,
			BaseDelay:         *retryBase,
			MaxDelay:          *retryMax,
			RetryCorruptReads: *verify && *retries > 0,
		},
		Parallelism:        *parallel,
		ScratchQuotaBlocks: *quota,
		CompressSpill:      *compress,
		ReadAhead:          *readAhead,
		WriteBehind:        *writeBeh,
		MergeParallel:      *mergePar,
		FenceIndex:         *fenceIdx,
	}
	opts := nexsort.Options{
		Criterion:   crit,
		Algorithm:   algorithm,
		Threshold:   *threshold,
		DepthLimit:  *depth,
		Compact:     *compactF,
		Degenerate:  *degen,
		RecordOrder: *recSeq,
		Indent:      *indent,
	}
	if *xsort != "" {
		for _, tag := range strings.Split(*xsort, ",") {
			if tag = strings.TrimSpace(tag); tag != "" {
				opts.SortChildrenOf = append(opts.SortChildrenOf, tag)
			}
		}
	}
	res, err := nexsort.Sort(in, out, cfg, opts)
	if err != nil {
		if *outPath != "" {
			os.Remove(*outPath) // same contract as SortFile: no partial results
		}
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "algorithm=%v elements=%d in=%dB out=%dB\n",
			res.Algorithm, res.Elements, res.InputBytes, res.OutputBytes)
		fmt.Fprintf(os.Stderr, "total I/Os=%d wall=%.3fs simulated=%.2fs\n",
			res.TotalIOs, res.WallSeconds, res.SimulatedSeconds)
		cats := make([]string, 0, len(res.IOs))
		for c := range res.IOs {
			cats = append(cats, c)
		}
		sort.Strings(cats)
		for _, c := range cats {
			n := res.IOs[c]
			line := fmt.Sprintf("  %-14s reads=%-8d writes=%d", c, n.Reads, n.Writes)
			if n.Retries > 0 {
				line += fmt.Sprintf(" retries=%d", n.Retries)
			}
			if n.ChecksumFailures > 0 {
				line += fmt.Sprintf(" checksum-failures=%d", n.ChecksumFailures)
			}
			if n.PhysReadBytes > 0 || n.PhysWriteBytes > 0 {
				line += fmt.Sprintf(" logical-bytes=%d/%d physical-bytes=%d/%d",
					n.ReadBytes, n.WriteBytes, n.PhysReadBytes, n.PhysWriteBytes)
			}
			fmt.Fprintln(os.Stderr, line)
		}
		if res.NEXSORT != nil {
			r := res.NEXSORT
			fmt.Fprintf(os.Stderr, "subtree sorts=%d (internal=%d external=%d merged=%d unsorted=%d) run blocks=%d scratch blocks=%d threshold=%dB\n",
				r.SubtreeSorts, r.InternalSorts, r.ExternalSorts, r.MergedSubtrees, r.UnsortedRuns, r.RunBlocks, r.ScratchBlocks, r.Threshold)
		}
		if res.MergeSort != nil {
			r := res.MergeSort
			fmt.Fprintf(os.Stderr, "key-path records=%d (%dB, input %dB) initial runs=%d merge passes=%d\n",
				r.Records, r.RecordBytes, r.InputBytes, r.InitialRuns, r.MergePasses)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexsort:", err)
	os.Exit(1)
}
