// Command xmlmerge performs structural merge of two XML documents — the
// sort-merge join of the paper's Example 1.1.
//
//	xmlmerge -by 'region=@name,branch=@name,employee=@ID' \
//	    -left personnel.xml -right payroll.xml -out merged.xml
//
// By default the inputs are sorted first (with NEXSORT, into temporary
// files) and then merged in one pass. Pass -presorted when both inputs are
// already sorted by the same criterion to skip straight to the single-pass
// merge. -update switches to batch-update semantics: the right document's
// attribute values win on matched elements.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nexsort"
)

func main() {
	var (
		leftPath  = flag.String("left", "", "left (base) document (required)")
		rightPath = flag.String("right", "", "right (update) document (required)")
		outPath   = flag.String("out", "", "output file (default stdout)")
		by        = flag.String("by", "", "matching criterion, e.g. 'employee=@ID' (required)")
		presorted = flag.Bool("presorted", false, "inputs are already sorted; merge directly")
		update    = flag.Bool("update", false, "batch-update semantics: right side wins attribute conflicts")
		indent    = flag.String("indent", "", "pretty-print output with this unit")
		blockSize = flag.Int("block", nexsort.DefaultBlockSize, "block size for the sorting step")
		memBytes  = flag.Int64("mem", nexsort.DefaultMemoryBytes, "memory budget for the sorting step")
		scratch   = flag.String("scratch", "", "scratch directory (default system temp)")
		mergePar  = flag.Int("merge-parallel", 0, "range-partition each sorting step's final merge into up to this many concurrent key ranges; output bytes are identical at every setting and logical I/Os differ from serial only by the fence-index side stream")
		stats     = flag.Bool("stats", false, "print merge statistics to stderr")
	)
	flag.Parse()

	if *leftPath == "" || *rightPath == "" || *by == "" {
		fmt.Fprintln(os.Stderr, "xmlmerge: -left, -right and -by are required")
		flag.Usage()
		os.Exit(2)
	}
	crit, err := nexsort.ParseCriterion(*by)
	if err != nil {
		fatal(err)
	}

	left, err := os.Open(*leftPath)
	if err != nil {
		fatal(err)
	}
	defer left.Close()
	right, err := os.Open(*rightPath)
	if err != nil {
		fatal(err)
	}
	defer right.Close()

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fatal(err)
			}
		}()
		out = f
	}

	opts := nexsort.MergeOptions{PreferRight: *update, Indent: *indent}
	var rep *nexsort.MergeReport
	if *presorted {
		rep, err = nexsort.Merge(left, right, crit, out, opts)
	} else {
		cfg := nexsort.Config{BlockSize: *blockSize, MemoryBytes: *memBytes, ScratchDir: *scratch, MergeParallel: *mergePar}
		_, _, rep, err = nexsort.SortAndMerge(left, right, crit, out, cfg, opts)
	}
	if err != nil {
		fatal(err)
	}
	if *stats {
		fmt.Fprintf(os.Stderr, "xmlmerge: %d + %d elements in, %d matched pairs, %d elements out\n",
			rep.ElementsLeft, rep.ElementsRight, rep.Matched, rep.OutputElements)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlmerge:", err)
	os.Exit(1)
}
