// Command xmlcheck verifies in a single streaming pass that an XML
// document is sorted under a criterion.
//
//	xmlcheck -by 'employee=@ID,*=name()' -in sorted.xml && echo "sorted"
//
// Exit status: 0 when sorted, 1 when a violation is found, 2 on usage or
// input errors. The first violation is reported with its location.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nexsort"
)

func main() {
	var (
		inPath = flag.String("in", "", "input XML file (default stdin)")
		by     = flag.String("by", "", "ordering criterion, e.g. '@ID' (required)")
		depth  = flag.Int("depth", 0, "check down to this level only (0 = all levels)")
		quiet  = flag.Bool("q", false, "no output; exit status only")
	)
	flag.Parse()

	if *by == "" {
		fmt.Fprintln(os.Stderr, "xmlcheck: -by is required")
		flag.Usage()
		os.Exit(2)
	}
	crit, err := nexsort.ParseCriterion(*by)
	if err != nil {
		fatal(err)
	}
	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	rep, err := nexsort.Check(in, crit, *depth)
	if err != nil {
		fatal(err)
	}
	if rep.Sorted {
		if !*quiet {
			fmt.Printf("sorted: %d elements, %d text nodes\n", rep.Elements, rep.TextNodes)
		}
		return
	}
	if !*quiet {
		fmt.Println(rep.Violation.Error())
	}
	os.Exit(1)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlcheck:", err)
	os.Exit(2)
}
