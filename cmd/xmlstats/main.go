// Command xmlstats profiles an XML document in one streaming pass and
// predicts sorting costs for a given environment: the document's shape
// parameters (N, k, height, per-level fan-outs), the Section 4 analytic
// bounds evaluated for those parameters, and the exact Lemma 4.3 counting
// bound — so a user can see, before sorting anything, how much cheaper the
// hierarchy makes their document than a flat file of the same size.
//
//	xmlstats -in big.xml -block 65536 -mem 8388608
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"nexsort/internal/stats"
	"nexsort/internal/theory"
)

func main() {
	var (
		inPath    = flag.String("in", "", "input XML file (default stdin)")
		blockSize = flag.Int64("block", 64<<10, "block size in bytes, for the bound predictions")
		memBytes  = flag.Int64("mem", 8<<20, "memory budget in bytes, for the bound predictions")
		levels    = flag.Bool("levels", false, "print the per-level profile")
	)
	flag.Parse()

	var in io.Reader = os.Stdin
	if *inPath != "" {
		f, err := os.Open(*inPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	d, err := stats.Scan(in)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("elements           %d\n", d.Elements)
	fmt.Printf("text nodes         %d\n", d.TextNodes)
	fmt.Printf("bytes              %d\n", d.Bytes)
	fmt.Printf("height             %d\n", d.Height)
	fmt.Printf("max fan-out (k)    %d\n", d.MaxFanout)
	fmt.Printf("avg element size   %.1f bytes\n", d.AvgElementBytes)
	if *levels {
		fmt.Println("level  elements  max fan-out")
		for _, lv := range d.Levels {
			fmt.Printf("%5d  %8d  %d\n", lv.Level, lv.Elements, lv.MaxFanout)
		}
	}

	if d.Elements == 0 || d.AvgElementBytes == 0 {
		return
	}
	b := int64(float64(*blockSize) / d.AvgElementBytes) // elements per block
	if b < 1 {
		b = 1
	}
	m := *memBytes / *blockSize // memory blocks
	if m < 2 {
		m = 2
	}
	n, k := d.Elements, int64(d.MaxFanout)

	fmt.Printf("\nbound predictions at B=%d bytes (%d elements/block), M=%d blocks:\n", *blockSize, b, m)
	fmt.Printf("  XML lower bound (Thm 4.4)    %.0f block I/Os\n", theory.AsymptoticLowerBound(n, b, m, k))
	fmt.Printf("  flat-file bound (A&V)        %.0f block I/Os\n", theory.FlatFileLowerBound(n, b, m))
	xmlT := theory.MinIOs(theory.MaxOutcomes(n, k), n, b, m)
	flatT := theory.MinIOs(theory.Factorial(minN(n, 200000)), minN(n, 200000), b, m)
	fmt.Printf("  exact counting bound (XML)   %d block I/Os\n", xmlT)
	if n <= 200000 {
		fmt.Printf("  exact counting bound (flat)  %d block I/Os\n", flatT)
	}
}

// minN caps the factorial's size; N! for huge N is expensive to even hold.
func minN(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xmlstats:", err)
	os.Exit(1)
}
