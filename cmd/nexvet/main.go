// nexvet statically enforces NEXSORT's frame, budget, and I/O-accounting
// invariants (see DESIGN.md §11). It runs two ways:
//
//	go vet -vettool=$(command -v nexvet) ./...   # unit-checker mode, per package
//	nexvet ./...                                 # standalone: whole tree + stale-baseline check
//
// Diagnostics print as "file:line:col: [CODE] message (hint)" — clickable
// in CI logs. Codes: NV001 framebalance, NV002 iopurity, NV003 statsatomic,
// NV004 detptr. Intentional exceptions live in
// internal/analysis/baseline.txt; the standalone run fails on entries that
// no longer match anything.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexsort/internal/analysis"
)

func main() {
	// The go vet driver probes with -V=full and -flags before handing over
	// per-package .cfg files; intercept those before flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			analysis.PrintVersion(os.Stdout, "nexvet")
			return
		case "-flags", "--flags":
			analysis.PrintFlags(os.Stdout)
			return
		}
	}

	baselineFlag := flag.String("baseline", "", "baseline file (default: internal/analysis/baseline.txt under the module root)")
	listCodes := flag.Bool("codes", false, "print the diagnostic-code reference and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nexvet [-baseline file] [packages]\n")
		fmt.Fprintf(os.Stderr, "       nexvet <unit.cfg>        (go vet -vettool protocol)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listCodes {
		for _, az := range analysis.All() {
			fmt.Printf("%s %-13s %s\n", az.Code, az.Name, az.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVettool(args[0], *baselineFlag)
		return
	}
	runStandalone(args, *baselineFlag)
}

// runVettool is one go vet unit-checker invocation: analyze the package
// the driver described, report non-baselined findings, exit 1 if any.
func runVettool(cfgFile, baselinePath string) {
	if baselinePath == "" {
		if cwd, err := os.Getwd(); err == nil {
			baselinePath = analysis.FindBaseline(cwd)
		}
	}
	diags, err := analysis.RunUnitchecker(cfgFile, baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runStandalone analyzes whole packages via the go toolchain and
// additionally fails on stale baseline entries — only a whole-tree run can
// tell that an exception no longer matches anything.
func runStandalone(patterns []string, baselinePath string) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexvet:", err)
		os.Exit(2)
	}
	if baselinePath == "" {
		baselinePath = analysis.FindBaseline(cwd)
	}

	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analysis.All())

	baseline, err := analysis.LoadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kept, suppressed := baseline.Filter(diags)

	for _, d := range kept {
		fmt.Fprintln(os.Stderr, rel(cwd, d))
	}
	// Stale entries can only be judged against the whole tree; a subset run
	// legitimately leaves entries for unanalyzed packages untouched.
	var stale []string
	if wholeTree(patterns) {
		stale = baseline.Stale()
	}
	for _, s := range stale {
		fmt.Fprintln(os.Stderr, s)
	}
	if len(kept) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
	fmt.Printf("nexvet: %d packages clean (%d baselined exceptions)\n", len(pkgs), len(suppressed))
}

// wholeTree reports whether the pattern set covers the entire module, which
// is the only scope where an unused baseline entry is provably stale.
func wholeTree(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			return true
		}
	}
	return false
}

// rel renders d with a module-relative path when possible, keeping output
// stable across checkouts.
func rel(cwd string, d analysis.Diagnostic) string {
	if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}
