// nexvet statically enforces NEXSORT's frame, budget, I/O-accounting, and
// concurrency invariants (see DESIGN.md §11 and §16). It runs two ways:
//
//	go vet -vettool=$(command -v nexvet) ./...   # unit-checker mode, per package
//	nexvet ./...                                 # standalone: whole tree + stale-baseline check
//
// Diagnostics print as "file:line:col: [CODE] message (hint)" — clickable
// in CI logs. Codes: NV001 framebalance, NV002 iopurity, NV003 statsatomic,
// NV004 detptr, NV005 ctxflow, NV006 goleak, NV007 chandisc, NV008
// lockguard (`nexvet -codes` prints the full reference). Intentional
// exceptions live in internal/analysis/baseline.txt; the standalone run
// fails on entries that no longer match anything, and
// `nexvet -fix-baseline ./...` regenerates the file, keeping existing
// justifications and writing rejected-until-edited TODO placeholders for
// new findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"nexsort/internal/analysis"
)

func main() {
	// The go vet driver probes with -V=full and -flags before handing over
	// per-package .cfg files; intercept those before flag parsing.
	if len(os.Args) == 2 {
		switch os.Args[1] {
		case "-V=full", "--V=full":
			analysis.PrintVersion(os.Stdout, "nexvet")
			return
		case "-flags", "--flags":
			analysis.PrintFlags(os.Stdout)
			return
		}
	}

	baselineFlag := flag.String("baseline", "", "baseline file (default: internal/analysis/baseline.txt under the module root)")
	listCodes := flag.Bool("codes", false, "print the diagnostic-code reference and exit")
	jsonOut := flag.Bool("json", false, "emit one JSON object per diagnostic on stdout (baselined findings included, marked)")
	onlyFlag := flag.String("only", "", "comma-separated NV codes to run (e.g. NV006,NV007,NV008); default all")
	fixBaseline := flag.Bool("fix-baseline", false, "regenerate the baseline file from the current findings, preserving justifications; fails on stale entries instead of dropping them")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: nexvet [-baseline file] [-only CODES] [-json] [-fix-baseline] [packages]\n")
		fmt.Fprintf(os.Stderr, "       nexvet <unit.cfg>        (go vet -vettool protocol)\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listCodes {
		for _, az := range analysis.All() {
			fmt.Printf("%s %-13s %s\n", az.Code, az.Name, az.Doc)
		}
		return
	}

	analyzers, codes, err := selectAnalyzers(*onlyFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexvet:", err)
		os.Exit(2)
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		runVettool(args[0], *baselineFlag)
		return
	}
	runStandalone(args, *baselineFlag, analyzers, codes, *jsonOut, *fixBaseline)
}

// selectAnalyzers resolves -only into the analyzer subset to run; codes is
// nil when every analyzer runs (so stale checking covers the whole file).
func selectAnalyzers(only string) ([]*analysis.Analyzer, map[string]bool, error) {
	all := analysis.All()
	if only == "" {
		return all, nil, nil
	}
	want := map[string]bool{}
	for _, c := range strings.Split(only, ",") {
		want[strings.ToUpper(strings.TrimSpace(c))] = true
	}
	var picked []*analysis.Analyzer
	codes := map[string]bool{}
	for _, az := range all {
		if want[az.Code] {
			picked = append(picked, az)
			codes[az.Code] = true
			delete(want, az.Code)
		}
	}
	for c := range want {
		return nil, nil, fmt.Errorf("-only: unknown code %s (see nexvet -codes)", c)
	}
	return picked, codes, nil
}

// runVettool is one go vet unit-checker invocation: analyze the package
// the driver described, report non-baselined findings, exit 1 if any.
func runVettool(cfgFile, baselinePath string) {
	if baselinePath == "" {
		if cwd, err := os.Getwd(); err == nil {
			baselinePath = analysis.FindBaseline(cwd)
		}
	}
	diags, err := analysis.RunUnitchecker(cfgFile, baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// runStandalone analyzes whole packages via the go toolchain and
// additionally fails on stale baseline entries — only a whole-tree run can
// tell that an exception no longer matches anything.
func runStandalone(patterns []string, baselinePath string, analyzers []*analysis.Analyzer, codes map[string]bool, jsonOut, fixBaseline bool) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "nexvet:", err)
		os.Exit(2)
	}
	if baselinePath == "" {
		baselinePath = analysis.FindBaseline(cwd)
	}

	pkgs, err := analysis.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, analyzers)

	if fixBaseline {
		runFixBaseline(cwd, baselinePath, diags)
		return
	}

	baseline, err := analysis.LoadBaseline(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	kept, suppressed := baseline.Filter(diags)

	if jsonOut {
		emitJSON(cwd, kept, false)
		emitJSON(cwd, suppressed, true)
	} else {
		for _, d := range kept {
			fmt.Fprintln(os.Stderr, rel(cwd, d))
		}
	}
	// Stale entries can only be judged against the whole tree; a subset run
	// legitimately leaves entries for unanalyzed packages untouched. A
	// -only run can likewise only judge the codes it executed.
	var stale []string
	if wholeTree(patterns) {
		stale = baseline.StaleIn(codes)
	}
	for _, s := range stale {
		fmt.Fprintln(os.Stderr, s)
	}
	if len(kept) > 0 || len(stale) > 0 {
		os.Exit(1)
	}
	if !jsonOut {
		fmt.Printf("nexvet: %d packages clean (%d baselined exceptions)\n", len(pkgs), len(suppressed))
	}
}

// runFixBaseline rewrites the baseline from the current findings. Existing
// justifications are preserved verbatim; new findings get TODO
// placeholders that LoadBaseline rejects until a human edits them; stale
// entries FAIL the run without writing — deleting a justification is a
// decision, not a side effect of regeneration.
func runFixBaseline(cwd, baselinePath string, diags []analysis.Diagnostic) {
	if baselinePath == "" {
		baselinePath = filepath.Join(cwd, "internal", "analysis", "baseline.txt")
	}
	baseline, err := analysis.LoadBaselineLenient(baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	content, stale := baseline.Regenerate(diags, cwd)
	if len(stale) > 0 {
		fmt.Fprintln(os.Stderr, "nexvet: -fix-baseline refuses to drop justifications silently; delete these dead entries first:")
		for _, s := range stale {
			fmt.Fprintln(os.Stderr, s)
		}
		os.Exit(1)
	}
	if err := os.WriteFile(baselinePath, []byte(content), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "nexvet:", err)
		os.Exit(2)
	}
	fmt.Printf("nexvet: baseline rewritten to %s (%d findings covered)\n", rel2(cwd, baselinePath), len(diags))
}

// jsonDiag is the -json line shape: stable field names for CI annotation
// tooling.
type jsonDiag struct {
	Analyzer  string `json:"analyzer"`
	Code      string `json:"code"`
	File      string `json:"file"`
	Line      int    `json:"line"`
	Col       int    `json:"col"`
	Func      string `json:"func,omitempty"`
	Package   string `json:"package"`
	Message   string `json:"message"`
	Hint      string `json:"hint,omitempty"`
	Baselined bool   `json:"baselined"`
}

// emitJSON prints one JSON object per diagnostic on stdout.
func emitJSON(cwd string, diags []analysis.Diagnostic, baselined bool) {
	names := map[string]string{}
	for _, az := range analysis.All() {
		names[az.Code] = az.Name
	}
	enc := json.NewEncoder(os.Stdout)
	for _, d := range diags {
		enc.Encode(jsonDiag{
			Analyzer:  names[d.Code],
			Code:      d.Code,
			File:      rel2(cwd, d.Pos.Filename),
			Line:      d.Pos.Line,
			Col:       d.Pos.Column,
			Func:      d.Func,
			Package:   d.Pkg,
			Message:   d.Message,
			Hint:      d.Hint,
			Baselined: baselined,
		})
	}
}

// wholeTree reports whether the pattern set covers the entire module, which
// is the only scope where an unused baseline entry is provably stale.
func wholeTree(patterns []string) bool {
	for _, p := range patterns {
		if p == "./..." || p == "all" {
			return true
		}
	}
	return false
}

// rel renders d with a module-relative path when possible, keeping output
// stable across checkouts.
func rel(cwd string, d analysis.Diagnostic) string {
	d.Pos.Filename = rel2(cwd, d.Pos.Filename)
	return d.String()
}

func rel2(cwd, path string) string {
	if r, err := filepath.Rel(cwd, path); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return path
}
