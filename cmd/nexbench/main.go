// Command nexbench regenerates the paper's evaluation: every table and
// figure of Section 5, plus the theory check of Section 4 and the optional
// ablations.
//
//	nexbench                         # run everything at the default scale
//	nexbench -exp fig6 -scale 2      # one experiment, twice the input
//	nexbench -exp table1             # the key-path representation demo
//
// Experiments: table1, table2, fig5, fig6, fig7, threshold, bounds,
// ablation, parallel, alloc, cmp, spill, all. Results print as aligned text
// tables whose columns match the paper's axes; EXPERIMENTS.md records a
// reference run next to the paper's numbers. The parallel, alloc, cmp and
// spill experiments are not paper figures: parallel shows the worker pool's
// wall-clock speedup at identical block-transfer counts, alloc shows each
// sorter's heap churn (allocs/op, B/op — the -benchmem columns) under the
// frame-pool substrate, cmp measures the comparison kernel, and spill
// measures the compressed spill format's physical-byte reduction on the
// file backend.
// -json switches every table to one JSON object per line for scripting.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"nexsort/internal/bench"
	"nexsort/internal/em"
)

// jsonOut is set by -json: tables print as JSON objects instead of text.
var jsonOut bool

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: table1|table2|fig5|fig6|fig7|threshold|bounds|ablation|parallel|alloc|cmp|spill|overlap|pmerge|all")
		scale     = flag.Float64("scale", 1.0, "input size multiplier (1.0 ≈ seconds per experiment)")
		scratch   = flag.String("scratch", "", "scratch directory for workloads and spill (default: memory-backed spill, temp-dir workloads)")
		seed      = flag.Int64("seed", 1, "workload seed")
		verify    = flag.Bool("verify-checksums", false, "checksum every spill block in the experiment environments")
		retries   = flag.Int("retries", 0, "retry budget for transiently faulted spill transfers (0 disables)")
		retryBase = flag.Duration("retry-delay", 0, "backoff before the first retry, doubling per attempt")
		parallel  = flag.Int("parallel", 0, "worker parallelism for every experiment environment (0 = GOMAXPROCS, 1 = sequential); block-transfer counts are unaffected")
		jsonFlag  = flag.Bool("json", false, "emit each result table as one JSON object per line instead of aligned text")
		cmpOut    = flag.String("cmp-out", "BENCH_cmp.json", "output path for the cmp experiment's machine-readable rows")
		compress  = flag.Bool("spill-compress", false, "front-code and deflate spill blocks in every experiment environment; logical block transfers are unchanged")
		spillOut  = flag.String("spill-out", "BENCH_spill.json", "output path for the spill experiment's machine-readable rows")
		overlapO  = flag.String("overlap-out", "BENCH_overlap.json", "output path for the overlap experiment's machine-readable rows")
		pmergeO   = flag.String("pmerge-out", "BENCH_pmerge.json", "output path for the pmerge experiment's machine-readable rows")
		readAhead = flag.Int("read-ahead", 0, "read-ahead depth for every experiment environment (0 = synchronous); counted block transfers are unaffected")
		writeBeh  = flag.Int("write-behind", 0, "write-behind depth for every experiment environment (0 = synchronous); counted block transfers are unaffected")
		mergePar  = flag.Int("merge-parallel", 0, "final-merge partition count for every experiment environment (0 = serial); output bytes are unaffected and counted block transfers gain only the fence-index side stream")
	)
	flag.Parse()
	jsonOut = *jsonFlag

	bench.Hardening.VerifyChecksums = *verify
	bench.Hardening.Retry = em.RetryPolicy{
		MaxRetries:        *retries,
		BaseDelay:         *retryBase,
		RetryCorruptReads: *verify && *retries > 0,
	}
	bench.Hardening.CompressSpill = *compress
	bench.DefaultParallelism = *parallel
	bench.DefaultReadAhead = *readAhead
	bench.DefaultWriteBehind = *writeBeh
	bench.DefaultMergeParallel = *mergePar

	dir := *scratch
	if dir == "" {
		d, err := os.MkdirTemp("", "nexbench-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(d)
		dir = d
	}

	s := bench.Scale(*scale)
	want := func(name string) bool { return *exp == "all" || *exp == name }
	ran := false

	if want("table1") {
		ran = true
		rows, err := bench.Table1()
		if err != nil {
			fatal(err)
		}
		printTable(bench.Table1Render(rows))
	}
	if want("table2") {
		ran = true
		paper, scaled := bench.Table2(s)
		printTable(bench.Table2Render(paper, scaled))
	}
	if want("fig5") {
		ran = true
		run("Figure 5 (memory sweep)", func() error {
			rows, w, err := bench.Fig5(bench.Fig5Config{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			defer w.Close()
			fmt.Printf("document: %d elements, %d bytes, height %d, max fan-out %d\n",
				w.Stats.Elements, w.Stats.Bytes, w.Stats.Height, w.Stats.MaxFanout)
			printTable(bench.Fig5Table(rows))
			return nil
		})
	}
	if want("fig6") {
		ran = true
		run("Figure 6 (input size sweep)", func() error {
			rows, err := bench.Fig6(bench.Fig6Config{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.Fig6Table(rows))
			return nil
		})
	}
	if want("fig7") {
		ran = true
		run("Figure 7 (tree shape sweep)", func() error {
			rows, err := bench.Fig7(bench.Fig7Config{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.Fig7Table(rows))
			return nil
		})
	}
	if want("threshold") {
		ran = true
		run("Sort-threshold sweep", func() error {
			rows, err := bench.Threshold(bench.ThresholdConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.ThresholdTable(rows))
			return nil
		})
	}
	if want("bounds") {
		ran = true
		run("Theorem 4.4/4.5 bounds check", func() error {
			rows, err := bench.Bounds(bench.BoundsConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.BoundsTable(rows))
			return nil
		})
	}
	if want("ablation") {
		ran = true
		run("Ablations (compaction, graceful degeneration)", func() error {
			rows, err := bench.Ablation(bench.AblationConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.AblationTable(rows))
			return nil
		})
	}
	if want("parallel") {
		ran = true
		run("Parallel speedup (sequential vs worker pool)", func() error {
			rows, err := bench.Parallel(bench.ParallelConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.ParallelTable(rows))
			return nil
		})
	}
	if want("alloc") {
		ran = true
		run("Allocation profile (frame-pool heap churn)", func() error {
			rows, err := bench.Alloc(bench.AllocConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.AllocTable(rows))
			return nil
		})
	}
	if want("cmp") {
		ran = true
		run("Comparison kernel (normalized keys, loser tree)", func() error {
			rows, err := bench.Cmp(bench.CmpConfig{Scale: s, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.CmpTable(rows))
			// The machine-readable result rides next to the rendered
			// table: one JSON document with the raw rows, for CI smoke
			// checks and cross-run diffing.
			f, err := os.Create(*cmpOut)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !jsonOut {
				fmt.Printf("(comparison-kernel rows written to %s)\n", *cmpOut)
			}
			return nil
		})
	}

	if want("spill") {
		ran = true
		run("Compressed spill format (logical vs physical scratch bytes)", func() error {
			rows, err := bench.Spill(bench.SpillConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.SpillTable(rows))
			f, err := os.Create(*spillOut)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !jsonOut {
				fmt.Printf("(spill-format rows written to %s)\n", *spillOut)
			}
			return nil
		})
	}

	if want("overlap") {
		ran = true
		run("Asynchronous I/O engine (wall clock vs pipeline depth)", func() error {
			rows, err := bench.Overlap(bench.OverlapConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.OverlapTable(rows))
			f, err := os.Create(*overlapO)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !jsonOut {
				fmt.Printf("(overlap rows written to %s)\n", *overlapO)
			}
			return nil
		})
	}

	if want("pmerge") {
		ran = true
		run("Range-partitioned merge (merge-phase wall clock vs partition count)", func() error {
			rows, err := bench.PMerge(bench.PMergeConfig{Scale: s, ScratchDir: dir, Seed: *seed})
			if err != nil {
				return err
			}
			printTable(bench.PMergeTable(rows))
			f, err := os.Create(*pmergeO)
			if err != nil {
				return err
			}
			enc := json.NewEncoder(f)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			if !jsonOut {
				fmt.Printf("(pmerge rows written to %s)\n", *pmergeO)
			}
			return nil
		})
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "nexbench: unknown experiment %q\n", *exp)
		flag.Usage()
		os.Exit(2)
	}
}

func run(title string, f func() error) {
	start := time.Now()
	if err := f(); err != nil {
		fatal(fmt.Errorf("%s: %w", title, err))
	}
	if !jsonOut {
		fmt.Printf("(%s completed in %.1fs)\n\n", title, time.Since(start).Seconds())
	}
}

func printTable(t *bench.Table) {
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		if err := enc.Encode(t); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Println(strings.Repeat("=", 72))
	if err := t.Fprint(os.Stdout); err != nil {
		fatal(err)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "nexbench:", err)
	os.Exit(1)
}
