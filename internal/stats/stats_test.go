package stats

import (
	"strings"
	"testing"
	"testing/quick"

	"math/rand"

	"nexsort/internal/gen"
	"nexsort/internal/xmltree"
)

func TestScanByHand(t *testing.T) {
	doc := `<r><a x="1">text<b/><b/></a><a/></r>`
	d, err := Scan(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if d.Elements != 5 || d.TextNodes != 1 {
		t.Errorf("N=%d texts=%d", d.Elements, d.TextNodes)
	}
	if d.Height != 3 {
		t.Errorf("height = %d", d.Height)
	}
	// First <a> has 3 children (text + 2 b's): k = 3.
	if d.MaxFanout != 3 {
		t.Errorf("k = %d", d.MaxFanout)
	}
	if int64(len(doc)) != d.Bytes {
		t.Errorf("bytes = %d, want %d", d.Bytes, len(doc))
	}
	if len(d.Levels) != 3 || d.Levels[0].Elements != 1 || d.Levels[1].Elements != 2 || d.Levels[2].Elements != 2 {
		t.Errorf("levels = %+v", d.Levels)
	}
	if d.Levels[1].MaxFanout != 3 {
		t.Errorf("level-2 fanout = %d", d.Levels[1].MaxFanout)
	}
}

func TestScanMalformed(t *testing.T) {
	if _, err := Scan(strings.NewReader("<a><b></a>")); err == nil {
		t.Error("malformed input should error")
	}
}

// Property: the streaming scan agrees with the in-memory tree on generated
// and random documents.
func TestScanMatchesTreeQuick(t *testing.T) {
	f := func(seed int64, h, fan uint8) bool {
		spec := gen.IBMSpec{
			Height:      1 + int(h%5),
			MaxFanout:   1 + int(fan%6),
			MaxElements: 600,
			Seed:        seed,
			ElemSize:    60,
		}
		var sb strings.Builder
		if _, err := spec.Write(&sb); err != nil {
			return false
		}
		doc := sb.String()
		d, err := Scan(strings.NewReader(doc))
		if err != nil {
			return false
		}
		tree, err := xmltree.ParseString(doc)
		if err != nil {
			return false
		}
		return d.Elements == int64(tree.CountElements()) &&
			d.Height == tree.Height() &&
			d.MaxFanout == tree.MaxFanout()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestScanLevelTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var sb strings.Builder
	if _, err := (gen.CustomSpec{Fanouts: []int{7, 6, 5}, Seed: rng.Int63()}).Write(&sb); err != nil {
		t.Fatal(err)
	}
	d, err := Scan(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{1, 7, 42, 210}
	var total int64
	for i, lv := range d.Levels {
		if lv.Elements != want[i] {
			t.Errorf("level %d: %d elements, want %d", i+1, lv.Elements, want[i])
		}
		total += lv.Elements
	}
	if total != d.Elements {
		t.Errorf("level totals %d != N %d", total, d.Elements)
	}
}
