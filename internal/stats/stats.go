// Package stats computes the shape statistics of an XML document in one
// streaming pass with O(height) memory: exactly the parameters of the
// paper's analysis (N, k, height, element sizes) plus a per-level profile.
// Combined with the theory package it predicts, for a given environment,
// the XML sorting lower bound, NEXSORT's upper bound and the flat-file
// bound for the concrete document — the numbers a capacity planner would
// want before choosing a sorter and a memory budget.
package stats

import (
	"io"

	"nexsort/internal/xmltok"
)

// LevelProfile describes one nesting level (root = level 1).
type LevelProfile struct {
	Level     int
	Elements  int64
	MaxFanout int
}

// Document is the streaming statistics result.
type Document struct {
	// Elements is N; TextNodes counts character-data nodes.
	Elements  int64
	TextNodes int64
	// Bytes is the document's size as read.
	Bytes int64
	// Height is the deepest element nesting.
	Height int
	// MaxFanout is k, counting element and text children alike (the
	// analysis treats both as orderable children).
	MaxFanout int
	// AvgElementBytes is Bytes/Elements, the B-divisor of the analysis.
	AvgElementBytes float64
	// Levels holds the per-level profile.
	Levels []LevelProfile
}

// Scan consumes the document and returns its statistics.
func Scan(r io.Reader) (*Document, error) {
	counter := &countingReader{r: r}
	p := xmltok.NewParser(counter, xmltok.DefaultParserOptions())
	doc := &Document{}
	var fanouts []int // open-element child counts (O(height))

	bump := func() {
		if len(fanouts) == 0 {
			return
		}
		fanouts[len(fanouts)-1]++
		level := len(fanouts)
		if f := fanouts[level-1]; f > doc.Levels[level-1].MaxFanout {
			doc.Levels[level-1].MaxFanout = f
		}
		if f := fanouts[len(fanouts)-1]; f > doc.MaxFanout {
			doc.MaxFanout = f
		}
	}

	for {
		tok, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			bump()
			fanouts = append(fanouts, 0)
			if len(fanouts) > doc.Height {
				doc.Height = len(fanouts)
			}
			for len(doc.Levels) < len(fanouts) {
				doc.Levels = append(doc.Levels, LevelProfile{Level: len(doc.Levels) + 1})
			}
			doc.Levels[len(fanouts)-1].Elements++
			doc.Elements++
		case xmltok.KindText:
			doc.TextNodes++
			bump()
		case xmltok.KindEnd:
			fanouts = fanouts[:len(fanouts)-1]
		}
	}
	doc.Bytes = counter.n
	if doc.Elements > 0 {
		doc.AvgElementBytes = float64(doc.Bytes) / float64(doc.Elements)
	}
	return doc, nil
}

type countingReader struct {
	r io.Reader
	n int64
}

func (c *countingReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.n += int64(n)
	return n, err
}
