package xmltree

import (
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
)

const companyD1 = `<company>
  <region name="NE"><branch name="Atlanta"><employee ID="454"/></branch></region>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`

func mustParse(t *testing.T, doc string) *Node {
	t.Helper()
	n, err := ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseAndStats(t *testing.T) {
	n := mustParse(t, companyD1)
	if n.Name != "company" {
		t.Errorf("root = %q", n.Name)
	}
	// company + 2 regions + 3 branches + 3 employees + name + phone = 11.
	if got := n.CountElements(); got != 11 {
		t.Errorf("CountElements = %d, want 11", got)
	}
	if got := n.Height(); got != 5 {
		t.Errorf("Height = %d, want 5", got)
	}
	// Every element here has at most 2 children (text children included).
	if got := n.MaxFanout(); got != 2 {
		t.Errorf("MaxFanout = %d, want 2", got)
	}
}

func TestSeqAssignment(t *testing.T) {
	n := mustParse(t, `<r><a/><b/>text<c/></r>`)
	wantSeq := []int64{0, 1, 2, 3}
	for i, ch := range n.Children {
		if ch.Seq != wantSeq[i] {
			t.Errorf("child %d Seq = %d, want %d", i, ch.Seq, wantSeq[i])
		}
	}
}

func TestComputeKeysAttr(t *testing.T) {
	n := mustParse(t, companyD1)
	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
	}}
	n.ComputeKeys(c)
	if n.Children[0].Key != "NE" || n.Children[1].Key != "AC" {
		t.Errorf("region keys = %q, %q", n.Children[0].Key, n.Children[1].Key)
	}
	if n.Key != "" {
		t.Errorf("company (no rule) key = %q", n.Key)
	}
	emp := n.Children[1].Children[0].Children[1]
	if emp.Key != "323" {
		t.Errorf("employee key = %q", emp.Key)
	}
	// name/phone have no rule: empty keys.
	if emp.Children[0].Key != "" {
		t.Errorf("name key = %q", emp.Children[0].Key)
	}
}

func TestComputeKeysPath(t *testing.T) {
	doc := `<staff>
	  <emp><info><name><last>Zeta</last></name></info></emp>
	  <emp><info><name><last><deco/>Alpha</last></name></info></emp>
	  <emp><info><skip><last>Wrong</last></skip></info><info><name><last>Mid</last></name></info></emp>
	</staff>`
	n := mustParse(t, doc)
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "emp", Source: keys.ByPath("info", "name", "last")}}}
	n.ComputeKeys(c)
	got := []string{n.Children[0].Key, n.Children[1].Key, n.Children[2].Key}
	want := []string{"Zeta", "Alpha", "Mid"}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("emp %d key = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSortRecursive(t *testing.T) {
	n := mustParse(t, companyD1)
	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
	}}
	n.ComputeKeys(c)
	if n.IsSorted(0) {
		t.Fatal("document should not be sorted initially")
	}
	n.SortRecursive()
	if !n.IsSorted(0) {
		t.Fatal("document should be sorted after SortRecursive")
	}
	want := `<company><region name="AC"><branch name="Atlanta"></branch><branch name="Durham"><employee ID="323"><name>Smith</name><phone>5552345</phone></employee><employee ID="454"></employee></branch></region><region name="NE"><branch name="Atlanta"><employee ID="454"></employee></branch></region></company>`
	if got := n.XMLString(); got != want {
		t.Errorf("sorted document:\n got %s\nwant %s", got, want)
	}
}

func TestSortStabilityForEqualKeys(t *testing.T) {
	// Text children (empty key) must keep document order and sort before
	// keyed elements; equal-keyed elements keep document order.
	n := mustParse(t, `<r><e k="b" n="1"/>hello<e k="a" n="2"/><e k="a" n="3"/>world</r>`)
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByAttr("k")}}}
	n.ComputeKeys(c)
	n.SortRecursive()
	want := `<r>helloworld<e k="a" n="2"></e><e k="a" n="3"></e><e k="b" n="1"></e></r>`
	if got := n.XMLString(); got != want {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestSortToDepth(t *testing.T) {
	// Level 1: r. Level 2: g. Level 3: i. Level 4: leaf.
	doc := `<r><g name="b"><i name="z"><leaf name="2"/><leaf name="1"/></i><i name="a"/></g><g name="a"/></r>`
	c := keys.ByAttrOrTag("name")
	// Depth limit 2: child lists of elements at levels 1..2 are sorted
	// (the g-list under r, the i-lists under each g); subtrees rooted
	// below level 2 — the i elements at level 3 — stay internally
	// unsorted, so the leaf list keeps document order.
	n := mustParse(t, doc)
	n.ComputeKeys(c)
	n.SortToDepth(2)
	want := `<r><g name="a"></g><g name="b"><i name="a"></i><i name="z"><leaf name="2"></leaf><leaf name="1"></leaf></i></g></r>`
	if got := n.XMLString(); got != want {
		t.Errorf("depth-2 sort:\n got %s\nwant %s", got, want)
	}
	if !n.IsSorted(2) {
		t.Error("IsSorted(2) should hold")
	}
	if n.IsSorted(0) {
		t.Error("IsSorted(0) should not hold: the leaf list is unsorted")
	}
	// Depth 0 (unlimited) sorts everything.
	n2 := mustParse(t, doc)
	n2.ComputeKeys(c)
	n2.SortToDepth(0)
	if !n2.IsSorted(0) {
		t.Error("unlimited sort should fully sort")
	}
}

func TestEmitTokensRoundTrip(t *testing.T) {
	n := mustParse(t, companyD1)
	var toks []xmltok.Token
	if err := n.EmitTokens(func(tok xmltok.Token) error {
		toks = append(toks, tok)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	back, err := FromTokens(&sliceSource{toks: toks})
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(n, back) {
		t.Error("EmitTokens/FromTokens round trip mismatch")
	}
}

type sliceSource struct {
	toks []xmltok.Token
	i    int
}

func (s *sliceSource) Next() (xmltok.Token, error) {
	if s.i >= len(s.toks) {
		return xmltok.Token{}, io.EOF
	}
	t := s.toks[s.i]
	s.i++
	return t, nil
}

func TestRunRefNodes(t *testing.T) {
	toks := []xmltok.Token{
		{Kind: xmltok.KindStart, Name: "parent"},
		{Kind: xmltok.KindRunPtr, Run: 7, Name: "collapsed", Key: "kk", HasKey: true},
		{Kind: xmltok.KindStart, Name: "live"},
		{Kind: xmltok.KindEnd, Name: "live", Key: "aa", HasKey: true},
		{Kind: xmltok.KindEnd, Name: "parent", Key: "", HasKey: true},
	}
	n, err := FromTokens(&sliceSource{toks: toks})
	if err != nil {
		t.Fatal(err)
	}
	if n.Children[0].Kind != RunRef || n.Children[0].Run != 7 || n.Children[0].Key != "kk" {
		t.Errorf("run ref child = %+v", n.Children[0])
	}
	if n.Children[1].Key != "aa" {
		t.Errorf("end-tag key not installed: %+v", n.Children[1])
	}
	n.SortRecursive()
	// "aa" < "kk": the live child must now precede the run ref.
	if n.Children[0].Kind != Elem {
		t.Error("sort did not order run ref by its key")
	}
	// RunRef trees cannot serialize textually.
	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	if err := n.WriteXML(w); err == nil {
		t.Error("WriteXML with RunRef should fail")
	}
}

func TestFromTokensErrors(t *testing.T) {
	if _, err := FromTokens(&sliceSource{}); err != io.ErrUnexpectedEOF {
		t.Errorf("empty source: %v", err)
	}
	_, err := FromTokens(&sliceSource{toks: []xmltok.Token{
		{Kind: xmltok.KindStart, Name: "a"},
		{Kind: xmltok.KindEnd, Name: "b"},
	}})
	if err == nil {
		t.Error("mismatched end should fail")
	}
	_, err = FromTokens(&sliceSource{toks: []xmltok.Token{
		{Kind: xmltok.KindStart, Name: "a"},
	}})
	if err != io.ErrUnexpectedEOF {
		t.Errorf("truncated stream: %v", err)
	}
	_, err = FromTokens(&sliceSource{toks: []xmltok.Token{{Kind: xmltok.KindEnd, Name: "a"}}})
	if err == nil {
		t.Error("stream starting with end tag should fail")
	}
}

func TestCloneIndependence(t *testing.T) {
	n := mustParse(t, companyD1)
	c := n.Clone()
	if !Equal(n, c) {
		t.Fatal("clone not equal")
	}
	c.Children[0].Attrs[0].Value = "changed"
	c.Children[0].Children = nil
	if Equal(n, c) {
		t.Error("mutating the clone affected equality")
	}
	if n.Children[0].Attrs[0].Value != "NE" {
		t.Error("original mutated through clone")
	}
}

func TestEqualEdgeCases(t *testing.T) {
	a := mustParse(t, `<a x="1"/>`)
	b := mustParse(t, `<a x="2"/>`)
	if Equal(a, b) {
		t.Error("different attr values should differ")
	}
	cDoc := mustParse(t, `<a/>`)
	if Equal(a, cDoc) {
		t.Error("different attr counts should differ")
	}
	if !Equal(nil, nil) || Equal(a, nil) {
		t.Error("nil handling")
	}
}

// randomTree builds a random document tree with attribute keys.
func randomTree(rng *rand.Rand, maxElems int) *Node {
	var count int
	var build func(depth int) *Node
	build = func(depth int) *Node {
		count++
		n := &Node{Kind: Elem, Name: string(rune('a' + rng.Intn(4)))}
		if rng.Intn(3) > 0 {
			n.Attrs = []xmltok.Attr{{Name: "k", Value: string(rune('0' + rng.Intn(10)))}}
		}
		kids := rng.Intn(4)
		for i := 0; i < kids && count < maxElems && depth < 8; i++ {
			if rng.Intn(4) == 0 {
				appendChild(n, &Node{Kind: Text, Text: "t" + string(rune('0'+rng.Intn(10)))})
			} else {
				appendChild(n, build(depth+1))
			}
		}
		return n
	}
	return build(0)
}

// Property: SortRecursive is idempotent, preserves the node multiset, and
// produces a tree satisfying IsSorted.
func TestSortPropertiesQuick(t *testing.T) {
	c := keys.ByAttrOrTag("k")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 60)
		n.ComputeKeys(c)
		before := n.CountNodes()
		beforeElems := n.CountElements()
		n.SortRecursive()
		if !n.IsSorted(0) {
			return false
		}
		if n.CountNodes() != before || n.CountElements() != beforeElems {
			return false
		}
		snapshot := n.Clone()
		n.SortRecursive()
		return Equal(n, snapshot)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: sorting preserves every parent-child relationship — each node
// keeps exactly the same child multiset, just reordered.
func TestSortPreservesParentChildQuick(t *testing.T) {
	c := keys.ByAttrOrTag("k")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomTree(rng, 40)
		n.ComputeKeys(c)
		beforeSig := childSignatures(n, map[string]int{})
		n.SortRecursive()
		afterSig := childSignatures(n, map[string]int{})
		if len(beforeSig) != len(afterSig) {
			return false
		}
		for k, v := range beforeSig {
			if afterSig[k] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// childSignatures counts (parent shallow identity, child shallow identity)
// pairs. Sorting reorders children in place but never moves a node to a
// different parent, so this multiset is invariant; the shallow identity
// (kind, name, attrs, text) is itself unchanged by recursive sorting.
func childSignatures(n *Node, acc map[string]int) map[string]int {
	if n.Kind == Elem {
		for _, ch := range n.Children {
			acc[shallowSig(n)+"|"+shallowSig(ch)]++
		}
		for _, ch := range n.Children {
			childSignatures(ch, acc)
		}
	}
	return acc
}

func shallowSig(n *Node) string {
	var sb strings.Builder
	sb.WriteByte(byte('0' + n.Kind))
	sb.WriteString(n.Name)
	for _, a := range n.Attrs {
		sb.WriteString("," + a.Name + "=" + a.Value)
	}
	sb.WriteString("#" + n.Text)
	return sb.String()
}
