// Package xmltree is the in-memory XML representation used in two roles:
//
//   - as the paper's "internal-memory recursive sort" (Section 1): build a
//     DOM-like tree, recursively sort every element's child list, and emit —
//     both the correctness oracle for the external algorithms and the
//     subtree sorter NEXSORT's Line 11 uses when a subtree fits in memory;
//
//   - as a test utility: deep equality, canonical serialization, and shape
//     statistics (element count, height, maximum fan-out k) that the
//     analysis formulas need.
//
// Trees may contain RunRef nodes — stand-ins for subtrees already collapsed
// into sorted runs (Figure 2 of the paper). They carry the collapsed
// subtree's ordering key and sort like ordinary children, but serialize to
// run-pointer tokens instead of markup.
package xmltree

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
)

// NodeKind discriminates tree nodes.
type NodeKind byte

// Node kinds.
const (
	// Elem is an element with a name, attributes and children.
	Elem NodeKind = iota
	// Text is a character-data leaf.
	Text
	// RunRef is a collapsed subtree: a pointer to a sorted run.
	RunRef
)

// Node is one tree node. Exactly one of the kind-specific field groups is
// meaningful.
type Node struct {
	Kind  NodeKind
	Name  string        // Elem, RunRef (collapsed root's tag, for inspection)
	Attrs []xmltok.Attr // Elem
	Text  string        // Text
	Run   int64         // RunRef: sorted-run identifier

	// Key is the node's ordering key. Text nodes always use the empty
	// key, so they sort before keyed element siblings and keep document
	// order among themselves (the position tie-break).
	Key string
	// Seq is the node's position among its siblings in the original
	// document, the uniqueness tie-break of Section 1.
	Seq int64

	Children []*Node // Elem only
}

// TokenSource yields a token stream, io.EOF at the end. Both the textual
// parser and the binary codec readers satisfy it via small adapters.
type TokenSource interface {
	Next() (xmltok.Token, error)
}

// FromTokens builds a tree from a token stream describing one element (and
// its subtree). Keys carried on end tags and run pointers are installed on
// the corresponding nodes; sibling sequence numbers are assigned in stream
// order. The stream may continue after the element closes; FromTokens stops
// at the matching end tag.
func FromTokens(src TokenSource) (*Node, error) {
	tok, err := src.Next()
	if err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return FromFirst(src, tok)
}

// FromFirst builds a tree whose first token has already been read — used
// when a caller iterates sibling subtrees off one stream and needs to look
// at each leading token itself to detect the end of the sibling list.
func FromFirst(src TokenSource, first xmltok.Token) (*Node, error) {
	switch first.Kind {
	case xmltok.KindText:
		return &Node{Kind: Text, Text: first.Text}, nil
	case xmltok.KindRunPtr:
		return &Node{Kind: RunRef, Run: first.Run, Name: first.Name, Key: first.Key}, nil
	case xmltok.KindStart:
		root := &Node{Kind: Elem, Name: first.Name, Attrs: first.Attrs}
		if first.HasKey {
			root.Key = first.Key
		}
		var stack []*Node
		stack = append(stack, root)
		for {
			tok, err := src.Next()
			if err != nil {
				if err == io.EOF {
					return nil, io.ErrUnexpectedEOF
				}
				return nil, err
			}
			top := stack[len(stack)-1]
			switch tok.Kind {
			case xmltok.KindStart:
				n := &Node{Kind: Elem, Name: tok.Name, Attrs: tok.Attrs}
				if tok.HasKey {
					n.Key = tok.Key
				}
				appendChild(top, n)
				stack = append(stack, n)
			case xmltok.KindText:
				appendChild(top, &Node{Kind: Text, Text: tok.Text})
			case xmltok.KindRunPtr:
				appendChild(top, &Node{Kind: RunRef, Run: tok.Run, Name: tok.Name, Key: tok.Key})
			case xmltok.KindEnd:
				if tok.Name != "" && tok.Name != top.Name {
					return nil, fmt.Errorf("xmltree: end tag </%s> does not match <%s>", tok.Name, top.Name)
				}
				if tok.HasKey {
					top.Key = tok.Key
				}
				stack = stack[:len(stack)-1]
				if len(stack) == 0 {
					return root, nil
				}
			}
		}
	default:
		return nil, fmt.Errorf("xmltree: tree cannot start with a %v token", first.Kind)
	}
}

func appendChild(parent, child *Node) {
	child.Seq = int64(len(parent.Children))
	parent.Children = append(parent.Children, child)
}

// Parse builds a tree from textual XML.
func Parse(r io.Reader) (*Node, error) {
	p := xmltok.NewParser(r, xmltok.DefaultParserOptions())
	return FromTokens(parserSource{p})
}

type parserSource struct{ p *xmltok.Parser }

func (s parserSource) Next() (xmltok.Token, error) { return s.p.Next() }

// ParseString builds a tree from a document literal (tests, examples).
func ParseString(doc string) (*Node, error) { return Parse(strings.NewReader(doc)) }

// ComputeKeys evaluates the criterion on every element, top-down, matching
// the streaming Matcher semantics exactly: a path key is the first direct
// text of the first descendant chain matching the path, in document order.
func (n *Node) ComputeKeys(c *keys.Criterion) {
	if n.Kind == Elem {
		src, ok := c.SourceFor(n.Name)
		if !ok {
			n.Key = ""
		} else {
			switch src.Kind {
			case keys.SrcTag:
				n.Key = c.Clip(n.Name)
			case keys.SrcAttr:
				n.Key = ""
				for _, a := range n.Attrs {
					if a.Name == src.Attr {
						n.Key = c.Clip(a.Value)
						break
					}
				}
			case keys.SrcText, keys.SrcPath:
				if text, ok := n.findPathText(src.Path); ok {
					n.Key = c.Clip(text)
				} else {
					n.Key = ""
				}
			}
		}
		for _, ch := range n.Children {
			ch.ComputeKeys(c)
		}
	}
}

// findPathText walks descendant chains matching path (empty path means this
// node itself) and returns the first direct text child of the first fully
// matched chain, in document order.
func (n *Node) findPathText(path []string) (string, bool) {
	if len(path) == 0 {
		for _, ch := range n.Children {
			if ch.Kind == Text {
				return ch.Text, true
			}
		}
		return "", false
	}
	for _, ch := range n.Children {
		if ch.Kind == Elem && ch.Name == path[0] {
			if text, ok := ch.findPathText(path[1:]); ok {
				return text, true
			}
		}
	}
	return "", false
}

// SortRecursive fully sorts the tree: the children of every element are
// reordered by (Key, Seq). This is the paper's head-to-toe sort.
func (n *Node) SortRecursive() { n.SortToDepth(0) }

// SortToDepth performs depth-limited sorting (Section 3.2): with the root
// at level 1, child lists of elements at levels 1..d are sorted; subtrees
// rooted below level d keep their internal order. d <= 0 means unlimited.
func (n *Node) SortToDepth(d int) { n.sortLevel(1, d) }

func (n *Node) sortLevel(level, limit int) {
	if n.Kind != Elem {
		return
	}
	if limit > 0 && level > limit {
		return
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		a, b := n.Children[i], n.Children[j]
		return keys.Compare(a.Key, a.Seq, b.Key, b.Seq) < 0
	})
	for _, ch := range n.Children {
		ch.sortLevel(level+1, limit)
	}
}

// IsSorted reports whether every element's child list (down to the given
// depth limit; 0 = unlimited) is ordered by (Key, Seq). It is the
// sortedness predicate used by property tests.
func (n *Node) IsSorted(limit int) bool { return n.sortedLevel(1, limit) }

func (n *Node) sortedLevel(level, limit int) bool {
	if n.Kind != Elem || (limit > 0 && level > limit) {
		return true
	}
	for i := 1; i < len(n.Children); i++ {
		a, b := n.Children[i-1], n.Children[i]
		if keys.Compare(a.Key, a.Seq, b.Key, b.Seq) > 0 {
			return false
		}
	}
	for _, ch := range n.Children {
		if !ch.sortedLevel(level+1, limit) {
			return false
		}
	}
	return true
}

// EmitTokens streams the subtree in depth-first order to emit. Elements
// carry their key on the start tag (runs written by subtree sorts keep keys
// available for later merge steps); run references become run-pointer
// tokens.
func (n *Node) EmitTokens(emit func(xmltok.Token) error) error {
	switch n.Kind {
	case Text:
		return emit(xmltok.Token{Kind: xmltok.KindText, Text: n.Text})
	case RunRef:
		return emit(xmltok.Token{Kind: xmltok.KindRunPtr, Run: n.Run, Name: n.Name, Key: n.Key, HasKey: true})
	case Elem:
		start := xmltok.Token{Kind: xmltok.KindStart, Name: n.Name, Attrs: n.Attrs, Key: n.Key, HasKey: true}
		if err := emit(start); err != nil {
			return err
		}
		for _, ch := range n.Children {
			if err := ch.EmitTokens(emit); err != nil {
				return err
			}
		}
		return emit(xmltok.Token{Kind: xmltok.KindEnd, Name: n.Name})
	default:
		return fmt.Errorf("xmltree: unknown node kind %d", n.Kind)
	}
}

// WriteXML serializes the subtree as textual XML through w. Trees holding
// RunRef nodes cannot be serialized textually.
func (n *Node) WriteXML(w *xmltok.Writer) error {
	return n.EmitTokens(func(t xmltok.Token) error {
		t.HasKey, t.Key = false, ""
		return w.WriteToken(t)
	})
}

// XMLString renders the subtree as a compact XML string (tests, examples).
func (n *Node) XMLString() string {
	var sb strings.Builder
	w := xmltok.NewWriter(&sb)
	if err := n.WriteXML(w); err != nil {
		return "<!error: " + err.Error() + ">"
	}
	if err := w.Close(); err != nil {
		return "<!error: " + err.Error() + ">"
	}
	return sb.String()
}

// Equal reports deep structural equality: kind, name, attributes (order
// included), text, run IDs and child lists. Keys and sequence numbers are
// working data, not document content, and are ignored.
func Equal(a, b *Node) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || a.Name != b.Name || a.Text != b.Text || a.Run != b.Run {
		return false
	}
	if len(a.Attrs) != len(b.Attrs) || len(a.Children) != len(b.Children) {
		return false
	}
	for i := range a.Attrs {
		if a.Attrs[i] != b.Attrs[i] {
			return false
		}
	}
	for i := range a.Children {
		if !Equal(a.Children[i], b.Children[i]) {
			return false
		}
	}
	return true
}

// CountElements returns the number of element nodes in the subtree (the
// paper's N, under its equal-sized-element accounting).
func (n *Node) CountElements() int {
	if n.Kind != Elem {
		return 0
	}
	total := 1
	for _, ch := range n.Children {
		total += ch.CountElements()
	}
	return total
}

// CountNodes returns the number of nodes of any kind in the subtree.
func (n *Node) CountNodes() int {
	total := 1
	for _, ch := range n.Children {
		total += ch.CountNodes()
	}
	return total
}

// MaxFanout returns k, the maximum number of children of any element.
func (n *Node) MaxFanout() int {
	if n.Kind != Elem {
		return 0
	}
	k := len(n.Children)
	for _, ch := range n.Children {
		if ck := ch.MaxFanout(); ck > k {
			k = ck
		}
	}
	return k
}

// Height returns the number of element levels (a lone root has height 1).
func (n *Node) Height() int {
	if n.Kind != Elem {
		return 0
	}
	deepest := 0
	for _, ch := range n.Children {
		if h := ch.Height(); h > deepest {
			deepest = h
		}
	}
	return deepest + 1
}

// Clone returns a deep copy of the subtree.
func (n *Node) Clone() *Node {
	c := *n
	c.Attrs = append([]xmltok.Attr(nil), n.Attrs...)
	c.Children = make([]*Node, len(n.Children))
	for i, ch := range n.Children {
		c.Children[i] = ch.Clone()
	}
	return &c
}
