// Package runstore manages NEXSORT's sorted runs: the on-device streams
// that hold sorted subtrees, connected into a tree by run-pointer tokens
// (Figure 3 of the paper). Each subtree sort writes one run through a
// token-level Writer; the output phase walks the tree through token-level
// Readers that can start at any byte offset, which is how the output
// location stack resumes a parent run after a detour into a child run.
package runstore

import (
	"fmt"
	"io"
	"sync"

	"nexsort/internal/em"
	"nexsort/internal/xmltok"
)

// RunID identifies a sorted run within its Store.
type RunID int64

// Store is a collection of sorted runs on one device.
type Store struct {
	dev *em.Device

	mu   sync.Mutex
	runs []*em.Stream
}

// New creates an empty store over dev.
func New(dev *em.Device) *Store { return &Store{dev: dev} }

// Len returns the number of runs created so far (x in the paper's
// analysis; Lemma 4.7 bounds it by O(N/t)).
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.runs)
}

// TotalBlocks returns the number of device blocks occupied by all runs
// (Lemma 4.8 bounds it by O(N/B)).
func (s *Store) TotalBlocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	total := 0
	for _, r := range s.runs {
		total += r.Blocks()
	}
	return total
}

// Size returns the byte size of run id.
func (s *Store) Size(id RunID) (int64, error) {
	run, err := s.run(id)
	if err != nil {
		return 0, err
	}
	return run.Size(), nil
}

func (s *Store) run(id RunID) (*em.Stream, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 0 || int(id) >= len(s.runs) {
		return nil, fmt.Errorf("runstore: unknown run %d", id)
	}
	return s.runs[id], nil
}

// Create opens a new run for writing, charging its I/O to cat. One block
// of main memory is granted from budget for the write buffer (nil skips
// budgeting). The run's ID is assigned immediately so the caller can embed
// it in a run-pointer token while still writing.
func (s *Store) Create(cat em.Category, budget *em.Budget) (RunID, *Writer, error) {
	stream := em.NewStream(s.dev, cat)
	w, err := stream.NewWriter(budget)
	if err != nil {
		return 0, nil, err
	}
	s.mu.Lock()
	id := RunID(len(s.runs))
	s.runs = append(s.runs, stream)
	s.mu.Unlock()
	return id, &Writer{w: w}, nil
}

// Open opens run id for token-level reading starting at byte offset off,
// charging reads to the run's write category.
func (s *Store) Open(id RunID, budget *em.Budget, off int64) (*Reader, error) {
	run, err := s.run(id)
	if err != nil {
		return nil, err
	}
	sr, err := run.NewReader(budget, off)
	if err != nil {
		return nil, err
	}
	return &Reader{sr: sr}, nil
}

// OpenCat is Open with reads charged to an explicit category: the output
// phase charges its run reads to em.CatRunRead (Lemma 4.12) even though the
// runs were written under the subtree-sort category.
func (s *Store) OpenCat(id RunID, budget *em.Budget, off int64, cat em.Category) (*Reader, error) {
	run, err := s.run(id)
	if err != nil {
		return nil, err
	}
	sr, err := run.NewReaderCat(budget, off, cat)
	if err != nil {
		return nil, err
	}
	return &Reader{sr: sr}, nil
}

// Writer appends tokens to a run.
type Writer struct {
	w      *em.StreamWriter
	encBuf []byte
	tokens int64
}

// WriteToken appends one encoded token.
func (w *Writer) WriteToken(tok xmltok.Token) error {
	w.encBuf = xmltok.AppendToken(w.encBuf[:0], tok)
	if _, err := w.w.Write(w.encBuf); err != nil {
		return err
	}
	w.tokens++
	return nil
}

// Tokens returns the number of tokens written so far.
func (w *Writer) Tokens() int64 { return w.tokens }

// Close seals the run and releases the buffer grant.
func (w *Writer) Close() error { return w.w.Close() }

// Reader streams tokens out of a run, holding one token decoder so the
// decode scratch is reused across the whole run.
type Reader struct {
	sr  *em.StreamReader
	dec xmltok.Decoder
}

// ReadToken returns the next token, io.EOF at the end of the run.
func (r *Reader) ReadToken() (xmltok.Token, error) { return r.dec.ReadToken(r.sr) }

// Offset returns the byte offset of the next token — the resume location
// pushed onto the output location stack when a run pointer is followed.
func (r *Reader) Offset() int64 { return r.sr.Offset() }

// Close releases the reader's buffer grant.
func (r *Reader) Close() error { return r.sr.Close() }

// Tree describes the run-pointer tree for inspection (Figure 3): the runs
// referenced by run id, with the IDs of the child runs its pointers lead
// to, in the order encountered.
type Tree struct {
	Root     RunID
	Children map[RunID][]RunID
}

// InspectTree walks the run tree from root without budget accounting; it
// is a test and debugging aid, not part of the sorting pipeline.
func (s *Store) InspectTree(root RunID) (*Tree, error) {
	t := &Tree{Root: root, Children: map[RunID][]RunID{}}
	var walk func(id RunID) error
	walk = func(id RunID) error {
		if _, seen := t.Children[id]; seen {
			return fmt.Errorf("runstore: run %d referenced twice", id)
		}
		t.Children[id] = []RunID{}
		r, err := s.Open(id, nil, 0)
		if err != nil {
			return err
		}
		defer r.Close()
		for {
			tok, err := r.ReadToken()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			if tok.Kind == xmltok.KindRunPtr {
				t.Children[id] = append(t.Children[id], RunID(tok.Run))
				if err := walk(RunID(tok.Run)); err != nil {
					return err
				}
			}
		}
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	return t, nil
}
