package runstore

import (
	"io"
	"reflect"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/xmltok"
)

func newStore(t *testing.T) (*Store, *em.Stats) {
	t.Helper()
	stats := em.NewStats()
	dev := em.NewDevice(em.NewMemBackend(), 64, stats)
	return New(dev), stats
}

func TestWriteReadRun(t *testing.T) {
	s, _ := newStore(t)
	id, w, err := s.Create(em.CatSubtreeSort, nil)
	if err != nil {
		t.Fatal(err)
	}
	toks := []xmltok.Token{
		{Kind: xmltok.KindStart, Name: "a", Attrs: []xmltok.Attr{{Name: "k", Value: "v"}}},
		{Kind: xmltok.KindText, Text: "hello"},
		{Kind: xmltok.KindRunPtr, Run: 42, Name: "sub", Key: "kk", HasKey: true},
		{Kind: xmltok.KindEnd, Name: "a"},
	}
	for _, tok := range toks {
		if err := w.WriteToken(tok); err != nil {
			t.Fatal(err)
		}
	}
	if w.Tokens() != int64(len(toks)) {
		t.Errorf("Tokens = %d", w.Tokens())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(id, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []xmltok.Token
	for {
		tok, err := r.ReadToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}
	if !reflect.DeepEqual(got, toks) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", got, toks)
	}
}

func TestReaderResumeAtOffset(t *testing.T) {
	s, _ := newStore(t)
	id, w, _ := s.Create(em.CatSubtreeSort, nil)
	w.WriteToken(xmltok.Token{Kind: xmltok.KindStart, Name: "first"})
	w.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "first"})
	w.Close()

	r, _ := s.Open(id, nil, 0)
	if _, err := r.ReadToken(); err != nil {
		t.Fatal(err)
	}
	resume := r.Offset()
	r.Close()

	// Re-open at the recorded offset, as the output phase does after a
	// detour into a child run.
	r2, err := s.Open(id, nil, resume)
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	tok, err := r2.ReadToken()
	if err != nil || tok.Kind != xmltok.KindEnd || tok.Name != "first" {
		t.Errorf("resumed token = %+v, %v", tok, err)
	}
}

// TestStoreThroughCompressedSpill runs the token-run store over the spill
// codec stack (compression above the physical byte counter, exactly as the
// environment assembles it): runs must round-trip token-exact while the
// bytes crossing the inner backend shrink below the logical ledger, and
// the codec's per-operation scratch must be clean when the store is idle.
func TestStoreThroughCompressedSpill(t *testing.T) {
	// Block size 256 (not the other tests' 64): the codec's per-block slot
	// header and deflate overhead only amortize at realistic block sizes.
	stats := em.NewStats()
	codec := em.NewCompressedBackend(em.NewPhysCountBackend(em.NewMemBackend(), stats), 256, stats)
	dev := em.NewDevice(codec, 256, stats)
	s := New(dev)

	// Token runs with the repetitive names and keys real subtree sorts
	// produce, long enough to span many blocks.
	var toks []xmltok.Token
	for i := 0; i < 200; i++ {
		toks = append(toks,
			xmltok.Token{Kind: xmltok.KindStart, Name: "employee", Attrs: []xmltok.Attr{{Name: "ID", Value: "00042"}}},
			xmltok.Token{Kind: xmltok.KindText, Text: "region/NE/branch/02"},
			xmltok.Token{Kind: xmltok.KindEnd, Name: "employee"},
		)
	}
	id, w, err := s.Create(em.CatSubtreeSort, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks {
		if err := w.WriteToken(tok); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := s.Open(id, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var got []xmltok.Token
	for {
		tok, err := r.ReadToken()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, tok)
	}
	if !reflect.DeepEqual(got, toks) {
		t.Fatal("compressed run round trip mismatch")
	}
	c := em.CatSubtreeSort
	if stats.Writes(c) == 0 || stats.PhysWriteBytes(c) == 0 {
		t.Fatalf("no spill traffic measured: writes=%d physWB=%d", stats.Writes(c), stats.PhysWriteBytes(c))
	}
	if got, want := stats.PhysWriteBytes(c), stats.WriteBytes(c); got >= want {
		t.Errorf("physical write bytes %d not below logical %d", got, want)
	}
	if live := codec.ScratchFramesLive(); live != 0 {
		t.Errorf("%d codec scratch frames live after the round trip", live)
	}
}

func TestStoreErrors(t *testing.T) {
	s, _ := newStore(t)
	if _, err := s.Open(0, nil, 0); err == nil {
		t.Error("opening a nonexistent run should fail")
	}
	if _, err := s.Size(5); err == nil {
		t.Error("sizing a nonexistent run should fail")
	}
	id, w, _ := s.Create(em.CatSubtreeSort, nil)
	if _, err := s.Open(id, nil, 0); err == nil {
		t.Error("opening an unsealed run should fail")
	}
	w.Close()
	if _, err := s.Open(id, nil, 1<<20); err == nil {
		t.Error("offset beyond run should fail")
	}
}

func TestStoreAccounting(t *testing.T) {
	s, stats := newStore(t)
	id, w, _ := s.Create(em.CatSubtreeSort, nil)
	for i := 0; i < 50; i++ {
		w.WriteToken(xmltok.Token{Kind: xmltok.KindText, Text: "0123456789"})
	}
	w.Close()
	if s.Len() != 1 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.TotalBlocks() < 5 {
		t.Errorf("TotalBlocks = %d, want >= 5 (600 bytes over 64-byte blocks)", s.TotalBlocks())
	}
	if got := stats.Writes(em.CatSubtreeSort); got != int64(s.TotalBlocks()) {
		t.Errorf("writes = %d, blocks = %d", got, s.TotalBlocks())
	}
	sz, err := s.Size(id)
	if err != nil || sz != 600 {
		t.Errorf("Size = %d, %v", sz, err)
	}
}

// TestInspectTree builds the Figure 3 structure: a root run pointing at two
// child runs, one of which points at a grandchild.
func TestInspectTree(t *testing.T) {
	s, _ := newStore(t)

	grandID, gw, _ := s.Create(em.CatSubtreeSort, nil)
	gw.WriteToken(xmltok.Token{Kind: xmltok.KindStart, Name: "g"})
	gw.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "g"})
	gw.Close()

	child1ID, c1, _ := s.Create(em.CatSubtreeSort, nil)
	c1.WriteToken(xmltok.Token{Kind: xmltok.KindStart, Name: "c1"})
	c1.WriteToken(xmltok.Token{Kind: xmltok.KindRunPtr, Run: int64(grandID), Name: "g"})
	c1.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "c1"})
	c1.Close()

	child2ID, c2, _ := s.Create(em.CatSubtreeSort, nil)
	c2.WriteToken(xmltok.Token{Kind: xmltok.KindStart, Name: "c2"})
	c2.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "c2"})
	c2.Close()

	rootID, rw, _ := s.Create(em.CatSubtreeSort, nil)
	rw.WriteToken(xmltok.Token{Kind: xmltok.KindStart, Name: "root"})
	rw.WriteToken(xmltok.Token{Kind: xmltok.KindRunPtr, Run: int64(child1ID), Name: "c1"})
	rw.WriteToken(xmltok.Token{Kind: xmltok.KindRunPtr, Run: int64(child2ID), Name: "c2"})
	rw.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: "root"})
	rw.Close()

	tree, err := s.InspectTree(rootID)
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Children[rootID]; !reflect.DeepEqual(got, []RunID{child1ID, child2ID}) {
		t.Errorf("root children = %v", got)
	}
	if got := tree.Children[child1ID]; !reflect.DeepEqual(got, []RunID{grandID}) {
		t.Errorf("child1 children = %v", got)
	}
	if got := tree.Children[child2ID]; len(got) != 0 {
		t.Errorf("child2 children = %v", got)
	}
	if len(tree.Children) != 4 {
		t.Errorf("tree has %d runs, want 4", len(tree.Children))
	}
}

func TestInspectTreeCycleDetection(t *testing.T) {
	s, _ := newStore(t)
	id, w, _ := s.Create(em.CatSubtreeSort, nil)
	w.WriteToken(xmltok.Token{Kind: xmltok.KindRunPtr, Run: 0, Name: "self"})
	w.Close()
	if _, err := s.InspectTree(id); err == nil {
		t.Error("self-referential run tree should fail inspection")
	}
}

func TestBudgetedReadersWriters(t *testing.T) {
	s, _ := newStore(t)
	budget := em.NewBudget(5)
	id, w, err := s.Create(em.CatSubtreeSort, budget)
	if err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 1 {
		t.Errorf("writer grant = %d", budget.InUse())
	}
	w.WriteToken(xmltok.Token{Kind: xmltok.KindText, Text: "x"})
	w.Close()
	r, err := s.Open(id, budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 1 {
		t.Errorf("reader grant = %d", budget.InUse())
	}
	r.Close()
	if budget.InUse() != 0 {
		t.Errorf("leaked %d blocks", budget.InUse())
	}
}
