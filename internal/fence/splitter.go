package fence

import (
	"bytes"
	"sort"
)

// Sample is one splitter-selection observation: a fence key and the
// estimated number of run bytes governed by it (the gap to the next fence
// in the same run, or to the run's end).
type Sample struct {
	Key    []byte
	Weight int64
}

// SelectSplitters picks at most p-1 byte-comparable splitter keys from the
// fence samples of all runs, balancing estimated bytes per partition. The
// returned splitters are strictly increasing and deterministic in the
// sample multiset (samples may arrive in any order). Splitter S assigns
// every record with key >= S to the partitions right of S and every record
// with key < S to the left — records comparing equal to each other can
// therefore never straddle a splitter, which is what preserves the serial
// loser tree's run-index tie-break and makes the partitioned output
// byte-identical (DESIGN.md §17).
//
// Fewer than p-1 splitters (down to none) are returned when the samples
// cannot support more distinct cuts — few distinct keys, or weight
// concentrated on one key.
func SelectSplitters(samples []Sample, p int) [][]byte {
	if p <= 1 || len(samples) == 0 {
		return nil
	}
	sorted := make([]Sample, len(samples))
	copy(sorted, samples)
	sort.SliceStable(sorted, func(i, j int) bool {
		return bytes.Compare(sorted[i].Key, sorted[j].Key) < 0
	})
	// Merge equal keys, and compute for each distinct key the cumulative
	// weight strictly before it.
	keys := make([][]byte, 0, len(sorted))
	before := make([]int64, 0, len(sorted))
	var cum int64
	for i := 0; i < len(sorted); {
		j := i
		var w int64
		for j < len(sorted) && bytes.Equal(sorted[j].Key, sorted[i].Key) {
			w += sorted[j].Weight
			j++
		}
		keys = append(keys, sorted[i].Key)
		before = append(before, cum)
		cum += w
		i = j
	}
	total := cum
	if total <= 0 {
		return nil
	}
	out := make([][]byte, 0, p-1)
	lastJ := 0
	for i := 1; i < p; i++ {
		target := total * int64(i) / int64(p)
		// Smallest distinct key whose strictly-before weight reaches the
		// target: cutting there puts ~target bytes left of the splitter.
		j := sort.Search(len(keys), func(k int) bool { return before[k] >= target })
		if j <= lastJ {
			// This cut collapses onto an earlier one (weight concentrated on
			// few keys): skip it rather than force an empty partition.
			continue
		}
		if j >= len(keys) {
			break
		}
		out = append(out, append([]byte(nil), keys[j]...))
		lastJ = j
	}
	return out
}
