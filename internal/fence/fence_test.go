package fence

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"nexsort/internal/em"
)

// goldenEntries is a fixed fence index exercising every encoder feature:
// shared prefixes of varying length, an empty-key fence, multi-byte
// varint offsets, and equal adjacent keys.
func goldenEntries() []Entry {
	return []Entry{
		{Offset: 0, Key: []byte{}},
		{Offset: 512, Key: []byte("region\x00alpha\x00")},
		{Offset: 1024, Key: []byte("region\x00alpha\x00branch\x0001\x00")},
		{Offset: 1536, Key: []byte("region\x00alpha\x00branch\x0001\x00")},
		{Offset: 300000, Key: []byte("region\x00beta\x00")},
		{Offset: 300512, Key: []byte("zz")},
	}
}

func TestFenceRoundTrip(t *testing.T) {
	cases := [][]Entry{
		nil, // an empty run's index: zero fences
		{{Offset: 0, Key: []byte("only")}},
		goldenEntries(),
	}
	// A long synthetic index with heavily shared prefixes, like real runs.
	var long []Entry
	for i := 0; i < 500; i++ {
		long = append(long, Entry{
			Offset: int64(i) * 4096,
			Key:    []byte(fmt.Sprintf("company\x00dept-%03d\x00emp-%05d\x00", i/50, i)),
		})
	}
	cases = append(cases, long)

	for ci, entries := range cases {
		enc := Encode(nil, entries)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("case %d: decode: %v", ci, err)
		}
		if len(got) != len(entries) {
			t.Fatalf("case %d: %d entries round-tripped to %d", ci, len(entries), len(got))
		}
		for i := range entries {
			if got[i].Offset != entries[i].Offset || !bytes.Equal(got[i].Key, entries[i].Key) {
				t.Fatalf("case %d entry %d: got {%d %q}, want {%d %q}",
					ci, i, got[i].Offset, got[i].Key, entries[i].Offset, entries[i].Key)
			}
		}
		if again := Encode(nil, got); !bytes.Equal(again, enc) {
			t.Fatalf("case %d: encoding is not deterministic across a round trip", ci)
		}
	}
}

// TestFenceGolden pins the serialized format against a checked-in golden
// file: any byte-level change to the encoding is a format break and must
// come with a Version bump and a new golden, not a silent rewrite.
func TestFenceGolden(t *testing.T) {
	enc := Encode(nil, goldenEntries())
	path := filepath.Join("testdata", "fence_golden.bin")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading the golden file: %v (regenerate by writing Encode(nil, goldenEntries()) to %s)", err, path)
	}
	if !bytes.Equal(enc, want) {
		t.Fatalf("encoding of the golden entries changed:\ngot  %x\nwant %x\nbump Version and regenerate %s if this is intentional", enc, want, path)
	}
	// And the golden bytes still decode to the golden entries.
	got, err := Decode(want)
	if err != nil {
		t.Fatalf("golden decode: %v", err)
	}
	entries := goldenEntries()
	for i := range entries {
		if got[i].Offset != entries[i].Offset || !bytes.Equal(got[i].Key, entries[i].Key) {
			t.Fatalf("golden entry %d: got {%d %q}, want {%d %q}",
				i, got[i].Offset, got[i].Key, entries[i].Offset, entries[i].Key)
		}
	}
}

// TestFenceDecodeErrors enumerates the rejection paths: every malformed
// input must surface the typed corruption taxonomy (errors.Is
// em.ErrCorruptBlock), never a panic or a silent partial decode.
func TestFenceDecodeErrors(t *testing.T) {
	valid := Encode(nil, goldenEntries())
	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), valid...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short magic", []byte("NXF")},
		{"bad magic", mutate(func(b []byte) []byte { b[0] = 'X'; return b })},
		{"future version", mutate(func(b []byte) []byte { b[4] = Version + 1; return b })},
		{"truncated count", []byte("NXFI\x01")[:5]},
		{"dishonest count", []byte("NXFI\x01\xff\xff\x7f")},
		{"truncated mid-entry", valid[:len(valid)-3]},
		{"trailing garbage", append(append([]byte(nil), valid...), 0)},
		{"first fence not at 0", mutate(func(b []byte) []byte { b[6] = 1; return b })},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := Decode(tc.data)
			if err == nil {
				t.Fatalf("decode accepted %q (%d entries)", tc.data, len(got))
			}
			if !errors.Is(err, em.ErrCorruptBlock) {
				t.Fatalf("error %v is not a typed corruption error", err)
			}
			var cbe *em.CorruptBlockError
			if !errors.As(err, &cbe) || cbe.Block != -1 {
				t.Fatalf("error %v does not carry the index-level block marker", err)
			}
		})
	}

	// The empty index is NOT an error: an empty run legitimately has no
	// fences, and its four-byte-plus-header index round-trips clean.
	if got, err := Decode(Encode(nil, nil)); err != nil || len(got) != 0 {
		t.Fatalf("empty index: got %d entries, err %v", len(got), err)
	}
}

func TestSelectSplitters(t *testing.T) {
	key := func(s string) []byte { return []byte(s) }

	t.Run("degenerate", func(t *testing.T) {
		if got := SelectSplitters(nil, 8); got != nil {
			t.Fatalf("no samples: got %d splitters", len(got))
		}
		if got := SelectSplitters([]Sample{{Key: key("a"), Weight: 10}}, 1); got != nil {
			t.Fatalf("p=1: got %d splitters", len(got))
		}
		if got := SelectSplitters([]Sample{{Key: key("a"), Weight: 0}}, 4); got != nil {
			t.Fatalf("zero weight: got %d splitters", len(got))
		}
		// All weight on one key: no cut can help, so no splitters.
		one := []Sample{{Key: key("k"), Weight: 100}, {Key: key("k"), Weight: 50}}
		if got := SelectSplitters(one, 8); len(got) != 0 {
			t.Fatalf("single distinct key: got %d splitters", len(got))
		}
	})

	t.Run("balance", func(t *testing.T) {
		var samples []Sample
		for i := 0; i < 256; i++ {
			samples = append(samples, Sample{Key: []byte{byte(i)}, Weight: 100})
		}
		sp := SelectSplitters(samples, 4)
		if len(sp) != 3 {
			t.Fatalf("got %d splitters, want 3", len(sp))
		}
		for i, want := range []byte{64, 128, 192} {
			if len(sp[i]) != 1 || sp[i][0] != want {
				t.Fatalf("splitter %d = %v, want [%d]", i, sp[i], want)
			}
		}
	})

	t.Run("strictly increasing and deterministic", func(t *testing.T) {
		var samples []Sample
		for i := 0; i < 100; i++ {
			samples = append(samples, Sample{Key: key(fmt.Sprintf("k%02d", i%10)), Weight: int64(1 + i%7)})
		}
		a := SelectSplitters(samples, 8)
		// Same multiset, reversed arrival order.
		rev := make([]Sample, len(samples))
		for i, s := range samples {
			rev[len(samples)-1-i] = s
		}
		b := SelectSplitters(rev, 8)
		if len(a) != len(b) {
			t.Fatalf("splitter count depends on sample order: %d vs %d", len(a), len(b))
		}
		for i := range a {
			if !bytes.Equal(a[i], b[i]) {
				t.Fatalf("splitter %d depends on sample order: %q vs %q", i, a[i], b[i])
			}
			if i > 0 && bytes.Compare(a[i-1], a[i]) >= 0 {
				t.Fatalf("splitters not strictly increasing at %d: %q then %q", i, a[i-1], a[i])
			}
		}
	})

	t.Run("skew collapses cuts instead of emitting duplicates", func(t *testing.T) {
		samples := []Sample{
			{Key: key("a"), Weight: 1},
			{Key: key("b"), Weight: 1000}, // almost everything
			{Key: key("c"), Weight: 1},
		}
		sp := SelectSplitters(samples, 8)
		for i := 1; i < len(sp); i++ {
			if bytes.Compare(sp[i-1], sp[i]) >= 0 {
				t.Fatalf("duplicate or decreasing splitters under skew: %q then %q", sp[i-1], sp[i])
			}
		}
	})
}

// FuzzFenceRoundtrip: any structurally valid entry list must encode and
// decode back to itself, deterministically.
func FuzzFenceRoundtrip(f *testing.F) {
	f.Add([]byte("alpha"), []byte("beta"), int64(512))
	f.Add([]byte{}, []byte{0}, int64(1))
	f.Fuzz(func(t *testing.T, k1, k2 []byte, gap int64) {
		if gap <= 0 || gap > 1<<40 || len(k1) > 4096 || len(k2) > 4096 {
			t.Skip()
		}
		if bytes.Compare(k1, k2) > 0 {
			k1, k2 = k2, k1
		}
		entries := []Entry{
			{Offset: 0, Key: k1},
			{Offset: gap, Key: k2},
		}
		enc := Encode(nil, entries)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if len(got) != 2 || got[0].Offset != 0 || got[1].Offset != gap ||
			!bytes.Equal(got[0].Key, k1) || !bytes.Equal(got[1].Key, k2) {
			t.Fatalf("roundtrip changed the entries: %+v", got)
		}
		if !bytes.Equal(Encode(nil, got), enc) {
			t.Fatal("encoding is not deterministic")
		}
	})
}

// FuzzFenceDecode throws arbitrary bytes at the decoder: it must never
// panic — every outcome is a successful decode or a typed corruption
// error, and the same input always produces the same outcome.
func FuzzFenceDecode(f *testing.F) {
	f.Add(Encode(nil, goldenEntries()))
	f.Add(Encode(nil, nil))
	f.Add([]byte("NXFI"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<16 {
			t.Skip()
		}
		got1, err1 := Decode(data)
		got2, err2 := Decode(data)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("decode not deterministic: %v vs %v", err1, err2)
		}
		if err1 != nil {
			if !errors.Is(err1, em.ErrCorruptBlock) {
				t.Fatalf("rejection %v is not a typed corruption error", err1)
			}
			return
		}
		if len(got1) != len(got2) {
			t.Fatal("successful decodes disagree")
		}
		// Accepted indexes must satisfy the invariants Decode promises.
		for i := range got1 {
			if i == 0 && got1[0].Offset != 0 {
				t.Fatal("accepted index whose first fence is not at offset 0")
			}
			if i > 0 {
				if got1[i].Offset <= got1[i-1].Offset {
					t.Fatal("accepted index with non-increasing offsets")
				}
				if bytes.Compare(got1[i].Key, got1[i-1].Key) < 0 {
					t.Fatal("accepted index with decreasing keys")
				}
			}
		}
		// And a valid decode re-encodes to an equivalent index (the bytes
		// may differ — uvarints have non-minimal spellings — but the
		// canonical re-encoding must decode back to the same entries).
		re, err := Decode(Encode(nil, got1))
		if err != nil || len(re) != len(got1) {
			t.Fatalf("canonical re-encoding does not round-trip: %v", err)
		}
		for i := range got1 {
			if re[i].Offset != got1[i].Offset || !bytes.Equal(re[i].Key, got1[i].Key) {
				t.Fatal("canonical re-encoding changed the entries")
			}
		}
	})
}
