// Package fence implements the per-run fence-key sparse index behind the
// range-partitioned merge (DESIGN.md §17).
//
// During run formation the sorter records one Entry per run block: the
// byte offset of the first record that starts in the block and that
// record's full normalized sort key. The entries are serialized with
// Encode into a tiny side stream (em.CatFenceIndex) that rides the same
// hardened backend stack as the run itself, and read back with Decode when
// a merge wants to partition its inputs by key range: the fence keys bound
// where in a run any given splitter key can fall, so a partition's reader
// can re-open the run at a nearby block boundary instead of scanning it
// from the start.
//
// Keys are order-preserving normalized encodings (internal/sortkey), so
// all comparisons here are plain bytes.Compare.
package fence

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"nexsort/internal/em"
)

// Version is the current fence-index format version byte.
const Version = 1

// magic identifies a serialized fence index.
const magic = "NXFI"

// Entry is one fence: the first record starting in a run block.
type Entry struct {
	// Offset is the absolute byte offset of the record in the run.
	Offset int64
	// Key is the record's full normalized sort key.
	Key []byte
}

// Encode appends the serialized index for entries to dst and returns the
// extended slice. The format is:
//
//	"NXFI" | version byte | uvarint count |
//	  per entry: uvarint offset-delta | uvarint shared-prefix-len |
//	             uvarint suffix-len | suffix bytes
//
// Offsets are delta-coded (they are strictly increasing — at most one
// fence per block) and keys are front-coded against their predecessor,
// which they tend to share long prefixes with in sorted runs; a whole
// index is typically a few bytes per run block.
func Encode(dst []byte, entries []Entry) []byte {
	dst = append(dst, magic...)
	dst = append(dst, Version)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	var prevOff int64
	var prevKey []byte
	for _, e := range entries {
		dst = binary.AppendUvarint(dst, uint64(e.Offset-prevOff))
		share := sharedPrefix(prevKey, e.Key)
		dst = binary.AppendUvarint(dst, uint64(share))
		dst = binary.AppendUvarint(dst, uint64(len(e.Key)-share))
		dst = append(dst, e.Key[share:]...)
		prevOff, prevKey = e.Offset, e.Key
	}
	return dst
}

// Decode parses a serialized fence index, validating the magic, version,
// framing, and the index invariants: offsets strictly increasing from a
// first fence at offset 0, keys nondecreasing. Any violation — including
// truncation and trailing garbage — returns a typed *em.CorruptBlockError
// (errors.Is-matchable against em.ErrCorruptBlock), the same taxonomy a
// torn spill block surfaces under.
func Decode(data []byte) ([]Entry, error) {
	if len(data) < len(magic)+1 || string(data[:len(magic)]) != magic {
		return nil, corrupt("bad magic")
	}
	if v := data[len(magic)]; v != Version {
		return nil, corrupt(fmt.Sprintf("unsupported version %d", v))
	}
	rest := data[len(magic)+1:]
	count, n := binary.Uvarint(rest)
	if n <= 0 {
		return nil, corrupt("truncated entry count")
	}
	rest = rest[n:]
	// Each entry costs at least 3 bytes (three uvarints), so a count
	// larger than the remaining payload cannot be honest; reject it before
	// allocating.
	if count > uint64(len(rest))/3+1 {
		return nil, corrupt(fmt.Sprintf("entry count %d exceeds payload", count))
	}
	entries := make([]Entry, 0, count)
	var prevOff int64
	var prevKey []byte
	for i := uint64(0); i < count; i++ {
		delta, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, corrupt("truncated offset delta")
		}
		rest = rest[n:]
		if i == 0 {
			if delta != 0 {
				return nil, corrupt("first fence not at offset 0")
			}
		} else if delta == 0 {
			return nil, corrupt("offsets not strictly increasing")
		}
		share, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, corrupt("truncated shared-prefix length")
		}
		rest = rest[n:]
		if share > uint64(len(prevKey)) {
			return nil, corrupt("shared prefix longer than previous key")
		}
		suffix, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, corrupt("truncated suffix length")
		}
		rest = rest[n:]
		if suffix > uint64(len(rest)) {
			return nil, corrupt("truncated key suffix")
		}
		key := make([]byte, 0, share+suffix)
		key = append(key, prevKey[:share]...)
		key = append(key, rest[:suffix]...)
		rest = rest[suffix:]
		if bytes.Compare(key, prevKey) < 0 && i > 0 {
			return nil, corrupt("keys not nondecreasing")
		}
		entries = append(entries, Entry{Offset: prevOff + int64(delta), Key: key})
		prevOff += int64(delta)
		prevKey = key
	}
	if len(rest) != 0 {
		return nil, corrupt(fmt.Sprintf("%d trailing bytes", len(rest)))
	}
	return entries, nil
}

// corrupt wraps a fence-format violation in the repo's typed corruption
// error. Block -1 marks it as an index-level finding rather than a device
// block's.
func corrupt(reason string) error {
	return &em.CorruptBlockError{Block: -1, Reason: "fence index: " + reason}
}

func sharedPrefix(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}
