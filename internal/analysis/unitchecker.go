package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
)

// This file implements the `go vet -vettool` unit-checker protocol with the
// standard library only (x/tools' unitchecker is off-limits — stdlib-only
// repo). The driver (cmd/go) probes the tool three ways:
//
//	nexvet -V=full     print a version line unique to this build (cache key)
//	nexvet -flags      print the tool's analyzer flags as JSON (none here)
//	nexvet <file.cfg>  analyze one package described by the JSON config,
//	                   write the facts file the driver expects, print
//	                   diagnostics to stderr, exit 1 if any
//
// The config hands us pre-parsed build facts: source files, the import map
// (import spelling → canonical path) and the export-data file for every
// dependency, compiled by the driver before it invoked us.

// vetConfig is the subset of cmd/go's vet config nexvet consumes. Unknown
// fields are ignored by encoding/json, which keeps this robust across
// toolchain releases.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements -V=full. The line doubles as cmd/go's content
// hash for the tool, so it embeds a digest of the executable: rebuilds
// with changed analyzers invalidate the driver's vet cache.
func PrintVersion(w io.Writer, progname string) {
	exe, _ := os.Executable()
	fmt.Fprintln(w, VersionLine(progname, exe))
}

// VersionLine builds the -V=full response for the tool binary at exePath.
// Because the digest covers the executable's bytes, any analyzer source
// change that reaches the binary yields a different line — which is
// exactly what makes the driver's stale-cache invalidation work.
func VersionLine(progname, exePath string) string {
	digest := "unknown"
	if data, err := os.ReadFile(exePath); err == nil {
		digest = fmt.Sprintf("%x", sha256.Sum256(data))[:24]
	}
	return fmt.Sprintf("%s version devel buildID=%s", progname, digest)
}

// PrintFlags implements -flags: nexvet exposes no analyzer-selection
// flags to the driver.
func PrintFlags(w io.Writer) {
	fmt.Fprintln(w, "[]")
}

// RunUnitchecker analyzes the single package described by cfgFile and
// returns its non-baselined diagnostics. Baseline entries are resolved
// against baselinePath when non-empty (stale-entry enforcement is the
// standalone runner's job — a unit checker sees one package at a time).
func RunUnitchecker(cfgFile string, baselinePath string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, fmt.Errorf("nexvet: reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("nexvet: parsing vet config %s: %v", cfgFile, err)
	}

	// The driver expects the facts file to exist after a successful run,
	// whatever its content; nexvet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("nexvet: no facts\n"), 0o666); err != nil {
			return nil, fmt.Errorf("nexvet: writing facts file: %v", err)
		}
	}
	if cfg.VetxOnly {
		return nil, nil
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, cfg.PackageFile, cfg.ImportMap)
	pkg, err := typeCheck(fset, imp, cfg.ImportPath, "", cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, err
	}

	diags := RunAnalyzers([]*Package{pkg}, All())
	if baselinePath != "" {
		baseline, err := LoadBaseline(baselinePath)
		if err != nil {
			return nil, err
		}
		diags, _ = baseline.Filter(diags)
	}
	return diags, nil
}
