package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak (NV006) enforces the goroutine-lifecycle discipline of DESIGN.md
// §16: every goroutine a library package launches must have a statically
// provable join or drain path, so no run can leave workers behind for the
// race detector (or a production process) to find later. A launch is
// proven when any of these holds:
//
//   - WaitGroup pairing — the goroutine body calls `wg.Done()` (usually
//     deferred) on a WaitGroup the launching function `Add`s to before the
//     launch, and some function in the package `Wait`s on it (the
//     extsort/core worker-dispatch idiom);
//   - close-drains-the-worker — the body's main loop is `for ... range ch`
//     over a channel the package closes somewhere (em.asyncEngine's
//     flushLoop/prefetchLoop idiom);
//   - done-channel receive — the body receives from a channel the package
//     closes (merge.blockReadAhead's quit idiom);
//   - producer close — the body closes a channel that code outside the
//     body ranges over or receives from, so the consumer observes
//     termination (merge's `defer close(ra.full)` + draining stop);
//   - pool ownership — the body releases an em.Pool slot, tying its
//     lifetime to the pool's bounded admission (always paired with a
//     WaitGroup in this tree, but recognized on its own).
//
// Fire-and-forget launches, Add/Done imbalances, and launches whose body
// cannot be resolved statically (func-valued fields, other-package calls)
// are flagged; genuinely unprovable-but-correct launches are baselined
// with the reason the goroutine still terminates.
var GoLeak = &Analyzer{
	Name: "goleak",
	Code: "NV006",
	Doc: "report goroutine launches in library packages with no statically " +
		"provable join or drain path (WaitGroup pairing, close-drained worker, " +
		"done-channel, producer close, or pool ownership)",
	Run: runGoLeak,
}

func runGoLeak(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return // binaries may run goroutines for their own lifetime
	}
	facts := gatherConcFacts(pass)
	for _, g := range facts.gos {
		body, ok := facts.goBody(g.stmt)
		if !ok {
			pass.Report(g.stmt.Pos(),
				"goroutine body is not statically resolvable, so no join or drain path can be proven",
				"launch a function literal or a same-package function/method, or baseline with the reason the goroutine terminates")
			continue
		}
		// Add-without-Done is reported even when another proof shows the
		// goroutine terminates: the launcher's Add with no matching Done in
		// the worker means the Wait hangs regardless of how the worker ends.
		if facts.addWithoutDone(g, body) {
			pass.Report(g.stmt.Pos(),
				"the launching function Adds to a WaitGroup for this goroutine but its body never calls Done — Add/Done imbalance, the Wait hangs",
				"defer wg.Done() first thing in the goroutine body, or drop the Add if another mechanism joins it")
			continue
		}
		if detail, proven := facts.joinProof(g, body); !proven {
			msg := "fire-and-forget goroutine: no statically provable join or drain path"
			if detail != "" {
				msg = msg + " (" + detail + ")"
			}
			pass.Report(g.stmt.Pos(), msg,
				"pair a wg.Add before the launch with a deferred wg.Done inside and a Wait, drain the worker by closing its input channel, or baseline with the reason it terminates")
		}
	}
}

// addWithoutDone reports whether the launching function Adds to a
// WaitGroup that neither this goroutine's body nor a sibling launched
// from the same function ever Dones. The sibling exemption keeps a
// launcher that Adds for worker A while also spawning helper B from
// flagging B.
func (f *concFacts) addWithoutDone(g goSite, body *ast.BlockStmt) bool {
	for wg, adds := range f.wgAdd {
		addHere := false
		for _, pos := range adds {
			if containsPos(g.launcherBody, pos) && !containsPos(g.stmt, pos) {
				addHere = true
			}
		}
		if !addHere || f.doneIn(body, wg) {
			continue
		}
		siblingDones := false
		for _, other := range f.gos {
			if other.launcherBody != g.launcherBody || other.stmt == g.stmt {
				continue
			}
			if ob, ok := f.goBody(other.stmt); ok && f.doneIn(ob, wg) {
				siblingDones = true
			}
		}
		if !siblingDones {
			return true
		}
	}
	return false
}

// joinProof looks for any of the recognized join/drain paths for the
// goroutine launched at g with the resolved body. When none is found, the
// returned detail names the nearest miss (an Add/Done imbalance, a missing
// Wait) so the diagnostic points at the specific hole.
func (f *concFacts) joinProof(g goSite, body *ast.BlockStmt) (detail string, proven bool) {
	// WaitGroup pairing. The launcher scan excludes the go statement's own
	// subtree: an Add inside the goroutine races the Wait (the classic
	// wg.Add-in-the-worker bug) and must not count as "before the launch".
	dones := f.wgObjectsCalledIn(body, f.wgDone)
	for _, wg := range dones {
		addBeforeLaunch := false
		for _, pos := range f.wgAdd[wg] {
			if containsPos(g.launcherBody, pos) && !containsPos(g.stmt, pos) {
				addBeforeLaunch = true
			}
		}
		switch {
		case addBeforeLaunch && len(f.wgWait[wg]) > 0:
			return "", true
		case !addBeforeLaunch:
			detail = "the goroutine calls wg.Done but the launching function never Adds for it — Add/Done imbalance"
		default:
			detail = "wg.Add/Done pair up but nothing in the package Waits on the WaitGroup"
		}
	}

	// Close-drains-the-worker: the body's loop ranges over a channel some
	// closer in the package terminates.
	for _, ch := range f.chanObjectsRangedIn(body) {
		if len(f.chanClose[ch]) > 0 {
			return "", true
		}
	}

	// Done-channel receive: the body receives from a channel the package
	// closes (select-based quit protocols land here).
	for ch, recvs := range f.chanRecv {
		if len(f.chanClose[ch]) == 0 {
			continue
		}
		for _, pos := range recvs {
			if containsPos(body, pos) {
				return "", true
			}
		}
	}

	// Producer close: the body closes a channel that is ranged/received
	// outside the body, so the consumer observes the goroutine's end.
	for ch, closes := range f.chanClose {
		closedInBody := false
		for _, c := range closes {
			if containsPos(body, c.Pos()) {
				closedInBody = true
			}
		}
		if !closedInBody {
			continue
		}
		for _, pos := range f.chanRange[ch] {
			if !containsPos(body, pos) {
				return "", true
			}
		}
		for _, pos := range f.chanRecv[ch] {
			if !containsPos(body, pos) {
				return "", true
			}
		}
	}

	// Pool ownership: the body releases an em.Pool worker slot.
	if f.releasesPoolIn(body) {
		return "", true
	}
	return detail, false
}

// wgObjectsCalledIn returns the WaitGroup objects with a call from calls
// positioned inside body.
func (f *concFacts) wgObjectsCalledIn(body *ast.BlockStmt, calls map[types.Object][]token.Pos) []types.Object {
	var out []types.Object
	for wg, positions := range calls {
		for _, pos := range positions {
			if containsPos(body, pos) {
				out = append(out, wg)
				break
			}
		}
	}
	return out
}

// doneIn reports whether body contains a Done call on wg.
func (f *concFacts) doneIn(body *ast.BlockStmt, wg types.Object) bool {
	for _, pos := range f.wgDone[wg] {
		if containsPos(body, pos) {
			return true
		}
	}
	return false
}

// chanObjectsRangedIn returns the channel objects ranged over inside body.
func (f *concFacts) chanObjectsRangedIn(body *ast.BlockStmt) []types.Object {
	var out []types.Object
	for ch, positions := range f.chanRange {
		for _, pos := range positions {
			if containsPos(body, pos) {
				out = append(out, ch)
				break
			}
		}
	}
	return out
}

// releasesPoolIn reports whether body calls Release on an em.Pool.
func (f *concFacts) releasesPoolIn(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
			if recv, ok := f.pass.Info.Types[sel.X]; ok && isEMType(recv.Type, "Pool") {
				found = true
			}
		}
		return !found
	})
	return found
}
