package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
)

// ChanDisc (NV007) enforces channel ownership and close discipline:
//
//   - exactly one statically identified closer per channel — two close
//     sites for the same channel mean ownership is ambiguous and one of
//     them will eventually panic;
//   - no send after a reachable close on any intra-function path (the
//     walk is path-sensitive: a close in one if-branch taints only that
//     branch, and a deferred close — which runs at exit — taints nothing);
//   - no close of a receive-only channel (a consumer closing its input
//     inverts ownership) and no close of a literal nil channel;
//   - bounded capacity for the device layer's data queues: an unbuffered
//     `make(chan T)` under internal/em needs a baseline justification,
//     because an unbounded handoff in the write-behind/read-ahead paths
//     turns the engine's memory bound into a rendezvous stall. Signal
//     channels (`chan struct{}`, closed once, never carrying data) are
//     exempt.
//
// Cross-function send/close ordering (e.g. em.asyncEngine guarding sends
// with writeMu + writeClosed) is runtime protocol, deliberately out of
// scope: the analyzer proves the intra-function discipline and leaves the
// cross-function race to the lock-guard analyzer and `-race` soaks.
var ChanDisc = &Analyzer{
	Name: "chandisc",
	Code: "NV007",
	Doc: "report channels with multiple closers, sends after a reachable " +
		"close, closes of receive-only or nil channels, and unbuffered data " +
		"queues in the device layer",
	Run: runChanDisc,
}

func runChanDisc(pass *Pass) {
	facts := gatherConcFacts(pass)

	// One closer per channel. Sites are keyed by the channel's object, so
	// `e.writeq` closed from two different methods is still two closers.
	for ch, closes := range facts.chanClose {
		if len(closes) < 2 {
			continue
		}
		sort.Slice(closes, func(i, j int) bool { return closes[i].Pos() < closes[j].Pos() })
		first := pass.Fset.Position(closes[0].Pos())
		for _, call := range closes[1:] {
			pass.Report(call.Pos(),
				"channel `"+ch.Name()+"` has more than one statically identified closer (first closer at "+
					first.Filename+":"+strconv.Itoa(first.Line)+")",
				"give the channel exactly one owning closer; everyone else signals the owner instead of closing")
		}
	}

	// Per close site: receive-only and nil operands.
	for _, closes := range facts.chanClose {
		for _, call := range closes {
			checkCloseOperand(pass, call)
		}
	}
	// Closes whose operand has no resolvable object (e.g. `close(nil)`)
	// never reach facts.chanClose; scan for them directly.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					if pass.refObj(call.Args[0]) == nil {
						checkCloseOperand(pass, call)
					}
				}
			}
			return true
		})
	}

	// Path-sensitive send-after-close, one function unit at a time.
	forEachFuncUnit(pass, func(body *ast.BlockStmt) {
		w := &cdWalk{pass: pass, body: body}
		w.walkStmts(body.List, map[string]token.Pos{})
	})

	// Bounded-queue rule for the device layer.
	if underEMTree(pass.Pkg.Path()) {
		checkUnboundedQueues(pass)
	}
}

// checkCloseOperand flags closes of receive-only or nil channels.
func checkCloseOperand(pass *Pass, call *ast.CallExpr) {
	arg := ast.Unparen(call.Args[0])
	if id, ok := arg.(*ast.Ident); ok && id.Name == "nil" {
		pass.Report(call.Pos(), "close of nil channel panics at runtime",
			"close the channel through its owning variable")
		return
	}
	tv, ok := pass.Info.Types[arg]
	if !ok {
		return
	}
	if ch, ok := tv.Type.Underlying().(*types.Chan); ok && ch.Dir() == types.RecvOnly {
		pass.Report(call.Pos(),
			"close of receive-only channel inverts ownership (and does not compile without a conversion)",
			"only the sending owner closes; receivers detect termination via the closed channel")
	}
}

// cdWalk is the path-sensitive send-after-close walker for one function
// body. The per-path state maps canonical channel chains (e.g. "e.writeq")
// to the position of the close that killed them on this path.
type cdWalk struct {
	pass *Pass
	body *ast.BlockStmt
}

// walkStmts threads the closed-set through a statement list, reporting
// sends to channels closed earlier on the same path. It returns true when
// every path through the list terminates before falling off the end.
func (w *cdWalk) walkStmts(stmts []ast.Stmt, closed map[string]token.Pos) bool {
	for _, s := range stmts {
		if w.walkStmt(s, closed) {
			return true
		}
	}
	return false
}

func (w *cdWalk) walkStmt(s ast.Stmt, closed map[string]token.Pos) (terminated bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if chain, pos, ok := w.closeTarget(x.X); ok {
			closed[chain] = pos
		}
		return isTerminalCall(x.X)

	case *ast.SendStmt:
		w.checkSend(x, closed)

	case *ast.AssignStmt:
		// Reassigning a tracked chain revives it: the closed channel value
		// is gone, replaced by whatever the RHS made.
		for _, l := range x.Lhs {
			if chain, ok := chainText(l); ok {
				delete(closed, chain)
			}
		}

	case *ast.ReturnStmt:
		return true

	case *ast.DeferStmt, *ast.GoStmt:
		// A deferred close runs at function exit, after every send in the
		// body; a goroutine's closes and sends are not ordered with this
		// path at all. Neither taints the walk (goroutine bodies are their
		// own function units).

	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, closed)
		}
		thenC, elseC := clonePosSet(closed), clonePosSet(closed)
		termThen := w.walkStmts(x.Body.List, thenC)
		termElse := false
		if x.Else != nil {
			termElse = w.walkStmt(x.Else, elseC)
		}
		for k := range closed {
			delete(closed, k)
		}
		if !termThen {
			mergePosSet(closed, thenC)
		}
		if !termElse {
			mergePosSet(closed, elseC)
		}
		return termThen && termElse

	case *ast.BlockStmt:
		return w.walkStmts(x.List, closed)

	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, closed)
		}
		// Two passes over the body so a loop-carried close (iteration N
		// closes, iteration N+1 sends) is seen by the sends of the second
		// pass; the first pass's reports are authoritative, the second only
		// extends the closed-set.
		bodyC := clonePosSet(closed)
		w.walkStmts(x.Body.List, bodyC)
		if x.Post != nil {
			w.walkStmt(x.Post, bodyC)
		}
		w.walkStmts(x.Body.List, bodyC)
		mergePosSet(closed, bodyC)

	case *ast.RangeStmt:
		bodyC := clonePosSet(closed)
		w.walkStmts(x.Body.List, bodyC)
		w.walkStmts(x.Body.List, bodyC)
		mergePosSet(closed, bodyC)

	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, closed)
		}
		return w.walkCases(x.Body, closed)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, closed)
		}
		return w.walkCases(x.Body, closed)

	case *ast.SelectStmt:
		return w.walkCases(x.Body, closed)

	case *ast.LabeledStmt:
		return w.walkStmt(x.Stmt, closed)

	case *ast.BranchStmt:
		return x.Tok != token.FALLTHROUGH

	}
	return false
}

// walkCases treats switch/select clause bodies as sibling paths.
func (w *cdWalk) walkCases(body *ast.BlockStmt, closed map[string]token.Pos) bool {
	entry := clonePosSet(closed)
	for k := range closed {
		delete(closed, k)
	}
	hasDefault := false
	allTerminate := len(body.List) > 0
	for _, clause := range body.List {
		var stmts []ast.Stmt
		caseC := clonePosSet(entry)
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			stmts = c.Body
		case *ast.CommClause:
			hasDefault = true // select always takes some clause
			if c.Comm != nil {
				w.walkStmt(c.Comm, caseC)
			}
			stmts = c.Body
		}
		if !w.walkStmts(stmts, caseC) {
			allTerminate = false
			mergePosSet(closed, caseC)
		}
	}
	if !hasDefault {
		mergePosSet(closed, entry)
		allTerminate = false
	}
	return allTerminate
}

// checkSend reports x when its channel chain was closed on this path.
func (w *cdWalk) checkSend(x *ast.SendStmt, closed map[string]token.Pos) {
	chain, ok := chainText(x.Chan)
	if !ok {
		return
	}
	if pos, dead := closed[chain]; dead {
		at := w.pass.Fset.Position(pos)
		w.pass.Report(x.Pos(),
			"send on `"+chain+"` after it was closed on this path (closed at "+
				at.Filename+":"+strconv.Itoa(at.Line)+") — this panics at runtime",
			"close last, after every sender is done; or route the send through the owner that knows the channel is live")
	}
}

// closeTarget matches `close(chain)` and returns the canonical chain.
func (w *cdWalk) closeTarget(e ast.Expr) (string, token.Pos, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return "", token.NoPos, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "close" {
		return "", token.NoPos, false
	}
	if _, isBuiltin := w.pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return "", token.NoPos, false
	}
	chain, ok := chainText(call.Args[0])
	if !ok {
		return "", token.NoPos, false
	}
	return chain, call.Pos(), true
}

func clonePosSet(m map[string]token.Pos) map[string]token.Pos {
	c := make(map[string]token.Pos, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func mergePosSet(dst, src map[string]token.Pos) {
	for k, v := range src {
		if _, ok := dst[k]; !ok {
			dst[k] = v
		}
	}
}

// checkUnboundedQueues flags unbuffered data channels in the em tree:
// the async engine's queues must be bounded so the depth grant stays the
// memory bound. chan struct{} signal channels are exempt — they carry no
// data and are closed, not drained.
func checkUnboundedQueues(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "make" || len(call.Args) != 1 {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			tv, ok := pass.Info.Types[call]
			if !ok {
				return true
			}
			ch, ok := tv.Type.Underlying().(*types.Chan)
			if !ok {
				return true
			}
			if st, ok := ch.Elem().Underlying().(*types.Struct); ok && st.NumFields() == 0 {
				return true // signal channel: no data to bound
			}
			pass.Report(call.Pos(),
				"unbuffered data channel in the device layer: queues feeding the write-behind/read-ahead paths must be bounded",
				"size the channel from the depth grant (e.g. make(chan T, depth)), or baseline with the reason an unbounded handoff is safe here")
			return true
		})
	}
}
