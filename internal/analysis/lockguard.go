package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// LockGuard (NV008) infers which struct fields a mutex guards from the
// package's own access patterns, then flags the accesses that break the
// inferred discipline. Where NV003 hand-lists em.Stats, this analyzer
// generalizes: a field accessed at least lockGuardThreshold times while a
// sibling mutex of the same struct is held — in the struct's defining
// package — is considered guarded by that mutex, and every other access
// must hold it too. That automatically covers em.asyncEngine's
// pending-write mirror (pendMu), its read-ahead token count (frameMu),
// the worker pools' in-flight tallies, and whatever job tables nexsortd
// adds later, with no per-struct configuration.
//
// The walk recognizes the repo's locking idioms:
//
//   - `mu.Lock()` ... `mu.Unlock()` brackets a region; `defer mu.Unlock()`
//     holds to the end of the function; RLock/RUnlock count the same
//     (readers of a guarded field need at least the read lock);
//   - accesses in the function that builds the struct (`e := &T{...}`
//     followed by `e.field = ...`) are pre-publication and exempt;
//   - functions whose name ends in "Locked" document that the caller
//     holds the lock; their accesses are neither counted nor flagged;
//   - channel-typed fields are exempt (send/receive are internally
//     synchronized; close/send ordering is NV007's domain), as are
//     sync.* / sync/atomic fields themselves.
//
// It also flags mixed disciplines: a field reached both through
// sync/atomic calls and through mutex-guarded plain accesses has two
// uncomposable protections, which is how torn counters are born.
//
// Post-join single-threaded phases (reading worker results after
// wg.Wait()) are real but unprovable here: baseline them with the drain
// point that makes the unguarded access safe.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Code: "NV008",
	Doc: "infer mutex-guarded struct fields from access patterns and report " +
		"accesses without the guard, and fields mixing atomic and " +
		"mutex-guarded access",
	Run: runLockGuard,
}

// lockGuardThreshold is the number of locked accesses that promote a
// field to "guarded" — two distinct locked touches establish intent, one
// could be incidental.
const lockGuardThreshold = 2

// lgAccess is one plain access to a candidate field.
type lgAccess struct {
	pos  token.Pos
	held map[string]bool // sibling mutex field names held at the access
}

// lgField aggregates a field's accesses across the package.
type lgField struct {
	owner   *types.TypeName // defining struct
	field   *types.Var
	plain   []lgAccess
	atomics []token.Pos // sync/atomic calls taking &x.field
}

func runLockGuard(pass *Pass) {
	fields := map[*types.Var]*lgField{}
	forEachFuncUnit(pass, func(body *ast.BlockStmt) {
		name := enclosingDeclName(pass, body)
		if strings.HasSuffix(name, "Locked") {
			return // contract: the caller holds the lock
		}
		w := &lgWalk{pass: pass, fields: fields, exempt: map[types.Object]bool{}}
		w.walkStmts(body.List, map[string]bool{})
	})

	// Inference and reporting, in stable order.
	ordered := make([]*lgField, 0, len(fields))
	for _, f := range fields {
		ordered = append(ordered, f)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].field.Pos() < ordered[j].field.Pos() })

	for _, f := range ordered {
		counts := map[string]int{}
		for _, a := range f.plain {
			for m := range a.held {
				counts[m]++
			}
		}
		guard, guardCount := "", 0
		for m, n := range counts {
			if n > guardCount || (n == guardCount && m < guard) {
				guard, guardCount = m, n
			}
		}
		if guardCount < lockGuardThreshold {
			continue // no inferred discipline for this field
		}
		label := "`" + f.field.Name() + "` of `" + f.owner.Name() + "`"
		for _, a := range f.plain {
			if a.held[guard] {
				continue
			}
			detail := "holds no lock"
			if len(a.held) > 0 {
				detail = "holds `" + strings.Join(sortedKeys(a.held), "`, `") + "` instead"
			}
			pass.Report(a.pos,
				"field "+label+" is guarded by `"+guard+"` ("+strconv.Itoa(guardCount)+
					" accesses hold it in this package) but this access "+detail,
				"take "+guard+" around the access, or baseline with the drain/ownership reason the unguarded access is safe")
		}
		for _, pos := range f.atomics {
			pass.Report(pos,
				"field "+label+" mixes sync/atomic access with `"+guard+"`-guarded plain access — the two protocols do not compose",
				"pick one discipline: all-atomic (and drop the lock) or all-guarded plain access")
		}
	}
}

// lgWalk walks one function body tracking the set of held mutex chains
// (e.g. "e.pendMu") and the locally constructed (pre-publication) values.
type lgWalk struct {
	pass   *Pass
	fields map[*types.Var]*lgField
	exempt map[types.Object]bool // locals built from a composite literal here
}

func (w *lgWalk) walkStmts(stmts []ast.Stmt, held map[string]bool) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lgWalk) walkStmt(s ast.Stmt, held map[string]bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		if chain, op, ok := w.lockOp(x.X); ok {
			switch op {
			case "Lock", "RLock":
				held[chain] = true
			case "Unlock", "RUnlock":
				delete(held, chain)
			}
			return // the mutex receiver itself is not a data access
		}
		w.scanExpr(x.X, held)

	case *ast.DeferStmt:
		// defer mu.Unlock() keeps the region open to function exit; any
		// other deferred call runs after the walk's regions and is scanned
		// with the current held set (a deferred release typically runs
		// under no lock, but flagging it here would be guessing).
		if _, op, ok := w.lockOp(x.Call); ok && (op == "Unlock" || op == "RUnlock") {
			return
		}
		w.scanExpr(x.Call, held)

	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			w.scanExpr(r, held)
		}
		// Constructor exemption: a local defined from a composite literal
		// of a mutex-carrying struct is pre-publication in this function.
		if x.Tok == token.DEFINE && len(x.Lhs) == len(x.Rhs) {
			for i, l := range x.Lhs {
				if obj := identObj(l); obj != nil && isOwnStructLiteral(w.pass, x.Rhs[i]) {
					if def, ok := w.pass.Info.Defs[l.(*ast.Ident)]; ok && def != nil {
						w.exempt[def] = true
					}
					_ = obj
				}
			}
		}
		for _, l := range x.Lhs {
			w.scanExpr(l, held)
		}

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, v := range vs.Values {
						w.scanExpr(v, held)
						if i < len(vs.Names) && isOwnStructLiteral(w.pass, v) {
							if def := w.pass.Info.Defs[vs.Names[i]]; def != nil {
								w.exempt[def] = true
							}
						}
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.scanExpr(r, held)
		}

	case *ast.GoStmt:
		// The goroutine does not inherit this path's locks; its body is its
		// own function unit. Arguments are evaluated here, under the locks.
		for _, a := range x.Call.Args {
			w.scanExpr(a, held)
		}

	case *ast.SendStmt:
		w.scanExpr(x.Chan, held)
		w.scanExpr(x.Value, held)

	case *ast.IfStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		w.scanExpr(x.Cond, held)
		w.walkStmts(x.Body.List, cloneBoolSet(held))
		if x.Else != nil {
			w.walkStmt(x.Else, cloneBoolSet(held))
		}

	case *ast.BlockStmt:
		w.walkStmts(x.List, cloneBoolSet(held))

	case *ast.ForStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		if x.Cond != nil {
			w.scanExpr(x.Cond, held)
		}
		inner := cloneBoolSet(held)
		w.walkStmts(x.Body.List, inner)
		if x.Post != nil {
			w.walkStmt(x.Post, inner)
		}

	case *ast.RangeStmt:
		w.scanExpr(x.X, held)
		w.walkStmts(x.Body.List, cloneBoolSet(held))

	case *ast.SwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		if x.Tag != nil {
			w.scanExpr(x.Tag, held)
		}
		w.walkClauses(x.Body, held)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			w.walkStmt(x.Init, held)
		}
		w.walkClauses(x.Body, held)

	case *ast.SelectStmt:
		w.walkClauses(x.Body, held)

	case *ast.LabeledStmt:
		w.walkStmt(x.Stmt, held)

	case *ast.IncDecStmt:
		w.scanExpr(x.X, held)
	}
}

func (w *lgWalk) walkClauses(body *ast.BlockStmt, held map[string]bool) {
	for _, clause := range body.List {
		inner := cloneBoolSet(held)
		switch c := clause.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.scanExpr(e, inner)
			}
			w.walkStmts(c.Body, inner)
		case *ast.CommClause:
			if c.Comm != nil {
				w.walkStmt(c.Comm, inner)
			}
			w.walkStmts(c.Body, inner)
		}
	}
}

// lockOp matches `chain.Lock()` / `RLock` / `Unlock` / `RUnlock` on a
// sync.Mutex or sync.RWMutex and returns the canonical mutex chain.
func (w *lgWalk) lockOp(e ast.Expr) (chain, op string, ok bool) {
	call, isCall := ast.Unparen(e).(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return "", "", false
	}
	recv, hasType := w.pass.Info.Types[sel.X]
	if !hasType || (!isSyncType(recv.Type, "Mutex") && !isSyncType(recv.Type, "RWMutex")) {
		return "", "", false
	}
	c, isChain := chainText(sel.X)
	if !isChain {
		return "", "", false
	}
	return c, name, true
}

// scanExpr records every candidate field access in e with the current
// held set. Nested function literals are their own units and are skipped.
func (w *lgWalk) scanExpr(e ast.Expr, held map[string]bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if w.recordAtomicOp(x) {
				return false
			}
		case *ast.SelectorExpr:
			w.recordAccess(x, held)
		}
		return true
	})
}

// recordAccess files a FieldVal selection of a mutex-carrying struct
// declared in this package.
func (w *lgWalk) recordAccess(sel *ast.SelectorExpr, held map[string]bool) {
	selection, ok := w.pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	field, _ := selection.Obj().(*types.Var)
	if field == nil || field.Pkg() != w.pass.Pkg {
		return // guard inference only in the defining package
	}
	owner := namedOrPointee(selection.Recv())
	if owner == nil || owner.Obj().Pkg() != w.pass.Pkg {
		return
	}
	mutexes := mutexFieldsOf(owner)
	if len(mutexes) == 0 {
		return
	}
	if isSyncFamilyType(field.Type()) {
		return // the primitives themselves are not guarded data
	}
	if _, isChan := field.Type().Underlying().(*types.Chan); isChan {
		return // channel ops synchronize themselves; discipline is NV007's
	}
	ownerChain, ok := chainText(sel.X)
	if !ok {
		return // unstable receiver spelling: not matchable against lock chains
	}
	if base, _, _ := strings.Cut(ownerChain, "."); base != "" {
		for obj := range w.exempt {
			if obj.Name() == base {
				return // pre-publication access on a locally built value
			}
		}
	}
	heldHere := map[string]bool{}
	for m := range mutexes {
		if held[ownerChain+"."+m] {
			heldHere[m] = true
		}
	}
	w.fileAccess(owner.Obj(), field, lgAccess{pos: sel.Sel.Pos(), held: heldHere})
}

// recordAtomicOp matches atomic.Op(&chain.field, ...) and files the field.
// Returns true when the call was an atomic op (its args are consumed).
func (w *lgWalk) recordAtomicOp(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := w.pass.pkgOf(sel.X)
	if !ok || pkg != "sync/atomic" {
		return false
	}
	for _, a := range call.Args {
		un, ok := ast.Unparen(a).(*ast.UnaryExpr)
		if !ok || un.Op != token.AND {
			continue
		}
		fsel, ok := ast.Unparen(un.X).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		selection, ok := w.pass.Info.Selections[fsel]
		if !ok || selection.Kind() != types.FieldVal {
			continue
		}
		field, _ := selection.Obj().(*types.Var)
		owner := namedOrPointee(selection.Recv())
		if field == nil || owner == nil || owner.Obj().Pkg() != w.pass.Pkg {
			continue
		}
		if len(mutexFieldsOf(owner)) == 0 {
			continue
		}
		f := w.fieldRecord(owner.Obj(), field)
		f.atomics = append(f.atomics, fsel.Sel.Pos())
	}
	return true
}

func (w *lgWalk) fileAccess(owner *types.TypeName, field *types.Var, a lgAccess) {
	f := w.fieldRecord(owner, field)
	f.plain = append(f.plain, a)
}

func (w *lgWalk) fieldRecord(owner *types.TypeName, field *types.Var) *lgField {
	f, ok := w.fields[field]
	if !ok {
		f = &lgField{owner: owner, field: field}
		w.fields[field] = f
	}
	return f
}

// mutexFieldsOf returns the names of named's sync.Mutex/RWMutex fields.
func mutexFieldsOf(named *types.Named) map[string]bool {
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	out := map[string]bool{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isSyncType(f.Type(), "Mutex") || isSyncType(f.Type(), "RWMutex") {
			out[f.Name()] = true
		}
	}
	return out
}

// isOwnStructLiteral reports whether e is `T{...}` or `&T{...}` for a
// mutex-carrying struct T declared in this package.
func isOwnStructLiteral(pass *Pass, e ast.Expr) bool {
	x := ast.Unparen(e)
	if un, ok := x.(*ast.UnaryExpr); ok && un.Op == token.AND {
		x = ast.Unparen(un.X)
	}
	lit, ok := x.(*ast.CompositeLit)
	if !ok {
		return false
	}
	tv, ok := pass.Info.Types[lit]
	if !ok {
		return false
	}
	named := namedOrPointee(tv.Type)
	if named == nil || named.Obj().Pkg() != pass.Pkg {
		return false
	}
	return len(mutexFieldsOf(named)) > 0
}

// enclosingDeclName returns the name of the FuncDecl whose body is body
// ("" for function literals).
func enclosingDeclName(pass *Pass, body *ast.BlockStmt) string {
	for _, file := range pass.Files {
		if body.Pos() < file.FileStart || body.Pos() > file.FileEnd {
			continue
		}
		name := ""
		ast.Inspect(file, func(n ast.Node) bool {
			if fd, ok := n.(*ast.FuncDecl); ok && fd.Body == body {
				name = fd.Name.Name
				return false
			}
			return true
		})
		return name
	}
	return ""
}

func cloneBoolSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
