package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file is the shared concurrency fact layer beneath the NV006-NV008
// analyzers (and the spawned-closure reasoning of NV001v2): one pass over a
// package that indexes every goroutine launch, channel operation, and
// WaitGroup call by the *types.Object it touches. Field objects give the
// index cross-function identity — `e.writeq` in submitWrite and
// `e.writeq` in shutdown resolve to the same *types.Var — which is what
// lets goleak prove "this worker drains a channel that shutdown closes"
// without whole-program analysis.

// goSite is one `go` statement together with the function that launched it.
type goSite struct {
	stmt         *ast.GoStmt
	launcherBody *ast.BlockStmt
}

// concFacts is the per-package concurrency index.
type concFacts struct {
	pass *Pass

	// Channel operations, keyed by the referenced object (field var for
	// selector chains, local/package var for idents).
	chanClose map[types.Object][]*ast.CallExpr
	chanRange map[types.Object][]token.Pos
	chanRecv  map[types.Object][]token.Pos
	chanSend  map[types.Object][]token.Pos

	// WaitGroup calls by WaitGroup object.
	wgAdd  map[types.Object][]token.Pos
	wgDone map[types.Object][]token.Pos
	wgWait map[types.Object][]token.Pos

	// Function and method declarations by their *types.Func, for resolving
	// the body behind `go f()` / `go x.m()`.
	funcDecls map[types.Object]*ast.FuncDecl

	gos []goSite
}

// gatherConcFacts builds the index for pass's package.
func gatherConcFacts(pass *Pass) *concFacts {
	f := &concFacts{
		pass:      pass,
		chanClose: map[types.Object][]*ast.CallExpr{},
		chanRange: map[types.Object][]token.Pos{},
		chanRecv:  map[types.Object][]token.Pos{},
		chanSend:  map[types.Object][]token.Pos{},
		wgAdd:     map[types.Object][]token.Pos{},
		wgDone:    map[types.Object][]token.Pos{},
		wgWait:    map[types.Object][]token.Pos{},
		funcDecls: map[types.Object]*ast.FuncDecl{},
		gos:       nil,
	}
	for _, file := range pass.Files {
		// A node stack tracks the innermost enclosing function for go sites.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			switch x := n.(type) {
			case *ast.FuncDecl:
				if obj := pass.Info.Defs[x.Name]; obj != nil {
					f.funcDecls[obj] = x
				}
			case *ast.GoStmt:
				f.gos = append(f.gos, goSite{stmt: x, launcherBody: enclosingBody(stack)})
			case *ast.CallExpr:
				f.recordCall(x)
			case *ast.SendStmt:
				if obj := pass.refObj(x.Chan); obj != nil {
					f.chanSend[obj] = append(f.chanSend[obj], x.Pos())
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					if obj := pass.refObj(x.X); obj != nil {
						f.chanRecv[obj] = append(f.chanRecv[obj], x.Pos())
					}
				}
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[x.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						if obj := pass.refObj(x.X); obj != nil {
							f.chanRange[obj] = append(f.chanRange[obj], x.Pos())
						}
					}
				}
			}
			stack = append(stack, n)
			return true
		})
	}
	return f
}

// recordCall indexes close(ch) and WaitGroup Add/Done/Wait calls.
func (f *concFacts) recordCall(call *ast.CallExpr) {
	if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
		if _, isBuiltin := f.pass.Info.Uses[id].(*types.Builtin); isBuiltin {
			if obj := f.pass.refObj(call.Args[0]); obj != nil {
				f.chanClose[obj] = append(f.chanClose[obj], call)
			}
		}
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Add" && name != "Done" && name != "Wait" {
		return
	}
	recv, ok := f.pass.Info.Types[sel.X]
	if !ok || !isSyncType(recv.Type, "WaitGroup") {
		return
	}
	obj := f.pass.refObj(sel.X)
	if obj == nil {
		return
	}
	switch name {
	case "Add":
		f.wgAdd[obj] = append(f.wgAdd[obj], call.Pos())
	case "Done":
		f.wgDone[obj] = append(f.wgDone[obj], call.Pos())
	case "Wait":
		f.wgWait[obj] = append(f.wgWait[obj], call.Pos())
	}
}

// goBody resolves the statement body a `go` statement runs: a function
// literal's own body, or the same-package declaration behind `go f()` /
// `go x.m()`. ok is false for calls whose body is out of reach (another
// package, an interface method, a func-valued field).
func (f *concFacts) goBody(g *ast.GoStmt) (*ast.BlockStmt, bool) {
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Body, true
	case *ast.Ident:
		if decl, ok := f.funcDecls[f.pass.Info.Uses[fun]]; ok && decl.Body != nil {
			return decl.Body, true
		}
	case *ast.SelectorExpr:
		if obj, ok := f.pass.Info.Uses[fun.Sel]; ok {
			if decl, ok := f.funcDecls[obj]; ok && decl.Body != nil {
				return decl.Body, true
			}
		}
	}
	return nil, false
}

// refObj resolves the object a channel/WaitGroup/mutex expression names:
// the field var for selector chains (stable across functions within the
// package), the variable object for plain identifiers.
func (p *Pass) refObj(e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.Info.Uses[x]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[x.Sel] // package-qualified var
	}
	return nil
}

// isSyncType reports whether t (or its pointee) is the named sync type
// (e.g. "WaitGroup", "Mutex", "RWMutex").
func isSyncType(t types.Type, name string) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}

// isSyncFamilyType reports whether t is declared in sync or sync/atomic —
// synchronization primitives are not data fields for guard inference.
func isSyncFamilyType(t types.Type) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "sync" || path == "sync/atomic"
}

// enclosingBody returns the body of the innermost function node on stack.
func enclosingBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// forEachFuncUnit visits every function body in the package — declarations
// and function literals alike — each as its own analysis unit.
func forEachFuncUnit(pass *Pass, visit func(body *ast.BlockStmt)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					visit(fn.Body)
				}
			case *ast.FuncLit:
				visit(fn.Body)
			}
			return true
		})
	}
}

// containsPos reports whether pos falls inside node's source range.
func containsPos(node ast.Node, pos token.Pos) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}
