package analysis

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// The baseline is nexvet's allowlist: intentional, justified exceptions to
// the static invariants. Each entry names the diagnostic code, the file
// (matched by path suffix, so absolute and relative spellings agree) and
// the enclosing function (stable across line drift), and MUST carry a
// justification after " -- ". Entries that stop matching anything are
// themselves errors in the standalone run: the list can never silently
// accumulate dead exceptions.
//
//	NV004 internal/em/stats.go String -- keys are sorted before rendering
//
// Lines starting with '#' and blank lines are ignored.

// BaselineEntry is one parsed allowlist line.
type BaselineEntry struct {
	Code          string
	FileSuffix    string
	Func          string
	Justification string
	Line          int // line in the baseline file, for stale-entry reports
	used          bool
}

// Baseline is a parsed allowlist file.
type Baseline struct {
	Path    string
	Entries []*BaselineEntry
}

// LoadBaseline parses path. A missing file is an empty baseline, not an
// error, so fresh checkouts and the testdata module need no stub file.
// "TODO"-prefixed justifications — the placeholders -fix-baseline writes
// for new findings — are rejected: the gate stays red until a human
// replaces the placeholder with a real reason.
func LoadBaseline(path string) (*Baseline, error) {
	b, err := loadBaseline(path)
	if err != nil {
		return nil, err
	}
	for _, e := range b.Entries {
		if strings.HasPrefix(e.Justification, "TODO") {
			return nil, fmt.Errorf("%s:%d: placeholder justification %q — replace the TODO with the reason the exception is safe",
				path, e.Line, e.Justification)
		}
	}
	return b, nil
}

// LoadBaselineLenient parses path accepting TODO-placeholder
// justifications. It exists for -fix-baseline, which must be able to
// re-read its own output to converge; every enforcement path goes through
// the strict LoadBaseline instead.
func LoadBaselineLenient(path string) (*Baseline, error) {
	return loadBaseline(path)
}

// loadBaseline is the lenient parser: format errors are still errors, but
// TODO placeholders pass, so -fix-baseline can re-read its own output.
func loadBaseline(path string) (*Baseline, error) {
	b := &Baseline{Path: path}
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return b, nil
		}
		return nil, fmt.Errorf("nexvet: opening baseline: %v", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		entry, justification, ok := strings.Cut(line, " -- ")
		if !ok || strings.TrimSpace(justification) == "" {
			return nil, fmt.Errorf("%s:%d: baseline entry lacks a ' -- justification' (exceptions must be annotated)", path, lineno)
		}
		fields := strings.Fields(entry)
		if len(fields) != 3 {
			return nil, fmt.Errorf("%s:%d: want 'CODE file-suffix func -- justification', got %q", path, lineno, line)
		}
		b.Entries = append(b.Entries, &BaselineEntry{
			Code:          fields[0],
			FileSuffix:    fields[1],
			Func:          fields[2],
			Justification: strings.TrimSpace(justification),
			Line:          lineno,
		})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("nexvet: reading baseline: %v", err)
	}
	return b, nil
}

// matches reports whether e covers d. The entry func "-" matches
// package-scope diagnostics (struct fields, var initializers), whose
// enclosing-function name is empty — a bare "" would not survive the
// three-field line format.
func (e *BaselineEntry) matches(d Diagnostic) bool {
	if e.Code != d.Code {
		return false
	}
	if e.Func == "-" {
		if d.Func != "" {
			return false
		}
	} else if e.Func != d.Func {
		return false
	}
	file := filepath.ToSlash(d.Pos.Filename)
	return file == e.FileSuffix || strings.HasSuffix(file, "/"+e.FileSuffix)
}

// Filter splits diags into kept (not baselined) and suppressed, marking
// the entries it consumed so Stale can report the rest.
func (b *Baseline) Filter(diags []Diagnostic) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		matched := false
		for _, e := range b.Entries {
			if e.matches(d) {
				e.used = true
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// Stale returns the entries no diagnostic used, as rendered errors. Call
// it only after filtering a whole-tree run: a per-package unit-checker
// invocation legitimately leaves most entries untouched.
func (b *Baseline) Stale() []string {
	return b.StaleIn(nil)
}

// StaleIn is Stale restricted to entries whose code is in codes (nil
// means every code): a run that executed only a subset of the analyzers
// can only judge that subset's entries.
func (b *Baseline) StaleIn(codes map[string]bool) []string {
	var out []string
	for _, e := range b.Entries {
		if codes != nil && !codes[e.Code] {
			continue
		}
		if !e.used {
			out = append(out, fmt.Sprintf("%s:%d: stale baseline entry %s %s %s (nothing matches it — delete the line)",
				b.Path, e.Line, e.Code, e.FileSuffix, e.Func))
		}
	}
	return out
}

// Regenerate builds fresh baseline-file content covering every diagnostic
// in diags: an entry that already covers a diagnostic keeps its
// justification verbatim, a new finding gets a "TODO:" placeholder (which
// LoadBaseline rejects, keeping the gate red until a human justifies it).
// Entries that no longer match anything are returned as stale — the
// caller must fail WITHOUT writing, because rewriting would drop their
// justifications silently; delete the dead lines first, then rerun.
// relTo makes new entries' file suffixes module-relative.
func (b *Baseline) Regenerate(diags []Diagnostic, relTo string) (content string, stale []string) {
	type key struct{ code, file, fn string }
	seen := map[key]bool{}
	var lines []string
	for _, d := range diags {
		file := filepath.ToSlash(d.Pos.Filename)
		if r, err := filepath.Rel(relTo, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
			file = filepath.ToSlash(r)
		}
		fn := d.Func
		if fn == "" {
			fn = "-"
		}
		k := key{d.Code, file, fn}
		if seen[k] {
			continue
		}
		seen[k] = true
		justification := "TODO: justify this exception or fix the finding"
		for _, e := range b.Entries {
			if e.matches(d) {
				justification = e.Justification
				e.used = true
				break
			}
		}
		lines = append(lines, fmt.Sprintf("%s %s %s -- %s", d.Code, file, fn, justification))
	}
	stale = b.Stale()
	sort.Strings(lines)
	var sb strings.Builder
	sb.WriteString("# nexvet baseline: intentional exceptions to the NV invariants.\n")
	sb.WriteString("# Format:  CODE file-suffix funcName -- justification\n")
	sb.WriteString("# Regenerated by `nexvet -fix-baseline ./...`; replace every TODO with\n")
	sb.WriteString("# the reason the invariant still holds, or fix the finding instead.\n\n")
	for _, l := range lines {
		sb.WriteString(l)
		sb.WriteString("\n")
	}
	return sb.String(), stale
}

// FindBaseline walks up from dir looking for internal/analysis/baseline.txt
// beside a go.mod, returning "" when no module root is found. This lets the
// unit checker locate the allowlist from the package directory the driver
// hands it.
func FindBaseline(dir string) string {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			candidate := filepath.Join(dir, "internal", "analysis", "baseline.txt")
			if _, err := os.Stat(candidate); err == nil {
				return candidate
			}
			return ""
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return ""
		}
		dir = parent
	}
}
