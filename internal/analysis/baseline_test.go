package analysis

import (
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeBaseline(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "baseline.txt")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := LoadBaseline(filepath.Join(t.TempDir(), "absent.txt"))
	if err != nil {
		t.Fatalf("missing baseline must not error, got %v", err)
	}
	if len(b.Entries) != 0 {
		t.Fatalf("want empty baseline, got %d entries", len(b.Entries))
	}
}

func TestBaselineRequiresJustification(t *testing.T) {
	for _, line := range []string{
		"NV001 internal/em/budget.go MustGrant",
		"NV001 internal/em/budget.go MustGrant -- ",
		"NV001 internal/em/budget.go MustGrant --",
	} {
		if _, err := LoadBaseline(writeBaseline(t, line+"\n")); err == nil {
			t.Errorf("entry %q without justification must be rejected", line)
		}
	}
}

func TestBaselineRejectsMalformedEntry(t *testing.T) {
	for _, line := range []string{
		"NV001 onlytwo -- justified",
		"NV001 a b c d -- justified",
	} {
		if _, err := LoadBaseline(writeBaseline(t, line+"\n")); err == nil {
			t.Errorf("entry %q with wrong field count must be rejected", line)
		}
	}
}

func TestBaselineCommentsAndBlanksIgnored(t *testing.T) {
	b, err := LoadBaseline(writeBaseline(t, "# header\n\nNV004 internal/em/stats.go String -- sorted\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Entries) != 1 {
		t.Fatalf("want 1 entry, got %d", len(b.Entries))
	}
	e := b.Entries[0]
	if e.Code != "NV004" || e.FileSuffix != "internal/em/stats.go" || e.Func != "String" || e.Justification != "sorted" {
		t.Fatalf("parsed entry wrong: %+v", e)
	}
}

func diagAt(code, file, fn string) Diagnostic {
	return Diagnostic{
		Code:    code,
		Func:    fn,
		Message: "m",
		Pos:     token.Position{Filename: file, Line: 10, Column: 2},
	}
}

func TestBaselineFilterMatchesBySuffix(t *testing.T) {
	b, err := LoadBaseline(writeBaseline(t,
		"NV004 internal/em/stats.go String -- keys sorted before rendering\n"))
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		diagAt("NV004", "/abs/checkout/internal/em/stats.go", "String"),   // suppressed
		diagAt("NV004", "/abs/checkout/internal/em/stats.go", "Other"),    // wrong func
		diagAt("NV001", "/abs/checkout/internal/em/stats.go", "String"),   // wrong code
		diagAt("NV004", "/abs/checkout/internal/em/restats.go", "String"), // suffix must break on "/"
	}
	kept, suppressed := b.Filter(diags)
	if len(suppressed) != 1 || len(kept) != 3 {
		t.Fatalf("want 1 suppressed / 3 kept, got %d / %d: %v", len(suppressed), len(kept), kept)
	}
	if stale := b.Stale(); len(stale) != 0 {
		t.Fatalf("used entry reported stale: %v", stale)
	}
}

func TestBaselineStale(t *testing.T) {
	b, err := LoadBaseline(writeBaseline(t,
		"NV004 internal/em/stats.go String -- sorted\nNV001 internal/core/parallel.go grantWorker -- wrapper\n"))
	if err != nil {
		t.Fatal(err)
	}
	b.Filter([]Diagnostic{diagAt("NV004", "internal/em/stats.go", "String")})
	stale := b.Stale()
	if len(stale) != 1 || !strings.Contains(stale[0], "grantWorker") {
		t.Fatalf("want one stale entry naming grantWorker, got %v", stale)
	}
}

func TestBaselineRejectsTODOPlaceholder(t *testing.T) {
	content := "NV006 internal/em/async.go flushLoop -- TODO: justify this exception or fix the finding\n"
	if _, err := LoadBaseline(writeBaseline(t, content)); err == nil ||
		!strings.Contains(err.Error(), "placeholder") {
		t.Fatalf("strict load must reject TODO placeholders, got err=%v", err)
	}
	b, err := LoadBaselineLenient(writeBaseline(t, content))
	if err != nil || len(b.Entries) != 1 {
		t.Fatalf("lenient load must accept TODO placeholders: %v, %d entries", err, len(b.Entries))
	}
}

func TestBaselineRegenerate(t *testing.T) {
	b, err := LoadBaselineLenient(writeBaseline(t,
		"NV004 internal/em/stats.go String -- keys are sorted before rendering\n"))
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		diagAt("NV004", "/checkout/internal/em/stats.go", "String"), // existing entry
		diagAt("NV006", "/checkout/internal/em/async.go", "start"),  // new finding
		diagAt("NV006", "/checkout/internal/em/async.go", "start"),  // duplicate position, one line
	}
	content, stale := b.Regenerate(diags, "/checkout")
	if len(stale) != 0 {
		t.Fatalf("no entry is stale, got %v", stale)
	}
	if !strings.Contains(content, "NV004 internal/em/stats.go String -- keys are sorted before rendering") {
		t.Errorf("existing justification not preserved verbatim:\n%s", content)
	}
	if !strings.Contains(content, "NV006 internal/em/async.go start -- TODO: justify this exception or fix the finding") {
		t.Errorf("new finding lacks a TODO placeholder:\n%s", content)
	}
	if n := strings.Count(content, "NV006 internal/em/async.go start"); n != 1 {
		t.Errorf("duplicate diagnostics must collapse to one entry, got %d", n)
	}
	// The regenerated content must be loadable leniently (the TODO) but
	// rejected strictly — the gate stays red until a human edits it.
	path := writeBaseline(t, content)
	if _, err := LoadBaselineLenient(path); err != nil {
		t.Errorf("regenerated baseline does not re-parse: %v", err)
	}
	if _, err := LoadBaseline(path); err == nil {
		t.Error("strict load accepted the regenerated TODO placeholder")
	}
}

func TestBaselineRegenerateReportsStale(t *testing.T) {
	b, err := LoadBaselineLenient(writeBaseline(t,
		"NV004 internal/em/stats.go String -- sorted\nNV001 internal/gone.go dead -- obsolete\n"))
	if err != nil {
		t.Fatal(err)
	}
	_, stale := b.Regenerate([]Diagnostic{diagAt("NV004", "internal/em/stats.go", "String")}, "")
	if len(stale) != 1 || !strings.Contains(stale[0], "internal/gone.go") {
		t.Fatalf("want one stale entry naming internal/gone.go, got %v", stale)
	}
}

func TestFindBaselineFromRepo(t *testing.T) {
	// The analysis package sits two levels below the module root, which
	// carries internal/analysis/baseline.txt.
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	got := FindBaseline(cwd)
	if got == "" || !strings.HasSuffix(filepath.ToSlash(got), "internal/analysis/baseline.txt") {
		t.Fatalf("FindBaseline(%s) = %q", cwd, got)
	}
}
