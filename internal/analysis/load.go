package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"strings"
)

// listedPackage is the slice of `go list -json` output the loader reads.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	Standard   bool
	GoFiles    []string
	Module     *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
	DepOnly bool
}

// Load type-checks the packages matching patterns (as `go list` resolves
// them, relative to dir) and returns them ready for analysis. Dependencies
// are imported from compiler export data — `go list -export` builds it —
// so the target packages are the only ones parsed from source, exactly as
// the go vet driver arranges for a unit checker.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,Standard,GoFiles,Module,Error,DepOnly"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var targets []*listedPackage
	exports := map[string]string{}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly && !skipListedPackage(&p) {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, nil)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := typeCheck(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// skipListedPackage reports whether p is support material rather than an
// analysis target: testdata trees and vendored copies can be swept up by
// explicit patterns but must never be analyzed — their code is someone
// else's (vendor) or deliberately wrong (testdata fixtures). The segments
// are judged below the module root, so a module that IS a testdata
// fixture (the golden suites' nexvet.example) still analyzes its own
// packages.
func skipListedPackage(p *listedPackage) bool {
	rel := p.Dir
	if p.Module != nil && p.Module.Dir != "" && strings.HasPrefix(p.Dir, p.Module.Dir) {
		rel = strings.TrimPrefix(p.Dir, p.Module.Dir)
	}
	for _, seg := range strings.Split(strings.ReplaceAll(rel, "\\", "/"), "/") {
		if seg == "testdata" || seg == "vendor" {
			return true
		}
	}
	return false
}

// exportImporter returns a types.Importer resolving import paths through
// importMap (nil for the identity) to compiler export-data files.
func exportImporter(fset *token.FileSet, exports map[string]string, importMap map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
}

// typeCheck parses and type-checks one package from source.
func typeCheck(fset *token.FileSet, imp types.Importer, importPath, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		path := name
		if dir != "" && !strings.HasPrefix(name, "/") {
			path = dir + "/" + name
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %v", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{
		Importer: imp,
		Error:    func(error) {}, // keep going; first error returned below
	}
	tpkg, err := conf.Check(importPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", importPath, err)
	}
	return &Package{Path: importPath, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
