package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetPtr (NV004) guards the determinism contract of DESIGN.md §9: at every
// parallelism level the sorters must produce byte-identical output and
// identical per-category I/O counts (paralleldiff pins this at P∈{1,2,8}).
// Inside the deterministic packages the analyzer bans the three classic
// nondeterminism leaks:
//
//   - wall-clock reads (time.Now/Since/Until) feeding computation;
//   - the global math/rand source (unseeded, and racy under workers) —
//     rand.New(rand.NewSource(seed)) remains fine;
//   - `range` over a map, whose iteration order varies run to run.
//
// Order-independent map walks (commutative sums, copies, key collection
// followed by a sort) are intentional exceptions: baseline them with the
// reason the order cannot leak.
var DetPtr = &Analyzer{
	Name: "detptr",
	Code: "NV004",
	Doc: "report wall-clock reads, global math/rand use, and map-ordered " +
		"iteration in the deterministic sort/merge packages",
	Run: runDetPtr,
}

// detScopes are the path tails of the packages under the determinism
// contract: the device/accounting layer and everything that decides what
// bytes and I/Os the sorters produce.
var detScopes = []string{
	"/internal/em", "/internal/core", "/internal/extsort", "/internal/merge",
	"/internal/xstack", "/internal/runstore", "/internal/compact",
	"/internal/keypath", "/internal/keys", "/internal/sortkey",
	"/internal/xmltok", "/internal/xmltree", "/internal/fence",
}

// inDetScope reports whether the package path (or a parent) is under the
// determinism contract.
func inDetScope(path string) bool {
	p := "/" + strings.TrimPrefix(path, "/")
	for _, scope := range detScopes {
		if strings.HasSuffix(p, scope) || strings.Contains(p, scope+"/") {
			return true
		}
	}
	return false
}

// seededRandConstructors are the math/rand entry points that do NOT touch
// the global source.
var seededRandConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true,
}

func runDetPtr(pass *Pass) {
	if !inDetScope(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				pkgPath, ok := pass.pkgOf(sel.X)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				switch {
				case pkgPath == "time" && (name == "Now" || name == "Since" || name == "Until"):
					pass.Report(x.Pos(),
						"wall-clock read `time."+name+"` in a deterministic package",
						"derive timing outside the sort/merge path; timestamps must never influence output bytes or I/O counts")
				case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !seededRandConstructors[name]:
					pass.Report(x.Pos(),
						"global math/rand source `rand."+name+"` in a deterministic package",
						"use rand.New(rand.NewSource(seed)) so runs are reproducible and worker-schedule independent")
				}
			case *ast.RangeStmt:
				t, ok := pass.Info.Types[x.X]
				if !ok {
					return true
				}
				if _, isMap := t.Type.Underlying().(*types.Map); isMap {
					pass.Report(x.Pos(),
						"map iteration order is not deterministic",
						"collect and sort the keys first; baseline only order-independent walks (commutative sums, copies)")
				}
			}
			return true
		})
	}
}
