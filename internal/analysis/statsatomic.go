package analysis

import (
	"go/ast"
	"go/types"
)

// StatsAtomic (NV003) closes the counter-tearing gap that `-race -short`
// can miss: the per-category counters inside em.Stats are sync/atomic
// values, and every touch must go through the accessor methods declared on
// Stats (AddReads, Reads, Snapshot, ...). A plain field access anywhere
// else — even inside package em — can read a torn aggregate, skip the
// atomic protocol, or copy the atomics (vet's copylocks only catches the
// copy). The analyzer flags any selection of an em.Stats field from code
// that is not itself a Stats accessor method.
var StatsAtomic = &Analyzer{
	Name: "statsatomic",
	Code: "NV003",
	Doc: "report direct accesses to em.Stats counter fields outside the " +
		"Stats accessor methods, where the atomic protocol is not guaranteed",
	Run: runStatsAtomic,
}

func runStatsAtomic(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isStatsMethod(pass, fd) {
				continue // the accessors themselves implement the protocol
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				selection, ok := pass.Info.Selections[sel]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				field := selection.Obj().(*types.Var)
				if !declaredInEM(field) {
					return true
				}
				if owner := fieldOwner(selection); owner != nil && owner.Obj().Name() == "Stats" && declaredInEM(owner.Obj()) {
					pass.Report(sel.Pos(),
						"direct access to em.Stats field `"+field.Name()+"` bypasses the atomic accessors",
						"use the Stats accessor methods (AddReads/Reads/Snapshot/...) so every touch follows the atomic protocol")
				}
				return true
			})
		}
	}
}

// isStatsMethod reports whether fd is a method with receiver em.Stats or
// *em.Stats.
func isStatsMethod(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	t, ok := pass.Info.Types[fd.Recv.List[0].Type]
	if !ok {
		return false
	}
	return isEMType(t.Type, "Stats")
}

// fieldOwner returns the named struct type the selected field belongs to
// (walking the selection's receiver, not the field's type).
func fieldOwner(selection *types.Selection) *types.Named {
	recv := selection.Recv()
	// Embedded fields make the direct owner differ from the receiver; for
	// Stats (no embedding) the receiver's named type is the owner.
	return namedOrPointee(recv)
}
