// Package analysis is nexvet's static-analysis substrate: a small,
// dependency-free counterpart of golang.org/x/tools/go/analysis (which this
// repo cannot vendor — stdlib only) plus the project analyzers that
// turn NEXSORT's runtime invariants into compile-time checks:
//
//	NV001 framebalance — every Budget.Grant/AcquireFrames and
//	       FramePool.Acquire is matched by a Release on every return path
//	NV002 iopurity     — outside internal/em, block traffic may not bypass
//	       em.Device's accounting (no raw Backend/os/syscall I/O)
//	NV003 statsatomic  — em.Stats counters are touched only through the
//	       atomic accessor methods
//	NV004 detptr       — the deterministic sort/merge paths use no wall
//	       clock, no global rand, and no map-iteration-ordered output
//	NV005 ctxflow      — library packages neither manufacture root contexts
//	       (context.Background/TODO) nor store a context.Context in a
//	       struct field
//	NV006 goleak       — every goroutine launched by a library package has
//	       a statically provable join or drain path (WaitGroup pairing,
//	       close-drained worker, done-channel, producer close, or Pool
//	       ownership)
//	NV007 chandisc     — one closer per channel, no send after a reachable
//	       close, no close of receive-only/nil channels, and bounded
//	       capacity for the device layer's data queues
//	NV008 lockguard    — struct fields accessed repeatedly under a sibling
//	       mutex are inferred guarded; unguarded or atomic-mixed accesses
//	       are reported
//
// Analyzers run in two harnesses (cmd/nexvet): standalone over `go list`
// metadata, and as a `go vet -vettool` unit checker. Intentional exceptions
// live in baseline.txt with a mandatory justification; stale entries fail
// the standalone run, so the exception list can only shrink silently, never
// grow.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check. Run inspects a type-checked package via the
// Pass and reports findings with Pass.Report.
type Analyzer struct {
	// Name is the analyzer's short name (e.g. "framebalance").
	Name string
	// Code is the stable diagnostic code (e.g. "NV001") carried by every
	// diagnostic this analyzer reports; baselines key on it.
	Code string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run performs the check.
	Run func(*Pass)
}

// All returns the full nexvet suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{FrameBalance, IOPurity, StatsAtomic, DetPtr, CtxFlow, GoLeak, ChanDisc, LockGuard}
}

// Pass holds one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Diagnostic is one finding, positioned and attributed to its enclosing
// function so baseline entries survive line drift.
type Diagnostic struct {
	Pos     token.Position
	Code    string
	Message string
	// Hint is the one-line fix suggestion appended to the rendered form.
	Hint string
	// Func is the enclosing function or method name ("" at package scope);
	// baseline entries match on it.
	Func string
	// Pkg is the import path of the package the finding is in.
	Pkg string
}

// String renders the diagnostic in the CI-clickable form
// "file:line:col: [CODE] message (hint)".
func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Code, d.Message)
	if d.Hint != "" {
		s += " (" + d.Hint + ")"
	}
	return s
}

// Report records a finding at pos. Findings in _test.go files are dropped:
// the invariants guard production block traffic, and tests deliberately
// poke backends, clocks and budgets off the books.
func (p *Pass) Report(pos token.Pos, msg, hint string) {
	position := p.Fset.Position(pos)
	if strings.HasSuffix(position.Filename, "_test.go") {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:     position,
		Code:    p.Analyzer.Code,
		Message: msg,
		Hint:    hint,
		Func:    p.enclosingFunc(pos),
		Pkg:     p.Pkg.Path(),
	})
}

// enclosingFunc names the innermost function declaration containing pos.
func (p *Pass) enclosingFunc(pos token.Pos) string {
	for _, f := range p.Files {
		if pos < f.FileStart || pos > f.FileEnd {
			continue
		}
		name := ""
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil || pos < n.Pos() || pos > n.End() {
				return n == f
			}
			if fd, ok := n.(*ast.FuncDecl); ok {
				name = fd.Name.Name
			}
			return true
		})
		return name
	}
	return ""
}

// RunAnalyzers applies each analyzer to each package and returns every
// diagnostic, ordered by position then code.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, az := range analyzers {
			pass := &Pass{
				Analyzer: az,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &diags,
			}
			az.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Code < b.Code
	})
	return diags
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// NewTypesInfo returns a types.Info with every map the analyzers read.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}

// --- shared helpers for the analyzers ---

// isEMPath reports whether path is the em device-layer package (the real
// module's or an analyzer-test fake with the same tail).
func isEMPath(path string) bool {
	return path == "nexsort/internal/em" || strings.HasSuffix(path, "/internal/em")
}

// underEMTree reports whether path is em or one of its subpackages
// (e.g. em/chaostest), which are all part of the device layer.
func underEMTree(path string) bool {
	return isEMPath(path) || strings.Contains(path, "/internal/em/")
}

// declaredInEM reports whether the named type's package is the em layer.
func declaredInEM(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && isEMPath(obj.Pkg().Path())
}

// namedOrPointee unwraps pointers and aliases down to a *types.Named.
func namedOrPointee(t types.Type) *types.Named {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := types.Unalias(t).(*types.Named)
	return named
}

// isEMType reports whether t (or its pointee) is the named em type (e.g.
// "Budget", "FramePool", "Stats").
func isEMType(t types.Type, name string) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && declaredInEM(obj)
}

// chainText renders a pure ident/selector chain (e.g. "s.env.Budget") and
// reports whether e is one. Call chains, indexing and parens disqualify:
// obligations are only tracked against stable receiver spellings.
func chainText(e ast.Expr) (string, bool) {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name, true
	case *ast.SelectorExpr:
		base, ok := chainText(x.X)
		if !ok {
			return "", false
		}
		return base + "." + x.Sel.Name, true
	}
	return "", false
}

// chainOwner returns the chain one selector shorter ("s.env" for
// "s.env.Budget"); for a bare ident it returns the ident itself.
func chainOwner(chain string) string {
	if i := strings.LastIndex(chain, "."); i >= 0 {
		return chain[:i]
	}
	return chain
}
