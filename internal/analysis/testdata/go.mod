module nexvet.example

go 1.22
