// Package leak exercises goleak (NV006): every goroutine launch needs a
// statically provable join or drain path — WaitGroup pairing, a
// close-drained worker loop, a done-channel receive, a producer close
// observed by an outside consumer, or em.Pool slot ownership. Launches
// with none of these, Add/Done imbalances, and unresolvable bodies are
// flagged.
package leak

import (
	"sync"

	"nexvet.example/internal/em"
)

// --- positives ---

// fire-and-forget: nothing joins or drains the worker.
func fireAndForget(work []int) {
	go func() { // want "fire-and-forget goroutine"
		for range work {
		}
	}()
}

// the Add inside the goroutine races the Wait: classic imbalance.
func addInsideWorker() {
	var wg sync.WaitGroup
	go func() { // want "Add/Done imbalance"
		wg.Add(1)
		defer wg.Done()
	}()
	wg.Wait()
}

// Add/Done pair up but nothing ever Waits.
func noWait() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "nothing in the package Waits"
		defer wg.Done()
	}()
}

// the launcher Adds but the worker never calls Done: Wait hangs forever.
func addNoDone(work []int) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want "never calls Done"
		for range work {
		}
	}()
	wg.Wait()
}

// a func-valued parameter has no statically reachable body.
func launchUnknown(fn func()) {
	go fn() // want "not statically resolvable"
}

// --- negatives: each recognized lifecycle idiom ---

// WaitGroup pairing: Add before launch, deferred Done inside, Wait after.
func pooled(work []int) {
	var wg sync.WaitGroup
	for range work {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// close-drains-the-worker: the loop ranges a channel stop closes.
type engine struct {
	jobs chan int
	quit chan struct{}
}

func (e *engine) start() {
	go e.loop()
}

func (e *engine) loop() {
	for range e.jobs {
	}
}

func (e *engine) stop() {
	close(e.jobs)
}

// done-channel receive: the worker blocks on a channel shutdown closes.
func (e *engine) watch() {
	go func() {
		<-e.quit
	}()
}

func (e *engine) shutdown() {
	close(e.quit)
}

// producer close: the worker closes the channel the consumer drains, so
// the consumer observes its termination.
type feed struct {
	out chan int
}

func (f *feed) begin() {
	go func() {
		defer close(f.out)
		f.out <- 1
	}()
}

func (f *feed) consume() int {
	s := 0
	for v := range f.out {
		s += v
	}
	return s
}

// pool ownership: the worker's lifetime rides the em.Pool slot it releases.
func pooledWorker(p *em.Pool) {
	go func() {
		defer p.Release()
	}()
}
