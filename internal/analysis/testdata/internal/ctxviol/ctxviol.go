// Package ctxviol exercises ctxflow: a library package that manufactures
// root contexts and parks a context in a struct.
package ctxviol

import "context"

// Session stores its context — the containedctx shape ctxflow bans.
type Session struct {
	ctx  context.Context // want "context.Context stored in a struct field"
	name string
}

// Detach launches work on a fresh root context, detaching it from the
// caller's cancellation.
func Detach() *Session {
	return &Session{ctx: context.Background(), name: "detached"} // want "manufactures a root context via `context.Background`"
}

// Later is the classic TODO placeholder that never gets fixed.
func Later() context.Context {
	return context.TODO() // want "manufactures a root context via `context.TODO`"
}

// Threaded is the approved shape: ctx arrives as a parameter and flows on.
func Threaded(ctx context.Context) error {
	return ctx.Err()
}
