// Package locks exercises lockguard (NV008): a field accessed at least
// twice under a sibling mutex in its defining package is inferred
// guarded, and every other access must hold the same mutex. Constructor
// bodies, *Locked-suffix functions, and sub-threshold fields are exempt;
// mixing sync/atomic with mutex-guarded plain access is its own finding.
package locks

import (
	"sync"
	"sync/atomic"
)

// --- inferred guard, unlocked access flagged ---

type counter struct {
	mu   sync.Mutex
	hits int
}

func (c *counter) incr() {
	c.mu.Lock()
	c.hits++
	c.mu.Unlock()
}

func (c *counter) get() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

func (c *counter) peek() int {
	return c.hits // want "guarded by `mu`"
}

// the constructor touches the field before publication: exempt.
func newCounter(start int) *counter {
	c := &counter{}
	c.hits = start
	return c
}

// the Locked suffix documents that the caller holds mu: exempt.
func (c *counter) bumpLocked() {
	c.hits += 2
}

// --- RWMutex: readers hold at least the read lock ---

type table struct {
	mu sync.RWMutex
	m  map[string]int
}

func (t *table) put(k string, v int) {
	t.mu.Lock()
	t.m[k] = v
	t.mu.Unlock()
}

func (t *table) get(k string) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.m[k]
}

func (t *table) size() int {
	return len(t.m) // want "guarded by `mu`"
}

// --- wrong lock held ---

type twin struct {
	muA sync.Mutex
	muB sync.Mutex
	n   int
}

func (t *twin) good() {
	t.muA.Lock()
	t.n++
	t.muA.Unlock()
	t.muA.Lock()
	t.n--
	t.muA.Unlock()
}

func (t *twin) bad() {
	t.muB.Lock()
	t.n = 0 // want "holds `muB` instead"
	t.muB.Unlock()
}

// --- atomic/mutex mix ---

type gauge struct {
	mu  sync.Mutex
	val int64
}

func (g *gauge) set(v int64) {
	g.mu.Lock()
	g.val = v
	g.mu.Unlock()
}

func (g *gauge) bump() {
	g.mu.Lock()
	g.val++
	g.mu.Unlock()
}

func (g *gauge) load() int64 {
	return atomic.LoadInt64(&g.val) // want "mixes sync/atomic access"
}

// --- below threshold: one locked access establishes nothing ---

type loose struct {
	mu sync.Mutex
	x  int
}

func (l *loose) touch() {
	l.mu.Lock()
	l.x++
	l.mu.Unlock()
}

func (l *loose) read() int {
	return l.x
}
