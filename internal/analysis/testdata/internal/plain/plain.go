// Package plain sits outside the determinism scope: detptr must stay
// silent here even though it reads the wall clock.
package plain

import "time"

func Stamp() time.Time { return time.Now() }
