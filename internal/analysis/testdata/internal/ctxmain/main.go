// Command ctxmain sits outside ctxflow's scope: a binary owns its root
// context, so Background here is exactly right and must stay silent.
package main

import "context"

func main() {
	ctx := context.Background()
	_ = run(ctx)
}

func run(ctx context.Context) error { return ctx.Err() }
