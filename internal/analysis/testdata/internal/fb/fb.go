// Package fb exercises framebalance (NV001): acquisitions that leak on
// some path are flagged at the acquire site; releases, deferred releases,
// error-guarded acquisitions, ownership transfers, and worker closures are
// recognized as discharges.
package fb

import "nexvet.example/internal/em"

// --- positives: some path reaches a return with the acquisition held ---

func leakOnEarlyReturn(b *em.Budget, cond bool) error {
	if err := b.Grant(4); err != nil { // want "can reach the return"
		return err
	}
	if cond {
		return nil // leaks the 4-block grant
	}
	b.Release(4)
	return nil
}

func mustGrantLeak(b *em.Budget) {
	b.MustGrant(1) // want "can reach the return"
}

func acquireFramesLeak(b *em.Budget, cond bool) error {
	frames, err := b.AcquireFrames(3) // want "can reach the return"
	if err != nil {
		return err
	}
	if cond {
		return nil // leaks the frames and their grant
	}
	b.ReleaseFrames(frames)
	return nil
}

func poolLeak(p *em.FramePool, cond bool) {
	f := p.Acquire() // want "can reach the return"
	if cond {
		return // leaks the frame
	}
	p.Release(f)
}

func switchLeak(b *em.Budget, mode int) {
	b.MustGrant(2) // want "can reach the return"
	switch mode {
	case 0:
		b.Release(2)
	case 1:
		// leaks on this arm
	default:
		b.Release(2)
	}
}

var _ = func(b *em.Budget) {
	b.MustGrant(1) // want "can reach the return"
}

// --- negatives: every path discharges ---

func balanced(b *em.Budget, cond bool) error {
	if err := b.Grant(4); err != nil {
		return err
	}
	if cond {
		b.Release(4)
		return nil
	}
	b.Release(4)
	return nil
}

func deferred(b *em.Budget) error {
	if err := b.Grant(2); err != nil {
		return err
	}
	defer b.Release(2)
	return nil
}

func deferredFrames(b *em.Budget) error {
	frames, err := b.AcquireFrames(3)
	if err != nil {
		return err
	}
	defer b.ReleaseFrames(frames)
	_ = frames
	return nil
}

// writer owns a grant for its lifetime; newWriter hands the budget to it.
type writer struct {
	budget *em.Budget
	blocks int
}

func newWriter(budget *em.Budget) (*writer, error) {
	if err := budget.Grant(2); err != nil {
		return nil, err
	}
	return &writer{budget: budget, blocks: 2}, nil
}

func (w *writer) Close() {
	w.budget.Release(w.blocks)
}

// worker dispatch: the closure takes the obligation with it.
func worker(b *em.Budget) error {
	if err := b.Grant(8); err != nil {
		return err
	}
	go func() {
		defer b.Release(8)
	}()
	return nil
}

// env-style indirection: an alias of the canonical chain releases it.
type env struct {
	Budget *em.Budget
}

func aliasedRelease(e *env) error {
	bb := e.Budget
	if err := bb.Grant(1); err != nil {
		return err
	}
	e.Budget.Release(1)
	return nil
}

// returned frame: ownership moves to the caller.
func handOff(p *em.FramePool) em.Frame {
	f := p.Acquire()
	return f
}

// panic path needs no release: it never returns.
func panicPath(b *em.Budget, cond bool) {
	b.MustGrant(1)
	if cond {
		panic("structural invariant broken")
	}
	b.Release(1)
}
