// Spawn cases for NV001v2: a `go` launch is a new owner whose body is
// sub-analyzed path-sensitively, not a blanket discharge. The worker must
// release (or visibly hand off) the obligation on every one of ITS paths;
// merely mentioning the resource no longer settles the launcher's books.
package fb

import "nexvet.example/internal/em"

// --- positives ---

// the worker releases on one path but leaks on the other; under the old
// blanket scan the mention alone would have discharged the acquisition.
func spawnPartialRelease(p *em.FramePool, cond bool) {
	f := p.Acquire() // want "can reach the return"
	go func() {
		if !cond {
			return // leaks f on this path
		}
		p.Release(f)
	}()
}

// the worker touches the budget's owner but never releases the grant.
func spawnBudgetLeak(b *em.Budget) {
	b.MustGrant(4) // want "can reach the return"
	go func() {
		_ = b.Frames()
	}()
}

// a named same-package worker that leaks is tracked through the launch.
func spawnNamedLeak(b *em.Budget) {
	b.MustGrant(2) // want "can reach the return"
	go graze(b)
}

func graze(b *em.Budget) {
	_ = b.Frames()
}

// --- negatives ---

// frame handed to the worker as an argument, released on its one path:
// the parameter binding carries the obligation across the boundary.
func spawnArgRelease(p *em.FramePool) {
	f := p.Acquire()
	go func(fr em.Frame) {
		defer p.Release(fr)
	}(f)
}

// named same-package worker that releases: resolved interprocedurally.
func spawnNamed(p *em.FramePool) {
	f := p.Acquire()
	go settle(p, f)
}

func settle(p *em.FramePool, f em.Frame) {
	p.Release(f)
}

// the worker releases on every path, including the early return.
func spawnAllPaths(b *em.Budget, cond bool) {
	b.MustGrant(1)
	go func() {
		if cond {
			b.Release(1)
			return
		}
		b.Release(1)
	}()
}
