// Package em is a miniature stand-in for nexsort/internal/em with the same
// type shapes the analyzers key on: Budget (Grant/MustGrant/Release,
// AcquireFrames/ReleaseFrames), FramePool (Acquire/Release), Stats with
// counter fields behind accessor methods, the positional-I/O Backend
// interface, and the accounting Device. Method bodies are deliberately
// trivial — the analyzers match on names, receivers, and declaring package
// path (".../internal/em"), not behavior.
package em

import "errors"

// ErrBudgetExceeded mirrors the real budget's sentinel error.
var ErrBudgetExceeded = errors.New("em: budget exceeded")

// Frame is one block-sized buffer.
type Frame []byte

// FramePool hands out frames.
type FramePool struct {
	free []Frame
}

func (p *FramePool) Acquire() Frame           { return make(Frame, 4096) }
func (p *FramePool) Release(f Frame)          {}
func (p *FramePool) ReleaseFrames(fs []Frame) {}

// Budget meters main-memory blocks.
type Budget struct {
	used, total int
	pool        *FramePool
}

func (b *Budget) Grant(n int) error {
	if b.used+n > b.total {
		return ErrBudgetExceeded
	}
	b.used += n
	return nil
}

func (b *Budget) MustGrant(n int) {
	b.used += n
}

func (b *Budget) Release(n int) {
	b.used -= n
}

func (b *Budget) AcquireFrames(n int) ([]Frame, error) {
	if b.used+n > b.total {
		return nil, ErrBudgetExceeded
	}
	b.used += n
	return make([]Frame, n), nil
}

func (b *Budget) ReleaseFrames(fs []Frame) {
	b.used -= len(fs)
}

func (b *Budget) Frames() *FramePool { return b.pool }

// Pool is the bounded worker-admission semaphore: a goroutine that
// releases a slot ties its lifetime to the pool.
type Pool struct {
	slots chan struct{}
}

func (p *Pool) TryAcquire() bool { return true }
func (p *Pool) Release()         {}

// Backend is the positional-I/O substrate beneath the Device.
type Backend interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Close() error
}

// Device is the accounting chokepoint for block traffic.
type Device struct {
	backend Backend
}

func (d *Device) ReadBlock(i int64, f Frame) error  { return nil }
func (d *Device) WriteBlock(i int64, f Frame) error { return nil }

// Stats holds per-direction counters; every touch must go through the
// accessor methods.
type Stats struct {
	ReadsCount  int64
	writesCount int64
}

func (s *Stats) AddReads(n int64)  { s.ReadsCount += n }
func (s *Stats) Reads() int64      { return s.ReadsCount }
func (s *Stats) AddWrites(n int64) { s.writesCount += n }
func (s *Stats) Writes() int64     { return s.writesCount }
