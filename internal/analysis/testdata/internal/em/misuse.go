package em

// resetStats is a non-method helper inside the em package itself: the
// statsatomic exemption covers only Stats accessor methods, so these
// direct field touches must still be flagged.
func resetStats(s *Stats) {
	s.ReadsCount = 0  // want "direct access to em.Stats field `ReadsCount`"
	s.writesCount = 0 // want "direct access to em.Stats field `writesCount`"
}

// statsViaAccessors is the clean counterpart.
func statsViaAccessors(s *Stats) int64 {
	s.AddReads(1)
	s.AddWrites(1)
	return s.Reads() + s.Writes()
}
