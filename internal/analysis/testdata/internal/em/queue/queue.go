// Package queue exercises chandisc's bounded-capacity rule: under the
// device layer (.../internal/em/...), data channels must be made with an
// explicit capacity so the depth grant — not the scheduler — is the
// memory bound. Signal channels (chan struct{}) are exempt.
package queue

type req struct {
	id int64
}

func newQueues(depth int) (chan req, chan req, chan struct{}) {
	bad := make(chan req) // want "unbuffered data channel in the device layer"
	good := make(chan req, depth)
	done := make(chan struct{})
	return bad, good, done
}
