// Package main may fire and forget: the process lifetime is the join, so
// goleak must stay silent here.
package main

func main() {
	go func() {}()
}
