// Package core exercises detptr (NV004). Its import path ends in
// /internal/core, which puts it inside the determinism contract's scope.
package core

import (
	"math/rand"
	"sort"
	"time"
)

func stamp() int64 {
	t := time.Now() // want "wall-clock read `time.Now`"
	return t.UnixNano()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "wall-clock read `time.Since`"
}

func jitter() int {
	return rand.Intn(8) // want "global math/rand source `rand.Intn`"
}

func sum(m map[string]int64) int64 {
	var total int64
	for _, v := range m { // want "map iteration order"
		total += v
	}
	return total
}

// sortedKeys is still flagged: the analyzer reports every map range and
// leaves proving order-independence to a baseline entry, as the real
// tree does for em.Stats.String.
func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // want "map iteration order"
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// --- negatives ---

func seeded() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(8)
}

func sliceWalk(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
