// Package chans exercises chandisc (NV007): one closer per channel, and
// no send after a reachable close on any intra-function path. Deferred
// closes, terminated branches, and reassignments are recognized as safe.
package chans

// --- positives ---

// two statically identified closers: ownership is ambiguous.
type owner struct {
	ch chan int
}

func (o *owner) closeA() { close(o.ch) }
func (o *owner) closeB() { close(o.ch) } // want "more than one statically identified closer"

// straight-line send after close panics.
func sendAfterClose(ch chan int) {
	close(ch)
	ch <- 1 // want "after it was closed on this path"
}

// the close is loop-carried: iteration N closes, iteration N+1 sends.
func loopClose(ch chan int, n int) {
	for i := 0; i < n; i++ {
		ch <- i // want "after it was closed on this path"
		if i == 0 {
			close(ch)
		}
	}
}

// a select arm can still try the dead channel.
func selectAfterClose(ch chan int) {
	close(ch)
	select {
	case ch <- 1: // want "after it was closed on this path"
	default:
	}
}

// --- negatives ---

// the closing branch terminates, so the send is unreachable after it.
func branchClose(ch chan int, done bool) {
	if done {
		close(ch)
		return
	}
	ch <- 1
}

// a deferred close runs at exit, after every send in the body.
func deferredClose(ch chan int) {
	defer close(ch)
	ch <- 1
}

// reassignment revives the chain: the send targets a fresh channel.
func reassign(n int) {
	ch := make(chan int, n)
	close(ch)
	ch = make(chan int, n)
	ch <- 1
}

// quit-style select: sends and the drain signal never cross.
func pump(ch chan int, quit chan struct{}) {
	for {
		select {
		case ch <- 1:
		case <-quit:
			return
		}
	}
}
