// Package statsuse exercises statsatomic (NV003) from outside package em:
// direct field access on em.Stats is flagged; the accessor methods are the
// sanctioned route.
package statsuse

import "nexvet.example/internal/em"

func bump(s *em.Stats) {
	s.ReadsCount++ // want "direct access to em.Stats field `ReadsCount`"
}

func read(s *em.Stats) int64 {
	return s.ReadsCount // want "direct access to em.Stats field `ReadsCount`"
}

func viaAccessors(s *em.Stats) int64 {
	s.AddReads(2)
	return s.Reads() + s.Writes()
}
