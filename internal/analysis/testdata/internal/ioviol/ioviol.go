// Package ioviol exercises iopurity (NV002): raw os/syscall file I/O and
// direct backend positional I/O are flagged outside the em tree; traffic
// through em.Device is not.
package ioviol

import (
	"os"
	"syscall"

	"nexvet.example/internal/em"
)

func stage(path string) error {
	f, err := os.Create(path) // want "raw file I/O `os.Create`"
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write([]byte("payload")) // want "direct os.File `Write`"
	return err
}

func slurp(path string) ([]byte, error) {
	return os.ReadFile(path) // want "raw file I/O `os.ReadFile`"
}

func rawBackend(b em.Backend, buf []byte) {
	b.ReadAt(buf, 0)  // want "direct backend `ReadAt`"
	b.WriteAt(buf, 0) // want "direct backend `WriteAt`"
}

func rawSyscall(fd int, buf []byte) {
	syscall.Write(fd, buf) // want "raw syscall I/O `syscall.Write`"
}

// --- negatives ---

func viaDevice(d *em.Device, f em.Frame) error {
	if err := d.ReadBlock(0, f); err != nil {
		return err
	}
	return d.WriteBlock(1, f)
}

func nonIOOsCalls(path string) string {
	_ = os.Remove(path) // removal is metadata, not block traffic
	return os.Getenv("HOME")
}
