package analysis

// Edge cases of the `go vet -vettool` unit-checker protocol and of the
// standalone loader: cache-key behavior of -V=full, testdata/vendor
// skipping, and an end-to-end proof that a seeded concurrency defect fails
// BOTH drive modes — go vet's per-package protocol and nexvet's own
// whole-tree loader must agree on what is red.

import (
	"bufio"
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestVersionLineTracksBinaryContent pins the -V=full contract: the line is
// cmd/go's cache key for the vettool, so it MUST change when the binary's
// bytes change (else a rebuilt nexvet replays stale vet results) and MUST
// stay identical for identical bytes (else every run is a cache miss).
func TestVersionLineTracksBinaryContent(t *testing.T) {
	dir := t.TempDir()
	v1 := filepath.Join(dir, "nexvet.build1")
	v2 := filepath.Join(dir, "nexvet.build2")
	if err := os.WriteFile(v1, []byte("binary with analyzer A"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(v2, []byte("binary with analyzer A and a fix"), 0o755); err != nil {
		t.Fatal(err)
	}

	l1 := VersionLine("nexvet", v1)
	l2 := VersionLine("nexvet", v2)
	if !strings.HasPrefix(l1, "nexvet version devel buildID=") {
		t.Fatalf("version line format: %q", l1)
	}
	if l1 == l2 {
		t.Fatalf("different binary contents produced the same cache key %q — driver would reuse stale vet results after a rebuild", l1)
	}
	if again := VersionLine("nexvet", v1); again != l1 {
		t.Fatalf("same binary produced different keys %q vs %q — every vet run would miss the cache", l1, again)
	}
	if line := VersionLine("nexvet", filepath.Join(dir, "absent")); !strings.Contains(line, "unknown") {
		t.Fatalf("unreadable executable must degrade to an 'unknown' key, got %q", line)
	}
}

// TestSkipListedPackage pins the loader's support-material filter: testdata
// fixtures and vendored trees swept up by explicit patterns are never
// analysis targets, but a module that itself lives under a testdata/
// directory (the golden suites' nexvet.example) analyzes its own packages.
func TestSkipListedPackage(t *testing.T) {
	mod := &struct {
		Path string
		Dir  string
	}{Path: "example.com/m", Dir: "/home/u/src/m"}
	fixtureMod := &struct {
		Path string
		Dir  string
	}{Path: "nexvet.example", Dir: "/repo/internal/analysis/testdata"}

	cases := []struct {
		name string
		pkg  listedPackage
		skip bool
	}{
		{"normal package", listedPackage{Dir: "/home/u/src/m/internal/em", Module: mod}, false},
		{"testdata below module root", listedPackage{Dir: "/home/u/src/m/internal/analysis/testdata/internal/fb", Module: mod}, true},
		{"vendor below module root", listedPackage{Dir: "/home/u/src/m/vendor/example.com/dep", Module: mod}, true},
		{"module rooted inside a testdata dir", listedPackage{Dir: "/repo/internal/analysis/testdata/internal/leak", Module: fixtureMod}, false},
		{"no module info, testdata in path", listedPackage{Dir: "/tmp/x/testdata/y"}, true},
	}
	for _, tc := range cases {
		if got := skipListedPackage(&tc.pkg); got != tc.skip {
			t.Errorf("%s (%s): skip=%v, want %v", tc.name, tc.pkg.Dir, got, tc.skip)
		}
	}
}

// buildNexvet compiles cmd/nexvet into dir and returns the binary path.
func buildNexvet(t *testing.T, dir string) string {
	t.Helper()
	bin := filepath.Join(dir, "nexvet")
	cmd := exec.Command("go", "build", "-o", bin, "nexsort/cmd/nexvet")
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Dir = filepath.Dir(filepath.Dir(cwd)) // internal/analysis -> repo root
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building nexvet: %v\n%s", err, out)
	}
	return bin
}

// writeFakeModule lays out a minimal external module whose em package has a
// seeded fire-and-forget goroutine — the defect NV006 exists to catch.
func writeFakeModule(t *testing.T) string {
	t.Helper()
	mod := t.TempDir()
	files := map[string]string{
		"go.mod": "module fakeem.example\n\ngo 1.22\n",
		"em/em.go": `package em

// Start leaks a worker: no WaitGroup, no drained channel, no quit signal.
func Start() {
	go func() {
		for {
		}
	}()
}
`,
	}
	for name, content := range files {
		path := filepath.Join(mod, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return mod
}

// TestSeededLeakFailsBothModes proves the two drive modes agree: the same
// fire-and-forget goroutine is red under `go vet -vettool=nexvet` (the
// protocol path through .cfg files and export data) and under standalone
// `nexvet ./...` (the go list loader), and the standalone -json stream
// carries the finding in machine-readable form.
func TestSeededLeakFailsBothModes(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the nexvet binary and invokes go vet")
	}
	bin := buildNexvet(t, t.TempDir())
	mod := writeFakeModule(t)

	// Standalone mode.
	standalone := exec.Command(bin, "./...")
	standalone.Dir = mod
	out, err := standalone.CombinedOutput()
	if err == nil {
		t.Fatalf("standalone nexvet passed on a seeded goroutine leak:\n%s", out)
	}
	if !strings.Contains(string(out), "NV006") || !strings.Contains(string(out), "fire-and-forget") {
		t.Fatalf("standalone output lacks the NV006 finding:\n%s", out)
	}

	// go vet -vettool mode.
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err = vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on a seeded goroutine leak:\n%s", out)
	}
	if !strings.Contains(string(out), "NV006") {
		t.Fatalf("vettool output lacks the NV006 finding:\n%s", out)
	}

	// -json mode: every line parses, and the finding is present, not baselined.
	jsonRun := exec.Command(bin, "-json", "./...")
	jsonRun.Dir = mod
	var stdout bytes.Buffer
	jsonRun.Stdout = &stdout
	if err := jsonRun.Run(); err == nil {
		t.Fatal("-json run must still exit non-zero on findings")
	}
	found := false
	sc := bufio.NewScanner(&stdout)
	for sc.Scan() {
		var d struct {
			Analyzer  string `json:"analyzer"`
			Code      string `json:"code"`
			File      string `json:"file"`
			Line      int    `json:"line"`
			Message   string `json:"message"`
			Baselined bool   `json:"baselined"`
		}
		if err := json.Unmarshal(sc.Bytes(), &d); err != nil {
			t.Fatalf("non-JSON line in -json output: %q (%v)", sc.Text(), err)
		}
		if d.Code == "NV006" && d.Analyzer == "goleak" && !d.Baselined && d.Line > 0 &&
			strings.HasSuffix(d.File, "em/em.go") {
			found = true
		}
	}
	if !found {
		t.Fatalf("-json stream lacks the NV006 diagnostic:\n%s", stdout.String())
	}
}

// TestVettoolCacheInvalidation drives the stale-cache-key scenario end to
// end: after a clean `go vet -vettool` run is cached, editing the analyzed
// source must re-trigger analysis and fail — the driver's cache key
// includes the package content, and nexvet's -V=full line must not mask
// the change.
func TestVettoolCacheInvalidation(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the nexvet binary and invokes go vet twice")
	}
	bin := buildNexvet(t, t.TempDir())
	mod := writeFakeModule(t)
	src := filepath.Join(mod, "em", "em.go")

	// First: make the module clean (join the goroutine), vet passes and caches.
	clean := `package em

import "sync"

func Start() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
	wg.Wait()
}
`
	if err := os.WriteFile(src, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("clean module must vet green: %v\n%s", err, out)
	}

	// Then: seed the leak back in. A stale cache would replay the green
	// result; the content-addressed key must force re-analysis.
	leaky := `package em

func Start() {
	go func() {
		for {
		}
	}()
}
`
	if err := os.WriteFile(src, []byte(leaky), 0o644); err != nil {
		t.Fatal(err)
	}
	vet = exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = mod
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("stale vet cache replayed a green result after the source changed:\n%s", out)
	}
	if !strings.Contains(string(out), "NV006") {
		t.Fatalf("re-vet after edit lacks the NV006 finding:\n%s", out)
	}
}
