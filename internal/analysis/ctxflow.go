package analysis

import (
	"go/ast"
	"go/types"
)

// CtxFlow (NV005) enforces the lifecycle model's context discipline:
// library code receives its context from the caller and threads it through
// call paths — it never manufactures a root context and never parks one in
// a struct.
//
//   - context.Background() / context.TODO() calls are banned outside
//     package main: a library that makes its own root context silently
//     detaches the work from the caller's cancellation and deadline. The
//     em layer's alternative for "this run can never be canceled" is a nil
//     *em.Lifecycle, not a fresh Background.
//   - struct fields of type context.Context are banned: a stored context
//     outlives the call it belonged to and hides the cancellation scope
//     (the go vet containedctx rule). The em.Lifecycle wrapper — one
//     immutable field behind nil-safe accessors — and the short-lived
//     stream guards are the deliberate, baselined exceptions.
//
// Scope: every package except main (binaries own their root context, so
// Background is exactly right there). Test files are dropped by Report,
// as everywhere in nexvet.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Code: "NV005",
	Doc: "report library code that manufactures a root context " +
		"(context.Background/TODO) or stores a context.Context in a struct field",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	if pass.Pkg.Name() == "main" {
		return // binaries own their root context
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.CallExpr:
				sel, ok := x.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				name := sel.Sel.Name
				if name != "Background" && name != "TODO" {
					return true
				}
				if pkgName, ok := pass.pkgOf(sel.X); ok && pkgName == "context" {
					pass.Report(x.Pos(),
						"library code manufactures a root context via `context."+name+"`",
						"accept the context from the caller; a run that must never cancel binds a nil lifecycle instead")
				}
			case *ast.StructType:
				for _, field := range x.Fields.List {
					tv, ok := pass.Info.Types[field.Type]
					if !ok || !isContextType(tv.Type) {
						continue
					}
					pass.Report(field.Pos(),
						"context.Context stored in a struct field",
						"thread ctx through call paths; a stored context outlives its call and hides the cancellation scope")
				}
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context (possibly behind a
// pointer or alias).
func isContextType(t types.Type) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
