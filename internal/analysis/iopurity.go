package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// IOPurity (NV002) enforces I/O conservation: every block transfer in the
// algorithm packages must flow through em.Device (ReadBlock/WriteBlock), so
// the per-category em.Stats — the paper's §5 I/O figures — count every
// transfer exactly once. Outside the em device layer, the analyzer bans:
//
//   - positional I/O methods (ReadAt/WriteAt/ReadAtCat/WriteAtCat) called
//     directly on em backend types or the em.Backend interface — these are
//     the Device's private substrate; calling them skips the accounting;
//   - file-opening and raw file I/O via the os package;
//   - raw syscall reads/writes.
//
// Scope: packages under internal/ except the em tree itself. The API
// boundary (the root nexsort package, cmd/ tools, examples) legitimately
// opens input and output files — those are charged through
// em.CountingReader/CountingWriter and are not block traffic. Harness
// packages that stage workload files (internal/bench) are intentional
// exceptions: baseline them.
var IOPurity = &Analyzer{
	Name: "iopurity",
	Code: "NV002",
	Doc: "report device-bypassing I/O (raw backend, os file, syscall) outside " +
		"internal/em, where it would escape em.Stats accounting",
	Run: runIOPurity,
}

// osFileIOFuncs are the os package functions that open or perform file I/O.
var osFileIOFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "NewFile": true, "Pipe": true,
}

// osFileMethods are (*os.File) methods that move data.
var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "ReadFrom": true,
	"Write": true, "WriteAt": true, "WriteTo": true, "WriteString": true,
	"Seek": true, "Truncate": true,
}

// syscallIOFuncs are raw I/O entry points in package syscall.
var syscallIOFuncs = map[string]bool{
	"Read": true, "Write": true, "Pread": true, "Pwrite": true,
	"Open": true, "Openat": true,
}

// backendMethods are the positional-I/O methods of em backends.
var backendMethods = map[string]bool{
	"ReadAt": true, "WriteAt": true, "ReadAtCat": true, "WriteAtCat": true,
}

func runIOPurity(pass *Pass) {
	path := pass.Pkg.Path()
	if !strings.Contains(path, "/internal/") && !strings.HasPrefix(path, "internal/") {
		return // API boundary: input/output files are counted, not block I/O
	}
	if underEMTree(path) {
		return // the device layer is where the accounting lives
	}
	if strings.HasSuffix(path, "/internal/analysis") || strings.Contains(path, "/internal/analysis/") {
		return // the analyzers read Go source and export data, not blocks
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name := sel.Sel.Name

			// Package-level calls: os.* / syscall.*.
			if pkgName, ok := pass.pkgOf(sel.X); ok {
				switch {
				case pkgName == "os" && osFileIOFuncs[name]:
					pass.Report(call.Pos(),
						"raw file I/O `os."+name+"` bypasses em.Device accounting",
						"route block traffic through em.Device, or wrap boundary files in em.CountingReader/Writer and baseline the harness")
				case pkgName == "syscall" && syscallIOFuncs[name]:
					pass.Report(call.Pos(),
						"raw syscall I/O `syscall."+name+"` bypasses em.Device accounting",
						"route block traffic through em.Device")
				}
				return true
			}

			recv, ok := pass.Info.Types[sel.X]
			if !ok {
				return true
			}
			// Direct backend method calls: the Device's private substrate.
			if backendMethods[name] && isEMBackendType(recv.Type) {
				pass.Report(call.Pos(),
					"direct backend `"+name+"` skips the em.Stats read/write counters",
					"use em.Device.ReadBlock/WriteBlock so the transfer is charged to a category")
				return true
			}
			// (*os.File) data methods.
			if osFileMethods[name] && isOSFile(recv.Type) {
				pass.Report(call.Pos(),
					"direct os.File `"+name+"` bypasses em.Device accounting",
					"route block traffic through em.Device")
			}
			return true
		})
	}
}

// pkgOf reports the package a bare-identifier selector base names.
func (p *Pass) pkgOf(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	return "", false
}

// isEMBackendType reports whether t is a named type declared in the em
// layer that carries backend I/O methods, or the em.Backend interface
// itself (including interfaces embedding it).
func isEMBackendType(t types.Type) bool {
	named := namedOrPointee(t)
	if named == nil {
		// An unnamed interface (e.g. a local alias) still counts if it
		// demands positional I/O.
		if iface, ok := t.Underlying().(*types.Interface); ok {
			return hasReadWriteAt(iface)
		}
		return false
	}
	if !declaredInEM(named.Obj()) {
		return false
	}
	if iface, ok := named.Underlying().(*types.Interface); ok {
		return hasReadWriteAt(iface)
	}
	// Concrete em types: only those that actually expose backend I/O.
	for i := 0; i < named.NumMethods(); i++ {
		if backendMethods[named.Method(i).Name()] {
			return true
		}
	}
	return false
}

// hasReadWriteAt reports whether the interface includes positional I/O.
func hasReadWriteAt(iface *types.Interface) bool {
	for i := 0; i < iface.NumMethods(); i++ {
		if backendMethods[iface.Method(i).Name()] {
			return true
		}
	}
	return false
}

// isOSFile reports whether t is *os.File or os.File.
func isOSFile(t types.Type) bool {
	named := namedOrPointee(t)
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}
