package analysis

// Golden tests in the style of golang.org/x/tools' analysistest, without
// the dependency: each package under testdata/ annotates the lines it
// expects diagnostics on with `// want "regexp"` comments, the runner
// loads the package through the same go list -export pipeline nexvet uses
// in anger, runs ONE analyzer, and diffs actual against expected.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestFrameBalanceGolden(t *testing.T) { runGolden(t, FrameBalance, "./internal/fb") }
func TestIOPurityGolden(t *testing.T)     { runGolden(t, IOPurity, "./internal/ioviol") }
func TestStatsAtomicGolden(t *testing.T) {
	runGolden(t, StatsAtomic, "./internal/em")       // in-package misuse, accessor exemption
	runGolden(t, StatsAtomic, "./internal/statsuse") // cross-package misuse
}
func TestDetPtrGolden(t *testing.T) {
	runGolden(t, DetPtr, "./internal/core")  // in scope
	runGolden(t, DetPtr, "./internal/plain") // out of scope: must stay silent
}
func TestCtxFlowGolden(t *testing.T) {
	runGolden(t, CtxFlow, "./internal/ctxviol") // library: roots and stored ctx flagged
	runGolden(t, CtxFlow, "./internal/ctxmain") // package main: must stay silent
}
func TestGoLeakGolden(t *testing.T) {
	runGolden(t, GoLeak, "./internal/leak")     // library: lifecycle proofs required
	runGolden(t, GoLeak, "./internal/leakmain") // package main: must stay silent
}
func TestChanDiscGolden(t *testing.T) {
	runGolden(t, ChanDisc, "./internal/chans")    // ownership and close discipline
	runGolden(t, ChanDisc, "./internal/em/queue") // bounded-capacity rule in the device layer
}
func TestLockGuardGolden(t *testing.T) { runGolden(t, LockGuard, "./internal/locks") }

// want is one expected diagnostic.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

func (w *want) String() string {
	return fmt.Sprintf("%s:%d: want %q", filepath.Base(w.file), w.line, w.re.String())
}

func runGolden(t *testing.T, az *Analyzer, pattern string) {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, pattern)
	if err != nil {
		t.Fatalf("loading %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages matched %s", pattern)
	}

	var wants []*want
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, w := range parseWants(t, pos.Filename, pos.Line, c.Text) {
						wants = append(wants, w)
					}
				}
			}
		}
	}

	diags := RunAnalyzers(pkgs, []*Analyzer{az})
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("no %s diagnostic matched %s", az.Name, w)
		}
	}
}

// claim marks the first unhit want on (file, line) whose pattern matches
// message, reporting whether one existed.
func claim(wants []*want, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.hit && w.line == line && w.file == file && w.re.MatchString(message) {
			w.hit = true
			return true
		}
	}
	return false
}

// parseWants extracts `// want "re" "re" ...` expectations from a comment.
func parseWants(t *testing.T, file string, line int, text string) []*want {
	t.Helper()
	body := strings.TrimSpace(strings.TrimPrefix(text, "//"))
	if !strings.HasPrefix(body, "want ") {
		return nil
	}
	var out []*want
	for _, m := range wantPattern.FindAllStringSubmatch(body, -1) {
		re, err := regexp.Compile(m[1])
		if err != nil {
			t.Fatalf("%s:%d: bad want pattern %q: %v", file, line, m[1], err)
		}
		out = append(out, &want{file: file, line: line, re: re})
	}
	if len(out) == 0 {
		t.Fatalf("%s:%d: want comment with no quoted pattern: %q", file, line, text)
	}
	return out
}

var wantPattern = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
