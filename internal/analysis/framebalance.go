package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// FrameBalance (NV001) enforces the frame-containment invariant of
// DESIGN.md §10 at compile time: every memory acquisition —
// Budget.Grant/MustGrant, Budget.AcquireFrames, FramePool.Acquire — must be
// matched, on every path that can reach a return (error unwinds included),
// by its release, a defer of its release, or an explicit transfer of
// ownership (the budget/frames stored into a returned object, handed to a
// worker closure that releases them, or passed to another owner).
//
// The check is intra-procedural and path-sensitive over the function's
// statement structure. It recognizes the repo's idioms:
//
//   - `if err := b.Grant(n); err != nil { return ... }` — the obligation
//     exists only on the success path;
//   - `defer b.Release(n)` and `defer func() { ... b.Release(n) ... }()`;
//   - constructors that grant and then return an object owning the budget
//     (`&StreamWriter{budget: budget, ...}`);
//   - worker dispatch, where the spawned closure — or a same-package
//     function/method launched by name — is sub-analyzed as the new owner:
//     the obligation transfers only when the worker provably releases it
//     (or hands it onward) on every path. Frames passed as arguments are
//     bound to the worker's parameters, so `go s.flush(fr)` and
//     `go func(fr em.Frame) { defer pool.Release(fr) }(fr)` are both
//     tracked across the goroutine boundary; a worker that merely reads
//     the frame leaks it and the launch is reported.
//
// Grant-only wrappers (a function whose contract is that the caller
// releases) are intentional exceptions: baseline them.
var FrameBalance = &Analyzer{
	Name: "framebalance",
	Code: "NV001",
	Doc: "report Budget grants and FramePool acquisitions that can reach a " +
		"return with no release, defer, or ownership transfer on some path",
	Run: runFrameBalance,
}

// oblig is one outstanding acquisition.
type oblig struct {
	pos  token.Pos // acquire site
	call string    // rendered acquire, for the message
	// root/owner: canonical receiver chain of a Budget acquisition and its
	// one-shorter prefix ("" for frame obligations).
	root  string
	owner string
	// frameVars: idents bound to the acquired Frame / []Frame (aliases
	// accumulate); a mention in value position transfers ownership.
	frameVars map[*ast.Object]bool
	// errVar: the error ident guarding a conditional acquisition; until the
	// `err != nil` check resolves, the obligation is conditional.
	errVar *ast.Object
}

// fbState is the per-path analysis state: the set of live obligations.
type fbState struct {
	live map[*oblig]bool
}

func (s *fbState) clone() *fbState {
	c := &fbState{live: make(map[*oblig]bool, len(s.live))}
	for o := range s.live {
		c.live[o] = true
	}
	return c
}

// merge unions live obligations from a sibling path.
func (s *fbState) merge(o *fbState) {
	for ob := range o.live {
		s.live[ob] = true
	}
}

type fbFunc struct {
	pass     *Pass
	aliases  map[*ast.Object]string // budget/pool local aliases → canonical chain
	reported map[*oblig]bool
	// decls indexes the package's function declarations so `go f(...)` /
	// `go x.m(...)` launches can be sub-analyzed like literals.
	decls map[types.Object]*ast.FuncDecl
	// leaked, when non-nil, puts the walk in collect mode: checkReturn
	// records still-live obligations here instead of reporting, so a
	// spawned worker's analysis feeds the launcher rather than the user.
	leaked map[*oblig]bool
	// depth counts nested spawn sub-analyses (recursion guard).
	depth int
}

// maxSpawnDepth bounds spawn sub-analysis nesting; a worker chain deeper
// than this (or a recursive launch) falls back to escape semantics.
const maxSpawnDepth = 8

func runFrameBalance(pass *Pass) {
	decls := map[types.Object]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.Info.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			fb := &fbFunc{pass: pass, aliases: map[*ast.Object]string{}, reported: map[*oblig]bool{}, decls: decls}
			st := &fbState{live: map[*oblig]bool{}}
			if !fb.walkStmts(body.List, st) {
				fb.checkReturn(st, body.End())
			}
			return true // nested functions are analyzed as their own units
		})
	}
}

// walkStmts analyzes a statement list, returning true when every path
// through it terminates (return/panic/exit) before falling off the end.
func (f *fbFunc) walkStmts(stmts []ast.Stmt, st *fbState) bool {
	for _, s := range stmts {
		if f.walkStmt(s, st) {
			return true
		}
	}
	return false
}

func (f *fbFunc) walkStmt(s ast.Stmt, st *fbState) (terminated bool) {
	switch x := s.(type) {
	case *ast.ExprStmt:
		f.processExpr(x.X, st)
		return isTerminalCall(x.X)

	case *ast.AssignStmt:
		f.processAssign(x, st)

	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						f.processExpr(v, st)
					}
				}
			}
		}

	case *ast.ReturnStmt:
		for _, r := range x.Results {
			f.processExpr(r, st)
		}
		f.checkReturn(st, x.Pos())
		return true

	case *ast.DeferStmt:
		// A deferred release runs at every subsequent exit of this path, so
		// it discharges the obligation outright.
		f.processCallDischarges(x.Call, st)
		for _, a := range x.Call.Args {
			f.processExpr(a, st)
		}
		if lit, ok := x.Call.Fun.(*ast.FuncLit); ok {
			f.closureScan(lit, st)
		}

	case *ast.GoStmt:
		// NV001v2: a spawned worker is a new owner, not a black hole — its
		// body is sub-analyzed, so only obligations it provably releases
		// (or hands onward) on every path are discharged; what it can leak
		// stays on the launcher's books and is reported at the launcher's
		// return.
		f.spawnDispatch(x.Call, st)

	case *ast.IfStmt:
		return f.walkIf(x, st)

	case *ast.BlockStmt:
		return f.walkStmts(x.List, st)

	case *ast.ForStmt:
		if x.Init != nil {
			f.walkStmt(x.Init, st)
		}
		if x.Cond != nil {
			f.processExpr(x.Cond, st)
		}
		body := st.clone()
		f.walkStmts(x.Body.List, body)
		if x.Post != nil {
			f.walkStmt(x.Post, body)
		}
		st.merge(body)

	case *ast.RangeStmt:
		f.processExpr(x.X, st)
		body := st.clone()
		f.walkStmts(x.Body.List, body)
		st.merge(body)

	case *ast.SwitchStmt:
		if x.Init != nil {
			f.walkStmt(x.Init, st)
		}
		if x.Tag != nil {
			f.processExpr(x.Tag, st)
		}
		return f.walkCases(x.Body, st)

	case *ast.TypeSwitchStmt:
		if x.Init != nil {
			f.walkStmt(x.Init, st)
		}
		return f.walkCases(x.Body, st)

	case *ast.SelectStmt:
		return f.walkCases(x.Body, st)

	case *ast.LabeledStmt:
		return f.walkStmt(x.Stmt, st)

	case *ast.SendStmt:
		f.processExpr(x.Chan, st)
		f.processExpr(x.Value, st)

	case *ast.BranchStmt:
		// break/continue/goto: approximate by ending this path; the loop
		// merge already accounts for the body's obligations.
		return x.Tok != token.FALLTHROUGH

	case *ast.IncDecStmt:
		f.processExpr(x.X, st)
	}
	return false
}

// walkIf handles if/else with the error-check idiom: when the condition is
// `errVar != nil` (or `== nil`) for an error bound to a conditional
// acquisition, the obligation is dead on the failure branch and
// unconditional on the success branch.
func (f *fbFunc) walkIf(x *ast.IfStmt, st *fbState) bool {
	if x.Init != nil {
		f.walkStmt(x.Init, st)
	}
	f.processExpr(x.Cond, st)

	errObj, errIsNonNil := errCheck(x.Cond)
	thenSt, elseSt := st.clone(), st.clone()
	if errObj != nil {
		failSt, okSt := thenSt, elseSt
		if !errIsNonNil {
			failSt, okSt = elseSt, thenSt
		}
		for o := range st.live {
			if o.errVar == errObj {
				delete(failSt.live, o) // acquisition failed: nothing held
			}
		}
		for o := range okSt.live {
			if o.errVar == errObj {
				o.errVar = nil // success proven: unconditionally held
			}
		}
	}

	termThen := f.walkStmts(x.Body.List, thenSt)
	termElse := false
	if x.Else != nil {
		termElse = f.walkStmt(x.Else, elseSt)
	}

	st.live = map[*oblig]bool{}
	if !termThen {
		st.merge(thenSt)
	}
	if !termElse {
		st.merge(elseSt)
	}
	return termThen && termElse
}

// walkCases analyzes switch/select clause bodies as sibling paths.
func (f *fbFunc) walkCases(body *ast.BlockStmt, st *fbState) bool {
	entry := st.clone()
	st.live = map[*oblig]bool{}
	hasDefault := false
	allTerminate := true
	for _, clause := range body.List {
		var stmts []ast.Stmt
		switch c := clause.(type) {
		case *ast.CaseClause:
			if c.List == nil {
				hasDefault = true
			}
			for _, e := range c.List {
				f.processExpr(e, entry)
			}
			stmts = c.Body
		case *ast.CommClause:
			hasDefault = true // select always takes some clause
			if c.Comm != nil {
				f.walkStmt(c.Comm, entry)
			}
			stmts = c.Body
		}
		caseSt := entry.clone()
		if !f.walkStmts(stmts, caseSt) {
			allTerminate = false
			st.merge(caseSt)
		}
	}
	if !hasDefault {
		st.merge(entry)
		allTerminate = false
	}
	return allTerminate && len(body.List) > 0
}

// processAssign records acquisitions bound to variables, budget/pool
// aliases, and escapes on the right-hand sides.
func (f *fbFunc) processAssign(x *ast.AssignStmt, st *fbState) {
	// Acquisition forms: `err := B.Grant(n)`, `frames, err := B.AcquireFrames(n)`,
	// `f := P.Acquire()`.
	if len(x.Rhs) == 1 {
		if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
			if f.acquireAssign(call, x.Lhs, st) {
				for _, a := range call.Args {
					f.processExpr(a, st)
				}
				return
			}
		}
		// Alias: `b := s.env.Budget` / `pool := dev.Frames()` — only pure
		// chains are canonicalizable.
		if obj := singleNewIdent(x); obj != nil {
			if t, ok := f.pass.Info.Types[x.Rhs[0]]; ok &&
				(isEMType(t.Type, "Budget") || isEMType(t.Type, "FramePool")) {
				if chain, ok := chainText(x.Rhs[0]); ok {
					f.aliases[obj] = f.canonical(chain)
				}
			}
			// Frame alias: `g := f` keeps the obligation dischargeable
			// through either name.
			if id, ok := x.Rhs[0].(*ast.Ident); ok && id.Obj != nil {
				for o := range st.live {
					if o.frameVars[id.Obj] {
						o.frameVars[obj] = true
					}
				}
			}
		}
	}
	for _, r := range x.Rhs {
		f.processExpr(r, st)
	}
	for _, l := range x.Lhs {
		// Index/selector stores are value sinks for their RHS only; the
		// LHS chain itself is not an escape.
		if ix, ok := l.(*ast.IndexExpr); ok {
			f.processExpr(ix.Index, st)
		}
	}
}

// acquireAssign handles an acquisition call on the RHS of an assignment,
// binding result variables. Returns true when call was an acquisition.
func (f *fbFunc) acquireAssign(call *ast.CallExpr, lhs []ast.Expr, st *fbState) bool {
	kind, root := f.acquisition(call)
	switch kind {
	case "Grant":
		o := f.newBudgetOblig(call, root)
		if len(lhs) == 1 {
			o.errVar = identObj(lhs[0])
		}
		st.live[o] = true
	case "MustGrant":
		st.live[f.newBudgetOblig(call, root)] = true
	case "AcquireFrames":
		o := f.newBudgetOblig(call, root)
		if len(lhs) == 2 {
			if obj := identObj(lhs[0]); obj != nil {
				o.frameVars[obj] = true
			}
			o.errVar = identObj(lhs[1])
		}
		st.live[o] = true
	case "Acquire":
		o := &oblig{pos: call.Pos(), call: renderCall(call), frameVars: map[*ast.Object]bool{}}
		if len(lhs) == 1 {
			if obj := identObj(lhs[0]); obj != nil {
				o.frameVars[obj] = true
			}
		}
		st.live[o] = true
	default:
		return false
	}
	return true
}

// acquisition classifies call as one of the tracked acquisition methods,
// returning its kind and (for Budget methods) the canonical receiver chain.
func (f *fbFunc) acquisition(call *ast.CallExpr) (kind, root string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	recv, ok := f.pass.Info.Types[sel.X]
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Grant", "MustGrant", "AcquireFrames":
		if !isEMType(recv.Type, "Budget") {
			return "", ""
		}
		chain, ok := chainText(sel.X)
		if !ok {
			return "", "" // unstable receiver spelling: not trackable
		}
		return sel.Sel.Name, f.canonical(chain)
	case "Acquire":
		if !isEMType(recv.Type, "FramePool") {
			return "", ""
		}
		return "Acquire", ""
	}
	return "", ""
}

func (f *fbFunc) newBudgetOblig(call *ast.CallExpr, root string) *oblig {
	return &oblig{
		pos:       call.Pos(),
		call:      renderCall(call),
		root:      root,
		owner:     chainOwner(root),
		frameVars: map[*ast.Object]bool{},
	}
}

// canonical resolves a leading alias in chain to its canonical spelling.
func (f *fbFunc) canonical(chain string) string {
	head, rest := chain, ""
	if i := strings.IndexByte(chain, '.'); i >= 0 {
		head, rest = chain[:i], chain[i:]
	}
	for obj, canon := range f.aliases {
		if obj.Name == head {
			return canon + rest
		}
	}
	return chain
}

// processCallDischarges applies Release/ReleaseFrames semantics of a call.
func (f *fbFunc) processCallDischarges(call *ast.CallExpr, st *fbState) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	recv, ok := f.pass.Info.Types[sel.X]
	if !ok {
		return
	}
	switch {
	case (sel.Sel.Name == "Release" || sel.Sel.Name == "ReleaseFrames") && isEMType(recv.Type, "Budget"):
		if chain, ok := chainText(sel.X); ok {
			root := f.canonical(chain)
			for o := range st.live {
				if o.root == root {
					delete(st.live, o)
				}
			}
		}
	case sel.Sel.Name == "Release" && isEMType(recv.Type, "FramePool") && len(call.Args) == 1:
		if obj := identObj(call.Args[0]); obj != nil {
			for o := range st.live {
				if o.frameVars[obj] {
					delete(st.live, o)
				}
			}
		}
	case sel.Sel.Name == "ReleaseFrames" && len(call.Args) == 1:
		if obj := identObj(call.Args[0]); obj != nil {
			for o := range st.live {
				if o.frameVars[obj] {
					delete(st.live, o)
				}
			}
		}
	}
}

// processExpr scans one value expression: discharges releases, records
// inline acquisitions (their results dropped), and applies escape
// semantics — a maximal mention of an obligation's root, owner, or frame
// variable in value position transfers ownership out of this function.
func (f *fbFunc) processExpr(e ast.Expr, st *fbState) {
	if e == nil {
		return
	}
	var walk func(n, parent ast.Node) bool
	walk = func(n, parent ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			f.closureScan(x, st)
			return false
		case *ast.CallExpr:
			f.processCallDischarges(x, st)
			if kind, root := f.acquisition(x); kind != "" {
				// Result dropped or consumed inline: for Budget methods the
				// obligation is still trackable by root; a dropped frame is
				// only releasable via its consumer, so treat it as escaped.
				if root != "" {
					st.live[f.newBudgetOblig(x, root)] = true
				}
				for _, a := range x.Args {
					f.processExpr(a, st)
				}
				return false
			}
		case *ast.Ident:
			if !isMaximalValueUse(x, parent) {
				return true
			}
			f.escapeIdent(x, st)
		case *ast.SelectorExpr:
			if !isMaximalValueUse(x, parent) {
				return true
			}
			if chain, ok := chainText(x); ok {
				f.escapeChain(f.canonical(chain), st)
				return false // children are part of this chain
			}
		}
		return true
	}
	inspectWithParent(e, walk)
}

// escapeIdent transfers obligations owned by ident: a frame variable, a
// budget alias, or a bare-ident root/owner.
func (f *fbFunc) escapeIdent(id *ast.Ident, st *fbState) {
	if id.Obj != nil {
		for o := range st.live {
			if o.frameVars[id.Obj] {
				delete(st.live, o)
			}
		}
		if canon, ok := f.aliases[id.Obj]; ok {
			f.escapeChain(canon, st)
			return
		}
	}
	f.escapeChain(id.Name, st)
}

func (f *fbFunc) escapeChain(chain string, st *fbState) {
	for o := range st.live {
		if o.root != "" && (chain == o.root || chain == o.owner) {
			delete(st.live, o)
		}
	}
}

// spawnDispatch analyzes a `go` launch as an ownership transfer. When the
// target body is in reach — a function literal, or a same-package
// function/method — obligations the worker captures (or receives as frame
// arguments) are threaded through a sub-analysis of that body in collect
// mode: fully-discharged obligations leave the launcher's state, leaked
// ones stay live and surface at the launcher's return. Unresolvable
// targets (another package, a func value) fall back to argument-escape
// semantics: what the launcher visibly hands over is transferred, the
// rest remains the launcher's problem.
func (f *fbFunc) spawnDispatch(call *ast.CallExpr, st *fbState) {
	ftype, body, resolvable := f.goTarget(call)
	if !resolvable || f.depth >= maxSpawnDepth {
		f.processCallDischarges(call, st)
		for _, a := range call.Args {
			f.processExpr(a, st)
		}
		if lit, ok := call.Fun.(*ast.FuncLit); ok {
			// Depth exhausted on a literal: the old blanket scan is the
			// conservative fallback (mention discharges, no sub-analysis).
			f.closureScan(lit, st)
		}
		return
	}

	// Bind arguments to the worker's parameters: a frame argument extends
	// the obligation's alias set into the worker's scope, a budget/pool
	// chain argument becomes a canonical alias there. Unbound arguments
	// keep ordinary escape semantics.
	subAliases := make(map[*ast.Object]string, len(f.aliases))
	for k, v := range f.aliases {
		subAliases[k] = v
	}
	params := flattenParams(ftype)
	for i, a := range call.Args {
		bound := false
		if i < len(params) && params[i] != nil && params[i].Obj != nil {
			pobj := params[i].Obj
			if obj := identObj(a); obj != nil {
				for o := range st.live {
					if o.frameVars[obj] {
						o.frameVars[pobj] = true
						bound = true
					}
				}
			}
			if t, ok := f.pass.Info.Types[a]; ok &&
				(isEMType(t.Type, "Budget") || isEMType(t.Type, "FramePool")) {
				if chain, ok := chainText(a); ok {
					subAliases[pobj] = f.canonical(chain)
					bound = true
				}
			}
		}
		if !bound {
			f.processExpr(a, st)
		}
	}

	sub := &fbFunc{
		pass:     f.pass,
		aliases:  subAliases,
		reported: f.reported,
		decls:    f.decls,
		leaked:   map[*oblig]bool{},
		depth:    f.depth + 1,
	}
	var captured []*oblig
	for o := range st.live {
		if sub.mentionsOblig(body, o) {
			captured = append(captured, o)
		}
	}
	if len(captured) == 0 {
		return
	}
	subSt := &fbState{live: make(map[*oblig]bool, len(captured))}
	for _, o := range captured {
		subSt.live[o] = true
	}
	if !sub.walkStmts(body.List, subSt) {
		sub.checkReturn(subSt, body.End())
	}
	for _, o := range captured {
		if !sub.leaked[o] {
			delete(st.live, o) // the worker provably releases it on every path
		}
	}
}

// goTarget resolves the function type and body behind a go launch: a
// literal's own, or the same-package declaration behind `go f()` /
// `go x.m()`.
func (f *fbFunc) goTarget(call *ast.CallExpr) (*ast.FuncType, *ast.BlockStmt, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return fun.Type, fun.Body, true
	case *ast.Ident:
		if decl, ok := f.decls[f.pass.Info.Uses[fun]]; ok {
			return decl.Type, decl.Body, true
		}
	case *ast.SelectorExpr:
		if obj, ok := f.pass.Info.Uses[fun.Sel]; ok {
			if decl, ok := f.decls[obj]; ok {
				return decl.Type, decl.Body, true
			}
		}
	}
	return nil, nil, false
}

// mentionsOblig reports whether body touches o at all — a frame variable
// (original or parameter-bound), or the canonical root/owner chain of a
// budget obligation. Untouched obligations stay out of the sub-analysis so
// the launcher's later paths can still discharge them.
func (f *fbFunc) mentionsOblig(body ast.Node, o *oblig) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.Ident:
			if x.Obj != nil && o.frameVars[x.Obj] {
				found = true
				break
			}
			if o.root != "" {
				c := x.Name
				if x.Obj != nil {
					if canon, ok := f.aliases[x.Obj]; ok {
						c = canon
					}
				}
				if c == o.root || c == o.owner {
					found = true
				}
			}
		case *ast.SelectorExpr:
			if o.root != "" {
				if chain, ok := chainText(x); ok {
					c := f.canonical(chain)
					if c == o.root || c == o.owner {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// flattenParams lists a function type's parameter idents positionally
// (nil for unnamed parameters).
func flattenParams(ft *ast.FuncType) []*ast.Ident {
	var out []*ast.Ident
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, fld := range ft.Params.List {
		if len(fld.Names) == 0 {
			out = append(out, nil)
			continue
		}
		for _, nm := range fld.Names {
			out = append(out, nm)
		}
	}
	return out
}

// closureScan treats a function literal as a potential new owner: any
// release call or captured mention of an obligation's resources inside it
// discharges the obligation (the closure — deferred or stored — is now
// responsible). `go` launches get the stricter spawnDispatch sub-analysis
// instead.
func (f *fbFunc) closureScan(lit *ast.FuncLit, st *fbState) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			f.processCallDischarges(x, st)
		case *ast.Ident:
			if x.Obj != nil {
				for o := range st.live {
					if o.frameVars[x.Obj] {
						delete(st.live, o)
					}
				}
			}
		}
		return true
	})
}

// checkReturn reports every obligation still live when a return (or the
// end of the function body) is reachable. In collect mode (a spawn
// sub-analysis) it records the leak for the launcher instead.
func (f *fbFunc) checkReturn(st *fbState, ret token.Pos) {
	if f.leaked != nil {
		for o := range st.live {
			f.leaked[o] = true
		}
		return
	}
	for o := range st.live {
		if f.reported[o] {
			continue
		}
		f.reported[o] = true
		retPos := f.pass.Fset.Position(ret)
		f.pass.Report(o.pos,
			"`"+o.call+"` can reach the return at line "+strconv.Itoa(retPos.Line)+" with the acquisition still held",
			"release it on every path, defer the release, or hand it to an owner; baseline grant-only wrappers")
	}
}

// --- small AST utilities ---

// isTerminalCall reports whether the expression statement never returns:
// panic, os.Exit, log.Fatal*, runtime.Goexit.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		pkg, ok := fun.X.(*ast.Ident)
		if !ok {
			return false
		}
		switch {
		case pkg.Name == "os" && fun.Sel.Name == "Exit":
			return true
		case pkg.Name == "log" && strings.HasPrefix(fun.Sel.Name, "Fatal"):
			return true
		case pkg.Name == "runtime" && fun.Sel.Name == "Goexit":
			return true
		}
	}
	return false
}

// errCheck matches `x != nil` / `x == nil` over an ident, returning its
// object and whether the test is for non-nil.
func errCheck(cond ast.Expr) (*ast.Object, bool) {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok || (bin.Op != token.NEQ && bin.Op != token.EQL) {
		return nil, false
	}
	id, nilSide := bin.X, bin.Y
	if isNilIdent(id) {
		id, nilSide = bin.Y, bin.X
	}
	if !isNilIdent(nilSide) {
		return nil, false
	}
	obj := identObj(id)
	return obj, bin.Op == token.NEQ
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func identObj(e ast.Expr) *ast.Object {
	if id, ok := e.(*ast.Ident); ok {
		return id.Obj
	}
	return nil
}

// singleNewIdent returns the object of `x := rhs` single-variable
// definitions (nil otherwise).
func singleNewIdent(x *ast.AssignStmt) *ast.Object {
	if x.Tok != token.DEFINE || len(x.Lhs) != 1 {
		return nil
	}
	return identObj(x.Lhs[0])
}

// isMaximalValueUse reports whether node n is not swallowed by a larger
// selector chain and is not the operator position of a call.
func isMaximalValueUse(n ast.Expr, parent ast.Node) bool {
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		return p.X != n // `x` in `x.f` extends into a longer chain
	case *ast.CallExpr:
		return p.Fun != n // calling is not passing the value
	}
	return true
}

// inspectWithParent is ast.Inspect with the parent node threaded through.
func inspectWithParent(root ast.Node, visit func(n, parent ast.Node) bool) {
	type frame struct{ n ast.Node }
	var stack []frame
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		var parent ast.Node
		if len(stack) > 0 {
			parent = stack[len(stack)-1].n
		}
		ok := visit(n, parent)
		if ok {
			stack = append(stack, frame{n})
		}
		return ok
	})
}

// renderCall renders `recv.Method` for the diagnostic message.
func renderCall(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if chain, ok := chainText(sel.X); ok {
			return chain + "." + sel.Sel.Name
		}
		return "(...)." + sel.Sel.Name
	}
	return "acquire"
}
