package xmltok

import (
	"encoding/xml"
	"errors"
	"io"
	"reflect"
	"strings"
	"testing"
)

// parseAll collects all tokens from a document.
func parseAll(t *testing.T, doc string, opts ParserOptions) []Token {
	t.Helper()
	p := NewParser(strings.NewReader(doc), opts)
	var toks []Token
	for {
		tok, err := p.Next()
		if err == io.EOF {
			return toks
		}
		if err != nil {
			t.Fatalf("Next: %v (after %d tokens)", err, len(toks))
		}
		toks = append(toks, tok)
	}
}

func TestParserBasic(t *testing.T) {
	doc := `<?xml version="1.0"?>
<company>
  <region name="NE">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
  </region>
</company>`
	got := parseAll(t, doc, DefaultParserOptions())
	want := []Token{
		{Kind: KindStart, Name: "company"},
		{Kind: KindStart, Name: "region", Attrs: []Attr{{"name", "NE"}}},
		{Kind: KindStart, Name: "branch", Attrs: []Attr{{"name", "Durham"}}},
		{Kind: KindStart, Name: "employee", Attrs: []Attr{{"ID", "454"}}},
		{Kind: KindEnd, Name: "employee"},
		{Kind: KindStart, Name: "employee", Attrs: []Attr{{"ID", "323"}}},
		{Kind: KindStart, Name: "name"},
		{Kind: KindText, Text: "Smith"},
		{Kind: KindEnd, Name: "name"},
		{Kind: KindStart, Name: "phone"},
		{Kind: KindText, Text: "5552345"},
		{Kind: KindEnd, Name: "phone"},
		{Kind: KindEnd, Name: "employee"},
		{Kind: KindEnd, Name: "branch"},
		{Kind: KindEnd, Name: "region"},
		{Kind: KindEnd, Name: "company"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestParserEntitiesAndCDATA(t *testing.T) {
	doc := `<a x="1 &amp; 2&#33;&#x21;"><![CDATA[raw <stuff> & more]]>a &lt;b&gt; &quot;c&quot; &apos;d&apos;</a>`
	got := parseAll(t, doc, ParserOptions{SkipWhitespaceText: false, ValidateNesting: true})
	want := []Token{
		{Kind: KindStart, Name: "a", Attrs: []Attr{{"x", "1 & 2!!"}}},
		{Kind: KindText, Text: "raw <stuff> & more"},
		{Kind: KindText, Text: `a <b> "c" 'd'`},
		{Kind: KindEnd, Name: "a"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestParserCommentsPIDoctype(t *testing.T) {
	doc := `<?xml version="1.0"?>
<!DOCTYPE root [ <!ELEMENT root (#PCDATA)> ]>
<!-- a comment with <tags> -->
<root><!-- inner --><?pi data?>x</root>`
	got := parseAll(t, doc, DefaultParserOptions())
	want := []Token{
		{Kind: KindStart, Name: "root"},
		{Kind: KindText, Text: "x"},
		{Kind: KindEnd, Name: "root"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("tokens mismatch:\n got %v\nwant %v", got, want)
	}
}

func TestParserWhitespaceHandling(t *testing.T) {
	doc := "<a>\n  <b> </b>\n</a>"
	withWS := parseAll(t, doc, ParserOptions{SkipWhitespaceText: false, ValidateNesting: true})
	if len(withWS) != 7 {
		t.Errorf("with whitespace: %d tokens, want 7: %v", len(withWS), withWS)
	}
	noWS := parseAll(t, doc, DefaultParserOptions())
	if len(noWS) != 4 {
		t.Errorf("without whitespace: %d tokens, want 4: %v", len(noWS), noWS)
	}
}

func TestParserSingleQuotes(t *testing.T) {
	got := parseAll(t, `<a k='va"l'/>`, DefaultParserOptions())
	if got[0].Attrs[0].Value != `va"l` {
		t.Errorf("attr = %q", got[0].Attrs[0].Value)
	}
}

func TestParserDepth(t *testing.T) {
	p := NewParser(strings.NewReader("<a><b></b></a>"), DefaultParserOptions())
	depths := []int{}
	for {
		_, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		depths = append(depths, p.Depth())
	}
	want := []int{1, 2, 1, 0}
	if !reflect.DeepEqual(depths, want) {
		t.Errorf("depths = %v, want %v", depths, want)
	}
}

func TestParserMalformed(t *testing.T) {
	cases := []string{
		"<a><b></a></b>",   // crossed nesting
		"<a>",              // unclosed
		"</a>",             // end with no start
		"<a></a><b></b>",   // two roots
		"<a x=5></a>",      // unquoted attribute
		"<a x='v<'></a>",   // raw < in value
		"<a>&unknown;</a>", // unknown entity
		"<a>&#xZZ;</a>",    // bad char ref
		"text<a></a>",      // data before root
		"<1tag></1tag>",    // bad name
		"<a x></a>",        // attr without value
		"<a/",              // truncated self-close
		"<!-- unterminated",
	}
	for _, doc := range cases {
		p := NewParser(strings.NewReader(doc), DefaultParserOptions())
		var err error
		for err == nil {
			_, err = p.Next()
		}
		if err == io.EOF {
			t.Errorf("document %q parsed without error", doc)
		} else if !errors.Is(err, ErrMalformed) {
			t.Errorf("document %q: error %v is not ErrMalformed", doc, err)
		}
	}
}

func TestParserTrailingJunkAllowed(t *testing.T) {
	// Whitespace, comments and PIs may follow the root element.
	got := parseAll(t, "<a></a>\n<!-- bye -->\n<?pi?>\n", DefaultParserOptions())
	if len(got) != 2 {
		t.Errorf("got %d tokens", len(got))
	}
}

// TestParserAgainstEncodingXML cross-validates the tokenizer against the
// standard library on a corpus of documents.
func TestParserAgainstEncodingXML(t *testing.T) {
	docs := []string{
		`<root><a x="1"><b>text</b></a><a x="2"/></root>`,
		`<r>before<mid a="&amp;"/>after</r>`,
		`<r><![CDATA[<not a tag>]]></r>`,
		"<r>élève 世界</r>",
		`<deep><a><b><c><d><e>leaf</e></d></c></b></a></deep>`,
	}
	for _, doc := range docs {
		mine := parseAll(t, doc, ParserOptions{SkipWhitespaceText: false, ValidateNesting: true})
		var std []Token
		dec := xml.NewDecoder(strings.NewReader(doc))
		for {
			tok, err := dec.Token()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("encoding/xml on %q: %v", doc, err)
			}
			switch v := tok.(type) {
			case xml.StartElement:
				st := Token{Kind: KindStart, Name: v.Name.Local}
				for _, a := range v.Attr {
					st.Attrs = append(st.Attrs, Attr{a.Name.Local, a.Value})
				}
				std = append(std, st)
			case xml.EndElement:
				std = append(std, Token{Kind: KindEnd, Name: v.Name.Local})
			case xml.CharData:
				std = append(std, Token{Kind: KindText, Text: string(v)})
			}
		}
		// encoding/xml may split adjacent CharData; coalesce both sides.
		if !reflect.DeepEqual(coalesce(mine), coalesce(std)) {
			t.Errorf("doc %q:\n mine %v\n  std %v", doc, coalesce(mine), coalesce(std))
		}
	}
}

func coalesce(toks []Token) []Token {
	var out []Token
	for _, t := range toks {
		if t.Kind == KindText && len(out) > 0 && out[len(out)-1].Kind == KindText {
			out[len(out)-1].Text += t.Text
			continue
		}
		out = append(out, t)
	}
	return out
}

func TestTokenAttrLookup(t *testing.T) {
	tok := Token{Kind: KindStart, Name: "e", Attrs: []Attr{{"a", "1"}, {"b", "2"}}}
	if v, ok := tok.Attr("b"); !ok || v != "2" {
		t.Errorf("Attr(b) = %q, %v", v, ok)
	}
	if _, ok := tok.Attr("missing"); ok {
		t.Error("Attr(missing) should report absence")
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindStart: "start", KindEnd: "end", KindText: "text", KindRunPtr: "runptr",
	} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
	}
}
