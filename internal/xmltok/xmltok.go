// Package xmltok is the streaming XML layer beneath every algorithm in this
// repository: an event-based parser in the style of SAX (which the paper's
// Line 2 "loop ... can be implemented using a simple event-based XML parser"
// calls for), a serializer that turns the event stream back into a textual
// document, and a compact binary codec used to spool events through
// external-memory structures (the data stack and sorted runs).
//
// The parser handles the XML subset relevant to data-centric documents:
// elements, attributes with single- or double-quoted values, character data,
// CDATA sections, comments, processing instructions, the XML declaration,
// DOCTYPE declarations (skipped, including an internal subset), and the five
// predefined entities plus numeric character references. It is deliberately
// not a validating parser; it checks well-formedness (tag balance) unless
// that is turned off to honour the constant-space SAX assumption of the
// paper's model.
package xmltok

import (
	"errors"
	"fmt"
)

// Kind discriminates token types.
type Kind byte

// Token kinds. KindRunPtr never occurs in textual XML; it is the
// NEXSORT-internal pseudo-token that replaces a collapsed subtree with a
// pointer to its sorted run (Figure 2 of the paper) when events are spooled
// through the binary codec.
const (
	// KindStart is a start tag, e.g. <region name="NE">. A self-closing
	// tag produces a KindStart immediately followed by a KindEnd.
	KindStart Kind = iota
	// KindEnd is an end tag, e.g. </region>.
	KindEnd
	// KindText is character data (entity references resolved, CDATA
	// included verbatim).
	KindText
	// KindRunPtr is a pointer to a sorted run (binary codec only).
	KindRunPtr
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case KindStart:
		return "start"
	case KindEnd:
		return "end"
	case KindText:
		return "text"
	case KindRunPtr:
		return "runptr"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// Attr is a single attribute on a start tag.
type Attr struct {
	Name  string
	Value string
}

// Token is one event of the stream.
//
// Key and HasKey exist for the binary codec only: the sorting pipeline
// annotates tokens with the element's computed ordering key (on the start
// tag when the criterion is resolvable from the tag alone, always on the end
// tag, and always on run pointers) so that downstream subtree sorts never
// re-evaluate ordering expressions. The textual parser never sets them and
// the textual writer ignores them.
type Token struct {
	Kind  Kind
	Name  string // tag name for KindStart, KindEnd and KindRunPtr
	Attrs []Attr // KindStart only
	Text  string // KindText only
	Run   int64  // KindRunPtr only: sorted-run identifier

	Key    string // computed ordering key (binary codec only)
	HasKey bool   // whether Key is meaningful

	// Level is the token's nesting level in a level-stamped stream (the
	// compact package's end-tag elimination); 0 everywhere else.
	Level int
}

// WithKey returns a copy of t carrying the given ordering key.
func (t Token) WithKey(key string) Token {
	t.Key, t.HasKey = key, true
	return t
}

// Attr returns the value of the named attribute and whether it is present.
func (t Token) Attr(name string) (string, bool) {
	for _, a := range t.Attrs {
		if a.Name == name {
			return a.Value, true
		}
	}
	return "", false
}

// ErrMalformed wraps well-formedness failures found while parsing.
var ErrMalformed = errors.New("xmltok: malformed XML")

func malformed(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrMalformed, fmt.Sprintf(format, args...))
}
