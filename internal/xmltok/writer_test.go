package xmltok

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWriterCompact(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	toks := []Token{
		{Kind: KindStart, Name: "a", Attrs: []Attr{{"x", `v"1`}, {"y", "a&b"}}},
		{Kind: KindText, Text: "1 < 2 & 3 > 2"},
		{Kind: KindStart, Name: "b"},
		{Kind: KindEnd, Name: "b"},
		{Kind: KindEnd, Name: "a"},
	}
	for _, tok := range toks {
		if err := w.WriteToken(tok); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := `<a x="v&quot;1" y="a&amp;b">1 &lt; 2 &amp; 3 &gt; 2<b></b></a>`
	if buf.String() != want {
		t.Errorf("output:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestWriterIndent(t *testing.T) {
	var buf bytes.Buffer
	w := NewIndentWriter(&buf, "  ")
	toks := []Token{
		{Kind: KindStart, Name: "a"},
		{Kind: KindStart, Name: "b"},
		{Kind: KindText, Text: "x"},
		{Kind: KindEnd, Name: "b"},
		{Kind: KindEnd, Name: "a"},
	}
	for _, tok := range toks {
		if err := w.WriteToken(tok); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	want := "<a>\n  <b>x</b>\n</a>\n"
	if buf.String() != want {
		t.Errorf("output:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.WriteToken(Token{Kind: KindEnd, Name: "x"}); err == nil {
		t.Error("unbalanced end should fail")
	}
	w2 := NewWriter(&buf)
	w2.WriteToken(Token{Kind: KindStart, Name: "a"})
	if err := w2.Close(); err == nil {
		t.Error("close with open element should fail")
	}
	w3 := NewWriter(&buf)
	if err := w3.WriteToken(Token{Kind: KindRunPtr, Run: 1}); err == nil {
		t.Error("run pointer should not serialize")
	}
}

// randomTokens builds a random well-formed token stream.
func randomTokens(rng *rand.Rand, maxElems int) []Token {
	names := []string{"a", "bb", "c-c", "d.d", "e_e"}
	values := []string{"", "v", `a"b`, "x&y", "1<2", "日本", "  spaced  "}
	var toks []Token
	var emit func(depth int, budget *int)
	emit = func(depth int, budget *int) {
		if *budget <= 0 {
			return
		}
		*budget--
		tok := Token{Kind: KindStart, Name: names[rng.Intn(len(names))]}
		for i := rng.Intn(3); i > 0; i-- {
			tok.Attrs = append(tok.Attrs, Attr{
				Name:  names[rng.Intn(len(names))] + "x",
				Value: values[rng.Intn(len(values))],
			})
		}
		// Attribute names must be unique within a tag.
		seen := map[string]bool{}
		uniq := tok.Attrs[:0]
		for _, a := range tok.Attrs {
			if !seen[a.Name] {
				seen[a.Name] = true
				uniq = append(uniq, a)
			}
		}
		tok.Attrs = uniq
		toks = append(toks, tok)
		for i := rng.Intn(3); i > 0 && depth < 6; i-- {
			if rng.Intn(2) == 0 {
				txt := values[rng.Intn(len(values))]
				if txt != "" {
					toks = append(toks, Token{Kind: KindText, Text: txt})
				}
			} else {
				emit(depth+1, budget)
			}
		}
		toks = append(toks, Token{Kind: KindEnd, Name: tok.Name})
	}
	budget := 1 + rng.Intn(maxElems)
	emit(0, &budget)
	return toks
}

// Property: serialize→parse round-trips arbitrary token streams, in both
// compact and indented modes (indentation must not change non-whitespace
// token content).
func TestWriterParserRoundTrip(t *testing.T) {
	f := func(seed int64, indented bool) bool {
		rng := rand.New(rand.NewSource(seed))
		toks := randomTokens(rng, 30)
		var buf bytes.Buffer
		var w *Writer
		if indented {
			w = NewIndentWriter(&buf, "\t")
		} else {
			w = NewWriter(&buf)
		}
		for _, tok := range toks {
			if err := w.WriteToken(tok); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		p := NewParser(&buf, ParserOptions{SkipWhitespaceText: indented, ValidateNesting: true})
		var got []Token
		for {
			tok, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, tok)
		}
		// Adjacent text tokens serialize contiguously and parse back as
		// one token, so compare coalesced streams; indentation further
		// pads text with whitespace, so trim in that mode.
		want := coalesce(toks)
		got = coalesce(got)
		if indented {
			want = trimTokens(want)
			got = trimTokens(got)
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func trimTokens(toks []Token) []Token {
	var out []Token
	for _, tok := range toks {
		if tok.Kind == KindText {
			tok.Text = strings.TrimRight(strings.TrimLeft(tok.Text, "\n\t"), "\n\t")
			if tok.Text == "" {
				continue
			}
		}
		out = append(out, tok)
	}
	return out
}

// Property: binary codec round-trips arbitrary tokens.
func TestCodecRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		toks := randomTokens(rng, 20)
		// Sprinkle ordering keys on a few tokens and add a run pointer,
		// exercising the optional-key flag for every kind.
		for i := range toks {
			if rng.Intn(3) == 0 {
				toks[i] = toks[i].WithKey(toks[i].Name + "-key")
			}
		}
		toks = append(toks, Token{Kind: KindRunPtr, Run: rng.Int63(), Name: "sub"})
		var buf []byte
		for _, tok := range toks {
			before := len(buf)
			buf = AppendToken(buf, tok)
			if len(buf)-before != EncodedSize(tok) {
				return false
			}
		}
		r := bytes.NewReader(buf)
		var got []Token
		for {
			tok, err := ReadToken(r)
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			got = append(got, tok)
		}
		return reflect.DeepEqual(got, toks)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCodecTruncation(t *testing.T) {
	full := AppendToken(nil, Token{Kind: KindStart, Name: "element", Attrs: []Attr{{"a", "value"}}})
	for cut := 1; cut < len(full); cut++ {
		r := bytes.NewReader(full[:cut])
		if _, err := ReadToken(r); err != io.ErrUnexpectedEOF {
			t.Errorf("cut at %d: err = %v, want ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := ReadToken(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty: err = %v, want io.EOF", err)
	}
	if _, err := ReadToken(bytes.NewReader([]byte{0xFF})); err == nil {
		t.Error("unknown kind byte should fail")
	}
}

func TestCodecEmptyStrings(t *testing.T) {
	toks := []Token{
		{Kind: KindText, Text: ""},
		{Kind: KindStart, Name: "a", Attrs: []Attr{{"k", ""}}},
		{Kind: KindEnd, Name: "a", Key: "", HasKey: true},
		{Kind: KindRunPtr, Run: 0, Name: ""},
	}
	var buf []byte
	for _, tok := range toks {
		buf = AppendToken(buf, tok)
	}
	r := bytes.NewReader(buf)
	for i, want := range toks {
		got, err := ReadToken(r)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("token %d: got %+v, want %+v", i, got, want)
		}
	}
}
