package xmltok

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary token codec.
//
// NEXSORT never stores textual XML in its working structures: tokens are
// spooled through the data stack and the sorted runs in a compact,
// self-delimiting binary form. The encoding is a tag byte — the Kind in the
// low bits, plus a has-key flag bit — followed by uvarint-prefixed strings:
//
//	start:  kind name nAttrs (attrName attrValue)* [key]
//	end:    kind name [key]
//	text:   kind text
//	runptr: kind runID(uvarint) name [key]
//
// Each string is len(uvarint) bytes; [key] is present when the flag bit is
// set. The codec is also where end-tag elimination (Section 3.2, "XML
// compaction techniques") plugs in: the compact package encodes
// level-stamped start tags with this codec and simply never emits end tags.

// flagHasKey marks a token carrying a computed ordering key.
const flagHasKey = 0x80

// flagHasLevel marks a token carrying a nesting level (level-stamped
// streams, the compact package's end-tag elimination).
const flagHasLevel = 0x40

// kindMask strips the flag bits off the kind byte.
const kindMask = 0x3f

// AppendToken appends the binary encoding of t to dst and returns the
// extended slice.
func AppendToken(dst []byte, t Token) []byte {
	kb := byte(t.Kind)
	if t.HasKey {
		kb |= flagHasKey
	}
	if t.Level > 0 {
		kb |= flagHasLevel
	}
	dst = append(dst, kb)
	switch t.Kind {
	case KindStart:
		dst = appendString(dst, t.Name)
		dst = binary.AppendUvarint(dst, uint64(len(t.Attrs)))
		for _, a := range t.Attrs {
			dst = appendString(dst, a.Name)
			dst = appendString(dst, a.Value)
		}
	case KindEnd:
		dst = appendString(dst, t.Name)
	case KindText:
		dst = appendString(dst, t.Text)
	case KindRunPtr:
		dst = binary.AppendUvarint(dst, uint64(t.Run))
		dst = appendString(dst, t.Name)
	default:
		panic(fmt.Sprintf("xmltok: encoding unknown kind %d", t.Kind))
	}
	if t.HasKey {
		dst = appendString(dst, t.Key)
	}
	if t.Level > 0 {
		dst = binary.AppendUvarint(dst, uint64(t.Level))
	}
	return dst
}

// EncodedSize returns the number of bytes AppendToken would add for t.
func EncodedSize(t Token) int {
	n := 1
	switch t.Kind {
	case KindStart:
		n += stringSize(t.Name) + uvarintSize(uint64(len(t.Attrs)))
		for _, a := range t.Attrs {
			n += stringSize(a.Name) + stringSize(a.Value)
		}
	case KindEnd:
		n += stringSize(t.Name)
	case KindText:
		n += stringSize(t.Text)
	case KindRunPtr:
		n += uvarintSize(uint64(t.Run)) + stringSize(t.Name)
	}
	if t.HasKey {
		n += stringSize(t.Key)
	}
	if t.Level > 0 {
		n += uvarintSize(uint64(t.Level))
	}
	return n
}

// Decoder decodes binary tokens, reusing one scratch buffer across calls so
// the only per-token allocations are the strings that escape into the Token
// itself. A Decoder is cheap (lazily grown scratch) but not safe for
// concurrent use; long-lived readers keep one per stream.
type Decoder struct {
	scratch []byte
}

// ReadToken decodes one token from r. It returns io.EOF cleanly when the
// stream is exhausted at a token boundary, and io.ErrUnexpectedEOF if the
// stream ends mid-token. The one-shot helper for callers without a Decoder
// is the package-level ReadToken.
func (d *Decoder) ReadToken(r io.ByteReader) (Token, error) {
	kb, err := r.ReadByte()
	if err != nil {
		if err == io.EOF {
			return Token{}, io.EOF
		}
		return Token{}, err
	}
	t := Token{Kind: Kind(kb & kindMask)}
	switch t.Kind {
	case KindStart:
		if t.Name, err = d.readString(r); err != nil {
			return Token{}, mid(err)
		}
		n, err := binary.ReadUvarint(r)
		if err != nil {
			return Token{}, mid(err)
		}
		if n > maxStringLen {
			return Token{}, fmt.Errorf("xmltok: corrupt stream: %d attributes", n)
		}
		if n > 0 {
			t.Attrs = make([]Attr, n)
			for i := range t.Attrs {
				if t.Attrs[i].Name, err = d.readString(r); err != nil {
					return Token{}, mid(err)
				}
				if t.Attrs[i].Value, err = d.readString(r); err != nil {
					return Token{}, mid(err)
				}
			}
		}
	case KindEnd:
		if t.Name, err = d.readString(r); err != nil {
			return Token{}, mid(err)
		}
	case KindText:
		if t.Text, err = d.readString(r); err != nil {
			return Token{}, mid(err)
		}
	case KindRunPtr:
		run, err := binary.ReadUvarint(r)
		if err != nil {
			return Token{}, mid(err)
		}
		t.Run = int64(run)
		if t.Name, err = d.readString(r); err != nil {
			return Token{}, mid(err)
		}
	default:
		return Token{}, fmt.Errorf("xmltok: unknown token kind byte 0x%02x", kb)
	}
	if kb&flagHasKey != 0 {
		t.HasKey = true
		if t.Key, err = d.readString(r); err != nil {
			return Token{}, mid(err)
		}
	}
	if kb&flagHasLevel != 0 {
		level, err := binary.ReadUvarint(r)
		if err != nil {
			return Token{}, mid(err)
		}
		if level > maxStringLen {
			return Token{}, fmt.Errorf("xmltok: corrupt stream: level %d", level)
		}
		t.Level = int(level)
	}
	return t, nil
}

// ReadToken decodes one token from r with a throwaway Decoder. Streaming
// callers should hold a Decoder and call its ReadToken to reuse the scratch
// buffer across tokens.
func ReadToken(r io.ByteReader) (Token, error) {
	var d Decoder
	return d.ReadToken(r)
}

// mid converts an EOF inside a token into io.ErrUnexpectedEOF.
func mid(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func stringSize(s string) int { return uvarintSize(uint64(len(s))) + len(s) }

func uvarintSize(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// maxStringLen bounds decoded string lengths so that corrupt or hostile
// input cannot trigger enormous allocations.
const maxStringLen = 1 << 26 // 64 MiB

// readString decodes one length-prefixed string into the decoder's scratch
// buffer (grown on demand, reused across calls); only the final string
// conversion allocates. Readers that implement io.Reader are filled with
// one ReadFull instead of a byte-at-a-time loop.
func (d *Decoder) readString(r io.ByteReader) (string, error) {
	n, err := binary.ReadUvarint(r)
	if err != nil {
		return "", err
	}
	if n == 0 {
		return "", nil
	}
	if n > maxStringLen {
		return "", fmt.Errorf("xmltok: corrupt stream: string length %d", n)
	}
	if cap(d.scratch) < int(n) {
		d.scratch = make([]byte, n)
	}
	buf := d.scratch[:n]
	if rr, ok := r.(io.Reader); ok {
		if _, err := io.ReadFull(rr, buf); err != nil {
			return "", err
		}
	} else {
		for i := range buf {
			b, err := r.ReadByte()
			if err != nil {
				return "", err
			}
			buf[i] = b
		}
	}
	return string(buf), nil
}
