package xmltok

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
)

// benchDoc builds a ~1 MB document for throughput benchmarks.
func benchDoc() string {
	rng := rand.New(rand.NewSource(1))
	var sb strings.Builder
	sb.WriteString("<catalog>")
	for sb.Len() < 1<<20 {
		fmt.Fprintf(&sb, `<product sku="%06d" cat="c%d"><name>Item %d</name><desc>A modest description with some text in it.</desc></product>`,
			rng.Intn(1000000), rng.Intn(50), rng.Intn(10000))
	}
	sb.WriteString("</catalog>")
	return sb.String()
}

// BenchmarkParserThroughput measures the streaming tokenizer.
func BenchmarkParserThroughput(b *testing.B) {
	doc := benchDoc()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := NewParser(strings.NewReader(doc), DefaultParserOptions())
		for {
			if _, err := p.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkWriterThroughput measures serialization.
func BenchmarkWriterThroughput(b *testing.B) {
	doc := benchDoc()
	p := NewParser(strings.NewReader(doc), DefaultParserOptions())
	var toks []Token
	for {
		tok, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			b.Fatal(err)
		}
		toks = append(toks, tok)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tok := range toks {
			if err := w.WriteToken(tok); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCodecRoundTrip measures the binary token codec.
func BenchmarkCodecRoundTrip(b *testing.B) {
	toks := []Token{
		{Kind: KindStart, Name: "product", Attrs: []Attr{{"sku", "123456"}, {"cat", "c7"}}, Key: "123456", HasKey: true},
		{Kind: KindText, Text: "A modest description with some text in it."},
		{Kind: KindEnd, Name: "product", Key: "123456", HasKey: true},
		{Kind: KindRunPtr, Run: 42, Name: "sub", Key: "k", HasKey: true},
	}
	var enc []byte
	for _, tok := range toks {
		enc = AppendToken(enc, tok)
	}
	b.SetBytes(int64(len(enc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := AppendToken(nil, toks[0])
		for _, tok := range toks[1:] {
			buf = AppendToken(buf, tok)
		}
		r := bytes.NewReader(buf)
		for {
			if _, err := ReadToken(r); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
		}
	}
}
