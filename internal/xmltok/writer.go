package xmltok

import (
	"fmt"
	"io"
	"strings"
)

// Writer serializes a token stream back into a textual XML document. It
// tracks nesting so that optional indentation is correct, and escapes text
// and attribute values so that Parse(Write(tokens)) round-trips.
type Writer struct {
	w      io.Writer
	indent string // per-level indentation; empty means compact output
	depth  int
	// lastWasStart tracks whether the previous token opened an element,
	// so indented output can collapse <a>text</a> onto one line.
	lastKind  Kind
	wroteAny  bool
	textInRow bool
	err       error
}

// NewWriter writes compact XML (no added whitespace) to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: w, lastKind: KindEnd} }

// NewIndentWriter writes XML indented with the given unit string per level.
func NewIndentWriter(w io.Writer, indent string) *Writer {
	return &Writer{w: w, indent: indent, lastKind: KindEnd}
}

func (w *Writer) print(s string) {
	if w.err != nil {
		return
	}
	_, w.err = io.WriteString(w.w, s)
}

func (w *Writer) newlineIndent(depth int) {
	if w.indent == "" {
		return
	}
	if w.wroteAny {
		w.print("\n")
	}
	w.print(strings.Repeat(w.indent, depth))
}

// WriteToken appends one token to the document. Run-pointer tokens are
// rejected — they are internal to the binary codec and must be resolved
// before serialization.
func (w *Writer) WriteToken(t Token) error {
	if w.err != nil {
		return w.err
	}
	switch t.Kind {
	case KindStart:
		w.newlineIndent(w.depth)
		w.print("<")
		w.print(t.Name)
		for _, a := range t.Attrs {
			w.print(" ")
			w.print(a.Name)
			w.print(`="`)
			w.print(escapeAttr(a.Value))
			w.print(`"`)
		}
		w.print(">")
		w.depth++
	case KindEnd:
		w.depth--
		if w.depth < 0 {
			return fmt.Errorf("xmltok: end tag </%s> with no open element", t.Name)
		}
		// Keep </a> on the same line when the element contained only
		// text (or nothing).
		if w.lastKind == KindStart || w.textInRow {
			// inline close
		} else {
			w.newlineIndent(w.depth)
		}
		w.print("</")
		w.print(t.Name)
		w.print(">")
	case KindText:
		w.print(escapeText(t.Text))
	default:
		return fmt.Errorf("xmltok: cannot serialize %v token", t.Kind)
	}
	w.textInRow = t.Kind == KindText
	w.lastKind = t.Kind
	w.wroteAny = true
	return w.err
}

// Depth returns the number of currently open elements.
func (w *Writer) Depth() int { return w.depth }

// Close verifies the document is balanced and flushes the final newline in
// indented mode. It does not close the underlying writer.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	if w.depth != 0 {
		return fmt.Errorf("xmltok: document closed with %d open elements", w.depth)
	}
	if w.indent != "" && w.wroteAny {
		w.print("\n")
	}
	return w.err
}

var (
	textEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	attrEscaper = strings.NewReplacer("&", "&amp;", "<", "&lt;", `"`, "&quot;")
)

func escapeText(s string) string { return textEscaper.Replace(s) }
func escapeAttr(s string) string { return attrEscaper.Replace(s) }
