package xmltok

import (
	"bufio"
	"io"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParserOptions configures a Parser.
type ParserOptions struct {
	// SkipWhitespaceText drops text tokens consisting entirely of XML
	// whitespace (space, tab, CR, LF). Data-centric pipelines — including
	// every sorter here — enable it so that pretty-printing never
	// influences sort behaviour.
	SkipWhitespaceText bool
	// ValidateNesting checks that every end tag matches the most recent
	// open start tag. It costs an in-memory name stack proportional to
	// document depth; disable it to honour the constant-space SAX
	// assumption of the external-memory model on adversarially deep
	// inputs.
	ValidateNesting bool
}

// DefaultParserOptions skips whitespace-only text and validates nesting.
func DefaultParserOptions() ParserOptions {
	return ParserOptions{SkipWhitespaceText: true, ValidateNesting: true}
}

// Parser is a streaming, event-based XML reader. Create one with NewParser
// and call Next until it returns io.EOF.
type Parser struct {
	r       io.ByteReader
	opts    ParserOptions
	peeked  int // -1 if none
	depth   int
	started bool // a root element has been seen
	done    bool // the root element has been closed
	// pendingEnd holds the synthesized end token of a self-closing tag.
	pendingEnd *Token
	openNames  []string // only when ValidateNesting
	textBuf    strings.Builder
}

// NewParser reads a document from r with the given options. If r is not an
// io.ByteReader it is wrapped in a bufio.Reader.
func NewParser(r io.Reader, opts ParserOptions) *Parser {
	br, ok := r.(io.ByteReader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &Parser{r: br, opts: opts, peeked: -1}
}

// Depth returns the number of currently open elements. Immediately after a
// KindStart it includes that element; immediately after a KindEnd it no
// longer does.
func (p *Parser) Depth() int { return p.depth }

// truncated maps a read failure inside a token: io.EOF (or a nil error
// when the caller saw an unexpected byte) means the document itself is cut
// short or malformed, so the diagnostic message applies. Any other error
// is the reader failing — a device fault, a canceled run — and must
// propagate unchanged so typed errors keep their errors.Is identity.
func truncated(err error, format string, args ...any) error {
	if err != nil && err != io.EOF {
		return err
	}
	return malformed(format, args...)
}

func (p *Parser) readByte() (byte, error) {
	if p.peeked >= 0 {
		b := byte(p.peeked)
		p.peeked = -1
		return b, nil
	}
	return p.r.ReadByte()
}

func (p *Parser) unread(b byte) { p.peeked = int(b) }

// Next returns the next token, or io.EOF when the document is exhausted.
func (p *Parser) Next() (Token, error) {
	if p.pendingEnd != nil {
		tok := *p.pendingEnd
		p.pendingEnd = nil
		p.closeElement(tok.Name)
		return tok, nil
	}
	for {
		b, err := p.readByte()
		if err == io.EOF {
			if p.started && !p.done {
				return Token{}, malformed("unexpected end of input with %d open elements", p.depth)
			}
			return Token{}, io.EOF
		}
		if err != nil {
			return Token{}, err
		}
		if b == '<' {
			tok, skip, err := p.parseMarkup()
			if err != nil {
				return Token{}, err
			}
			if skip {
				continue
			}
			return tok, nil
		}
		// Character data.
		if p.depth == 0 {
			// Text outside the root must be whitespace.
			if !isXMLSpace(b) {
				return Token{}, malformed("character data outside the root element")
			}
			continue
		}
		tok, err := p.parseText(b)
		if err != nil {
			return Token{}, err
		}
		if p.opts.SkipWhitespaceText && strings.TrimLeft(tok.Text, " \t\r\n") == "" {
			continue
		}
		return tok, nil
	}
}

// parseText accumulates character data starting with byte b, stopping at
// (and un-reading) the next '<'.
func (p *Parser) parseText(first byte) (Token, error) {
	p.textBuf.Reset()
	b := first
	for {
		if b == '&' {
			s, err := p.parseEntity()
			if err != nil {
				return Token{}, err
			}
			p.textBuf.WriteString(s)
		} else {
			p.textBuf.WriteByte(b)
		}
		nb, err := p.readByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return Token{}, err
		}
		if nb == '<' {
			p.unread('<')
			break
		}
		b = nb
	}
	return Token{Kind: KindText, Text: p.textBuf.String()}, nil
}

// parseMarkup handles everything after a '<'. skip=true means the construct
// produces no token (comment, PI, doctype) — unless it is a CDATA section,
// which yields a text token.
func (p *Parser) parseMarkup() (tok Token, skip bool, err error) {
	b, err := p.readByte()
	if err != nil {
		return Token{}, false, truncated(err, "truncated markup")
	}
	switch {
	case b == '?':
		return Token{}, true, p.skipUntil("?>")
	case b == '!':
		return p.parseBang()
	case b == '/':
		return p.parseEndTag()
	default:
		p.unread(b)
		return p.parseStartTag()
	}
}

// parseBang handles <!-- comments, <![CDATA[ sections and <!DOCTYPE.
func (p *Parser) parseBang() (Token, bool, error) {
	b, err := p.readByte()
	if err != nil {
		return Token{}, false, truncated(err, "truncated <! construct")
	}
	switch b {
	case '-':
		if b2, err := p.readByte(); err != nil || b2 != '-' {
			return Token{}, false, truncated(err, "expected <!--")
		}
		return Token{}, true, p.skipUntil("-->")
	case '[':
		// <![CDATA[ ... ]]>
		const open = "CDATA["
		for i := 0; i < len(open); i++ {
			c, err := p.readByte()
			if err != nil || c != open[i] {
				return Token{}, false, truncated(err, "expected <![CDATA[")
			}
		}
		if p.depth == 0 {
			return Token{}, false, malformed("CDATA outside the root element")
		}
		text, err := p.readUntil("]]>")
		if err != nil {
			return Token{}, false, err
		}
		if p.opts.SkipWhitespaceText && strings.TrimLeft(text, " \t\r\n") == "" {
			return Token{}, true, nil
		}
		return Token{Kind: KindText, Text: text}, false, nil
	default:
		// <!DOCTYPE ...> possibly with an internal subset in [...].
		inSubset := false
		cur := b
		for {
			if cur == '[' {
				inSubset = true
			} else if cur == ']' {
				inSubset = false
			} else if cur == '>' && !inSubset {
				return Token{}, true, nil
			}
			cur, err = p.readByte()
			if err != nil {
				return Token{}, false, truncated(err, "truncated <! declaration")
			}
		}
	}
}

func (p *Parser) parseStartTag() (Token, bool, error) {
	if p.done {
		return Token{}, false, malformed("second root element")
	}
	name, err := p.readName()
	if err != nil {
		return Token{}, false, err
	}
	tok := Token{Kind: KindStart, Name: name}
	for {
		b, err := p.skipSpace()
		if err != nil {
			return Token{}, false, truncated(err, "truncated start tag <%s", name)
		}
		switch b {
		case '>':
			p.openElement(name)
			return tok, false, nil
		case '/':
			if b2, err := p.readByte(); err != nil || b2 != '>' {
				return Token{}, false, truncated(err, "expected /> in <%s", name)
			}
			p.openElement(name)
			p.pendingEnd = &Token{Kind: KindEnd, Name: name}
			return tok, false, nil
		default:
			p.unread(b)
			attr, err := p.readAttr()
			if err != nil {
				return Token{}, false, err
			}
			tok.Attrs = append(tok.Attrs, attr)
		}
	}
}

func (p *Parser) parseEndTag() (Token, bool, error) {
	name, err := p.readName()
	if err != nil {
		return Token{}, false, err
	}
	b, err := p.skipSpace()
	if err != nil || b != '>' {
		return Token{}, false, truncated(err, "malformed end tag </%s", name)
	}
	if p.depth == 0 {
		return Token{}, false, malformed("end tag </%s> with no open element", name)
	}
	if err := p.closeElement(name); err != nil {
		return Token{}, false, err
	}
	return Token{Kind: KindEnd, Name: name}, false, nil
}

func (p *Parser) openElement(name string) {
	p.depth++
	p.started = true
	if p.opts.ValidateNesting {
		p.openNames = append(p.openNames, name)
	}
}

func (p *Parser) closeElement(name string) error {
	if p.opts.ValidateNesting {
		want := p.openNames[len(p.openNames)-1]
		if want != name {
			return malformed("end tag </%s> does not match open <%s>", name, want)
		}
		p.openNames = p.openNames[:len(p.openNames)-1]
	}
	p.depth--
	if p.depth == 0 {
		p.done = true
	}
	return nil
}

// readName reads an XML name (first byte already positioned at its start).
func (p *Parser) readName() (string, error) {
	var sb strings.Builder
	b, err := p.readByte()
	if err != nil || !isNameStart(b) {
		return "", truncated(err, "expected a name")
	}
	sb.WriteByte(b)
	for {
		b, err = p.readByte()
		if err != nil {
			break
		}
		if !isNameByte(b) {
			p.unread(b)
			break
		}
		sb.WriteByte(b)
	}
	return sb.String(), nil
}

// readAttr reads name="value" (either quote style), entity-decoding the
// value.
func (p *Parser) readAttr() (Attr, error) {
	name, err := p.readName()
	if err != nil {
		return Attr{}, err
	}
	b, err := p.skipSpace()
	if err != nil || b != '=' {
		return Attr{}, truncated(err, "attribute %s missing '='", name)
	}
	quote, err := p.skipSpace()
	if err != nil || (quote != '"' && quote != '\'') {
		return Attr{}, truncated(err, "attribute %s missing quote", name)
	}
	var sb strings.Builder
	for {
		b, err := p.readByte()
		if err != nil {
			return Attr{}, truncated(err, "unterminated value for attribute %s", name)
		}
		if b == quote {
			break
		}
		if b == '&' {
			s, err := p.parseEntity()
			if err != nil {
				return Attr{}, err
			}
			sb.WriteString(s)
			continue
		}
		if b == '<' {
			return Attr{}, malformed("raw '<' in value of attribute %s", name)
		}
		sb.WriteByte(b)
	}
	return Attr{Name: name, Value: sb.String()}, nil
}

// parseEntity decodes an entity reference whose '&' has been consumed.
func (p *Parser) parseEntity() (string, error) {
	var sb strings.Builder
	for {
		b, err := p.readByte()
		if err != nil {
			return "", truncated(err, "unterminated entity reference")
		}
		if b == ';' {
			break
		}
		if sb.Len() > 12 {
			return "", malformed("entity reference too long: &%s...", sb.String())
		}
		sb.WriteByte(b)
	}
	ent := sb.String()
	switch ent {
	case "amp":
		return "&", nil
	case "lt":
		return "<", nil
	case "gt":
		return ">", nil
	case "quot":
		return `"`, nil
	case "apos":
		return "'", nil
	}
	if strings.HasPrefix(ent, "#") {
		numeric := ent[1:]
		base := 10
		if strings.HasPrefix(numeric, "x") || strings.HasPrefix(numeric, "X") {
			numeric, base = numeric[1:], 16
		}
		n, err := strconv.ParseUint(numeric, base, 32)
		if err != nil || !utf8.ValidRune(rune(n)) {
			return "", malformed("bad character reference &%s;", ent)
		}
		return string(rune(n)), nil
	}
	return "", malformed("unknown entity &%s;", ent)
}

// skipSpace consumes XML whitespace and returns the first non-space byte.
func (p *Parser) skipSpace() (byte, error) {
	for {
		b, err := p.readByte()
		if err != nil {
			return 0, err
		}
		if !isXMLSpace(b) {
			return b, nil
		}
	}
}

// skipUntil consumes input through the first occurrence of the marker.
func (p *Parser) skipUntil(marker string) error {
	_, err := p.readUntil(marker)
	return err
}

// readUntil returns input up to (excluding) the first occurrence of the
// marker, consuming the marker too.
func (p *Parser) readUntil(marker string) (string, error) {
	var sb strings.Builder
	matched := 0
	for {
		b, err := p.readByte()
		if err != nil {
			return "", truncated(err, "missing %q terminator", marker)
		}
		if b == marker[matched] {
			matched++
			if matched == len(marker) {
				return sb.String(), nil
			}
			continue
		}
		if matched > 0 {
			sb.WriteString(marker[:matched])
			matched = 0
			if b == marker[0] {
				matched = 1
				continue
			}
		}
		sb.WriteByte(b)
	}
}

func isXMLSpace(b byte) bool {
	return b == ' ' || b == '\t' || b == '\r' || b == '\n'
}

func isNameStart(b byte) bool {
	return b == '_' || b == ':' ||
		('a' <= b && b <= 'z') || ('A' <= b && b <= 'Z') || b >= 0x80
}

func isNameByte(b byte) bool {
	return isNameStart(b) || b == '-' || b == '.' || ('0' <= b && b <= '9')
}
