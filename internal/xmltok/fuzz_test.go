package xmltok

import (
	"bytes"
	"io"
	"reflect"
	"strings"
	"testing"
)

// FuzzParser throws arbitrary bytes at the textual parser: it must never
// panic, and whenever it accepts a document, serializing the tokens and
// re-parsing must reproduce them (coalescing adjacent text, which
// serialization merges).
func FuzzParser(f *testing.F) {
	seeds := []string{
		`<a/>`,
		`<a x="1">text</a>`,
		`<?xml version="1.0"?><r><![CDATA[x]]><!-- c --></r>`,
		`<a>&amp;&#65;</a>`,
		`<a x='q"q'><b/></a>`,
		`<a`, `</`, `<a></b>`, `<<>>`, "\x00\xff<",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, doc string) {
		p := NewParser(strings.NewReader(doc), DefaultParserOptions())
		var toks []Token
		for {
			tok, err := p.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return // rejected input is fine; panics are not
			}
			toks = append(toks, tok)
		}
		if len(toks) == 0 {
			return
		}
		// Accepted: round-trip through the writer.
		var buf bytes.Buffer
		w := NewWriter(&buf)
		for _, tok := range toks {
			if err := w.WriteToken(tok); err != nil {
				t.Fatalf("accepted tokens failed to serialize: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("accepted document unbalanced: %v", err)
		}
		p2 := NewParser(&buf, ParserOptions{SkipWhitespaceText: false, ValidateNesting: true})
		var back []Token
		for {
			tok, err := p2.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatalf("serialized form failed to re-parse: %v", err)
			}
			back = append(back, tok)
		}
		// The original parse may drop whitespace-only text (default
		// options); apply the same filter to the re-parse.
		back = dropWhitespaceText(back)
		toks = dropWhitespaceText(toks)
		if !reflect.DeepEqual(coalesce(toks), coalesce(back)) {
			t.Fatalf("round trip mismatch:\n in  %v\n out %v", toks, back)
		}
	})
}

func dropWhitespaceText(toks []Token) []Token {
	out := toks[:0:0]
	for _, tok := range toks {
		if tok.Kind == KindText && strings.TrimLeft(tok.Text, " \t\r\n") == "" {
			continue
		}
		out = append(out, tok)
	}
	return out
}

// FuzzCodec throws arbitrary bytes at the binary token decoder: it must
// never panic or over-allocate, and any token it accepts must re-encode
// to a decodable form.
func FuzzCodec(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendToken(nil, Token{Kind: KindStart, Name: "a", Attrs: []Attr{{"k", "v"}}}))
	f.Add(AppendToken(nil, Token{Kind: KindRunPtr, Run: 7, Name: "x", Key: "k", HasKey: true}))
	f.Add([]byte{0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for {
			tok, err := ReadToken(r)
			if err != nil {
				return
			}
			enc := AppendToken(nil, tok)
			back, err := ReadToken(bytes.NewReader(enc))
			if err != nil {
				t.Fatalf("accepted token failed to round-trip: %v", err)
			}
			if !reflect.DeepEqual(tok, back) {
				t.Fatalf("round trip mismatch: %+v vs %+v", tok, back)
			}
		}
	})
}
