// Package compact implements the XML compaction techniques of Section 3.2,
// which the paper's evaluation enables for both NEXSORT and the merge-sort
// baseline: "compression of tag names and elimination of end tags".
//
//   - Name dictionary: every distinct tag and attribute name is replaced
//     by a short numeric alias on its way into the sorter's working
//     structures (data stack, sorted runs) and restored on the way out.
//     XML "contains many repeated occurrences of labels such as tag and
//     attribute names"; the dictionary is the paper's "each unique string
//     can be converted to an integer before sorting and back during
//     output". The vocabulary of a document is DTD-sized, so the table
//     lives in memory.
//
//   - End-tag elimination: "labels inside end tags can be eliminated since
//     they merely repeat the same information in matching start tags".
//     The encoder blanks end-tag names (an end token shrinks to its kind
//     byte plus any ordering key); the decoder restores them from a stack
//     of open tag names, the "structure similar to the path stack" the
//     paper describes for regenerating end tags during output.
//
// Both transforms are stream codecs over xmltok.Token and compose with any
// token pipeline; core.Options.Compact threads them around NEXSORT's data
// stack and runs.
//
// The paper's stronger variant — eliminating end tags entirely by keeping
// level numbers with start tags — is implemented as the standalone stream
// codecs in levels.go (LevelCompressor / LevelExpander, with
// CompressStream / ExpandStream as the storage-format entry points).
// NEXSORT's own working structures keep the 2-byte end stub instead: in the
// binary token form an elided end tag costs one kind byte plus an
// empty-name length, so the incremental saving of level-stamping there is
// about one byte per element against a stream format every consumer would
// have to reconstruct; the level codec's full benefit (measured at ~37% of
// the raw binary stream in tests) belongs to spooling and interchange.
package compact

import (
	"fmt"
	"strconv"

	"nexsort/internal/xmltok"
)

// Dictionary maps names to short aliases and back. Aliases are the
// decimal form of dense integer IDs, so a name costs 1-3 bytes in the
// working structures regardless of its length.
type Dictionary struct {
	toAlias map[string]string
	toName  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{toAlias: make(map[string]string)}
}

// Alias returns the alias for name, assigning the next ID on first sight.
func (d *Dictionary) Alias(name string) string {
	if a, ok := d.toAlias[name]; ok {
		return a
	}
	a := strconv.Itoa(len(d.toName))
	d.toAlias[name] = a
	d.toName = append(d.toName, name)
	return a
}

// Name resolves an alias back to the original name.
func (d *Dictionary) Name(alias string) (string, error) {
	id, err := strconv.Atoi(alias)
	if err != nil || id < 0 || id >= len(d.toName) {
		return "", fmt.Errorf("compact: unknown name alias %q", alias)
	}
	return d.toName[id], nil
}

// Len returns the number of distinct names seen.
func (d *Dictionary) Len() int { return len(d.toName) }

// Encoder compacts a token stream: names become dictionary aliases and
// end-tag names are elided. Attribute values, text and ordering keys pass
// through unchanged.
type Encoder struct {
	dict *Dictionary
}

// NewEncoder returns an encoder over dict.
func NewEncoder(dict *Dictionary) *Encoder { return &Encoder{dict: dict} }

// Encode compacts one token. The returned token shares the input's value
// strings.
func (e *Encoder) Encode(tok xmltok.Token) xmltok.Token {
	switch tok.Kind {
	case xmltok.KindStart:
		out := tok
		out.Name = e.dict.Alias(tok.Name)
		if len(tok.Attrs) > 0 {
			out.Attrs = make([]xmltok.Attr, len(tok.Attrs))
			for i, a := range tok.Attrs {
				out.Attrs[i] = xmltok.Attr{Name: e.dict.Alias(a.Name), Value: a.Value}
			}
		}
		return out
	case xmltok.KindEnd:
		out := tok
		out.Name = "" // restored from the open-tag stack on decode
		return out
	case xmltok.KindRunPtr:
		out := tok
		if tok.Name != "" {
			out.Name = e.dict.Alias(tok.Name)
		}
		return out
	default:
		return tok
	}
}

// Decoder restores a compacted token stream. It keeps the stack of open
// (original) tag names needed to regenerate end tags.
type Decoder struct {
	dict *Dictionary
	open []string
}

// NewDecoder returns a decoder over dict.
func NewDecoder(dict *Dictionary) *Decoder { return &Decoder{dict: dict} }

// Depth returns the number of currently open elements.
func (d *Decoder) Depth() int { return len(d.open) }

// Decode restores one token.
func (d *Decoder) Decode(tok xmltok.Token) (xmltok.Token, error) {
	switch tok.Kind {
	case xmltok.KindStart:
		out := tok
		name, err := d.dict.Name(tok.Name)
		if err != nil {
			return tok, err
		}
		out.Name = name
		if len(tok.Attrs) > 0 {
			out.Attrs = make([]xmltok.Attr, len(tok.Attrs))
			for i, a := range tok.Attrs {
				an, err := d.dict.Name(a.Name)
				if err != nil {
					return tok, err
				}
				out.Attrs[i] = xmltok.Attr{Name: an, Value: a.Value}
			}
		}
		d.open = append(d.open, name)
		return out, nil
	case xmltok.KindEnd:
		if len(d.open) == 0 {
			return tok, fmt.Errorf("compact: end tag with no open element")
		}
		out := tok
		out.Name = d.open[len(d.open)-1]
		d.open = d.open[:len(d.open)-1]
		return out, nil
	case xmltok.KindRunPtr:
		out := tok
		if tok.Name != "" {
			name, err := d.dict.Name(tok.Name)
			if err != nil {
				return tok, err
			}
			out.Name = name
		}
		return out, nil
	default:
		return tok, nil
	}
}
