package compact

import (
	"fmt"
	"io"

	"nexsort/internal/xmltok"
)

// Level-stamped streams: the paper's full end-tag elimination.
//
// "In fact, we can eliminate end tags altogether if we keep level numbers
// with start tags. ... End tags can be recovered using the intuition that
// in a series of start tags, any transition from a start tag on level l1 to
// a start tag on the same or a higher level l2, where l2 <= l1, must have
// l1 − l2 + 1 end tags in between to close elements on lower levels."
//
// LevelCompressor drops every end token from a stream and stamps each
// remaining token (start tags, text, run pointers) with its nesting level;
// LevelExpander reverses the transform, maintaining "a structure similar to
// the path stack, which records the tag names and level numbers of unclosed
// open tags" to regenerate the end tags. Compose with the name Dictionary
// for the complete Section 3.2 compaction stack.

// LevelCompressor converts a token stream into level-stamped form.
type LevelCompressor struct {
	depth int
}

// NewLevelCompressor returns a compressor whose first start tag will be
// stamped level 1.
func NewLevelCompressor() *LevelCompressor { return &LevelCompressor{} }

// Compress processes one token: start tags come back stamped with their
// level, text and run pointers with their (child) level, and end tags come
// back with ok=false — they carry no information the levels do not.
func (c *LevelCompressor) Compress(tok xmltok.Token) (out xmltok.Token, ok bool) {
	switch tok.Kind {
	case xmltok.KindStart:
		c.depth++
		tok.Level = c.depth
		return tok, true
	case xmltok.KindEnd:
		if c.depth > 0 {
			c.depth--
		}
		return tok, false
	default: // text, run pointers: children of the current element
		tok.Level = c.depth + 1
		return tok, true
	}
}

// Depth returns the number of currently open elements.
func (c *LevelCompressor) Depth() int { return c.depth }

// LevelExpander reconstructs the full token stream from level-stamped
// tokens. Feed tokens with Expand; it returns the tokens to emit in order
// (zero or more synthesized end tags followed by the input token). Call
// Finish at end of stream for the trailing end tags.
type LevelExpander struct {
	open []string // names of unclosed open tags, the paper's stack
}

// NewLevelExpander returns an empty expander.
func NewLevelExpander() *LevelExpander { return &LevelExpander{} }

// Expand processes one level-stamped token, appending the reconstructed
// tokens to dst and returning it.
func (e *LevelExpander) Expand(dst []xmltok.Token, tok xmltok.Token) ([]xmltok.Token, error) {
	if tok.Kind == xmltok.KindEnd {
		return dst, fmt.Errorf("compact: end tag in a level-stamped stream")
	}
	level := tok.Level
	if level < 1 {
		return dst, fmt.Errorf("compact: token without a level stamp")
	}
	// A transition to level l closes open elements at levels >= l (for
	// start tags) or > l-1 (for child tokens, same arithmetic).
	for len(e.open) >= level {
		dst = append(dst, xmltok.Token{Kind: xmltok.KindEnd, Name: e.open[len(e.open)-1]})
		e.open = e.open[:len(e.open)-1]
	}
	if tok.Kind == xmltok.KindStart {
		if level != len(e.open)+1 {
			return dst, fmt.Errorf("compact: start tag at level %d with %d open elements", level, len(e.open))
		}
		e.open = append(e.open, tok.Name)
	} else if level != len(e.open)+1 {
		return dst, fmt.Errorf("compact: child token at level %d with %d open elements", level, len(e.open))
	}
	out := tok
	out.Level = 0
	return append(dst, out), nil
}

// Finish appends the end tags for all still-open elements.
func (e *LevelExpander) Finish(dst []xmltok.Token) []xmltok.Token {
	for len(e.open) > 0 {
		dst = append(dst, xmltok.Token{Kind: xmltok.KindEnd, Name: e.open[len(e.open)-1]})
		e.open = e.open[:len(e.open)-1]
	}
	return dst
}

// Depth returns the number of currently open elements.
func (e *LevelExpander) Depth() int { return len(e.open) }

// CompressStream applies the level transform to a whole token source,
// writing the stamped binary encoding to w, and returns the byte count.
// It is the storage-format entry point: a level-stamped binary file is the
// most compact form this repository offers for spooling XML.
func CompressStream(src interface{ Next() (xmltok.Token, error) }, w io.Writer) (int64, error) {
	c := NewLevelCompressor()
	var buf []byte
	var total int64
	for {
		tok, err := src.Next()
		if err == io.EOF {
			if c.Depth() != 0 {
				return total, fmt.Errorf("compact: stream ended with %d open elements", c.Depth())
			}
			return total, nil
		}
		if err != nil {
			return total, err
		}
		out, ok := c.Compress(tok)
		if !ok {
			continue
		}
		buf = xmltok.AppendToken(buf[:0], out)
		n, err := w.Write(buf)
		total += int64(n)
		if err != nil {
			return total, err
		}
	}
}

// ExpandStream decodes a level-stamped binary stream produced by
// CompressStream, invoking emit for every reconstructed token.
func ExpandStream(r io.ByteReader, emit func(xmltok.Token) error) error {
	e := NewLevelExpander()
	var pending []xmltok.Token
	for {
		tok, err := xmltok.ReadToken(r)
		if err == io.EOF {
			for _, t := range e.Finish(pending[:0]) {
				if err := emit(t); err != nil {
					return err
				}
			}
			return nil
		}
		if err != nil {
			return err
		}
		pending, err = e.Expand(pending[:0], tok)
		if err != nil {
			return err
		}
		for _, t := range pending {
			if err := emit(t); err != nil {
				return err
			}
		}
	}
}
