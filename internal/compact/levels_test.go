package compact

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/xmltok"
)

type parserSource struct{ p *xmltok.Parser }

func (s parserSource) Next() (xmltok.Token, error) { return s.p.Next() }

func parseSource(doc string) parserSource {
	return parserSource{xmltok.NewParser(strings.NewReader(doc), xmltok.DefaultParserOptions())}
}

func TestLevelRoundTripByHand(t *testing.T) {
	doc := `<a><b><c>x</c></b><d/>tail</a>`
	var buf bytes.Buffer
	n, err := CompressStream(parseSource(doc), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("byte count %d vs buffer %d", n, buf.Len())
	}
	var got []xmltok.Token
	if err := ExpandStream(bytes.NewReader(buf.Bytes()), func(tok xmltok.Token) error {
		got = append(got, tok)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := []xmltok.Token{
		{Kind: xmltok.KindStart, Name: "a"},
		{Kind: xmltok.KindStart, Name: "b"},
		{Kind: xmltok.KindStart, Name: "c"},
		{Kind: xmltok.KindText, Text: "x"},
		{Kind: xmltok.KindEnd, Name: "c"},
		{Kind: xmltok.KindEnd, Name: "b"},
		{Kind: xmltok.KindStart, Name: "d"},
		{Kind: xmltok.KindEnd, Name: "d"},
		{Kind: xmltok.KindText, Text: "tail"},
		{Kind: xmltok.KindEnd, Name: "a"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip:\n got %v\nwant %v", got, want)
	}
}

// TestLevelSavings measures the paper's claim: dropping end tags shrinks
// the stored stream.
func TestLevelSavings(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("<inventory-database>")
	for i := 0; i < 200; i++ {
		sb.WriteString(`<warehouse-record code="x"><quantity>5</quantity></warehouse-record>`)
	}
	sb.WriteString("</inventory-database>")

	var plain int64
	src := parseSource(sb.String())
	for {
		tok, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		plain += int64(xmltok.EncodedSize(tok))
	}
	var buf bytes.Buffer
	stamped, err := CompressStream(parseSource(sb.String()), &buf)
	if err != nil {
		t.Fatal(err)
	}
	if stamped >= plain {
		t.Errorf("level stamping did not shrink the stream: %d >= %d", stamped, plain)
	}
	t.Logf("plain %d bytes, level-stamped %d bytes (%.1f%% saved)",
		plain, stamped, 100*(1-float64(stamped)/float64(plain)))
}

func TestLevelExpanderErrors(t *testing.T) {
	e := NewLevelExpander()
	if _, err := e.Expand(nil, xmltok.Token{Kind: xmltok.KindEnd, Name: "a"}); err == nil {
		t.Error("end tag should be rejected")
	}
	if _, err := e.Expand(nil, xmltok.Token{Kind: xmltok.KindStart, Name: "a"}); err == nil {
		t.Error("unstamped token should be rejected")
	}
	if _, err := e.Expand(nil, xmltok.Token{Kind: xmltok.KindStart, Name: "a", Level: 3}); err == nil {
		t.Error("level gap should be rejected")
	}
	c := NewLevelCompressor()
	if _, ok := c.Compress(xmltok.Token{Kind: xmltok.KindEnd, Name: "x"}); ok {
		t.Error("end tags must be swallowed")
	}
	// Unbalanced stream caught at CompressStream.
	if _, err := CompressStream(parseSource("<a><b></b></a>"), io.Discard); err != nil {
		t.Errorf("balanced stream rejected: %v", err)
	}
}

// Property: compress/expand round-trips random well-formed documents and
// composes with the name dictionary.
func TestLevelRoundTripQuick(t *testing.T) {
	f := func(seed int64, withDict bool) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomLevelDoc(rng)

		// Reference token stream.
		var want []xmltok.Token
		ref := parseSource(doc)
		for {
			tok, err := ref.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			want = append(want, tok)
		}

		dict := NewDictionary()
		enc := NewEncoder(dict)
		dec := NewDecoder(dict)
		comp := NewLevelCompressor()
		exp := NewLevelExpander()

		src := parseSource(doc)
		var got []xmltok.Token
		var pending []xmltok.Token
		for {
			tok, err := src.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return false
			}
			if withDict {
				tok = enc.Encode(tok)
			}
			out, ok := comp.Compress(tok)
			if !ok {
				continue
			}
			pending, err = exp.Expand(pending[:0], out)
			if err != nil {
				return false
			}
			for _, t2 := range pending {
				if withDict {
					if t2, err = dec.Decode(t2); err != nil {
						return false
					}
				}
				got = append(got, t2)
			}
		}
		pending = exp.Finish(pending[:0])
		for _, t2 := range pending {
			var err error
			if withDict {
				if t2, err = dec.Decode(t2); err != nil {
					return false
				}
			}
			got = append(got, t2)
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func randomLevelDoc(rng *rand.Rand) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := string(rune('a' + rng.Intn(3)))
		sb.WriteString("<" + tag + ">")
		budget--
		for i := rng.Intn(4); i > 0; i-- {
			if rng.Intn(3) == 0 {
				sb.WriteString("t" + string(rune('0'+rng.Intn(10))))
			} else if depth < 8 {
				budget = emit(depth+1, budget)
			}
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString("<root>")
	budget := 1 + rng.Intn(50)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}
