package compact

import (
	"io"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/xmltok"
)

func TestDictionary(t *testing.T) {
	d := NewDictionary()
	a1 := d.Alias("employee")
	a2 := d.Alias("region")
	if a1 != "0" || a2 != "1" {
		t.Errorf("aliases = %q, %q", a1, a2)
	}
	if d.Alias("employee") != "0" {
		t.Error("alias not stable")
	}
	if n, err := d.Name("0"); err != nil || n != "employee" {
		t.Errorf("Name(0) = %q, %v", n, err)
	}
	if _, err := d.Name("7"); err == nil {
		t.Error("unknown alias should fail")
	}
	if _, err := d.Name("x"); err == nil {
		t.Error("non-numeric alias should fail")
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d", d.Len())
	}
}

func TestEncodeDecodeStream(t *testing.T) {
	doc := `<company><region name="NE"><branch name="Durham"/></region>text</company>`
	p := xmltok.NewParser(strings.NewReader(doc), xmltok.DefaultParserOptions())
	dict := NewDictionary()
	enc := NewEncoder(dict)
	dec := NewDecoder(dict)
	var orig, roundTripped []xmltok.Token
	var compactBytes, plainBytes int
	for {
		tok, err := p.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		orig = append(orig, tok)
		plainBytes += xmltok.EncodedSize(tok)
		ctok := enc.Encode(tok)
		compactBytes += xmltok.EncodedSize(ctok)
		if ctok.Kind == xmltok.KindEnd && ctok.Name != "" {
			t.Error("end tag name not elided")
		}
		back, err := dec.Decode(ctok)
		if err != nil {
			t.Fatal(err)
		}
		roundTripped = append(roundTripped, back)
	}
	if !reflect.DeepEqual(orig, roundTripped) {
		t.Errorf("round trip mismatch:\n got %v\nwant %v", roundTripped, orig)
	}
	if compactBytes >= plainBytes {
		t.Errorf("compaction grew the stream: %d >= %d", compactBytes, plainBytes)
	}
	if dec.Depth() != 0 {
		t.Errorf("decoder left %d elements open", dec.Depth())
	}
}

func TestDecoderErrors(t *testing.T) {
	dict := NewDictionary()
	dec := NewDecoder(dict)
	if _, err := dec.Decode(xmltok.Token{Kind: xmltok.KindEnd}); err == nil {
		t.Error("end with nothing open should fail")
	}
	if _, err := dec.Decode(xmltok.Token{Kind: xmltok.KindStart, Name: "9"}); err == nil {
		t.Error("unknown alias should fail")
	}
}

func TestRunPtrPassThrough(t *testing.T) {
	dict := NewDictionary()
	enc := NewEncoder(dict)
	dec := NewDecoder(dict)
	ptr := xmltok.Token{Kind: xmltok.KindRunPtr, Run: 5, Name: "collapsed", Key: "k", HasKey: true}
	cp := enc.Encode(ptr)
	if cp.Run != 5 || cp.Key != "k" {
		t.Errorf("encode mangled run ptr: %+v", cp)
	}
	back, err := dec.Decode(cp)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, ptr) {
		t.Errorf("round trip: %+v vs %+v", back, ptr)
	}
}

// Property: encode/decode round-trips random well-formed streams and the
// decoder's stack stays balanced.
func TestCompactQuick(t *testing.T) {
	names := []string{"alpha", "beta-element", "g", "delta.longish_name"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		dict := NewDictionary()
		enc := NewEncoder(dict)
		dec := NewDecoder(dict)
		var stack []string
		steps := 5 + rng.Intn(60)
		for i := 0; i < steps; i++ {
			var tok xmltok.Token
			switch {
			case len(stack) == 0 || rng.Intn(3) > 0:
				tok = xmltok.Token{Kind: xmltok.KindStart, Name: names[rng.Intn(len(names))]}
				if rng.Intn(2) == 0 {
					tok.Attrs = []xmltok.Attr{{Name: names[rng.Intn(len(names))], Value: "v"}}
				}
				stack = append(stack, tok.Name)
			case rng.Intn(2) == 0:
				tok = xmltok.Token{Kind: xmltok.KindText, Text: "t"}
			default:
				tok = xmltok.Token{Kind: xmltok.KindEnd, Name: stack[len(stack)-1]}
				stack = stack[:len(stack)-1]
			}
			back, err := dec.Decode(enc.Encode(tok))
			if err != nil || !reflect.DeepEqual(back, tok) {
				return false
			}
		}
		return dec.Depth() == len(stack)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
