package core

import (
	"encoding/binary"
	"sort"

	"nexsort/internal/em"
	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

// Graceful degeneration into external merge sort (Section 3.2).
//
// The unmodified algorithm wastes a pass on flat inputs: the whole document
// is pushed onto the data stack — paging most of it to disk — only to be
// popped right back for the single root-level sort. The fix the paper
// sketches: whenever the open element's accumulated (complete) children
// fill the sort area, sort them in memory immediately and emit an
// incomplete sorted run; the children never ride the data stack to disk.
// At the element's end tag, its incomplete runs are handed to the merge
// phase of the external sorter as pre-sorted initial runs — "we have
// incorporated the first step of creating initial sorted runs for external
// merge sort into the loop of Line 2" — so a flat document completes with
// the same number of passes as external merge sort.

// maybeCutIncomplete fires the degeneration trigger: when the deepest open
// element's uncut child region reaches the sort area, cut it into an
// incomplete sorted run.
func (s *sorter) maybeCutIncomplete() error {
	if !s.opts.Degenerate || s.path.Len() == 0 {
		return nil
	}
	if err := s.path.Peek(s.pathBuf); err != nil {
		return err
	}
	rec := unmarshalPathRec(s.pathBuf)
	if s.data.Size()-rec.cutMark < s.cutCap {
		return nil
	}
	return s.cutIncompleteRun(rec)
}

// cutIncompleteRun sorts the top element's uncut complete children in
// memory and replaces them on the data stack with nothing — the batch
// moves to an incomplete sorted run keyed by (child key, sibling seq).
func (s *sorter) cutIncompleteRun(rec pathRec) error {
	// The region is memory-resident by construction (the trigger fires
	// before it can outgrow the data stack's resident window), so the
	// in-memory sort below is modelled as in-place: no extra grant.

	// Depth-limit translation for the element's children: the element is
	// at level ds = path length; its child list is sorted iff ds <= d.
	ds := int(s.path.Len())
	d := s.opts.DepthLimit
	listSorted := d == 0 || ds <= d

	reader, err := s.data.ReadRange(s.env.Budget, rec.cutMark)
	if err != nil {
		return err
	}
	src := &tokenSource{r: reader}
	var nodes []*xmltree.Node
	for {
		node, last, err := nextChildNode(src)
		if err != nil {
			reader.Close()
			return err
		}
		if last {
			break
		}
		if listSorted {
			sortChildInterior(node, relLimitAt(d, ds))
		} else {
			// Below the depth limit nothing reorders: force document
			// order via the empty key.
			node.Key = ""
		}
		node.Seq = rec.childBase + int64(len(nodes))
		nodes = append(nodes, node)
	}
	reader.Close()

	sort.SliceStable(nodes, func(i, j int) bool {
		a, b := nodes[i], nodes[j]
		return keys.Compare(a.Key, a.Seq, b.Key, b.Seq) < 0
	})

	run := em.NewStream(s.env.Dev, em.CatSubtreeSort)
	w, err := run.NewWriter(s.env.Budget)
	if err != nil {
		return err
	}
	var lenBuf [binary.MaxVarintLen64]byte
	for _, node := range nodes {
		s.recBuf, err = encodeChildRecord(s.recBuf[:0], node, node.Seq)
		if err != nil {
			w.Close()
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(s.recBuf)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			w.Close()
			return err
		}
		if _, err := w.Write(s.recBuf); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	s.incomplete[ds] = append(s.incomplete[ds], run)
	s.report.IncompleteRuns++

	if err := s.data.Truncate(rec.cutMark); err != nil {
		return err
	}
	rec.childBase += int64(len(nodes))
	rec.marshal(s.pathBuf)
	return s.path.ReplaceTop(s.pathBuf)
}

// relLimitAt returns the subtree-relative depth limit for an element at
// level ds under global limit d (0 = unlimited).
func relLimitAt(d, ds int) int {
	if d == 0 {
		return 0
	}
	return d - ds + 1
}
