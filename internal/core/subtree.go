package core

import (
	"fmt"
	"io"

	"nexsort/internal/em"
	"nexsort/internal/runstore"
	"nexsort/internal/xmltok"
	"nexsort/internal/xmltree"
)

// sortSubtree is lines 10-12 of Figure 4: pop the complete subtree starting
// at rec.start from the data stack, sort it, write it as a sorted run, and
// push a run-pointer token (carrying the subtree root's ordering key from
// its end tag) back in its place. ds is the subtree root's level, used by
// depth-limited sorting.
func (s *sorter) sortSubtree(rec pathRec, endTok xmltok.Token, ds int) (runstore.RunID, error) {
	// Lifecycle poll at the per-subtree boundary: an in-memory subtree
	// sort moves no blocks, so this is what keeps cancellation prompt
	// through a stretch of small subtrees that never touch the device.
	if err := s.env.Dev.Interrupted(); err != nil {
		return 0, err
	}
	size := s.data.Size() - rec.start
	if size > s.report.MaxSubtreeBytes {
		s.report.MaxSubtreeBytes = size
	}
	s.report.SubtreeSorts++

	// Translate the global depth limit into the subtree's frame: an
	// element at relative level r (subtree root = 1) sits at global level
	// ds+r-1, so child lists are sorted for r <= relLimit = d-ds+1.
	// relLimit <= 0 means the subtree sits at the boundary (ds = d+1): it
	// is written to disk unsorted so that it stops inflating ancestors'
	// sorts ("ensuring that we do not carry large subtrees along").
	relLimit := 0
	noSort := false
	if s.opts.DepthLimit > 0 {
		relLimit = s.opts.DepthLimit - ds + 1
		if relLimit <= 0 {
			noSort = true
		}
	}

	depthIdx := int(s.path.Len()) + 1 // the closed element's depth index
	incRuns := s.incomplete[depthIdx]
	delete(s.incomplete, depthIdx)

	bs := int64(s.env.Conf.BlockSize)
	// The plain in-memory case — no incomplete runs to merge, no depth
	// boundary, no degeneration — is self-contained once the subtree's
	// bytes leave the data stack, so it can run on a pool worker while the
	// scan continues with the next sibling. The admission predicate is the
	// sequential internal-vs-external routing verbatim (one block for the
	// run writer, one reserved for the range reader), evaluated against
	// effectiveFree() so that in-flight workers do not perturb it: every
	// subtree routes exactly as it would at parallelism one, which is what
	// keeps the block-transfer counts parallelism-invariant.
	if len(incRuns) == 0 && !noSort && !s.opts.Degenerate &&
		size <= int64(s.effectiveFree()-2)*bs {
		runID, ok, err := s.tryDispatchSubtreeSort(rec.start, size, relLimit)
		if err != nil {
			return 0, err
		}
		if ok {
			s.report.InternalSorts++
			return s.collapseSubtree(rec.start, endTok, runID)
		}
		// Pool busy or budget too tight for a second working set: fall
		// through to the sequential path below.
	}

	// Sequential path. Wait out in-flight workers first: the branches
	// below size themselves by Budget.Free() (the key-path fallback and
	// the child-record merger take everything that is left), so they must
	// see the budget a sequential execution would see.
	if err := s.drainWorkers(); err != nil {
		return 0, err
	}

	runID, w, err := s.store.Create(em.CatSubtreeSort, s.env.Budget)
	if err != nil {
		return 0, err
	}

	switch {
	case len(incRuns) > 0:
		err = s.mergedSubtreeSort(rec, endTok, incRuns, relLimit, noSort, w)
		s.report.MergedSubtrees++
	case noSort:
		err = s.copySubtree(rec.start, w)
		s.report.UnsortedRuns++
	case s.opts.Degenerate && size <= s.cutCap+bs:
		// Under degeneration the cut trigger bounds every element's
		// on-stack size, so the subtree is already memory-resident: sort
		// it in place without a second grant.
		err = s.internalSubtreeSort(rec.start, 0, relLimit, w)
		s.report.InternalSorts++
	case size <= int64(s.env.Budget.Free()-1)*bs:
		// The encoded subtree fits in the remaining sort area (one block
		// stays reserved for the range reader): in-memory recursive sort.
		err = s.internalSubtreeSort(rec.start, size, relLimit, w)
		s.report.InternalSorts++
	default:
		err = s.externalSubtreeSort(rec.start, relLimit, w)
		s.report.ExternalSorts++
	}
	if err != nil {
		w.Close()
		return 0, err
	}
	if err := w.Close(); err != nil {
		return 0, err
	}
	return s.collapseSubtree(rec.start, endTok, runID)
}

// collapseSubtree replaces the subtree's bytes on the data stack with a
// run-pointer token carrying the root's ordering key — the common tail of
// both the sequential and the dispatched sort. For a dispatched sort the
// worker still owns its private snapshot, so truncating here is safe even
// while the sort is in flight.
func (s *sorter) collapseSubtree(start int64, endTok xmltok.Token, runID runstore.RunID) (runstore.RunID, error) {
	if err := s.data.Truncate(start); err != nil {
		return 0, err
	}
	ptr := xmltok.Token{
		Kind:   xmltok.KindRunPtr,
		Run:    int64(runID),
		Name:   endTok.Name,
		Key:    endTok.Key,
		HasKey: true,
	}
	if err := s.pushToken(ptr); err != nil {
		return 0, err
	}
	return runID, nil
}

// copySubtree writes the subtree's tokens to the run verbatim (depth-limited
// mode, subtree rooted exactly at level d+1).
func (s *sorter) copySubtree(start int64, w *runstore.Writer) error {
	reader, err := s.data.ReadRange(s.env.Budget, start)
	if err != nil {
		return err
	}
	defer reader.Close()
	var dec xmltok.Decoder
	for {
		tok, err := dec.ReadToken(reader)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := w.WriteToken(tok); err != nil {
			return err
		}
	}
}

// internalSubtreeSort is Line 11's common case: build the subtree in
// memory, recursively sort it, and stream it into the run. The tree's
// memory is drawn from the budget at the subtree's encoded size; size 0
// skips the grant (degeneration mode, where the bytes are already resident
// in the data stack's window and the sort is modelled as in-place).
func (s *sorter) internalSubtreeSort(start, size int64, relLimit int, w *runstore.Writer) error {
	bs := int64(s.env.Conf.BlockSize)
	blocks := int((size + bs - 1) / bs)
	if err := s.env.Budget.Grant(blocks); err != nil {
		return err
	}
	defer s.env.Budget.Release(blocks)

	reader, err := s.data.ReadRange(s.env.Budget, start)
	if err != nil {
		return err
	}
	defer reader.Close()

	tree, err := xmltree.FromTokens(&tokenSource{r: reader})
	if err != nil {
		return fmt.Errorf("core: rebuilding subtree: %w", err)
	}
	tree.SortToDepth(relLimit) // 0 sorts head to toe
	return tree.EmitTokens(w.WriteToken)
}

// externalSubtreeSort is Line 11's fallback for subtrees larger than the
// sort area: depth-aware key-path external merge sort over the subtree's
// token stream. When the criterion needs subtree passes (path keys), a
// sidecar pass first materializes every element's key — resolved on end
// tags — as (preorder index, key) records, sorts them back into preorder,
// and zips them with a second scan so that start tags carry keys before
// key-path extraction.
func (s *sorter) externalSubtreeSort(start int64, relLimit int, w *runstore.Writer) error {
	allSimple := true
	for _, r := range s.crit.Rules {
		if !r.Source.StartResolvable() {
			allSimple = false
			break
		}
	}

	if allSimple {
		reader, err := s.data.ReadRange(s.env.Budget, start)
		if err != nil {
			return err
		}
		defer reader.Close()
		return keyPathSortTokens(s.env, &tokenSource{r: reader}, relLimit, w)
	}

	sidecar, err := s.buildKeySidecar(start)
	if err != nil {
		return err
	}
	defer sidecar.Close()
	reader, err := s.data.ReadRange(s.env.Budget, start)
	if err != nil {
		return err
	}
	defer reader.Close()
	keyed := &keyedSource{inner: &tokenSource{r: reader}, sidecar: sidecar}
	return keyPathSortTokens(s.env, keyed, relLimit, w)
}

// mergedSubtreeSort completes a subtree whose earlier children were cut
// into incomplete sorted runs by graceful degeneration: the remaining
// uncut children are interior-sorted in memory into one more batch, and
// everything is merged into the element's complete sorted run.
func (s *sorter) mergedSubtreeSort(rec pathRec, endTok xmltok.Token, incRuns []*em.Stream, relLimit int, noSort bool, w *runstore.Writer) (err error) {
	// Lend the data stack's accumulation window to the merge: everything
	// that mattered was already cut into incomplete runs, so the stack
	// below needs only one resident block, and the freed blocks buy the
	// merge its fan-in (external merge sort's buffer/merge phase split).
	restore := s.data.Resident()
	if restore > 1 {
		if serr := s.data.SetResident(1); serr != nil {
			return serr
		}
		defer func() {
			// Regrowing only re-grants budget; it can still fail if an
			// error unwind above left blocks granted, and that must
			// surface as an error, not a panic mid-teardown.
			if rerr := s.data.SetResident(restore); rerr != nil && err == nil {
				err = fmt.Errorf("core: restoring data-stack window: %w", rerr)
			}
		}()
	}

	reader, err := s.data.ReadRange(s.env.Budget, rec.start)
	if err != nil {
		return err
	}
	src := &tokenSource{r: reader}

	startTok, err := src.Next()
	if err != nil {
		reader.Close()
		return err
	}
	if startTok.Kind != xmltok.KindStart {
		reader.Close()
		return fmt.Errorf("core: merged subtree does not begin with a start tag")
	}

	sorter, err := newChildRecordSorter(s.env)
	if err != nil {
		reader.Close()
		return err
	}
	defer sorter.Close()
	for _, run := range incRuns {
		sorter.AddPresortedRun(run)
	}

	// Parse, interior-sort and enqueue the uncut tail of the child list.
	// The region is below the cut capacity by construction, so this is an
	// in-memory step (its budget was effectively reserved by the trigger).
	childSeq := rec.childBase
	for {
		node, last, err := nextChildNode(src)
		if err != nil {
			reader.Close()
			return err
		}
		if last {
			break
		}
		if noSort {
			// The element sits below the depth limit: its children keep
			// document order, so the empty key makes (key, seq) reduce
			// to the sequence number.
			node.Key = ""
		} else {
			sortChildInterior(node, relLimit)
		}
		s.recBuf, err = encodeChildRecord(s.recBuf[:0], node, childSeq)
		if err != nil {
			reader.Close()
			return err
		}
		if err := sorter.Add(s.recBuf); err != nil {
			reader.Close()
			return err
		}
		childSeq++
	}
	reader.Close()

	if err := w.WriteToken(startTok); err != nil {
		return err
	}
	if err := drainChildRecords(sorter, w); err != nil {
		return err
	}
	return w.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: endTok.Name, Key: endTok.Key, HasKey: endTok.HasKey})
}

// sortChildInterior recursively sorts a direct child of an element being
// sorted at subtree-relative limit relLimit: the child sits one level
// deeper, so its own frame shifts by one. relLimit 0 means head to toe;
// relLimit 1 means only the parent's child list is ordered, so the child's
// interior must stay untouched.
func sortChildInterior(node *xmltree.Node, relLimit int) {
	switch {
	case relLimit == 0:
		node.SortRecursive()
	case relLimit > 1:
		node.SortToDepth(relLimit - 1)
	}
}

// nextChildNode reads the next complete child subtree from a sibling-level
// token stream. last=true signals the parent's end tag (or stream end).
func nextChildNode(src *tokenSource) (node *xmltree.Node, last bool, err error) {
	tok, err := src.Next()
	if err == io.EOF {
		return nil, true, nil
	}
	if err != nil {
		return nil, false, err
	}
	if tok.Kind == xmltok.KindEnd {
		return nil, true, nil
	}
	n, err := xmltree.FromFirst(src, tok)
	if err != nil {
		return nil, false, err
	}
	return n, false, nil
}
