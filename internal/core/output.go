package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"nexsort/internal/compact"
	"nexsort/internal/em"
	"nexsort/internal/runstore"
	"nexsort/internal/xmltok"
	"nexsort/internal/xstack"
)

// outLocSize is the output location stack's record size: run ID plus
// resume offset.
const outLocSize = 16

// outputPhase is lines 13-21 of Figure 4: a depth-first traversal of the
// tree of sorted runs, made iterative with an external-memory output
// location stack so that arbitrarily deep run trees never grow the call
// stack beyond the one resident block the analysis assumes (Lemma 4.13).
func (s *sorter) outputPhase(root runstore.RunID, out io.Writer) error {
	budget := s.env.Budget

	oStack, err := xstack.NewRecordStack(s.env.Dev, em.CatOutputStack, budget, 1, outLocSize)
	if err != nil {
		return err
	}
	defer oStack.Close()

	if err := budget.Grant(1); err != nil {
		return fmt.Errorf("core: output buffer: %w", err)
	}
	defer budget.Release(1)

	cw := em.NewCountingWriter(out, s.env.Dev, em.CatOutput)
	defer cw.Close()
	var xw *xmltok.Writer
	if s.opts.Indent != "" {
		xw = xmltok.NewIndentWriter(cw, s.opts.Indent)
	} else {
		xw = xmltok.NewWriter(cw)
	}

	var dec *compact.Decoder
	if s.dict != nil {
		dec = compact.NewDecoder(s.dict)
	}

	curID := root
	cur, err := s.store.OpenCat(curID, budget, 0, em.CatRunRead)
	if err != nil {
		return err
	}
	loc := make([]byte, outLocSize)
	for {
		tok, err := cur.ReadToken()
		if err == io.EOF {
			cur.Close()
			if oStack.Len() == 0 {
				break
			}
			if err := oStack.Pop(loc); err != nil {
				return err
			}
			curID = runstore.RunID(binary.LittleEndian.Uint64(loc[0:]))
			off := int64(binary.LittleEndian.Uint64(loc[8:]))
			if cur, err = s.store.OpenCat(curID, budget, off, em.CatRunRead); err != nil {
				return err
			}
			continue
		}
		if err != nil {
			cur.Close()
			return err
		}
		if tok.Kind == xmltok.KindRunPtr {
			// Line 19-20: remember where to resume this run, then jump
			// into the child run at its beginning.
			binary.LittleEndian.PutUint64(loc[0:], uint64(curID))
			binary.LittleEndian.PutUint64(loc[8:], uint64(cur.Offset()))
			if err := oStack.Push(loc); err != nil {
				cur.Close()
				return err
			}
			cur.Close()
			curID = runstore.RunID(tok.Run)
			if cur, err = s.store.OpenCat(curID, budget, 0, em.CatRunRead); err != nil {
				return err
			}
			continue
		}
		if dec != nil {
			if tok, err = dec.Decode(tok); err != nil {
				cur.Close()
				return err
			}
		}
		tok.HasKey, tok.Key = false, ""
		if err := xw.WriteToken(tok); err != nil {
			cur.Close()
			return err
		}
	}
	if err := xw.Close(); err != nil {
		return err
	}
	if err := cw.Flush(); err != nil {
		return err
	}
	s.report.OutputBytes = cw.BytesWritten()
	return nil
}
