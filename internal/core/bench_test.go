package core

import (
	"io"
	"strings"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
)

// benchWorkload generates a ~2.5 MB hierarchical document once.
func benchWorkload(b *testing.B) string {
	b.Helper()
	var sb strings.Builder
	if _, err := (gen.IBMSpec{Height: 9, MaxFanout: 6, MaxElements: 16000, Seed: 7}).Write(&sb); err != nil {
		b.Fatal(err)
	}
	return sb.String()
}

func benchCriterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 16}
}

// BenchmarkNEXSORTEndToEnd measures the full pipeline (scan, subtree
// sorts, output traversal) on an in-memory device.
func BenchmarkNEXSORTEndToEnd(b *testing.B) {
	doc := benchWorkload(b)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 48})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Sort(env, strings.NewReader(doc), io.Discard, Options{Criterion: benchCriterion()}); err != nil {
			b.Fatal(err)
		}
		env.Close()
	}
}

// BenchmarkNEXSORTCompact measures the same pipeline with Section 3.2
// compaction enabled.
func BenchmarkNEXSORTCompact(b *testing.B) {
	doc := benchWorkload(b)
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 48})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Sort(env, strings.NewReader(doc), io.Discard, Options{Criterion: benchCriterion(), Compact: true}); err != nil {
			b.Fatal(err)
		}
		env.Close()
	}
}

// BenchmarkNEXSORTDegenerateFlat measures graceful degeneration on its
// target shape.
func BenchmarkNEXSORTDegenerateFlat(b *testing.B) {
	var sb strings.Builder
	if _, err := (gen.CustomSpec{Fanouts: []int{16000}, Seed: 7}).Write(&sb); err != nil {
		b.Fatal(err)
	}
	doc := sb.String()
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 48})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Sort(env, strings.NewReader(doc), io.Discard, Options{Criterion: benchCriterion(), Degenerate: true}); err != nil {
			b.Fatal(err)
		}
		env.Close()
	}
}
