// Package core implements NEXSORT — Nested data and XML Sorting — the
// external-memory XML sorting algorithm of Silberstein and Yang (ICDE
// 2004), following the pseudo-code of the paper's Figure 4.
//
// The algorithm runs in two phases:
//
// Sorting phase. The input document is scanned once in its natural
// depth-first order. Every token is pushed onto an external-memory data
// stack; the start location of each open element is pushed onto an
// external-memory path stack. When an end tag arrives, the element's start
// location l is popped; if the complete subtree above l is at least the
// sort threshold t bytes (or the root has just closed), the subtree is
// popped, sorted — in memory when it fits, with depth-aware key-path
// external merge sort otherwise — and written to disk as a sorted run. The
// subtree on the data stack is replaced by a single run-pointer token
// carrying the subtree root's ordering key (the collapse of Figure 2). By
// the end of the scan the document has become a tree of sorted runs
// connected by pointers (Figure 3).
//
// Output phase. A depth-first traversal of the run tree — made iterative
// with an external-memory output location stack, exactly as lines 13-21 of
// Figure 4 prescribe — concatenates the runs into the final sorted
// document.
//
// Extensions of Section 3.2 are available through Options: depth-limited
// sorting, complex (subtree-pass) ordering criteria via the keys package's
// streaming evaluators, graceful degeneration into external merge sort on
// flat inputs, and the compaction codecs of the compact package.
package core

import (
	"fmt"

	"nexsort/internal/em"
	"nexsort/internal/keys"
)

// MinMemBlocks is the smallest memory budget NEXSORT accepts: one resident
// block for the data stack, two for the path stack (Lemma 4.11's
// assumption), two for the ordering-expression spill stack, one for the
// input buffer, plus reader, writer and at least four blocks of sort
// area so the external fallback's merge makes progress.
const MinMemBlocks = 12

// MinMemBlocksDegenerate is the floor with graceful degeneration enabled:
// the optimization dedicates the sort area to extra resident data-stack
// blocks so accumulating children never touch disk, which only pays off
// with a few blocks to spare.
const MinMemBlocksDegenerate = 16

// Options configures a sort.
type Options struct {
	// Criterion is the ordering specification. Nil (or an empty
	// criterion) gives every element the empty key, which — with the
	// document-position tie-break — reproduces the input order; supply
	// rules to sort meaningfully.
	Criterion *keys.Criterion
	// Threshold is t, the sort threshold in bytes: a complete subtree is
	// sorted into a run only when at least this large. Zero selects the
	// paper's experimental setting of twice the block size ("we set the
	// threshold to be roughly twice the block size, which works well for
	// most inputs").
	Threshold int
	// DepthLimit enables depth-limited sorting (Section 3.2): child
	// lists of elements at levels 1..DepthLimit are sorted, deeper
	// subtrees are treated as atomic units. 0 sorts head to toe.
	DepthLimit int
	// Compact enables the XML compaction techniques of Section 3.2 on the
	// sorter's working structures: tag and attribute names are replaced
	// by dictionary aliases and end-tag names are elided on the data
	// stack and in sorted runs, then restored during the output phase —
	// the setting the paper's own evaluation uses for both algorithms.
	// Input and output documents are plain XML either way.
	Compact bool
	// Degenerate enables graceful degeneration into external merge sort
	// (Section 3.2): when the open subtree's accumulated children fill
	// the sort area, they are sorted into an incomplete run immediately
	// instead of riding the data stack to disk and back. The paper's own
	// evaluation leaves this off, which is also the default here.
	Degenerate bool
	// RecordOrder, when non-empty, stamps every element with an attribute
	// of this name holding its original position among its siblings
	// (zero-padded, so lexicographic order is numeric order). This is the
	// paper's device for order-preserving applications: "recording an
	// additional sequence number attribute for each child element and
	// performing a final sort according to this sequence number" restores
	// the original element order exactly. Text nodes cannot carry
	// attributes (a limit the paper's recipe shares): restoring moves a
	// parent's text children ahead of its element children, preserving
	// order within each group.
	RecordOrder string
	// Indent pretty-prints the output with the given unit; empty writes
	// compact XML.
	Indent string
}

// Report describes a completed sort.
type Report struct {
	// Elements is N, the number of elements in the input.
	Elements int64
	// TextNodes is the number of character-data nodes.
	TextNodes int64
	// Height is the deepest element nesting observed.
	Height int
	// InputBytes and OutputBytes are the document sizes.
	InputBytes  int64
	OutputBytes int64

	// SubtreeSorts is x, the number of subtree sorts performed
	// (Lemma 4.7 bounds it by O(N/t)).
	SubtreeSorts int
	// InternalSorts counts subtree sorts served by the in-memory
	// recursive sorter; ExternalSorts counts key-path merge-sort
	// fallbacks (Line 11's two options).
	InternalSorts int
	ExternalSorts int
	// UnsortedRuns counts subtrees written to disk without sorting
	// (depth-limited mode, subtrees rooted exactly at level d+1).
	UnsortedRuns int
	// IncompleteRuns counts incomplete sorted runs cut by graceful
	// degeneration.
	IncompleteRuns int
	// MergedSubtrees counts subtree sorts that merged incomplete runs.
	MergedSubtrees int

	// MaxSubtreeBytes is the largest subtree handed to a single sort; the
	// analysis bounds it by min(kt, N) elements.
	MaxSubtreeBytes int64
	// RunBlocks is the total number of device blocks occupied by sorted
	// runs (Lemma 4.8 bounds it by O(N/B)).
	RunBlocks int
	// ScratchBlocks is the total scratch-device footprint (runs plus
	// paged-out stack blocks) — the disk space a capacity planner must
	// provision beyond input and output.
	ScratchBlocks int64
	// Threshold is the effective t used.
	Threshold int

	// IOs is the per-category I/O breakdown at completion.
	IOs map[string]em.IOCount
}

// TotalIOs sums the report's I/O breakdown.
func (r *Report) TotalIOs() int64 {
	var total int64
	for _, c := range r.IOs {
		total += c.Total()
	}
	return total
}

// validate checks options against the environment.
func (o *Options) validate(env *em.Env) (keysCrit *keys.Criterion, threshold int, err error) {
	if env.Budget.Total() < MinMemBlocks {
		return nil, 0, fmt.Errorf("core: memory budget %d blocks below NEXSORT's minimum %d",
			env.Budget.Total(), MinMemBlocks)
	}
	if o.Degenerate && env.Budget.Total() < MinMemBlocksDegenerate {
		return nil, 0, fmt.Errorf("core: graceful degeneration needs at least %d memory blocks, got %d",
			MinMemBlocksDegenerate, env.Budget.Total())
	}
	crit := o.Criterion
	if crit == nil {
		crit = &keys.Criterion{}
	}
	if crit.StateSize() > env.Conf.BlockSize {
		return nil, 0, fmt.Errorf("core: criterion state (%d bytes, KeyCap-driven) exceeds the %d-byte block size; lower Criterion.KeyCap",
			crit.StateSize(), env.Conf.BlockSize)
	}
	t := o.Threshold
	if t == 0 {
		t = 2 * env.Conf.BlockSize
	}
	if t < 1 {
		return nil, 0, fmt.Errorf("core: sort threshold %d out of range", t)
	}
	if o.DepthLimit < 0 {
		return nil, 0, fmt.Errorf("core: depth limit %d out of range", o.DepthLimit)
	}
	return crit, t, nil
}
