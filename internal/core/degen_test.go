package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/em"
	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

// flatDoc builds a two-level document (root + n children), the shape where
// unmodified NEXSORT wastes a pass and graceful degeneration pays off.
func flatDoc(n int, seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	sb.WriteString(`<root key="r">`)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, `<row key="%05d" pad="ppppppppppppppppppppppppp"/>`, rng.Intn(100000))
	}
	sb.WriteString("</root>")
	return sb.String()
}

func flatCriterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 12}
}

func TestDegenerateFlatDocumentCorrect(t *testing.T) {
	doc := flatDoc(800, 4)
	c := flatCriterion()
	want := oracle(t, doc, c, 0)

	envOff := newEnv(t, 256, MinMemBlocksDegenerate)
	gotOff, repOff := nexsort(t, envOff, doc, Options{Criterion: c})

	envOn := newEnv(t, 256, MinMemBlocksDegenerate)
	gotOn, repOn := nexsort(t, envOn, doc, Options{Criterion: c, Degenerate: true})

	if gotOff != want {
		t.Error("degeneration-off output differs from oracle")
	}
	if gotOn != want {
		t.Error("degeneration-on output differs from oracle")
	}
	if repOn.IncompleteRuns == 0 {
		t.Fatalf("expected incomplete runs on a flat document; report = %+v", repOn)
	}
	if repOn.MergedSubtrees == 0 {
		t.Error("expected the root sort to merge incomplete runs")
	}
	if repOff.IncompleteRuns != 0 {
		t.Error("degeneration off must not cut incomplete runs")
	}

	// The optimization's whole point: the flat document's children no
	// longer ride the data stack to disk, so data-stack paging drops to
	// (near) zero while the unoptimized run pages most of the input.
	offStack := envOff.Stats.IOs(em.CatDataStack)
	onStack := envOn.Stats.IOs(em.CatDataStack)
	if onStack >= offStack {
		t.Errorf("degeneration did not reduce data-stack paging: on=%d off=%d", onStack, offStack)
	}
	if onStack > offStack/4 {
		t.Errorf("expected a large reduction: on=%d off=%d", onStack, offStack)
	}
}

func TestDegenerateNestedDocument(t *testing.T) {
	// Degeneration must stay correct when flat regions appear at several
	// depths: each group is wide, and the root has many groups.
	rng := rand.New(rand.NewSource(11))
	var sb strings.Builder
	sb.WriteString(`<root key="r">`)
	for g := 0; g < 20; g++ {
		fmt.Fprintf(&sb, `<group key="g%02d">`, rng.Intn(100))
		for i := 0; i < 60; i++ {
			fmt.Fprintf(&sb, `<row key="%05d" pad="pppppppppppppppp"/>`, rng.Intn(100000))
		}
		sb.WriteString("</group>")
	}
	sb.WriteString("</root>")
	doc := sb.String()
	c := flatCriterion()

	env := newEnv(t, 256, MinMemBlocksDegenerate)
	got, rep := nexsort(t, env, doc, Options{Criterion: c, Degenerate: true, Threshold: 512})
	if got != oracle(t, doc, c, 0) {
		t.Error("nested degeneration output differs from oracle")
	}
	if rep.IncompleteRuns == 0 {
		t.Errorf("expected cuts inside wide groups; report = %+v", rep)
	}
}

func TestDegenerateWithDepthLimit(t *testing.T) {
	doc := `<root key="r">` + strings.Repeat(`<g key="b"><i key="z" pad="pppppppppppppppppppppppppppppp"/><i key="a" pad="pppppppppppppppppppppppppppppp"/></g><g key="a" pad="pppppppppppppppppppppppppppp"/>`, 60) + `</root>`
	c := flatCriterion()
	for depth := 1; depth <= 3; depth++ {
		env := newEnv(t, 256, MinMemBlocksDegenerate)
		got, _ := nexsort(t, env, doc, Options{Criterion: c, Degenerate: true, DepthLimit: depth})
		if got != oracle(t, doc, c, depth) {
			t.Errorf("depth %d: degeneration output differs from oracle", depth)
		}
	}
}

// TestDegenerateQuick: degeneration on/off agree with the oracle across
// random documents, geometries and thresholds.
func TestDegenerateQuick(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 12}
	f := func(seed int64, thrRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomXML(rng, 150)
		env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: MinMemBlocksDegenerate + rng.Intn(6)})
		if err != nil {
			return false
		}
		defer env.Close()
		var out strings.Builder
		opts := Options{Criterion: c, Degenerate: true, Threshold: 1 + int(thrRaw)%512}
		if _, err := Sort(env, strings.NewReader(doc), &out, opts); err != nil {
			return false
		}
		n, err := xmltree.ParseString(doc)
		if err != nil {
			return false
		}
		n.ComputeKeys(c)
		n.SortRecursive()
		return out.String() == n.XMLString() && env.Budget.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
