package core

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

// paperDoc is D1 from Figure 1 (pre-sorting order).
const paperDoc = `<company>
  <region name="NE">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
  <region name="AC"><branch name="Miami"/><branch name="Durham"/></region>
</company>`

func paperCriterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
		{Tag: "", Source: keys.ByTag()},
	}, KeyCap: 24}
}

func newEnv(t *testing.T, blockSize, memBlocks int) *em.Env {
	t.Helper()
	env, err := em.NewEnv(em.Config{BlockSize: blockSize, MemBlocks: memBlocks})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env
}

// oracle sorts a document with the in-memory recursive sorter.
func oracle(t *testing.T, doc string, c *keys.Criterion, depth int) string {
	t.Helper()
	n, err := xmltree.ParseString(doc)
	if err != nil {
		t.Fatal(err)
	}
	n.ComputeKeys(c)
	n.SortToDepth(depth)
	return n.XMLString()
}

// nexsort runs Sort and returns the output document and report.
func nexsort(t *testing.T, env *em.Env, doc string, opts Options) (string, *Report) {
	t.Helper()
	var out strings.Builder
	rep, err := Sort(env, strings.NewReader(doc), &out, opts)
	if err != nil {
		t.Fatal(err)
	}
	if env.Budget.InUse() != 0 {
		t.Fatalf("sort leaked %d budget blocks", env.Budget.InUse())
	}
	return out.String(), rep
}

func TestSortPaperDocument(t *testing.T) {
	env := newEnv(t, 128, 16)
	got, rep := nexsort(t, env, paperDoc, Options{Criterion: paperCriterion()})
	want := oracle(t, paperDoc, paperCriterion(), 0)
	if got != want {
		t.Errorf("output:\n got %s\nwant %s", got, want)
	}
	// company + 2 regions + 4 branches + 2 employees + name + phone = 11.
	if rep.Elements != 11 {
		t.Errorf("Elements = %d, want 11", rep.Elements)
	}
	if rep.TextNodes != 2 {
		t.Errorf("TextNodes = %d, want 2", rep.TextNodes)
	}
	if rep.Height != 5 {
		t.Errorf("Height = %d, want 5", rep.Height)
	}
	if rep.SubtreeSorts < 1 {
		t.Error("expected at least the root sort")
	}
	if rep.OutputBytes == 0 || rep.InputBytes == 0 {
		t.Errorf("byte counts: in=%d out=%d", rep.InputBytes, rep.OutputBytes)
	}
}

// TestThresholdCollapse reproduces Figure 2: a subtree at least t bytes is
// collapsed into a run when its end tag arrives; smaller subtrees ride
// along until an ancestor is sorted. With a huge threshold only the root
// sort happens; with a tiny one every element gets its own run.
func TestThresholdCollapse(t *testing.T) {
	env1 := newEnv(t, 128, 16)
	_, repBig := nexsort(t, env1, paperDoc, Options{Criterion: paperCriterion(), Threshold: 1 << 20})
	if repBig.SubtreeSorts != 1 {
		t.Errorf("huge threshold: %d subtree sorts, want 1 (root only)", repBig.SubtreeSorts)
	}

	env2 := newEnv(t, 128, 16)
	_, repTiny := nexsort(t, env2, paperDoc, Options{Criterion: paperCriterion(), Threshold: 1})
	// With t=1 every element whose complete subtree is on the stack is
	// collapsed: all 11 elements.
	if repTiny.SubtreeSorts != 11 {
		t.Errorf("tiny threshold: %d subtree sorts, want 11", repTiny.SubtreeSorts)
	}
	// Both produce identical output.
	want := oracle(t, paperDoc, paperCriterion(), 0)
	env3 := newEnv(t, 128, 16)
	got, _ := nexsort(t, env3, paperDoc, Options{Criterion: paperCriterion(), Threshold: 1})
	if got != want {
		t.Error("tiny-threshold output differs from oracle")
	}
}

func TestMatchesBaselineByteForByte(t *testing.T) {
	c := paperCriterion()
	envA := newEnv(t, 128, 16)
	nexOut, _ := nexsort(t, envA, paperDoc, Options{Criterion: c})

	envB := newEnv(t, 128, 16)
	var mergeOut strings.Builder
	if _, err := extsort.SortXML(envB, c, strings.NewReader(paperDoc), &mergeOut, extsort.XMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if nexOut != mergeOut.String() {
		t.Errorf("NEXSORT and merge-sort baseline disagree:\n nex %s\n ems %s", nexOut, mergeOut.String())
	}
}

func TestExternalSubtreeSortPath(t *testing.T) {
	// A single giant flat element under the root forces the root subtree
	// sort to exceed the in-memory area (without degeneration), taking
	// the key-path external fallback.
	var sb strings.Builder
	sb.WriteString(`<root key="r">`)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, `<item key="%04d">some text payload %d</item>`, rng.Intn(10000), i)
	}
	sb.WriteString(`</root>`)
	doc := sb.String()
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 16}

	env := newEnv(t, 256, MinMemBlocks)
	got, rep := nexsort(t, env, doc, Options{Criterion: c})
	if rep.ExternalSorts == 0 {
		t.Fatalf("expected an external subtree sort; report = %+v", rep)
	}
	if got != oracle(t, doc, c, 0) {
		t.Error("external-fallback output differs from oracle")
	}
}

func TestDepthLimitedSort(t *testing.T) {
	doc := `<r key="1"><g key="b"><i key="z"><leaf key="2"/><leaf key="1"/></i><i key="a"/></g><g key="a"><i key="q"><leaf key="9"/><leaf key="0"/></i></g></r>`
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 16}
	for depth := 1; depth <= 4; depth++ {
		env := newEnv(t, 128, 16)
		got, _ := nexsort(t, env, doc, Options{Criterion: c, DepthLimit: depth, Threshold: 1})
		want := oracle(t, doc, c, depth)
		if got != want {
			t.Errorf("depth %d:\n got %s\nwant %s", depth, got, want)
		}
	}
}

func TestComplexOrderingCriteria(t *testing.T) {
	doc := `<staff key="s">
	  <emp><info><name><last>Zeta</last></name></info></emp>
	  <emp><info><name><last>Alpha</last></name></info></emp>
	  <emp><info><name><last>Mid</last></name></info></emp>
	</staff>`
	c := &keys.Criterion{
		Rules:  []keys.Rule{{Tag: "emp", Source: keys.ByPath("info", "name", "last")}},
		KeyCap: 16,
	}
	env := newEnv(t, 128, 16)
	got, _ := nexsort(t, env, doc, Options{Criterion: c})
	want := oracle(t, doc, c, 0)
	if got != want {
		t.Errorf("path-criterion sort:\n got %s\nwant %s", got, want)
	}
}

func TestComplexCriteriaExternalFallback(t *testing.T) {
	// Path criterion + oversized subtree: exercises the key sidecar.
	var sb strings.Builder
	sb.WriteString("<root>")
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 300; i++ {
		fmt.Fprintf(&sb, "<e><v>k%04d</v>filler-%d</e>", rng.Intn(10000), i)
	}
	sb.WriteString("</root>")
	doc := sb.String()
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByPath("v")}}, KeyCap: 16}

	env := newEnv(t, 256, MinMemBlocks+3)
	got, rep := nexsort(t, env, doc, Options{Criterion: c})
	if rep.ExternalSorts == 0 {
		t.Fatalf("expected the external fallback; report = %+v", rep)
	}
	if got != oracle(t, doc, c, 0) {
		t.Error("sidecar-keyed external sort differs from oracle")
	}
}

func TestNilCriterionPreservesDocumentOrder(t *testing.T) {
	doc := `<r><b x="2"/><a x="1"/>text<c/></r>`
	env := newEnv(t, 128, 16)
	got, _ := nexsort(t, env, doc, Options{})
	want := `<r><b x="2"></b><a x="1"></a>text<c></c></r>`
	if got != want {
		t.Errorf("empty criterion:\n got %s\nwant %s", got, want)
	}
}

func TestIndentedOutput(t *testing.T) {
	env := newEnv(t, 128, 16)
	got, _ := nexsort(t, env, `<r><b key="2"/><a key="1"/></r>`, Options{
		Criterion: &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 8},
		Indent:    "  ",
	})
	want := "<r>\n  <a key=\"1\"></a>\n  <b key=\"2\"></b>\n</r>\n"
	if got != want {
		t.Errorf("indented output:\n got %q\nwant %q", got, want)
	}
}

func TestErrorCases(t *testing.T) {
	c := paperCriterion()
	t.Run("malformed", func(t *testing.T) {
		env := newEnv(t, 128, 16)
		_, err := Sort(env, strings.NewReader("<a><b></a>"), io.Discard, Options{Criterion: c})
		if err == nil {
			t.Error("malformed input should fail")
		}
		if env.Budget.InUse() != 0 {
			t.Errorf("leaked %d blocks on error", env.Budget.InUse())
		}
	})
	t.Run("empty", func(t *testing.T) {
		env := newEnv(t, 128, 16)
		if _, err := Sort(env, strings.NewReader("  "), io.Discard, Options{Criterion: c}); err == nil {
			t.Error("empty input should fail")
		}
	})
	t.Run("tiny budget", func(t *testing.T) {
		env := newEnv(t, 128, MinMemBlocks-1)
		if _, err := Sort(env, strings.NewReader("<a/>"), io.Discard, Options{Criterion: c}); err == nil {
			t.Error("budget below the minimum should fail")
		}
	})
	t.Run("oversized key cap", func(t *testing.T) {
		env := newEnv(t, 64, 16)
		big := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByTag()}}, KeyCap: 128}
		if _, err := Sort(env, strings.NewReader("<a/>"), io.Discard, Options{Criterion: big}); err == nil {
			t.Error("criterion state larger than a block should fail")
		}
	})
	t.Run("negative depth", func(t *testing.T) {
		env := newEnv(t, 128, 16)
		if _, err := Sort(env, strings.NewReader("<a/>"), io.Discard, Options{Criterion: c, DepthLimit: -1}); err == nil {
			t.Error("negative depth limit should fail")
		}
	})
}

// TestGeneratedDocumentAgainstOracle sorts a generated document of a few
// thousand elements under a tight memory budget and cross-checks.
func TestGeneratedDocumentAgainstOracle(t *testing.T) {
	var buf strings.Builder
	if _, err := (gen.CustomSpec{Fanouts: []int{12, 12, 12}, Seed: 5, ElemSize: 60}).Write(&buf); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 16}

	env := newEnv(t, 512, MinMemBlocks)
	got, rep := nexsort(t, env, doc, Options{Criterion: c})
	if got != oracle(t, doc, c, 0) {
		t.Error("generated-document output differs from oracle")
	}
	if rep.Elements != 1885 { // 1 + 12 + 144 + 1728
		t.Errorf("Elements = %d", rep.Elements)
	}
	if rep.SubtreeSorts < 10 {
		t.Errorf("SubtreeSorts = %d, expected many under a small threshold", rep.SubtreeSorts)
	}
	// Cross-check with the baseline too: byte-identical output.
	envB := newEnv(t, 512, MinMemBlocks)
	var mergeOut strings.Builder
	if _, err := extsort.SortXML(envB, c, strings.NewReader(doc), &mergeOut, extsort.XMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if mergeOut.String() != got {
		t.Error("NEXSORT and baseline disagree on the generated document")
	}
}

// TestSortQuick: NEXSORT equals the oracle on random documents across
// random geometries, thresholds and depth limits.
func TestSortQuick(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 12}
	f := func(seed int64, thrRaw, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomXML(rng, 120)
		env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: MinMemBlocks + rng.Intn(8)})
		if err != nil {
			return false
		}
		defer env.Close()
		opts := Options{
			Criterion:  c,
			Threshold:  1 + int(thrRaw)%512,
			DepthLimit: int(depthRaw) % 5, // 0 = unlimited
		}
		var out strings.Builder
		if _, err := Sort(env, strings.NewReader(doc), &out, opts); err != nil {
			return false
		}
		n, err := xmltree.ParseString(doc)
		if err != nil {
			return false
		}
		n.ComputeKeys(c)
		n.SortToDepth(opts.DepthLimit)
		return out.String() == n.XMLString() && env.Budget.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// randomXML builds a random well-formed document with attribute keys.
func randomXML(rng *rand.Rand, maxElems int) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := string(rune('a' + rng.Intn(3)))
		fmt.Fprintf(&sb, `<%s k="%d">`, tag, rng.Intn(30))
		budget--
		for i := rng.Intn(4); i > 0; i-- {
			if rng.Intn(3) == 0 {
				fmt.Fprintf(&sb, "t%d", rng.Intn(10))
			} else if depth < 10 {
				budget = emit(depth+1, budget)
			}
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString(`<root k="r">`)
	budget := 1 + rng.Intn(maxElems)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}

// TestCompactionIdenticalOutput verifies the Section 3.2 compaction
// techniques: identical output, smaller working structures.
func TestCompactionIdenticalOutput(t *testing.T) {
	// Verbose, repetitive markup — the case the paper's compaction
	// targets: "a document usually contains many repeated occurrences of
	// labels such as tag and attribute names".
	rng := rand.New(rand.NewSource(8))
	var buf strings.Builder
	buf.WriteString(`<inventory-database sort-key="root">`)
	for i := 0; i < 120; i++ {
		fmt.Fprintf(&buf, `<warehouse-record sort-key="%04d"><quantity-on-hand sort-key="%d"/></warehouse-record>`,
			rng.Intn(10000), rng.Intn(10))
	}
	buf.WriteString(`</inventory-database>`)
	doc := buf.String()
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("sort-key")}}, KeyCap: 16}

	envPlain := newEnv(t, 512, 16)
	plain, repPlain := nexsort(t, envPlain, doc, Options{Criterion: c})
	envComp := newEnv(t, 512, 16)
	comp, repComp := nexsort(t, envComp, doc, Options{Criterion: c, Compact: true})

	if plain != comp {
		t.Error("compaction changed the output document")
	}
	if repComp.RunBlocks >= repPlain.RunBlocks {
		t.Errorf("compaction did not shrink runs: %d vs %d blocks", repComp.RunBlocks, repPlain.RunBlocks)
	}
	if envComp.Stats.TotalIOs() >= envPlain.Stats.TotalIOs() {
		t.Errorf("compaction did not reduce I/O: %d vs %d", envComp.Stats.TotalIOs(), envPlain.Stats.TotalIOs())
	}
}

// TestCompactionQuick: compaction preserves output across random documents
// and option mixes (with degeneration and depth limits thrown in).
func TestCompactionQuick(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 12}
	f := func(seed int64, degen bool, depthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		doc := randomXML(rng, 100)
		run := func(compactOn bool) (string, bool) {
			env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: MinMemBlocksDegenerate})
			if err != nil {
				return "", false
			}
			defer env.Close()
			var out strings.Builder
			opts := Options{Criterion: c, Compact: compactOn, Degenerate: degen, DepthLimit: int(depthRaw) % 4}
			if _, err := Sort(env, strings.NewReader(doc), &out, opts); err != nil {
				return "", false
			}
			return out.String(), true
		}
		plain, ok1 := run(false)
		comp, ok2 := run(true)
		return ok1 && ok2 && plain == comp
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestRecordOrderRoundTrip implements the paper's order-preserving recipe:
// sort with a recorded sequence attribute, then sort the result by that
// attribute — the original document comes back (plus the stamps).
func TestRecordOrderRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		// Element-only documents: text nodes cannot carry the stamp, so
		// their position among element siblings is not restorable (a
		// limitation the paper's recipe shares).
		doc := randomElemXML(rng, 80)
		c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 12}

		env1 := mustEnv()
		defer env1.Close()
		var sorted strings.Builder
		if _, err := Sort(env1, strings.NewReader(doc), &sorted, Options{Criterion: c, RecordOrder: "nx-seq"}); err != nil {
			return false
		}
		// Every element now carries the stamp.
		if !strings.Contains(sorted.String(), `nx-seq="`) {
			return false
		}

		env2 := mustEnv()
		defer env2.Close()
		seqCrit := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("nx-seq")}}, KeyCap: 16}
		var restored strings.Builder
		if _, err := Sort(env2, strings.NewReader(sorted.String()), &restored, Options{Criterion: seqCrit}); err != nil {
			return false
		}

		// Stripping the stamps must reproduce the original document.
		orig, err := xmltree.ParseString(doc)
		if err != nil {
			return false
		}
		back, err := xmltree.ParseString(restored.String())
		if err != nil {
			return false
		}
		stripAttr(back, "nx-seq")
		return xmltree.Equal(orig, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomElemXML is randomXML without text nodes.
func randomElemXML(rng *rand.Rand, maxElems int) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := string(rune('a' + rng.Intn(3)))
		fmt.Fprintf(&sb, `<%s k="%d">`, tag, rng.Intn(30))
		budget--
		for i := rng.Intn(4); i > 0 && depth < 10; i-- {
			budget = emit(depth+1, budget)
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString(`<root k="r">`)
	budget := 1 + rng.Intn(maxElems)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</root>")
	return sb.String()
}

func mustEnv() *em.Env {
	env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: 16})
	if err != nil {
		panic(err)
	}
	return env
}

func stripAttr(n *xmltree.Node, name string) {
	kept := n.Attrs[:0]
	for _, a := range n.Attrs {
		if a.Name != name {
			kept = append(kept, a)
		}
	}
	n.Attrs = kept
	for _, ch := range n.Children {
		stripAttr(ch, name)
	}
}

// TestHeterogeneousSchemaAtScale sorts an auction-site document (XMark-ish
// schema, multi-rule criterion, mixed text) with all three implementations
// and requires byte-identical output.
func TestHeterogeneousSchemaAtScale(t *testing.T) {
	var buf strings.Builder
	st, err := (gen.SiteSpec{Items: 120, MaxBids: 8, Seed: 4}).Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "item", Source: keys.ByAttr("id")},
		{Tag: "bid", Source: keys.ByAttr("amount")},
	}, KeyCap: 16}

	envN := newEnv(t, 1024, 24)
	nexOut, rep := nexsort(t, envN, doc, Options{Criterion: c})
	if rep.Elements != st.Elements {
		t.Errorf("Elements = %d, want %d", rep.Elements, st.Elements)
	}
	want := oracle(t, doc, c, 0)
	if nexOut != want {
		t.Error("NEXSORT disagrees with the oracle on the site schema")
	}
	envM := newEnv(t, 1024, 24)
	var msOut strings.Builder
	if _, err := extsort.SortXML(envM, c, strings.NewReader(doc), &msOut, extsort.XMLOptions{}); err != nil {
		t.Fatal(err)
	}
	if msOut.String() != want {
		t.Error("merge sort disagrees with the oracle on the site schema")
	}
}

func TestReportTotalIOs(t *testing.T) {
	env := newEnv(t, 128, 16)
	_, rep := nexsort(t, env, paperDoc, Options{Criterion: paperCriterion()})
	var want int64
	for _, c := range rep.IOs {
		want += c.Total()
	}
	if got := rep.TotalIOs(); got != want || got == 0 {
		t.Errorf("TotalIOs = %d, want %d", got, want)
	}
}
