package core

import (
	"fmt"
	"io"
	"sync"

	"nexsort/internal/em"
	"nexsort/internal/runstore"
	"nexsort/internal/xmltree"
)

// Parallel subtree sorting. Sibling subtrees share no stack state: once a
// complete subtree's bytes are popped off the data stack, sorting them and
// writing the run touches only the subtree's own snapshot, its run writer,
// and the (concurrency-safe) device. sortSubtree therefore dispatches the
// in-memory case to a pooled worker when the budget admits a second
// working set, and the main goroutine keeps scanning the input — the next
// sibling fills while the previous one sorts and spills.
//
// Two rules keep the execution byte-identical to sequential at every
// parallelism level, with unchanged block-transfer counts:
//
//  1. Admission reads effectiveFree() — the budget as a sequential run
//     would see it, i.e. actual free blocks plus everything in-flight
//     workers still hold. The internal-vs-external routing of every
//     subtree (which determines all I/O) is thus independent of worker
//     timing. Grant/release and the in-flight tally move together under
//     parMu, so the figure is exact, never racy.
//  2. Every non-dispatched path (external sort, degeneration, incomplete
//     merges, error unwinds, the output phase) first drains the pool, so
//     code that sizes itself by Budget.Free() — the key-path fallback,
//     the child-record merger — sees exactly the sequential value.
//
// The subtree's bytes are snapshotted (read off the data stack) on the
// main goroutine before dispatch — the same charged reads the sequential
// path performs — so the worker does no stack I/O at all.
type parState struct {
	pool *em.Pool
	wg   sync.WaitGroup

	mu       sync.Mutex
	inflight int // budget blocks held by in-flight workers
	firstErr error
	panicVal any
}

// effectiveFree returns the free-block count a sequential execution would
// observe at this point of the scan: blocks actually free plus blocks held
// by in-flight subtree workers (a sequential run would have already
// released those).
func (s *sorter) effectiveFree() int {
	s.par.mu.Lock()
	defer s.par.mu.Unlock()
	return s.env.Budget.Free() + s.par.inflight
}

// grantWorker reserves n blocks for a worker and records them in the
// in-flight tally atomically with the grant.
func (s *sorter) grantWorker(n int) error {
	s.par.mu.Lock()
	defer s.par.mu.Unlock()
	if err := s.env.Budget.Grant(n); err != nil {
		return err
	}
	s.par.inflight += n
	return nil
}

// releaseWorker returns a worker's blocks, keeping the tally paired.
func (s *sorter) releaseWorker(n int) {
	s.par.mu.Lock()
	s.env.Budget.Release(n)
	s.par.inflight -= n
	s.par.mu.Unlock()
}

// workerErr reports (without waiting) a worker failure recorded so far,
// re-raising a worker panic on the calling goroutine.
func (s *sorter) workerErr() error {
	s.par.mu.Lock()
	defer s.par.mu.Unlock()
	if s.par.panicVal != nil {
		pv := s.par.panicVal
		s.par.panicVal = nil
		panic(pv)
	}
	return s.par.firstErr
}

// drainWorkers blocks until every dispatched subtree sort has finished and
// released its blocks, then surfaces any worker failure. It must be called
// before any code path that depends on Budget.Free() or on runs being
// sealed. Workers never call it, so it cannot deadlock.
func (s *sorter) drainWorkers() error {
	s.par.wg.Wait()
	return s.workerErr()
}

// tryDispatchSubtreeSort attempts to run the in-memory sort of the subtree
// [start, start+size) on a pool worker. It returns ok=false (and no error)
// when the pool is busy or the budget cannot admit a second working set —
// the caller then drains and sorts sequentially. On ok=true the run is
// created and will be sealed by the worker; the caller may immediately
// truncate the data stack and continue scanning.
func (s *sorter) tryDispatchSubtreeSort(start, size int64, relLimit int) (runstore.RunID, bool, error) {
	if err := s.workerErr(); err != nil {
		return 0, false, err
	}
	pool := s.par.pool
	if !pool.TryAcquire() {
		return 0, false, nil
	}
	bs := int64(s.env.Conf.BlockSize)
	blocks := int((size + bs - 1) / bs)
	// The worker's working set: the raw snapshot (blocks), the rebuilt
	// tree — modelled at the snapshot's footprint, as the sequential
	// grant in internalSubtreeSort models it — and the run writer's block.
	held := 2*blocks + 1
	if err := s.grantWorker(held); err != nil {
		pool.Release()
		return 0, false, nil // budget pressure: sort inline instead
	}
	snap, err := s.snapshotRange(start, size)
	if err != nil {
		s.releaseWorker(held)
		pool.Release()
		return 0, false, err
	}
	// The writer block is inside the worker's grant, so the store must not
	// charge it again.
	runID, w, err := s.store.Create(em.CatSubtreeSort, nil)
	if err != nil {
		snap.release(s.env.Dev.Frames())
		s.releaseWorker(held)
		pool.Release()
		return 0, false, err
	}
	s.par.wg.Add(1)
	go func() {
		defer s.par.wg.Done()
		defer pool.Release()
		defer s.releaseWorker(held)
		// Frames return to the pool before the blocks that covered them
		// return to the budget (defers run last-in first-out), keeping
		// live-frames <= blocks-in-use at every instant.
		defer snap.release(s.env.Dev.Frames())
		defer func() {
			if r := recover(); r != nil {
				s.par.mu.Lock()
				if s.par.panicVal == nil {
					s.par.panicVal = r
				}
				s.par.mu.Unlock()
			}
		}()
		err := sortSnapshot(snap, relLimit, w)
		if cerr := w.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			s.par.mu.Lock()
			if s.par.firstErr == nil {
				s.par.firstErr = err
			}
			s.par.mu.Unlock()
		}
	}()
	return runID, true, nil
}

// snapshotRange copies the data-stack range [start, Size()) into a chain of
// pooled frames on the calling goroutine — the `blocks` share of the
// worker's grant pins exactly that many frames. The reads are charged
// exactly as the sequential in-memory sort's ReadRange pass, so dispatching
// changes no counter.
func (s *sorter) snapshotRange(start, size int64) (*frameChain, error) {
	reader, err := s.data.ReadRange(s.env.Budget, start)
	if err != nil {
		return nil, err
	}
	defer reader.Close()
	pool := s.env.Dev.Frames()
	chain := &frameChain{size: size, fsize: int64(pool.FrameSize())}
	for off := int64(0); off < size; off += chain.fsize {
		f := pool.Acquire()
		chain.frames = append(chain.frames, f)
		n := chain.fsize
		if rest := size - off; rest < n {
			n = rest
		}
		if _, err := io.ReadFull(reader, f.Bytes()[:n]); err != nil {
			chain.release(pool)
			return nil, err
		}
	}
	return chain, nil
}

// frameChain is a worker's private subtree snapshot: the encoded bytes
// pinned across budget-backed frames instead of one variable-sized heap
// slab, read back like a sliceCursor spanning the chain.
type frameChain struct {
	frames []em.Frame
	size   int64
	fsize  int64
	pos    int64
}

func (c *frameChain) ReadByte() (byte, error) {
	if c.pos >= c.size {
		return 0, io.EOF
	}
	b := c.frames[c.pos/c.fsize].Bytes()[c.pos%c.fsize]
	c.pos++
	return b, nil
}

func (c *frameChain) Read(p []byte) (int, error) {
	if c.pos >= c.size {
		return 0, io.EOF
	}
	frame := c.frames[c.pos/c.fsize].Bytes()
	off := c.pos % c.fsize
	chunk := c.fsize - off
	if rest := c.size - c.pos; rest < chunk {
		chunk = rest
	}
	n := copy(p, frame[off:off+chunk])
	c.pos += int64(n)
	return n, nil
}

func (c *frameChain) release(pool *em.FramePool) {
	for _, f := range c.frames {
		pool.Release(f)
	}
	c.frames = nil
}

// sortSnapshot is the worker body: rebuild the subtree from its encoded
// snapshot, sort it recursively, and stream it into the run. It is the
// exact computation of internalSubtreeSort with the stack read replaced by
// the in-memory snapshot.
func sortSnapshot(snap *frameChain, relLimit int, w *runstore.Writer) error {
	tree, err := xmltree.FromTokens(&tokenSource{r: snap})
	if err != nil {
		return fmt.Errorf("core: rebuilding subtree: %w", err)
	}
	tree.SortToDepth(relLimit) // 0 sorts head to toe
	return tree.EmitTokens(w.WriteToken)
}
