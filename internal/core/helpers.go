package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/keypath"
	"nexsort/internal/runstore"
	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
	"nexsort/internal/xmltree"
)

// keyPathSortTokens runs a depth-aware key-path external merge sort over an
// annotated token stream describing one subtree, writing the sorted token
// stream into a run. Start tokens must carry keys (directly for
// start-resolvable criteria, via keyedSource otherwise). relLimit > 0
// bounds sorting to the top relLimit levels: deeper elements degrade to the
// empty key, so the (key, seq) order reduces to document order there.
func keyPathSortTokens(env *em.Env, src xmltree.TokenSource, relLimit int, w *runstore.Writer) error {
	sorter, err := extsort.NewKernel(env, em.CatSubtreeSort, sortkey.KeyPath(), env.Budget.Free())
	if err != nil {
		return err
	}
	defer sorter.Close()

	extract := keypath.NewExtractor()
	var encBuf []byte
	for {
		tok, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if tok.Kind == xmltok.KindStart {
			if relLimit > 0 && extract.Depth()+1 > relLimit+1 {
				tok = tok.WithKey("")
			} else if !tok.HasKey {
				return fmt.Errorf("core: external subtree sort saw a keyless start tag <%s>", tok.Name)
			}
		}
		rec, ok, err := extract.OnToken(tok)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		encBuf = keypath.AppendRecord(encBuf[:0], rec)
		if err := sorter.Add(encBuf); err != nil {
			return err
		}
	}

	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	builder := keypath.NewBuilder(w.WriteToken)
	var recDec keypath.Decoder
	for {
		raw, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		rec, err := recDec.ReadRecord(&sliceCursor{buf: raw})
		if err != nil {
			return err
		}
		if err := builder.OnRecord(rec); err != nil {
			return err
		}
	}
	return builder.Finish()
}

// sidecarBlocks is the memory share of the key sidecar's sorter during a
// path-criteria external subtree sort.
const sidecarBlocks = 3

// buildKeySidecar scans the subtree at start once and produces an iterator
// of (preorder index, key) records in preorder. Keys resolve on end tags,
// i.e. in postorder; an external sort on the preorder index restores
// preorder so the second scan can zip keys onto start tags.
func (s *sorter) buildKeySidecar(start int64) (*keySidecar, error) {
	reader, err := s.data.ReadRange(s.env.Budget, start)
	if err != nil {
		return nil, err
	}
	// The sidecar sorts on the first 8 raw bytes — the big-endian preorder
	// index — which is already a normalized key, so the kernel is a pure
	// fixed-prefix memcmp.
	sorter, err := extsort.NewKernel(s.env, em.CatSubtreeSort, sortkey.FixedPrefix(8), sidecarBlocks)
	if err != nil {
		reader.Close()
		return nil, err
	}
	var openPre []int64 // preorder indices of open elements (O(depth))
	pre := int64(0)
	var rec []byte
	var dec xmltok.Decoder
	for {
		tok, err := dec.ReadToken(reader)
		if err == io.EOF {
			break
		}
		if err != nil {
			reader.Close()
			sorter.Close()
			return nil, err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			openPre = append(openPre, pre)
			pre++
		case xmltok.KindEnd:
			idx := openPre[len(openPre)-1]
			openPre = openPre[:len(openPre)-1]
			rec = rec[:0]
			rec = binary.BigEndian.AppendUint64(rec, uint64(idx))
			rec = append(rec, tok.Key...)
			if err := sorter.Add(rec); err != nil {
				reader.Close()
				sorter.Close()
				return nil, err
			}
		}
	}
	reader.Close()
	it, err := sorter.Sort()
	if err != nil {
		sorter.Close()
		return nil, err
	}
	return &keySidecar{sorter: sorter, it: it}, nil
}

// keySidecar iterates (preorder index, key) records in preorder.
type keySidecar struct {
	sorter *extsort.Sorter
	it     *extsort.Iterator
}

func (k *keySidecar) next() (idx int64, key string, err error) {
	raw, err := k.it.Next()
	if err != nil {
		return 0, "", err
	}
	if len(raw) < 8 {
		return 0, "", fmt.Errorf("core: corrupt sidecar record")
	}
	return int64(binary.BigEndian.Uint64(raw[:8])), string(raw[8:]), nil
}

func (k *keySidecar) Close() {
	k.it.Close()
	k.sorter.Close()
}

// keyedSource zips sidecar keys onto the start tags of a second subtree
// scan, so key-path extraction sees a start-resolvable stream.
type keyedSource struct {
	inner   *tokenSource
	sidecar *keySidecar
	pre     int64
}

func (k *keyedSource) Next() (xmltok.Token, error) {
	tok, err := k.inner.Next()
	if err != nil {
		return tok, err
	}
	if tok.Kind == xmltok.KindStart {
		idx, key, err := k.sidecar.next()
		if err != nil {
			return tok, fmt.Errorf("core: key sidecar exhausted early: %w", err)
		}
		if idx != k.pre {
			return tok, fmt.Errorf("core: key sidecar out of sync: got %d, want %d", idx, k.pre)
		}
		k.pre++
		tok = tok.WithKey(key)
	}
	return tok, nil
}

// Child records (graceful degeneration): one complete, interior-sorted
// child subtree of the element being degenerated, tagged with its ordering
// key and original sibling sequence number so batches merge by (key, seq).
//
//	keyLen uvarint | key | seq uvarint | encoded subtree tokens
func encodeChildRecord(dst []byte, node *xmltree.Node, seq int64) ([]byte, error) {
	dst = binary.AppendUvarint(dst, uint64(len(node.Key)))
	dst = append(dst, node.Key...)
	dst = binary.AppendUvarint(dst, uint64(seq))
	var err error
	emit := func(tok xmltok.Token) error {
		dst = xmltok.AppendToken(dst, tok)
		return nil
	}
	if err = node.EmitTokens(emit); err != nil {
		return nil, err
	}
	return dst, nil
}

// newChildRecordSorter builds the merger for graceful degeneration using
// all remaining budget. The (key, seq) header is exactly sortkey's KeySeq
// format, so the sorter compares child records without decoding them.
func newChildRecordSorter(env *em.Env) (*extsort.Sorter, error) {
	return extsort.NewKernel(env, em.CatSubtreeSort, sortkey.KeySeq(), env.Budget.Free())
}

// drainChildRecords streams sorted child records into a run, stripping the
// (key, seq) header and appending each child's tokens.
func drainChildRecords(sorter *extsort.Sorter, w *runstore.Writer) error {
	it, err := sorter.Sort()
	if err != nil {
		return err
	}
	defer it.Close()
	var dec xmltok.Decoder
	for {
		raw, err := it.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		cur := &sliceCursor{buf: raw}
		if err := skipCursorString(cur); err != nil { // key
			return fmt.Errorf("core: corrupt child record: %w", err)
		}
		if _, err := binary.ReadUvarint(cur); err != nil {
			return fmt.Errorf("core: corrupt child record: %w", err)
		}
		for {
			tok, err := dec.ReadToken(cur)
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
			if err := w.WriteToken(tok); err != nil {
				return err
			}
		}
	}
}

// sliceCursor is an io.ByteReader and io.Reader over a byte slice.
type sliceCursor struct {
	buf []byte
	pos int
}

func (c *sliceCursor) ReadByte() (byte, error) {
	if c.pos >= len(c.buf) {
		return 0, io.EOF
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

func (c *sliceCursor) Read(p []byte) (int, error) {
	if c.pos >= len(c.buf) {
		return 0, io.EOF
	}
	n := copy(p, c.buf[c.pos:])
	c.pos += n
	return n, nil
}

// skipCursorString advances past a uvarint-prefixed string without
// materializing it; a length overrunning the buffer is an error, not an
// empty string.
func skipCursorString(c *sliceCursor) error {
	n, err := binary.ReadUvarint(c)
	if err != nil {
		return err
	}
	if n > uint64(len(c.buf)-c.pos) {
		return io.ErrUnexpectedEOF
	}
	c.pos += int(n)
	return nil
}
