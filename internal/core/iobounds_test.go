package core

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
)

// TestLemmaIOBounds checks the per-category cost bounds of Section 4.2
// empirically, with explicit constants: each bookkeeping category must stay
// within a small multiple of n = input blocks (Lemmas 4.10-4.12) or N/t
// (Lemma 4.13), across a spread of document shapes.
func TestLemmaIOBounds(t *testing.T) {
	shapes := []struct {
		name string
		spec interface {
			Write(w io.Writer) (gen.Stats, error)
		}
	}{
		{"wide", gen.CustomSpec{Fanouts: []int{2000}, Seed: 1, ElemSize: 80}},
		{"bushy", gen.CustomSpec{Fanouts: []int{12, 12, 12}, Seed: 2, ElemSize: 80}},
		{"tall", gen.CustomSpec{Fanouts: []int{4, 4, 4, 4, 4}, Seed: 3, ElemSize: 80}},
		{"random", gen.IBMSpec{Height: 9, MaxFanout: 5, MaxElements: 2000, Seed: 4, ElemSize: 80}},
	}
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 12}
	const blockSize = 512

	for _, sh := range shapes {
		t.Run(sh.name, func(t *testing.T) {
			var doc strings.Builder
			if _, err := sh.spec.Write(&doc); err != nil {
				t.Fatal(err)
			}
			env, err := em.NewEnv(em.Config{BlockSize: blockSize, MemBlocks: MinMemBlocks})
			if err != nil {
				t.Fatal(err)
			}
			defer env.Close()
			rep, err := Sort(env, strings.NewReader(doc.String()), io.Discard, Options{Criterion: c})
			if err != nil {
				t.Fatal(err)
			}

			n := float64(rep.InputBytes)/blockSize + 1
			get := func(cat string) float64 {
				return float64(rep.IOs[cat].Reads + rep.IOs[cat].Writes)
			}

			// Lemma 4.10: data-stack paging O(N/B). Every stack block is
			// written at most once per residence and read back at most
			// twice (subtree extraction + pointer-site refill), so 4n is
			// a generous constant.
			if got := get("data-stack"); got > 4*n {
				t.Errorf("data-stack IOs %.0f > 4n (n=%.0f)", got, n)
			}
			// Lemma 4.11: path-stack paging O(N/B) (covers the ordering-
			// expression spill too, which shares the category).
			if got := get("path-stack"); got > 4*n {
				t.Errorf("path-stack IOs %.0f > 4n (n=%.0f)", got, n)
			}
			// Lemma 4.12: run reads O(N/B): every sorted-run block once,
			// plus one re-read per run pointer (x-1 of them, x bounded by
			// the subtree-sort count).
			runReadCap := float64(rep.RunBlocks+rep.SubtreeSorts) + 1
			if got := get("run-read"); got > runReadCap {
				t.Errorf("run-read IOs %.0f > blocks+x (%.0f)", got, runReadCap)
			}
			// Lemma 4.13: output-location-stack paging O(N/t).
			if got := get("output-stack"); got > n/2+1 {
				t.Errorf("output-stack IOs %.0f > N/t (%.0f)", got, n/2+1)
			}
			// Lemma 4.8: total run blocks O(N/B); 3n covers the encoded
			// representation's overhead vs the textual input.
			if float64(rep.RunBlocks) > 3*n {
				t.Errorf("run blocks %d > 3n (n=%.0f)", rep.RunBlocks, n)
			}
			// Lemma 4.7: subtree sorts x <= S/(t-1) + 1, where S is the
			// data-stack byte volume; the encoded form runs up to ~1.5x
			// the textual input on attribute-heavy documents.
			maxSorts := 3*rep.InputBytes/(2*(int64(rep.Threshold)-1)) + 1
			if int64(rep.SubtreeSorts) > maxSorts {
				t.Errorf("subtree sorts %d > %d", rep.SubtreeSorts, maxSorts)
			}
		})
	}
}

// TestDeepDocumentPathStackPaging drives the path stack (and the matcher
// spill) through real page-outs with a 3000-deep chain document, and
// verifies the Lemma 4.11 shape: paging stays proportional to input
// blocks, and the sort still matches the oracle.
func TestDeepDocumentPathStackPaging(t *testing.T) {
	depth := 3000
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, `<d k="%d">`, i%10)
	}
	sb.WriteString(`<leaf k="x"/>`)
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	doc := sb.String()
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 8}

	env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: MinMemBlocks})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var out strings.Builder
	rep, err := Sort(env, strings.NewReader(doc), &out, Options{Criterion: c})
	if err != nil {
		t.Fatal(err)
	}
	paging := rep.IOs["path-stack"].Total()
	if paging == 0 {
		t.Error("a 3000-deep document should page the path stack at 512-byte blocks")
	}
	n := rep.InputBytes/512 + 1
	if paging > 6*n {
		t.Errorf("path-stack paging %d > 6n (n=%d)", paging, n)
	}
	// A chain has exactly one legal ordering: output equals input shape.
	if !strings.HasPrefix(out.String(), `<d k="0"><d k="1">`) {
		t.Errorf("chain document mangled: %.60s...", out.String())
	}
}

// TestFaultInjection arms I/O faults at random points and verifies that
// Sort surfaces the error without panicking or leaking budget.
func TestFaultInjection(t *testing.T) {
	var doc strings.Builder
	if _, err := (gen.CustomSpec{Fanouts: []int{15, 15}, Seed: 6, ElemSize: 80}).Write(&doc); err != nil {
		t.Fatal(err)
	}
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("key")}}, KeyCap: 12}
	boom := errors.New("injected disk fault")

	rng := rand.New(rand.NewSource(99))
	failures := 0
	for trial := 0; trial < 40; trial++ {
		stats := em.NewStats()
		fault := em.NewFaultBackend(em.NewMemBackend())
		if trial%2 == 0 {
			fault.FailWriteAfter(int64(1+rng.Intn(60)), boom)
		} else {
			fault.FailReadAfter(int64(1+rng.Intn(60)), boom)
		}
		env := &em.Env{
			Dev:    em.NewDevice(fault, 512, stats),
			Stats:  stats,
			Budget: em.NewBudget(MinMemBlocks),
			Conf:   em.Config{BlockSize: 512, MemBlocks: MinMemBlocks},
		}
		_, err := Sort(env, strings.NewReader(doc.String()), io.Discard, Options{Criterion: c})
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("trial %d: unexpected error %v", trial, err)
			}
			failures++
		}
		if env.Budget.InUse() != 0 {
			t.Fatalf("trial %d: leaked %d budget blocks after %v", trial, env.Budget.InUse(), err)
		}
		env.Dev.Close()
	}
	if failures == 0 {
		t.Error("no fault ever fired; the armed ranges are too late")
	}
}

// TestOutputStackPaging drives the output location stack through real
// page-outs: a deep chain with a tiny threshold makes every element its
// own nested run, so the output phase's stack grows to the chain depth.
// Lemma 4.13 bounds its paging by O(N/t) = O(number of runs).
func TestOutputStackPaging(t *testing.T) {
	depth := 2500
	var sb strings.Builder
	for i := 0; i < depth; i++ {
		fmt.Fprintf(&sb, `<d k="%d">`, i%10)
	}
	sb.WriteString(`<leaf k="x"/>`)
	for i := 0; i < depth; i++ {
		sb.WriteString("</d>")
	}
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr("k")}}, KeyCap: 8}

	env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: MinMemBlocks})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var out strings.Builder
	rep, err := Sort(env, strings.NewReader(sb.String()), &out, Options{Criterion: c, Threshold: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SubtreeSorts != depth+1 {
		t.Errorf("SubtreeSorts = %d, want %d", rep.SubtreeSorts, depth+1)
	}
	paging := rep.IOs["output-stack"].Total()
	if paging == 0 {
		t.Error("a 2500-deep run tree should page the output location stack")
	}
	// Lemma 4.13: paging bounded by pushes+pops = 2x runs; each block
	// holds 32 records, so even 2*(runs/32)*2 is generous.
	if maxPaging := int64(rep.SubtreeSorts) / 4; paging > maxPaging {
		t.Errorf("output-stack paging %d > %d", paging, maxPaging)
	}
	// The chain structure survives intact.
	if !strings.HasPrefix(out.String(), `<d k="0"><d k="1">`) ||
		!strings.Contains(out.String(), `<leaf k="x">`) {
		t.Errorf("chain mangled: %.60s...", out.String())
	}
}
