package core

import (
	"encoding/binary"
	"fmt"
	"io"

	"nexsort/internal/compact"
	"nexsort/internal/em"
	"nexsort/internal/keys"
	"nexsort/internal/runstore"
	"nexsort/internal/xmltok"
	"nexsort/internal/xstack"
)

// pathRec is one path-stack record: the data-stack start location of an
// open element (Figure 4's l), plus the bookkeeping graceful degeneration
// needs — the start of the element's not-yet-cut child region, and the
// number of child sequence numbers already handed out by earlier cuts.
type pathRec struct {
	start     int64
	cutMark   int64
	childBase int64
}

// pathRecSize is the fixed record size on the path stack.
const pathRecSize = 24

func (p pathRec) marshal(dst []byte) {
	binary.LittleEndian.PutUint64(dst[0:], uint64(p.start))
	binary.LittleEndian.PutUint64(dst[8:], uint64(p.cutMark))
	binary.LittleEndian.PutUint64(dst[16:], uint64(p.childBase))
}

func unmarshalPathRec(src []byte) pathRec {
	return pathRec{
		start:     int64(binary.LittleEndian.Uint64(src[0:])),
		cutMark:   int64(binary.LittleEndian.Uint64(src[8:])),
		childBase: int64(binary.LittleEndian.Uint64(src[16:])),
	}
}

// sorter carries the state of one NEXSORT run.
type sorter struct {
	env       *em.Env
	opts      Options
	crit      *keys.Criterion
	threshold int64

	data  *xstack.ByteStack
	path  *xstack.RecordStack
	spill *xstack.RecordStack
	annot *keys.Annotator
	store *runstore.Store

	// dict/enc compact tokens entering the working structures when
	// Options.Compact is set; the output phase holds the matching
	// decoder. The dictionary is vocabulary-sized and lives in memory.
	dict *compact.Dictionary
	enc  *compact.Encoder

	// incomplete holds, per open-element depth (1-based path-stack
	// length at push time), the incomplete sorted runs cut by graceful
	// degeneration. Like the paper's sketch of the optimization, the
	// handles are bookkeeping, not data; the runs themselves are on disk.
	incomplete map[int][]*em.Stream

	// cutCap is the degeneration trigger: when the deepest open element's
	// uncut child region reaches this many bytes, it is cut into an
	// incomplete sorted run. It is sized so the region always fits in the
	// data stack's resident window — the cut sorts memory-resident bytes.
	cutCap int64

	// par is the background-worker state for dispatched sibling-subtree
	// sorts; see parallel.go for the concurrency and determinism rules.
	par parState

	report  *Report
	encBuf  []byte
	recBuf  []byte
	pathBuf []byte
}

// Sort runs NEXSORT: it reads the XML document from in and writes the
// fully (or depth-limited) sorted document to out, using the block size,
// memory budget and scratch device of env. The returned report carries the
// cost breakdown of Section 4.2.
func Sort(env *em.Env, in io.Reader, out io.Writer, opts Options) (*Report, error) {
	crit, threshold, err := opts.validate(env)
	if err != nil {
		return nil, err
	}
	s := &sorter{
		env:        env,
		opts:       opts,
		crit:       crit,
		threshold:  int64(threshold),
		store:      runstore.New(env.Dev),
		incomplete: map[int][]*em.Stream{},
		report:     &Report{Threshold: threshold},
		pathBuf:    make([]byte, pathRecSize),
	}
	if opts.Compact {
		s.dict = compact.NewDictionary()
		s.enc = compact.NewEncoder(s.dict)
	}
	s.par.pool = env.Pool()

	rootRun, err := s.sortingPhase(in)
	// Always drain dispatched subtree sorts before leaving the sorting
	// phase: on success the output phase needs every run sealed; on error
	// the workers must finish releasing their budget blocks before the
	// caller inspects the budget (no leak, no double release).
	if derr := s.drainWorkers(); err == nil {
		err = derr
	}
	if err != nil {
		return nil, err
	}
	if err := s.outputPhase(rootRun, out); err != nil {
		return nil, err
	}
	s.report.RunBlocks = s.store.TotalBlocks()
	s.report.ScratchBlocks = env.Dev.Allocated()
	s.report.IOs = env.Stats.Snapshot()
	return s.report, nil
}

// sortingPhase is lines 1-12 of Figure 4. It returns the root run's ID.
func (s *sorter) sortingPhase(in io.Reader) (root runstore.RunID, err error) {
	budget := s.env.Budget

	// Fixed structures: 2 path-stack blocks, 2 ordering-expression spill
	// blocks, 1 input buffer block, and the data stack's resident window:
	// one block normally, or — with graceful degeneration — the sort
	// area, so that an accumulating flat child list is cut into an
	// incomplete run while still memory-resident instead of riding the
	// stack to disk and back.
	dataResident := 1
	if s.opts.Degenerate {
		// Nearly all of the budget accumulates children in the resident
		// window, exactly like external merge sort filling memory before
		// cutting an initial run; when incomplete runs are merged, the
		// window is lent to the merge (SetResident in mergedSubtreeSort),
		// so the merge enjoys the same fan-in merge sort would.
		dataResident = budget.Total() - 8
		s.cutCap = int64(dataResident-1) * int64(s.env.Conf.BlockSize)
	}
	s.data, err = xstack.NewByteStack(s.env.Dev, em.CatDataStack, budget, dataResident)
	if err != nil {
		return 0, err
	}
	defer s.data.Close()
	s.path, err = xstack.NewRecordStack(s.env.Dev, em.CatPathStack, budget, 2, pathRecSize)
	if err != nil {
		return 0, err
	}
	defer s.path.Close()
	s.spill, err = xstack.NewRecordStack(s.env.Dev, em.CatPathStack, budget, 2, s.crit.StateSize())
	if err != nil {
		return 0, err
	}
	defer s.spill.Close()
	s.annot = keys.NewAnnotator(s.crit, s.spill)

	if err := budget.Grant(1); err != nil {
		return 0, fmt.Errorf("core: input buffer: %w", err)
	}
	defer budget.Release(1)

	cr := em.NewCountingReader(in, s.env.Dev, em.CatInput)
	defer cr.Close()
	parser := xmltok.NewParser(cr, xmltok.DefaultParserOptions())
	var stamper *orderStamper
	if s.opts.RecordOrder != "" {
		stamper = newOrderStamper(s.opts.RecordOrder)
	}

	rootRun := runstore.RunID(-1)
	for {
		tok, err := parser.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, err
		}
		if stamper != nil {
			tok = stamper.stamp(tok)
		}
		if tok, err = s.annot.Annotate(tok); err != nil {
			return 0, err
		}
		if s.enc != nil {
			// Ordering keys were evaluated on the original names above;
			// only the stored representation is compacted.
			tok = s.enc.Encode(tok)
		}

		switch tok.Kind {
		case xmltok.KindStart:
			s.report.Elements++
			if d := s.annot.Depth(); d > s.report.Height {
				s.report.Height = d
			}
			rec := pathRec{start: s.data.Size()}
			if err := s.pushToken(tok); err != nil {
				return 0, err
			}
			rec.cutMark = s.data.Size()
			rec.marshal(s.pathBuf)
			if err := s.path.Push(s.pathBuf); err != nil {
				return 0, err
			}

		case xmltok.KindText:
			s.report.TextNodes++
			if err := s.pushToken(tok); err != nil {
				return 0, err
			}
			if err := s.maybeCutIncomplete(); err != nil {
				return 0, err
			}

		case xmltok.KindEnd:
			if err := s.path.Pop(s.pathBuf); err != nil {
				return 0, err
			}
			rec := unmarshalPathRec(s.pathBuf)
			if err := s.pushToken(tok); err != nil {
				return 0, err
			}
			size := s.data.Size() - rec.start
			isRoot := s.path.Len() == 0
			ds := int(s.path.Len()) + 1 // the closed element's level
			withinDepth := s.opts.DepthLimit == 0 || ds <= s.opts.DepthLimit+1
			// An element whose children were cut into incomplete runs
			// must be completed now regardless of its remaining size.
			hasIncomplete := len(s.incomplete[ds]) > 0
			if isRoot || hasIncomplete || (size >= s.threshold && withinDepth) {
				runID, err := s.sortSubtree(rec, tok, ds)
				if err != nil {
					return 0, err
				}
				if isRoot {
					rootRun = runID
				} else if err := s.maybeCutIncomplete(); err != nil {
					return 0, err
				}
			} else if err := s.maybeCutIncomplete(); err != nil {
				return 0, err
			}
		}
	}
	cr.Finish()
	s.report.InputBytes = cr.BytesRead()
	if rootRun < 0 {
		return 0, fmt.Errorf("core: input document has no root element")
	}
	return rootRun, nil
}

// pushToken appends a token to the data stack.
func (s *sorter) pushToken(tok xmltok.Token) error {
	s.encBuf = xmltok.AppendToken(s.encBuf[:0], tok)
	return s.data.Push(s.encBuf)
}

// orderStamper implements the paper's order-preservation device: each
// element gains a sequence-number attribute recording its original
// position among its siblings, zero-padded so that lexicographic
// comparison equals numeric comparison. Sorting the stamped output by that
// attribute restores the original document. The per-open-element counters
// are O(height) bookkeeping, like the parser's well-formedness stack.
type orderStamper struct {
	attr     string
	counters []int64
}

func newOrderStamper(attr string) *orderStamper {
	return &orderStamper{attr: attr, counters: make([]int64, 1, 16)}
}

func (o *orderStamper) stamp(tok xmltok.Token) xmltok.Token {
	switch tok.Kind {
	case xmltok.KindStart:
		seq := o.counters[len(o.counters)-1]
		o.counters[len(o.counters)-1]++
		attrs := make([]xmltok.Attr, 0, len(tok.Attrs)+1)
		attrs = append(attrs, tok.Attrs...)
		attrs = append(attrs, xmltok.Attr{Name: o.attr, Value: fmt.Sprintf("%012d", seq)})
		tok.Attrs = attrs
		o.counters = append(o.counters, 0)
	case xmltok.KindText:
		o.counters[len(o.counters)-1]++
	case xmltok.KindEnd:
		o.counters = o.counters[:len(o.counters)-1]
	}
	return tok
}

// tokenSource adapts a byte reader of encoded tokens to xmltree.TokenSource,
// holding one decoder so the decode scratch is reused across the stream.
type tokenSource struct {
	r   io.ByteReader
	dec xmltok.Decoder
}

func (t *tokenSource) Next() (xmltok.Token, error) { return t.dec.ReadToken(t.r) }
