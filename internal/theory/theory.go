// Package theory reproduces the combinatorial machinery of the paper's
// Section 4.1 — the part of the result that is proved rather than
// measured — so that the proofs can be checked mechanically:
//
//   - CountOutcomes computes the exact number of possible sorting outcomes
//     of a document tree: the product of the factorials of all fan-outs
//     (every child list can arrive in any permutation; nothing can cross a
//     parent boundary).
//
//   - MaxOutcomes computes Lemma 4.2's closed form for the adversary's
//     document, (k!)^⌊(N-1)/k⌋ · ((N-1) mod k)!, and AdversaryFanouts
//     builds the shape itself (at most one element with neither 0 nor k
//     children), so tests can verify Lemma 4.1 by exhaustive search over
//     all trees of a given size: no shape beats the adversary.
//
//   - LowerBoundIOs evaluates Theorem 4.4's chain of inequalities
//     numerically from Lemma 4.3's counting argument — the minimum T with
//     (B!)^{N/B} · binom(MB, B)^T ≥ outcomes — alongside the asymptotic
//     formula, so the slack introduced by each estimate is visible.
//
// Everything uses math/big; nothing here is approximate except where the
// paper itself switches to Stirling.
package theory

import (
	"math"
	"math/big"
)

// Factorial returns n! as a big integer.
func Factorial(n int64) *big.Int {
	return new(big.Int).MulRange(1, max64(n, 1))
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Tree is a minimal shape-only tree for outcome counting.
type Tree struct {
	Children []*Tree
}

// Size returns the number of nodes.
func (t *Tree) Size() int64 {
	n := int64(1)
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// MaxFanout returns k.
func (t *Tree) MaxFanout() int64 {
	k := int64(len(t.Children))
	for _, c := range t.Children {
		if ck := c.MaxFanout(); ck > k {
			k = ck
		}
	}
	return k
}

// CountOutcomes returns the exact number of distinct fully-sorted
// "outcomes" (legal orderings) of the tree: the product of fan-out
// factorials over all nodes — the quantity Lemma 4.2's proof identifies
// ("the total number of possible outcomes is the product of factorials of
// all the fan-outs in the document tree").
func (t *Tree) CountOutcomes() *big.Int {
	total := big.NewInt(1)
	var walk func(n *Tree)
	walk = func(n *Tree) {
		total.Mul(total, Factorial(int64(len(n.Children))))
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(t)
	return total
}

// MaxOutcomes evaluates Lemma 4.2's closed form: the maximum number of
// sorting outcomes over all documents with n elements and maximum fan-out
// at most k, namely (k!)^⌊(n-1)/k⌋ · ((n-1) mod k)!.
func MaxOutcomes(n, k int64) *big.Int {
	if n <= 1 || k < 1 {
		return big.NewInt(1)
	}
	full := (n - 1) / k
	rem := (n - 1) % k
	out := new(big.Int).Exp(Factorial(k), big.NewInt(full), nil)
	return out.Mul(out, Factorial(rem))
}

// AdversaryFanouts returns the fan-out multiset of Lemma 4.1's worst-case
// document with n elements and max fan-out k: ⌊(n-1)/k⌋ elements with
// exactly k children, at most one with (n-1) mod k children, and leaves
// elsewhere. Any tree realizing these fan-outs attains MaxOutcomes.
func AdversaryFanouts(n, k int64) []int64 {
	if n <= 1 {
		return nil
	}
	var fans []int64
	for i := int64(0); i < (n-1)/k; i++ {
		fans = append(fans, k)
	}
	if rem := (n - 1) % k; rem > 0 {
		fans = append(fans, rem)
	}
	return fans
}

// AdversaryTree materializes one tree with the adversary's fan-outs: a
// chain of k-ary nodes (each full node's last child is the next full
// node), with the remainder node at the end.
func AdversaryTree(n, k int64) *Tree {
	root := &Tree{}
	cur := root
	remaining := n - 1
	for remaining > 0 {
		take := k
		if remaining < k {
			take = remaining
		}
		for i := int64(0); i < take; i++ {
			cur.Children = append(cur.Children, &Tree{})
		}
		remaining -= take
		cur = cur.Children[len(cur.Children)-1]
	}
	return root
}

// Binomial returns binom(n, k) as a big integer.
func Binomial(n, k int64) *big.Int {
	if k < 0 || k > n {
		return big.NewInt(0)
	}
	return new(big.Int).Binomial(n, k)
}

// MinIOs computes the exact Lemma 4.3 lower bound on I/Os for producing
// `outcomes` distinguishable results: the smallest T with
//
//	(B!)^(N/B) · binom(M·B, B)^T  >=  outcomes,
//
// where N is the element count, B elements fit in a block and M blocks of
// memory are available (so M·B elements fit in memory). This is the paper's
// counting argument evaluated without any asymptotic simplification.
func MinIOs(outcomes *big.Int, n, b, m int64) int64 {
	if b < 1 {
		b = 1
	}
	// base = (B!)^(N/B): the free permutations within blocks on first read.
	base := new(big.Int).Exp(Factorial(b), big.NewInt((n+b-1)/b), nil)
	if base.Cmp(outcomes) >= 0 {
		return 0
	}
	perIO := Binomial(m*b, b)
	if perIO.Cmp(big.NewInt(1)) <= 0 {
		return math.MaxInt64
	}
	// T = ceil( log(outcomes/base) / log(perIO) ), computed with bit
	// lengths refined by multiplication (outcomes can have millions of
	// bits, so work with floats over logs).
	logNeeded := logBig(outcomes) - logBig(base)
	logPer := logBig(perIO)
	t := int64(math.Ceil(logNeeded / logPer))
	if t < 0 {
		t = 0
	}
	return t
}

// logBig returns the natural log of a positive big integer.
func logBig(x *big.Int) float64 {
	bits := x.BitLen()
	if bits <= 53 {
		f, _ := new(big.Float).SetInt(x).Float64()
		return math.Log(f)
	}
	// x = mant * 2^(bits-53) with mant in [2^52, 2^53).
	mant := new(big.Int).Rsh(x, uint(bits-53))
	f, _ := new(big.Float).SetInt(mant).Float64()
	return math.Log(f) + float64(bits-53)*math.Ln2
}

// AsymptoticLowerBound evaluates Theorem 4.4's closed form with unit
// constants: max{n/B, (n/B)·log_m(k/B)} block I/Os.
func AsymptoticLowerBound(n, b, m, k int64) float64 {
	blocks := float64(n) / float64(b)
	if k <= b || m <= 1 {
		return blocks
	}
	logTerm := math.Log(float64(k)/float64(b)) / math.Log(float64(m))
	return math.Max(blocks, blocks*logTerm)
}

// FlatFileLowerBound evaluates the Aggarwal-Vitter flat-file bound with
// unit constants: (n/B)·log_m(n/B).
func FlatFileLowerBound(n, b, m int64) float64 {
	blocks := float64(n) / float64(b)
	if m <= 1 || blocks <= 1 {
		return blocks
	}
	return math.Max(blocks, blocks*math.Log(blocks)/math.Log(float64(m)))
}

// EnumerateTrees calls fn with every distinct ordered-tree shape of n
// nodes whose fan-outs never exceed k. It is the exhaustive-search engine
// behind the Lemma 4.1 test. The number of shapes is Catalan-like, so keep
// n small (n <= 10 is instant).
func EnumerateTrees(n, k int64, fn func(*Tree)) {
	forests(n-1, k, func(children []*Tree) {
		fn(&Tree{Children: children})
	})
}

// forests enumerates ordered forests with total node count n and fan-outs
// bounded by k, with at most k top-level trees.
func forests(n, k int64, fn func([]*Tree)) {
	if n == 0 {
		fn(nil)
		return
	}
	// Choose the size s of the first tree (1..n) and recurse; the number
	// of top-level trees is bounded by k.
	var build func(remaining, slots int64, acc []*Tree)
	build = func(remaining, slots int64, acc []*Tree) {
		if remaining == 0 {
			fn(acc)
			return
		}
		if slots == 0 {
			return
		}
		for s := int64(1); s <= remaining; s++ {
			// A tree of size s = root + forest of s-1 nodes. Copy the
			// accumulator: append would alias backing arrays across
			// enumeration branches.
			forests(s-1, k, func(sub []*Tree) {
				next := make([]*Tree, len(acc)+1)
				copy(next, acc)
				next[len(acc)] = &Tree{Children: sub}
				build(remaining-s, slots-1, next)
			})
		}
	}
	build(n, k, nil)
}
