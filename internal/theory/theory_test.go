package theory

import (
	"math"
	"math/big"
	"testing"
	"testing/quick"
)

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720}
	for n, w := range want {
		if got := Factorial(int64(n)); got.Int64() != w {
			t.Errorf("%d! = %v, want %d", n, got, w)
		}
	}
}

func TestCountOutcomesByHand(t *testing.T) {
	// <r><a/><b><c/><d/><e/></b></a>... : root fan-out 2, b fan-out 3:
	// outcomes = 2!·3! = 12.
	tree := &Tree{Children: []*Tree{
		{},
		{Children: []*Tree{{}, {}, {}}},
	}}
	if got := tree.CountOutcomes(); got.Int64() != 12 {
		t.Errorf("outcomes = %v, want 12", got)
	}
	if tree.Size() != 6 || tree.MaxFanout() != 3 {
		t.Errorf("size %d k %d", tree.Size(), tree.MaxFanout())
	}
	// A chain has exactly one outcome.
	chain := &Tree{Children: []*Tree{{Children: []*Tree{{}}}}}
	if got := chain.CountOutcomes(); got.Int64() != 1 {
		t.Errorf("chain outcomes = %v", got)
	}
}

// TestLemma42 checks that the adversary tree attains Lemma 4.2's closed
// form exactly.
func TestLemma42(t *testing.T) {
	for n := int64(1); n <= 40; n++ {
		for k := int64(1); k <= 7; k++ {
			tree := AdversaryTree(n, k)
			if tree.Size() != n {
				t.Fatalf("n=%d k=%d: adversary has %d nodes", n, k, tree.Size())
			}
			if tree.MaxFanout() > k {
				t.Fatalf("n=%d k=%d: adversary fan-out %d", n, k, tree.MaxFanout())
			}
			got := tree.CountOutcomes()
			want := MaxOutcomes(n, k)
			if got.Cmp(want) != 0 {
				t.Errorf("n=%d k=%d: adversary outcomes %v, closed form %v", n, k, got, want)
			}
		}
	}
}

// TestLemma41Exhaustive verifies Lemma 4.1 by brute force: over ALL
// ordered trees with n nodes and fan-outs <= k, none beats the closed-form
// maximum, and the maximum is attained.
func TestLemma41Exhaustive(t *testing.T) {
	for n := int64(2); n <= 9; n++ {
		for k := int64(1); k <= 4; k++ {
			want := MaxOutcomes(n, k)
			best := big.NewInt(0)
			attained := false
			count := 0
			EnumerateTrees(n, k, func(tree *Tree) {
				count++
				if tree.Size() != n {
					t.Fatalf("enumerated tree has %d nodes, want %d", tree.Size(), n)
				}
				if tree.MaxFanout() > k {
					t.Fatalf("enumerated tree exceeds fan-out %d", k)
				}
				out := tree.CountOutcomes()
				if out.Cmp(want) > 0 {
					t.Fatalf("n=%d k=%d: tree with %v outcomes beats closed form %v", n, k, out, want)
				}
				if out.Cmp(best) > 0 {
					best.Set(out)
				}
				if out.Cmp(want) == 0 {
					attained = true
				}
			})
			if count == 0 {
				t.Fatalf("n=%d k=%d: enumeration empty", n, k)
			}
			if !attained {
				t.Errorf("n=%d k=%d: closed form %v never attained (best %v over %d trees)",
					n, k, want, best, count)
			}
		}
	}
}

// TestLemma41ShapeCharacterization: among exhaustively enumerated trees,
// every maximizer has at most one element whose fan-out is neither 0 nor k
// (the lemma's characterization).
func TestLemma41ShapeCharacterization(t *testing.T) {
	n, k := int64(9), int64(3)
	want := MaxOutcomes(n, k)
	EnumerateTrees(n, k, func(tree *Tree) {
		if tree.CountOutcomes().Cmp(want) != 0 {
			return
		}
		odd := 0
		var walk func(*Tree)
		walk = func(tr *Tree) {
			f := int64(len(tr.Children))
			if f != 0 && f != k {
				odd++
			}
			for _, c := range tr.Children {
				walk(c)
			}
		}
		walk(tree)
		if odd > 1 {
			t.Errorf("maximizer with %d odd fan-outs found", odd)
		}
	})
}

// TestXMLEasierThanFlat: the counting bound itself shows XML sorting needs
// fewer I/Os than flat-file sorting whenever k << N — the paper's core
// claim, checked through Lemma 4.3's exact arithmetic.
func TestXMLEasierThanFlat(t *testing.T) {
	const (
		n = 100000
		b = 100 // elements per block
		m = 16  // memory blocks
		k = 50
	)
	flatOutcomes := Factorial(n)
	xmlOutcomes := MaxOutcomes(n, k)
	if xmlOutcomes.Cmp(flatOutcomes) >= 0 {
		t.Fatal("XML outcomes should be fewer than N!")
	}
	flatT := MinIOs(flatOutcomes, n, b, m)
	xmlT := MinIOs(xmlOutcomes, n, b, m)
	if xmlT >= flatT {
		t.Errorf("XML bound %d not below flat bound %d", xmlT, flatT)
	}
	// Both are consistent with the asymptotic forms (within small
	// constants — the exact count is at most a constant factor above).
	asymXML := AsymptoticLowerBound(n, b, m, k)
	asymFlat := FlatFileLowerBound(n, b, m)
	if asymXML > asymFlat {
		t.Errorf("asymptotic XML bound %.0f above flat %.0f", asymXML, asymFlat)
	}
	if float64(xmlT) > 10*asymXML+float64(n)/float64(b) {
		t.Errorf("exact bound %d far above asymptotic %f", xmlT, asymXML)
	}
}

// TestMinIOsProperties: the exact counting bound is monotone in the
// outcome count, zero when a single scan suffices, and grows as memory
// shrinks.
func TestMinIOsProperties(t *testing.T) {
	if got := MinIOs(big.NewInt(1), 1000, 10, 8); got != 0 {
		t.Errorf("one outcome needs %d IOs, want 0", got)
	}
	small := MinIOs(MaxOutcomes(10000, 10), 10000, 10, 8)
	large := MinIOs(MaxOutcomes(10000, 1000), 10000, 10, 8)
	if small >= large {
		t.Errorf("more outcomes should need more IOs: %d vs %d", small, large)
	}
	tight := MinIOs(Factorial(10000), 10000, 10, 4)
	roomy := MinIOs(Factorial(10000), 10000, 10, 64)
	if roomy >= tight {
		t.Errorf("more memory should need fewer IOs: %d vs %d", roomy, tight)
	}
}

func TestLogBig(t *testing.T) {
	f := func(x uint32, shift uint8) bool {
		if x == 0 {
			return true
		}
		v := new(big.Int).Lsh(big.NewInt(int64(x)), uint(shift%200))
		want := math.Log(float64(x)) + float64(shift%200)*math.Ln2
		got := logBig(v)
		return math.Abs(got-want) < 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestAdversaryFanouts(t *testing.T) {
	fans := AdversaryFanouts(11, 3)
	// N-1 = 10 = 3+3+3+1: three full nodes and one with remainder 1.
	want := []int64{3, 3, 3, 1}
	if len(fans) != len(want) {
		t.Fatalf("fans = %v", fans)
	}
	for i := range want {
		if fans[i] != want[i] {
			t.Errorf("fans = %v, want %v", fans, want)
		}
	}
	if AdversaryFanouts(1, 3) != nil {
		t.Error("single node has no fan-outs")
	}
}
