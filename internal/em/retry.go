package em

import (
	"fmt"
	"time"
)

// RetryPolicy bounds how the retry layer re-attempts faulted backend
// operations. The zero value disables retries entirely.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure; 0
	// disables the retry layer.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it. Zero retries immediately, which is what tests and
	// memory-backed devices want.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero means uncapped.
	MaxDelay time.Duration
	// RetryCorruptReads additionally retries reads that failed checksum
	// verification: in-transit corruption disappears on a re-read, while
	// at-rest corruption keeps failing and surfaces the typed
	// ErrCorruptBlock once the budget is spent. Write-side errors are
	// never retried on corruption (there is nothing new to observe).
	RetryCorruptReads bool
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

// Enabled reports whether the policy performs any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 }

// delay returns the backoff before retry attempt n (0-based).
func (p RetryPolicy) delay(n int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(n)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	return d
}

// RetryBackend wraps a Backend and re-attempts operations that fail with a
// transient error (and optionally reads that fail checksum verification),
// under a bounded exponential-backoff policy. Each re-attempt is counted
// per category in stats, so the per-category I/O report shows how much
// work transient faults cost. Once the budget is exhausted the last error
// is returned unchanged, preserving its class for callers.
type RetryBackend struct {
	inner  Backend
	policy RetryPolicy
	stats  *Stats
	life   *Lifecycle
}

// NewRetryBackend layers policy over inner, charging retry counts to stats
// (nil disables accounting, not retrying).
func NewRetryBackend(inner Backend, policy RetryPolicy, stats *Stats) *RetryBackend {
	return NewRetryBackendLifecycle(inner, policy, stats, nil)
}

// NewRetryBackendLifecycle is NewRetryBackend bound to a run lifecycle:
// backoff sleeps wake immediately on cancellation, and no re-attempt is
// issued once the lifecycle has ended — a canceled run must not keep
// hammering a faulty device through its retry budget.
func NewRetryBackendLifecycle(inner Backend, policy RetryPolicy, stats *Stats, life *Lifecycle) *RetryBackend {
	if policy.MaxRetries < 0 {
		panic(fmt.Sprintf("em: negative MaxRetries %d", policy.MaxRetries))
	}
	return &RetryBackend{inner: inner, policy: policy, stats: stats, life: life}
}

// retryable reports whether err is worth re-attempting for the given
// operation direction.
func (b *RetryBackend) retryable(err error, isRead bool) bool {
	switch Classify(err) {
	case ClassTransient:
		return true
	case ClassCorrupt:
		return isRead && b.policy.RetryCorruptReads
	default:
		return false
	}
}

func (b *RetryBackend) do(c Category, isRead bool, op func() (int, error)) (int, error) {
	n, err := op()
	for attempt := 0; err != nil && attempt < b.policy.MaxRetries && b.retryable(err, isRead); attempt++ {
		if slErr := b.sleep(b.policy.delay(attempt)); slErr != nil {
			// The run was canceled while backing off: abandon the retry
			// budget and surface the cancellation (errors.Is-matchable)
			// with the device fault it preempted in the message.
			return n, fmt.Errorf("em: retry abandoned: %w (last device error: %v)", slErr, err)
		}
		if b.stats != nil {
			b.stats.AddRetries(c, 1)
		}
		n, err = op()
	}
	return n, err
}

// sleep waits the backoff delay, waking early — and reporting the typed
// cancellation error — if the bound lifecycle ends first.
func (b *RetryBackend) sleep(d time.Duration) error {
	if err := b.life.Interrupted(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	if b.policy.Sleep != nil {
		// Test hook: honor it verbatim, then re-check the lifecycle.
		b.policy.Sleep(d)
		return b.life.Interrupted()
	}
	done := b.life.Done()
	if done == nil {
		time.Sleep(d)
		return nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-done:
		return b.life.Interrupted()
	case <-timer.C:
		return nil
	}
}

// ReadAt implements io.ReaderAt under the scratch category.
func (b *RetryBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.ReadAtCat(p, off, CatScratch)
}

// WriteAt implements io.WriterAt under the scratch category.
func (b *RetryBackend) WriteAt(p []byte, off int64) (int, error) {
	return b.WriteAtCat(p, off, CatScratch)
}

// ReadAtCat reads with retries charged to category c.
func (b *RetryBackend) ReadAtCat(p []byte, off int64, c Category) (int, error) {
	return b.do(c, true, func() (int, error) { return readAtCat(b.inner, p, off, c) })
}

// WriteAtCat writes with retries charged to category c.
func (b *RetryBackend) WriteAtCat(p []byte, off int64, c Category) (int, error) {
	return b.do(c, false, func() (int, error) { return writeAtCat(b.inner, p, off, c) })
}

// Close closes the wrapped backend.
func (b *RetryBackend) Close() error { return b.inner.Close() }
