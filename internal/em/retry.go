package em

import (
	"fmt"
	"time"
)

// RetryPolicy bounds how the retry layer re-attempts faulted backend
// operations. The zero value disables retries entirely.
type RetryPolicy struct {
	// MaxRetries is the number of re-attempts after the first failure; 0
	// disables the retry layer.
	MaxRetries int
	// BaseDelay is the backoff before the first retry; each subsequent
	// retry doubles it. Zero retries immediately, which is what tests and
	// memory-backed devices want.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Zero means uncapped.
	MaxDelay time.Duration
	// RetryCorruptReads additionally retries reads that failed checksum
	// verification: in-transit corruption disappears on a re-read, while
	// at-rest corruption keeps failing and surfaces the typed
	// ErrCorruptBlock once the budget is spent. Write-side errors are
	// never retried on corruption (there is nothing new to observe).
	RetryCorruptReads bool
	// Sleep replaces time.Sleep in tests; nil uses time.Sleep.
	Sleep func(time.Duration)
}

// Enabled reports whether the policy performs any retries.
func (p RetryPolicy) Enabled() bool { return p.MaxRetries > 0 }

// delay returns the backoff before retry attempt n (0-based).
func (p RetryPolicy) delay(n int) time.Duration {
	if p.BaseDelay <= 0 {
		return 0
	}
	d := p.BaseDelay << uint(n)
	if d <= 0 || (p.MaxDelay > 0 && d > p.MaxDelay) {
		d = p.MaxDelay
		if d <= 0 {
			d = p.BaseDelay
		}
	}
	return d
}

func (p RetryPolicy) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	if p.Sleep != nil {
		p.Sleep(d)
		return
	}
	time.Sleep(d)
}

// RetryBackend wraps a Backend and re-attempts operations that fail with a
// transient error (and optionally reads that fail checksum verification),
// under a bounded exponential-backoff policy. Each re-attempt is counted
// per category in stats, so the per-category I/O report shows how much
// work transient faults cost. Once the budget is exhausted the last error
// is returned unchanged, preserving its class for callers.
type RetryBackend struct {
	inner  Backend
	policy RetryPolicy
	stats  *Stats
}

// NewRetryBackend layers policy over inner, charging retry counts to stats
// (nil disables accounting, not retrying).
func NewRetryBackend(inner Backend, policy RetryPolicy, stats *Stats) *RetryBackend {
	if policy.MaxRetries < 0 {
		panic(fmt.Sprintf("em: negative MaxRetries %d", policy.MaxRetries))
	}
	return &RetryBackend{inner: inner, policy: policy, stats: stats}
}

// retryable reports whether err is worth re-attempting for the given
// operation direction.
func (b *RetryBackend) retryable(err error, isRead bool) bool {
	switch Classify(err) {
	case ClassTransient:
		return true
	case ClassCorrupt:
		return isRead && b.policy.RetryCorruptReads
	default:
		return false
	}
}

func (b *RetryBackend) do(c Category, isRead bool, op func() (int, error)) (int, error) {
	n, err := op()
	for attempt := 0; err != nil && attempt < b.policy.MaxRetries && b.retryable(err, isRead); attempt++ {
		b.policy.sleep(b.policy.delay(attempt))
		if b.stats != nil {
			b.stats.AddRetries(c, 1)
		}
		n, err = op()
	}
	return n, err
}

// ReadAt implements io.ReaderAt under the scratch category.
func (b *RetryBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.ReadAtCat(p, off, CatScratch)
}

// WriteAt implements io.WriterAt under the scratch category.
func (b *RetryBackend) WriteAt(p []byte, off int64) (int, error) {
	return b.WriteAtCat(p, off, CatScratch)
}

// ReadAtCat reads with retries charged to category c.
func (b *RetryBackend) ReadAtCat(p []byte, off int64, c Category) (int, error) {
	return b.do(c, true, func() (int, error) { return readAtCat(b.inner, p, off, c) })
}

// WriteAtCat writes with retries charged to category c.
func (b *RetryBackend) WriteAtCat(p []byte, off int64, c Category) (int, error) {
	return b.do(c, false, func() (int, error) { return writeAtCat(b.inner, p, off, c) })
}

// Close closes the wrapped backend.
func (b *RetryBackend) Close() error { return b.inner.Close() }
