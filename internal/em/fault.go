package em

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
)

// ErrChaosPermanent is the permanent device error the chaos injector
// surfaces; it classifies as ClassPermanent so retry layers give up on it
// immediately.
var ErrChaosPermanent = errors.New("em: injected permanent device error")

// ChaosConfig configures the probabilistic fault injector. All
// probabilities are per-operation in [0,1] and are evaluated in the order
// the fields are declared; the first one that fires wins, so at most one
// fault is injected per operation. The injector is driven by a seeded
// deterministic RNG: the same seed over the same operation sequence
// reproduces the same faults, which is what makes chaos trials replayable.
type ChaosConfig struct {
	// Seed seeds the deterministic RNG.
	Seed int64

	// ReadPermanentProb / WritePermanentProb inject non-retryable device
	// errors (ErrChaosPermanent).
	ReadPermanentProb  float64
	WritePermanentProb float64

	// ReadTransientProb / WriteTransientProb inject TransientErrors: the
	// operation fails without touching the device and succeeds when
	// retried (subject to MaxConsecutive).
	ReadTransientProb  float64
	WriteTransientProb float64

	// ReadBitFlipProb corrupts one random bit of the returned buffer
	// after a successful read — in-transit corruption that a re-read
	// clears. Recoverable, so it counts toward MaxConsecutive.
	ReadBitFlipProb float64

	// WriteBitFlipProb corrupts one random bit of the payload before it
	// reaches the device — at-rest corruption that only a checksum can
	// catch. Not recoverable by retrying reads.
	WriteBitFlipProb float64

	// TornWriteProb silently persists only a prefix of the payload while
	// reporting full success — the classic torn write. Only a checksum
	// can catch it, on the next read of the block.
	TornWriteProb float64

	// ShortWriteProb persists a prefix and reports a TransientError, the
	// honest short write; a full-block rewrite on retry heals it.
	ShortWriteProb float64

	// MaxConsecutive caps how many recoverable faults (transient errors,
	// short writes, read bit-flips) fire in a row before the injector
	// forces a clean operation. Setting it at or below the retry budget
	// guarantees transient-only chaos always makes progress. 0 means
	// uncapped.
	MaxConsecutive int
}

// Active reports whether any fault has a nonzero probability.
func (c ChaosConfig) Active() bool {
	return c.ReadPermanentProb > 0 || c.WritePermanentProb > 0 ||
		c.ReadTransientProb > 0 || c.WriteTransientProb > 0 ||
		c.ReadBitFlipProb > 0 || c.WriteBitFlipProb > 0 ||
		c.TornWriteProb > 0 || c.ShortWriteProb > 0
}

// ChaosBackend wraps a Backend with seeded probabilistic fault injection:
// transient and permanent errors, in-transit and at-rest bit flips, torn
// and short writes. It is the adversary the hardening layers (checksum,
// retry) are tested against; see the chaostest package for the harness.
type ChaosBackend struct {
	inner Backend

	mu          sync.Mutex
	cfg         ChaosConfig
	rng         *rand.Rand
	consecutive int
	injected    map[string]int64
}

// NewChaosBackend wraps inner with fault injection per cfg.
func NewChaosBackend(inner Backend, cfg ChaosConfig) *ChaosBackend {
	return &ChaosBackend{
		inner:    inner,
		cfg:      cfg,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		injected: map[string]int64{},
	}
}

// Injected returns a copy of the per-kind injection counts, for harness
// reporting and assertions.
func (b *ChaosBackend) Injected() map[string]int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int64, len(b.injected))
	for k, v := range b.injected {
		out[k] = v
	}
	return out
}

// fireLocked rolls the dice for one fault kind, honoring the consecutive cap
// for recoverable kinds. Callers must hold b.mu.
func (b *ChaosBackend) fireLocked(prob float64, kind string, recoverable bool) bool {
	if prob <= 0 {
		return false
	}
	if recoverable && b.cfg.MaxConsecutive > 0 && b.consecutive >= b.cfg.MaxConsecutive {
		return false
	}
	if b.rng.Float64() >= prob {
		return false
	}
	b.injected[kind]++
	if recoverable {
		b.consecutive++
	}
	return true
}

// ReadAt implements io.ReaderAt with fault injection.
func (b *ChaosBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fireLocked(b.cfg.ReadPermanentProb, "read-permanent", false):
		return 0, fmt.Errorf("read at %d: %w", off, ErrChaosPermanent)
	case b.fireLocked(b.cfg.ReadTransientProb, "read-transient", true):
		return 0, MarkTransient(fmt.Errorf("injected read stall at %d", off))
	case b.fireLocked(b.cfg.ReadBitFlipProb, "read-bitflip", true):
		n, err := b.inner.ReadAt(p, off)
		if err == nil && len(p) > 0 {
			bit := b.rng.Intn(len(p) * 8)
			p[bit/8] ^= 1 << uint(bit%8)
		}
		return n, err
	}
	b.consecutive = 0
	return b.inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt with fault injection.
func (b *ChaosBackend) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case b.fireLocked(b.cfg.WritePermanentProb, "write-permanent", false):
		return 0, fmt.Errorf("write at %d: %w", off, ErrChaosPermanent)
	case b.fireLocked(b.cfg.WriteTransientProb, "write-transient", true):
		return 0, MarkTransient(fmt.Errorf("injected write stall at %d", off))
	case b.fireLocked(b.cfg.WriteBitFlipProb, "write-bitflip", false):
		if len(p) == 0 {
			return b.inner.WriteAt(p, off)
		}
		flipped := make([]byte, len(p))
		copy(flipped, p)
		bit := b.rng.Intn(len(flipped) * 8)
		flipped[bit/8] ^= 1 << uint(bit%8)
		return b.inner.WriteAt(flipped, off)
	case b.fireLocked(b.cfg.TornWriteProb, "torn-write", false):
		n := b.rng.Intn(len(p) + 1)
		if _, err := b.inner.WriteAt(p[:n], off); err != nil {
			return 0, err
		}
		return len(p), nil // silent: reports full success
	case b.fireLocked(b.cfg.ShortWriteProb, "short-write", true):
		n := b.rng.Intn(len(p) + 1)
		if m, err := b.inner.WriteAt(p[:n], off); err != nil {
			return m, err
		}
		return n, MarkTransient(fmt.Errorf("injected short write at %d: %d of %d bytes", off, n, len(p)))
	}
	b.consecutive = 0
	return b.inner.WriteAt(p, off)
}

// Close closes the wrapped backend.
func (b *ChaosBackend) Close() error { return b.inner.Close() }
