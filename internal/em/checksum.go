package em

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sync"
)

// Checksummed block format. Each logical device block of blockSize bytes is
// stored as a physical record of blockSize+checksumTrailerLen bytes:
//
//	payload (blockSize) | crc32c(payload) (4) | magic "NXSC" (4)
//
// The trailer is written in the same WriteAt as the payload, so a torn
// write leaves the magic missing (or the CRC stale) and the block fails
// verification on its next read instead of reading back as plausible
// garbage. A block that was never written reads back as all zeros from the
// sparse backend below; an all-zero record (zero payload, zero trailer) is
// therefore the "unwritten" state and decodes to a zero block, preserving
// the Backend contract.
const (
	// checksumTrailerLen is the per-block storage overhead in bytes.
	checksumTrailerLen = 8
	// checksumMagic marks a block as having been written through the
	// checksum layer ("NXSC": NexSort Checksum).
	checksumMagic = 0x4e585343
)

// castagnoli is the CRC-32C table (the polynomial used by iSCSI, ext4 and
// most storage checksums; hardware-accelerated by hash/crc32).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ChecksumBackend wraps a Backend with per-block CRC-32C verification. It
// is block-granular: offsets must be block-aligned and every read or write
// must cover exactly one logical block, which is the only access pattern a
// Device generates. Verification failures surface as *CorruptBlockError
// (matched by errors.Is(err, ErrCorruptBlock)) and are counted per
// category in stats.
type ChecksumBackend struct {
	inner     Backend
	blockSize int
	stats     *Stats

	// scratch recycles physical-record buffers (blockSize+trailer). The
	// records are wider than a logical block, so this layer keeps its own
	// FramePool rather than borrowing the device's; like the backend's
	// extent tables, the handful of concurrently live records sit below
	// the block abstraction and outside the budget's M (DESIGN.md §7).
	scratch *FramePool

	// written records which logical blocks a write was ever attempted on.
	// Scratch devices live and die with the process, so this in-memory
	// set is authoritative; it lets a read distinguish "never written,
	// zeros are correct" from "a write was issued here but nothing (or
	// only a zero prefix) landed" — the torn write that would otherwise
	// read back as plausible zeros.
	mu      sync.Mutex
	written map[int64]struct{}
}

// NewChecksumBackend layers checksum verification over inner for logical
// blocks of blockSize bytes, charging checksum failures to stats (nil
// disables failure accounting, not verification).
func NewChecksumBackend(inner Backend, blockSize int, stats *Stats) *ChecksumBackend {
	if blockSize <= 0 {
		panic("em: checksum backend needs a positive block size")
	}
	return &ChecksumBackend{
		inner:     inner,
		blockSize: blockSize,
		stats:     stats,
		scratch:   NewFramePool(blockSize + checksumTrailerLen),
		written:   make(map[int64]struct{}),
	}
}

// physOff maps a logical block-aligned offset to the physical offset of
// its checksummed record.
func (b *ChecksumBackend) physOff(off int64) int64 {
	return (off / int64(b.blockSize)) * int64(b.blockSize+checksumTrailerLen)
}

func (b *ChecksumBackend) checkAligned(p []byte, off int64) error {
	if len(p) != b.blockSize || off%int64(b.blockSize) != 0 {
		return fmt.Errorf("em: checksum backend requires single-block aligned access (len=%d off=%d blockSize=%d)",
			len(p), off, b.blockSize)
	}
	return nil
}

// ReadAt implements io.ReaderAt with verification, charging failures to
// the scratch category.
func (b *ChecksumBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.ReadAtCat(p, off, CatScratch)
}

// WriteAt implements io.WriterAt, checksumming under the scratch category.
func (b *ChecksumBackend) WriteAt(p []byte, off int64) (int, error) {
	return b.WriteAtCat(p, off, CatScratch)
}

// ReadAtCat reads and verifies one logical block, charging any checksum
// failure to category c.
func (b *ChecksumBackend) ReadAtCat(p []byte, off int64, c Category) (int, error) {
	if err := b.checkAligned(p, off); err != nil {
		return 0, err
	}
	frame := b.scratch.Acquire()
	defer b.scratch.Release(frame)
	buf := frame.Bytes()

	if _, err := readAtCat(b.inner, buf, b.physOff(off), c); err != nil {
		return 0, err
	}
	payload := buf[:b.blockSize]
	crc := binary.LittleEndian.Uint32(buf[b.blockSize:])
	magic := binary.LittleEndian.Uint32(buf[b.blockSize+4:])

	block := off / int64(b.blockSize)
	switch {
	case magic == checksumMagic:
		if got := crc32.Checksum(payload, castagnoli); got != crc {
			b.countFailure(c)
			return 0, &CorruptBlockError{Block: block,
				Reason: fmt.Sprintf("crc32c mismatch: stored %08x, computed %08x", crc, got)}
		}
		copy(p, payload)
		return len(p), nil
	case magic == 0 && crc == 0 && allZero(payload):
		if b.wasWritten(block) {
			// A write was issued here but no checksummed record landed:
			// a torn write whose surviving prefix happens to be zeros.
			b.countFailure(c)
			return 0, &CorruptBlockError{Block: block,
				Reason: "torn write: block was written but reads back as zeros"}
		}
		// Never written through this layer: the sparse-zero state.
		for i := range p {
			p[i] = 0
		}
		return len(p), nil
	default:
		// Payload bytes present but the trailer is missing or mangled:
		// the signature of a torn write.
		b.countFailure(c)
		return 0, &CorruptBlockError{Block: block,
			Reason: fmt.Sprintf("torn write: payload present but trailer magic is %08x", magic)}
	}
}

// WriteAtCat writes one logical block with its checksum trailer in a
// single backend write.
func (b *ChecksumBackend) WriteAtCat(p []byte, off int64, c Category) (int, error) {
	if err := b.checkAligned(p, off); err != nil {
		return 0, err
	}
	frame := b.scratch.Acquire()
	defer b.scratch.Release(frame)
	buf := frame.Bytes()

	copy(buf, p)
	binary.LittleEndian.PutUint32(buf[b.blockSize:], crc32.Checksum(p, castagnoli))
	binary.LittleEndian.PutUint32(buf[b.blockSize+4:], checksumMagic)
	b.markWritten(off / int64(b.blockSize))
	if _, err := writeAtCat(b.inner, buf, b.physOff(off), c); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (b *ChecksumBackend) markWritten(block int64) {
	b.mu.Lock()
	b.written[block] = struct{}{}
	b.mu.Unlock()
}

func (b *ChecksumBackend) wasWritten(block int64) bool {
	b.mu.Lock()
	_, ok := b.written[block]
	b.mu.Unlock()
	return ok
}

// Close closes the wrapped backend.
func (b *ChecksumBackend) Close() error { return b.inner.Close() }

func (b *ChecksumBackend) countFailure(c Category) {
	if b.stats != nil {
		b.stats.AddChecksumFailures(c, 1)
	}
}

func allZero(p []byte) bool {
	for _, v := range p {
		if v != 0 {
			return false
		}
	}
	return true
}
