package em

import "fmt"

// Config describes an external-memory environment: the block size B (in
// bytes) and the main-memory budget M (in blocks). These are the two knobs
// the paper's experiments sweep (64 KB blocks; 3-32 MB of memory).
type Config struct {
	// BlockSize is the block size in bytes. The paper uses 64 KiB; tests
	// and scaled-down experiments use smaller blocks so that interesting
	// N/B and M/B ratios are reachable with small inputs.
	BlockSize int
	// MemBlocks is M, the number of main-memory blocks available.
	MemBlocks int
	// ScratchDir, if non-empty, places the scratch device file there and
	// selects the file backend. If empty, an in-memory backend is used.
	ScratchDir string
	// InMemory forces the in-memory backend even if ScratchDir is set.
	InMemory bool
}

// Validate reports whether the configuration satisfies the minimum-memory
// assumptions of Section 3.1: NEXSORT needs at least two blocks for the path
// stack, one for the data stack, one for the output-location stack, and at
// least one block to sort with, so M >= 5 is the floor enforced here.
func (c Config) Validate() error {
	if c.BlockSize < 64 {
		return fmt.Errorf("em: block size %d too small (min 64 bytes)", c.BlockSize)
	}
	if c.MemBlocks < 5 {
		return fmt.Errorf("em: memory budget %d blocks too small (min 5)", c.MemBlocks)
	}
	return nil
}

// Env bundles the device, statistics and memory budget an algorithm run
// uses. Construct with NewEnv and Close when the run is finished.
type Env struct {
	Dev    *Device
	Stats  *Stats
	Budget *Budget
	Conf   Config
}

// NewEnv builds an environment from cfg.
func NewEnv(cfg Config) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stats := NewStats()
	var dev *Device
	if cfg.ScratchDir != "" && !cfg.InMemory {
		d, err := NewFileDevice(cfg.ScratchDir, cfg.BlockSize, stats)
		if err != nil {
			return nil, err
		}
		dev = d
	} else {
		dev = NewDevice(NewMemBackend(), cfg.BlockSize, stats)
	}
	return &Env{
		Dev:    dev,
		Stats:  stats,
		Budget: NewBudget(cfg.MemBlocks),
		Conf:   cfg,
	}, nil
}

// Close releases the scratch device.
func (e *Env) Close() error { return e.Dev.Close() }

// CostModel converts counted block I/Os into simulated seconds, so the
// harness can plot "sort time" curves with the same shape as the paper's
// figures even though the physical disk underneath is a modern SSD (or
// memory). The defaults approximate the paper's 2003-era disk: a 64 KiB
// block transfer at ~25 MB/s sequential plus ~5 ms average positioning for
// each random access, scaled to the configured block size.
type CostModel struct {
	// SeqPerByte is the per-byte transfer cost in seconds.
	SeqPerByte float64
	// PerIO is the fixed per-block-access cost in seconds (seek+rotate).
	PerIO float64
}

// DefaultCostModel returns a model approximating the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		SeqPerByte: 1.0 / (25 << 20), // 25 MB/s streaming
		PerIO:      0.005,            // 5 ms positioning
	}
}

// Seconds converts an I/O count at the given block size into simulated
// seconds under the model.
func (m CostModel) Seconds(ios int64, blockSize int) float64 {
	return float64(ios) * (m.PerIO + m.SeqPerByte*float64(blockSize))
}
