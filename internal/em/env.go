package em

import (
	"context"
	"fmt"
	"runtime"
)

// Config describes an external-memory environment: the block size B (in
// bytes) and the main-memory budget M (in blocks). These are the two knobs
// the paper's experiments sweep (64 KB blocks; 3-32 MB of memory).
type Config struct {
	// BlockSize is the block size in bytes. The paper uses 64 KiB; tests
	// and scaled-down experiments use smaller blocks so that interesting
	// N/B and M/B ratios are reachable with small inputs.
	BlockSize int
	// MemBlocks is M, the number of main-memory blocks available.
	MemBlocks int
	// ScratchDir, if non-empty, places the scratch device file there and
	// selects the file backend. If empty, an in-memory backend is used.
	ScratchDir string
	// InMemory forces the in-memory backend even if ScratchDir is set.
	InMemory bool

	// Parallelism bounds how many goroutines the sorters may use: the main
	// scanning goroutine plus Parallelism-1 pooled workers that sort and
	// spill runs/subtrees in the background. 0 means GOMAXPROCS; 1 forces
	// fully sequential execution. Parallelism changes only wall-clock time:
	// output bytes and per-category block-transfer counts are identical at
	// every setting (see the concurrency model in DESIGN.md).
	Parallelism int

	// CacheBlocks, when positive, carves that many blocks out of MemBlocks
	// for a clean-frame LRU cache on the scratch device: repeat ReadBlocks
	// of recently touched blocks are served from memory and surfaced as
	// cache hits in Stats instead of costing block transfers. The cache is
	// opt-in and defaults to 0 because it changes the read counts away from
	// the paper's model; the sorters see a budget shrunk by CacheBlocks, so
	// total memory stays within M (see DESIGN.md §10).
	CacheBlocks int

	// ReadAhead, when positive, reserves that many pipeline blocks for the
	// device's read-ahead worker: sequential readers (StreamReader, and
	// everything built on it — extsort merge legs, runstore) prefetch
	// upcoming blocks of their extent tables into those frames while the
	// consumer computes. 0 (the default) keeps the device fully
	// synchronous — the previous behavior. The pipeline frames are real
	// budget grants, but they ride on top of MemBlocks (the budget's
	// capacity is MemBlocks + ReadAhead + WriteBehind, with the depth
	// granted to the engine up front): the sorters' share of M is
	// untouched, which is exactly what keeps the output bytes and the
	// logical I/O ledger byte-identical at every depth — a prefetched
	// block charges its read only when consumed, and an unconsumed
	// prefetch is surfaced as PrefetchWasted, never as a Read
	// (DESIGN.md §15). Size MemBlocks down by the depth if the process's
	// total residency must stay fixed.
	ReadAhead int
	// WriteBehind, when positive, reserves that many pipeline blocks for
	// the device's write-behind queue: stream writers and the stack pager
	// hand full frames to a flusher goroutine and keep computing instead
	// of blocking on the device. 0 (the default) keeps writes synchronous.
	// Like ReadAhead, the frames ride on top of MemBlocks, and each queued
	// write is charged exactly once when it flushes, so the logical ledger
	// is invariant under this knob too; flush errors surface at the
	// submitter's next touch point with the usual typed taxonomy.
	WriteBehind int

	// MergeParallel, when positive, runs the external merge sort's final
	// merge as up to that many independent loser trees over disjoint key
	// ranges, dispatched on the worker pool, each writing its own segment
	// of the output stream (DESIGN.md §17). Partition boundaries come from
	// the per-run fence-key indexes (see FenceIndex), and splitters are
	// chosen so that all records with equal keys land in one partition —
	// which preserves the serial loser tree's run-index tie-break and makes
	// the concatenated output byte-identical to the serial merge. The
	// logical I/O ledger is invariant in this knob: every run block is
	// still read exactly once and every output block written exactly once,
	// at every partition count. 0 (the default) keeps the final merge on a
	// single loser tree. Setting this implies FenceIndex.
	MergeParallel int
	// FenceIndex, when true, makes run formation emit a fence-key sparse
	// index per run — the first normalized key of every run block, spilled
	// as a tiny side stream (CatFenceIndex) through the same hardened
	// backend stack as the runs. The index is what lets a merge partition
	// runs by key range without scanning them; MergeParallel turns it on
	// implicitly. Index I/O is charged to its own category and never to
	// the run categories, so the paper-model counts are unchanged.
	FenceIndex bool

	// ScratchQuotaBlocks, when positive, caps the scratch device at that
	// many blocks: a CapacityBackend under the hardening layers refuses
	// writes past the quota with the typed ErrScratchExhausted, and the
	// Device's NearFull signal (7/8 of the quota) lets the sorters degrade
	// gracefully — extsort streams its final merge instead of
	// materializing one more run — before the hard limit hits. 0 means
	// unlimited, the paper's model.
	ScratchQuotaBlocks int64

	// VerifyChecksums stores a CRC-32C trailer with every spill block and
	// verifies it on read, turning torn writes and bit rot into typed
	// ErrCorruptBlock errors instead of silent corruption. Costs 8 bytes
	// of scratch space per block and one CRC pass per transfer; the
	// block-transfer counters are unchanged.
	VerifyChecksums bool
	// CompressSpill stores every spill block in the compressed spill
	// format (DESIGN.md §14): records are front-coded against their
	// predecessor, the block is flate-compressed, and only the encoded
	// bytes cross the device boundary. The logical block-transfer
	// counters — the paper's model — are unchanged at every layer; the
	// physical byte counters in Stats shrink with the data's redundancy
	// (2-4× on key-path runs). Composes with VerifyChecksums: the
	// checksummed record is what gets compressed, so verification still
	// sees exactly the bytes it wrote. Decode failures surface as typed
	// ErrCorruptBlock errors, like checksum failures.
	CompressSpill bool
	// Retry re-attempts backend operations that fail with a transient
	// error (and, optionally, corrupt reads) under a bounded backoff.
	// The zero policy disables retrying.
	Retry RetryPolicy
	// WrapBackend, when non-nil, wraps the raw backend before the
	// hardening layers are applied. The chaos harness injects its fault
	// backend here, underneath checksum verification and retry, exactly
	// where a faulty device would sit.
	WrapBackend func(Backend) Backend
}

// Validate reports whether the configuration satisfies the minimum-memory
// assumptions of Section 3.1: NEXSORT needs at least two blocks for the path
// stack, one for the data stack, one for the output-location stack, and at
// least one block to sort with, so M >= 5 is the floor enforced here.
func (c Config) Validate() error {
	if c.BlockSize < 64 {
		return fmt.Errorf("em: block size %d too small (min 64 bytes)", c.BlockSize)
	}
	if c.MemBlocks < 5 {
		return fmt.Errorf("em: memory budget %d blocks too small (min 5)", c.MemBlocks)
	}
	if c.Parallelism < 0 {
		return fmt.Errorf("em: negative parallelism %d", c.Parallelism)
	}
	if c.CacheBlocks < 0 {
		return fmt.Errorf("em: negative cache size %d blocks", c.CacheBlocks)
	}
	if c.ScratchQuotaBlocks < 0 {
		return fmt.Errorf("em: negative scratch quota %d blocks", c.ScratchQuotaBlocks)
	}
	if c.ReadAhead < 0 {
		return fmt.Errorf("em: negative read-ahead %d blocks", c.ReadAhead)
	}
	if c.WriteBehind < 0 {
		return fmt.Errorf("em: negative write-behind %d blocks", c.WriteBehind)
	}
	if c.MergeParallel < 0 {
		return fmt.Errorf("em: negative merge parallelism %d", c.MergeParallel)
	}
	if c.CacheBlocks > 0 && c.MemBlocks-c.CacheBlocks < 5 {
		return fmt.Errorf("em: cache %d blocks leaves %d of %d for sorting (min 5)",
			c.CacheBlocks, c.MemBlocks-c.CacheBlocks, c.MemBlocks)
	}
	return nil
}

// parallelism resolves the Parallelism knob: 0 defaults to GOMAXPROCS.
func (c Config) parallelism() int {
	if c.Parallelism > 0 {
		return c.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Env bundles the device, statistics and memory budget an algorithm run
// uses. Construct with NewEnv and Close when the run is finished.
type Env struct {
	Dev    *Device
	Stats  *Stats
	Budget *Budget
	Conf   Config

	// pool admits background sort workers (Conf.Parallelism - 1 slots; the
	// main goroutine is the remaining unit). Nil on hand-built Envs, which
	// therefore run sequentially.
	pool *Pool

	// cacheGrant is the budget reservation backing the device's block
	// cache (Conf.CacheBlocks), released on Close.
	cacheGrant int

	// asyncGrant is the budget reservation backing the async engine's
	// frames (Conf.ReadAhead + Conf.WriteBehind), released on Close after
	// the engine has drained and returned them to the pool.
	asyncGrant int

	// spill is the compression layer in the backend stack, nil when
	// Conf.CompressSpill is off; kept so leak checks can see its scratch
	// pool.
	spill *CompressedBackend
}

// SpillCodecFramesLive reports how many scratch frames the spill
// compression layer holds live right now (always 0 with compression off).
// The unwind invariant extends to the codec: after a sort returns — clean,
// canceled, or faulted — this must be zero.
func (e *Env) SpillCodecFramesLive() int {
	if e.spill == nil {
		return 0
	}
	return e.spill.ScratchFramesLive()
}

// InfraGrantBlocks returns the budget blocks held by the environment's own
// infrastructure — the block cache and the async engine — rather than by
// the algorithm. These grants are taken at construction and live until
// Close, so leak checks that run after an algorithm unwinds (but before
// Close) subtract them: algorithm residency must be zero while the
// environment's is by design.
func (e *Env) InfraGrantBlocks() int { return e.cacheGrant + e.asyncGrant }

// Parallelism returns the resolved parallelism level: Conf.Parallelism, or
// GOMAXPROCS when that is zero.
func (e *Env) Parallelism() int { return e.Conf.parallelism() }

// Pool returns the background-worker pool (nil admits nothing, meaning
// sequential execution).
func (e *Env) Pool() *Pool { return e.pool }

// NewEnv builds an environment from cfg. The spill backend is assembled
// bottom-up: the raw store (file or memory), the scratch quota (if any),
// the optional WrapBackend test hook (fault injection), then physical
// byte accounting, spill compression, checksum verification, and
// transient-fault retry — so retries re-drive decompression and
// verification, and both see exactly what the (possibly faulty) device
// returned. The environment has no lifecycle: it can never be
// canceled. Use NewEnvContext to bound a run by a context.
func NewEnv(cfg Config) (*Env, error) {
	return newEnv(cfg, nil)
}

// NewEnvContext is NewEnv bound to ctx: once ctx is canceled or its
// deadline passes, every block operation on the environment's device is
// refused with the wrapped context error (errors.Is-matchable against
// context.Canceled / context.DeadlineExceeded), retry backoffs wake
// immediately, and the sorters unwind through their usual typed-error
// paths — budget settled, frames recycled, scratch removed by Close.
func NewEnvContext(ctx context.Context, cfg Config) (*Env, error) {
	return newEnv(cfg, NewLifecycle(ctx))
}

func newEnv(cfg Config, life *Lifecycle) (*Env, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	stats := NewStats()
	var backend Backend
	if cfg.ScratchDir != "" && !cfg.InMemory {
		b, err := NewFileBackend(scratchPath(cfg.ScratchDir))
		if err != nil {
			return nil, err
		}
		backend = b
	} else {
		backend = NewMemBackend()
	}
	if cfg.ScratchQuotaBlocks > 0 {
		// The quota sits directly on the raw store and is denominated in
		// physical blocks: with checksums on, each logical block costs its
		// trailer too, and with compression its slot header — that
		// overhead must not eat into the quota's block count. Compressed
		// records are shorter than their slot, but the quota meters slots:
		// a block allocated is a block of quota spent.
		phys := int64(cfg.BlockSize)
		if cfg.VerifyChecksums {
			phys += checksumTrailerLen
		}
		if cfg.CompressSpill {
			phys += spillHeaderLen
		}
		backend = NewCapacityBackend(backend, cfg.ScratchQuotaBlocks*phys)
	}
	if cfg.WrapBackend != nil {
		backend = cfg.WrapBackend(backend)
	}
	backend, spill := hardenStack(backend, cfg, stats, life)
	dev := NewDevice(backend, cfg.BlockSize, stats)
	dev.BindLifecycle(life)
	dev.SetCapacityHint(cfg.ScratchQuotaBlocks)
	// The async engine's pipeline frames ride on top of M: capacity is
	// expanded by the depth and the engine's grant is taken up front, so
	// containment (live frames ≤ granted blocks) holds with the pipelines
	// running while the sorters' share of M — and therefore their run
	// geometry, output bytes and logical ledger — is identical at every
	// depth (DESIGN.md §15).
	asyncDepth := cfg.ReadAhead + cfg.WriteBehind
	budget := NewBudget(cfg.MemBlocks + asyncDepth)
	// The device's frame pool is the memory behind the budget's blocks:
	// one substrate under every buffer, so grants and buffers can't drift.
	budget.AttachFrames(dev.Frames())
	env := &Env{
		Dev:    dev,
		Stats:  stats,
		Budget: budget,
		Conf:   cfg,
		pool:   NewPool(cfg.parallelism() - 1),
		spill:  spill,
	}
	if cfg.CacheBlocks > 0 {
		// The cache's residency comes out of M like any other buffer. Its
		// frames are acquired lazily by the cache itself as blocks are
		// inserted, but the grant is taken up front so the sorters' view of
		// free memory is correct from the start.
		budget.MustGrant(cfg.CacheBlocks)
		env.cacheGrant = cfg.CacheBlocks
		dev.EnableCache(cfg.CacheBlocks)
	}
	if asyncDepth > 0 {
		budget.MustGrant(asyncDepth)
		env.asyncGrant = asyncDepth
		dev.EnableAsync(cfg.ReadAhead, cfg.WriteBehind)
	}
	return env, nil
}

// HardenBackend applies cfg's hardening layers (checksums, then retry) to
// backend. It is exposed so tests can build custom stacks over hand-made
// backends.
func HardenBackend(backend Backend, cfg Config, stats *Stats) Backend {
	return HardenBackendLifecycle(backend, cfg, stats, nil)
}

// HardenBackendLifecycle is HardenBackend with the retry layer bound to a
// run lifecycle, so backoff sleeps abort on cancellation.
func HardenBackendLifecycle(backend Backend, cfg Config, stats *Stats, life *Lifecycle) Backend {
	b, _ := hardenStack(backend, cfg, stats, life)
	return b
}

// hardenStack assembles the hardening layers bottom-up and returns the top
// of the stack plus the compression layer (nil when off):
//
//	retry → checksum → compression → physical counting → backend
//
// Physical counting sits innermost, directly on the (possibly
// fault-injected) device, so the physical ledger sees exactly what crossed
// the boundary. Compression sits below checksums — the checksummed record
// is this layer's unit — so verification round-trips through the codec and
// a corrupted compressed block fails decode (or, if the flate stream
// survives, the CRC above). Retry stays on top: re-attempts re-drive
// decode and verification.
func hardenStack(backend Backend, cfg Config, stats *Stats, life *Lifecycle) (Backend, *CompressedBackend) {
	backend = NewPhysCountBackend(backend, stats)
	var spill *CompressedBackend
	if cfg.CompressSpill {
		unit := cfg.BlockSize
		if cfg.VerifyChecksums {
			unit += checksumTrailerLen
		}
		spill = NewCompressedBackend(backend, unit, stats)
		backend = spill
	}
	if cfg.VerifyChecksums {
		backend = NewChecksumBackend(backend, cfg.BlockSize, stats)
	}
	if cfg.Retry.Enabled() {
		backend = NewRetryBackendLifecycle(backend, cfg.Retry, stats, life)
	}
	return backend, spill
}

// Close releases the scratch device (draining the async engine, dropping
// any cached frames) and returns the cache's and the engine's budget
// grants.
func (e *Env) Close() error {
	err := e.Dev.Close()
	if e.cacheGrant > 0 {
		e.Budget.Release(e.cacheGrant)
		e.cacheGrant = 0
	}
	if e.asyncGrant > 0 {
		e.Budget.Release(e.asyncGrant)
		e.asyncGrant = 0
	}
	return err
}

// CostModel converts counted block I/Os into simulated seconds, so the
// harness can plot "sort time" curves with the same shape as the paper's
// figures even though the physical disk underneath is a modern SSD (or
// memory). The defaults approximate the paper's 2003-era disk: a 64 KiB
// block transfer at ~25 MB/s sequential plus ~5 ms average positioning for
// each random access, scaled to the configured block size.
type CostModel struct {
	// SeqPerByte is the per-byte transfer cost in seconds.
	SeqPerByte float64
	// PerIO is the fixed per-block-access cost in seconds (seek+rotate).
	PerIO float64
}

// DefaultCostModel returns a model approximating the paper's testbed.
func DefaultCostModel() CostModel {
	return CostModel{
		SeqPerByte: 1.0 / (25 << 20), // 25 MB/s streaming
		PerIO:      0.005,            // 5 ms positioning
	}
}

// Seconds converts an I/O count at the given block size into simulated
// seconds under the model.
func (m CostModel) Seconds(ios int64, blockSize int) float64 {
	return float64(ios) * (m.PerIO + m.SeqPerByte*float64(blockSize))
}
