package em

import (
	"errors"
	"fmt"
	"io"
	"os"
	"sync"
	"syscall"
)

// Backend is the raw byte store underneath a Device. Implementations must
// support sparse positional access: reading a range that was never written
// returns zero bytes, as a POSIX file would.
type Backend interface {
	io.ReaderAt
	io.WriterAt
	io.Closer
}

// CategoryAwareBackend is the optional extension hardened backends
// implement: the Device passes the I/O's accounting category down so
// wrapper layers (retry, checksum) can charge their retry and
// checksum-failure counters to the same per-category breakdown as the
// block transfers themselves.
type CategoryAwareBackend interface {
	Backend
	ReadAtCat(p []byte, off int64, c Category) (int, error)
	WriteAtCat(p []byte, off int64, c Category) (int, error)
}

// readAtCat dispatches a read through the category-aware path when the
// backend supports it.
func readAtCat(b Backend, p []byte, off int64, c Category) (int, error) {
	if cb, ok := b.(CategoryAwareBackend); ok {
		return cb.ReadAtCat(p, off, c)
	}
	return b.ReadAt(p, off)
}

// writeAtCat dispatches a write through the category-aware path when the
// backend supports it.
func writeAtCat(b Backend, p []byte, off int64, c Category) (int, error) {
	if cb, ok := b.(CategoryAwareBackend); ok {
		return cb.WriteAtCat(p, off, c)
	}
	return b.WriteAt(p, off)
}

// FileBackend is a Backend over an operating-system file. It is the
// production backend: spill data (runs, paged-out stack blocks) really does
// leave main memory.
type FileBackend struct {
	f *os.File
}

// NewFileBackend creates the named file exclusively and returns a backend
// over it. The exclusive create (O_EXCL) makes collisions on a shared
// scratch directory a hard error instead of a silent clobber: scratch
// files are created fresh and removed on Close, so an existing file at the
// path always means another live process (or a crashed one's leftovers) —
// never data this process should overwrite.
func NewFileBackend(path string) (*FileBackend, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return nil, fmt.Errorf("em: open backend file: %w", err)
	}
	return &FileBackend{f: f}, nil
}

// ReadAt implements io.ReaderAt. Reads past the current end of file are
// zero-filled so that freshly allocated blocks read back as zeros. Partial
// reads are retried in place until the buffer fills or a real error
// surfaces; io.ErrUnexpectedEOF (a short read that still hit end of file)
// gets the same zero-fill treatment as a clean io.EOF.
func (b *FileBackend) ReadAt(p []byte, off int64) (int, error) {
	n := 0
	for n < len(p) {
		m, err := b.f.ReadAt(p[n:], off+int64(n))
		n += m
		switch {
		case err == io.EOF || err == io.ErrUnexpectedEOF:
			for i := n; i < len(p); i++ {
				p[i] = 0
			}
			return len(p), nil
		case err != nil:
			return n, err
		case m == 0:
			return n, io.ErrNoProgress
		}
	}
	return n, nil
}

// WriteAt implements io.WriterAt. A filesystem out-of-space failure is
// wrapped as *ExhaustedError so it joins the typed failure model
// (errors.Is(err, ErrScratchExhausted), ClassExhausted) instead of
// surfacing as an anonymous permanent error.
func (b *FileBackend) WriteAt(p []byte, off int64) (int, error) {
	n, err := b.f.WriteAt(p, off)
	if err != nil && errors.Is(err, syscall.ENOSPC) {
		err = &ExhaustedError{Requested: off + int64(len(p)), Err: err}
	}
	return n, err
}

// Close closes and removes the underlying file. Spill data is scratch by
// definition, so nothing of value is lost.
func (b *FileBackend) Close() error {
	name := b.f.Name()
	err := b.f.Close()
	if rmErr := os.Remove(name); err == nil {
		err = rmErr
	}
	return err
}

// MemBackend is an in-memory Backend used by tests and small examples. It
// grows on demand and zero-fills unwritten regions.
type MemBackend struct {
	mu  sync.Mutex
	buf []byte
}

// NewMemBackend returns an empty in-memory backend.
func NewMemBackend() *MemBackend { return &MemBackend{} }

// ReadAt implements io.ReaderAt with zero-fill past the written extent.
func (b *MemBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range p {
		p[i] = 0
	}
	if off < int64(len(b.buf)) {
		copy(p, b.buf[off:])
	}
	return len(p), nil
}

// WriteAt implements io.WriterAt, growing the buffer geometrically so that
// sequential block appends stay amortized O(1) per byte.
func (b *MemBackend) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	end := off + int64(len(p))
	if end > int64(len(b.buf)) {
		if end <= int64(cap(b.buf)) {
			b.buf = b.buf[:end]
		} else {
			newCap := int64(cap(b.buf)) * 2
			if newCap < end {
				newCap = end
			}
			grown := make([]byte, end, newCap)
			copy(grown, b.buf)
			b.buf = grown
		}
	}
	copy(b.buf[off:], p)
	return len(p), nil
}

// Close implements io.Closer.
func (b *MemBackend) Close() error { return nil }

// Len reports the number of bytes ever written (the high-water extent).
func (b *MemBackend) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}

// FaultBackend wraps a Backend and injects errors for testing error paths.
// Faults fire on the k-th read or write (1-based) after arming, then the
// backend behaves normally again unless re-armed.
type FaultBackend struct {
	Inner Backend

	mu         sync.Mutex
	readsLeft  int64 // fire on read when this hits zero; <0 means disarmed
	writesLeft int64
	readErr    error
	writeErr   error
	reads      int64
	writes     int64
}

// NewFaultBackend wraps inner with fault injection disarmed.
func NewFaultBackend(inner Backend) *FaultBackend {
	return &FaultBackend{Inner: inner, readsLeft: -1, writesLeft: -1}
}

// FailReadAfter arms the backend to return err on the n-th subsequent read.
func (b *FaultBackend) FailReadAfter(n int64, err error) {
	b.mu.Lock()
	b.readsLeft, b.readErr = n, err
	b.mu.Unlock()
}

// FailWriteAfter arms the backend to return err on the n-th subsequent write.
func (b *FaultBackend) FailWriteAfter(n int64, err error) {
	b.mu.Lock()
	b.writesLeft, b.writeErr = n, err
	b.mu.Unlock()
}

// ReadAt implements io.ReaderAt, possibly returning an injected error.
func (b *FaultBackend) ReadAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	b.reads++
	fire := false
	if b.readsLeft > 0 {
		b.readsLeft--
		fire = b.readsLeft == 0
	}
	err := b.readErr
	b.mu.Unlock()
	if fire {
		return 0, err
	}
	return b.Inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt, possibly returning an injected error.
func (b *FaultBackend) WriteAt(p []byte, off int64) (int, error) {
	b.mu.Lock()
	b.writes++
	fire := false
	if b.writesLeft > 0 {
		b.writesLeft--
		fire = b.writesLeft == 0
	}
	err := b.writeErr
	b.mu.Unlock()
	if fire {
		return 0, err
	}
	return b.Inner.WriteAt(p, off)
}

// Close closes the wrapped backend.
func (b *FaultBackend) Close() error { return b.Inner.Close() }
