package em

import (
	"bytes"
	"errors"
	"testing"
)

func TestFramePoolZeroesRecycledFrames(t *testing.T) {
	p := NewFramePool(32)
	f := p.Acquire()
	for i := range f.Bytes() {
		f.Bytes()[i] = 0xAB
	}
	p.Release(f)

	g := p.Acquire()
	if !bytes.Equal(g.Bytes(), make([]byte, 32)) {
		t.Error("recycled frame not zeroed: data bled through the free list")
	}
	if p.Recycled() != 1 {
		t.Errorf("recycled = %d, want 1 (second acquire must reuse the freed buffer)", p.Recycled())
	}
	if p.Acquired() != 2 {
		t.Errorf("acquired = %d, want 2", p.Acquired())
	}
	p.Release(g)
	if p.Live() != 0 || p.PeakLive() != 1 {
		t.Errorf("live=%d peakLive=%d, want 0/1", p.Live(), p.PeakLive())
	}
}

func TestFramePoolReleasePanics(t *testing.T) {
	p := NewFramePool(16)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	mustPanic("zero frame", func() { p.Release(Frame{}) })
	mustPanic("wrong size", func() { p.Release(Frame{data: make([]byte, 8)}) })
	mustPanic("none live", func() { p.Release(Frame{data: make([]byte, 16)}) })
}

// TestBudgetFramePeaksCoincide pins the containment invariant in its exact
// form: in a workload whose every grant is materialized as frames, the
// budget's high-water mark and the pool's live-frame high-water mark are
// the same number — a granted block is the right to pin one frame, nothing
// more and nothing less.
func TestBudgetFramePeaksCoincide(t *testing.T) {
	pool := NewFramePool(64)
	b := NewBudget(8)
	b.AttachFrames(pool)

	a, err := b.AcquireFrames(3)
	if err != nil {
		t.Fatal(err)
	}
	c, err := b.AcquireFrames(2)
	if err != nil {
		t.Fatal(err)
	}
	if pool.Live() > b.InUse() {
		t.Fatalf("containment violated: %d frames live, %d blocks granted", pool.Live(), b.InUse())
	}
	b.ReleaseFrames(a)
	d, err := b.AcquireFrames(4)
	if err != nil {
		t.Fatal(err)
	}
	b.ReleaseFrames(d)
	b.ReleaseFrames(c)

	if b.Peak() != pool.PeakLive() {
		t.Errorf("budget peak %d != frame peak %d in a frame-only workload", b.Peak(), pool.PeakLive())
	}
	if b.Peak() != 6 {
		t.Errorf("peak = %d, want 6 (3+2 released 3, then +4)", b.Peak())
	}
	if b.InUse() != 0 || pool.Live() != 0 {
		t.Errorf("teardown leak: inUse=%d live=%d", b.InUse(), pool.Live())
	}
}

func TestBudgetAcquireFramesOverBudget(t *testing.T) {
	pool := NewFramePool(64)
	b := NewBudget(4)
	b.AttachFrames(pool)

	frames, err := b.AcquireFrames(3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := b.AcquireFrames(2); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("over-budget acquire = %v, want ErrBudgetExceeded", err)
	}
	if pool.Live() != 3 {
		t.Errorf("failed acquire pinned frames: live = %d, want 3", pool.Live())
	}
	b.ReleaseFrames(frames)

	detached := NewBudget(4)
	if _, err := detached.AcquireFrames(1); err == nil {
		t.Error("AcquireFrames without an attached pool should fail")
	}
}
