package em

import (
	"bytes"
	"encoding/binary"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// -update-spill-golden regenerates the checked-in spill-format fixtures
// (testdata/spill_golden_*.bin) and the fuzz seed corpora from the current
// encoder. Run it only when the format version is deliberately bumped: the
// whole point of the fixtures is to fail when the encoding drifts by
// accident.
var updateSpillGolden = flag.Bool("update-spill-golden", false,
	"rewrite the spill-format golden fixtures and fuzz seed corpora")

// goldenFCPayload builds one block's worth of the bytes the sorters
// actually spill: uvarint-length-prefixed records whose normalized keys
// share long prefixes (sorted neighbors), with the zero padding a stream
// writer leaves after the last record. Deterministic by construction.
func goldenFCPayload(unit int) []byte {
	var b []byte
	regions := []string{"NE", "NE", "NE", "SW", "SW"}
	for i := 0; len(b) < unit*3/4; i++ {
		rec := fmt.Sprintf("region/%s/branch/%02d/employee/%05d", regions[i%len(regions)], i%4, i)
		b = binary.AppendUvarint(b, uint64(len(rec)))
		b = append(b, rec...)
	}
	if len(b) > unit {
		b = b[:unit]
	}
	return append(b, make([]byte, unit-len(b))...)
}

// goldenStoredPayload is an incompressible block: a fixed full-period LCG
// keeps it deterministic without touching math/rand.
func goldenStoredPayload(unit int) []byte {
	b := make([]byte, unit)
	x := uint32(0x2545f491)
	for i := range b {
		x = x*1664525 + 1013904223
		b[i] = byte(x >> 24)
	}
	return b
}

// encodeForTest runs the codec with freshly allocated scratch.
func encodeForTest(payload []byte) []byte {
	dst := make([]byte, len(payload)+spillHeaderLen)
	fc := make([]byte, len(payload))
	return append([]byte(nil), encodeSpillBlock(dst, fc, payload)...)
}

func decodeForTest(unit int, rec []byte) ([]byte, error) {
	out := make([]byte, unit)
	fc := make([]byte, unit)
	err := decodeSpillBlock(out, fc, rec)
	return out, err
}

func TestSpillCodecRoundtrip(t *testing.T) {
	unit := 512
	payloads := map[string][]byte{
		"key-path-records": goldenFCPayload(unit),
		"incompressible":   goldenStoredPayload(unit),
		"all-zeros":        make([]byte, unit),
		"mid-record-start": goldenFCPayload(unit * 2)[unit/3 : unit/3+unit],
		"tiny":             {7},
		"text": append([]byte(strings.Repeat("<employee ID='42'/>", 26)),
			make([]byte, unit-26*19)...),
	}
	for name, payload := range payloads {
		t.Run(name, func(t *testing.T) {
			rec := encodeForTest(payload)
			if len(rec) > len(payload)+spillHeaderLen {
				t.Fatalf("record is %d bytes for a %d-byte payload: exceeds the slot", len(rec), len(payload))
			}
			out, err := decodeForTest(len(payload), rec)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if !bytes.Equal(out, payload) {
				t.Fatal("decoded payload differs from the original")
			}
			// Determinism: the same payload must encode to the same bytes.
			if !bytes.Equal(rec, encodeForTest(payload)) {
				t.Fatal("re-encoding the same payload produced different bytes")
			}
		})
	}
}

func TestSpillCodecCompresses(t *testing.T) {
	payload := goldenFCPayload(4096)
	rec := encodeForTest(payload)
	if rec[5] != codecFront {
		t.Fatalf("key-path payload chose codec %d, want front-coded (%d)", rec[5], codecFront)
	}
	if len(rec)*2 > len(payload) {
		t.Errorf("key-path block compressed %d -> %d bytes; want at least 2x", len(payload), len(rec))
	}
	stored := encodeForTest(goldenStoredPayload(4096))
	if stored[5] != codecStored {
		t.Fatalf("incompressible payload chose codec %d, want stored (%d)", stored[5], codecStored)
	}
	if len(stored) != 4096+spillHeaderLen {
		t.Errorf("stored record is %d bytes, want %d", len(stored), 4096+spillHeaderLen)
	}
}

// TestSpillGoldenFormat pins the on-scratch encoding byte for byte against
// checked-in fixtures: any accidental drift in the header layout, the
// front coder's segmentation, or the flate parameters fails here before it
// can strand data written by a previous build.
func TestSpillGoldenFormat(t *testing.T) {
	const unit = 512
	fixtures := []struct {
		file    string
		payload []byte
		codec   byte
	}{
		{"spill_golden_fc.bin", goldenFCPayload(unit), codecFront},
		{"spill_golden_stored.bin", goldenStoredPayload(unit), codecStored},
	}
	for _, fx := range fixtures {
		t.Run(fx.file, func(t *testing.T) {
			rec := encodeForTest(fx.payload)
			path := filepath.Join("testdata", fx.file)
			if *updateSpillGolden {
				if err := os.WriteFile(path, rec, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(rec, want) {
				t.Fatalf("encoding drifted from the checked-in fixture (%d vs %d bytes); if the format changed on purpose, bump spillVersion and regenerate with -update-spill-golden",
					len(rec), len(want))
			}
			// The fixture must also decode under the current decoder and
			// carry the expected header fields.
			if got := binary.LittleEndian.Uint32(want[0:]); got != spillMagic {
				t.Errorf("fixture magic %08x, want %08x", got, uint32(spillMagic))
			}
			if want[4] != spillVersion {
				t.Errorf("fixture version %d, want %d", want[4], spillVersion)
			}
			if want[5] != fx.codec {
				t.Errorf("fixture codec %d, want %d", want[5], fx.codec)
			}
			if got := binary.LittleEndian.Uint32(want[8:]); got != unit {
				t.Errorf("fixture uncompressed length %d, want %d", got, unit)
			}
			if got := binary.LittleEndian.Uint32(want[12:]); int(got) != len(want)-spillHeaderLen {
				t.Errorf("fixture compLen %d, record carries %d", got, len(want)-spillHeaderLen)
			}
			out, err := decodeForTest(unit, want)
			if err != nil {
				t.Fatalf("fixture does not decode: %v", err)
			}
			if !bytes.Equal(out, fx.payload) {
				t.Fatal("fixture decodes to different payload bytes")
			}
		})
	}

	if *updateSpillGolden {
		writeSpillSeedCorpora(t)
	}
}

func TestSpillVersionMismatch(t *testing.T) {
	payload := goldenFCPayload(512)
	rec := encodeForTest(payload)
	rec[4] = spillVersion + 1
	_, err := decodeForTest(512, rec)
	if err == nil {
		t.Fatal("decoder accepted a record with a future format version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("version-mismatch error does not say so: %v", err)
	}
}

func TestSpillDecodeRejectsDamage(t *testing.T) {
	payload := goldenFCPayload(512)
	good := encodeForTest(payload)
	damage := map[string]func([]byte) []byte{
		"truncated-header":  func(r []byte) []byte { return r[:spillHeaderLen-1] },
		"truncated-payload": func(r []byte) []byte { return r[:len(r)-1] },
		"bad-magic":         func(r []byte) []byte { r[0] ^= 0xff; return r },
		"reserved-set":      func(r []byte) []byte { r[6] = 1; return r },
		"unknown-codec":     func(r []byte) []byte { r[5] = 9; return r },
		"flipped-body":      func(r []byte) []byte { r[spillHeaderLen] ^= 0x40; return r },
		"wrong-unclen":      func(r []byte) []byte { binary.LittleEndian.PutUint32(r[8:], 513); return r },
		"all-zeros":         func(r []byte) []byte { return make([]byte, len(r)) },
	}
	for name, mutate := range damage {
		t.Run(name, func(t *testing.T) {
			rec := mutate(append([]byte(nil), good...))
			if _, err := decodeForTest(512, rec); err == nil {
				// A single body bit flip can still be a valid flate stream
				// for another payload only with vanishing probability; all
				// these mutations must be rejected.
				t.Fatalf("decoder accepted a %s record", name)
			}
		})
	}
}

// compressedStack builds a CompressedBackend over an in-memory store with
// physical accounting underneath, the way hardenStack assembles it.
func compressedStack(unit int, stats *Stats) (*CompressedBackend, Backend) {
	mem := NewMemBackend()
	return NewCompressedBackend(NewPhysCountBackend(mem, stats), unit, stats), mem
}

func TestCompressedBackendRoundtrip(t *testing.T) {
	const unit = 512
	stats := NewStats()
	cb, _ := compressedStack(unit, stats)

	blocks := [][]byte{
		goldenFCPayload(unit),
		goldenStoredPayload(unit),
		make([]byte, unit),
	}
	for i, p := range blocks {
		if _, err := cb.WriteAtCat(p, int64(i*unit), CatScratch); err != nil {
			t.Fatalf("write block %d: %v", i, err)
		}
	}
	got := make([]byte, unit)
	for i, p := range blocks {
		if _, err := cb.ReadAtCat(got, int64(i*unit), CatScratch); err != nil {
			t.Fatalf("read block %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("block %d read back different bytes", i)
		}
	}
	// A block never written through the layer reads as zeros, costing no
	// physical transfer.
	physReads := stats.PhysReads(CatScratch)
	if _, err := cb.ReadAtCat(got, int64(len(blocks)*unit), CatScratch); err != nil {
		t.Fatalf("read unwritten block: %v", err)
	}
	if !allZero(got) {
		t.Fatal("unwritten block did not read as zeros")
	}
	if stats.PhysReads(CatScratch) != physReads {
		t.Error("reading an unwritten block touched the device")
	}
	// The compressible blocks must have shrunk the physical write bytes
	// below the logical volume; the stored block pays only its header.
	logical := int64(len(blocks) * unit)
	phys := stats.PhysWriteBytes(CatScratch)
	if phys >= logical {
		t.Errorf("physical write bytes %d not below logical %d", phys, logical)
	}
	if cb.ScratchFramesLive() != 0 {
		t.Errorf("%d codec scratch frames leaked", cb.ScratchFramesLive())
	}
}

func TestCompressedBackendRewrite(t *testing.T) {
	const unit = 512
	stats := NewStats()
	cb, _ := compressedStack(unit, stats)
	a, b := goldenFCPayload(unit), goldenStoredPayload(unit)
	got := make([]byte, unit)
	// Rewriting a slot with different content (xstack pages do this) must
	// serve the latest bytes even though the record lengths differ.
	for _, p := range [][]byte{a, b, a} {
		if _, err := cb.WriteAtCat(p, 0, CatScratch); err != nil {
			t.Fatal(err)
		}
		if _, err := cb.ReadAtCat(got, 0, CatScratch); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Fatal("rewritten slot served stale bytes")
		}
	}
}

func TestCompressedBackendCorruption(t *testing.T) {
	const unit = 512
	t.Run("bitflip", func(t *testing.T) {
		stats := NewStats()
		cb, mem := compressedStack(unit, stats)
		if _, err := cb.WriteAtCat(goldenFCPayload(unit), 0, CatScratch); err != nil {
			t.Fatal(err)
		}
		// Flip one bit of the stored record body at rest.
		raw := make([]byte, spillHeaderLen+8)
		if _, err := mem.ReadAt(raw, 0); err != nil {
			t.Fatal(err)
		}
		raw[spillHeaderLen+3] ^= 0x10
		if _, err := mem.WriteAt(raw, 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, unit)
		_, err := cb.ReadAtCat(got, 0, CatScratch)
		var cbe *CorruptBlockError
		if !errors.As(err, &cbe) {
			t.Fatalf("bit-flipped block read returned %v, want *CorruptBlockError", err)
		}
		if !errors.Is(err, ErrCorruptBlock) {
			t.Error("corrupt read does not match ErrCorruptBlock")
		}
		if stats.ChecksumFailures(CatScratch) == 0 {
			t.Error("decode failure not counted")
		}
		if cb.ScratchFramesLive() != 0 {
			t.Error("codec scratch leaked on the corrupt-read path")
		}
	})
	t.Run("torn-to-zeros", func(t *testing.T) {
		stats := NewStats()
		cb, mem := compressedStack(unit, stats)
		p := goldenFCPayload(unit)
		if _, err := cb.WriteAtCat(p, 0, CatScratch); err != nil {
			t.Fatal(err)
		}
		// Erase the record: a torn write whose surviving prefix is zeros
		// must NOT read back as a plausible zero block, because a write
		// was issued here.
		rec := encodeForTest(p)
		if _, err := mem.WriteAt(make([]byte, len(rec)), 0); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, unit)
		if _, err := cb.ReadAtCat(got, 0, CatScratch); !errors.Is(err, ErrCorruptBlock) {
			t.Fatalf("torn-to-zeros read returned %v, want ErrCorruptBlock", err)
		}
	})
}

func TestCompressedBackendAlignment(t *testing.T) {
	cb, _ := compressedStack(512, NewStats())
	if _, err := cb.WriteAtCat(make([]byte, 100), 0, CatScratch); err == nil {
		t.Error("short write accepted")
	}
	if _, err := cb.ReadAtCat(make([]byte, 512), 7, CatScratch); err == nil {
		t.Error("misaligned read accepted")
	}
}

// writeSpillSeedCorpora regenerates the checked-in fuzz seed corpora under
// testdata/fuzz/<FuzzName>/ (run via -update-spill-golden).
func writeSpillSeedCorpora(t *testing.T) {
	t.Helper()
	write := func(fuzzName, seedName string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", fuzzName)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, seedName), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// Roundtrip seeds: block payloads of every interesting shape.
	write("FuzzSpillBlockRoundtrip", "keypath-records", goldenFCPayload(512))
	write("FuzzSpillBlockRoundtrip", "incompressible", goldenStoredPayload(512))
	write("FuzzSpillBlockRoundtrip", "zeros", make([]byte, 256))
	write("FuzzSpillBlockRoundtrip", "mid-record", goldenFCPayload(1024)[171:683])
	write("FuzzSpillBlockRoundtrip", "tiny", []byte{0x03, 'a', 'b', 'c'})
	// Decode seeds: valid records for every codec, plus damaged ones.
	fcRec := encodeForTest(goldenFCPayload(512))
	stRec := encodeForTest(goldenStoredPayload(512))
	flRec := encodeForTest(bytes.Repeat([]byte{0xab, 0xcd, 0x01}, 171)[:512])
	write("FuzzSpillBlockDecode", "valid-front", fcRec)
	write("FuzzSpillBlockDecode", "valid-stored", stRec)
	write("FuzzSpillBlockDecode", "valid-flate", flRec)
	badVer := append([]byte(nil), fcRec...)
	badVer[4] = 9
	write("FuzzSpillBlockDecode", "bad-version", badVer)
	write("FuzzSpillBlockDecode", "truncated", fcRec[:len(fcRec)/2])
	write("FuzzSpillBlockDecode", "garbage", goldenStoredPayload(96))
}

// FuzzSpillBlockRoundtrip drives encode→decode identity over arbitrary
// payloads: whatever bytes a block holds — aligned records, mid-record
// starts, garbage — the codec must reproduce them exactly, within the slot
// bound, deterministically.
func FuzzSpillBlockRoundtrip(f *testing.F) {
	f.Add([]byte{0x03, 'a', 'b', 'c'})
	f.Add(goldenFCPayload(512))
	f.Add(make([]byte, 128))
	f.Fuzz(func(t *testing.T, payload []byte) {
		if len(payload) == 0 || len(payload) > 8<<10 {
			t.Skip()
		}
		rec := encodeForTest(payload)
		if len(rec) > len(payload)+spillHeaderLen {
			t.Fatalf("record %d bytes exceeds the %d-byte slot", len(rec), len(payload)+spillHeaderLen)
		}
		out, err := decodeForTest(len(payload), rec)
		if err != nil {
			t.Fatalf("decode of a fresh encoding failed: %v", err)
		}
		if !bytes.Equal(out, payload) {
			t.Fatal("roundtrip changed the payload")
		}
		if !bytes.Equal(rec, encodeForTest(payload)) {
			t.Fatal("encoding is not deterministic")
		}
	})
}

// FuzzSpillBlockDecode throws arbitrary bytes at the decoder: it must
// never panic — every outcome is either a successful decode or a typed
// error, and the same input always produces the same outcome.
func FuzzSpillBlockDecode(f *testing.F) {
	f.Add(encodeForTest(goldenFCPayload(512)))
	f.Add([]byte("NXSZ"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, rec []byte) {
		if len(rec) > 1<<16 {
			t.Skip()
		}
		for _, unit := range []int{64, 512} {
			out1, err1 := decodeForTest(unit, rec)
			out2, err2 := decodeForTest(unit, rec)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("decode not deterministic: %v vs %v", err1, err2)
			}
			if err1 == nil && !bytes.Equal(out1, out2) {
				t.Fatal("successful decodes disagree")
			}
		}
	})
}
