package em

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"syscall"
	"testing"
	"time"
)

const hbs = 256 // block size used throughout the hardening tests

func fillBlock(seed byte) []byte {
	p := make([]byte, hbs)
	for i := range p {
		p[i] = seed + byte(i)
	}
	return p
}

func TestChecksumRoundTrip(t *testing.T) {
	stats := NewStats()
	cb := NewChecksumBackend(NewMemBackend(), hbs, stats)
	blk := fillBlock(7)
	if _, err := cb.WriteAtCat(blk, 0, CatScratch); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, hbs)
	if _, err := cb.ReadAtCat(got, 0, CatScratch); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Error("checksummed block round trip mismatch")
	}
	if stats.TotalChecksumFailures() != 0 {
		t.Errorf("unexpected checksum failures: %d", stats.TotalChecksumFailures())
	}
}

func TestChecksumUnwrittenBlockReadsZeros(t *testing.T) {
	cb := NewChecksumBackend(NewMemBackend(), hbs, nil)
	got := fillBlock(1) // non-zero, must be overwritten
	if _, err := cb.ReadAtCat(got, 3*hbs, CatScratch); err != nil {
		t.Fatal(err)
	}
	if !allZero(got) {
		t.Error("unwritten block did not read back as zeros")
	}
}

func TestChecksumDetectsBitRot(t *testing.T) {
	stats := NewStats()
	inner := NewMemBackend()
	cb := NewChecksumBackend(inner, hbs, stats)
	if _, err := cb.WriteAtCat(fillBlock(9), 0, CatRunRead); err != nil {
		t.Fatal(err)
	}
	// Flip one payload bit at rest, beneath the checksum layer.
	var b [1]byte
	if _, err := inner.ReadAt(b[:], 10); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x01
	if _, err := inner.WriteAt(b[:], 10); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, hbs)
	_, err := cb.ReadAtCat(got, 0, CatRunRead)
	if !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("bit rot read error = %v, want ErrCorruptBlock", err)
	}
	var ce *CorruptBlockError
	if !errors.As(err, &ce) || ce.Block != 0 {
		t.Errorf("error %v did not identify block 0", err)
	}
	if stats.ChecksumFailures(CatRunRead) != 1 {
		t.Errorf("checksum failures under run-read = %d, want 1", stats.ChecksumFailures(CatRunRead))
	}
}

func TestChecksumDetectsTornWrite(t *testing.T) {
	inner := NewMemBackend()
	cb := NewChecksumBackend(inner, hbs, nil)
	blk := fillBlock(3)
	if _, err := cb.WriteAtCat(blk, 0, CatScratch); err != nil {
		t.Fatal(err)
	}
	// Tear the record: zero out its tail including the trailer.
	zeros := make([]byte, hbs/2+checksumTrailerLen)
	if _, err := inner.WriteAt(zeros, int64(hbs/2)); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, hbs)
	if _, err := cb.ReadAtCat(got, 0, CatScratch); !errors.Is(err, ErrCorruptBlock) {
		t.Fatalf("torn write read error = %v, want ErrCorruptBlock", err)
	}
}

func TestChecksumDetectsTornWriteToZeros(t *testing.T) {
	// The nastiest case: a write was issued but nothing landed, so the
	// block reads back as the same zeros an unwritten block would — only
	// the written-set can tell them apart.
	inner := NewMemBackend()
	cb := NewChecksumBackend(inner, hbs, nil)
	if _, err := cb.WriteAtCat(fillBlock(5), 0, CatScratch); err != nil {
		t.Fatal(err)
	}
	zeros := make([]byte, hbs+checksumTrailerLen)
	if _, err := inner.WriteAt(zeros, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, hbs)
	if _, err := cb.ReadAtCat(got, 0, CatScratch); !errors.Is(err, ErrCorruptBlock) {
		t.Fatal("write-then-all-zeros should be flagged corrupt, not served as zeros")
	}
}

func TestChecksumRejectsUnalignedAccess(t *testing.T) {
	cb := NewChecksumBackend(NewMemBackend(), hbs, nil)
	if _, err := cb.ReadAtCat(make([]byte, hbs), 13, CatScratch); err == nil {
		t.Error("unaligned read should fail")
	}
	if _, err := cb.WriteAtCat(make([]byte, hbs-1), 0, CatScratch); err == nil {
		t.Error("short-buffer write should fail")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want ErrorClass
	}{
		{MarkTransient(errors.New("stall")), ClassTransient},
		{fmt.Errorf("wrapped: %w", MarkTransient(errors.New("stall"))), ClassTransient},
		{syscall.EINTR, ClassTransient},
		{fmt.Errorf("op: %w", syscall.EAGAIN), ClassTransient},
		{&CorruptBlockError{Block: 3, Reason: "crc"}, ClassCorrupt},
		{fmt.Errorf("read: %w", &CorruptBlockError{Block: 1}), ClassCorrupt},
		{errors.New("disk on fire"), ClassPermanent},
		{io.EOF, ClassPermanent},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
	if IsTransient(nil) {
		t.Error("nil must not be transient")
	}
	if !IsCorrupt(&CorruptBlockError{}) {
		t.Error("CorruptBlockError must be corrupt")
	}
}

// flakyBackend fails the first n operations with err, then succeeds.
type flakyBackend struct {
	Backend
	failLeft int
	err      error
}

func (f *flakyBackend) ReadAt(p []byte, off int64) (int, error) {
	if f.failLeft > 0 {
		f.failLeft--
		return 0, f.err
	}
	return f.Backend.ReadAt(p, off)
}

func (f *flakyBackend) WriteAt(p []byte, off int64) (int, error) {
	if f.failLeft > 0 {
		f.failLeft--
		return 0, f.err
	}
	return f.Backend.WriteAt(p, off)
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	stats := NewStats()
	flaky := &flakyBackend{Backend: NewMemBackend(), failLeft: 2, err: MarkTransient(errors.New("stall"))}
	rb := NewRetryBackend(flaky, RetryPolicy{MaxRetries: 3}, stats)
	blk := fillBlock(11)
	if _, err := rb.WriteAtCat(blk, 0, CatDataStack); err != nil {
		t.Fatalf("write should have been retried to success: %v", err)
	}
	if got := stats.Retries(CatDataStack); got != 2 {
		t.Errorf("retries under data-stack = %d, want 2", got)
	}
	got := make([]byte, hbs)
	if _, err := rb.ReadAtCat(got, 0, CatDataStack); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Error("retried write round trip mismatch")
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	stats := NewStats()
	flaky := &flakyBackend{Backend: NewMemBackend(), failLeft: 10, err: MarkTransient(errors.New("stall"))}
	rb := NewRetryBackend(flaky, RetryPolicy{MaxRetries: 2}, stats)
	_, err := rb.ReadAtCat(make([]byte, hbs), 0, CatScratch)
	if !IsTransient(err) {
		t.Fatalf("exhausted retry should surface the transient error, got %v", err)
	}
	if got := stats.Retries(CatScratch); got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
}

func TestRetryIgnoresPermanentErrors(t *testing.T) {
	stats := NewStats()
	flaky := &flakyBackend{Backend: NewMemBackend(), failLeft: 5, err: errors.New("controller gone")}
	rb := NewRetryBackend(flaky, RetryPolicy{MaxRetries: 3}, stats)
	if _, err := rb.ReadAtCat(make([]byte, hbs), 0, CatScratch); err == nil {
		t.Fatal("permanent error should surface")
	}
	if got := stats.TotalRetries(); got != 0 {
		t.Errorf("permanent error consumed %d retries, want 0", got)
	}
}

func TestRetryCorruptReadsPolicy(t *testing.T) {
	corrupt := &flakyBackend{Backend: NewMemBackend(), failLeft: 1, err: &CorruptBlockError{Block: 0, Reason: "in transit"}}
	rb := NewRetryBackend(corrupt, RetryPolicy{MaxRetries: 2, RetryCorruptReads: true}, nil)
	if _, err := rb.ReadAtCat(make([]byte, hbs), 0, CatScratch); err != nil {
		t.Fatalf("in-transit corruption should clear on re-read: %v", err)
	}
	// Writes never retry on corruption.
	corrupt = &flakyBackend{Backend: NewMemBackend(), failLeft: 1, err: &CorruptBlockError{Block: 0}}
	rb = NewRetryBackend(corrupt, RetryPolicy{MaxRetries: 2, RetryCorruptReads: true}, nil)
	if _, err := rb.WriteAtCat(make([]byte, hbs), 0, CatScratch); !IsCorrupt(err) {
		t.Fatalf("corrupt write error should surface immediately, got %v", err)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	var slept []time.Duration
	policy := RetryPolicy{
		MaxRetries: 4,
		BaseDelay:  time.Millisecond,
		MaxDelay:   4 * time.Millisecond,
		Sleep:      func(d time.Duration) { slept = append(slept, d) },
	}
	flaky := &flakyBackend{Backend: NewMemBackend(), failLeft: 10, err: MarkTransient(errors.New("stall"))}
	rb := NewRetryBackend(flaky, policy, nil)
	rb.ReadAtCat(make([]byte, hbs), 0, CatScratch)
	want := []time.Duration{time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("backoff %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

func TestChaosBackendDeterminism(t *testing.T) {
	run := func() (map[string]int64, []error) {
		cfg := ChaosConfig{
			Seed:               1234,
			ReadTransientProb:  0.2,
			WriteTransientProb: 0.2,
			WriteBitFlipProb:   0.1,
			TornWriteProb:      0.1,
		}
		cb := NewChaosBackend(NewMemBackend(), cfg)
		var errs []error
		blk := fillBlock(1)
		got := make([]byte, hbs)
		for i := 0; i < 200; i++ {
			_, err := cb.WriteAt(blk, int64(i%8)*hbs)
			errs = append(errs, err)
			_, err = cb.ReadAt(got, int64(i%8)*hbs)
			errs = append(errs, err)
		}
		return cb.Injected(), errs
	}
	inj1, errs1 := run()
	inj2, errs2 := run()
	if len(inj1) == 0 {
		t.Fatal("chaos injected nothing at these probabilities")
	}
	if fmt.Sprint(inj1) != fmt.Sprint(inj2) {
		t.Errorf("injection counts differ across identical seeded runs: %v vs %v", inj1, inj2)
	}
	for i := range errs1 {
		if (errs1[i] == nil) != (errs2[i] == nil) {
			t.Fatalf("error sequence diverged at op %d", i)
		}
	}
}

func TestChaosMaxConsecutiveBoundsFaults(t *testing.T) {
	cfg := ChaosConfig{Seed: 9, ReadTransientProb: 1.0, MaxConsecutive: 3}
	cb := NewChaosBackend(NewMemBackend(), cfg)
	got := make([]byte, hbs)
	fails := 0
	for i := 0; i < 4; i++ {
		if _, err := cb.ReadAt(got, 0); err != nil {
			fails++
		}
	}
	if fails != 3 {
		t.Errorf("consecutive faults = %d, want exactly 3 before the forced success", fails)
	}
}

// TestHardenedEnvSameIOCounts asserts the acceptance criterion that
// checksums+retry leave the fault-free block-transfer counters unchanged:
// hardening must not cost measurable I/O on a healthy device.
func TestHardenedEnvSameIOCounts(t *testing.T) {
	runOnce := func(cfg Config) int64 {
		env, err := NewEnv(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()
		s := NewStream(env.Dev, CatScratch)
		w, err := s.NewWriter(env.Budget)
		if err != nil {
			t.Fatal(err)
		}
		payload := bytes.Repeat([]byte("spill"), 2000)
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := s.NewReader(env.Budget, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, r); err != nil {
			t.Fatal(err)
		}
		r.Close()
		return env.Stats.TotalIOs()
	}
	base := Config{BlockSize: 512, MemBlocks: 8}
	hardened := base
	hardened.VerifyChecksums = true
	hardened.Retry = RetryPolicy{MaxRetries: 3, RetryCorruptReads: true}
	if plain, hard := runOnce(base), runOnce(hardened); plain != hard {
		t.Errorf("hardened env cost %d I/Os, plain %d — hardening must be free of block transfers", hard, plain)
	}
}

func TestEnvChainClosesThroughHardening(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{BlockSize: 512, MemBlocks: 8, ScratchDir: dir,
		VerifyChecksums: true, Retry: RetryPolicy{MaxRetries: 2}}
	env, err := NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := env.Dev.AllocBlock()
	blk := make([]byte, 512)
	if err := env.Dev.WriteBlock(CatScratch, id, blk); err != nil {
		t.Fatal(err)
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}
	ents, err := osReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Errorf("scratch file leaked through the hardened close chain: %v", ents)
	}
}

// osReadDir lists dir's entry names (tiny helper keeping the os import
// localized).
func osReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}
