package em

import "sync"

// TriggerBackend wraps a Backend and fires a callback exactly once, just
// before the N-th backend operation (reads and writes share one 1-based
// counter) executes. It is the deterministic clock of the cancel-anywhere
// chaos harness: "cancel the run at device operation N" needs an op
// counter at the backend boundary, below the Device's lifecycle check, so
// that operations the Device refuses after the trigger are NOT counted —
// which is what makes Ops() - N a faithful measure of how many block
// transfers the run still performed after being told to stop.
//
// The callback runs outside the lock, on the goroutine performing the
// N-th operation, before that operation reaches the inner backend; the
// triggering operation itself still executes (it was already past the
// Device's check when the trigger fired).
type TriggerBackend struct {
	inner Backend

	mu    sync.Mutex
	at    int64 // fire before op number `at`; <= 0 disarmed
	ops   int64
	fired bool
	fn    func()
}

// NewTriggerBackend wraps inner, arming fn to fire once before the n-th
// operation (1-based). n <= 0 never fires.
func NewTriggerBackend(inner Backend, n int64, fn func()) *TriggerBackend {
	return &TriggerBackend{inner: inner, at: n, fn: fn}
}

// Ops returns how many backend operations have started so far.
func (b *TriggerBackend) Ops() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ops
}

// Fired reports whether the trigger has gone off.
func (b *TriggerBackend) Fired() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.fired
}

// step counts one operation and fires the callback when the count reaches
// the armed position.
func (b *TriggerBackend) step() {
	b.mu.Lock()
	b.ops++
	fire := !b.fired && b.at > 0 && b.ops >= b.at
	if fire {
		b.fired = true
	}
	fn := b.fn
	b.mu.Unlock()
	if fire && fn != nil {
		fn()
	}
}

// ReadAt implements io.ReaderAt, counting the operation.
func (b *TriggerBackend) ReadAt(p []byte, off int64) (int, error) {
	b.step()
	return b.inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt, counting the operation.
func (b *TriggerBackend) WriteAt(p []byte, off int64) (int, error) {
	b.step()
	return b.inner.WriteAt(p, off)
}

// Close closes the wrapped backend.
func (b *TriggerBackend) Close() error { return b.inner.Close() }
