package em

import (
	"bufio"
	"io"
)

// CountingReader wraps an io.Reader (typically the input XML file) and
// charges one block read to a Stats category per blockSize bytes consumed,
// so the initial scan of the input shows up in the I/O accounting just as it
// does in the paper's model. Buffering is a single block, consistent with a
// sequential one-block-at-a-time scan.
type CountingReader struct {
	br        *bufio.Reader
	stats     *Stats
	cat       Category
	blockSize int
	residual  int // bytes consumed since the last charged block
	total     int64
}

// NewCountingReader wraps r, charging to stats under cat at blockSize
// granularity.
func NewCountingReader(r io.Reader, blockSize int, stats *Stats, cat Category) *CountingReader {
	return &CountingReader{
		br:        bufio.NewReaderSize(r, blockSize),
		stats:     stats,
		cat:       cat,
		blockSize: blockSize,
	}
}

func (c *CountingReader) charge(n int) {
	c.total += int64(n)
	c.residual += n
	for c.residual >= c.blockSize {
		c.stats.AddReads(c.cat, 1)
		c.residual -= c.blockSize
	}
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	n, err := c.br.Read(p)
	c.charge(n)
	return n, err
}

// ReadByte implements io.ByteReader.
func (c *CountingReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err == nil {
		c.charge(1)
	}
	return b, err
}

// Finish charges the final partial block, if any. Call once at end of scan.
func (c *CountingReader) Finish() {
	if c.residual > 0 {
		c.stats.AddReads(c.cat, 1)
		c.residual = 0
	}
}

// BytesRead returns the total bytes consumed so far.
func (c *CountingReader) BytesRead() int64 { return c.total }

// CountingWriter wraps an io.Writer (typically the output document file) and
// charges one block write per blockSize bytes produced.
type CountingWriter struct {
	bw        *bufio.Writer
	stats     *Stats
	cat       Category
	blockSize int
	residual  int
	total     int64
}

// NewCountingWriter wraps w, charging to stats under cat at blockSize
// granularity.
func NewCountingWriter(w io.Writer, blockSize int, stats *Stats, cat Category) *CountingWriter {
	return &CountingWriter{
		bw:        bufio.NewWriterSize(w, blockSize),
		stats:     stats,
		cat:       cat,
		blockSize: blockSize,
	}
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	n, err := c.bw.Write(p)
	c.total += int64(n)
	c.residual += n
	for c.residual >= c.blockSize {
		c.stats.AddWrites(c.cat, 1)
		c.residual -= c.blockSize
	}
	return n, err
}

// Flush drains buffered bytes to the underlying writer and charges the final
// partial block, if any. Call once when the document is complete.
func (c *CountingWriter) Flush() error {
	if c.residual > 0 {
		c.stats.AddWrites(c.cat, 1)
		c.residual = 0
	}
	return c.bw.Flush()
}

// BytesWritten returns the total bytes produced so far.
func (c *CountingWriter) BytesWritten() int64 { return c.total }
