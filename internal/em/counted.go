package em

import (
	"fmt"
	"io"
)

// CountingReader wraps an io.Reader (typically the input XML file) and
// charges one block read to a Stats category per blockSize bytes consumed,
// so the initial scan of the input shows up in the I/O accounting just as it
// does in the paper's model. Buffering is a single frame from the device's
// pool, consistent with a sequential one-block-at-a-time scan; Close
// recycles it, so a reader's buffer participates in the frame accounting
// like every other block buffer.
type CountingReader struct {
	r     io.Reader
	dev   *Device
	stats *Stats
	cat   Category

	frame      Frame
	buf        []byte
	start, end int   // unconsumed window of buf
	err        error // sticky error from the underlying reader

	residual int // bytes consumed since the last charged block
	total    int64
	closed   bool
}

// NewCountingReader wraps r, buffering through one frame of dev and
// charging reads to dev's stats under cat at block granularity. Call Close
// when the scan is done to recycle the frame.
func NewCountingReader(r io.Reader, dev *Device, cat Category) *CountingReader {
	frame := dev.Frames().Acquire()
	return &CountingReader{
		r:     r,
		dev:   dev,
		stats: dev.Stats(),
		cat:   cat,
		frame: frame,
		buf:   frame.Bytes(),
	}
}

func (c *CountingReader) charge(n int) {
	c.total += int64(n)
	c.residual += n
	for c.residual >= len(c.buf) {
		c.stats.AddReads(c.cat, 1)
		c.stats.AddReadBytes(c.cat, int64(len(c.buf)))
		c.residual -= len(c.buf)
	}
}

// fill refreshes the buffer window from the underlying reader. On return
// either the window is non-empty or the sticky error is set. The run's
// lifecycle is polled per refill: the input scan is the one long phase
// with no block traffic of its own, so without this check a cancellation
// landing mid-scan would not be observed until the first spill.
func (c *CountingReader) fill() error {
	if c.start < c.end {
		return nil
	}
	if c.err != nil {
		return c.err
	}
	if err := c.dev.Interrupted(); err != nil {
		c.err = err
		return err
	}
	for range [100]struct{}{} {
		n, err := c.r.Read(c.buf)
		if n > 0 {
			c.start, c.end = 0, n
			c.err = err // delivered with the last buffered bytes
			return nil
		}
		if err != nil {
			c.err = err
			return err
		}
	}
	c.err = io.ErrNoProgress
	return c.err
}

// Read implements io.Reader.
func (c *CountingReader) Read(p []byte) (int, error) {
	if c.closed {
		return 0, fmt.Errorf("em: read from closed CountingReader")
	}
	if len(p) == 0 {
		return 0, nil
	}
	if err := c.fill(); err != nil {
		return 0, err
	}
	n := copy(p, c.buf[c.start:c.end])
	c.start += n
	c.charge(n)
	return n, nil
}

// ReadByte implements io.ByteReader.
func (c *CountingReader) ReadByte() (byte, error) {
	if c.closed {
		return 0, fmt.Errorf("em: read from closed CountingReader")
	}
	if err := c.fill(); err != nil {
		return 0, err
	}
	b := c.buf[c.start]
	c.start++
	c.charge(1)
	return b, nil
}

// Finish charges the final partial block, if any. Call once at end of scan.
func (c *CountingReader) Finish() {
	if c.residual > 0 {
		c.stats.AddReads(c.cat, 1)
		c.stats.AddReadBytes(c.cat, int64(len(c.buf)))
		c.residual = 0
	}
}

// BytesRead returns the total bytes consumed so far.
func (c *CountingReader) BytesRead() int64 { return c.total }

// Close recycles the buffer frame. Idempotent; further reads fail.
func (c *CountingReader) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.dev.Frames().Release(c.frame)
	c.buf = nil
	c.start, c.end = 0, 0
	return nil
}

// CountingWriter wraps an io.Writer (typically the output document file) and
// charges one block write per blockSize bytes produced, buffering through
// one frame of the device's pool. Call Flush when the document is complete
// and Close to recycle the frame.
type CountingWriter struct {
	w     io.Writer
	dev   *Device
	stats *Stats
	cat   Category

	frame Frame
	buf   []byte
	used  int

	residual int
	total    int64
	closed   bool
}

// NewCountingWriter wraps w, buffering through one frame of dev and
// charging writes to dev's stats under cat at block granularity.
func NewCountingWriter(w io.Writer, dev *Device, cat Category) *CountingWriter {
	frame := dev.Frames().Acquire()
	return &CountingWriter{
		w:     w,
		dev:   dev,
		stats: dev.Stats(),
		cat:   cat,
		frame: frame,
		buf:   frame.Bytes(),
	}
}

func (c *CountingWriter) charge(n int) {
	c.total += int64(n)
	c.residual += n
	for c.residual >= len(c.buf) {
		c.stats.AddWrites(c.cat, 1)
		c.stats.AddWriteBytes(c.cat, int64(len(c.buf)))
		c.residual -= len(c.buf)
	}
}

// flushBuf drains the buffered bytes to the underlying writer, polling
// the run's lifecycle first — the output phase writes here block by
// block, so cancellation cuts the document off at a block boundary.
func (c *CountingWriter) flushBuf() error {
	if c.used == 0 {
		return nil
	}
	if err := c.dev.Interrupted(); err != nil {
		return err
	}
	n, err := c.w.Write(c.buf[:c.used])
	if err == nil && n < c.used {
		err = io.ErrShortWrite
	}
	c.used = 0
	return err
}

// Write implements io.Writer.
func (c *CountingWriter) Write(p []byte) (int, error) {
	if c.closed {
		return 0, fmt.Errorf("em: write to closed CountingWriter")
	}
	total := 0
	for len(p) > 0 {
		if c.used == 0 && len(p) >= len(c.buf) {
			// A full block (or more) with nothing buffered: hand the
			// leading whole blocks straight to the writer, no copy.
			whole := len(p) - len(p)%len(c.buf)
			n, err := c.w.Write(p[:whole])
			c.charge(n)
			total += n
			if err != nil {
				return total, err
			}
			p = p[whole:]
			continue
		}
		n := copy(c.buf[c.used:], p)
		c.used += n
		c.charge(n)
		total += n
		p = p[n:]
		if c.used == len(c.buf) {
			if err := c.flushBuf(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// Flush drains buffered bytes to the underlying writer and charges the final
// partial block, if any. Call once when the document is complete.
func (c *CountingWriter) Flush() error {
	if c.closed {
		return fmt.Errorf("em: flush of closed CountingWriter")
	}
	if c.residual > 0 {
		c.stats.AddWrites(c.cat, 1)
		c.stats.AddWriteBytes(c.cat, int64(len(c.buf)))
		c.residual = 0
	}
	return c.flushBuf()
}

// BytesWritten returns the total bytes produced so far.
func (c *CountingWriter) BytesWritten() int64 { return c.total }

// Close recycles the buffer frame without flushing (call Flush first on the
// success path; on error paths the partial tail is deliberately dropped).
// Idempotent; further writes fail.
func (c *CountingWriter) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	c.dev.Frames().Release(c.frame)
	c.buf = nil
	c.used = 0
	return nil
}
