package em

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// Stream is an append-only byte sequence stored in device blocks, the
// equivalent of a TPIE stream. Sorted runs and external-merge-sort runs are
// Streams. A Stream may be written once (through a single StreamWriter) and
// then read any number of times, from any byte offset.
//
// The per-stream extent table (the list of block IDs making up the stream)
// is kept in memory. This mirrors TPIE, where each stream is an OS file and
// the extent metadata lives in the filesystem rather than in the
// application's M blocks; it is bookkeeping of size O(N/B) words, not data.
type Stream struct {
	dev *Device
	cat Category

	mu     sync.Mutex
	blocks []int64
	size   int64 // bytes appended and flushed or pending in the writer
	sealed bool  // true once the writer has been closed

	// seg is the segmented-write state (PreallocateSegmented), nil on
	// ordinary append-only streams.
	seg *segStream
}

// NewStream creates an empty stream on dev whose I/Os are charged to
// category cat.
func NewStream(dev *Device, cat Category) *Stream {
	return &Stream{dev: dev, cat: cat}
}

// Category returns the accounting category the stream charges.
func (s *Stream) Category() Category { return s.cat }

// Size returns the number of bytes in the stream. While a writer is open the
// value includes only flushed whole blocks; after Close it is exact.
func (s *Stream) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Blocks returns the number of device blocks occupied by the stream.
func (s *Stream) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

func (s *Stream) blockID(i int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.blocks) {
		return 0, fmt.Errorf("em: stream block index %d out of range [0,%d)", i, len(s.blocks))
	}
	return s.blocks[i], nil
}

// StreamWriter appends bytes to a Stream through a single block-sized
// buffer. Construct with Stream.NewWriter; the buffer is granted from the
// supplied Budget and released on Close.
//
// On a device with write-behind enabled, a full buffer is handed to the
// flusher goroutine and the writer acquires a fresh frame instead of
// blocking on the device; flush errors (including ErrExhausted) surface at
// the next Write or at Close, and Close drains every outstanding flush
// before sealing the stream.
type StreamWriter struct {
	s      *Stream
	budget *Budget
	frame  Frame
	buf    []byte
	used   int
	closed bool

	// Write-behind state. wg tracks outstanding flushes; the first flush
	// error is latched under errMu and delivered at the next touch point
	// (errSet makes the common no-error check lock-free).
	async    bool
	wg       sync.WaitGroup
	errMu    sync.Mutex
	flushErr error
	errSet   atomic.Bool
}

// NewWriter opens the stream for appending. One block of main memory is
// granted from budget for the write buffer (pass nil to skip budgeting, for
// tests). A stream accepts exactly one writer over its lifetime.
func (s *Stream) NewWriter(budget *Budget) (*StreamWriter, error) {
	s.mu.Lock()
	if s.sealed || len(s.blocks) > 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("em: stream already written")
	}
	s.mu.Unlock()
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	frame := s.dev.Frames().Acquire()
	_, wb := s.dev.AsyncDepths()
	return &StreamWriter{s: s, budget: budget, frame: frame, buf: frame.Bytes(), async: wb > 0}, nil
}

// onFlush is the write-behind completion callback; it runs on the flusher
// goroutine.
func (w *StreamWriter) onFlush(err error) {
	if err != nil {
		w.errMu.Lock()
		if w.flushErr == nil {
			w.flushErr = err
			w.errSet.Store(true)
		}
		w.errMu.Unlock()
	}
	w.wg.Done()
}

// flushError reports the latched write-behind error, if any.
func (w *StreamWriter) flushError() error {
	if !w.errSet.Load() {
		return nil
	}
	w.errMu.Lock()
	defer w.errMu.Unlock()
	return w.flushErr
}

// flushBlock ships the writer's (full) buffer to a freshly allocated
// device block — through the write-behind queue when available, falling
// back to a synchronous write — and appends the block to the extent table.
// IDs are allocated and appended in stream order on both paths; on the
// async path the append happens at submission, which is safe because a
// stream whose flush failed is never sealed and so can never be read.
func (w *StreamWriter) flushBlock() error {
	s := w.s
	id := s.dev.AllocBlock()
	if w.async {
		w.wg.Add(1)
		if s.dev.WriteBlockBehind(s.cat, id, w.frame, w.onFlush) {
			s.mu.Lock()
			s.blocks = append(s.blocks, id)
			s.mu.Unlock()
			w.frame = s.dev.Frames().Acquire()
			w.buf = w.frame.Bytes()
			return nil
		}
		w.wg.Done() // engine unavailable (shutting down): go synchronous
	}
	if err := s.dev.WriteBlock(s.cat, id, w.buf); err != nil {
		return err
	}
	s.mu.Lock()
	s.blocks = append(s.blocks, id)
	s.mu.Unlock()
	return nil
}

// Write appends p to the stream, flushing whole blocks to the device as the
// buffer fills. It implements io.Writer.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("em: write to closed StreamWriter")
	}
	if err := w.flushError(); err != nil {
		return 0, err
	}
	total := 0
	for len(p) > 0 {
		n := copy(w.buf[w.used:], p)
		w.used += n
		p = p[n:]
		total += n
		if w.used == len(w.buf) {
			if err := w.flushBlock(); err != nil {
				return total, err
			}
			w.s.mu.Lock()
			w.s.size += int64(w.s.dev.BlockSize())
			w.s.mu.Unlock()
			w.used = 0
		}
	}
	return total, nil
}

// Close flushes any partial final block (zero-padded on disk, excluded
// from Size), drains every outstanding write-behind flush, seals the
// stream for reading, and releases the buffer grant. A stream whose
// flushes did not all succeed is not sealed; the first flush error is
// returned here if it was not already delivered to a Write.
func (w *StreamWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	defer func() {
		w.s.dev.Frames().Release(w.frame)
		w.buf = nil
		if w.budget != nil {
			w.budget.Release(1)
		}
	}()
	var firstErr error
	if w.used > 0 {
		for i := w.used; i < len(w.buf); i++ {
			w.buf[i] = 0
		}
		used := w.used
		w.used = 0
		if err := w.flushBlock(); err != nil {
			firstErr = err
		} else {
			w.s.mu.Lock()
			w.s.size += int64(used)
			w.s.mu.Unlock()
		}
	}
	// Drain: every submitted flush has completed (and charged its logical
	// write) before the stream becomes readable.
	w.wg.Wait()
	if err := w.flushError(); firstErr == nil && err != nil {
		firstErr = err
	}
	if firstErr != nil {
		return firstErr
	}
	w.s.mu.Lock()
	w.s.sealed = true
	w.s.mu.Unlock()
	return nil
}

// StreamReader reads a sealed Stream sequentially from a byte offset,
// holding one block of the stream in memory at a time. Re-opening a reader
// mid-stream re-reads the containing block, which is exactly the 1+p(b)
// block-access pattern accounted for in Lemma 4.12.
//
// On a device with read-ahead enabled, the reader keeps up to the
// configured depth of upcoming extent-table blocks in flight on the
// prefetch worker, swapping its buffer frame against completed slots as it
// advances. Tokens are shared device-wide and acquired without blocking,
// so any number of concurrent readers degrade to synchronous reads rather
// than contend; the logical read for each block is charged when the reader
// enters it, prefetched or not.
type StreamReader struct {
	s      *Stream
	cat    Category
	budget *Budget
	frame  Frame
	buf    []byte
	cur    int // index of the block currently in buf, -1 if none
	pos    int64
	limit  int64 // first byte past the readable range (stream size, or the range end)
	closed bool

	// Read-ahead pipeline: slots holds scheduled fetches for consecutive
	// block indexes; nextFetch is the next index to schedule.
	ra        int
	slots     []readerSlot
	nextFetch int
}

// readerSlot pairs a scheduled prefetch with the extent-table index it
// will satisfy.
type readerSlot struct {
	blk  int
	slot *prefetchSlot
}

// NewReader opens the stream for reading starting at byte offset off,
// charging reads to the stream's own category. One block of main memory is
// granted from budget (nil to skip budgeting).
func (s *Stream) NewReader(budget *Budget, off int64) (*StreamReader, error) {
	return s.NewReaderCat(budget, off, s.cat)
}

// NewReaderCat is NewReader with reads charged to an explicit category.
// NEXSORT writes sorted runs during the sorting phase (charged as subtree
// sorting, Lemma 4.9) but reads them back during the output phase (charged
// as run reads, Lemma 4.12), so the read category differs from the write
// category on the same stream.
func (s *Stream) NewReaderCat(budget *Budget, off int64, cat Category) (*StreamReader, error) {
	s.mu.Lock()
	sealed, size := s.sealed, s.size
	s.mu.Unlock()
	if !sealed {
		return nil, fmt.Errorf("em: stream not sealed for reading")
	}
	if off < 0 || off > size {
		return nil, fmt.Errorf("em: read offset %d out of range [0,%d]", off, size)
	}
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	frame := s.dev.Frames().Acquire()
	ra, _ := s.dev.AsyncDepths()
	return &StreamReader{s: s, cat: cat, budget: budget, frame: frame, buf: frame.Bytes(), cur: -1, pos: off, limit: size, ra: ra}, nil
}

// NewRangeReader opens a reader over the byte range [off, end) of the
// stream, charging reads to the stream's own category. See
// NewRangeReaderCat.
func (s *Stream) NewRangeReader(budget *Budget, off, end int64) (*StreamReader, error) {
	return s.NewRangeReaderCat(budget, off, end, s.cat)
}

// NewRangeReaderCat opens a reader that serves exactly the byte range
// [off, end) of the sealed stream and then reports io.EOF, charging reads
// to category cat. This is the block-addressable re-open the partitioned
// merge uses to start mid-run at a fence boundary: the reader touches only
// the blocks overlapping the range — read-ahead included, so a bounded
// reader never prefetches into blocks another partition's reader owns.
func (s *Stream) NewRangeReaderCat(budget *Budget, off, end int64, cat Category) (*StreamReader, error) {
	s.mu.Lock()
	size := s.size
	s.mu.Unlock()
	if end < off || end > size {
		return nil, fmt.Errorf("em: read range [%d,%d) out of range [0,%d]", off, end, size)
	}
	r, err := s.NewReaderCat(budget, off, cat)
	if err != nil {
		return nil, err
	}
	r.limit = end
	return r, nil
}

// Offset returns the byte offset of the next read.
func (r *StreamReader) Offset() int64 { return r.pos }

// Read implements io.Reader, returning io.EOF at the end of the stream.
func (r *StreamReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("em: read from closed StreamReader")
	}
	if r.pos >= r.limit {
		return 0, io.EOF
	}
	bs := int64(len(r.buf))
	blk := int(r.pos / bs)
	if blk != r.cur {
		if err := r.enterBlock(blk); err != nil {
			return 0, err
		}
	}
	inBlock := int(r.pos % bs)
	avail := int(min64(bs, r.limit-int64(blk)*bs)) - inBlock
	n := copy(p, r.buf[inBlock:inBlock+avail])
	r.pos += int64(n)
	return n, nil
}

// enterBlock makes blk the resident block: from the read-ahead pipeline
// when its head slot matches, synchronously otherwise, then tops the
// pipeline back up behind the new position.
func (r *StreamReader) enterBlock(blk int) error {
	if r.ra > 0 {
		// Drop slots the position has moved past (a failed consume that was
		// later satisfied synchronously leaves one behind).
		for len(r.slots) > 0 && r.slots[0].blk < blk {
			r.s.dev.async.abandon(r.slots[0].slot)
			r.slots = r.slots[1:]
		}
		r.fillPipeline(blk)
		if len(r.slots) > 0 && r.slots[0].blk == blk {
			head := r.slots[0]
			frame, err := r.s.dev.async.consume(head.slot, r.frame)
			r.frame = frame
			r.buf = frame.Bytes()
			if err != nil {
				r.slots = r.slots[1:]
				return err
			}
			r.slots = r.slots[1:]
			r.cur = blk
			r.fillPipeline(blk + 1)
			return nil
		}
	}
	id, err := r.s.blockID(blk)
	if err != nil {
		return err
	}
	if err := r.s.dev.ReadBlock(r.cat, id, r.buf); err != nil {
		return err
	}
	r.cur = blk
	if r.ra > 0 {
		r.fillPipeline(blk + 1)
	}
	return nil
}

// fillPipeline schedules prefetches for consecutive blocks starting no
// earlier than from, up to the read-ahead depth, stopping early when the
// device has no free tokens (concurrent readers share them; whoever is
// short simply reads synchronously).
func (r *StreamReader) fillPipeline(from int) {
	nblocks := r.s.Blocks()
	// A range reader prefetches no further than its own range: blocks past
	// the limit belong to other readers (other merge partitions), and
	// fetching them would only surface as PrefetchWasted.
	if bs := int64(len(r.buf)); bs > 0 {
		if lastBlk := int((r.limit + bs - 1) / bs); lastBlk < nblocks {
			nblocks = lastBlk
		}
	}
	if r.nextFetch < from {
		r.nextFetch = from
	}
	for len(r.slots) < r.ra && r.nextFetch < nblocks {
		id, err := r.s.blockID(r.nextFetch)
		if err != nil {
			return
		}
		s := r.s.dev.async.tryPrefetch(r.cat, id)
		if s == nil {
			return
		}
		r.slots = append(r.slots, readerSlot{blk: r.nextFetch, slot: s})
		r.nextFetch++
	}
}

// ReadByte implements io.ByteReader.
func (r *StreamReader) ReadByte() (byte, error) {
	var b [1]byte
	n, err := r.Read(b[:])
	if n == 1 {
		return b[0], nil
	}
	if err == nil {
		err = io.EOF
	}
	return 0, err
}

// Close abandons any in-flight prefetches (waiting for the worker to
// finish with their frames), recycles the buffer frame and releases its
// grant.
func (r *StreamReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	for _, rs := range r.slots {
		r.s.dev.async.abandon(rs.slot)
	}
	r.slots = nil
	r.s.dev.Frames().Release(r.frame)
	r.buf = nil
	if r.budget != nil {
		r.budget.Release(1)
	}
	return nil
}

// segStream is the shared bookkeeping behind segmented writing
// (PreallocateSegmented): how many SegmentWriters are open, and the
// partial-block fragments they left at segment boundaries for
// FinishSegmented to stitch.
type segStream struct {
	mu    sync.Mutex
	open  int
	short bool // a writer closed before reaching its segment end
	frags map[int][]segFrag
}

// segFrag is one partial coverage of a boundary block: the raw bytes a
// segment contributed at absolute stream offset off.
type segFrag struct {
	off int64
	b   []byte
}

// PreallocateSegmented prepares an empty stream for segmented writing: the
// full extent table for total bytes is allocated up front, so independent
// SegmentWriters can fill disjoint byte ranges concurrently — the
// partitioned merge writes one output segment per partition this way. The
// block count (and therefore the write count: every block is written
// exactly once, interior blocks by their segment's writer and boundary
// blocks by FinishSegmented) is ceil(total/B), identical to an append-only
// writer producing the same bytes. The stream becomes readable only after
// FinishSegmented seals it.
func (s *Stream) PreallocateSegmented(total int64) error {
	if total < 0 {
		return fmt.Errorf("em: negative segmented stream size %d", total)
	}
	// dev is write-once at construction, so block allocation happens outside
	// the critical section; only the stream bookkeeping commits under mu.
	bs := int64(s.dev.BlockSize())
	n := int((total + bs - 1) / bs)
	blocks := make([]int64, n)
	for i := range blocks {
		blocks[i] = s.dev.AllocBlock()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.sealed || len(s.blocks) > 0 || s.seg != nil {
		return fmt.Errorf("em: stream already written")
	}
	s.blocks = blocks
	s.size = total
	s.seg = &segStream{frags: make(map[int][]segFrag)}
	return nil
}

// SegmentWriter fills the byte range [off, end) of a preallocated stream
// through a single block-sized buffer. Blocks the segment covers entirely
// are written directly (and concurrently with other segments' writers);
// the partial head/tail coverage of blocks shared with a neighboring
// segment is retained as fragments that FinishSegmented assembles and
// writes once. Construct with Stream.NewSegmentWriter.
type SegmentWriter struct {
	s        *Stream
	seg      *segStream
	budget   *Budget
	frame    Frame
	buf      []byte
	off, end int64
	pos      int64
	covStart int64 // start of the not-yet-flushed coverage of the current block
	closed   bool
}

// NewSegmentWriter opens a writer for the byte range [off, end) of a
// stream prepared with PreallocateSegmented. One block of main memory is
// granted from budget for the buffer (nil to skip budgeting). Segment
// ranges must not overlap; each writer must write exactly end-off bytes
// before Close.
func (s *Stream) NewSegmentWriter(budget *Budget, off, end int64) (*SegmentWriter, error) {
	s.mu.Lock()
	seg, size, sealed := s.seg, s.size, s.sealed
	s.mu.Unlock()
	if seg == nil || sealed {
		return nil, fmt.Errorf("em: stream not preallocated for segment writing")
	}
	if off < 0 || off > end || end > size {
		return nil, fmt.Errorf("em: segment range [%d,%d) out of range [0,%d]", off, end, size)
	}
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	seg.mu.Lock()
	seg.open++
	seg.mu.Unlock()
	frame := s.dev.Frames().Acquire()
	return &SegmentWriter{s: s, seg: seg, budget: budget, frame: frame, buf: frame.Bytes(), off: off, end: end, pos: off, covStart: off}, nil
}

// Write appends p to the segment. It implements io.Writer and fails on any
// write that would run past the segment end.
func (w *SegmentWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("em: write to closed SegmentWriter")
	}
	if int64(len(p)) > w.end-w.pos {
		return 0, fmt.Errorf("em: segment write of %d bytes overflows range [%d,%d) at %d", len(p), w.off, w.end, w.pos)
	}
	bs := int64(len(w.buf))
	total := 0
	for len(p) > 0 {
		blkEnd := (w.pos/bs + 1) * bs
		room := min64(blkEnd, w.end) - w.pos
		inBlk := int(w.pos % bs)
		n := copy(w.buf[inBlk:inBlk+int(room)], p)
		w.pos += int64(n)
		p = p[n:]
		total += n
		if w.pos == blkEnd {
			if err := w.flushCovered(); err != nil {
				return total, err
			}
		}
	}
	return total, nil
}

// flushCovered ships the coverage [covStart, pos) of the block the writer
// just finished: a full block goes straight to the device; a partial one
// (the segment's head or tail sharing a block with a neighbor) is retained
// as a fragment for FinishSegmented.
func (w *SegmentWriter) flushCovered() error {
	bs := int64(len(w.buf))
	blk := (w.pos - 1) / bs
	bStart := blk * bs
	if w.covStart == bStart && w.pos == bStart+bs {
		id, err := w.s.blockID(int(blk))
		if err != nil {
			return err
		}
		if err := w.s.dev.WriteBlock(w.s.cat, id, w.buf); err != nil {
			return err
		}
	} else {
		w.retainFrag()
	}
	w.covStart = w.pos
	return nil
}

// retainFrag copies the pending partial coverage of the current block into
// the stream's fragment table.
func (w *SegmentWriter) retainFrag() {
	bs := int64(len(w.buf))
	blk := int((w.pos - 1) / bs)
	bStart := int64(blk) * bs
	frag := segFrag{off: w.covStart, b: append([]byte(nil), w.buf[w.covStart-bStart:w.pos-bStart]...)}
	seg := w.seg
	seg.mu.Lock()
	seg.frags[blk] = append(seg.frags[blk], frag)
	seg.mu.Unlock()
}

// Close retains any pending partial coverage, releases the buffer frame
// and grant, and reports an error if the segment was not filled exactly to
// its end (which also poisons FinishSegmented, so a short segment can
// never seal into a readable stream).
func (w *SegmentWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	if w.pos > w.covStart {
		w.retainFrag()
	}
	w.s.dev.Frames().Release(w.frame)
	w.buf = nil
	if w.budget != nil {
		w.budget.Release(1)
	}
	seg := w.seg
	seg.mu.Lock()
	seg.open--
	if w.pos != w.end {
		seg.short = true
	}
	seg.mu.Unlock()
	if w.pos != w.end {
		return fmt.Errorf("em: segment writer closed at %d of range [%d,%d)", w.pos, w.off, w.end)
	}
	return nil
}

// FinishSegmented assembles the boundary blocks shared between segments —
// each from its segments' retained fragments, verified to cover the block
// exactly, written exactly once — and seals the stream for reading. Every
// SegmentWriter must have been closed, and closed complete.
func (s *Stream) FinishSegmented() error {
	s.mu.Lock()
	seg, size, sealed := s.seg, s.size, s.sealed
	s.mu.Unlock()
	if seg == nil || sealed {
		return fmt.Errorf("em: stream not preallocated for segment writing")
	}
	seg.mu.Lock()
	open, short := seg.open, seg.short
	frags := seg.frags
	seg.mu.Unlock()
	if open != 0 {
		return fmt.Errorf("em: FinishSegmented with %d segment writers still open", open)
	}
	if short {
		return fmt.Errorf("em: FinishSegmented after an incomplete segment")
	}
	// Deterministic order: sort the boundary-block indexes rather than
	// ranging over the map.
	blks := make([]int, 0, len(frags))
	for blk := range frags {
		blks = append(blks, blk)
	}
	sort.Ints(blks)
	bs := int64(s.dev.BlockSize())
	if len(blks) > 0 {
		frame := s.dev.Frames().Acquire()
		defer s.dev.Frames().Release(frame)
		buf := frame.Bytes()
		for _, blk := range blks {
			bStart := int64(blk) * bs
			blkEnd := min64(size, bStart+bs)
			fs := frags[blk]
			sort.Slice(fs, func(i, j int) bool { return fs[i].off < fs[j].off })
			for i := range buf {
				buf[i] = 0
			}
			at := bStart
			for _, f := range fs {
				if f.off != at {
					return fmt.Errorf("em: segment coverage gap [%d,%d) in block %d", at, f.off, blk)
				}
				copy(buf[f.off-bStart:], f.b)
				at = f.off + int64(len(f.b))
			}
			if at != blkEnd {
				return fmt.Errorf("em: segment coverage gap [%d,%d) in block %d", at, blkEnd, blk)
			}
			id, err := s.blockID(blk)
			if err != nil {
				return err
			}
			if err := s.dev.WriteBlock(s.cat, id, buf); err != nil {
				return err
			}
		}
	}
	s.mu.Lock()
	s.sealed = true
	s.mu.Unlock()
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
