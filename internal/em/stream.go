package em

import (
	"fmt"
	"io"
	"sync"
)

// Stream is an append-only byte sequence stored in device blocks, the
// equivalent of a TPIE stream. Sorted runs and external-merge-sort runs are
// Streams. A Stream may be written once (through a single StreamWriter) and
// then read any number of times, from any byte offset.
//
// The per-stream extent table (the list of block IDs making up the stream)
// is kept in memory. This mirrors TPIE, where each stream is an OS file and
// the extent metadata lives in the filesystem rather than in the
// application's M blocks; it is bookkeeping of size O(N/B) words, not data.
type Stream struct {
	dev *Device
	cat Category

	mu     sync.Mutex
	blocks []int64
	size   int64 // bytes appended and flushed or pending in the writer
	sealed bool  // true once the writer has been closed
}

// NewStream creates an empty stream on dev whose I/Os are charged to
// category cat.
func NewStream(dev *Device, cat Category) *Stream {
	return &Stream{dev: dev, cat: cat}
}

// Category returns the accounting category the stream charges.
func (s *Stream) Category() Category { return s.cat }

// Size returns the number of bytes in the stream. While a writer is open the
// value includes only flushed whole blocks; after Close it is exact.
func (s *Stream) Size() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.size
}

// Blocks returns the number of device blocks occupied by the stream.
func (s *Stream) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

func (s *Stream) appendBlock(p []byte) error {
	id := s.dev.AllocBlock()
	if err := s.dev.WriteBlock(s.cat, id, p); err != nil {
		return err
	}
	s.mu.Lock()
	s.blocks = append(s.blocks, id)
	s.mu.Unlock()
	return nil
}

func (s *Stream) blockID(i int) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if i < 0 || i >= len(s.blocks) {
		return 0, fmt.Errorf("em: stream block index %d out of range [0,%d)", i, len(s.blocks))
	}
	return s.blocks[i], nil
}

// StreamWriter appends bytes to a Stream through a single block-sized
// buffer. Construct with Stream.NewWriter; the buffer is granted from the
// supplied Budget and released on Close.
type StreamWriter struct {
	s      *Stream
	budget *Budget
	frame  Frame
	buf    []byte
	used   int
	closed bool
}

// NewWriter opens the stream for appending. One block of main memory is
// granted from budget for the write buffer (pass nil to skip budgeting, for
// tests). A stream accepts exactly one writer over its lifetime.
func (s *Stream) NewWriter(budget *Budget) (*StreamWriter, error) {
	s.mu.Lock()
	if s.sealed || len(s.blocks) > 0 {
		s.mu.Unlock()
		return nil, fmt.Errorf("em: stream already written")
	}
	s.mu.Unlock()
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	frame := s.dev.Frames().Acquire()
	return &StreamWriter{s: s, budget: budget, frame: frame, buf: frame.Bytes()}, nil
}

// Write appends p to the stream, flushing whole blocks to the device as the
// buffer fills. It implements io.Writer.
func (w *StreamWriter) Write(p []byte) (int, error) {
	if w.closed {
		return 0, fmt.Errorf("em: write to closed StreamWriter")
	}
	total := 0
	for len(p) > 0 {
		n := copy(w.buf[w.used:], p)
		w.used += n
		p = p[n:]
		total += n
		if w.used == len(w.buf) {
			if err := w.s.appendBlock(w.buf); err != nil {
				return total, err
			}
			w.s.mu.Lock()
			w.s.size += int64(len(w.buf))
			w.s.mu.Unlock()
			w.used = 0
		}
	}
	return total, nil
}

// Close flushes any partial final block (zero-padded on disk, excluded from
// Size), seals the stream for reading, and releases the buffer grant.
func (w *StreamWriter) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	defer func() {
		w.s.dev.Frames().Release(w.frame)
		w.buf = nil
		if w.budget != nil {
			w.budget.Release(1)
		}
	}()
	if w.used > 0 {
		for i := w.used; i < len(w.buf); i++ {
			w.buf[i] = 0
		}
		if err := w.s.appendBlock(w.buf); err != nil {
			return err
		}
		w.s.mu.Lock()
		w.s.size += int64(w.used)
		w.s.mu.Unlock()
		w.used = 0
	}
	w.s.mu.Lock()
	w.s.sealed = true
	w.s.mu.Unlock()
	return nil
}

// StreamReader reads a sealed Stream sequentially from a byte offset,
// holding one block of the stream in memory at a time. Re-opening a reader
// mid-stream re-reads the containing block, which is exactly the 1+p(b)
// block-access pattern accounted for in Lemma 4.12.
type StreamReader struct {
	s      *Stream
	cat    Category
	budget *Budget
	frame  Frame
	buf    []byte
	cur    int // index of the block currently in buf, -1 if none
	pos    int64
	closed bool
}

// NewReader opens the stream for reading starting at byte offset off,
// charging reads to the stream's own category. One block of main memory is
// granted from budget (nil to skip budgeting).
func (s *Stream) NewReader(budget *Budget, off int64) (*StreamReader, error) {
	return s.NewReaderCat(budget, off, s.cat)
}

// NewReaderCat is NewReader with reads charged to an explicit category.
// NEXSORT writes sorted runs during the sorting phase (charged as subtree
// sorting, Lemma 4.9) but reads them back during the output phase (charged
// as run reads, Lemma 4.12), so the read category differs from the write
// category on the same stream.
func (s *Stream) NewReaderCat(budget *Budget, off int64, cat Category) (*StreamReader, error) {
	s.mu.Lock()
	sealed, size := s.sealed, s.size
	s.mu.Unlock()
	if !sealed {
		return nil, fmt.Errorf("em: stream not sealed for reading")
	}
	if off < 0 || off > size {
		return nil, fmt.Errorf("em: read offset %d out of range [0,%d]", off, size)
	}
	if budget != nil {
		if err := budget.Grant(1); err != nil {
			return nil, err
		}
	}
	frame := s.dev.Frames().Acquire()
	return &StreamReader{s: s, cat: cat, budget: budget, frame: frame, buf: frame.Bytes(), cur: -1, pos: off}, nil
}

// Offset returns the byte offset of the next read.
func (r *StreamReader) Offset() int64 { return r.pos }

// Read implements io.Reader, returning io.EOF at the end of the stream.
func (r *StreamReader) Read(p []byte) (int, error) {
	if r.closed {
		return 0, fmt.Errorf("em: read from closed StreamReader")
	}
	size := r.s.Size()
	if r.pos >= size {
		return 0, io.EOF
	}
	bs := int64(len(r.buf))
	blk := int(r.pos / bs)
	if blk != r.cur {
		id, err := r.s.blockID(blk)
		if err != nil {
			return 0, err
		}
		if err := r.s.dev.ReadBlock(r.cat, id, r.buf); err != nil {
			return 0, err
		}
		r.cur = blk
	}
	inBlock := int(r.pos % bs)
	avail := int(min64(bs, size-int64(blk)*bs)) - inBlock
	n := copy(p, r.buf[inBlock:inBlock+avail])
	r.pos += int64(n)
	return n, nil
}

// ReadByte implements io.ByteReader.
func (r *StreamReader) ReadByte() (byte, error) {
	var b [1]byte
	n, err := r.Read(b[:])
	if n == 1 {
		return b[0], nil
	}
	if err == nil {
		err = io.EOF
	}
	return 0, err
}

// Close recycles the buffer frame and releases its grant.
func (r *StreamReader) Close() error {
	if r.closed {
		return nil
	}
	r.closed = true
	r.s.dev.Frames().Release(r.frame)
	r.buf = nil
	if r.budget != nil {
		r.budget.Release(1)
	}
	return nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
