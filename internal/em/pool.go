package em

// Pool bounds how many background worker goroutines the sorters may run at
// once. It is a plain counting semaphore: a worker is admitted only when
// TryAcquire succeeds, and admission never blocks — callers that fail to
// acquire a slot simply do the work inline on the calling goroutine. That
// non-blocking discipline is what keeps parallel execution deterministic:
// the decision "sort this run/subtree now" is made at exactly the same
// point in the input scan regardless of how busy the pool is; only *where*
// the sort executes changes.
//
// A nil *Pool is valid and admits nothing, so hand-assembled Envs (tests
// that build the struct directly instead of calling NewEnv) degrade to
// fully sequential execution.
type Pool struct {
	sem chan struct{}
}

// NewPool returns a pool admitting up to workers concurrent background
// tasks. workers <= 0 returns a pool that never admits (every TryAcquire
// reports false), which callers treat as "run inline".
func NewPool(workers int) *Pool {
	if workers <= 0 {
		return &Pool{}
	}
	return &Pool{sem: make(chan struct{}, workers)}
}

// TryAcquire claims a worker slot without blocking. It reports false when
// the pool is full (or nil/empty), in which case the caller must run the
// task inline and must not call Release.
func (p *Pool) TryAcquire() bool {
	if p == nil || p.sem == nil {
		return false
	}
	select {
	case p.sem <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by a successful TryAcquire.
func (p *Pool) Release() {
	if p != nil && p.sem != nil {
		<-p.sem
	}
}

// Cap returns the number of slots (0 for a nil or sequential pool).
func (p *Pool) Cap() int {
	if p == nil || p.sem == nil {
		return 0
	}
	return cap(p.sem)
}
