package em

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Compressed spill-block format. Each logical record of unit bytes handed
// to this layer is stored as a variable-length physical record inside a
// fixed slot of unit+spillHeaderLen bytes:
//
//	header (16) | encoded payload (compLen ≤ unit)
//
//	header: magic "NXSZ" (4, LE) | version (1) | codec (1) | reserved (2)
//	      | uncompressed length (4, LE) | compLen (4, LE)
//
// Only header+compLen bytes are transferred per slot — that gap between
// the slot stride and the bytes actually moved is the physical-byte win
// the Stats ledger's physical side measures. The encoder is deterministic:
// the same payload always yields the same record, so re-writes and retried
// writes are idempotent and the parallel-differential invariant extends to
// the physical byte counts.
//
// Codecs, tried in order and falling back when a step does not pay:
//
//	codecFront  — front-code the payload (below), then flate (BestSpeed)
//	codecFlate  — flate over the raw payload (front coding didn't shrink it)
//	codecStored — raw payload (flate output would not fit under unit bytes)
//
// Front coding segments the payload with the same uvarint-length framing
// the sorters' spill streams use (length prefix, then that many body
// bytes), then emits each segment as
//
//	uvarint(shared prefix with previous segment) | uvarint(suffix len) | suffix
//
// The segmentation does not have to be right about true record boundaries
// to be correct — it is a deterministic scan of the bytes, inverted
// exactly by frontDecode — so blocks that start mid-record (records
// straddle block boundaries) merely front-code less well, and the flate
// pass behind it still captures the cross-record redundancy. Where the
// scan does land on record boundaries, sorted runs of normalized keys
// (bytes.Compare order, PR 5) put near-identical neighbors side by side
// and the shared prefixes collapse. A parse that goes nowhere (bad
// varint, zero or oversized length, or a record running past the block)
// closes the block with one literal tail segment.
const (
	// spillHeaderLen is the per-slot header size in bytes.
	spillHeaderLen = 16
	// spillMagic marks a record written through the compression layer
	// ("NXSZ": NexSort Zip).
	spillMagic = 0x4e58535a
	// spillVersion is the on-scratch format version; decoders reject
	// anything else.
	spillVersion = 1

	codecStored = 0
	codecFlate  = 1
	codecFront  = 2

	// maxSpillSeg caps a parsed segment length; anything larger is treated
	// as an unparseable tail (matches the sorters' maxRecordLen).
	maxSpillSeg = 1 << 30
)

// putSpillHeader writes the 16-byte header for a record of compLen encoded
// payload bytes representing uncLen uncompressed bytes.
func putSpillHeader(dst []byte, codec byte, uncLen, compLen int) {
	binary.LittleEndian.PutUint32(dst[0:], spillMagic)
	dst[4] = spillVersion
	dst[5] = codec
	dst[6], dst[7] = 0, 0 // reserved
	binary.LittleEndian.PutUint32(dst[8:], uint32(uncLen))
	binary.LittleEndian.PutUint32(dst[12:], uint32(compLen))
}

// commonPrefixLen returns the length of the longest common prefix of a and b.
func commonPrefixLen(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	i := 0
	for i < n && a[i] == b[i] {
		i++
	}
	return i
}

// frontCode front-codes payload into dst, returning the encoded length.
// It reports false — and the caller falls back to raw flate — as soon as
// the encoding stops being strictly smaller than the payload, which also
// bounds the scratch it needs: dst only ever holds len(payload)-1 bytes.
func frontCode(dst, payload []byte) (int, bool) {
	budget := len(payload) - 1
	if budget > len(dst) {
		budget = len(dst)
	}
	out := 0
	var prev []byte
	pos := 0
	for pos < len(payload) {
		end := len(payload) // unparseable: one literal tail segment
		if n, w := binary.Uvarint(payload[pos:]); w > 0 && n > 0 && n <= maxSpillSeg && pos+w+int(n) <= len(payload) {
			end = pos + w + int(n)
		}
		seg := payload[pos:end]
		pos = end
		shared := commonPrefixLen(prev, seg)
		suffix := seg[shared:]
		if out+2*binary.MaxVarintLen32+len(suffix) > budget {
			return 0, false
		}
		out += binary.PutUvarint(dst[out:], uint64(shared))
		out += binary.PutUvarint(dst[out:], uint64(len(suffix)))
		out += copy(dst[out:], suffix)
		prev = seg
	}
	return out, true
}

// frontDecode reverses frontCode, reconstructing exactly len(out) bytes.
// Every bound is checked: arbitrary enc bytes yield an error, never a
// panic or out-of-range reconstruction.
func frontDecode(out, enc []byte) error {
	pos := 0
	prevStart, prevLen := 0, 0
	i := 0
	for i < len(enc) {
		shared64, w := binary.Uvarint(enc[i:])
		if w <= 0 {
			return fmt.Errorf("front coding: bad shared-prefix varint at byte %d", i)
		}
		i += w
		suf64, w := binary.Uvarint(enc[i:])
		if w <= 0 {
			return fmt.Errorf("front coding: bad suffix-length varint at byte %d", i)
		}
		i += w
		if shared64 > uint64(prevLen) {
			return fmt.Errorf("front coding: shared prefix %d exceeds previous segment length %d", shared64, prevLen)
		}
		if suf64 > uint64(len(enc)-i) {
			return fmt.Errorf("front coding: suffix length %d overruns input", suf64)
		}
		shared, suf := int(shared64), int(suf64)
		if pos+shared+suf > len(out) {
			return fmt.Errorf("front coding: decoded data overflows the %d-byte block", len(out))
		}
		copy(out[pos:], out[prevStart:prevStart+shared])
		copy(out[pos+shared:], enc[i:i+suf])
		i += suf
		prevStart, prevLen = pos, shared+suf
		pos += shared + suf
	}
	if pos != len(out) {
		return fmt.Errorf("front coding: decoded %d bytes, want %d", pos, len(out))
	}
	return nil
}

// capWriter is a fixed-capacity sink; a write past the end fails, which is
// how the encoder learns that flate output would not beat the stored form.
type capWriter struct {
	buf []byte
	n   int
}

var errSpillOverflow = fmt.Errorf("em: compressed output exceeds the block")

func (w *capWriter) Write(p []byte) (int, error) {
	if w.n+len(p) > len(w.buf) {
		return 0, errSpillOverflow
	}
	copy(w.buf[w.n:], p)
	w.n += len(p)
	return len(p), nil
}

// spillDeflater bundles a reusable flate writer with its capped sink so
// the steady-state encode path allocates nothing.
type spillDeflater struct {
	cw capWriter
	zw *flate.Writer
}

var spillDeflaters = sync.Pool{New: func() any {
	d := &spillDeflater{}
	zw, err := flate.NewWriter(&d.cw, flate.BestSpeed)
	if err != nil {
		panic(err) // only reachable with an invalid level constant
	}
	d.zw = zw
	return d
}}

// deflateInto compresses src into dst, reporting false when the compressed
// form does not fit (the caller stores the payload raw instead).
func deflateInto(dst, src []byte) (int, bool) {
	d := spillDeflaters.Get().(*spillDeflater)
	defer spillDeflaters.Put(d)
	d.cw.buf, d.cw.n = dst, 0
	d.zw.Reset(&d.cw)
	_, werr := d.zw.Write(src)
	cerr := d.zw.Close()
	n, ok := d.cw.n, werr == nil && cerr == nil
	d.cw.buf = nil
	return n, ok
}

// spillInflater bundles a reusable flate reader with its source.
type spillInflater struct {
	br bytes.Reader
	fr io.ReadCloser
}

var spillInflaters = sync.Pool{New: func() any {
	i := &spillInflater{}
	i.fr = flate.NewReader(&i.br)
	return i
}}

// inflateInto decompresses src into dst, returning the decompressed length.
// A stream that would overflow dst is an error, not a truncation.
func inflateInto(dst, src []byte) (int, error) {
	i := spillInflaters.Get().(*spillInflater)
	defer spillInflaters.Put(i)
	i.br.Reset(src)
	if err := i.fr.(flate.Resetter).Reset(&i.br, nil); err != nil {
		return 0, err
	}
	n := 0
	for n < len(dst) {
		m, err := i.fr.Read(dst[n:])
		n += m
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
	var one [1]byte
	for {
		m, err := i.fr.Read(one[:])
		if m > 0 {
			return n, fmt.Errorf("inflated data overflows the %d-byte block", len(dst))
		}
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
	}
}

// encodeSpillBlock encodes payload into dst (len ≥ spillHeaderLen +
// len(payload)), using fc (len ≥ len(payload)) as front-coding scratch,
// and returns the physical record — a prefix of dst. The encoding is a
// pure function of payload.
func encodeSpillBlock(dst, fc, payload []byte) []byte {
	unit := len(payload)
	if unit == 0 {
		putSpillHeader(dst, codecStored, 0, 0)
		return dst[:spillHeaderLen]
	}
	codec := byte(codecFlate)
	src := payload
	if n, ok := frontCode(fc, payload); ok {
		codec, src = codecFront, fc[:n]
	}
	body := dst[spillHeaderLen:]
	n, ok := deflateInto(body[:unit-1], src)
	if !ok {
		codec, n = codecStored, copy(body[:unit], payload)
	}
	putSpillHeader(dst, codec, unit, n)
	return dst[:spillHeaderLen+n]
}

// decodeSpillBlock decodes the physical record rec into out (whose length
// is the layer's unit), using fc (len ≥ len(out)) as scratch for the
// front-coded intermediate. Any malformed input — wrong magic or version,
// inconsistent lengths, a broken flate stream, out-of-bounds front coding
// — returns an error; arbitrary bytes never panic.
func decodeSpillBlock(out, fc, rec []byte) error {
	if len(rec) < spillHeaderLen {
		return fmt.Errorf("record is %d bytes, shorter than the %d-byte header", len(rec), spillHeaderLen)
	}
	magic := binary.LittleEndian.Uint32(rec[0:])
	version := rec[4]
	codec := rec[5]
	reserved := binary.LittleEndian.Uint16(rec[6:])
	uncLen := binary.LittleEndian.Uint32(rec[8:])
	compLen := binary.LittleEndian.Uint32(rec[12:])
	switch {
	case magic != spillMagic:
		return fmt.Errorf("bad magic %08x, want %08x", magic, uint32(spillMagic))
	case version != spillVersion:
		return fmt.Errorf("unsupported spill format version %d (decoder speaks version %d)", version, spillVersion)
	case reserved != 0:
		return fmt.Errorf("nonzero reserved header field %04x", reserved)
	case uint64(uncLen) != uint64(len(out)):
		return fmt.Errorf("uncompressed length %d, want the %d-byte unit", uncLen, len(out))
	case uint64(compLen) != uint64(len(rec)-spillHeaderLen):
		return fmt.Errorf("header says %d payload bytes, record carries %d", compLen, len(rec)-spillHeaderLen)
	}
	body := rec[spillHeaderLen:]
	switch codec {
	case codecStored:
		if int(compLen) != len(out) {
			return fmt.Errorf("stored codec with %d payload bytes for a %d-byte unit", compLen, len(out))
		}
		copy(out, body)
		return nil
	case codecFlate:
		n, err := inflateInto(out, body)
		if err != nil {
			return fmt.Errorf("flate: %v", err)
		}
		if n != len(out) {
			return fmt.Errorf("flate stream inflated to %d bytes, want %d", n, len(out))
		}
		return nil
	case codecFront:
		n, err := inflateInto(fc[:len(out)], body)
		if err != nil {
			return fmt.Errorf("flate: %v", err)
		}
		return frontDecode(out, fc[:n])
	default:
		return fmt.Errorf("unknown codec %d", codec)
	}
}

// CompressedBackend wraps a Backend with the compressed spill format. Like
// ChecksumBackend it is record-granular: offsets must be unit-aligned and
// every access covers exactly one unit — the access pattern of the layer
// above (a Device directly, or a ChecksumBackend, whose physical records
// are this layer's unit). It stores each unit in a fixed slot of
// unit+spillHeaderLen bytes but transfers only the encoded bytes, so the
// logical I/O counts charged above it are untouched while the physical
// bytes counted below it shrink. Decode failures surface as
// *CorruptBlockError — the retry layer's RetryCorruptReads re-reads them,
// and chaos trials classify them — and are tallied with the checksum
// failures in stats: both counters mean "a spill verification layer
// rejected what the device returned".
type CompressedBackend struct {
	inner Backend
	unit  int
	stats *Stats

	// scratch recycles encode/decode buffers (unit+spillHeaderLen bytes:
	// a full physical record, also ample for the front-coded form, which
	// is by construction smaller than the payload). Like the checksum
	// layer's record buffers these live below the block abstraction and
	// outside the budget's M (DESIGN.md §7); the unwind invariant
	// FramesLive==0 is asserted over this pool too.
	scratch *FramePool

	// lens records the encoded payload length of every record ever
	// written through this layer. Scratch devices live and die with the
	// process, so the map is authoritative: reads use it to transfer
	// exactly the bytes that were stored, and — like the checksum layer's
	// written set — its presence distinguishes "never written, zeros are
	// correct" from a write whose record was then lost (torn to zeros).
	mu   sync.Mutex
	lens map[int64]int
}

// NewCompressedBackend layers the compressed spill format over inner for
// logical records of unit bytes, charging decode failures to stats (nil
// disables failure accounting, not verification).
func NewCompressedBackend(inner Backend, unit int, stats *Stats) *CompressedBackend {
	if unit <= 0 {
		panic("em: compressed backend needs a positive unit size")
	}
	return &CompressedBackend{
		inner:   inner,
		unit:    unit,
		stats:   stats,
		scratch: NewFramePool(unit + spillHeaderLen),
		lens:    make(map[int64]int),
	}
}

// slotOff maps a unit-aligned logical offset to the physical offset of its
// slot.
func (b *CompressedBackend) slotOff(off int64) int64 {
	return (off / int64(b.unit)) * int64(b.unit+spillHeaderLen)
}

func (b *CompressedBackend) checkAligned(p []byte, off int64) error {
	if len(p) != b.unit || off%int64(b.unit) != 0 {
		return fmt.Errorf("em: compressed backend requires single-unit aligned access (len=%d off=%d unit=%d)",
			len(p), off, b.unit)
	}
	return nil
}

// ReadAt implements io.ReaderAt under the scratch category.
func (b *CompressedBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.ReadAtCat(p, off, CatScratch)
}

// WriteAt implements io.WriterAt under the scratch category.
func (b *CompressedBackend) WriteAt(p []byte, off int64) (int, error) {
	return b.WriteAtCat(p, off, CatScratch)
}

// ReadAtCat reads and decodes one unit, charging any decode failure to
// category c.
func (b *CompressedBackend) ReadAtCat(p []byte, off int64, c Category) (int, error) {
	if err := b.checkAligned(p, off); err != nil {
		return 0, err
	}
	idx := off / int64(b.unit)
	plen, written := b.storedLen(idx)
	if !written {
		// Never written through this layer: the sparse-zero state, served
		// without touching the device (there is nothing stored to read).
		for i := range p {
			p[i] = 0
		}
		return len(p), nil
	}
	recFrame := b.scratch.Acquire()
	defer b.scratch.Release(recFrame)
	fcFrame := b.scratch.Acquire()
	defer b.scratch.Release(fcFrame)

	rec := recFrame.Bytes()[:spillHeaderLen+plen]
	if _, err := readAtCat(b.inner, rec, b.slotOff(off), c); err != nil {
		return 0, err
	}
	if err := decodeSpillBlock(p, fcFrame.Bytes()[:b.unit], rec); err != nil {
		b.countFailure(c)
		return 0, &CorruptBlockError{Block: idx,
			Reason: fmt.Sprintf("compressed spill block: %v", err)}
	}
	return len(p), nil
}

// WriteAtCat encodes and writes one unit. The slot position depends only
// on the offset and the record only on the payload, so rewrites and
// retried writes land identically.
func (b *CompressedBackend) WriteAtCat(p []byte, off int64, c Category) (int, error) {
	if err := b.checkAligned(p, off); err != nil {
		return 0, err
	}
	recFrame := b.scratch.Acquire()
	defer b.scratch.Release(recFrame)
	fcFrame := b.scratch.Acquire()
	defer b.scratch.Release(fcFrame)

	rec := encodeSpillBlock(recFrame.Bytes(), fcFrame.Bytes()[:b.unit], p)
	b.setStoredLen(off/int64(b.unit), len(rec)-spillHeaderLen)
	if _, err := writeAtCat(b.inner, rec, b.slotOff(off), c); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (b *CompressedBackend) setStoredLen(idx int64, n int) {
	b.mu.Lock()
	b.lens[idx] = n
	b.mu.Unlock()
}

func (b *CompressedBackend) storedLen(idx int64) (int, bool) {
	b.mu.Lock()
	n, ok := b.lens[idx]
	b.mu.Unlock()
	return n, ok
}

// ScratchFramesLive reports how many codec scratch frames are pinned right
// now; any nonzero value after an unwind is a leak.
func (b *CompressedBackend) ScratchFramesLive() int { return b.scratch.Live() }

// Close closes the wrapped backend.
func (b *CompressedBackend) Close() error { return b.inner.Close() }

func (b *CompressedBackend) countFailure(c Category) {
	if b.stats != nil {
		b.stats.AddChecksumFailures(c, 1)
	}
}
