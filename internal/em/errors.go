package em

import (
	"errors"
	"fmt"
	"syscall"
)

// This file defines the failure model of the spill substrate. Every error a
// Backend can surface falls into one of four classes:
//
//   - Transient: the operation may succeed if simply retried (interrupted
//     syscalls, momentary device stalls, in-transit corruption that a
//     re-read bypasses). RetryBackend retries these under a bounded-backoff
//     policy.
//   - Corrupt: the bytes at rest fail checksum verification — a torn write
//     or bit rot. Retrying a read cannot help once the data on the device
//     is wrong, but a re-read *can* help when the corruption happened in
//     transit, so RetryPolicy.RetryCorruptReads treats read-side corruption
//     as retryable.
//   - Permanent: everything else. Surfaced immediately.
//   - Exhausted: the scratch device is out of space — a real ENOSPC from
//     the filesystem or a CapacityBackend quota. Retrying cannot help (the
//     device will not grow), but callers can degrade gracefully before the
//     error surfaces: extsort reacts to Device.NearFull by streaming its
//     final merge instead of materializing one more run.
//
// The classes are typed so that callers up the stack (runstore, xstack,
// core, the public API) can distinguish "retry exhausted a transient fault"
// from "the scratch data is gone" without string matching.
//
// Cancellation is deliberately NOT a class of its own: a canceled run is
// not a device failure. Operations refused after the run's Lifecycle ends
// wrap the context error with %w (errors.Is(err, context.Canceled) or
// context.DeadlineExceeded holds at every level) and classify as
// permanent, so the retry layer never re-attempts them.

// ErrCorruptBlock is the sentinel matched by errors.Is for any block that
// failed checksum verification. The concrete error is a *CorruptBlockError
// carrying the block location and reason.
var ErrCorruptBlock = errors.New("em: corrupt block")

// CorruptBlockError reports a block whose stored checksum did not match its
// payload: a torn write, bit rot, or in-transit corruption.
type CorruptBlockError struct {
	// Block is the logical block index on the device.
	Block int64
	// Reason describes the mismatch (bad checksum, torn trailer, ...).
	Reason string
}

// Error implements error.
func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("em: corrupt block %d: %s", e.Block, e.Reason)
}

// Is makes errors.Is(err, ErrCorruptBlock) match any CorruptBlockError.
func (e *CorruptBlockError) Is(target error) bool { return target == ErrCorruptBlock }

// TransientError marks an error as transient: the same operation may
// succeed if retried. The fault injector wraps its recoverable faults in
// TransientError, and the classifier also recognizes the usual transient
// syscall errnos from real devices.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return "em: transient I/O error: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err as transient. A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// ErrScratchExhausted is the sentinel matched by errors.Is for any failure
// caused by the scratch device running out of space: a filesystem ENOSPC
// surfaced by FileBackend or a CapacityBackend quota hit. The concrete
// error is an *ExhaustedError carrying the limit and the attempt.
var ErrScratchExhausted = errors.New("em: scratch space exhausted")

// ExhaustedError reports a write the scratch device had no room for.
type ExhaustedError struct {
	// Limit is the capacity in bytes that was exceeded; 0 when unknown
	// (a real ENOSPC reports no limit).
	Limit int64
	// Requested is the byte extent the failing write needed.
	Requested int64
	// Err is the underlying cause (e.g. the syscall.ENOSPC), nil for a
	// quota check that refused the write before it reached the device.
	Err error
}

// Error implements error.
func (e *ExhaustedError) Error() string {
	msg := fmt.Sprintf("em: scratch space exhausted: write needs %d bytes", e.Requested)
	if e.Limit > 0 {
		msg += fmt.Sprintf(" of a %d-byte quota", e.Limit)
	}
	if e.Err != nil {
		msg += ": " + e.Err.Error()
	}
	return msg
}

// Unwrap exposes the underlying cause to errors.Is/As.
func (e *ExhaustedError) Unwrap() error { return e.Err }

// Is makes errors.Is(err, ErrScratchExhausted) match any ExhaustedError.
func (e *ExhaustedError) Is(target error) bool { return target == ErrScratchExhausted }

// ErrorClass is the retry-relevant classification of a backend error.
type ErrorClass int

// Error classes, from most to least hopeful.
const (
	// ClassTransient errors may succeed on retry.
	ClassTransient ErrorClass = iota
	// ClassCorrupt errors are checksum failures; read-side retries may
	// help (in-transit corruption), write-side cannot.
	ClassCorrupt
	// ClassPermanent errors will not improve with retries.
	ClassPermanent
	// ClassExhausted errors mean the scratch device is out of space (real
	// ENOSPC or a CapacityBackend quota). Not retryable; callers may react
	// by shrinking their scratch appetite before failing.
	ClassExhausted
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	case ClassPermanent:
		return "permanent"
	case ClassExhausted:
		return "exhausted"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify buckets err into an ErrorClass. Explicitly marked
// TransientErrors and the retryable syscall errnos (EINTR, EAGAIN,
// ETIMEDOUT, EBUSY) classify as transient; checksum failures as corrupt;
// scratch-space exhaustion (ErrScratchExhausted, raw ENOSPC) as exhausted;
// everything else — including nil — as permanent.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassPermanent
	}
	var te *TransientError
	if errors.As(err, &te) {
		return ClassTransient
	}
	if errors.Is(err, ErrCorruptBlock) {
		return ClassCorrupt
	}
	if errors.Is(err, ErrScratchExhausted) || errors.Is(err, syscall.ENOSPC) {
		return ClassExhausted
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT, syscall.EBUSY} {
		if errors.Is(err, errno) {
			return ClassTransient
		}
	}
	return ClassPermanent
}

// IsTransient reports whether err classifies as retryable-as-is.
func IsTransient(err error) bool { return err != nil && Classify(err) == ClassTransient }

// IsCorrupt reports whether err is a checksum failure.
func IsCorrupt(err error) bool { return err != nil && errors.Is(err, ErrCorruptBlock) }

// IsExhausted reports whether err means the scratch device ran out of
// space (quota or real ENOSPC).
func IsExhausted(err error) bool { return err != nil && Classify(err) == ClassExhausted }
