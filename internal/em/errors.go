package em

import (
	"errors"
	"fmt"
	"syscall"
)

// This file defines the failure model of the spill substrate. Every error a
// Backend can surface falls into one of three classes:
//
//   - Transient: the operation may succeed if simply retried (interrupted
//     syscalls, momentary device stalls, in-transit corruption that a
//     re-read bypasses). RetryBackend retries these under a bounded-backoff
//     policy.
//   - Corrupt: the bytes at rest fail checksum verification — a torn write
//     or bit rot. Retrying a read cannot help once the data on the device
//     is wrong, but a re-read *can* help when the corruption happened in
//     transit, so RetryPolicy.RetryCorruptReads treats read-side corruption
//     as retryable.
//   - Permanent: everything else. Surfaced immediately.
//
// The classes are typed so that callers up the stack (runstore, xstack,
// core, the public API) can distinguish "retry exhausted a transient fault"
// from "the scratch data is gone" without string matching.

// ErrCorruptBlock is the sentinel matched by errors.Is for any block that
// failed checksum verification. The concrete error is a *CorruptBlockError
// carrying the block location and reason.
var ErrCorruptBlock = errors.New("em: corrupt block")

// CorruptBlockError reports a block whose stored checksum did not match its
// payload: a torn write, bit rot, or in-transit corruption.
type CorruptBlockError struct {
	// Block is the logical block index on the device.
	Block int64
	// Reason describes the mismatch (bad checksum, torn trailer, ...).
	Reason string
}

// Error implements error.
func (e *CorruptBlockError) Error() string {
	return fmt.Sprintf("em: corrupt block %d: %s", e.Block, e.Reason)
}

// Is makes errors.Is(err, ErrCorruptBlock) match any CorruptBlockError.
func (e *CorruptBlockError) Is(target error) bool { return target == ErrCorruptBlock }

// TransientError marks an error as transient: the same operation may
// succeed if retried. The fault injector wraps its recoverable faults in
// TransientError, and the classifier also recognizes the usual transient
// syscall errnos from real devices.
type TransientError struct {
	Err error
}

// Error implements error.
func (e *TransientError) Error() string { return "em: transient I/O error: " + e.Err.Error() }

// Unwrap exposes the underlying error to errors.Is/As.
func (e *TransientError) Unwrap() error { return e.Err }

// MarkTransient wraps err as transient. A nil err returns nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// ErrorClass is the retry-relevant classification of a backend error.
type ErrorClass int

// Error classes, from most to least hopeful.
const (
	// ClassTransient errors may succeed on retry.
	ClassTransient ErrorClass = iota
	// ClassCorrupt errors are checksum failures; read-side retries may
	// help (in-transit corruption), write-side cannot.
	ClassCorrupt
	// ClassPermanent errors will not improve with retries.
	ClassPermanent
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassCorrupt:
		return "corrupt"
	case ClassPermanent:
		return "permanent"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Classify buckets err into an ErrorClass. Explicitly marked
// TransientErrors and the retryable syscall errnos (EINTR, EAGAIN,
// ETIMEDOUT, EBUSY) classify as transient; checksum failures as corrupt;
// everything else — including nil — as permanent.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassPermanent
	}
	var te *TransientError
	if errors.As(err, &te) {
		return ClassTransient
	}
	if errors.Is(err, ErrCorruptBlock) {
		return ClassCorrupt
	}
	for _, errno := range []syscall.Errno{syscall.EINTR, syscall.EAGAIN, syscall.ETIMEDOUT, syscall.EBUSY} {
		if errors.Is(err, errno) {
			return ClassTransient
		}
	}
	return ClassPermanent
}

// IsTransient reports whether err classifies as retryable-as-is.
func IsTransient(err error) bool { return err != nil && Classify(err) == ClassTransient }

// IsCorrupt reports whether err is a checksum failure.
func IsCorrupt(err error) bool { return err != nil && errors.Is(err, ErrCorruptBlock) }
