package em

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Stats accumulates block-I/O counts by Category. Each counter is an
// independent per-category atomic, so concurrent sort workers, stream
// writers and hardening layers charge transfers without contending on a
// lock — the Device issues I/O from many goroutines at Parallelism > 1. A
// single Stats is typically shared by a Device and the
// CountingReader/CountingWriter wrapping the input and output files, so
// that TotalIOs reflects the complete cost of an algorithm run.
//
// Aggregates (Total*, Snapshot, String) sum the atomics individually;
// taken while I/O is still in flight they can straddle a concurrent
// update, but every figure reported by the sorters is read after the
// worker pool has drained, where the counts are exact — and, by the
// determinism guarantee (DESIGN.md), identical at every parallelism level.
// The byte accounting is split into two ledgers. The logical side —
// reads/writes and readBytes/writeBytes — is the paper's model: whole
// blocks, charged by the Device (and the counting reader/writer at the
// user-file boundary), invariant under parallelism and under every
// hardening layer. The physical side — physReads/physWrites and their
// bytes — is charged by the innermost backend layer and counts what
// actually crossed the device boundary: checksum trailers widen it,
// spill compression shrinks it, retries repeat it. Every I/O-count
// invariant in the test suites holds on the logical side; the physical
// side is where compression's 2-4× byte reduction becomes visible.
type Stats struct {
	reads    [numCategories]atomic.Int64
	writes   [numCategories]atomic.Int64
	readB    [numCategories]atomic.Int64
	writeB   [numCategories]atomic.Int64
	physR    [numCategories]atomic.Int64
	physW    [numCategories]atomic.Int64
	physRB   [numCategories]atomic.Int64
	physWB   [numCategories]atomic.Int64
	retries  [numCategories]atomic.Int64
	ckFails  [numCategories]atomic.Int64
	cacheHit [numCategories]atomic.Int64
	cacheMis [numCategories]atomic.Int64
	canceled [numCategories]atomic.Int64
	exhaust  [numCategories]atomic.Int64
	// Overlap-pipeline counters (DESIGN.md §15). These describe the async
	// engine's behavior — how well read-ahead predicted the access pattern
	// and how often write-behind back-pressured — and are never folded into
	// the logical Reads/Writes ledger: a prefetched block charges its
	// logical read only when the reader actually consumes it.
	prefHit   [numCategories]atomic.Int64
	prefWaste [numCategories]atomic.Int64
	flushStal [numCategories]atomic.Int64
	// Partitioned-merge counters (DESIGN.md §17). They describe the
	// range-partitioned final merge — how many merges took the partitioned
	// path and how many fence-key samples fed splitter selection — and are
	// never folded into the logical Reads/Writes ledger: a partitioned
	// merge moves exactly the blocks the serial loser tree would.
	pmerges   [numCategories]atomic.Int64
	splitSamp [numCategories]atomic.Int64
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// AddReads records n block reads under category c.
func (s *Stats) AddReads(c Category, n int64) { s.reads[c].Add(n) }

// AddWrites records n block writes under category c.
func (s *Stats) AddWrites(c Category, n int64) { s.writes[c].Add(n) }

// AddReadBytes records n logical bytes read under category c. Charged in
// whole blocks wherever AddReads is charged, so per category
// readBytes == reads × blockSize.
func (s *Stats) AddReadBytes(c Category, n int64) { s.readB[c].Add(n) }

// AddWriteBytes records n logical bytes written under category c.
func (s *Stats) AddWriteBytes(c Category, n int64) { s.writeB[c].Add(n) }

// AddPhysReads records n physical device reads under category c; charged
// by the innermost backend layer, one per operation that reached the
// device (retried attempts included).
func (s *Stats) AddPhysReads(c Category, n int64) { s.physR[c].Add(n) }

// AddPhysWrites records n physical device writes under category c.
func (s *Stats) AddPhysWrites(c Category, n int64) { s.physW[c].Add(n) }

// AddPhysReadBytes records n bytes physically read from the device under
// category c — the transferred size after trailers and compression, not
// the logical block size.
func (s *Stats) AddPhysReadBytes(c Category, n int64) { s.physRB[c].Add(n) }

// AddPhysWriteBytes records n bytes physically written to the device under
// category c.
func (s *Stats) AddPhysWriteBytes(c Category, n int64) { s.physWB[c].Add(n) }

// AddRetries records n retried backend operations under category c. The
// retry layer calls this once per re-attempt, so the counter measures
// wasted transfers caused by transient faults.
func (s *Stats) AddRetries(c Category, n int64) { s.retries[c].Add(n) }

// AddChecksumFailures records n blocks that failed checksum verification
// under category c.
func (s *Stats) AddChecksumFailures(c Category, n int64) { s.ckFails[c].Add(n) }

// AddCacheHits records n ReadBlocks served from the clean-frame cache under
// category c. A hit costs no block transfer, so it is deliberately NOT
// counted in Reads — the reads counters keep their paper meaning of actual
// block transfers.
func (s *Stats) AddCacheHits(c Category, n int64) { s.cacheHit[c].Add(n) }

// AddCacheMisses records n ReadBlocks that went to the backend despite the
// cache being enabled, under category c. Hits+misses equals the ReadBlock
// call count on a cached device.
func (s *Stats) AddCacheMisses(c Category, n int64) { s.cacheMis[c].Add(n) }

// AddCanceled records n block operations the Device refused because the
// run's lifecycle had ended (cancellation or deadline), under category c.
// A refused operation performs no transfer, so it is never also counted in
// Reads/Writes; the counter measures how much work cancellation cut short.
func (s *Stats) AddCanceled(c Category, n int64) { s.canceled[c].Add(n) }

// AddExhausted records n block writes that failed because the scratch
// device was out of space (quota or real ENOSPC), under category c.
func (s *Stats) AddExhausted(c Category, n int64) { s.exhaust[c].Add(n) }

// AddPrefetchHits records n blocks that a reader consumed out of its
// read-ahead pipeline under category c. The logical read for such a block
// is charged at consumption exactly as a synchronous read would be, so this
// counter measures overlap, never block transfers.
func (s *Stats) AddPrefetchHits(c Category, n int64) { s.prefHit[c].Add(n) }

// AddPrefetchWasted records n blocks that read-ahead fetched but no reader
// ever consumed (the reader closed early or jumped), under category c. A
// wasted prefetch appears in the physical ledger — bytes really crossed the
// device — but never in the logical Reads.
func (s *Stats) AddPrefetchWasted(c Category, n int64) { s.prefWaste[c].Add(n) }

// AddFlushStalls records n write-behind submissions that found the flush
// queue full and had to wait, under category c. Stalls measure where the
// pipeline depth was the bottleneck; the write itself is charged once, by
// the flusher, when it executes.
func (s *Stats) AddFlushStalls(c Category, n int64) { s.flushStal[c].Add(n) }

// AddPartitionedMerges records n merges that ran as range-partitioned
// loser-tree fans under category c. Charged once per merge, never per
// partition, so the counter is invariant in Config.MergeParallel.
func (s *Stats) AddPartitionedMerges(c Category, n int64) { s.pmerges[c].Add(n) }

// AddSplitterSamples records n fence-key samples fed into splitter
// selection under category c. Every partitioned merge reads every input
// run's full fence index regardless of the partition count, so this too is
// invariant in Config.MergeParallel.
func (s *Stats) AddSplitterSamples(c Category, n int64) { s.splitSamp[c].Add(n) }

// Reads returns the number of block reads recorded under category c.
func (s *Stats) Reads(c Category) int64 { return s.reads[c].Load() }

// Writes returns the number of block writes recorded under category c.
func (s *Stats) Writes(c Category) int64 { return s.writes[c].Load() }

// IOs returns reads+writes recorded under category c.
func (s *Stats) IOs(c Category) int64 { return s.reads[c].Load() + s.writes[c].Load() }

// TotalReads returns the total block reads across all categories.
func (s *Stats) TotalReads() int64 {
	var t int64
	for i := range s.reads {
		t += s.reads[i].Load()
	}
	return t
}

// TotalWrites returns the total block writes across all categories.
func (s *Stats) TotalWrites() int64 {
	var t int64
	for i := range s.writes {
		t += s.writes[i].Load()
	}
	return t
}

// TotalIOs returns the total block transfers across all categories. This is
// the paper's primary performance metric.
func (s *Stats) TotalIOs() int64 { return s.TotalReads() + s.TotalWrites() }

// ReadBytes returns the logical bytes read under category c.
func (s *Stats) ReadBytes(c Category) int64 { return s.readB[c].Load() }

// WriteBytes returns the logical bytes written under category c.
func (s *Stats) WriteBytes(c Category) int64 { return s.writeB[c].Load() }

// PhysReads returns the physical device reads recorded under category c.
func (s *Stats) PhysReads(c Category) int64 { return s.physR[c].Load() }

// PhysWrites returns the physical device writes recorded under category c.
func (s *Stats) PhysWrites(c Category) int64 { return s.physW[c].Load() }

// PhysReadBytes returns the bytes physically read under category c.
func (s *Stats) PhysReadBytes(c Category) int64 { return s.physRB[c].Load() }

// PhysWriteBytes returns the bytes physically written under category c.
func (s *Stats) PhysWriteBytes(c Category) int64 { return s.physWB[c].Load() }

// TotalReadBytes returns logical bytes read across all categories.
func (s *Stats) TotalReadBytes() int64 {
	var t int64
	for i := range s.readB {
		t += s.readB[i].Load()
	}
	return t
}

// TotalWriteBytes returns logical bytes written across all categories.
func (s *Stats) TotalWriteBytes() int64 {
	var t int64
	for i := range s.writeB {
		t += s.writeB[i].Load()
	}
	return t
}

// TotalPhysReadBytes returns physically read bytes across all categories.
func (s *Stats) TotalPhysReadBytes() int64 {
	var t int64
	for i := range s.physRB {
		t += s.physRB[i].Load()
	}
	return t
}

// TotalPhysWriteBytes returns physically written bytes across all
// categories.
func (s *Stats) TotalPhysWriteBytes() int64 {
	var t int64
	for i := range s.physWB {
		t += s.physWB[i].Load()
	}
	return t
}

// Retries returns the retried operations recorded under category c.
func (s *Stats) Retries(c Category) int64 { return s.retries[c].Load() }

// ChecksumFailures returns the checksum failures recorded under category c.
func (s *Stats) ChecksumFailures(c Category) int64 { return s.ckFails[c].Load() }

// TotalRetries returns retried operations across all categories.
func (s *Stats) TotalRetries() int64 {
	var t int64
	for i := range s.retries {
		t += s.retries[i].Load()
	}
	return t
}

// TotalChecksumFailures returns checksum failures across all categories.
func (s *Stats) TotalChecksumFailures() int64 {
	var t int64
	for i := range s.ckFails {
		t += s.ckFails[i].Load()
	}
	return t
}

// Canceled returns the lifecycle-refused operations recorded under
// category c.
func (s *Stats) Canceled(c Category) int64 { return s.canceled[c].Load() }

// Exhausted returns the out-of-space write failures recorded under
// category c.
func (s *Stats) Exhausted(c Category) int64 { return s.exhaust[c].Load() }

// TotalCanceled returns lifecycle-refused operations across all categories.
func (s *Stats) TotalCanceled() int64 {
	var t int64
	for i := range s.canceled {
		t += s.canceled[i].Load()
	}
	return t
}

// TotalExhausted returns out-of-space failures across all categories.
func (s *Stats) TotalExhausted() int64 {
	var t int64
	for i := range s.exhaust {
		t += s.exhaust[i].Load()
	}
	return t
}

// PrefetchHits returns the consumed read-ahead blocks recorded under
// category c.
func (s *Stats) PrefetchHits(c Category) int64 { return s.prefHit[c].Load() }

// PrefetchWasted returns the unconsumed read-ahead blocks recorded under
// category c.
func (s *Stats) PrefetchWasted(c Category) int64 { return s.prefWaste[c].Load() }

// FlushStalls returns the write-behind queue stalls recorded under
// category c.
func (s *Stats) FlushStalls(c Category) int64 { return s.flushStal[c].Load() }

// TotalPrefetchHits returns consumed read-ahead blocks across all
// categories.
func (s *Stats) TotalPrefetchHits() int64 {
	var t int64
	for i := range s.prefHit {
		t += s.prefHit[i].Load()
	}
	return t
}

// TotalPrefetchWasted returns unconsumed read-ahead blocks across all
// categories.
func (s *Stats) TotalPrefetchWasted() int64 {
	var t int64
	for i := range s.prefWaste {
		t += s.prefWaste[i].Load()
	}
	return t
}

// TotalFlushStalls returns write-behind stalls across all categories.
func (s *Stats) TotalFlushStalls() int64 {
	var t int64
	for i := range s.flushStal {
		t += s.flushStal[i].Load()
	}
	return t
}

// PartitionedMerges returns the range-partitioned merges recorded under
// category c.
func (s *Stats) PartitionedMerges(c Category) int64 { return s.pmerges[c].Load() }

// SplitterSamples returns the fence-key splitter samples recorded under
// category c.
func (s *Stats) SplitterSamples(c Category) int64 { return s.splitSamp[c].Load() }

// TotalPartitionedMerges returns range-partitioned merges across all
// categories.
func (s *Stats) TotalPartitionedMerges() int64 {
	var t int64
	for i := range s.pmerges {
		t += s.pmerges[i].Load()
	}
	return t
}

// TotalSplitterSamples returns fence-key splitter samples across all
// categories.
func (s *Stats) TotalSplitterSamples() int64 {
	var t int64
	for i := range s.splitSamp {
		t += s.splitSamp[i].Load()
	}
	return t
}

// CacheHits returns the cache hits recorded under category c.
func (s *Stats) CacheHits(c Category) int64 { return s.cacheHit[c].Load() }

// CacheMisses returns the cache misses recorded under category c.
func (s *Stats) CacheMisses(c Category) int64 { return s.cacheMis[c].Load() }

// TotalCacheHits returns cache hits across all categories.
func (s *Stats) TotalCacheHits() int64 {
	var t int64
	for i := range s.cacheHit {
		t += s.cacheHit[i].Load()
	}
	return t
}

// TotalCacheMisses returns cache misses across all categories.
func (s *Stats) TotalCacheMisses() int64 {
	var t int64
	for i := range s.cacheMis {
		t += s.cacheMis[i].Load()
	}
	return t
}

// Reset zeroes every counter. Not for concurrent use with in-flight I/O.
func (s *Stats) Reset() {
	for i := 0; i < int(numCategories); i++ {
		s.reads[i].Store(0)
		s.writes[i].Store(0)
		s.readB[i].Store(0)
		s.writeB[i].Store(0)
		s.physR[i].Store(0)
		s.physW[i].Store(0)
		s.physRB[i].Store(0)
		s.physWB[i].Store(0)
		s.retries[i].Store(0)
		s.ckFails[i].Store(0)
		s.cacheHit[i].Store(0)
		s.cacheMis[i].Store(0)
		s.canceled[i].Store(0)
		s.exhaust[i].Store(0)
		s.prefHit[i].Store(0)
		s.prefWaste[i].Store(0)
		s.flushStal[i].Store(0)
		s.pmerges[i].Store(0)
		s.splitSamp[i].Store(0)
	}
}

// Snapshot returns a copy of the per-category counters, keyed by category
// name, for reporting. Categories with zero activity are omitted.
func (s *Stats) Snapshot() map[string]IOCount {
	out := make(map[string]IOCount)
	for i := 0; i < int(numCategories); i++ {
		c := IOCount{
			Reads:             s.reads[i].Load(),
			Writes:            s.writes[i].Load(),
			ReadBytes:         s.readB[i].Load(),
			WriteBytes:        s.writeB[i].Load(),
			PhysReads:         s.physR[i].Load(),
			PhysWrites:        s.physW[i].Load(),
			PhysReadBytes:     s.physRB[i].Load(),
			PhysWriteBytes:    s.physWB[i].Load(),
			Retries:           s.retries[i].Load(),
			ChecksumFailures:  s.ckFails[i].Load(),
			CacheHits:         s.cacheHit[i].Load(),
			CacheMisses:       s.cacheMis[i].Load(),
			Canceled:          s.canceled[i].Load(),
			Exhausted:         s.exhaust[i].Load(),
			PrefetchHits:      s.prefHit[i].Load(),
			PrefetchWasted:    s.prefWaste[i].Load(),
			FlushStalls:       s.flushStal[i].Load(),
			PartitionedMerges: s.pmerges[i].Load(),
			SplitterSamples:   s.splitSamp[i].Load(),
		}
		if c == (IOCount{}) {
			continue
		}
		out[Category(i).String()] = c
	}
	return out
}

// IOCount is the per-category counter set in a Snapshot: block transfers
// plus the hardening layer's retry and checksum-failure counts.
type IOCount struct {
	Reads  int64
	Writes int64
	// ReadBytes and WriteBytes are the logical transfer volumes: whole
	// blocks, exactly Reads/Writes × blockSize — the paper's model,
	// invariant under parallelism and hardening.
	ReadBytes  int64
	WriteBytes int64
	// PhysReads/PhysWrites count operations that reached the physical
	// device (retried attempts included); zero on devices built without
	// the hardening stack.
	PhysReads  int64
	PhysWrites int64
	// PhysReadBytes and PhysWriteBytes are the bytes that actually crossed
	// the device boundary: widened by checksum trailers, shrunk by spill
	// compression.
	PhysReadBytes  int64
	PhysWriteBytes int64
	// Retries counts backend operations that were re-attempted after a
	// transient fault; zero on a healthy device.
	Retries int64
	// ChecksumFailures counts blocks whose stored checksum did not match
	// on read; zero unless the device corrupted data.
	ChecksumFailures int64
	// CacheHits counts ReadBlocks served from the clean-frame cache (no
	// block transfer); zero unless Config.CacheBlocks > 0.
	CacheHits int64
	// CacheMisses counts ReadBlocks that reached the backend with the
	// cache enabled; zero unless Config.CacheBlocks > 0.
	CacheMisses int64
	// Canceled counts block operations the Device refused after the run's
	// lifecycle ended; zero on an uncanceled run.
	Canceled int64
	// Exhausted counts block writes that failed for lack of scratch space;
	// zero unless the device filled up (quota or ENOSPC).
	Exhausted int64
	// PrefetchHits counts blocks a reader consumed out of its read-ahead
	// pipeline; the block's logical read is charged at consumption, so this
	// never inflates Reads. Zero unless Config.ReadAhead > 0.
	PrefetchHits int64
	// PrefetchWasted counts read-ahead blocks fetched but never consumed:
	// physical traffic with no logical charge. Zero unless
	// Config.ReadAhead > 0.
	PrefetchWasted int64
	// FlushStalls counts write-behind submissions that waited on a full
	// flush queue. Zero unless Config.WriteBehind > 0.
	FlushStalls int64
	// PartitionedMerges counts merges that ran as range-partitioned
	// loser-tree fans (one per merge, not per partition); never a block
	// transfer. Zero unless Config.MergeParallel > 0.
	PartitionedMerges int64
	// SplitterSamples counts fence-key samples fed into splitter
	// selection; invariant in the partition count because every
	// partitioned merge reads every input fence index in full. Zero
	// unless Config.MergeParallel > 0.
	SplitterSamples int64
}

// Total returns reads+writes.
func (c IOCount) Total() int64 { return c.Reads + c.Writes }

// String renders the full breakdown as a single line, with categories in a
// stable order, e.g. "input r=100 w=0; output r=0 w=100; total=200".
func (s *Stats) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	var total int64
	for _, name := range names {
		c := snap[name]
		fmt.Fprintf(&b, "%s r=%d w=%d", name, c.Reads, c.Writes)
		if c.PhysReadBytes > 0 || c.PhysWriteBytes > 0 {
			fmt.Fprintf(&b, " lbytes=%d/%d pbytes=%d/%d",
				c.ReadBytes, c.WriteBytes, c.PhysReadBytes, c.PhysWriteBytes)
		}
		if c.Retries > 0 {
			fmt.Fprintf(&b, " retry=%d", c.Retries)
		}
		if c.ChecksumFailures > 0 {
			fmt.Fprintf(&b, " ckfail=%d", c.ChecksumFailures)
		}
		if c.CacheHits > 0 || c.CacheMisses > 0 {
			fmt.Fprintf(&b, " hit=%d miss=%d", c.CacheHits, c.CacheMisses)
		}
		if c.PrefetchHits > 0 || c.PrefetchWasted > 0 {
			fmt.Fprintf(&b, " pref=%d waste=%d", c.PrefetchHits, c.PrefetchWasted)
		}
		if c.FlushStalls > 0 {
			fmt.Fprintf(&b, " stall=%d", c.FlushStalls)
		}
		if c.PartitionedMerges > 0 || c.SplitterSamples > 0 {
			fmt.Fprintf(&b, " pmerge=%d samp=%d", c.PartitionedMerges, c.SplitterSamples)
		}
		if c.Canceled > 0 {
			fmt.Fprintf(&b, " canceled=%d", c.Canceled)
		}
		if c.Exhausted > 0 {
			fmt.Fprintf(&b, " exhausted=%d", c.Exhausted)
		}
		b.WriteString("; ")
		total += c.Total()
	}
	fmt.Fprintf(&b, "total=%d", total)
	return b.String()
}
