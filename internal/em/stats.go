package em

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Stats accumulates block-I/O counts by Category. All methods are safe for
// concurrent use. A single Stats is typically shared by a Device and the
// CountingReader/CountingWriter wrapping the input and output files, so that
// TotalIOs reflects the complete cost of an algorithm run.
type Stats struct {
	mu      sync.Mutex
	reads   [numCategories]int64
	writes  [numCategories]int64
	retries [numCategories]int64
	ckFails [numCategories]int64
}

// NewStats returns an empty Stats.
func NewStats() *Stats { return &Stats{} }

// AddReads records n block reads under category c.
func (s *Stats) AddReads(c Category, n int64) {
	s.mu.Lock()
	s.reads[c] += n
	s.mu.Unlock()
}

// AddWrites records n block writes under category c.
func (s *Stats) AddWrites(c Category, n int64) {
	s.mu.Lock()
	s.writes[c] += n
	s.mu.Unlock()
}

// AddRetries records n retried backend operations under category c. The
// retry layer calls this once per re-attempt, so the counter measures
// wasted transfers caused by transient faults.
func (s *Stats) AddRetries(c Category, n int64) {
	s.mu.Lock()
	s.retries[c] += n
	s.mu.Unlock()
}

// AddChecksumFailures records n blocks that failed checksum verification
// under category c.
func (s *Stats) AddChecksumFailures(c Category, n int64) {
	s.mu.Lock()
	s.ckFails[c] += n
	s.mu.Unlock()
}

// Reads returns the number of block reads recorded under category c.
func (s *Stats) Reads(c Category) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads[c]
}

// Writes returns the number of block writes recorded under category c.
func (s *Stats) Writes(c Category) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writes[c]
}

// IOs returns reads+writes recorded under category c.
func (s *Stats) IOs(c Category) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reads[c] + s.writes[c]
}

// TotalReads returns the total block reads across all categories.
func (s *Stats) TotalReads() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.reads {
		t += v
	}
	return t
}

// TotalWrites returns the total block writes across all categories.
func (s *Stats) TotalWrites() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.writes {
		t += v
	}
	return t
}

// TotalIOs returns the total block transfers across all categories. This is
// the paper's primary performance metric.
func (s *Stats) TotalIOs() int64 { return s.TotalReads() + s.TotalWrites() }

// Retries returns the retried operations recorded under category c.
func (s *Stats) Retries(c Category) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retries[c]
}

// ChecksumFailures returns the checksum failures recorded under category c.
func (s *Stats) ChecksumFailures(c Category) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ckFails[c]
}

// TotalRetries returns retried operations across all categories.
func (s *Stats) TotalRetries() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.retries {
		t += v
	}
	return t
}

// TotalChecksumFailures returns checksum failures across all categories.
func (s *Stats) TotalChecksumFailures() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var t int64
	for _, v := range s.ckFails {
		t += v
	}
	return t
}

// Reset zeroes every counter.
func (s *Stats) Reset() {
	s.mu.Lock()
	s.reads = [numCategories]int64{}
	s.writes = [numCategories]int64{}
	s.retries = [numCategories]int64{}
	s.ckFails = [numCategories]int64{}
	s.mu.Unlock()
}

// Snapshot returns a copy of the per-category counters, keyed by category
// name, for reporting. Categories with zero activity are omitted.
func (s *Stats) Snapshot() map[string]IOCount {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]IOCount)
	for i := 0; i < int(numCategories); i++ {
		if s.reads[i] == 0 && s.writes[i] == 0 && s.retries[i] == 0 && s.ckFails[i] == 0 {
			continue
		}
		out[Category(i).String()] = IOCount{
			Reads:            s.reads[i],
			Writes:           s.writes[i],
			Retries:          s.retries[i],
			ChecksumFailures: s.ckFails[i],
		}
	}
	return out
}

// IOCount is the per-category counter set in a Snapshot: block transfers
// plus the hardening layer's retry and checksum-failure counts.
type IOCount struct {
	Reads  int64
	Writes int64
	// Retries counts backend operations that were re-attempted after a
	// transient fault; zero on a healthy device.
	Retries int64
	// ChecksumFailures counts blocks whose stored checksum did not match
	// on read; zero unless the device corrupted data.
	ChecksumFailures int64
}

// Total returns reads+writes.
func (c IOCount) Total() int64 { return c.Reads + c.Writes }

// String renders the full breakdown as a single line, with categories in a
// stable order, e.g. "input r=100 w=0; output r=0 w=100; total=200".
func (s *Stats) String() string {
	snap := s.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b strings.Builder
	var total int64
	for _, name := range names {
		c := snap[name]
		fmt.Fprintf(&b, "%s r=%d w=%d", name, c.Reads, c.Writes)
		if c.Retries > 0 {
			fmt.Fprintf(&b, " retry=%d", c.Retries)
		}
		if c.ChecksumFailures > 0 {
			fmt.Fprintf(&b, " ckfail=%d", c.ChecksumFailures)
		}
		b.WriteString("; ")
		total += c.Total()
	}
	fmt.Fprintf(&b, "total=%d", total)
	return b.String()
}
