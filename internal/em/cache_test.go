package em

import (
	"bytes"
	"testing"
)

func cacheTestDevice(t *testing.T, blockSize, cacheBlocks int) (*Device, *Stats) {
	t.Helper()
	stats := NewStats()
	d := NewDevice(NewMemBackend(), blockSize, stats)
	d.EnableCache(cacheBlocks)
	t.Cleanup(func() { d.Close() })
	return d, stats
}

func TestBlockCacheHitsSkipReads(t *testing.T) {
	d, stats := cacheTestDevice(t, 8, 2)
	id := d.AllocBlock()
	want := []byte("abcdefgh")
	if err := d.WriteBlock(CatScratch, id, want); err != nil {
		t.Fatal(err)
	}

	buf := make([]byte, 8)
	if err := d.ReadBlock(CatScratch, id, buf); err != nil {
		t.Fatal(err)
	}
	if stats.Reads(CatScratch) != 1 || stats.CacheMisses(CatScratch) != 1 {
		t.Fatalf("first read: reads=%d misses=%d, want 1/1",
			stats.Reads(CatScratch), stats.CacheMisses(CatScratch))
	}

	clear(buf)
	if err := d.ReadBlock(CatScratch, id, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, want) {
		t.Errorf("cached read returned %q, want %q", buf, want)
	}
	if stats.Reads(CatScratch) != 1 {
		t.Errorf("repeat read charged a block transfer: reads = %d, want 1", stats.Reads(CatScratch))
	}
	if stats.CacheHits(CatScratch) != 1 {
		t.Errorf("hits = %d, want 1", stats.CacheHits(CatScratch))
	}
}

func TestBlockCacheWriteUpdatesInPlace(t *testing.T) {
	d, stats := cacheTestDevice(t, 4, 1)
	id := d.AllocBlock()
	buf := make([]byte, 4)
	if err := d.WriteBlock(CatScratch, id, []byte("old!")); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(CatScratch, id, buf); err != nil { // populate cache
		t.Fatal(err)
	}
	if err := d.WriteBlock(CatScratch, id, []byte("new!")); err != nil {
		t.Fatal(err)
	}
	if err := d.ReadBlock(CatScratch, id, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "new!" {
		t.Errorf("read-after-write through cache = %q, want \"new!\"", buf)
	}
	if stats.CacheHits(CatScratch) != 1 {
		t.Errorf("hits = %d, want 1 (updated entry must stay resident)", stats.CacheHits(CatScratch))
	}
	if stats.Writes(CatScratch) != 2 {
		t.Errorf("writes = %d, want 2 (cache must not absorb write transfers)", stats.Writes(CatScratch))
	}
}

func TestBlockCacheEvictsLRU(t *testing.T) {
	d, stats := cacheTestDevice(t, 4, 2)
	ids := []int64{d.AllocBlock(), d.AllocBlock(), d.AllocBlock()}
	buf := make([]byte, 4)
	for i, id := range ids {
		if err := d.WriteBlock(CatScratch, id, []byte{byte(i), 0, 0, 0}); err != nil {
			t.Fatal(err)
		}
	}
	read := func(id int64) {
		t.Helper()
		if err := d.ReadBlock(CatScratch, id, buf); err != nil {
			t.Fatal(err)
		}
	}
	read(ids[0])
	read(ids[1])
	read(ids[2]) // evicts ids[0], reusing its frame
	if got := d.CacheFrames(); got != 2 {
		t.Fatalf("cache holds %d frames, want capacity 2", got)
	}
	read(ids[0]) // miss again
	if stats.CacheHits(CatScratch) != 0 {
		t.Errorf("hits = %d, want 0 (every read was a first touch or post-eviction)", stats.CacheHits(CatScratch))
	}
	read(ids[2]) // still resident: touched after ids[0]'s eviction
	if stats.CacheHits(CatScratch) != 1 {
		t.Errorf("hits = %d, want 1", stats.CacheHits(CatScratch))
	}
	// The cache's frames come from the device pool and return on Close.
	if d.Frames().Live() != 2 {
		t.Errorf("live frames = %d, want 2 (the cache's residents)", d.Frames().Live())
	}
	d.Close()
	if d.Frames().Live() != 0 {
		t.Errorf("frames still live after Close: %d", d.Frames().Live())
	}
}
