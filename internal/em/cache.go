package em

import (
	"container/list"
	"sync"
)

// blockCache is the opt-in clean-frame LRU cache behind Config.CacheBlocks:
// a bounded set of recently read blocks held in frames so that repeat
// ReadBlocks — stack page-ins below the resident window, run re-opens
// during the output phase — are served from memory instead of the backend.
//
// The cache is strictly an I/O eliminator, never a write buffer: every
// entry is a clean copy of what the backend holds (writes update an
// existing entry in place but never defer the backend write), so dropping
// the cache at any moment loses nothing. With the cache disabled (the
// default) the device's behaviour is byte-for-byte what it was without
// this type existing; the paper's I/O counts stay faithful.
//
// Capacity is accounted against the budget by the environment — cache
// memory is part of M, not free slack — and the frames come from the
// device's pool, so cached blocks show up in the frame-conformance
// invariant like every other buffer.
type blockCache struct {
	mu   sync.Mutex
	cap  int
	pool *FramePool
	ents map[int64]*list.Element
	lru  list.List // front = most recently used
}

// cacheEntry is one cached block.
type cacheEntry struct {
	id    int64
	frame Frame
}

func newBlockCache(capacity int, pool *FramePool) *blockCache {
	return &blockCache{cap: capacity, pool: pool, ents: make(map[int64]*list.Element, capacity)}
}

// get copies block id into dst if cached, promoting it to most recently
// used. It reports whether the block was found.
func (c *blockCache) get(id int64, dst []byte) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.ents[id]
	if !ok {
		return false
	}
	c.lru.MoveToFront(el)
	copy(dst, el.Value.(*cacheEntry).frame.Bytes())
	return true
}

// put inserts a clean copy of block id, evicting the least recently used
// entry when full (its frame is reused for the new entry).
func (c *blockCache) put(id int64, p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ents[id]; ok {
		c.lru.MoveToFront(el)
		copy(el.Value.(*cacheEntry).frame.Bytes(), p)
		return
	}
	var ent *cacheEntry
	if c.lru.Len() >= c.cap {
		el := c.lru.Back()
		ent = el.Value.(*cacheEntry)
		delete(c.ents, ent.id)
		c.lru.Remove(el)
	} else {
		ent = &cacheEntry{frame: c.pool.Acquire()}
	}
	ent.id = id
	copy(ent.frame.Bytes(), p)
	c.ents[id] = c.lru.PushFront(ent)
}

// update refreshes an existing entry for id in place; a write to an
// uncached block changes nothing.
func (c *blockCache) update(id int64, p []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.ents[id]; ok {
		copy(el.Value.(*cacheEntry).frame.Bytes(), p)
	}
}

// frames returns how many frames the cache currently holds.
func (c *blockCache) frames() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lru.Len()
}

// drop releases every cached frame back to the pool.
func (c *blockCache) drop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.lru.Front(); el != nil; el = el.Next() {
		c.pool.Release(el.Value.(*cacheEntry).frame)
	}
	c.lru.Init()
	c.ents = map[int64]*list.Element{}
}
