// Package em implements the external-memory substrate that every algorithm
// in this repository runs on. It plays the role that TPIE (the Transparent
// Parallel I/O Environment) plays in the NEXSORT paper: a block-granular
// storage layer with explicit, per-category accounting of every I/O, plus an
// enforced main-memory budget expressed in blocks.
//
// The substrate has four pieces:
//
//   - Device: block-addressed storage backed by a real file (or by memory in
//     tests), through which all reads and writes flow. Each block transfer
//     increments a counter in Stats under a Category chosen by the caller, so
//     the cost breakdown of Section 4.2 of the paper (input, subtree sorts,
//     data-stack paging, path-stack paging, run reads, output-location-stack
//     paging, output) is directly measurable.
//
//   - Budget: a main-memory allocator measured in blocks. Components Grant
//     blocks before buffering data in memory and Release them afterwards;
//     exceeding the budget is an error, so the "M blocks of internal memory"
//     parameter of the I/O model is enforced rather than advisory.
//
//   - Stream: an append-only sequence of blocks on a Device with sequential
//     and positional readers. Sorted runs and the key-path baseline's
//     intermediate runs are Streams.
//
//   - CountingReader / CountingWriter: wrappers that charge block-granular
//     I/O for data that lives outside the Device (the original input XML
//     file and the final output document), so end-to-end I/O counts include
//     the scan of the input and the write of the output.
//
// All counters use the standard external-memory model notation: N elements,
// B elements per block, M blocks of main memory, and I/O cost measured in
// block transfers.
package em

import (
	"errors"
	"fmt"
)

// Category labels the purpose of an I/O so that Stats can reproduce the
// cost breakdown used in the paper's analysis (Lemmas 4.9-4.13).
type Category int

// I/O categories. They correspond one-to-one to the cost components listed
// in Section 4.2 of the paper, plus categories for the baseline sorter.
const (
	// CatInput is the initial scan of the input XML document.
	CatInput Category = iota
	// CatSubtreeSort covers I/Os performed while sorting individual
	// subtrees, including writing their sorted runs (Lemma 4.9).
	CatSubtreeSort
	// CatDataStack is paging of the data stack (Lemma 4.10).
	CatDataStack
	// CatPathStack is paging of the path stack (Lemma 4.11).
	CatPathStack
	// CatRunRead is reading blocks of sorted runs during the output phase
	// (Lemma 4.12).
	CatRunRead
	// CatOutputStack is paging of the output location stack (Lemma 4.13).
	CatOutputStack
	// CatOutput is writing the final sorted document.
	CatOutput
	// CatMergeRun covers run formation and merge passes of the external
	// merge sort baseline.
	CatMergeRun
	// CatScratch is miscellaneous scratch I/O not attributed elsewhere.
	CatScratch
	// CatFenceIndex is the per-run fence-key sparse index: a tiny side
	// stream (the first normalized key of every run block) emitted during
	// run formation when Config.FenceIndex or Config.MergeParallel is set,
	// and read back by the partitioned final merge to select splitters and
	// locate partition boundaries. Index blocks travel through the same
	// hardened backend stack as the runs themselves, so checksums and
	// compression apply; keeping them in their own category keeps every
	// paper-model invariant on the run categories intact.
	CatFenceIndex

	numCategories
)

// String returns a short human-readable name for the category.
func (c Category) String() string {
	switch c {
	case CatInput:
		return "input"
	case CatSubtreeSort:
		return "subtree-sort"
	case CatDataStack:
		return "data-stack"
	case CatPathStack:
		return "path-stack"
	case CatRunRead:
		return "run-read"
	case CatOutputStack:
		return "output-stack"
	case CatOutput:
		return "output"
	case CatMergeRun:
		return "merge-run"
	case CatScratch:
		return "scratch"
	case CatFenceIndex:
		return "fence-index"
	default:
		return fmt.Sprintf("category(%d)", int(c))
	}
}

// Categories returns every defined category in order. It is used by
// reporting code to print complete cost breakdowns.
func Categories() []Category {
	cats := make([]Category, numCategories)
	for i := range cats {
		cats[i] = Category(i)
	}
	return cats
}

// ErrBudgetExceeded is returned by Budget.Grant when a grant would push
// memory use beyond the configured number of blocks.
var ErrBudgetExceeded = errors.New("em: main-memory budget exceeded")

// ErrClosed is returned by operations on a closed Device.
var ErrClosed = errors.New("em: device closed")
