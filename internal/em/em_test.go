package em

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestCategoryStrings(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Categories() {
		s := c.String()
		if s == "" || strings.HasPrefix(s, "category(") {
			t.Errorf("category %d has no name", int(c))
		}
		if seen[s] {
			t.Errorf("duplicate category name %q", s)
		}
		seen[s] = true
	}
}

func TestStatsAccumulation(t *testing.T) {
	s := NewStats()
	s.AddReads(CatInput, 3)
	s.AddWrites(CatOutput, 2)
	s.AddReads(CatInput, 1)
	if got := s.Reads(CatInput); got != 4 {
		t.Errorf("Reads(input) = %d, want 4", got)
	}
	if got := s.Writes(CatOutput); got != 2 {
		t.Errorf("Writes(output) = %d, want 2", got)
	}
	if got := s.TotalIOs(); got != 6 {
		t.Errorf("TotalIOs = %d, want 6", got)
	}
	if got := s.IOs(CatInput); got != 4 {
		t.Errorf("IOs(input) = %d, want 4", got)
	}
	snap := s.Snapshot()
	if snap["input"].Reads != 4 || snap["output"].Writes != 2 {
		t.Errorf("Snapshot = %v", snap)
	}
	if _, ok := snap["data-stack"]; ok {
		t.Error("Snapshot should omit zero categories")
	}
	s.Reset()
	if s.TotalIOs() != 0 {
		t.Error("Reset did not zero counters")
	}
}

func TestStatsString(t *testing.T) {
	s := NewStats()
	s.AddReads(CatInput, 2)
	s.AddWrites(CatOutput, 1)
	str := s.String()
	for _, want := range []string{"input r=2", "output", "total=3"} {
		if !strings.Contains(str, want) {
			t.Errorf("Stats.String() = %q, missing %q", str, want)
		}
	}
}

func TestMemBackendZeroFill(t *testing.T) {
	b := NewMemBackend()
	if _, err := b.WriteAt([]byte("hello"), 100); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, 10)
	if _, err := b.ReadAt(p, 98); err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 'h', 'e', 'l', 'l', 'o', 0, 0, 0}
	if !bytes.Equal(p, want) {
		t.Errorf("ReadAt = %v, want %v", p, want)
	}
	if b.Len() != 105 {
		t.Errorf("Len = %d, want 105", b.Len())
	}
}

func TestFileBackendRoundTrip(t *testing.T) {
	b, err := NewFileBackend(t.TempDir() + "/scratch.bin")
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	data := []byte("external memory")
	if _, err := b.WriteAt(data, 4096); err != nil {
		t.Fatal(err)
	}
	p := make([]byte, len(data))
	if _, err := b.ReadAt(p, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(p, data) {
		t.Errorf("read back %q, want %q", p, data)
	}
	// Reads beyond EOF are zero-filled.
	q := make([]byte, 8)
	if _, err := b.ReadAt(q, 1<<20); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q, make([]byte, 8)) {
		t.Errorf("past-EOF read = %v, want zeros", q)
	}
}

func TestDeviceReadWrite(t *testing.T) {
	stats := NewStats()
	d := NewDevice(NewMemBackend(), 128, stats)
	id := d.AllocBlock()
	blk := make([]byte, 128)
	copy(blk, "block zero")
	if err := d.WriteBlock(CatScratch, id, blk); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 128)
	if err := d.ReadBlock(CatScratch, id, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blk) {
		t.Error("block round trip mismatch")
	}
	if stats.Reads(CatScratch) != 1 || stats.Writes(CatScratch) != 1 {
		t.Errorf("stats = %v", stats.Snapshot())
	}
}

func TestDeviceErrors(t *testing.T) {
	d := NewDevice(NewMemBackend(), 64, nil)
	blk := make([]byte, 64)
	if err := d.ReadBlock(CatScratch, 0, blk); err == nil {
		t.Error("read of unallocated block should fail")
	}
	if err := d.WriteBlock(CatScratch, 5, blk); err == nil {
		t.Error("write of unallocated block should fail")
	}
	id := d.AllocBlock()
	if err := d.WriteBlock(CatScratch, id, blk[:10]); err == nil {
		t.Error("short buffer should fail")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteBlock(CatScratch, id, blk); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close = %v, want ErrClosed", err)
	}
	if err := d.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestBudgetGrantRelease(t *testing.T) {
	b := NewBudget(4)
	if err := b.Grant(3); err != nil {
		t.Fatal(err)
	}
	if err := b.Grant(2); !errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("overcommit = %v, want ErrBudgetExceeded", err)
	}
	if b.InUse() != 3 || b.Free() != 1 {
		t.Errorf("InUse=%d Free=%d", b.InUse(), b.Free())
	}
	b.Release(2)
	if err := b.Grant(3); err != nil {
		t.Fatal(err)
	}
	if b.Peak() != 4 {
		t.Errorf("Peak = %d, want 4", b.Peak())
	}
	if b.Total() != 4 {
		t.Errorf("Total = %d, want 4", b.Total())
	}
}

func TestBudgetPanics(t *testing.T) {
	b := NewBudget(2)
	mustPanic(t, "over-release", func() { b.Release(1) })
	mustPanic(t, "negative grant", func() { _ = b.Grant(-1) })
	mustPanic(t, "zero budget", func() { NewBudget(0) })
	mustPanic(t, "MustGrant", func() { b.MustGrant(3) })
}

func mustPanic(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}

func TestStreamRoundTrip(t *testing.T) {
	d := NewDevice(NewMemBackend(), 32, nil)
	s := NewStream(d, CatMergeRun)
	budget := NewBudget(8)
	w, err := s.NewWriter(budget)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		chunk := make([]byte, rng.Intn(70))
		rng.Read(chunk)
		want.Write(chunk)
		if _, err := w.Write(chunk); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 0 {
		t.Errorf("writer leaked %d budget blocks", budget.InUse())
	}
	if s.Size() != int64(want.Len()) {
		t.Fatalf("Size = %d, want %d", s.Size(), want.Len())
	}
	r, err := s.NewReader(budget, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Error("stream round trip mismatch")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if budget.InUse() != 0 {
		t.Errorf("reader leaked %d budget blocks", budget.InUse())
	}
}

func TestStreamReadFromOffset(t *testing.T) {
	d := NewDevice(NewMemBackend(), 16, nil)
	s := NewStream(d, CatRunRead)
	w, _ := s.NewWriter(nil)
	payload := []byte("abcdefghijklmnopqrstuvwxyz0123456789")
	w.Write(payload)
	w.Close()
	for _, off := range []int64{0, 1, 15, 16, 17, 35, 36} {
		r, err := s.NewReader(nil, off)
		if err != nil {
			t.Fatalf("offset %d: %v", off, err)
		}
		got, _ := io.ReadAll(r)
		if string(got) != string(payload[off:]) {
			t.Errorf("offset %d: got %q, want %q", off, got, payload[off:])
		}
		r.Close()
	}
	if _, err := s.NewReader(nil, 37); err == nil {
		t.Error("out-of-range offset should fail")
	}
	if _, err := s.NewReader(nil, -1); err == nil {
		t.Error("negative offset should fail")
	}
}

func TestStreamWriterRules(t *testing.T) {
	d := NewDevice(NewMemBackend(), 16, nil)
	s := NewStream(d, CatScratch)
	if _, err := s.NewReader(nil, 0); err == nil {
		t.Error("reading an unsealed stream should fail")
	}
	w, _ := s.NewWriter(nil)
	if _, err := s.NewWriter(nil); err == nil {
		// A second writer while the first has flushed nothing is caught
		// only after the first block lands; writing then sealing makes the
		// state observable, so check the post-seal rule instead below.
		t.Log("second writer before first flush is tolerated")
	}
	w.Write([]byte("0123456789abcdef____"))
	w.Close()
	if _, err := s.NewWriter(nil); err == nil {
		t.Error("writer on sealed stream should fail")
	}
	if _, err := w.Write([]byte("x")); err == nil {
		t.Error("write after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close = %v", err)
	}
}

func TestStreamReadByte(t *testing.T) {
	d := NewDevice(NewMemBackend(), 8, nil)
	s := NewStream(d, CatScratch)
	w, _ := s.NewWriter(nil)
	w.Write([]byte("xyz"))
	w.Close()
	r, _ := s.NewReader(nil, 0)
	defer r.Close()
	for _, want := range []byte("xyz") {
		b, err := r.ReadByte()
		if err != nil || b != want {
			t.Fatalf("ReadByte = %q, %v; want %q", b, err, want)
		}
	}
	if _, err := r.ReadByte(); err != io.EOF {
		t.Errorf("ReadByte at EOF = %v, want io.EOF", err)
	}
}

func TestStreamIOCounting(t *testing.T) {
	stats := NewStats()
	d := NewDevice(NewMemBackend(), 64, stats)
	s := NewStream(d, CatMergeRun)
	w, _ := s.NewWriter(nil)
	w.Write(make([]byte, 200)) // 3 blocks wanted (2 full + partial)
	w.Close()
	if got := stats.Writes(CatMergeRun); got != 4 {
		// 200 bytes over 64-byte blocks = 3 full flushes at 64,128,192
		// would be wrong: 200/64 = 3 full (192 bytes) + 8-byte tail = 4.
		t.Errorf("writes = %d, want 4", got)
	}
	r, _ := s.NewReader(nil, 0)
	io.ReadAll(r)
	r.Close()
	if got := stats.Reads(CatMergeRun); got != 4 {
		t.Errorf("reads = %d, want 4", got)
	}
}

func TestCountingReader(t *testing.T) {
	stats := NewStats()
	d := NewDevice(NewMemBackend(), 100, stats)
	src := strings.NewReader(strings.Repeat("a", 250))
	cr := NewCountingReader(src, d, CatInput)
	defer cr.Close()
	got, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 250 {
		t.Fatalf("read %d bytes", len(got))
	}
	if stats.Reads(CatInput) != 2 {
		t.Errorf("pre-Finish reads = %d, want 2", stats.Reads(CatInput))
	}
	cr.Finish()
	if stats.Reads(CatInput) != 3 {
		t.Errorf("post-Finish reads = %d, want 3", stats.Reads(CatInput))
	}
	if cr.BytesRead() != 250 {
		t.Errorf("BytesRead = %d", cr.BytesRead())
	}
	cr.Finish() // idempotent
	if stats.Reads(CatInput) != 3 {
		t.Error("Finish not idempotent")
	}
}

func TestCountingReaderByteAtATime(t *testing.T) {
	stats := NewStats()
	d := NewDevice(NewMemBackend(), 4, stats)
	cr := NewCountingReader(strings.NewReader("hello!"), d, CatInput)
	defer cr.Close()
	for i := 0; i < 6; i++ {
		if _, err := cr.ReadByte(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := cr.ReadByte(); err != io.EOF {
		t.Errorf("want EOF, got %v", err)
	}
	cr.Finish()
	if stats.Reads(CatInput) != 2 {
		t.Errorf("reads = %d, want 2", stats.Reads(CatInput))
	}
}

func TestCountingWriter(t *testing.T) {
	stats := NewStats()
	d := NewDevice(NewMemBackend(), 100, stats)
	var sink bytes.Buffer
	cw := NewCountingWriter(&sink, d, CatOutput)
	defer cw.Close()
	cw.Write(make([]byte, 150))
	if err := cw.Flush(); err != nil {
		t.Fatal(err)
	}
	if stats.Writes(CatOutput) != 2 {
		t.Errorf("writes = %d, want 2", stats.Writes(CatOutput))
	}
	if sink.Len() != 150 || cw.BytesWritten() != 150 {
		t.Errorf("sink=%d bytes, counted=%d", sink.Len(), cw.BytesWritten())
	}
}

func TestFaultBackend(t *testing.T) {
	inner := NewMemBackend()
	fb := NewFaultBackend(inner)
	boom := errors.New("boom")
	fb.FailWriteAfter(2, boom)
	p := make([]byte, 4)
	if _, err := fb.WriteAt(p, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.WriteAt(p, 4); !errors.Is(err, boom) {
		t.Errorf("second write = %v, want boom", err)
	}
	if _, err := fb.WriteAt(p, 8); err != nil {
		t.Errorf("third write = %v, want nil (disarmed)", err)
	}
	fb.FailReadAfter(1, boom)
	if _, err := fb.ReadAt(p, 0); !errors.Is(err, boom) {
		t.Errorf("read = %v, want boom", err)
	}
	if _, err := fb.ReadAt(p, 0); err != nil {
		t.Errorf("read after disarm = %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	cases := []struct {
		cfg Config
		ok  bool
	}{
		{Config{BlockSize: 4096, MemBlocks: 16}, true},
		{Config{BlockSize: 64, MemBlocks: 5}, true},
		{Config{BlockSize: 32, MemBlocks: 16}, false},
		{Config{BlockSize: 4096, MemBlocks: 4}, false},
	}
	for _, c := range cases {
		err := c.cfg.Validate()
		if (err == nil) != c.ok {
			t.Errorf("Validate(%+v) = %v, want ok=%v", c.cfg, err, c.ok)
		}
	}
}

func TestEnvLifecycle(t *testing.T) {
	env, err := NewEnv(Config{BlockSize: 256, MemBlocks: 8})
	if err != nil {
		t.Fatal(err)
	}
	if env.Dev.BlockSize() != 256 || env.Budget.Total() != 8 {
		t.Error("env parameters not propagated")
	}
	if err := env.Close(); err != nil {
		t.Fatal(err)
	}

	env2, err := NewEnv(Config{BlockSize: 256, MemBlocks: 8, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	id := env2.Dev.AllocBlock()
	blk := make([]byte, 256)
	if err := env2.Dev.WriteBlock(CatScratch, id, blk); err != nil {
		t.Fatal(err)
	}
	if err := env2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCostModel(t *testing.T) {
	m := DefaultCostModel()
	one := m.Seconds(1, 64<<10)
	if one <= 0.005 || one > 0.01 {
		t.Errorf("one 64KiB I/O = %gs, want in (5ms, 10ms]", one)
	}
	if got := m.Seconds(100, 64<<10); got != one*100 {
		t.Errorf("cost not linear in I/O count")
	}
}

// Property: a stream written in arbitrary chunkings reads back identically
// from any valid offset.
func TestStreamProperty(t *testing.T) {
	f := func(data []byte, blockPow uint8, offSeed uint16) bool {
		blockSize := 8 << (blockPow % 6) // 8..256
		d := NewDevice(NewMemBackend(), blockSize, nil)
		s := NewStream(d, CatScratch)
		w, _ := s.NewWriter(nil)
		// Write in pseudo-random chunk sizes.
		rng := rand.New(rand.NewSource(int64(offSeed)))
		rest := data
		for len(rest) > 0 {
			n := 1 + rng.Intn(len(rest))
			w.Write(rest[:n])
			rest = rest[n:]
		}
		w.Close()
		if s.Size() != int64(len(data)) {
			return false
		}
		off := int64(0)
		if len(data) > 0 {
			off = int64(int(offSeed) % (len(data) + 1))
		}
		r, err := s.NewReader(nil, off)
		if err != nil {
			return false
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			return false
		}
		return bytes.Equal(got, data[off:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
