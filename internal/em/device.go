package em

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Device is block-addressed scratch storage with per-category I/O
// accounting. Sorted runs and paged-out stack blocks live here. Blocks are
// identified by a dense int64 ID handed out by AllocBlock; the Device never
// reuses IDs, which keeps run pointers stable for the whole sort.
//
// Locking: the mutex guards allocation and the closed flag; the transfer
// itself runs outside the lock, so concurrent workers overlap their block
// I/O. That is safe because every backend in the tree is itself
// concurrency-safe (FileBackend uses positional pread/pwrite; MemBackend,
// ChecksumBackend and the fault injectors carry their own locks; the retry
// layer is stateless), and because blocks are never shared between
// in-flight writers — each stream/stack owns the block IDs it allocated.
type Device struct {
	blockSize int
	stats     *Stats
	frames    *FramePool

	// life bounds the run: every ReadBlock/WriteBlock checks it before
	// transferring, making the Device the single enforcement point that
	// gives cancellation its ≤ K-block-operations promptness bound — all
	// spill traffic (runstore, xstack paging, extsort runs, core's
	// workers) flows through here. Set once by BindLifecycle before the
	// device is shared; nil never cancels. capacity is the scratch quota
	// hint in blocks (0 unlimited), set alongside it; both are immutable
	// after construction, so reads need no lock.
	life     *Lifecycle
	capacity int64

	mu        sync.Mutex
	backend   Backend
	cache     *blockCache
	nextBlock int64
	closed    bool

	// async is the overlapped-I/O engine (write-behind + read-ahead), nil
	// until EnableAsync. Like life it is installed before the device is
	// shared and never replaced, so reads of the pointer need no lock.
	async *asyncEngine
}

// NewDevice returns a Device with the given block size over backend,
// charging I/Os to stats.
func NewDevice(backend Backend, blockSize int, stats *Stats) *Device {
	if blockSize <= 0 {
		panic("em: block size must be positive")
	}
	if stats == nil {
		stats = NewStats()
	}
	return &Device{blockSize: blockSize, stats: stats, frames: NewFramePool(blockSize), backend: backend}
}

// NewFileDevice creates a Device backed by a scratch file in dir (the
// system temp dir if empty). The file is removed on Close.
func NewFileDevice(dir string, blockSize int, stats *Stats) (*Device, error) {
	b, err := NewFileBackend(scratchPath(dir))
	if err != nil {
		return nil, err
	}
	return NewDevice(b, blockSize, stats), nil
}

// scratchPath returns a fresh scratch-file path in dir. The name carries
// the PID alongside the process-local counter so that two processes
// sharing a scratch directory can never collide; NewFileBackend's
// exclusive create backstops even that (PID reuse, containers sharing a
// PID namespace view of one volume).
func scratchPath(dir string) string {
	return filepath.Join(dir, fmt.Sprintf("nexsort-scratch-%d-%d.bin", os.Getpid(), nextScratchID()))
}

var (
	scratchMu sync.Mutex
	scratchID int64
)

func nextScratchID() int64 {
	scratchMu.Lock()
	defer scratchMu.Unlock()
	scratchID++
	return scratchID
}

// BindLifecycle attaches the run's lifecycle: once it ends, every further
// block operation is refused with the wrapped context error. Call before
// the device is shared between goroutines (NewEnvContext does); a nil
// lifecycle means the device never cancels.
func (d *Device) BindLifecycle(l *Lifecycle) { d.life = l }

// SetCapacityHint records the scratch quota in blocks that a
// CapacityBackend (or the deployment) enforces underneath, enabling
// NearFull. 0 means unlimited. Call before the device is shared.
func (d *Device) SetCapacityHint(blocks int64) { d.capacity = blocks }

// Interrupted returns the run's typed cancellation error once the bound
// lifecycle has ended, nil before that. Components with long CPU-only
// stretches between block operations (in-memory sorts, the counting
// reader/writer at the user-I/O boundary) poll this to keep cancellation
// prompt even when no spill traffic is flowing.
func (d *Device) Interrupted() error { return d.life.Interrupted() }

// NearFull reports whether scratch allocation has reached 7/8 of the
// capacity hint — the graceful-degradation signal: extsort reacts by
// streaming its final merge (maximum fan-in, no materialized output run)
// instead of spending the scratch it may not have. Always false without a
// capacity hint.
func (d *Device) NearFull() bool {
	if d.capacity <= 0 {
		return false
	}
	return d.Allocated() >= d.capacity-d.capacity/8
}

// BlockSize returns the device block size in bytes.
func (d *Device) BlockSize() int { return d.blockSize }

// Stats returns the Stats this device charges I/Os to.
func (d *Device) Stats() *Stats { return d.stats }

// Frames returns the device's block-sized frame pool: the single source of
// block buffers for every component operating on this device.
func (d *Device) Frames() *FramePool { return d.frames }

// EnableCache installs a clean-frame LRU cache of the given capacity (in
// blocks) in front of the backend; see blockCache. The caller is
// responsible for the cache's memory accounting (NewEnv grants
// Config.CacheBlocks from the budget). blocks <= 0 is a no-op.
func (d *Device) EnableCache(blocks int) {
	if blocks <= 0 {
		return
	}
	d.mu.Lock()
	d.cache = newBlockCache(blocks, d.frames)
	d.mu.Unlock()
}

// EnableAsync installs the overlapped-I/O engine: a write-behind queue of
// writeBehind blocks and a read-ahead pipeline of readAhead blocks (either
// may be zero to disable that side; both zero is a no-op and leaves the
// device fully synchronous). The caller owns the memory accounting — NewEnv
// grants readAhead+writeBehind blocks from the budget, mirroring the cache
// grant. Call before the device is shared.
func (d *Device) EnableAsync(readAhead, writeBehind int) {
	if readAhead <= 0 && writeBehind <= 0 {
		return
	}
	if readAhead < 0 {
		readAhead = 0
	}
	if writeBehind < 0 {
		writeBehind = 0
	}
	d.async = newAsyncEngine(d, readAhead, writeBehind)
}

// AsyncDepths reports the installed read-ahead and write-behind depths in
// blocks (0, 0 on a synchronous device).
func (d *Device) AsyncDepths() (readAhead, writeBehind int) {
	if d.async == nil {
		return 0, 0
	}
	return d.async.readAhead, d.async.writeBehind
}

// CacheFrames returns how many frames the cache holds live right now (0
// without a cache). Tests use it to separate cache residency from
// algorithm buffers.
func (d *Device) CacheFrames() int {
	d.mu.Lock()
	c := d.cache
	d.mu.Unlock()
	if c == nil {
		return 0
	}
	return c.frames()
}

// AllocBlock reserves a fresh block and returns its ID. Allocation is pure
// bookkeeping and costs no I/O; the block is materialized on first write.
func (d *Device) AllocBlock() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	id := d.nextBlock
	d.nextBlock++
	return id
}

// Allocated reports how many blocks have been allocated so far. It bounds
// the scratch-space footprint of a run.
func (d *Device) Allocated() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.nextBlock
}

// ReadBlock fills p (which must be exactly one block long) with the contents
// of the given block, charging one read to category c.
func (d *Device) ReadBlock(c Category, id int64, p []byte) error {
	if len(p) != d.blockSize {
		return fmt.Errorf("em: ReadBlock buffer is %d bytes, want %d", len(p), d.blockSize)
	}
	if err := d.life.Interrupted(); err != nil {
		d.stats.AddCanceled(c, 1)
		return fmt.Errorf("em: read block %d refused: %w", id, err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if id < 0 || id >= d.nextBlock {
		d.mu.Unlock()
		return fmt.Errorf("em: ReadBlock of unallocated block %d", id)
	}
	backend := d.backend
	cache := d.cache
	d.mu.Unlock()

	if cache != nil && cache.get(id, p) {
		// Served from a clean cached frame: no block transfer happened, so
		// no read is charged — the hit is surfaced in its own counter.
		d.stats.AddCacheHits(c, 1)
		return nil
	}
	if d.async.lookupPending(id, p) {
		// The block has an in-flight write-behind: its newest bytes live in
		// the pending mirror, not (yet) on the backend. Serving them here
		// replaces the backend read the synchronous device would have done,
		// so it is charged identically — the physical ledger alone records
		// that no device transfer happened.
		d.stats.AddReads(c, 1)
		d.stats.AddReadBytes(c, int64(d.blockSize))
		if cache != nil {
			d.stats.AddCacheMisses(c, 1)
			cache.put(id, p)
		}
		return nil
	}
	if _, err := readAtCat(backend, p, id*int64(d.blockSize), c); err != nil {
		return fmt.Errorf("em: read block %d: %w", id, err)
	}
	d.stats.AddReads(c, 1)
	d.stats.AddReadBytes(c, int64(d.blockSize))
	if cache != nil {
		d.stats.AddCacheMisses(c, 1)
		cache.put(id, p)
	}
	return nil
}

// readBlockPrefetch is the read-ahead worker's view of ReadBlock: the same
// lifecycle gate, bounds checks, cache/pending/backend lookup order and
// error taxonomy, but no logical stats — those are charged at the moment a
// reader consumes the block, which is what keeps the logical ledger
// identical at every pipeline depth. The returned source tells the
// consumption path which charge to apply.
func (d *Device) readBlockPrefetch(c Category, id int64, p []byte) (prefetchSource, error) {
	if err := d.life.Interrupted(); err != nil {
		d.stats.AddCanceled(c, 1)
		return srcBackend, fmt.Errorf("em: read block %d refused: %w", id, err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return srcBackend, ErrClosed
	}
	if id < 0 || id >= d.nextBlock {
		d.mu.Unlock()
		return srcBackend, fmt.Errorf("em: ReadBlock of unallocated block %d", id)
	}
	backend := d.backend
	cache := d.cache
	d.mu.Unlock()

	if cache != nil && cache.get(id, p) {
		return srcCache, nil
	}
	if d.async.lookupPending(id, p) {
		if cache != nil {
			cache.put(id, p)
		}
		return srcPending, nil
	}
	if _, err := readAtCat(backend, p, id*int64(d.blockSize), c); err != nil {
		return srcBackend, fmt.Errorf("em: read block %d: %w", id, err)
	}
	if cache != nil {
		cache.put(id, p)
	}
	return srcBackend, nil
}

func (d *Device) cacheEnabled() bool {
	d.mu.Lock()
	on := d.cache != nil
	d.mu.Unlock()
	return on
}

// WriteBlock stores p (exactly one block) into the given block, charging one
// write to category c.
func (d *Device) WriteBlock(c Category, id int64, p []byte) error {
	return d.writeBlockSync(c, id, p, true)
}

// writeBlockSync is WriteBlock's body. The flusher goroutine calls it with
// updateCache false: the cache was already brought coherent at submission
// time, and re-touching it here could clobber a newer submission for the
// same block with these older bytes.
func (d *Device) writeBlockSync(c Category, id int64, p []byte, updateCache bool) error {
	if len(p) != d.blockSize {
		return fmt.Errorf("em: WriteBlock buffer is %d bytes, want %d", len(p), d.blockSize)
	}
	if err := d.life.Interrupted(); err != nil {
		d.stats.AddCanceled(c, 1)
		return fmt.Errorf("em: write block %d refused: %w", id, err)
	}
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return ErrClosed
	}
	if id < 0 || id >= d.nextBlock {
		d.mu.Unlock()
		return fmt.Errorf("em: WriteBlock of unallocated block %d", id)
	}
	backend := d.backend
	cache := d.cache
	d.mu.Unlock()

	if cache != nil && updateCache {
		// Keep an already-cached copy coherent. Writes never insert new
		// entries: the cache holds clean frames for repeat reads, and the
		// write itself still costs its full block transfer below.
		cache.update(id, p)
	}
	if _, err := writeAtCat(backend, p, id*int64(d.blockSize), c); err != nil {
		if IsExhausted(err) {
			d.stats.AddExhausted(c, 1)
		}
		return fmt.Errorf("em: write block %d: %w", id, err)
	}
	d.stats.AddWrites(c, 1)
	d.stats.AddWriteBytes(c, int64(d.blockSize))
	return nil
}

// WriteBlockBehind queues frame's contents (exactly one block) to be
// written to the given block by the flusher, transferring frame ownership
// to the engine. The logical write is charged by the flusher when it
// executes — exactly once per submission, preserving the synchronous
// ledger. done fires exactly once with the flush's error; the submitter
// must surface it at its next touch point on the same stream or pager. The
// cache (if any) is brought coherent immediately, and until the flush
// lands, reads of the block are served the submitted bytes from the
// pending mirror. Returns false without side effects when write-behind is
// unavailable; callers then use WriteBlock.
func (d *Device) WriteBlockBehind(c Category, id int64, frame Frame, done func(error)) bool {
	if d.async == nil || d.async.writeBehind == 0 {
		return false
	}
	p := frame.Bytes()
	if len(p) != d.blockSize {
		return false
	}
	d.mu.Lock()
	if d.closed || id < 0 || id >= d.nextBlock {
		d.mu.Unlock()
		return false
	}
	cache := d.cache
	d.mu.Unlock()
	if cache != nil {
		cache.update(id, p)
	}
	return d.async.submitWrite(c, id, frame, done)
}

// Close drains the async engine, releases the backend and drops the cache's
// frames. Further operations return ErrClosed. The closed flag is raised
// before the engine drains, so writes still queued at close time are
// refused at the device gate — their done callbacks fire with ErrClosed —
// rather than racing the backend's release.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	cache := d.cache
	d.cache = nil
	backend := d.backend
	d.mu.Unlock()

	d.async.shutdown()
	if cache != nil {
		cache.drop()
	}
	return backend.Close()
}
