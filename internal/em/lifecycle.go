package em

import (
	"context"
	"fmt"
)

// Lifecycle carries the context that bounds one run of the substrate.
// Every component that moves blocks — the Device, the retry layer's
// backoff sleeps, the counting reader/writer at the user-I/O boundary —
// consults the lifecycle before doing work, so a cancellation or an
// expired deadline is observed within a bounded number of block
// operations anywhere in a run (DESIGN.md §13).
//
// A nil *Lifecycle is the valid "never cancels" lifecycle: every method
// works on a nil receiver, so plain NewEnv environments pay a nil check
// and nothing else. The context is set once at construction and never
// replaced, which is what makes the unsynchronized reads below safe: the
// field is published before the environment is shared.
type Lifecycle struct {
	ctx context.Context // immutable after NewLifecycle (see NV005 baseline)
}

// NewLifecycle binds ctx as a run's lifecycle. A nil ctx returns the nil
// lifecycle, which never cancels.
func NewLifecycle(ctx context.Context) *Lifecycle {
	if ctx == nil {
		return nil
	}
	return &Lifecycle{ctx: ctx}
}

// Err returns the bound context's error: nil while the run may continue,
// context.Canceled or context.DeadlineExceeded once it must stop.
func (l *Lifecycle) Err() error {
	if l == nil || l.ctx == nil {
		return nil
	}
	return l.ctx.Err()
}

// Done returns the bound context's cancellation channel, or nil for the
// never-canceling lifecycle (a nil channel blocks forever in a select,
// which is exactly the semantics wanted).
func (l *Lifecycle) Done() <-chan struct{} {
	if l == nil || l.ctx == nil {
		return nil
	}
	return l.ctx.Done()
}

// Interrupted wraps Err for surfacing: a non-nil result is the typed
// cancellation error every refused operation returns, matching
// errors.Is(err, context.Canceled) and errors.Is(err,
// context.DeadlineExceeded) through the %w chain. Cancellation is not a
// device fault, so it classifies as permanent — the retry layer must
// never re-attempt a canceled operation.
func (l *Lifecycle) Interrupted() error {
	if err := l.Err(); err != nil {
		return fmt.Errorf("em: run canceled: %w", err)
	}
	return nil
}
