package em

import (
	"sync"
)

// asyncEngine is the Device's submission/completion core for overlapped
// I/O (DESIGN.md §15). It owns two bounded pipelines:
//
//   - Write-behind: full frames are handed off to a single flusher
//     goroutine; the submitter acquires a fresh frame and keeps computing
//     while the flush runs. In-flight writes are mirrored in a pending map
//     so a concurrent read of the same block is served the new bytes, never
//     a stale backend copy.
//   - Read-ahead: readers schedule upcoming blocks of their extent tables
//     onto a single prefetch worker. Prefetched bytes land in engine-owned
//     frames; the logical read is charged only when (and if) the reader
//     consumes the block, which keeps the logical I/O ledger identical to
//     the synchronous device at every pipeline depth.
//
// Memory is real budget: NewEnv grants ReadAhead+WriteBehind blocks to the
// engine, and the engine never holds more frames than that — write-behind
// owns at most writeBehind frames (queue plus the one in the flusher's
// hands), read-ahead at most readAhead (tracked by tokens). The containment
// invariant live frames ≤ granted blocks therefore keeps holding with the
// pipelines running.
//
// Exactly two goroutines exist per engine regardless of depth, so at most
// two extra block operations can be in flight when a cancellation triggers;
// that keeps the drain inside the established ≤ 2P+4 promptness bound.
type asyncEngine struct {
	dev         *Device
	readAhead   int
	writeBehind int

	// Write-behind. writeMu serializes submissions against shutdown: a
	// submission holds the read lock across the queue send, so close() can
	// take the write lock only when no send is in flight, and the channel
	// close below never races a send. The queue capacity is writeBehind-1:
	// queued frames plus the one the flusher holds never exceed the grant.
	writeMu     sync.RWMutex
	writeClosed bool
	writeq      chan writeReq
	flushWG     sync.WaitGroup

	// pending mirrors every write-behind block that has not yet reached the
	// backend: block ID → latest submitted bytes plus the number of
	// submissions still in flight. Reads (sync and prefetch) consult it
	// after the cache and before the backend.
	pendMu  sync.Mutex
	pending map[int64]*pendingWrite

	// Read-ahead. tokens is the unissued share of the readAhead grant; a
	// slot's frame is acquired from the pool when its token is taken and
	// released the moment the slot is consumed or abandoned, so an idle
	// engine pins no frames and the unwind invariant (FramesLive == 0 after
	// a run) holds unchanged. readMu/readClosed/readq mirror the write
	// side's shutdown protocol.
	readMu     sync.RWMutex
	readClosed bool
	readq      chan *prefetchSlot
	readWG     sync.WaitGroup

	frameMu sync.Mutex
	tokens  int
}

type writeReq struct {
	cat   Category
	id    int64
	frame Frame
	done  func(error)
}

type pendingWrite struct {
	data  []byte // latest submitted contents; valid while inFlight > 0
	count int    // submissions not yet flushed
}

// prefetchSlot is one scheduled read-ahead block. The worker fills frame,
// records where the bytes came from (for consumption-time stats), and
// closes done. Exactly one of consume/abandon must follow.
type prefetchSlot struct {
	cat   Category
	id    int64
	frame Frame
	src   prefetchSource
	err   error
	done  chan struct{}
}

type prefetchSource uint8

const (
	srcBackend prefetchSource = iota // read the backend (or was served by write-behind)
	srcCache                         // served by the clean-frame cache
	srcPending                       // served by an in-flight write-behind
)

func newAsyncEngine(dev *Device, readAhead, writeBehind int) *asyncEngine {
	e := &asyncEngine{
		dev:         dev,
		readAhead:   readAhead,
		writeBehind: writeBehind,
		tokens:      readAhead,
	}
	if writeBehind > 0 {
		e.pending = make(map[int64]*pendingWrite)
		e.writeq = make(chan writeReq, writeBehind-1)
		e.flushWG.Add(1)
		go e.flushLoop()
	}
	if readAhead > 0 {
		e.readq = make(chan *prefetchSlot, readAhead)
		e.readWG.Add(1)
		go e.prefetchLoop()
	}
	return e
}

// submitWrite queues frame's contents to be written to block id, taking
// ownership of the frame. done fires exactly once, after the flush, with
// the write's error. It reports false — without queuing — when write-behind
// is unavailable (disabled or already shut down); the caller falls back to
// the synchronous WriteBlock.
func (e *asyncEngine) submitWrite(c Category, id int64, frame Frame, done func(error)) bool {
	if e == nil || e.writeBehind == 0 {
		return false
	}
	e.writeMu.RLock()
	defer e.writeMu.RUnlock()
	if e.writeClosed {
		return false
	}
	e.registerPending(id, frame.Bytes())
	req := writeReq{cat: c, id: id, frame: frame, done: done}
	select {
	case e.writeq <- req:
	default:
		// Queue full: the pipeline is the bottleneck right now. The stall
		// is surfaced in its own counter; the submission then waits like a
		// synchronous write would.
		e.dev.stats.AddFlushStalls(c, 1)
		e.writeq <- req
	}
	return true
}

func (e *asyncEngine) flushLoop() {
	defer e.flushWG.Done()
	for req := range e.writeq {
		err := e.dev.writeBlockSync(req.cat, req.id, req.frame.Bytes(), false)
		e.completePending(req.id, err != nil)
		e.dev.frames.Release(req.frame)
		req.done(err)
	}
}

func (e *asyncEngine) registerPending(id int64, data []byte) {
	e.pendMu.Lock()
	if p, ok := e.pending[id]; ok {
		p.data = data // later submission supersedes the earlier bytes
		p.count++
	} else {
		e.pending[id] = &pendingWrite{data: data, count: 1}
	}
	e.pendMu.Unlock()
}

func (e *asyncEngine) completePending(id int64, failed bool) {
	e.pendMu.Lock()
	if p, ok := e.pending[id]; ok {
		p.count--
		if p.count == 0 {
			if failed {
				// The backend never got these bytes. Copy them off the frame
				// (about to be recycled) and keep the entry poisoned: reads
				// continue to see the submitted data, never the stale backend
				// copy, while the error travels to the submitter's next touch
				// point. The entry lives until a newer submission for the
				// same block supersedes it or the run unwinds.
				p.data = append([]byte(nil), p.data...)
			} else {
				delete(e.pending, id)
			}
		}
	}
	e.pendMu.Unlock()
}

// lookupPending copies block id's in-flight write-behind bytes into dst and
// reports whether there was one. The copy happens under the lock, before
// the flusher can recycle the source frame, so the caller never observes
// torn or reused bytes.
func (e *asyncEngine) lookupPending(id int64, dst []byte) bool {
	if e == nil || e.writeBehind == 0 {
		return false
	}
	e.pendMu.Lock()
	p, ok := e.pending[id]
	if ok {
		copy(dst, p.data)
	}
	e.pendMu.Unlock()
	return ok
}

// tryPrefetch schedules an asynchronous read of block id, charging nothing
// yet. It returns nil — and the caller simply reads synchronously later —
// when read-ahead is disabled, shut down, or all tokens are issued; the
// non-blocking token acquisition means concurrent readers share the depth
// without ever deadlocking on each other.
func (e *asyncEngine) tryPrefetch(c Category, id int64) *prefetchSlot {
	if e == nil || e.readAhead == 0 {
		return nil
	}
	e.frameMu.Lock()
	if e.tokens == 0 {
		e.frameMu.Unlock()
		return nil
	}
	e.tokens--
	e.frameMu.Unlock()
	f := e.dev.frames.Acquire()

	s := &prefetchSlot{cat: c, id: id, frame: f, done: make(chan struct{})}
	e.readMu.RLock()
	defer e.readMu.RUnlock()
	if e.readClosed {
		e.recycle(f)
		return nil
	}
	e.readq <- s
	return s
}

func (e *asyncEngine) prefetchLoop() {
	defer e.readWG.Done()
	for s := range e.readq {
		s.src, s.err = e.dev.readBlockPrefetch(s.cat, s.id, s.frame.Bytes())
		close(s.done)
	}
}

// consume hands the reader the prefetched frame for s in exchange for the
// frame it was using, charging the logical read exactly as the synchronous
// path would have: a cache hit stays a cache hit, everything else is one
// Read plus its block of ReadBytes (and a cache miss when a cache is
// configured). On error the reader keeps its frame and gets the error the
// synchronous read would have produced at this touch point.
func (e *asyncEngine) consume(s *prefetchSlot, old Frame) (Frame, error) {
	<-s.done
	if s.err != nil {
		e.recycle(s.frame)
		return old, s.err
	}
	st, c, bs := e.dev.stats, s.cat, int64(e.dev.blockSize)
	st.AddPrefetchHits(c, 1)
	if s.src == srcCache {
		st.AddCacheHits(c, 1)
	} else {
		st.AddReads(c, 1)
		st.AddReadBytes(c, bs)
		if e.dev.cacheEnabled() {
			st.AddCacheMisses(c, 1)
		}
	}
	e.recycle(old)
	return s.frame, nil
}

// abandon discards s without consuming it: the reader is closing or the
// block is no longer the one it needs. A completed fetch that nobody reads
// is pure waste — physical traffic with no logical charge — and is counted
// as such.
func (e *asyncEngine) abandon(s *prefetchSlot) {
	<-s.done
	if s.err == nil {
		e.dev.stats.AddPrefetchWasted(s.cat, 1)
	}
	e.recycle(s.frame)
}

// recycle returns an engine-owned frame to the frame pool and its token to
// the engine.
func (e *asyncEngine) recycle(f Frame) {
	e.dev.frames.Release(f)
	e.frameMu.Lock()
	e.tokens++
	e.frameMu.Unlock()
}

// shutdown stops both pipelines and reclaims engine-owned memory. Queued
// writes still execute (the device refuses them once closed, so a shutdown
// with the device already marked closed drains without touching the
// backend, delivering ErrClosed through each done callback); queued
// prefetches complete the same way and unblock anyone waiting on them.
// Outstanding prefetch slots remain their readers' responsibility — their
// frames come back through consume/abandon, exactly like every other
// component's unwind obligation.
func (e *asyncEngine) shutdown() {
	if e == nil {
		return
	}
	if e.writeq != nil {
		e.writeMu.Lock()
		if !e.writeClosed {
			e.writeClosed = true
			close(e.writeq)
		}
		e.writeMu.Unlock()
		e.flushWG.Wait()
	}
	if e.readq != nil {
		e.readMu.Lock()
		if !e.readClosed {
			e.readClosed = true
			close(e.readq)
		}
		e.readMu.Unlock()
		e.readWG.Wait()
	}
}
