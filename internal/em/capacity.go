package em

import "sync"

// CapacityBackend wraps a Backend with a byte quota: writes that would
// extend past the limit fail with *ExhaustedError (ClassExhausted,
// matched by errors.Is(err, ErrScratchExhausted)) without touching the
// device, while reads always pass through — data already on the device
// stays readable, which is what lets a sorter finish merging runs it has
// already spilled even when it can spill nothing more.
//
// It models the bounded scratch partition a multi-tenant deployment
// assigns each job (ROADMAP item 3): NewEnv installs one under the
// hardening layers when Config.ScratchQuotaBlocks is set, and the
// cancel-anywhere chaos harness drives Exhaust directly to make the
// device fill up at an exact operation count.
type CapacityBackend struct {
	inner Backend
	limit int64 // bytes; <= 0 means unlimited until Exhaust

	mu        sync.Mutex
	exhausted bool
}

// NewCapacityBackend wraps inner with a quota of limitBytes ( <= 0 means
// no static limit; the backend then only fails after Exhaust).
func NewCapacityBackend(inner Backend, limitBytes int64) *CapacityBackend {
	return &CapacityBackend{inner: inner, limit: limitBytes}
}

// Exhaust makes every subsequent write fail as out-of-space regardless of
// the configured limit, simulating a device that filled up externally
// (another tenant, a shrinking thin-provisioned volume). Reads are
// unaffected.
func (b *CapacityBackend) Exhaust() {
	b.mu.Lock()
	b.exhausted = true
	b.mu.Unlock()
}

// Limit returns the configured quota in bytes (<= 0 means unlimited).
func (b *CapacityBackend) Limit() int64 { return b.limit }

// ReadAt implements io.ReaderAt; reads always pass through.
func (b *CapacityBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.inner.ReadAt(p, off)
}

// WriteAt implements io.WriterAt, refusing writes beyond the quota.
func (b *CapacityBackend) WriteAt(p []byte, off int64) (int, error) {
	end := off + int64(len(p))
	b.mu.Lock()
	full := b.exhausted || (b.limit > 0 && end > b.limit)
	b.mu.Unlock()
	if full {
		return 0, &ExhaustedError{Limit: b.limit, Requested: end}
	}
	return b.inner.WriteAt(p, off)
}

// Close closes the wrapped backend.
func (b *CapacityBackend) Close() error { return b.inner.Close() }
