package em

import (
	"fmt"
	"sync"
)

// Frame is a pinned, reusable fixed-size buffer handed out by a FramePool:
// the memory behind one granted block of the Budget's M. Every block-sized
// buffer in the system — stream readers and writers, the stacks' resident
// windows, run snapshots, record arenas — is a Frame, so the budget's
// count of abstract blocks and the process's actual buffer footprint move
// together instead of being tracked by two disconnected mechanisms.
//
// A Frame is valid from Acquire until the matching Release; its bytes are
// zeroed on acquisition (the same contract as a fresh make), so no data
// bleeds from one user to the next through the free list.
type Frame struct {
	data []byte
}

// Bytes returns the frame's buffer, always exactly FrameSize bytes long.
func (f Frame) Bytes() []byte { return f.data }

// valid reports whether the frame was produced by an Acquire (the zero
// Frame is not usable).
func (f Frame) valid() bool { return f.data != nil }

// FramePool recycles Frames of one fixed size through a free list. It is
// the single allocation point for block buffers: acquiring a frame either
// pops the free list (no allocation, bytes zeroed) or, when the list is
// empty, allocates one fresh buffer that will be recycled forever after.
//
// The pool tracks how many frames are live (acquired and not yet released)
// and the high-water mark, so tests can assert the complement of the
// Budget invariant: no buffer exists without a grant — live frames never
// exceed granted blocks, and the peaks compare the same way.
//
// All methods are safe for concurrent use; background sort workers acquire
// and release frames from their own goroutines.
type FramePool struct {
	frameSize int

	mu       sync.Mutex
	free     [][]byte
	live     int
	peakLive int
	acquired int64
	recycled int64
}

// NewFramePool returns a pool of frames of frameSize bytes.
func NewFramePool(frameSize int) *FramePool {
	if frameSize <= 0 {
		panic("em: frame size must be positive")
	}
	return &FramePool{frameSize: frameSize}
}

// FrameSize returns the fixed size of the pool's frames in bytes.
func (p *FramePool) FrameSize() int { return p.frameSize }

// Acquire returns a zeroed frame, recycling a released one when available.
// Acquire does no budget accounting: callers either hold a Budget grant
// covering the block already (the common case — a component granted its
// blocks up front and materializes them as frames one by one) or go
// through Budget.AcquireFrames, which grants and acquires together.
func (p *FramePool) Acquire() Frame {
	p.mu.Lock()
	var buf []byte
	if n := len(p.free); n > 0 {
		buf = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		p.recycled++
	}
	p.live++
	if p.live > p.peakLive {
		p.peakLive = p.live
	}
	p.acquired++
	p.mu.Unlock()

	if buf == nil {
		return Frame{data: make([]byte, p.frameSize)}
	}
	clear(buf)
	return Frame{data: buf}
}

// Release returns a frame to the free list. Releasing the zero Frame or a
// frame of the wrong size is a programming error and panics.
func (p *FramePool) Release(f Frame) {
	if !f.valid() || len(f.data) != p.frameSize {
		panic(fmt.Sprintf("em: release of invalid frame (len=%d, want %d)", len(f.data), p.frameSize))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.live == 0 {
		panic("em: frame release with no frames live")
	}
	p.live--
	p.free = append(p.free, f.data)
}

// Live returns the number of frames currently acquired.
func (p *FramePool) Live() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.live
}

// PeakLive returns the high-water mark of live frames.
func (p *FramePool) PeakLive() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.peakLive
}

// Recycled returns how many acquisitions were served from the free list
// rather than by a fresh allocation.
func (p *FramePool) Recycled() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.recycled
}

// Acquired returns the total number of acquisitions.
func (p *FramePool) Acquired() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.acquired
}
