package em

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"testing"
)

// asyncDevice builds a memory-backed device with the given pipeline depths
// installed, for engine-level tests that don't need an Env.
func asyncDevice(blockSize, readAhead, writeBehind int) *Device {
	dev := NewDevice(NewMemBackend(), blockSize, nil)
	dev.EnableAsync(readAhead, writeBehind)
	return dev
}

func fillPattern(n int, seed byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(int(seed) + i*7)
	}
	return p
}

// TestWriteBehindStreamRoundtrip proves the write-behind path produces a
// byte-identical stream with the same logical write ledger as the
// synchronous path.
func TestWriteBehindStreamRoundtrip(t *testing.T) {
	const bs = 128
	payload := fillPattern(10*bs+37, 3)

	runOne := func(wb int) ([]byte, int64, int64) {
		dev := asyncDevice(bs, 0, wb)
		defer dev.Close()
		s := NewStream(dev, CatScratch)
		w, err := s.NewWriter(nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := w.Write(payload); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, err := s.NewReader(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return got, dev.Stats().Writes(CatScratch), dev.Stats().WriteBytes(CatScratch)
	}

	wantBytes, wantW, wantWB := runOne(0)
	if !bytes.Equal(wantBytes, payload) {
		t.Fatalf("synchronous roundtrip corrupted payload")
	}
	for _, wb := range []int{1, 2, 7} {
		got, writes, wbytes := runOne(wb)
		if !bytes.Equal(got, payload) {
			t.Fatalf("write-behind %d: payload corrupted", wb)
		}
		if writes != wantW || wbytes != wantWB {
			t.Fatalf("write-behind %d moved the logical write ledger: writes %d (want %d), bytes %d (want %d)",
				wb, writes, wantW, wbytes, wantWB)
		}
	}
}

// TestReadAheadStreamRoundtrip proves read-ahead leaves the logical read
// ledger untouched while actually pipelining (PrefetchHits > 0), and that
// the engine's frames all come home.
func TestReadAheadStreamRoundtrip(t *testing.T) {
	const bs = 128
	payload := fillPattern(20*bs+5, 9)

	baseline := func() (string, int64, int64) {
		dev := asyncDevice(bs, 0, 0)
		defer dev.Close()
		s := NewStream(dev, CatRunRead)
		w, _ := s.NewWriter(nil)
		w.Write(payload)
		w.Close()
		r, _ := s.NewReader(nil, 0)
		defer r.Close()
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		return string(got), dev.Stats().Reads(CatRunRead), dev.Stats().ReadBytes(CatRunRead)
	}
	wantBytes, wantR, wantRB := baseline()

	for _, ra := range []int{1, 3, 8} {
		dev := asyncDevice(bs, ra, 0)
		s := NewStream(dev, CatRunRead)
		w, _ := s.NewWriter(nil)
		w.Write(payload)
		w.Close()
		r, err := s.NewReader(nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		got, err := io.ReadAll(r)
		if err != nil {
			t.Fatalf("read-ahead %d: %v", ra, err)
		}
		if string(got) != wantBytes {
			t.Fatalf("read-ahead %d: payload corrupted", ra)
		}
		if reads, rb := dev.Stats().Reads(CatRunRead), dev.Stats().ReadBytes(CatRunRead); reads != wantR || rb != wantRB {
			t.Fatalf("read-ahead %d moved the logical read ledger: reads %d (want %d), bytes %d (want %d)",
				ra, reads, wantR, rb, wantRB)
		}
		if hits := dev.Stats().PrefetchHits(CatRunRead); hits == 0 {
			t.Fatalf("read-ahead %d: no prefetch hits — the pipeline never engaged", ra)
		}
		r.Close()
		dev.Close()
		if live := dev.Frames().Live(); live != 0 {
			t.Fatalf("read-ahead %d: %d frames live after close", ra, live)
		}
	}
}

// TestReadAheadEarlyCloseCountsWaste proves that prefetched-but-unconsumed
// blocks are surfaced as PrefetchWasted and never as logical Reads.
func TestReadAheadEarlyCloseCountsWaste(t *testing.T) {
	const bs = 128
	dev := asyncDevice(bs, 6, 0)
	defer dev.Close()
	s := NewStream(dev, CatRunRead)
	w, _ := s.NewWriter(nil)
	w.Write(fillPattern(30*bs, 1))
	w.Close()

	r, err := s.NewReader(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Touch the first block only: the pipeline behind it is now waste.
	one := make([]byte, 1)
	if _, err := r.Read(one); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	st := dev.Stats()
	if st.Reads(CatRunRead) != 1 {
		t.Fatalf("logical reads = %d, want exactly the 1 consumed block", st.Reads(CatRunRead))
	}
	if st.PrefetchWasted(CatRunRead) == 0 {
		t.Fatal("abandoned pipeline produced no PrefetchWasted count")
	}
	if live := dev.Frames().Live(); live != 0 {
		t.Fatalf("%d frames live after reader close (engine must reclaim abandoned slots)", live)
	}
}

// TestConcurrentReadersOneStream is the satellite coverage: many
// StreamReaders over one sealed stream, all prefetching from the shared
// token pool concurrently, each must see exactly the stream's bytes.
func TestConcurrentReadersOneStream(t *testing.T) {
	const bs = 96
	payload := fillPattern(40*bs+11, 5)
	dev := asyncDevice(bs, 4, 2)
	defer dev.Close()

	s := NewStream(dev, CatMergeRun)
	w, _ := s.NewWriter(nil)
	w.Write(payload)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	const readers = 8
	errs := make(chan error, readers)
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			off := int64(i) * int64(len(payload)) / readers
			r, err := s.NewReader(nil, off)
			if err != nil {
				errs <- err
				return
			}
			defer r.Close()
			got, err := io.ReadAll(r)
			if err != nil {
				errs <- fmt.Errorf("reader %d: %w", i, err)
				return
			}
			if !bytes.Equal(got, payload[off:]) {
				errs <- fmt.Errorf("reader %d: bytes diverge from offset %d", i, off)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if live := dev.Frames().Live(); live != 0 {
		t.Fatalf("%d frames live after all readers closed", live)
	}
}

// gateBackend blocks writes while the gate is held, so tests can pin a
// write-behind flush in flight deterministically.
type gateBackend struct {
	Backend
	mu   sync.Mutex
	gate chan struct{}
}

func (g *gateBackend) hold() {
	g.mu.Lock()
	g.gate = make(chan struct{})
	g.mu.Unlock()
}

func (g *gateBackend) release() {
	g.mu.Lock()
	if g.gate != nil {
		close(g.gate)
		g.gate = nil
	}
	g.mu.Unlock()
}

func (g *gateBackend) WriteAt(p []byte, off int64) (int, error) {
	g.mu.Lock()
	gate := g.gate
	g.mu.Unlock()
	if gate != nil {
		<-gate
	}
	return g.Backend.WriteAt(p, off)
}

// TestWriteBehindCoherence is the satellite cache-coherence proof: while a
// write-behind for block ID is in flight, neither the clean-frame LRU nor
// the backend path may serve the block's old bytes — with and without the
// cache installed.
func TestWriteBehindCoherence(t *testing.T) {
	const bs = 64
	for _, cached := range []bool{false, true} {
		name := "pending-map"
		if cached {
			name = "lru-cache"
		}
		t.Run(name, func(t *testing.T) {
			gate := &gateBackend{Backend: NewMemBackend()}
			dev := NewDevice(gate, bs, nil)
			if cached {
				dev.EnableCache(4)
			}
			dev.EnableAsync(0, 2)
			defer dev.Close()

			id := dev.AllocBlock()
			v1 := fillPattern(bs, 1)
			v2 := fillPattern(bs, 2)
			if err := dev.WriteBlock(CatDataStack, id, v1); err != nil {
				t.Fatal(err)
			}
			// Populate the cache (when on) with v1 via a read.
			buf := make([]byte, bs)
			if err := dev.ReadBlock(CatDataStack, id, buf); err != nil {
				t.Fatal(err)
			}

			// Pin the flush in flight and submit v2.
			gate.hold()
			frame := dev.Frames().Acquire()
			copy(frame.Bytes(), v2)
			flushed := make(chan error, 1)
			if !dev.WriteBlockBehind(CatDataStack, id, frame, func(err error) { flushed <- err }) {
				gate.release()
				t.Fatal("WriteBlockBehind refused on an async device")
			}

			// The write has NOT reached the backend; a read must still see v2.
			got := make([]byte, bs)
			if err := dev.ReadBlock(CatDataStack, id, got); err != nil {
				gate.release()
				t.Fatal(err)
			}
			if !bytes.Equal(got, v2) {
				gate.release()
				t.Fatalf("read served stale bytes during in-flight write-behind (cache=%v)", cached)
			}

			gate.release()
			if err := <-flushed; err != nil {
				t.Fatalf("flush failed: %v", err)
			}
			// After the flush lands the backend itself must hold v2.
			if err := dev.ReadBlock(CatDataStack, id, got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, v2) {
				t.Fatal("backend holds stale bytes after flush")
			}
		})
	}
}

// TestAsyncCloseDrainsQueuedWrites proves closing the device with flushes
// still queued refuses them cleanly — callbacks fire with an error, frames
// come home, nothing deadlocks.
func TestAsyncCloseDrainsQueuedWrites(t *testing.T) {
	const bs = 64
	gate := &gateBackend{Backend: NewMemBackend()}
	dev := NewDevice(gate, bs, nil)
	dev.EnableAsync(0, 4)

	gate.hold()
	var ids []int64
	results := make(chan error, 4)
	for i := 0; i < 4; i++ {
		id := dev.AllocBlock()
		ids = append(ids, id)
		f := dev.Frames().Acquire()
		copy(f.Bytes(), fillPattern(bs, byte(i)))
		if !dev.WriteBlockBehind(CatScratch, id, f, func(err error) { results <- err }) {
			t.Fatalf("submit %d refused", i)
		}
	}
	_ = ids
	// Release the gate from a helper so Close (which waits for the
	// in-flight flush) can finish.
	go gate.release()
	if err := dev.Close(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		<-results
	}
	if live := dev.Frames().Live(); live != 0 {
		t.Fatalf("%d frames live after close", live)
	}
}
