package em

import "time"

// LatencyBackend wraps a Backend and charges a fixed service time per
// positional operation, on the calling goroutine, before delegating. It
// stands in for the seek-plus-transfer cost the external-memory model
// bills each block transfer with: on modern container storage a block op
// completes in microseconds, which hides exactly the overlap the
// read-ahead/write-behind engine exists to create. The overlap benchmark
// layers this under the device (via Config.WrapBackend) so the pipelines'
// wall-clock effect is measurable and reproducible.
//
// Sleeping on the calling goroutine is the point: synchronous callers
// stall for the service time like a blocking disk read would, while the
// engine's flusher and prefetch worker absorb it off the compute path.
// The wrapper adds no state, so it is as concurrency-safe as the backend
// it wraps.
type LatencyBackend struct {
	inner      Backend
	readDelay  time.Duration
	writeDelay time.Duration
}

// NewLatencyBackend wraps inner, delaying every ReadAt by readDelay and
// every WriteAt by writeDelay.
func NewLatencyBackend(inner Backend, readDelay, writeDelay time.Duration) *LatencyBackend {
	return &LatencyBackend{inner: inner, readDelay: readDelay, writeDelay: writeDelay}
}

// ReadAt sleeps the read service time, then reads from the wrapped backend.
func (b *LatencyBackend) ReadAt(p []byte, off int64) (int, error) {
	if b.readDelay > 0 {
		time.Sleep(b.readDelay)
	}
	return b.inner.ReadAt(p, off)
}

// WriteAt sleeps the write service time, then writes to the wrapped backend.
func (b *LatencyBackend) WriteAt(p []byte, off int64) (int, error) {
	if b.writeDelay > 0 {
		time.Sleep(b.writeDelay)
	}
	return b.inner.WriteAt(p, off)
}

// Close closes the wrapped backend.
func (b *LatencyBackend) Close() error { return b.inner.Close() }
