package em

import (
	"fmt"
	"sync"
)

// Budget enforces the external-memory model's main-memory parameter M: the
// number of blocks of internal memory available to an algorithm. Components
// Grant blocks before buffering block-sized data in memory and Release them
// when the buffers are dropped. Grant fails rather than overcommitting, so a
// configuration that would exceed M is caught immediately instead of
// silently using more memory than the model allows.
//
// The peak grant is tracked so tests can assert that an algorithm stayed
// within its declared budget.
//
// Locking: every method takes the internal mutex, so Grant/Release are safe
// from any goroutine — background sort workers release their own grants.
// The mutex makes each call atomic, not sequences of calls; components that
// need a consistent "free plus what my workers hold" figure for admission
// decisions (core's effectiveFree) serialize their Grant/Release pairs
// under their own coarser lock on top of this one.
type Budget struct {
	mu    sync.Mutex
	total int
	used  int
	peak  int

	// frames, when attached, is the pool whose buffers back this budget's
	// grants: AcquireFrames turns a grant directly into memory.
	frames *FramePool
}

// NewBudget returns a Budget of m blocks. m must be positive.
func NewBudget(m int) *Budget {
	if m <= 0 {
		panic("em: memory budget must be positive")
	}
	return &Budget{total: m}
}

// Total returns M, the budget size in blocks.
func (b *Budget) Total() int { return b.total }

// Grant reserves n blocks of main memory, or returns ErrBudgetExceeded
// (wrapped with the amounts involved) if fewer than n blocks are free.
func (b *Budget) Grant(n int) error {
	if n < 0 {
		panic("em: negative grant")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.used+n > b.total {
		return fmt.Errorf("%w: want %d blocks, %d of %d in use",
			ErrBudgetExceeded, n, b.used, b.total)
	}
	b.used += n
	if b.used > b.peak {
		b.peak = b.used
	}
	return nil
}

// MustGrant is Grant that panics on failure. It is for fixed structural
// allocations (e.g. the two resident path-stack blocks) whose absence is a
// programming error, per the minimum-memory assumptions in Section 3.1.
func (b *Budget) MustGrant(n int) {
	if err := b.Grant(n); err != nil {
		panic(err)
	}
}

// Release returns n blocks to the budget. Releasing more than is in use is
// a programming error and panics.
func (b *Budget) Release(n int) {
	if n < 0 {
		panic("em: negative release")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if n > b.used {
		panic(fmt.Sprintf("em: release of %d blocks with only %d in use", n, b.used))
	}
	b.used -= n
}

// InUse returns the number of blocks currently granted.
func (b *Budget) InUse() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.used
}

// Free returns the number of blocks currently available.
func (b *Budget) Free() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total - b.used
}

// Peak returns the high-water mark of granted blocks.
func (b *Budget) Peak() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peak
}

// AttachFrames binds pool as the memory substrate behind this budget:
// AcquireFrames and ReleaseFrames operate on it. NewEnv attaches the
// device's block-sized pool, so a granted block is its memory.
func (b *Budget) AttachFrames(pool *FramePool) {
	b.mu.Lock()
	b.frames = pool
	b.mu.Unlock()
}

// Frames returns the attached frame pool (nil when none was attached).
func (b *Budget) Frames() *FramePool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.frames
}

// AcquireFrames is the frame-returning path of Grant: it reserves n blocks
// of main memory and materializes them as n zeroed frames from the
// attached pool, so the grant and the buffers it stands for cannot drift
// apart. On ErrBudgetExceeded no frames are acquired.
func (b *Budget) AcquireFrames(n int) ([]Frame, error) {
	pool := b.Frames()
	if pool == nil {
		return nil, fmt.Errorf("em: AcquireFrames on a budget with no frame pool attached")
	}
	if err := b.Grant(n); err != nil {
		return nil, err
	}
	frames := make([]Frame, n)
	for i := range frames {
		frames[i] = pool.Acquire()
	}
	return frames, nil
}

// ReleaseFrames returns frames acquired with AcquireFrames to the pool and
// releases their grant in one step.
func (b *Budget) ReleaseFrames(frames []Frame) {
	pool := b.Frames()
	if pool == nil {
		panic("em: ReleaseFrames on a budget with no frame pool attached")
	}
	for _, f := range frames {
		pool.Release(f)
	}
	b.Release(len(frames))
}
