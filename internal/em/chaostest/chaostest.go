// Package chaostest is the seeded fault-injection harness for the
// hardened spill substrate. A Trial runs one full external sort — NEXSORT
// or the key-path merge-sort baseline — over a scratch device wrapped in
// an em.ChaosBackend, underneath whatever hardening (checksums, retry) the
// trial's em.Config selects. The harness captures everything the chaos
// invariant needs to be checked: the output bytes, the terminal error, any
// panic, the leaked-budget count after teardown, and the injector's
// per-kind fault tally.
//
// The invariant itself — "byte-identical output to the fault-free run, or
// a clean typed error; never silent corruption, never a panic, never a
// leaked scratch file or budget block" — is asserted by the top-level
// chaos soak test (chaos_test.go at the module root), which sweeps seeds
// and fault mixes through this package.
package chaostest

import (
	"bytes"
	"fmt"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
)

// Algorithm selects which external sorter a trial drives.
type Algorithm int

const (
	// Nexsort runs the paper's algorithm (core.Sort).
	Nexsort Algorithm = iota
	// MergeSort runs the key-path external merge-sort baseline
	// (extsort.SortXML).
	MergeSort
)

// String names the algorithm for trial logs.
func (a Algorithm) String() string {
	if a == Nexsort {
		return "nexsort"
	}
	return "mergesort"
}

// Algorithms lists both sorters, for trial matrices.
var Algorithms = []Algorithm{Nexsort, MergeSort}

// Doc deterministically generates a test document with the given element
// count, fanout cap and seed, returning its bytes.
func Doc(elements int64, maxFan int, seed int64) ([]byte, gen.Stats, error) {
	spec := gen.CappedShape(elements, maxFan)
	spec.Seed = seed
	var buf bytes.Buffer
	stats, err := spec.Write(&buf)
	return buf.Bytes(), stats, err
}

// Trial describes one chaos run: the sorter, the environment (block size,
// memory budget, scratch placement, hardening layers) and the fault mix.
type Trial struct {
	Algorithm Algorithm
	Env       em.Config
	Chaos     em.ChaosConfig
}

// Outcome captures what one trial did. Exactly one of Output/Err/Panic is
// the headline result: a nil Err with nil PanicValue means the sort claims
// success and Output holds the full document it produced.
type Outcome struct {
	// Output is the produced document (complete only when Err and
	// PanicValue are both nil).
	Output []byte
	// Err is the sort's terminal error, nil on claimed success.
	Err error
	// PanicValue is non-nil if the sort panicked; the harness recovers
	// so the soak test can report the seed instead of dying.
	PanicValue any
	// BudgetInUse is the number of memory-budget blocks still granted
	// after the sort returned — any nonzero value is a leak.
	BudgetInUse int
	// FramesLive is the number of pooled block frames still pinned after
	// the sort returned — any nonzero value means an error path dropped a
	// frame instead of releasing it.
	FramesLive int
	// CodecFramesLive is the spill compression layer's live scratch-frame
	// count after the sort returned (always 0 with CompressSpill off).
	// The codec acquires scratch per operation and must release it on
	// every path, including corrupt-decode unwinds.
	CodecFramesLive int
	// Injected is the chaos backend's per-kind fault tally.
	Injected map[string]int64
	// Stats is the environment's I/O accounting (retries, checksum
	// failures, per-category transfers).
	Stats *em.Stats
}

// Faulted reports whether the injector actually fired during the trial;
// trials where no fault landed are vacuous and soak tests may skip their
// stricter assertions.
func (o *Outcome) Faulted() bool {
	for _, n := range o.Injected {
		if n > 0 {
			return true
		}
	}
	return false
}

// Run executes one trial of the given document. The chaos backend is
// spliced in via Env.WrapBackend, beneath the hardening layers, exactly
// where a faulty physical device would sit. Panics from the sort are
// recovered into Outcome.PanicValue. The environment is always closed
// before Run returns, so file-backed trials can check for scratch leaks by
// counting directory entries afterwards.
func Run(doc []byte, crit *keys.Criterion, t Trial) *Outcome {
	out := &Outcome{}
	cfg := t.Env
	var chaos *em.ChaosBackend
	if t.Chaos.Active() {
		chaosCfg := t.Chaos
		cfg.WrapBackend = func(b em.Backend) em.Backend {
			chaos = em.NewChaosBackend(b, chaosCfg)
			return chaos
		}
	}
	env, err := em.NewEnv(cfg)
	if err != nil {
		out.Err = fmt.Errorf("chaostest: env: %w", err)
		return out
	}
	defer env.Close()
	out.Stats = env.Stats

	var buf bytes.Buffer
	out.Err = runRecovered(env, t.Algorithm, crit, doc, &buf, out)
	if out.Err == nil && out.PanicValue == nil {
		out.Output = buf.Bytes()
	}
	// Infrastructure grants (cache, async engine) are held until env.Close
	// by design; what must be zero here is the algorithm's residency.
	out.BudgetInUse = env.Budget.InUse() - env.InfraGrantBlocks()
	out.FramesLive = env.Dev.Frames().Live() - env.Dev.CacheFrames()
	out.CodecFramesLive = env.SpillCodecFramesLive()
	if chaos != nil {
		out.Injected = chaos.Injected()
	} else {
		out.Injected = map[string]int64{}
	}
	return out
}

// runRecovered drives the selected sorter, converting panics into
// Outcome.PanicValue instead of unwinding through the harness.
func runRecovered(env *em.Env, algo Algorithm, crit *keys.Criterion, doc []byte, buf *bytes.Buffer, out *Outcome) (err error) {
	defer func() {
		if r := recover(); r != nil {
			out.PanicValue = r
		}
	}()
	switch algo {
	case Nexsort:
		_, err = core.Sort(env, bytes.NewReader(doc), buf, core.Options{Criterion: crit})
	default:
		_, err = extsort.SortXML(env, crit, bytes.NewReader(doc), buf, extsort.XMLOptions{})
	}
	return err
}

// Baseline runs the trial's algorithm fault-free under the same
// environment shape and returns the expected output bytes. It panics on
// any failure: a broken fault-free run means the trial matrix itself is
// misconfigured, not that chaos found a bug.
func Baseline(doc []byte, crit *keys.Criterion, algo Algorithm, envCfg em.Config) []byte {
	o := Run(doc, crit, Trial{Algorithm: algo, Env: envCfg})
	if o.PanicValue != nil {
		panic(fmt.Sprintf("chaostest: fault-free %v baseline panicked: %v", algo, o.PanicValue))
	}
	if o.Err != nil {
		panic(fmt.Sprintf("chaostest: fault-free %v baseline failed: %v", algo, o.Err))
	}
	if o.BudgetInUse != 0 {
		panic(fmt.Sprintf("chaostest: fault-free %v baseline leaked %d budget blocks", algo, o.BudgetInUse))
	}
	if o.FramesLive != 0 {
		panic(fmt.Sprintf("chaostest: fault-free %v baseline leaked %d frames", algo, o.FramesLive))
	}
	return o.Output
}
