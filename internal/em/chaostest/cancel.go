package chaostest

import (
	"bytes"
	"context"
	"fmt"

	"nexsort/internal/em"
	"nexsort/internal/keys"
)

// CancelMode selects what fires at the trigger point of a cancel trial.
type CancelMode int

const (
	// ModeCancel cancels the run's context at the Nth device operation:
	// the cancel-anywhere soak.
	ModeCancel CancelMode = iota
	// ModeExhaust exhausts the scratch device at the Nth operation: every
	// later spill write fails with ErrScratchExhausted, as if the volume
	// filled mid-run.
	ModeExhaust
)

// String names the mode for trial logs.
func (m CancelMode) String() string {
	if m == ModeCancel {
		return "cancel"
	}
	return "exhaust"
}

// CancelTrial describes one cancel-anywhere run: the sorter, the
// environment, the operation index at which the trigger fires, and what
// it fires.
type CancelTrial struct {
	Algorithm Algorithm
	Env       em.Config
	// TriggerOp fires the trigger when the scratch backend performs its
	// TriggerOp'th operation (1-based), before that operation reaches the
	// store. Zero or negative never fires — a clean run, which is how the
	// soak measures a trial shape's total operation count and baseline
	// output.
	TriggerOp int64
	Mode      CancelMode
}

// CancelOutcome captures what one cancel trial did.
type CancelOutcome struct {
	// Output is the produced document (complete only when Err and
	// PanicValue are both nil).
	Output []byte
	// Err is the sort's terminal error, nil on claimed success.
	Err error
	// PanicValue is non-nil if the sort panicked.
	PanicValue any
	// BudgetInUse and FramesLive are the leak counters after the sort
	// returned; any nonzero value means an unwind path lost track of
	// memory.
	BudgetInUse int
	FramesLive  int
	// CodecFramesLive is the spill compression layer's live scratch-frame
	// count after the sort returned (always 0 with CompressSpill off). A
	// trigger can fire inside a compressed read or write, so the codec's
	// per-operation scratch must release on the refusal path too.
	CodecFramesLive int
	// TotalOps is the number of operations the scratch backend performed
	// over the whole run, counted below the device's lifecycle gate —
	// refused operations never reach the backend, so TotalOps-TriggerOp
	// on a fired trial is exactly the work done after the trigger.
	TotalOps int64
	// Fired reports whether the trigger actually fired (a trial whose
	// TriggerOp exceeds the run's operation count completes cleanly).
	Fired bool
	// Stats is the environment's I/O accounting.
	Stats *em.Stats
}

// OpsAfterTrigger returns how many backend operations the run performed
// at or after the trigger point — the promptness measure the soak bounds
// by K. Zero when the trigger never fired.
func (o *CancelOutcome) OpsAfterTrigger(t CancelTrial) int64 {
	if !o.Fired {
		return 0
	}
	// The firing operation itself is included: the trigger fires before
	// op TriggerOp reaches the store.
	return o.TotalOps - t.TriggerOp + 1
}

// RunCancel executes one cancel-anywhere trial. The trigger is spliced in
// via Env.WrapBackend as an op-counting layer over the raw store (plus,
// for ModeExhaust, a capacity layer it can slam shut), underneath
// checksum and retry, so the operation count is deterministic for a given
// document, environment shape and algorithm — the same property the I/O
// accounting already guarantees. The run's context lives exactly as long
// as the call.
//
// This is the one place in the tree that manufactures a root context: the
// harness plays the role of the application driving the library, so it
// owns the context the way main() would (see the NV005 baseline).
func RunCancel(doc []byte, crit *keys.Criterion, t CancelTrial) *CancelOutcome {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	out := &CancelOutcome{}
	cfg := t.Env
	var trig *em.TriggerBackend
	cfg.WrapBackend = func(b em.Backend) em.Backend {
		fire := cancel
		if t.Mode == ModeExhaust {
			capB := em.NewCapacityBackend(b, 0)
			fire = capB.Exhaust
			b = capB
		}
		trig = em.NewTriggerBackend(b, t.TriggerOp, fire)
		return trig
	}
	env, err := em.NewEnvContext(ctx, cfg)
	if err != nil {
		out.Err = fmt.Errorf("chaostest: env: %w", err)
		return out
	}
	defer env.Close()
	out.Stats = env.Stats

	var buf bytes.Buffer
	o := &Outcome{}
	out.Err = runRecovered(env, t.Algorithm, crit, doc, &buf, o)
	out.PanicValue = o.PanicValue
	if out.Err == nil && out.PanicValue == nil {
		out.Output = buf.Bytes()
	}
	// Infrastructure grants (cache, async engine) are held until env.Close
	// by design; what must be zero here is the algorithm's residency.
	out.BudgetInUse = env.Budget.InUse() - env.InfraGrantBlocks()
	out.FramesLive = env.Dev.Frames().Live() - env.Dev.CacheFrames()
	out.CodecFramesLive = env.SpillCodecFramesLive()
	out.TotalOps = trig.Ops()
	out.Fired = trig.Fired()
	return out
}
