package em

// physCountBackend charges the physical side of the Stats ledger: one
// physical operation per backend call and exactly the bytes the device
// actually moved. It sits innermost in the hardening stack — directly on
// the (possibly fault-injected) raw store, below compression and
// checksums — so the physical counters see what crosses the device
// boundary: checksum trailers, compressed records, retried attempts. The
// logical side (Reads/Writes and their bytes, charged by the Device in
// whole blocks) is the paper's model and stays parallelism- and
// hardening-invariant; the gap between the two ledgers is the measured
// cost (trailers) or saving (compression) of the spill format.
type physCountBackend struct {
	inner Backend
	stats *Stats
}

// NewPhysCountBackend wraps inner with physical-transfer accounting into
// stats. Failed attempts still count as physical operations — they reached
// the device — with the bytes that made it through.
func NewPhysCountBackend(inner Backend, stats *Stats) Backend {
	return &physCountBackend{inner: inner, stats: stats}
}

// ReadAt implements io.ReaderAt under the scratch category.
func (b *physCountBackend) ReadAt(p []byte, off int64) (int, error) {
	return b.ReadAtCat(p, off, CatScratch)
}

// WriteAt implements io.WriterAt under the scratch category.
func (b *physCountBackend) WriteAt(p []byte, off int64) (int, error) {
	return b.WriteAtCat(p, off, CatScratch)
}

// ReadAtCat reads through, charging one physical read of the transferred
// size to category c.
func (b *physCountBackend) ReadAtCat(p []byte, off int64, c Category) (int, error) {
	n, err := readAtCat(b.inner, p, off, c)
	b.stats.AddPhysReads(c, 1)
	b.stats.AddPhysReadBytes(c, int64(n))
	return n, err
}

// WriteAtCat writes through, charging one physical write of the
// transferred size to category c.
func (b *physCountBackend) WriteAtCat(p []byte, off int64, c Category) (int, error) {
	n, err := writeAtCat(b.inner, p, off, c)
	b.stats.AddPhysWrites(c, 1)
	b.stats.AddPhysWriteBytes(c, int64(n))
	return n, err
}

// Close closes the wrapped backend.
func (b *physCountBackend) Close() error { return b.inner.Close() }
