// Package merge implements structural merge of XML documents — the
// motivating application of the paper's Example 1.1 ("Merging XML
// documents"), the XML analogue of a sort-merge (outer) join.
//
// Two elements match when they are at the same position in the hierarchy,
// have the same tag name, and the same non-empty ordering key under the
// merge criterion (the same criterion both documents were sorted by). A
// matched pair merges into one element whose attributes are the union of
// both sides' and whose child lists merge recursively. Unmatched elements,
// text nodes, and elements with empty keys copy through unchanged — with
// the left document's entries first on ties, so merge output is itself
// sorted and deterministic.
//
// Documents is the single-pass streaming merge over two sorted inputs (the
// sort-merge strategy). Because sibling lists are sorted by key alone,
// siblings sharing a key form a group; within a group the merger matches
// left and right entries by tag name, buffering just that group — the
// memory cost is one duplicate-key group, not a document. NestedLoop is
// the naive strategy the paper's introduction dismisses — for each
// element, scan the other document for its match — implemented over
// in-memory trees; it requires no sorting and serves as the correctness
// oracle for the streaming version.
package merge

import (
	"fmt"
	"io"
	"runtime"

	"nexsort/internal/keys"
	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
)

// Options configures a merge.
type Options struct {
	// PreferRight makes the right document win attribute conflicts on
	// matched elements. The default keeps the left value — with batch
	// updates (the paper's second application), the base document is the
	// left input and updates win by setting PreferRight.
	PreferRight bool
	// Indent pretty-prints the output; empty writes compact XML.
	Indent string
	// Parallelism bounds the merge's goroutines. Above one, each input's
	// parse+annotate pipeline runs on its own goroutine feeding a bounded
	// token channel, overlapping the two decoders with the merging
	// consumer; per-stream token order is unchanged, so the output is
	// byte-identical to the sequential merge. 0 defaults to GOMAXPROCS;
	// 1 forces sequential execution.
	Parallelism int
}

// parallelism resolves the knob: 0 defaults to GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Report summarizes a merge.
type Report struct {
	// ElementsLeft and ElementsRight count input elements.
	ElementsLeft  int64
	ElementsRight int64
	// Matched counts element pairs merged into one output element.
	Matched int64
	// OutputElements counts elements written.
	OutputElements int64
}

// Documents merges two sorted XML documents in a single pass and writes
// the merged document to out. Both inputs must already be sorted by c
// (e.g. with NEXSORT); c must be start-resolvable, since merge decisions
// are made at start tags. The roots must match — the paper's setting has
// both documents describing the same top-level entity (<company>) — and
// mismatched roots are reported as an error. Roots match by tag name and
// equal (possibly empty) key.
func Documents(left, right io.Reader, c *keys.Criterion, out io.Writer, opts Options) (*Report, error) {
	for _, r := range c.Rules {
		if !r.Source.StartResolvable() {
			return nil, fmt.Errorf("merge: criterion rule for %q needs a subtree pass (%s); merge requires start-resolvable criteria", r.Tag, r.Source)
		}
	}
	rep := &Report{}
	pipelined := opts.parallelism() > 1
	ls := newParserStream(left, c, &rep.ElementsLeft, pipelined)
	defer ls.stop()
	rs := newParserStream(right, c, &rep.ElementsRight, pipelined)
	defer rs.stop()
	var w *xmltok.Writer
	if opts.Indent != "" {
		w = xmltok.NewIndentWriter(out, opts.Indent)
	} else {
		w = xmltok.NewWriter(out)
	}

	m := &merger{w: w, opts: opts, rep: rep}
	ltok, err := ls.peek()
	if err != nil {
		return nil, fmt.Errorf("merge: left document: %w", eofIsEmpty(err))
	}
	rtok, err := rs.peek()
	if err != nil {
		return nil, fmt.Errorf("merge: right document: %w", eofIsEmpty(err))
	}
	if ltok.Kind != xmltok.KindStart || rtok.Kind != xmltok.KindStart ||
		ltok.Name != rtok.Name || ltok.Key != rtok.Key {
		return nil, fmt.Errorf("merge: root elements <%s key=%q> and <%s key=%q> do not match",
			ltok.Name, ltok.Key, rtok.Name, rtok.Key)
	}
	if err := m.mergePair(ls, rs); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}

func eofIsEmpty(err error) error {
	if err == io.EOF {
		return fmt.Errorf("document is empty")
	}
	return err
}

// tokStream is a token stream with one-token lookahead: either a live
// parser stream or a buffered group member.
type tokStream interface {
	peek() (xmltok.Token, error)
	next() (xmltok.Token, error)
}

type merger struct {
	w    *xmltok.Writer
	opts Options
	rep  *Report
}

// mergePair consumes one matched element from each stream and emits the
// merged element. Both streams are positioned at the start tags.
func (m *merger) mergePair(l, r tokStream) error {
	ltok, err := l.next()
	if err != nil {
		return err
	}
	rtok, err := r.next()
	if err != nil {
		return err
	}
	m.rep.Matched++
	m.rep.OutputElements++
	merged := xmltok.Token{Kind: xmltok.KindStart, Name: ltok.Name, Attrs: unionAttrs(ltok.Attrs, rtok.Attrs, m.opts.PreferRight)}
	if err := m.w.WriteToken(merged); err != nil {
		return err
	}
	if err := m.mergeChildren(l, r); err != nil {
		return err
	}
	// Consume both end tags.
	if _, err := l.next(); err != nil {
		return err
	}
	if _, err := r.next(); err != nil {
		return err
	}
	return m.w.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: ltok.Name})
}

// mergeChildren zips the two sorted child lists. Both streams sit just
// inside a matched element; the loop ends with both positioned at their
// end tags (or stream ends, for buffered groups). Sibling keys are
// verified non-decreasing as they stream by: merging unsorted input would
// silently drop matches, so it is an error instead.
func (m *merger) mergeChildren(l, r tokStream) error {
	var prevL, prevR string
	for {
		ltok, lok, err := peekSibling(l)
		if err != nil {
			return err
		}
		rtok, rok, err := peekSibling(r)
		if err != nil {
			return err
		}
		if lok {
			if k := siblingOrder(ltok); sortkey.CompareKeys(k, prevL) < 0 {
				return fmt.Errorf("merge: left input is not sorted: key %q after %q under the current parent", k, prevL)
			} else {
				prevL = k
			}
		}
		if rok {
			if k := siblingOrder(rtok); sortkey.CompareKeys(k, prevR) < 0 {
				return fmt.Errorf("merge: right input is not sorted: key %q after %q under the current parent", k, prevR)
			} else {
				prevR = k
			}
		}
		switch {
		case !lok && !rok:
			return nil
		case !lok:
			if err := m.copySubtree(r); err != nil {
				return err
			}
		case !rok:
			if err := m.copySubtree(l); err != nil {
				return err
			}
		default:
			// Sibling order is sortkey.CompareKeys — the same single
			// definition of key order the sorters' comparison kernels
			// normalize, so merge decisions and sort decisions can never
			// disagree on which subtree comes first.
			lkey, rkey := siblingOrder(ltok), siblingOrder(rtok)
			switch {
			case sortkey.CompareKeys(lkey, rkey) < 0:
				if err := m.copySubtree(l); err != nil {
					return err
				}
			case sortkey.CompareKeys(rkey, lkey) < 0:
				if err := m.copySubtree(r); err != nil {
					return err
				}
			case lkey == "":
				// Equal empty keys never match; left side first.
				if err := m.copySubtree(l); err != nil {
					return err
				}
			default:
				if err := m.mergeGroup(l, r, lkey); err != nil {
					return err
				}
			}
		}
	}
}

// peekSibling peeks the next token and reports whether it begins another
// sibling (false at the parent's end tag or stream end).
func peekSibling(s tokStream) (xmltok.Token, bool, error) {
	tok, err := s.peek()
	if err == io.EOF {
		return tok, false, nil
	}
	if err != nil {
		return tok, false, err
	}
	return tok, tok.Kind != xmltok.KindEnd, nil
}

// mergeGroup handles a maximal run of siblings sharing one non-empty key
// on both sides. Keys alone determine sorted positions, so entries with
// different tags interleave within the group; matching is by tag, which
// requires buffering the group and pairing entries the way the nested-loop
// semantics do: each left entry takes the first unused same-tag right
// entry, then unmatched right entries follow.
func (m *merger) mergeGroup(l, r tokStream, key string) error {
	lgroup, err := readGroup(l, key)
	if err != nil {
		return err
	}
	rgroup, err := readGroup(r, key)
	if err != nil {
		return err
	}
	used := make([]bool, len(rgroup))
	for _, ltoks := range lgroup {
		matched := -1
		for j, rtoks := range rgroup {
			if !used[j] && rtoks[0].Kind == xmltok.KindStart && rtoks[0].Name == ltoks[0].Name {
				matched = j
				break
			}
		}
		if matched >= 0 {
			used[matched] = true
			if err := m.mergePair(newSliceStream(ltoks), newSliceStream(rgroup[matched])); err != nil {
				return err
			}
		} else if err := m.copySubtree(newSliceStream(ltoks)); err != nil {
			return err
		}
	}
	for j, rtoks := range rgroup {
		if !used[j] {
			if err := m.copySubtree(newSliceStream(rtoks)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readGroup buffers the consecutive siblings whose order key equals key.
// Each entry is a complete token subtree (or a single text token).
func readGroup(s tokStream, key string) ([][]xmltok.Token, error) {
	var group [][]xmltok.Token
	for {
		tok, ok, err := peekSibling(s)
		if err != nil {
			return nil, err
		}
		if !ok || siblingOrder(tok) != key {
			return group, nil
		}
		toks, err := readSubtree(s)
		if err != nil {
			return nil, err
		}
		group = append(group, toks)
	}
}

// readSubtree consumes one complete sibling into a token slice.
func readSubtree(s tokStream) ([]xmltok.Token, error) {
	tok, err := s.next()
	if err != nil {
		return nil, err
	}
	toks := []xmltok.Token{tok}
	if tok.Kind != xmltok.KindStart {
		return toks, nil
	}
	depth := 1
	for depth > 0 {
		tok, err = s.next()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			depth++
		case xmltok.KindEnd:
			depth--
		}
		toks = append(toks, tok)
	}
	return toks, nil
}

// siblingOrder gives the sort key a sibling-level token was ordered by:
// elements carry their criterion key; text sorts with the empty key.
func siblingOrder(tok xmltok.Token) string {
	if tok.Kind == xmltok.KindStart {
		return tok.Key
	}
	return ""
}

// copySubtree copies one complete sibling (element subtree or text node)
// from src to the output.
func (m *merger) copySubtree(src tokStream) error {
	tok, err := src.next()
	if err != nil {
		return err
	}
	if tok.Kind == xmltok.KindText {
		return m.w.WriteToken(tok)
	}
	m.rep.OutputElements++
	if err := m.w.WriteToken(stripKey(tok)); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		tok, err = src.next()
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			depth++
			m.rep.OutputElements++
		case xmltok.KindEnd:
			depth--
		}
		if err := m.w.WriteToken(stripKey(tok)); err != nil {
			return err
		}
	}
	return nil
}

func stripKey(tok xmltok.Token) xmltok.Token {
	tok.HasKey, tok.Key = false, ""
	return tok
}

// unionAttrs merges attribute lists: all of a's attributes (values
// overridden by b when preferRight), then b's attributes not present in a.
func unionAttrs(a, b []xmltok.Attr, preferRight bool) []xmltok.Attr {
	out := make([]xmltok.Attr, 0, len(a)+len(b))
	out = append(out, a...)
	for _, battr := range b {
		found := false
		for i := range out {
			if out[i].Name == battr.Name {
				found = true
				if preferRight {
					out[i].Value = battr.Value
				}
				break
			}
		}
		if !found {
			out = append(out, battr)
		}
	}
	return out
}

// parserStream is a live annotated token stream with lookahead. With
// pipelining, the parse+annotate work runs on a producer goroutine ahead
// of the consumer; fetch order (and so everything the merger sees) is
// identical either way.
type parserStream struct {
	fetch   func() (xmltok.Token, error)
	stopFn  func()
	peeked  *xmltok.Token
	peekErr error
}

// prefetchDepth is the producer's lookahead bound in tokens: deep enough
// to absorb decode/merge burstiness, small enough that the buffered tokens
// stay well under one block-sized working set. This is the one deliberate
// block-buffer exception in the tree (DESIGN.md §10): the lookahead is
// token-granular, not block-granular, so it buys no frame from the pool —
// its footprint rides on the input streams' own frames, which is why the
// merger's budget arithmetic never mentions it.
const prefetchDepth = 256

func newParserStream(r io.Reader, c *keys.Criterion, elements *int64, pipelined bool) *parserStream {
	p := xmltok.NewParser(r, xmltok.DefaultParserOptions())
	a := keys.NewAnnotator(c, nil)
	fetch := func() (xmltok.Token, error) {
		tok, err := p.Next()
		if err != nil {
			return xmltok.Token{}, err
		}
		if tok, err = a.Annotate(tok); err != nil {
			return xmltok.Token{}, err
		}
		if tok.Kind == xmltok.KindStart {
			*elements++
		}
		return tok, nil
	}
	s := &parserStream{fetch: fetch, stopFn: func() {}}
	if pipelined {
		s.fetch, s.stopFn = prefetch(fetch)
	}
	return s
}

// stop shuts the producer goroutine down (and waits for it), so an early
// merge error neither leaks the goroutine nor races its report counting.
// A no-op for sequential streams and after the stream is exhausted.
func (s *parserStream) stop() { s.stopFn() }

// tokenFetch is one producer result: a token or the stream's terminal error.
type tokenFetch struct {
	tok xmltok.Token
	err error
}

// prefetch runs fetch on its own goroutine, decoding up to prefetchDepth
// tokens ahead of the consumer through a bounded channel. Tokens are value
// types (fresh Attrs per token), so handing them across is safe.
func prefetch(fetch func() (xmltok.Token, error)) (func() (xmltok.Token, error), func()) {
	ch := make(chan tokenFetch, prefetchDepth)
	quit := make(chan struct{})
	go func() {
		defer close(ch)
		for {
			tok, err := fetch()
			select {
			case ch <- tokenFetch{tok: tok, err: err}:
				if err != nil {
					return
				}
			case <-quit:
				return
			}
		}
	}()
	var stopped bool
	next := func() (xmltok.Token, error) {
		f, ok := <-ch
		if !ok {
			// Fetch past the terminal error: keep reporting end of stream.
			return xmltok.Token{}, io.EOF
		}
		return f.tok, f.err
	}
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		close(quit)
		for range ch { // wait for the producer's deferred close
		}
	}
	return next, stop
}

func (s *parserStream) peek() (xmltok.Token, error) {
	if s.peeked == nil && s.peekErr == nil {
		tok, err := s.fetch()
		if err != nil {
			s.peekErr = err
			return xmltok.Token{}, err
		}
		s.peeked = &tok
	}
	if s.peekErr != nil {
		return xmltok.Token{}, s.peekErr
	}
	return *s.peeked, nil
}

func (s *parserStream) next() (xmltok.Token, error) {
	tok, err := s.peek()
	if err != nil {
		return tok, err
	}
	s.peeked = nil
	return tok, nil
}

// sliceStream replays a buffered token subtree.
type sliceStream struct {
	toks []xmltok.Token
	i    int
}

func newSliceStream(toks []xmltok.Token) *sliceStream { return &sliceStream{toks: toks} }

func (s *sliceStream) peek() (xmltok.Token, error) {
	if s.i >= len(s.toks) {
		return xmltok.Token{}, io.EOF
	}
	return s.toks[s.i], nil
}

func (s *sliceStream) next() (xmltok.Token, error) {
	tok, err := s.peek()
	if err == nil {
		s.i++
	}
	return tok, err
}
