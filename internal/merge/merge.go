// Package merge implements structural merge of XML documents — the
// motivating application of the paper's Example 1.1 ("Merging XML
// documents"), the XML analogue of a sort-merge (outer) join.
//
// Two elements match when they are at the same position in the hierarchy,
// have the same tag name, and the same non-empty ordering key under the
// merge criterion (the same criterion both documents were sorted by). A
// matched pair merges into one element whose attributes are the union of
// both sides' and whose child lists merge recursively. Unmatched elements,
// text nodes, and elements with empty keys copy through unchanged — with
// the left document's entries first on ties, so merge output is itself
// sorted and deterministic.
//
// Documents is the single-pass streaming merge over two sorted inputs (the
// sort-merge strategy). Because sibling lists are sorted by key alone,
// siblings sharing a key form a group; within a group the merger matches
// left and right entries by tag name, buffering just that group — the
// memory cost is one duplicate-key group, not a document. NestedLoop is
// the naive strategy the paper's introduction dismisses — for each
// element, scan the other document for its match — implemented over
// in-memory trees; it requires no sorting and serves as the correctness
// oracle for the streaming version.
package merge

import (
	"fmt"
	"io"
	"runtime"

	"nexsort/internal/keys"
	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
)

// Options configures a merge.
type Options struct {
	// PreferRight makes the right document win attribute conflicts on
	// matched elements. The default keeps the left value — with batch
	// updates (the paper's second application), the base document is the
	// left input and updates win by setting PreferRight.
	PreferRight bool
	// Indent pretty-prints the output; empty writes compact XML.
	Indent string
	// Parallelism bounds the merge's goroutines. Above one, each input's
	// raw bytes are read ahead block by block on a producer goroutine,
	// overlapping the two inputs' I/O with the parse+merge consumer; the
	// byte stream each parser sees is unchanged, so the output is
	// byte-identical to the sequential merge. 0 defaults to GOMAXPROCS;
	// 1 forces sequential execution.
	Parallelism int
}

// parallelism resolves the knob: 0 defaults to GOMAXPROCS.
func (o Options) parallelism() int {
	if o.Parallelism > 0 {
		return o.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Report summarizes a merge.
type Report struct {
	// ElementsLeft and ElementsRight count input elements.
	ElementsLeft  int64
	ElementsRight int64
	// Matched counts element pairs merged into one output element.
	Matched int64
	// OutputElements counts elements written.
	OutputElements int64
}

// Documents merges two sorted XML documents in a single pass and writes
// the merged document to out. Both inputs must already be sorted by c
// (e.g. with NEXSORT); c must be start-resolvable, since merge decisions
// are made at start tags. The roots must match — the paper's setting has
// both documents describing the same top-level entity (<company>) — and
// mismatched roots are reported as an error. Roots match by tag name and
// equal (possibly empty) key.
func Documents(left, right io.Reader, c *keys.Criterion, out io.Writer, opts Options) (*Report, error) {
	for _, r := range c.Rules {
		if !r.Source.StartResolvable() {
			return nil, fmt.Errorf("merge: criterion rule for %q needs a subtree pass (%s); merge requires start-resolvable criteria", r.Tag, r.Source)
		}
	}
	rep := &Report{}
	pipelined := opts.parallelism() > 1
	ls := newParserStream(left, c, &rep.ElementsLeft, pipelined)
	defer ls.stop()
	rs := newParserStream(right, c, &rep.ElementsRight, pipelined)
	defer rs.stop()
	var w *xmltok.Writer
	if opts.Indent != "" {
		w = xmltok.NewIndentWriter(out, opts.Indent)
	} else {
		w = xmltok.NewWriter(out)
	}

	m := &merger{w: w, opts: opts, rep: rep}
	ltok, err := ls.peek()
	if err != nil {
		return nil, fmt.Errorf("merge: left document: %w", eofIsEmpty(err))
	}
	rtok, err := rs.peek()
	if err != nil {
		return nil, fmt.Errorf("merge: right document: %w", eofIsEmpty(err))
	}
	if ltok.Kind != xmltok.KindStart || rtok.Kind != xmltok.KindStart ||
		ltok.Name != rtok.Name || ltok.Key != rtok.Key {
		return nil, fmt.Errorf("merge: root elements <%s key=%q> and <%s key=%q> do not match",
			ltok.Name, ltok.Key, rtok.Name, rtok.Key)
	}
	if err := m.mergePair(ls, rs); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return rep, nil
}

func eofIsEmpty(err error) error {
	if err == io.EOF {
		return fmt.Errorf("document is empty")
	}
	return err
}

// tokStream is a token stream with one-token lookahead: either a live
// parser stream or a buffered group member.
type tokStream interface {
	peek() (xmltok.Token, error)
	next() (xmltok.Token, error)
}

type merger struct {
	w    *xmltok.Writer
	opts Options
	rep  *Report
}

// mergePair consumes one matched element from each stream and emits the
// merged element. Both streams are positioned at the start tags.
func (m *merger) mergePair(l, r tokStream) error {
	ltok, err := l.next()
	if err != nil {
		return err
	}
	rtok, err := r.next()
	if err != nil {
		return err
	}
	m.rep.Matched++
	m.rep.OutputElements++
	merged := xmltok.Token{Kind: xmltok.KindStart, Name: ltok.Name, Attrs: unionAttrs(ltok.Attrs, rtok.Attrs, m.opts.PreferRight)}
	if err := m.w.WriteToken(merged); err != nil {
		return err
	}
	if err := m.mergeChildren(l, r); err != nil {
		return err
	}
	// Consume both end tags.
	if _, err := l.next(); err != nil {
		return err
	}
	if _, err := r.next(); err != nil {
		return err
	}
	return m.w.WriteToken(xmltok.Token{Kind: xmltok.KindEnd, Name: ltok.Name})
}

// mergeChildren zips the two sorted child lists. Both streams sit just
// inside a matched element; the loop ends with both positioned at their
// end tags (or stream ends, for buffered groups). Sibling keys are
// verified non-decreasing as they stream by: merging unsorted input would
// silently drop matches, so it is an error instead.
func (m *merger) mergeChildren(l, r tokStream) error {
	var prevL, prevR string
	for {
		ltok, lok, err := peekSibling(l)
		if err != nil {
			return err
		}
		rtok, rok, err := peekSibling(r)
		if err != nil {
			return err
		}
		if lok {
			if k := siblingOrder(ltok); sortkey.CompareKeys(k, prevL) < 0 {
				return fmt.Errorf("merge: left input is not sorted: key %q after %q under the current parent", k, prevL)
			} else {
				prevL = k
			}
		}
		if rok {
			if k := siblingOrder(rtok); sortkey.CompareKeys(k, prevR) < 0 {
				return fmt.Errorf("merge: right input is not sorted: key %q after %q under the current parent", k, prevR)
			} else {
				prevR = k
			}
		}
		switch {
		case !lok && !rok:
			return nil
		case !lok:
			if err := m.copySubtree(r); err != nil {
				return err
			}
		case !rok:
			if err := m.copySubtree(l); err != nil {
				return err
			}
		default:
			// Sibling order is sortkey.CompareKeys — the same single
			// definition of key order the sorters' comparison kernels
			// normalize, so merge decisions and sort decisions can never
			// disagree on which subtree comes first.
			lkey, rkey := siblingOrder(ltok), siblingOrder(rtok)
			switch {
			case sortkey.CompareKeys(lkey, rkey) < 0:
				if err := m.copySubtree(l); err != nil {
					return err
				}
			case sortkey.CompareKeys(rkey, lkey) < 0:
				if err := m.copySubtree(r); err != nil {
					return err
				}
			case lkey == "":
				// Equal empty keys never match; left side first.
				if err := m.copySubtree(l); err != nil {
					return err
				}
			default:
				if err := m.mergeGroup(l, r, lkey); err != nil {
					return err
				}
			}
		}
	}
}

// peekSibling peeks the next token and reports whether it begins another
// sibling (false at the parent's end tag or stream end).
func peekSibling(s tokStream) (xmltok.Token, bool, error) {
	tok, err := s.peek()
	if err == io.EOF {
		return tok, false, nil
	}
	if err != nil {
		return tok, false, err
	}
	return tok, tok.Kind != xmltok.KindEnd, nil
}

// mergeGroup handles a maximal run of siblings sharing one non-empty key
// on both sides. Keys alone determine sorted positions, so entries with
// different tags interleave within the group; matching is by tag, which
// requires buffering the group and pairing entries the way the nested-loop
// semantics do: each left entry takes the first unused same-tag right
// entry, then unmatched right entries follow.
func (m *merger) mergeGroup(l, r tokStream, key string) error {
	lgroup, err := readGroup(l, key)
	if err != nil {
		return err
	}
	rgroup, err := readGroup(r, key)
	if err != nil {
		return err
	}
	used := make([]bool, len(rgroup))
	for _, ltoks := range lgroup {
		matched := -1
		for j, rtoks := range rgroup {
			if !used[j] && rtoks[0].Kind == xmltok.KindStart && rtoks[0].Name == ltoks[0].Name {
				matched = j
				break
			}
		}
		if matched >= 0 {
			used[matched] = true
			if err := m.mergePair(newSliceStream(ltoks), newSliceStream(rgroup[matched])); err != nil {
				return err
			}
		} else if err := m.copySubtree(newSliceStream(ltoks)); err != nil {
			return err
		}
	}
	for j, rtoks := range rgroup {
		if !used[j] {
			if err := m.copySubtree(newSliceStream(rtoks)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readGroup buffers the consecutive siblings whose order key equals key.
// Each entry is a complete token subtree (or a single text token).
func readGroup(s tokStream, key string) ([][]xmltok.Token, error) {
	var group [][]xmltok.Token
	for {
		tok, ok, err := peekSibling(s)
		if err != nil {
			return nil, err
		}
		if !ok || siblingOrder(tok) != key {
			return group, nil
		}
		toks, err := readSubtree(s)
		if err != nil {
			return nil, err
		}
		group = append(group, toks)
	}
}

// readSubtree consumes one complete sibling into a token slice.
func readSubtree(s tokStream) ([]xmltok.Token, error) {
	tok, err := s.next()
	if err != nil {
		return nil, err
	}
	toks := []xmltok.Token{tok}
	if tok.Kind != xmltok.KindStart {
		return toks, nil
	}
	depth := 1
	for depth > 0 {
		tok, err = s.next()
		if err != nil {
			return nil, err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			depth++
		case xmltok.KindEnd:
			depth--
		}
		toks = append(toks, tok)
	}
	return toks, nil
}

// siblingOrder gives the sort key a sibling-level token was ordered by:
// elements carry their criterion key; text sorts with the empty key.
func siblingOrder(tok xmltok.Token) string {
	if tok.Kind == xmltok.KindStart {
		return tok.Key
	}
	return ""
}

// copySubtree copies one complete sibling (element subtree or text node)
// from src to the output.
func (m *merger) copySubtree(src tokStream) error {
	tok, err := src.next()
	if err != nil {
		return err
	}
	if tok.Kind == xmltok.KindText {
		return m.w.WriteToken(tok)
	}
	m.rep.OutputElements++
	if err := m.w.WriteToken(stripKey(tok)); err != nil {
		return err
	}
	depth := 1
	for depth > 0 {
		tok, err = src.next()
		if err != nil {
			return err
		}
		switch tok.Kind {
		case xmltok.KindStart:
			depth++
			m.rep.OutputElements++
		case xmltok.KindEnd:
			depth--
		}
		if err := m.w.WriteToken(stripKey(tok)); err != nil {
			return err
		}
	}
	return nil
}

func stripKey(tok xmltok.Token) xmltok.Token {
	tok.HasKey, tok.Key = false, ""
	return tok
}

// unionAttrs merges attribute lists: all of a's attributes (values
// overridden by b when preferRight), then b's attributes not present in a.
func unionAttrs(a, b []xmltok.Attr, preferRight bool) []xmltok.Attr {
	out := make([]xmltok.Attr, 0, len(a)+len(b))
	out = append(out, a...)
	for _, battr := range b {
		found := false
		for i := range out {
			if out[i].Name == battr.Name {
				found = true
				if preferRight {
					out[i].Value = battr.Value
				}
				break
			}
		}
		if !found {
			out = append(out, battr)
		}
	}
	return out
}

// parserStream is a live annotated token stream with lookahead. With
// pipelining, the raw input bytes are read ahead block by block on a
// producer goroutine (blockReadAhead below); parse+annotate runs on the
// consumer over the identical byte stream, so everything the merger sees
// is the same either way.
type parserStream struct {
	fetch   func() (xmltok.Token, error)
	stopFn  func()
	peeked  *xmltok.Token
	peekErr error
}

// Block read-ahead geometry for pipelined inputs. The merge is deviceless
// — its inputs are plain io.Readers, not em streams — so the depth is a
// package constant rather than em.Config.ReadAhead, but the shape is the
// same as the device engine's (DESIGN.md §15): a bounded ring of
// block-sized buffers filled ahead of the consumer, recycled as they
// drain. Lookahead is block-granular, mirroring how em.StreamReader
// prefetches the next depth blocks of its extent table.
const (
	readAheadBlockBytes = 16 << 10
	readAheadBlocks     = 4
)

func newParserStream(r io.Reader, c *keys.Criterion, elements *int64, pipelined bool) *parserStream {
	stopFn := func() {}
	if pipelined {
		ra := newBlockReadAhead(r)
		r, stopFn = ra, ra.stop
	}
	p := xmltok.NewParser(r, xmltok.DefaultParserOptions())
	a := keys.NewAnnotator(c, nil)
	fetch := func() (xmltok.Token, error) {
		tok, err := p.Next()
		if err != nil {
			return xmltok.Token{}, err
		}
		if tok, err = a.Annotate(tok); err != nil {
			return xmltok.Token{}, err
		}
		if tok.Kind == xmltok.KindStart {
			*elements++
		}
		return tok, nil
	}
	return &parserStream{fetch: fetch, stopFn: stopFn}
}

// stop shuts the read-ahead goroutine down (and waits for it), so an
// early merge error neither leaks the goroutine nor leaves it blocked on
// a half-consumed input. A no-op for sequential streams and after the
// stream is exhausted.
func (s *parserStream) stop() { s.stopFn() }

// raBlock is one produced read-ahead block: the filled prefix of a ring
// buffer, plus the stream's terminal error once there is one.
type raBlock struct {
	buf  []byte // the ring buffer, for recycling
	data []byte // buf[:n], the bytes actually read
	err  error
}

// blockReadAhead is an io.Reader that keeps up to readAheadBlocks blocks
// of the underlying reader in flight on a producer goroutine. Buffers
// recycle through the free ring, so the steady-state footprint is
// readAheadBlocks+1 blocks regardless of input size. The consumer sees
// the byte stream unchanged; only the timing of the underlying reads
// moves.
type blockReadAhead struct {
	full chan raBlock
	free chan []byte
	quit chan struct{}

	cur     raBlock // block being drained; err delivered after its bytes
	stopped bool
}

func newBlockReadAhead(r io.Reader) *blockReadAhead {
	ra := &blockReadAhead{
		full: make(chan raBlock, readAheadBlocks),
		free: make(chan []byte, readAheadBlocks+1),
		quit: make(chan struct{}),
	}
	for i := 0; i < readAheadBlocks+1; i++ {
		ra.free <- make([]byte, readAheadBlockBytes)
	}
	go ra.produce(r)
	return ra
}

func (ra *blockReadAhead) produce(r io.Reader) {
	defer close(ra.full)
	for {
		var buf []byte
		select {
		case buf = <-ra.free:
		case <-ra.quit:
			return
		}
		n, err := io.ReadFull(r, buf)
		if err == io.ErrUnexpectedEOF {
			err = io.EOF // a short final block, delivered before the EOF
		}
		select {
		case ra.full <- raBlock{buf: buf, data: buf[:n], err: err}:
			if err != nil {
				return
			}
		case <-ra.quit:
			return
		}
	}
}

func (ra *blockReadAhead) Read(p []byte) (int, error) {
	for len(ra.cur.data) == 0 {
		if ra.cur.err != nil {
			return 0, ra.cur.err
		}
		if ra.cur.buf != nil {
			ra.free <- ra.cur.buf
			ra.cur = raBlock{}
		}
		blk, ok := <-ra.full
		if !ok {
			return 0, io.EOF
		}
		ra.cur = blk
	}
	n := copy(p, ra.cur.data)
	ra.cur.data = ra.cur.data[n:]
	return n, nil
}

// stop halts the producer and waits for it to exit. Idempotent.
func (ra *blockReadAhead) stop() {
	if ra.stopped {
		return
	}
	ra.stopped = true
	close(ra.quit)
	for range ra.full { // wait for the producer's deferred close
	}
}

func (s *parserStream) peek() (xmltok.Token, error) {
	if s.peeked == nil && s.peekErr == nil {
		tok, err := s.fetch()
		if err != nil {
			s.peekErr = err
			return xmltok.Token{}, err
		}
		s.peeked = &tok
	}
	if s.peekErr != nil {
		return xmltok.Token{}, s.peekErr
	}
	return *s.peeked, nil
}

func (s *parserStream) next() (xmltok.Token, error) {
	tok, err := s.peek()
	if err != nil {
		return tok, err
	}
	s.peeked = nil
	return tok, nil
}

// sliceStream replays a buffered token subtree.
type sliceStream struct {
	toks []xmltok.Token
	i    int
}

func newSliceStream(toks []xmltok.Token) *sliceStream { return &sliceStream{toks: toks} }

func (s *sliceStream) peek() (xmltok.Token, error) {
	if s.i >= len(s.toks) {
		return xmltok.Token{}, io.EOF
	}
	return s.toks[s.i], nil
}

func (s *sliceStream) next() (xmltok.Token, error) {
	tok, err := s.peek()
	if err == nil {
		s.i++
	}
	return tok, err
}
