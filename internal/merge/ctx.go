package merge

import (
	"context"
	"io"

	"nexsort/internal/keys"
)

// This file bounds the structural merge by a context. The merge is
// deviceless — it streams tokens straight from two readers to a writer,
// with no em.Device underneath to enforce a lifecycle — so cancellation
// is enforced at the stream boundary instead: guarded readers and a
// guarded writer refuse further bytes once the context ends. The merge
// consumes input and produces output continuously (the parser pipelines
// buffer at most a bounded token window), so a cancellation is observed
// within one buffered read or write.

// DocumentsContext is Documents bounded by ctx: when ctx is canceled or
// its deadline passes, the merge stops at the next stream operation and
// returns an error matching errors.Is against context.Canceled /
// context.DeadlineExceeded. The pipelined parser goroutines are stopped
// on every return path (Documents defers their teardown), so nothing
// leaks.
func DocumentsContext(ctx context.Context, left, right io.Reader, c *keys.Criterion, out io.Writer, opts Options) (*Report, error) {
	rep, err := Documents(&ctxReader{ctx: ctx, r: left}, &ctxReader{ctx: ctx, r: right},
		c, &ctxWriter{ctx: ctx, w: out}, opts)
	if err != nil {
		// Prefer the context's error over whatever wrapped form the
		// guarded stream surfaced it in.
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return rep, nil
}

// ApplyUpdatesContext is ApplyUpdates bounded by ctx, with the same
// cancellation semantics as DocumentsContext.
func ApplyUpdatesContext(ctx context.Context, base, updates io.Reader, c *keys.Criterion, out io.Writer, indent string) (*Report, error) {
	rep, err := ApplyUpdates(&ctxReader{ctx: ctx, r: base}, &ctxReader{ctx: ctx, r: updates},
		c, &ctxWriter{ctx: ctx, w: out}, indent)
	if err != nil {
		if ctxErr := ctx.Err(); ctxErr != nil {
			return nil, ctxErr
		}
		return nil, err
	}
	return rep, nil
}

// ctxReader fails reads once the context is over. The context lives in a
// struct field only because io.Reader's signature leaves nowhere else for
// it; the guard is constructed and consumed within a single Documents /
// ApplyUpdates call, never stored (see the NV005 baseline).
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (c *ctxReader) Read(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.r.Read(p)
}

// ctxWriter fails writes once the context is over; same field rationale
// as ctxReader.
type ctxWriter struct {
	ctx context.Context
	w   io.Writer
}

func (c *ctxWriter) Write(p []byte) (int, error) {
	if err := c.ctx.Err(); err != nil {
		return 0, err
	}
	return c.w.Write(p)
}
