package merge

import (
	"io"

	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

// NestedLoop merges two document trees with the naive strategy of the
// paper's Example 1.1: "for each employee element, we find the matching
// element in the other document by traversing through the matching region
// and branch elements". Neither input needs to be sorted; the result is
// returned unsorted (sort it to compare with the streaming merge). It
// exists as the correctness oracle for Documents and as the baseline whose
// access pattern the sort-merge strategy exists to avoid.
//
// Inputs are not modified; keys are computed on private clones.
func NestedLoop(left, right *xmltree.Node, c *keys.Criterion, opts Options) (*xmltree.Node, error) {
	a := left.Clone()
	b := right.Clone()
	a.ComputeKeys(c)
	b.ComputeKeys(c)
	// Roots match by tag name and equal (possibly empty) key, mirroring
	// the streaming merge.
	if a.Kind != xmltree.Elem || b.Kind != xmltree.Elem || a.Name != b.Name || a.Key != b.Key {
		return nil, rootMismatchError(a, b)
	}
	return mergeNodes(a, b, opts), nil
}

func rootMismatchError(a, b *xmltree.Node) error {
	return &RootMismatchError{LeftName: a.Name, LeftKey: a.Key, RightName: b.Name, RightKey: b.Key}
}

// RootMismatchError reports that two documents' roots cannot merge.
type RootMismatchError struct {
	LeftName, LeftKey, RightName, RightKey string
}

func (e *RootMismatchError) Error() string {
	return "merge: root elements <" + e.LeftName + " key=" + e.LeftKey +
		"> and <" + e.RightName + " key=" + e.RightKey + "> do not match"
}

func nodesMatch(a, b *xmltree.Node) bool {
	return a.Kind == xmltree.Elem && b.Kind == xmltree.Elem &&
		a.Name == b.Name && a.Key != "" && a.Key == b.Key
}

// mergeNodes merges two matched elements: attribute union, then for each of
// a's element children the first unused matching child of b is located by
// linear scan (the nested loop) and merged recursively; all unmatched b
// children are appended after a's.
func mergeNodes(a, b *xmltree.Node, opts Options) *xmltree.Node {
	out := &xmltree.Node{Kind: xmltree.Elem, Name: a.Name, Key: a.Key, Seq: a.Seq}
	out.Attrs = unionAttrs(a.Attrs, b.Attrs, opts.PreferRight)

	used := make([]bool, len(b.Children))
	for _, ac := range a.Children {
		matched := -1
		if ac.Kind == xmltree.Elem && ac.Key != "" {
			for j, bc := range b.Children {
				if !used[j] && nodesMatch(ac, bc) {
					matched = j
					break
				}
			}
		}
		if matched >= 0 {
			used[matched] = true
			out.Children = append(out.Children, mergeNodes(ac, b.Children[matched], opts))
		} else {
			out.Children = append(out.Children, ac.Clone())
		}
	}
	for j, bc := range b.Children {
		if !used[j] {
			cp := bc.Clone()
			// Unmatched right-side children sort after equal-keyed left
			// children: give them sequence numbers past a's range.
			cp.Seq += int64(len(a.Children))
			out.Children = append(out.Children, cp)
		}
	}
	return out
}

// ApplyUpdates implements the paper's second application (Section 1):
// batch updates to an existing sorted document. The update document — a
// partial document in the same shape — is merged into the base with update
// attribute values winning conflicts; matched elements are updated in
// place, unmatched update elements are inserted at their sorted positions,
// and the result document remains sorted.
//
// base and updates must both be sorted by c; sort the update batch first,
// exactly as the paper prescribes.
func ApplyUpdates(base, updates io.Reader, c *keys.Criterion, out io.Writer, indent string) (*Report, error) {
	return Documents(base, updates, c, out, Options{PreferRight: true, Indent: indent})
}
