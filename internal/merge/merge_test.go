package merge

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/keys"
	"nexsort/internal/xmltree"
)

// Figure 1's two input documents: D1 from the personnel department, D2
// from payroll. Shapes transcribed from the paper's Table 1 and Figure 1.
const (
	d1 = `<company>
  <region name="NE"/>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`
	d2 = `<company>
  <region name="NW"/>
  <region name="AC">
    <branch name="Durham">
      <employee ID="844"/>
      <employee ID="323"><salary>45000</salary><bonus>5000</bonus></employee>
    </branch>
    <branch name="Miami"/>
  </region>
</company>`
)

// figure1Criterion matches the paper: order region by name, branch by
// name, employee by ID.
func figure1Criterion() *keys.Criterion {
	return &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
	}, KeyCap: 24}
}

// nexsortDoc sorts a document string with NEXSORT.
func nexsortDoc(t *testing.T, doc string, c *keys.Criterion) string {
	t.Helper()
	return nexsortDocCfg(t, doc, c, em.Config{BlockSize: 256, MemBlocks: 16})
}

func nexsortDocCfg(t *testing.T, doc string, c *keys.Criterion, cfg em.Config) string {
	t.Helper()
	env, err := em.NewEnv(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	var out strings.Builder
	if _, err := core.Sort(env, strings.NewReader(doc), &out, core.Options{Criterion: c}); err != nil {
		t.Fatal(err)
	}
	return out.String()
}

// TestFigure1MergeCompressedInputs re-runs Example 1.1 with the sorts'
// scratch traffic routed through the spill codec: the sorted inputs, and
// therefore the merged document, must be byte-identical to the plain runs
// — the spill representation can never leak into document content.
func TestFigure1MergeCompressedInputs(t *testing.T) {
	c := figure1Criterion()
	cfg := em.Config{BlockSize: 256, MemBlocks: 16, CompressSpill: true}
	s1, s2 := nexsortDocCfg(t, d1, c, cfg), nexsortDocCfg(t, d2, c, cfg)
	if s1 != nexsortDoc(t, d1, c) || s2 != nexsortDoc(t, d2, c) {
		t.Fatal("compressed-spill sorts differ from plain sorts")
	}
	var out strings.Builder
	rep, err := Documents(strings.NewReader(s1), strings.NewReader(s2), c, &out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Same matched pairs as TestFigure1Merge: company, region AC, branch
	// Durham, employee 323.
	if rep.Matched != 4 {
		t.Errorf("Matched = %d, want 4", rep.Matched)
	}
	if !strings.Contains(out.String(), `<employee ID="323"><name>Smith</name><phone>5552345</phone><salary>45000</salary><bonus>5000</bonus></employee>`) {
		t.Errorf("merged document lost content:\n%s", out.String())
	}
}

// TestFigure1Merge reproduces Example 1.1 end to end: sort both documents,
// merge in one pass, and compare against the merged document at the bottom
// of Figure 1 (in sorted order).
func TestFigure1Merge(t *testing.T) {
	c := figure1Criterion()
	s1 := nexsortDoc(t, d1, c)
	s2 := nexsortDoc(t, d2, c)

	var out strings.Builder
	rep, err := Documents(strings.NewReader(s1), strings.NewReader(s2), c, &out, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := `<company>` +
		`<region name="AC">` +
		`<branch name="Atlanta"></branch>` +
		`<branch name="Durham">` +
		`<employee ID="323"><name>Smith</name><phone>5552345</phone><salary>45000</salary><bonus>5000</bonus></employee>` +
		`<employee ID="454"></employee>` +
		`<employee ID="844"></employee>` +
		`</branch>` +
		`<branch name="Miami"></branch>` +
		`</region>` +
		`<region name="NE"></region>` +
		`<region name="NW"></region>` +
		`</company>`
	if out.String() != want {
		t.Errorf("merged document:\n got %s\nwant %s", out.String(), want)
	}
	// Matched pairs: company, region AC, branch Durham, employee 323.
	if rep.Matched != 4 {
		t.Errorf("Matched = %d, want 4", rep.Matched)
	}
	// Each input: company + 2 regions + 2-3 branches + 2 employees + 2
	// leaf elements = 9.
	if rep.ElementsLeft != 9 || rep.ElementsRight != 9 {
		t.Errorf("element counts = %d, %d; want 9, 9", rep.ElementsLeft, rep.ElementsRight)
	}
	// Output: company + 3 regions + 3 branches + 3 employees + name +
	// phone + salary + bonus = 14.
	if rep.OutputElements != 14 {
		t.Errorf("OutputElements = %d, want 14", rep.OutputElements)
	}
}

func TestMergeMatchesNestedLoopOracle(t *testing.T) {
	c := figure1Criterion()
	s1 := nexsortDoc(t, d1, c)
	s2 := nexsortDoc(t, d2, c)
	var streamed strings.Builder
	if _, err := Documents(strings.NewReader(s1), strings.NewReader(s2), c, &streamed, Options{}); err != nil {
		t.Fatal(err)
	}

	t1, _ := xmltree.ParseString(d1)
	t2, _ := xmltree.ParseString(d2)
	naive, err := NestedLoop(t1, t2, c, Options{})
	if err != nil {
		t.Fatal(err)
	}
	naive.SortRecursive()
	if streamed.String() != naive.XMLString() {
		t.Errorf("streaming and nested-loop merges disagree:\n stream %s\n  naive %s", streamed.String(), naive.XMLString())
	}
}

func TestMergeAttributeUnion(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByAttr("id")}}}
	a := `<e id="1" x="left" shared="L"/>`
	b := `<e id="1" y="right" shared="R"/>`

	var out strings.Builder
	if _, err := Documents(strings.NewReader(a), strings.NewReader(b), c, &out, Options{}); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), `<e id="1" x="left" shared="L" y="right"></e>`; got != want {
		t.Errorf("left-wins union:\n got %s\nwant %s", got, want)
	}

	out.Reset()
	if _, err := Documents(strings.NewReader(a), strings.NewReader(b), c, &out, Options{PreferRight: true}); err != nil {
		t.Fatal(err)
	}
	if got, want := out.String(), `<e id="1" x="left" shared="R" y="right"></e>`; got != want {
		t.Errorf("right-wins union:\n got %s\nwant %s", got, want)
	}
}

func TestMergeErrors(t *testing.T) {
	c := figure1Criterion()
	var out strings.Builder
	if _, err := Documents(strings.NewReader(`<a/>`), strings.NewReader(`<b/>`), c, &out, Options{}); err == nil {
		t.Error("mismatched roots should fail")
	}
	if _, err := Documents(strings.NewReader(``), strings.NewReader(`<b/>`), c, &out, Options{}); err == nil {
		t.Error("empty left document should fail")
	}
	pathCrit := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByPath("x")}}}
	if _, err := Documents(strings.NewReader(`<e/>`), strings.NewReader(`<e/>`), pathCrit, &out, Options{}); err == nil {
		t.Error("path criterion should be rejected")
	}
	t1, _ := xmltree.ParseString(`<a k="1"/>`)
	t2, _ := xmltree.ParseString(`<b k="1"/>`)
	if _, err := NestedLoop(t1, t2, keys.ByAttrOrTag("k"), Options{}); err == nil {
		t.Error("nested-loop root mismatch should fail")
	}
}

func TestApplyUpdates(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "item", Source: keys.ByAttr("sku")},
		{Tag: "inventory", Source: keys.ByTag()},
	}}
	base := `<inventory><item sku="A1" qty="10"/><item sku="B2" qty="5"/></inventory>`
	updates := `<inventory><item sku="B2" qty="7"/><item sku="C3" qty="2"/></inventory>`
	var out strings.Builder
	rep, err := ApplyUpdates(strings.NewReader(base), strings.NewReader(updates), c, &out, "")
	if err != nil {
		t.Fatal(err)
	}
	want := `<inventory><item sku="A1" qty="10"></item><item sku="B2" qty="7"></item><item sku="C3" qty="2"></item></inventory>`
	if out.String() != want {
		t.Errorf("batch update:\n got %s\nwant %s", out.String(), want)
	}
	if rep.Matched != 2 { // inventory + item B2
		t.Errorf("Matched = %d, want 2", rep.Matched)
	}
}

// TestMergeQuick: streaming merge over NEXSORT-sorted random documents
// equals nested-loop merge over the raw trees (sorted afterwards).
func TestMergeQuick(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "r", Source: keys.ByTag()},
		{Tag: "", Source: keys.ByAttr("k")},
	}, KeyCap: 12}
	f := func(seedA, seedB int64) bool {
		docA := randomMergeDoc(rand.New(rand.NewSource(seedA)))
		docB := randomMergeDoc(rand.New(rand.NewSource(seedB)))

		sortDoc := func(doc string) (string, bool) {
			env, err := em.NewEnv(em.Config{BlockSize: 128, MemBlocks: 16})
			if err != nil {
				return "", false
			}
			defer env.Close()
			var out strings.Builder
			if _, err := core.Sort(env, strings.NewReader(doc), &out, core.Options{Criterion: c}); err != nil {
				return "", false
			}
			return out.String(), true
		}
		sa, ok := sortDoc(docA)
		if !ok {
			return false
		}
		sb, ok := sortDoc(docB)
		if !ok {
			return false
		}
		var streamed strings.Builder
		if _, err := Documents(strings.NewReader(sa), strings.NewReader(sb), c, &streamed, Options{}); err != nil {
			return false
		}

		ta, err := xmltree.ParseString(docA)
		if err != nil {
			return false
		}
		tb, err := xmltree.ParseString(docB)
		if err != nil {
			return false
		}
		naive, err := NestedLoop(ta, tb, c, Options{})
		if err != nil {
			return false
		}
		naive.SortRecursive()
		return streamed.String() == naive.XMLString()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// randomMergeDoc builds documents over a shared small key space so merges
// find plenty of matches, duplicates included.
func randomMergeDoc(rng *rand.Rand) string {
	var sb strings.Builder
	var emit func(depth, budget int) int
	emit = func(depth, budget int) int {
		if budget <= 0 {
			return budget
		}
		tag := string(rune('a' + rng.Intn(2)))
		fmt.Fprintf(&sb, `<%s k="%d" v="%d">`, tag, rng.Intn(5), rng.Intn(100))
		budget--
		for i := rng.Intn(3); i > 0; i-- {
			if rng.Intn(4) == 0 {
				fmt.Fprintf(&sb, "t%d", rng.Intn(3))
			} else if depth < 5 {
				budget = emit(depth+1, budget)
			}
		}
		sb.WriteString("</" + tag + ">")
		return budget
	}
	sb.WriteString(`<r>`)
	budget := 1 + rng.Intn(40)
	for budget > 0 {
		budget = emit(1, budget)
	}
	sb.WriteString("</r>")
	return sb.String()
}

func TestMergeRejectsUnsortedInput(t *testing.T) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "e", Source: keys.ByAttr("k")}}}
	sorted := `<r><e k="1"/><e k="2"/></r>`
	unsorted := `<r><e k="2"/><e k="1"/></r>`
	var out strings.Builder
	if _, err := Documents(strings.NewReader(unsorted), strings.NewReader(sorted), c, &out, Options{}); err == nil ||
		!strings.Contains(err.Error(), "left input is not sorted") {
		t.Errorf("unsorted left: %v", err)
	}
	if _, err := Documents(strings.NewReader(sorted), strings.NewReader(unsorted), c, &out, Options{}); err == nil ||
		!strings.Contains(err.Error(), "right input is not sorted") {
		t.Errorf("unsorted right: %v", err)
	}
	// Sorted inputs still merge fine.
	out.Reset()
	if _, err := Documents(strings.NewReader(sorted), strings.NewReader(sorted), c, &out, Options{}); err != nil {
		t.Errorf("sorted inputs rejected: %v", err)
	}
}
