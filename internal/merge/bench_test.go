package merge

import (
	"fmt"
	"io"
	"math/rand"
	"strings"
	"testing"

	"nexsort/internal/keys"
)

// benchDocs builds two pre-sorted documents sharing about half their keys.
func benchDocs() (string, string, *keys.Criterion) {
	c := &keys.Criterion{Rules: []keys.Rule{{Tag: "item", Source: keys.ByAttr("id")}}}
	build := func(seed int64) string {
		rng := rand.New(rand.NewSource(seed))
		var sb strings.Builder
		sb.WriteString("<catalog>")
		id := 0
		for i := 0; i < 5000; i++ {
			id += 1 + rng.Intn(3) // sorted, with gaps so halves overlap
			fmt.Fprintf(&sb, `<item id="%08d" v="%d"><d>payload %d</d></item>`, id, rng.Intn(100), i)
		}
		sb.WriteString("</catalog>")
		return sb.String()
	}
	return build(1), build(2), c
}

// BenchmarkStreamingMerge measures the single-pass structural merge.
func BenchmarkStreamingMerge(b *testing.B) {
	left, right, c := benchDocs()
	b.SetBytes(int64(len(left) + len(right)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Documents(strings.NewReader(left), strings.NewReader(right), c, io.Discard, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
