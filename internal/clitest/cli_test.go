// Package clitest builds the command-line tools and exercises them end to
// end through their real interfaces: flags, stdin/stdout, files and exit
// codes — the coverage unit tests of main packages cannot provide.
package clitest

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// binaries are built once per test run.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "nexsort-cli-")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"nexsort", "xmlgen", "xmlmerge", "xmlcheck", "xmlstats", "nexbench"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "nexsort/cmd/"+tool)
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic("building " + tool + ": " + err.Error() + "\n" + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func repoRoot() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/clitest -> repo root
}

// run executes a built tool and returns stdout, stderr and the exit code.
func run(t *testing.T, tool string, stdin string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	if stdin != "" {
		cmd.Stdin = strings.NewReader(stdin)
	}
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	err := cmd.Run()
	code := 0
	if exitErr, ok := err.(*exec.ExitError); ok {
		code = exitErr.ExitCode()
	} else if err != nil {
		t.Fatalf("%s: %v", tool, err)
	}
	return out.String(), errb.String(), code
}

func TestGenerateSortCheckPipeline(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	sorted := filepath.Join(dir, "sorted.xml")

	_, stderr, code := run(t, "xmlgen", "", "-shape", "custom", "-fanouts", "25,25", "-out", doc)
	if code != 0 {
		t.Fatalf("xmlgen failed: %s", stderr)
	}
	if !strings.Contains(stderr, "651 elements") {
		t.Errorf("xmlgen stats: %s", stderr)
	}

	// The fresh document is (almost surely) not sorted.
	_, _, code = run(t, "xmlcheck", "", "-by", "@key", "-in", doc, "-q")
	if code != 1 {
		t.Errorf("xmlcheck on unsorted doc: exit %d, want 1", code)
	}

	_, stderr, code = run(t, "nexsort", "", "-by", "@key", "-in", doc, "-out", sorted,
		"-block", "1024", "-mem", "16384", "-stats")
	if code != 0 {
		t.Fatalf("nexsort failed: %s", stderr)
	}
	if !strings.Contains(stderr, "subtree sorts=") || !strings.Contains(stderr, "total I/Os=") {
		t.Errorf("nexsort -stats output: %s", stderr)
	}

	out, _, code := run(t, "xmlcheck", "", "-by", "@key", "-in", sorted)
	if code != 0 {
		t.Errorf("xmlcheck on sorted doc: exit %d (%s)", code, out)
	}
	if !strings.Contains(out, "sorted: 651 elements") {
		t.Errorf("xmlcheck output: %s", out)
	}
}

func TestSorterCLIAlgorithmsAgree(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.xml")
	run(t, "xmlgen", "", "-shape", "ibm", "-height", "5", "-fanout", "5", "-seed", "3", "-out", doc, "-q")

	var outputs []string
	for _, algo := range []string{"nexsort", "mergesort", "inmemory"} {
		out, stderr, code := run(t, "nexsort", "", "-by", "@key", "-in", doc, "-algo", algo,
			"-block", "1024", "-mem", "32768")
		if code != 0 {
			t.Fatalf("%s failed: %s", algo, stderr)
		}
		outputs = append(outputs, out)
	}
	if outputs[0] != outputs[1] || outputs[1] != outputs[2] {
		t.Error("CLI algorithms disagree")
	}
}

func TestSorterCLIStdinStdout(t *testing.T) {
	out, stderr, code := run(t, "nexsort", `<r><b k="2"/><a k="1"/></r>`,
		"-by", "@k", "-block", "256", "-mem", "8192")
	if code != 0 {
		t.Fatalf("stdin sort failed: %s", stderr)
	}
	want := `<r><a k="1"></a><b k="2"></b></r>`
	if out != want {
		t.Errorf("got %q, want %q", out, want)
	}
}

func TestMergeCLI(t *testing.T) {
	dir := t.TempDir()
	left := filepath.Join(dir, "l.xml")
	right := filepath.Join(dir, "r.xml")
	os.WriteFile(left, []byte(`<inv><item sku="B" q="1"/><item sku="A" q="2"/></inv>`), 0o644)
	os.WriteFile(right, []byte(`<inv><item sku="C" q="9"/><item sku="A" q="7"/></inv>`), 0o644)

	out, stderr, code := run(t, "xmlmerge", "", "-by", "item=@sku", "-left", left, "-right", right,
		"-update", "-block", "256", "-mem", "8192", "-stats")
	if code != 0 {
		t.Fatalf("xmlmerge failed: %s", stderr)
	}
	want := `<inv><item sku="A" q="7"></item><item sku="B" q="1"></item><item sku="C" q="9"></item></inv>`
	if out != want {
		t.Errorf("merged output: %q", out)
	}
	if !strings.Contains(stderr, "matched pairs") {
		t.Errorf("stats: %s", stderr)
	}
}

func TestBadUsageExitCodes(t *testing.T) {
	if _, _, code := run(t, "nexsort", "", "-in", "nope.xml"); code != 2 {
		t.Errorf("nexsort without -by: exit %d, want 2", code)
	}
	if _, _, code := run(t, "xmlcheck", ""); code != 2 {
		t.Errorf("xmlcheck without -by: exit %d, want 2", code)
	}
	if _, _, code := run(t, "xmlmerge", ""); code != 2 {
		t.Errorf("xmlmerge without flags: exit %d, want 2", code)
	}
	if _, stderr, code := run(t, "nexsort", "<a/>", "-by", "bogus spec"); code != 1 ||
		!strings.Contains(stderr, "unknown key source") {
		t.Errorf("bad criterion: exit %d, stderr %s", code, stderr)
	}
}

func TestNexbenchTable1(t *testing.T) {
	out, stderr, code := run(t, "nexbench", "", "-exp", "table1")
	if code != 0 {
		t.Fatalf("nexbench failed: %s", stderr)
	}
	for _, want := range []string{"/AC/Durham/323/name", "<name>Smith", "/NE"} {
		if !strings.Contains(out, want) {
			t.Errorf("table1 output missing %q:\n%s", want, out)
		}
	}
	if _, _, code := run(t, "nexbench", "", "-exp", "wat"); code != 2 {
		t.Errorf("unknown experiment: exit %d, want 2", code)
	}
}

func TestXMLStatsCLI(t *testing.T) {
	out, stderr, code := run(t, "xmlstats", `<r><a k="1"><b/><b/></a><a k="2"/></r>`,
		"-block", "4096", "-mem", "65536", "-levels")
	if code != 0 {
		t.Fatalf("xmlstats failed: %s", stderr)
	}
	for _, want := range []string{"elements           5", "max fan-out (k)    2", "XML lower bound", "exact counting bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("xmlstats output missing %q:\n%s", want, out)
		}
	}
}

func TestXSortAndRecordOrderFlags(t *testing.T) {
	doc := `<lib><shelf id="2"><book id="9"/><book id="2"/></shelf><shelf id="1"/></lib>`
	out, stderr, code := run(t, "nexsort", doc, "-by", "@id", "-algo", "mergesort",
		"-xsort", "shelf", "-block", "256", "-mem", "8192")
	if code != 0 {
		t.Fatalf("xsort failed: %s", stderr)
	}
	// Shelves keep document order; books inside each shelf sort.
	want := `<lib><shelf id="2"><book id="2"></book><book id="9"></book></shelf><shelf id="1"></shelf></lib>`
	if out != want {
		t.Errorf("xsort output: %q", out)
	}

	out, stderr, code = run(t, "nexsort", `<r><b k="2"/><a k="1"/></r>`,
		"-by", "@k", "-record-order", "seq", "-block", "256", "-mem", "8192")
	if code != 0 {
		t.Fatalf("record-order failed: %s", stderr)
	}
	if !strings.Contains(out, `seq="000000000000"`) {
		t.Errorf("missing order stamps: %q", out)
	}
}

// TestExamplesRun builds and executes every example program; each must
// exit 0 and print its headline output.
func TestExamplesRun(t *testing.T) {
	cases := map[string]string{
		"quickstart":   "sorted document:",
		"companymerge": "merged document",
		"batchupdate":  "inventory after applying",
		"depthlimited": "depth-limited sort",
		"archive":      "final archive:",
	}
	for name, want := range cases {
		name, want := name, want
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			bin := filepath.Join(binDir, "example-"+name)
			build := exec.Command("go", "build", "-o", bin, "nexsort/examples/"+name)
			build.Dir = repoRoot()
			if out, err := build.CombinedOutput(); err != nil {
				t.Fatalf("building example %s: %v\n%s", name, err, out)
			}
			out, err := exec.Command(bin).CombinedOutput()
			if err != nil {
				t.Fatalf("example %s failed: %v\n%s", name, err, out)
			}
			if !strings.Contains(string(out), want) {
				t.Errorf("example %s output missing %q:\n%s", name, want, out)
			}
		})
	}
}
