package gen

import (
	"fmt"
	"io"
	"math/rand"
)

// SiteSpec generates an auction-site-like document in the spirit of the
// XMark family of XML benchmarks: a heterogeneous schema rather than the
// uniform shapes of the paper's generators. It exists to exercise
// multi-rule ordering criteria (different key attributes per tag, text
// children mixed between elements) at scale:
//
//	<site>
//	  <region name="...">            6 fixed regions, shuffled
//	    <item id="I...">             Items items per region, random ids
//	      <name>...</name>
//	      <bids>
//	        <bid amount="..." bidder="..."/>   0..MaxBids bids
//	      </bids>
//	    </item>
//	  </region>
//	</site>
//
// A natural criterion sorts regions by name, items by id, and bids by
// (zero-padded) amount; name/bids children have no rule and keep document
// order.
type SiteSpec struct {
	// Items is the number of items per region.
	Items int
	// MaxBids bounds the bids per item (actual count uniform in
	// [0, MaxBids]).
	MaxBids int
	// Seed makes the document reproducible.
	Seed int64
}

// siteRegions are the fixed region names, emitted in seed-shuffled order.
var siteRegions = []string{"africa", "asia", "australia", "europe", "namerica", "samerica"}

// Write streams the document to w.
func (s SiteSpec) Write(w io.Writer) (Stats, error) {
	if s.Items < 1 {
		return Stats{}, fmt.Errorf("gen: site spec needs at least one item per region")
	}
	if s.MaxBids < 0 {
		return Stats{}, fmt.Errorf("gen: negative MaxBids")
	}
	rng := rand.New(rand.NewSource(s.Seed))
	cw := &countWriter{w: w}
	st := Stats{Height: 5}
	emit := func(format string, args ...any) error {
		_, err := fmt.Fprintf(cw, format, args...)
		return err
	}

	regions := append([]string(nil), siteRegions...)
	rng.Shuffle(len(regions), func(i, j int) { regions[i], regions[j] = regions[j], regions[i] })

	if err := emit("<site>"); err != nil {
		return st, err
	}
	st.Elements++
	st.MaxFanout = len(regions)
	for _, region := range regions {
		if err := emit(`<region name="%s">`, region); err != nil {
			return st, err
		}
		st.Elements++
		if s.Items > st.MaxFanout {
			st.MaxFanout = s.Items
		}
		for i := 0; i < s.Items; i++ {
			bids := 0
			if s.MaxBids > 0 {
				bids = rng.Intn(s.MaxBids + 1)
			}
			if err := emit(`<item id="I%08d"><name>Lot %d</name><bids>`,
				rng.Intn(100000000), rng.Intn(100000)); err != nil {
				return st, err
			}
			st.Elements += 3 // item, name, bids
			if bids > st.MaxFanout {
				st.MaxFanout = bids
			}
			for b := 0; b < bids; b++ {
				if err := emit(`<bid amount="%09.2f" bidder="P%05d"></bid>`,
					rng.Float64()*10000, rng.Intn(100000)); err != nil {
					return st, err
				}
				st.Elements++
			}
			if err := emit("</bids></item>"); err != nil {
				return st, err
			}
		}
		if err := emit("</region>"); err != nil {
			return st, err
		}
	}
	if err := emit("</site>"); err != nil {
		return st, err
	}
	st.Bytes = cw.n
	return st, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
