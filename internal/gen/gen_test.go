package gen

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"testing/quick"

	"nexsort/internal/xmltree"
)

// TestTable2Counts verifies the spec formula against the paper's Table 2
// size column, exactly.
func TestTable2Counts(t *testing.T) {
	want := []int64{3000001, 3005023, 3006865, 3037609, 3040001}
	specs := Table2Spec()
	if len(specs) != len(want) {
		t.Fatalf("%d specs", len(specs))
	}
	for i, spec := range specs {
		if got := spec.Elements(); got != want[i] {
			t.Errorf("height %d: Elements() = %d, want %d", i+2, got, want[i])
		}
	}
}

func TestCustomWriteShape(t *testing.T) {
	spec := CustomSpec{Fanouts: []int{3, 2}, Seed: 1}
	var buf bytes.Buffer
	st, err := spec.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.Elements != spec.Elements() || st.Elements != 10 {
		t.Errorf("Elements = %d, want 10", st.Elements)
	}
	if st.Height != 3 || st.MaxFanout != 3 {
		t.Errorf("Height = %d, MaxFanout = %d", st.Height, st.MaxFanout)
	}
	if st.Bytes != int64(buf.Len()) {
		t.Errorf("Bytes = %d, buffer = %d", st.Bytes, buf.Len())
	}

	// The document must parse, and the parsed tree must agree with the
	// reported shape.
	n, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n.CountElements() != 10 || n.Height() != 3 || n.MaxFanout() != 3 {
		t.Errorf("parsed shape: N=%d h=%d k=%d", n.CountElements(), n.Height(), n.MaxFanout())
	}
}

func TestElementSizeApproximation(t *testing.T) {
	spec := CustomSpec{Fanouts: []int{10, 10}, Seed: 2}
	var buf bytes.Buffer
	st, err := spec.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	avg := float64(st.Bytes) / float64(st.Elements)
	if avg < 130 || avg > 170 {
		t.Errorf("average element size = %.1f bytes, want ≈150", avg)
	}
	// Custom element size.
	var buf2 bytes.Buffer
	st2, _ := CustomSpec{Fanouts: []int{10, 10}, Seed: 2, ElemSize: 80}.Write(&buf2)
	avg2 := float64(st2.Bytes) / float64(st2.Elements)
	if avg2 < 60 || avg2 > 100 {
		t.Errorf("80-byte spec: average = %.1f", avg2)
	}
}

func TestDeterminism(t *testing.T) {
	spec := IBMSpec{Height: 4, MaxFanout: 5, Seed: 7}
	var a, b bytes.Buffer
	if _, err := spec.Write(&a); err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same seed produced different documents")
	}
	spec.Seed = 8
	var c bytes.Buffer
	spec.Write(&c)
	if bytes.Equal(a.Bytes(), c.Bytes()) {
		t.Error("different seeds produced identical documents")
	}
}

func TestIBMFanoutBounds(t *testing.T) {
	spec := IBMSpec{Height: 5, MaxFanout: 4, Seed: 3}
	var buf bytes.Buffer
	st, err := spec.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxFanout > 4 {
		t.Errorf("MaxFanout = %d exceeds spec", st.MaxFanout)
	}
	if st.Height != 5 {
		t.Errorf("Height = %d, want 5", st.Height)
	}
	n, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n.MaxFanout() != st.MaxFanout || n.Height() != st.Height {
		t.Errorf("parsed k=%d h=%d vs reported k=%d h=%d",
			n.MaxFanout(), n.Height(), st.MaxFanout, st.Height)
	}
}

func TestIBMMaxElementsCap(t *testing.T) {
	spec := IBMSpec{Height: 10, MaxFanout: 10, MaxElements: 500, Seed: 1}
	var buf bytes.Buffer
	st, err := spec.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// The cap stops sibling expansion; a chain to the leaf level may
	// still be completing, so allow the height's worth of slack.
	if st.Elements < 400 || st.Elements > 510 {
		t.Errorf("Elements = %d, want ≈500", st.Elements)
	}
	if _, err := xmltree.Parse(&buf); err != nil {
		t.Errorf("capped document does not parse: %v", err)
	}
}

func TestSpecValidation(t *testing.T) {
	if _, err := (IBMSpec{Height: 0, MaxFanout: 3}).Write(io.Discard); err == nil {
		t.Error("zero height should fail")
	}
	if _, err := (IBMSpec{Height: 3, MaxFanout: 0}).Write(io.Discard); err == nil {
		t.Error("zero fan-out should fail")
	}
	if _, err := (CustomSpec{}).Write(io.Discard); err == nil {
		t.Error("empty custom spec should fail")
	}
	if _, err := (CustomSpec{Fanouts: []int{3, 0}}).Write(io.Discard); err == nil {
		t.Error("zero level fan-out should fail")
	}
}

func TestScaledShapeSeries(t *testing.T) {
	const target = 5000
	specs := ScaledShapeSeries(target, 6)
	if len(specs) != 5 {
		t.Fatalf("%d specs, want 5 (heights 2-6)", len(specs))
	}
	for i, spec := range specs {
		h := i + 2
		if len(spec.Fanouts) != h-1 {
			t.Errorf("height %d: %d fan-out levels", h, len(spec.Fanouts))
		}
		n := spec.Elements()
		if n < target || n > target*13/10 {
			t.Errorf("height %d: %d elements, want within [target, 1.3×target]", h, n)
		}
		// Fan-outs are near-uniform: max-min ≤ 1 like 41,41,42,42.
		min, max := spec.Fanouts[0], spec.Fanouts[0]
		for _, f := range spec.Fanouts {
			if f < min {
				min = f
			}
			if f > max {
				max = f
			}
		}
		if max-min > 1 {
			t.Errorf("height %d: fan-outs %v not near-uniform", h, spec.Fanouts)
		}
	}
}

func TestCappedShape(t *testing.T) {
	for _, target := range []int64{100, 5000, 200000} {
		spec := CappedShape(target, 85)
		for _, f := range spec.Fanouts {
			if f > 85 {
				t.Errorf("target %d: fan-out %d exceeds cap", target, f)
			}
		}
		n := spec.Elements()
		if n < target || n > target*2 {
			t.Errorf("target %d: got %d elements", target, n)
		}
	}
	// Growing targets under a cap grow taller, not wider.
	small := CappedShape(1000, 10)
	big := CappedShape(100000, 10)
	if len(big.Fanouts) <= len(small.Fanouts) {
		t.Errorf("capped shape did not grow taller: %v vs %v", small.Fanouts, big.Fanouts)
	}
}

// Property: every generated document is well-formed and matches its
// reported statistics.
func TestGeneratedDocsParseQuick(t *testing.T) {
	f := func(seed int64, h, fanRaw uint8) bool {
		height := 1 + int(h%5)
		fan := 1 + int(fanRaw%5)
		spec := IBMSpec{Height: height, MaxFanout: fan, Seed: seed, MaxElements: 2000}
		var buf bytes.Buffer
		st, err := spec.Write(&buf)
		if err != nil {
			return false
		}
		n, err := xmltree.Parse(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		return int64(n.CountElements()) == st.Elements &&
			n.Height() == st.Height &&
			(st.Elements == 1 || n.MaxFanout() == st.MaxFanout)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestSiteSpec(t *testing.T) {
	var buf bytes.Buffer
	st, err := SiteSpec{Items: 5, MaxBids: 4, Seed: 3}.Write(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n, err := xmltree.Parse(&buf)
	if err != nil {
		t.Fatalf("site document does not parse: %v", err)
	}
	if int64(n.CountElements()) != st.Elements {
		t.Errorf("Elements = %d, tree says %d", st.Elements, n.CountElements())
	}
	if n.Height() != st.Height || st.Height != 5 {
		t.Errorf("Height = %d/%d", st.Height, n.Height())
	}
	if n.Children[0].Name != "region" || len(n.Children) != 6 {
		t.Errorf("root children: %d x %s", len(n.Children), n.Children[0].Name)
	}
	if _, err := (SiteSpec{Items: 0}).Write(io.Discard); err == nil {
		t.Error("zero items should fail")
	}
	if _, err := (SiteSpec{Items: 1, MaxBids: -1}).Write(io.Discard); err == nil {
		t.Error("negative MaxBids should fail")
	}
	// Deterministic per seed.
	var a, b bytes.Buffer
	SiteSpec{Items: 3, MaxBids: 2, Seed: 9}.Write(&a)
	SiteSpec{Items: 3, MaxBids: 2, Seed: 9}.Write(&b)
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("site generator not deterministic")
	}
}
