// Package gen generates the XML workloads of the paper's evaluation
// (Section 5), replacing its two generators:
//
//   - the IBM alphaWorks XML Generator (IBMSpec): the user specifies the
//     height and the maximum fan-out; the fan-out of each element is a
//     random number between 1 and the specified maximum;
//
//   - the authors' custom generator (CustomSpec): the exact fan-out for
//     each level, "giving more precise control over the shape and the size
//     of the generated document" — the generator behind Table 2 and the
//     Figure 6/7 input series.
//
// Both generators stream their output with O(height) memory, emit elements
// averaging a configurable size (the paper's test data averages about 150
// bytes per element), and are fully deterministic for a given seed. Every
// element carries a fixed-width random sort-key attribute, so documents
// arrive in thoroughly unsorted order.
package gen

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"strings"
)

// DefaultElemSize is the target average element size in bytes, matching
// the paper's "average element size of about 150 bytes".
const DefaultElemSize = 150

// DefaultKeyAttr is the attribute the generators write sort keys to.
const DefaultKeyAttr = "key"

// Stats describes a generated document.
type Stats struct {
	// Elements is N, the number of elements emitted.
	Elements int64
	// Bytes is the document's size in bytes.
	Bytes int64
	// MaxFanout is k, the maximum fan-out actually emitted.
	MaxFanout int
	// Height is the number of element levels.
	Height int
}

// IBMSpec configures the IBM-alphaWorks-style generator.
type IBMSpec struct {
	// Height is the number of element levels (root at level 1).
	Height int
	// MaxFanout bounds each element's fan-out; the actual fan-out of
	// every non-leaf element is uniform in [1, MaxFanout].
	MaxFanout int
	// MaxElements, when positive, truncates generation once the limit is
	// reached (the random process otherwise produces documents of
	// uncontrollable expected size (MaxFanout/2)^Height).
	MaxElements int64
	// Seed makes the document reproducible.
	Seed int64
	// ElemSize is the target average element size in bytes
	// (DefaultElemSize when zero).
	ElemSize int
	// KeyAttr is the sort-key attribute name (DefaultKeyAttr when empty).
	KeyAttr string
}

// CustomSpec configures the exact-shape generator behind Table 2.
type CustomSpec struct {
	// Fanouts[i] is the exact fan-out of every element at level i+1, so
	// the document has len(Fanouts)+1 levels and
	// 1 + f1 + f1·f2 + … elements.
	Fanouts []int
	// Seed makes the document reproducible.
	Seed int64
	// ElemSize is the target average element size in bytes.
	ElemSize int
	// KeyAttr is the sort-key attribute name.
	KeyAttr string
}

// Elements returns the exact element count the spec will produce:
// 1 + f1 + f1·f2 + … — the formula behind Table 2's size column.
func (s CustomSpec) Elements() int64 {
	total := int64(1)
	level := int64(1)
	for _, f := range s.Fanouts {
		level *= int64(f)
		total += level
	}
	return total
}

// Table2Spec returns the five input shapes of the paper's Table 2,
// verbatim: heights 2-6, roughly three million elements each.
func Table2Spec() []CustomSpec {
	return []CustomSpec{
		{Fanouts: []int{3000000}},
		{Fanouts: []int{1733, 1733}},
		{Fanouts: []int{144, 144, 144}},
		{Fanouts: []int{41, 41, 42, 42}},
		{Fanouts: []int{19, 19, 20, 20, 20}},
	}
}

// ScaledShapeSeries reproduces the Table 2 construction at a different
// scale: for each height 2..maxHeight it picks near-uniform per-level
// fan-outs whose element total approximates target, the same balancing the
// paper used (compare 41,41,42,42). The fan-out at every level is at least
// 2 so the shape stays tree-like.
func ScaledShapeSeries(target int64, maxHeight int) []CustomSpec {
	var specs []CustomSpec
	for h := 2; h <= maxHeight; h++ {
		specs = append(specs, scaledShape(target, h))
	}
	return specs
}

// CappedShape reproduces the Figure 6 input construction: the smallest
// near-uniform shape reaching about target elements with every fan-out
// capped at maxFan, growing taller as the target grows so the document
// keeps "enough hierarchicalness and does not become array-like".
func CappedShape(target int64, maxFan int) CustomSpec {
	if maxFan < 2 {
		maxFan = 2
	}
	for levels := 1; ; levels++ {
		spec := cappedShapeAt(target, levels, maxFan)
		if spec.Elements() >= target || levels > 40 {
			return spec
		}
	}
}

func cappedShapeAt(target int64, levels, maxFan int) CustomSpec {
	base := int(math.Pow(float64(target), 1/float64(levels)))
	if base < 2 {
		base = 2
	}
	if base > maxFan {
		base = maxFan
	}
	fan := make([]int, levels)
	for i := range fan {
		fan[i] = base
	}
	spec := CustomSpec{Fanouts: fan}
	for spec.Elements() < target {
		grew := false
		for i := levels - 1; i >= 0; i-- {
			if fan[i] < maxFan {
				fan[i]++
				grew = true
				break
			}
		}
		if !grew {
			break // every level at the cap; the caller adds a level
		}
	}
	return spec
}

func scaledShape(target int64, height int) CustomSpec {
	levels := height - 1
	if levels == 1 {
		return CustomSpec{Fanouts: []int{int(target) - 1}}
	}
	base := int(math.Pow(float64(target), 1/float64(levels)))
	if base < 2 {
		base = 2
	}
	fan := make([]int, levels)
	for i := range fan {
		fan[i] = base
	}
	spec := CustomSpec{Fanouts: fan}
	// Nudge fan-outs upward round-robin from the deepest level until the
	// total meets the target, mirroring the paper's 41,41,42,42 pattern:
	// increments stay spread across levels, so fan-outs remain
	// near-uniform.
	for i := levels - 1; spec.Elements() < target; {
		fan[i]++
		if i--; i < 0 {
			i = levels - 1
		}
	}
	return spec
}

// Write streams the document to w and returns its statistics.
func (s IBMSpec) Write(w io.Writer) (Stats, error) {
	if s.Height < 1 {
		return Stats{}, fmt.Errorf("gen: height %d out of range", s.Height)
	}
	if s.MaxFanout < 1 {
		return Stats{}, fmt.Errorf("gen: max fan-out %d out of range", s.MaxFanout)
	}
	g := newEmitter(w, s.ElemSize, s.KeyAttr, s.Seed)
	err := g.emitIBM(1, s.Height, s.MaxFanout, s.MaxElements)
	return g.finish(err)
}

// Write streams the document to w and returns its statistics.
func (s CustomSpec) Write(w io.Writer) (Stats, error) {
	if len(s.Fanouts) == 0 {
		return Stats{}, fmt.Errorf("gen: custom spec needs at least one level of fan-outs")
	}
	for _, f := range s.Fanouts {
		if f < 1 {
			return Stats{}, fmt.Errorf("gen: fan-out %d out of range", f)
		}
	}
	g := newEmitter(w, s.ElemSize, s.KeyAttr, s.Seed)
	err := g.emitCustom(1, s.Fanouts)
	return g.finish(err)
}

// emitter streams elements and tracks statistics.
type emitter struct {
	w        io.Writer
	rng      *rand.Rand
	keyAttr  string
	filler   string
	elements int64
	bytes    int64
	maxFan   int
	height   int
	err      error
}

func newEmitter(w io.Writer, elemSize int, keyAttr string, seed int64) *emitter {
	if elemSize <= 0 {
		elemSize = DefaultElemSize
	}
	if keyAttr == "" {
		keyAttr = DefaultKeyAttr
	}
	e := &emitter{w: w, rng: rand.New(rand.NewSource(seed)), keyAttr: keyAttr}
	// Element emission overhead besides the filler attribute:
	//   <nNN key="dddddddd" pad="..."></nNN>
	// Tag ~4, attrs ~22, end tag ~7, pad attr syntax ~8. Pad the filler
	// so total ≈ elemSize.
	overhead := 4 + 2 + len(keyAttr) + 3 + keyWidth + 2 + 7 + 4 + 2 + 7
	pad := elemSize - overhead
	if pad < 0 {
		pad = 0
	}
	e.filler = strings.Repeat("x", pad)
	return e
}

// keyWidth is the fixed digit width of generated sort keys.
const keyWidth = 8

func (e *emitter) print(s string) {
	if e.err != nil {
		return
	}
	n, err := io.WriteString(e.w, s)
	e.bytes += int64(n)
	e.err = err
}

func (e *emitter) open(level int) {
	e.elements++
	if level > e.height {
		e.height = level
	}
	e.print(fmt.Sprintf(`<n%d %s="%0*d" pad="%s">`,
		level, e.keyAttr, keyWidth, e.rng.Intn(100000000), e.filler))
}

func (e *emitter) close(level int) {
	e.print(fmt.Sprintf("</n%d>", level))
}

func (e *emitter) observeFanout(f int) {
	if f > e.maxFan {
		e.maxFan = f
	}
}

func (e *emitter) emitIBM(level, height, maxFan int, maxElements int64) error {
	e.open(level)
	if level < height {
		f := 1 + e.rng.Intn(maxFan)
		emitted := 0
		for i := 0; i < f; i++ {
			if maxElements > 0 && e.elements >= maxElements {
				break
			}
			if err := e.emitIBM(level+1, height, maxFan, maxElements); err != nil {
				return err
			}
			emitted++
		}
		e.observeFanout(emitted)
	}
	e.close(level)
	return e.err
}

func (e *emitter) emitCustom(level int, fanouts []int) error {
	e.open(level)
	if len(fanouts) > 0 {
		f := fanouts[0]
		e.observeFanout(f)
		for i := 0; i < f; i++ {
			if err := e.emitCustom(level+1, fanouts[1:]); err != nil {
				return err
			}
		}
	}
	e.close(level)
	return e.err
}

func (e *emitter) finish(err error) (Stats, error) {
	if err == nil {
		err = e.err
	}
	return Stats{
		Elements:  e.elements,
		Bytes:     e.bytes,
		MaxFanout: e.maxFan,
		Height:    e.height,
	}, err
}
