// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (Section 5): workload generation,
// parameter sweeps over both algorithms, and table/series formatting that
// matches the paper's axes. The per-experiment index lives in DESIGN.md;
// measured-vs-paper comparisons live in EXPERIMENTS.md.
//
// The harness measures what the paper measures — block I/Os under an
// enforced memory budget — and converts them to "sort time" through a
// 2003-era disk cost model so that curve *shapes* (who wins, by what
// factor, where the crossovers and pass transitions fall) are comparable
// with the published figures even though the absolute scale is different.
// Wall-clock time on the host is reported alongside.
package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"nexsort/internal/core"
	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/gen"
	"nexsort/internal/keys"
)

// Workload is a generated document on disk plus the criterion to sort it
// by. Create with GenerateWorkload, remove with Close.
type Workload struct {
	Path      string
	Stats     gen.Stats
	Criterion *keys.Criterion

	owned bool
}

// Spec is anything that can stream a document (gen.IBMSpec, gen.CustomSpec).
type Spec interface {
	Write(w io.Writer) (gen.Stats, error)
}

// GenerateWorkload streams a spec into a file under dir and pairs it with
// the standard experiment criterion: order every element by the generated
// key attribute.
func GenerateWorkload(spec Spec, dir, name string) (*Workload, error) {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	stats, err := spec.Write(f)
	if closeErr := f.Close(); err == nil {
		err = closeErr
	}
	if err != nil {
		os.Remove(path)
		return nil, err
	}
	return &Workload{
		Path:      path,
		Stats:     stats,
		Criterion: &keys.Criterion{Rules: []keys.Rule{{Tag: "", Source: keys.ByAttr(gen.DefaultKeyAttr)}}, KeyCap: 16},
		owned:     true,
	}, nil
}

// Close removes the workload file.
func (w *Workload) Close() error {
	if !w.owned {
		return nil
	}
	w.owned = false
	return os.Remove(w.Path)
}

// Algo selects the algorithm under test.
type Algo int

// Algorithms.
const (
	AlgoNEXSORT Algo = iota
	AlgoMergeSort
)

// String names the algorithm as the paper's figures do.
func (a Algo) String() string {
	if a == AlgoNEXSORT {
		return "NeXSort"
	}
	return "Merge Sort"
}

// Params configures one measured run.
type Params struct {
	Algo       Algo
	BlockSize  int
	MemBlocks  int
	Threshold  int // NEXSORT only; 0 = 2 blocks
	DepthLimit int
	Compact    bool
	Degenerate bool
	ScratchDir string // empty = in-memory scratch device
	// Parallelism is the run's worker bound (0 = DefaultParallelism, then
	// GOMAXPROCS; 1 = sequential). Block-transfer counts are invariant
	// under this knob — only WallSeconds moves — so every paper curve can
	// be regenerated at any setting.
	Parallelism int
	// CompressSpill routes scratch blocks through the spill codec. The
	// counted logical block transfers — every paper curve — are invariant
	// under this knob; only the physical byte ledger and WallSeconds move.
	CompressSpill bool
	// ReadAhead and WriteBehind set the run's overlapped-I/O pipeline
	// depths (0 = DefaultReadAhead/DefaultWriteBehind, which default to
	// synchronous). Like Parallelism, the counted logical block transfers
	// are invariant under these knobs — only WallSeconds moves.
	ReadAhead   int
	WriteBehind int
	// MergeParallel range-partitions every external sort's final merge
	// into up to this many concurrent key ranges (0 = serial). The output
	// and the counted logical block transfers are invariant under this
	// knob; it only adds the tiny fence-index side streams.
	MergeParallel int
}

// Result is one measured run.
type Result struct {
	Params   Params
	Elements int64

	TotalIOs    int64
	IOs         map[string]em.IOCount
	SimSeconds  float64
	WallSeconds float64

	// Passes is the number of passes over the record data for the
	// merge-sort baseline (run formation + merge passes); 0 for NEXSORT.
	Passes int
	// NEXSORT detail (zero for the baseline).
	SubtreeSorts   int
	InternalSorts  int
	ExternalSorts  int
	IncompleteRuns int
	RunBlocks      int
	// RecordBytes is the baseline's key-path representation size.
	RecordBytes int64
}

// Hardening is the process-wide spill-hardening configuration applied to
// every experiment environment; cmd/nexbench sets it from flags. Fault-free
// hardening leaves the counted block transfers unchanged, so the paper's
// curves can be regenerated with it on.
var Hardening struct {
	VerifyChecksums bool
	Retry           em.RetryPolicy
	CompressSpill   bool
}

// WrapBackend, when non-nil, wraps every experiment environment's raw
// backend beneath the hardening layers, exactly like em.Config.WrapBackend.
// The overlap experiment uses it to inject simulated device latency
// (em.LatencyBackend); it is nil in normal runs.
var WrapBackend func(em.Backend) em.Backend

// DefaultParallelism is the process-wide worker bound applied to runs whose
// Params leave Parallelism zero; cmd/nexbench sets it from -parallel. Zero
// defers to the environment default (GOMAXPROCS).
var DefaultParallelism int

// DefaultReadAhead and DefaultWriteBehind are the process-wide overlapped-I/O
// pipeline depths applied to runs whose Params leave them zero; cmd/nexbench
// sets them from -read-ahead/-write-behind. Zero keeps the device synchronous.
var (
	DefaultReadAhead   int
	DefaultWriteBehind int
)

// DefaultMergeParallel is the process-wide final-merge partition count
// applied to runs whose Params leave MergeParallel zero; cmd/nexbench sets
// it from -merge-parallel. Zero keeps the final merge serial.
var DefaultMergeParallel int

// Run sorts the workload once under p, discarding the output document (its
// write I/O is still counted).
func Run(w *Workload, p Params) (*Result, error) {
	parallelism := p.Parallelism
	if parallelism == 0 {
		parallelism = DefaultParallelism
	}
	readAhead := p.ReadAhead
	if readAhead == 0 {
		readAhead = DefaultReadAhead
	}
	writeBehind := p.WriteBehind
	if writeBehind == 0 {
		writeBehind = DefaultWriteBehind
	}
	mergeParallel := p.MergeParallel
	if mergeParallel == 0 {
		mergeParallel = DefaultMergeParallel
	}
	cfg := em.Config{
		BlockSize:       p.BlockSize,
		MemBlocks:       p.MemBlocks,
		ScratchDir:      p.ScratchDir,
		InMemory:        p.ScratchDir == "",
		VerifyChecksums: Hardening.VerifyChecksums,
		Retry:           Hardening.Retry,
		Parallelism:     parallelism,
		CompressSpill:   Hardening.CompressSpill || p.CompressSpill,
		ReadAhead:       readAhead,
		WriteBehind:     writeBehind,
		MergeParallel:   mergeParallel,
		FenceIndex:      mergeParallel > 0,
		WrapBackend:     WrapBackend,
	}
	env, err := em.NewEnv(cfg)
	if err != nil {
		return nil, err
	}
	defer env.Close()

	in, err := os.Open(w.Path)
	if err != nil {
		return nil, err
	}
	defer in.Close()

	res := &Result{Params: p}
	start := time.Now()
	switch p.Algo {
	case AlgoNEXSORT:
		rep, err := core.Sort(env, in, io.Discard, core.Options{
			Criterion:  w.Criterion,
			Threshold:  p.Threshold,
			DepthLimit: p.DepthLimit,
			Compact:    p.Compact,
			Degenerate: p.Degenerate,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: NEXSORT on %s: %w", w.Path, err)
		}
		res.Elements = rep.Elements
		res.SubtreeSorts = rep.SubtreeSorts
		res.InternalSorts = rep.InternalSorts
		res.ExternalSorts = rep.ExternalSorts
		res.IncompleteRuns = rep.IncompleteRuns
		res.RunBlocks = rep.RunBlocks
	case AlgoMergeSort:
		rep, err := extsort.SortXML(env, w.Criterion, in, io.Discard, extsort.XMLOptions{
			DepthLimit: p.DepthLimit,
			Compact:    p.Compact,
		})
		if err != nil {
			return nil, fmt.Errorf("bench: merge sort on %s: %w", w.Path, err)
		}
		res.Elements = rep.Elements
		res.Passes = rep.MergePasses + 1
		res.RecordBytes = rep.RecordBytes
	default:
		return nil, fmt.Errorf("bench: unknown algorithm %d", p.Algo)
	}
	res.WallSeconds = time.Since(start).Seconds()
	res.TotalIOs = env.Stats.TotalIOs()
	res.IOs = env.Stats.Snapshot()
	res.SimSeconds = em.DefaultCostModel().Seconds(res.TotalIOs, p.BlockSize)
	return res, nil
}
