package bench

import (
	"fmt"
	"runtime"

	"nexsort/internal/gen"
)

// The parallel-speedup experiment: not a paper figure (the 2003 testbed is
// a single disk and a single CPU), but the harness's check that the worker
// pool buys wall-clock time without moving the paper's metric. Both
// algorithms sort one document at a ladder of parallelism levels; the
// block-transfer counts must be identical all the way up — the determinism
// guarantee of the concurrency model — while wall-clock time is free to
// improve.

// ParallelConfig parameterizes the sequential-vs-parallel comparison.
type ParallelConfig struct {
	Scale      Scale
	ScratchDir string
	// Levels is the parallelism ladder; nil selects {1, 2, GOMAXPROCS}.
	Levels []int
	Seed   int64
}

// ParallelRow is one (algorithm, parallelism) measurement.
type ParallelRow struct {
	Algo        Algo
	Parallelism int
	Result      *Result
	// Speedup is wall-clock relative to the same algorithm at
	// parallelism 1.
	Speedup float64
	// IOsMatch reports whether the run's total block transfers equal the
	// parallelism-1 run's — the invariant this experiment exists to show.
	IOsMatch bool
}

// Parallel measures both algorithms across the parallelism ladder.
func Parallel(cfg ParallelConfig) ([]ParallelRow, error) {
	levels := cfg.Levels
	if levels == nil {
		levels = []int{1, 2}
		if p := runtime.GOMAXPROCS(0); p > 2 {
			levels = append(levels, p)
		}
	}
	// A bushy document with room in the budget for several concurrent
	// subtree working sets; the same shape family as Figure 5's workload.
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(120000),
		Seed:        cfg.Seed + 11,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "parallel.xml")
	if err != nil {
		return nil, err
	}
	defer w.Close()

	var rows []ParallelRow
	for _, algo := range []Algo{AlgoNEXSORT, AlgoMergeSort} {
		var base *Result
		for _, level := range levels {
			res, err := Run(w, Params{
				Algo:        algo,
				BlockSize:   DefaultBlockSize,
				MemBlocks:   128,
				Compact:     true,
				ScratchDir:  cfg.ScratchDir,
				Parallelism: level,
			})
			if err != nil {
				return nil, fmt.Errorf("bench: %v at parallelism %d: %w", algo, level, err)
			}
			row := ParallelRow{Algo: algo, Parallelism: level, Result: res}
			if base == nil {
				base = res
				row.Speedup = 1
				row.IOsMatch = true
			} else {
				row.Speedup = base.WallSeconds / res.WallSeconds
				row.IOsMatch = res.TotalIOs == base.TotalIOs
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ParallelTable renders the sequential-vs-parallel comparison.
func ParallelTable(rows []ParallelRow) *Table {
	t := &Table{
		Title: "Parallelism — wall-clock speedup at identical block transfers (worker pool bounded by the memory budget)",
		Header: []string{"algorithm", "parallel", "IOs", "IOs=seq", "wall(s)",
			"speedup", "sim(s)"},
	}
	for _, r := range rows {
		match := "yes"
		if !r.IOsMatch {
			match = "NO (bug)"
		}
		t.Rows = append(t.Rows, []string{
			r.Algo.String(), di(r.Parallelism),
			d64(r.Result.TotalIOs), match,
			f3(r.Result.WallSeconds), ratio(r.Speedup),
			f2(r.Result.SimSeconds),
		})
	}
	return t
}
