package bench

import (
	"nexsort/internal/gen"
)

// AblationConfig parameterizes the design-choice ablations.
type AblationConfig struct {
	Scale      Scale
	ScratchDir string
	MemBlocks  int
	Seed       int64
}

// AblationRow is one (document, option set) measurement.
type AblationRow struct {
	Doc      string
	Variant  string
	Result   *Result
	Baseline int64 // plain NEXSORT I/Os on the same document
}

// Ablation measures the two optional Section 3.2 techniques the paper
// discusses — compaction and graceful degeneration — against plain NEXSORT
// on two document shapes:
//
//   - a hierarchical document, where compaction should shave I/Os and
//     degeneration should be neutral;
//
//   - a flat two-level document (the paper's worst case), where the
//     unoptimized algorithm wastes a pass and degeneration recovers it —
//     the paper describes the fix but measures without it, so this table
//     supplies the missing numbers.
func Ablation(cfg AblationConfig) ([]AblationRow, error) {
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 64
	}
	docs := []struct {
		name string
		spec Spec
	}{
		{"hierarchical(h=6)", gen.IBMSpec{Height: 11, MaxFanout: 6, MaxElements: cfg.Scale.n(60000), Seed: cfg.Seed + 1}},
		{"flat(h=2)", gen.CustomSpec{Fanouts: []int{int(cfg.Scale.n(60000)) - 1}, Seed: cfg.Seed + 2}},
	}
	variants := []struct {
		name    string
		compact bool
		degen   bool
	}{
		{"plain", false, false},
		{"+compact", true, false},
		{"+degenerate", false, true},
		{"+both", true, true},
	}

	var rows []AblationRow
	for _, d := range docs {
		w, err := GenerateWorkload(d.spec, cfg.ScratchDir, "ablation-"+d.name+".xml")
		if err != nil {
			return nil, err
		}
		var baseline int64
		for _, v := range variants {
			res, err := Run(w, Params{
				Algo:       AlgoNEXSORT,
				BlockSize:  DefaultBlockSize,
				MemBlocks:  mem,
				Compact:    v.compact,
				Degenerate: v.degen,
				ScratchDir: cfg.ScratchDir,
			})
			if err != nil {
				w.Close()
				return nil, err
			}
			if v.name == "plain" {
				baseline = res.TotalIOs
			}
			rows = append(rows, AblationRow{Doc: d.name, Variant: v.name, Result: res, Baseline: baseline})
		}
		w.Close()
	}
	return rows, nil
}

// AblationTable renders the ablation grid.
func AblationTable(rows []AblationRow) *Table {
	t := &Table{
		Title:  "Ablation — Section 3.2 techniques vs plain NEXSORT",
		Header: []string{"document", "variant", "IOs", "vs plain", "sim(s)", "subtree sorts", "incomplete runs"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Doc, r.Variant,
			d64(r.Result.TotalIOs),
			ratio(float64(r.Result.TotalIOs) / float64(r.Baseline)),
			f2(r.Result.SimSeconds),
			di(r.Result.SubtreeSorts),
			di(r.Result.IncompleteRuns),
		})
	}
	return t
}
