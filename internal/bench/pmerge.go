package bench

import (
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"

	"nexsort/internal/em"
	"nexsort/internal/extsort"
	"nexsort/internal/sortkey"
)

// PMergeConfig parameterizes the range-partitioned merge experiment: the
// sorter kernel driven straight at its merge phase on the file backend,
// sweeping the final-merge partition count under simulated device latency.
type PMergeConfig struct {
	Scale Scale
	// ScratchDir hosts the spill device file. The experiment measures
	// overlap against a real device seam, so the directory is required.
	ScratchDir string
	Seed       int64
	// MemBlocks fixes the sorter's working set (default 256 blocks: at the
	// default block size that forms enough runs to merge-bind the final
	// pass while leaving admission headroom for eight partition workers).
	MemBlocks int
	// BlockSize is the device block size (default 4096: small blocks make
	// the merge transfer-bound, which is the regime the partitioned merge
	// exists for).
	BlockSize int
	// Latency is the simulated per-operation device service time, layered
	// beneath the hardening stack with em.LatencyBackend (default 300µs,
	// matching the overlap experiment). Zero keeps the raw file backend.
	Latency time.Duration
}

// PMergeRow is one measured partition count. Parallel=0 is the serial
// loser-tree baseline; Speedup compares merge-phase wall clock against it.
// Output bytes and the logical ledger are hard-checked, not reported: every
// partition count must produce the serial merge's bytes and count exactly
// its logical block transfers.
type PMergeRow struct {
	// Parallel is the MergeParallel setting (0 = serial baseline).
	Parallel int
	Records  int64
	Runs     int

	TotalIOs          int64
	PartitionedMerges int64
	SplitterSamples   int64
	// MergeSeconds is the final-merge phase's wall clock alone: run
	// formation is flushed and fenced before the clock starts.
	MergeSeconds float64
	// Speedup is the serial merge wall clock over this row's (1.0 for the
	// baseline itself; higher is better).
	Speedup float64
}

// pmergeParallel is the swept partition-count ladder.
var pmergeParallel = []int{0, 1, 2, 4, 8}

// pmergeRecord deterministically generates record i of n: a random-ish
// 16-hex-digit key under a shared prefix (so front-coding and fence keys
// both see realistic structure) plus padding that varies the record length.
func pmergeRecord(rng *rand.Rand, i int64) []byte {
	return []byte(fmt.Sprintf("employee\x00%016x\x00pad-%0*d", rng.Uint64(), 20+i%40, i))
}

// PMerge measures the range-partitioned final merge (DESIGN.md §17): the
// same record workload run-formed identically at every partition count,
// with the clock started only when the merge begins. Two properties are
// enforced rather than reported: the merged record stream must hash
// identically at every partition count (serial baseline included), and the
// logical per-category ledger must be identical across partition counts —
// with the serial baseline differing only by the fence-index side stream.
func PMerge(cfg PMergeConfig) ([]PMergeRow, error) {
	if cfg.ScratchDir == "" {
		return nil, fmt.Errorf("bench: the pmerge experiment measures the file backend and needs a scratch directory")
	}
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 256
	}
	bs := cfg.BlockSize
	if bs == 0 {
		bs = 4096
	}
	latency := cfg.Latency
	if latency == 0 {
		latency = 300 * time.Microsecond
	}
	n := cfg.Scale.n(300000)

	var rows []PMergeRow
	var baseWall float64
	var baseHash uint64
	var baseBytes int64
	var serialLedger, partLedger map[string]logicalIO
	for _, p := range pmergeParallel {
		emCfg := em.Config{
			BlockSize:  bs,
			MemBlocks:  mem,
			ScratchDir: cfg.ScratchDir,
			// The pool holds Parallelism-1 worker slots; one more than the
			// widest partition ladder keeps admission out of the picture —
			// this experiment sweeps the partition count, not the pool. The
			// device is latency-bound, so the workers overlap sleeps even on
			// a single CPU.
			Parallelism:   len(pmergeParallel) + pmergeParallel[len(pmergeParallel)-1],
			MergeParallel: p,
			FenceIndex:    p > 0,
		}
		if latency > 0 {
			emCfg.WrapBackend = func(b em.Backend) em.Backend {
				return em.NewLatencyBackend(b, latency, latency)
			}
		}
		env, err := em.NewEnv(emCfg)
		if err != nil {
			return nil, err
		}
		row, err := pmergeOnce(env, n, cfg.Seed, p)
		env.Close()
		if err != nil {
			return nil, err
		}

		if p == 0 {
			baseWall, baseHash, baseBytes = row.wall, row.hash, row.bytes
			serialLedger = row.ledger
			row.row.Speedup = 1
		} else {
			if row.hash != baseHash || row.bytes != baseBytes {
				return nil, fmt.Errorf("bench: MergeParallel=%d changed the output (%d bytes hash %x, serial %d bytes hash %x)",
					p, row.bytes, row.hash, baseBytes, baseHash)
			}
			// Partitioned rows must match each other exactly, and match the
			// serial baseline on everything but the fence side stream.
			if partLedger == nil {
				partLedger = row.ledger
			} else if err := sameLedger(partLedger, row.ledger); err != nil {
				return nil, fmt.Errorf("bench: MergeParallel=%d moved the logical ledger: %w", p, err)
			}
			noFence := make(map[string]logicalIO, len(row.ledger))
			for cat, c := range row.ledger {
				if cat != em.CatFenceIndex.String() {
					noFence[cat] = c
				}
			}
			if err := sameLedger(serialLedger, noFence); err != nil {
				return nil, fmt.Errorf("bench: MergeParallel=%d moved the non-fence ledger vs serial: %w", p, err)
			}
			if row.wall > 0 {
				row.row.Speedup = baseWall / row.wall
			}
		}
		rows = append(rows, row.row)
	}
	return rows, nil
}

// pmergeOutcome carries one run's row plus the hard-check inputs.
type pmergeOutcome struct {
	row    PMergeRow
	wall   float64
	hash   uint64
	bytes  int64
	ledger map[string]logicalIO
}

// pmergeOnce forms runs, then times Sort() — the merge phase — and drains
// the iterator through a hash.
func pmergeOnce(env *em.Env, n, seed int64, p int) (*pmergeOutcome, error) {
	s, err := extsort.NewKernel(env, em.CatMergeRun, sortkey.KeySeq(), env.Budget.Free())
	if err != nil {
		return nil, err
	}
	defer s.Close()

	rng := rand.New(rand.NewSource(seed + 977))
	for i := int64(0); i < n; i++ {
		if err := s.Add(pmergeRecord(rng, i)); err != nil {
			return nil, err
		}
	}
	if err := s.Flush(); err != nil {
		return nil, err
	}
	runs := s.Runs()

	start := time.Now()
	it, err := s.Sort()
	if err != nil {
		return nil, err
	}
	wall := time.Since(start).Seconds()
	defer it.Close()

	h := fnv.New64a()
	var outBytes int64
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		h.Write(rec)
		outBytes += int64(len(rec))
	}

	snap := env.Stats.Snapshot()
	var total int64
	for _, c := range snap {
		total += c.Reads + c.Writes
	}
	return &pmergeOutcome{
		row: PMergeRow{
			Parallel:          p,
			Records:           n,
			Runs:              runs,
			TotalIOs:          total,
			PartitionedMerges: env.Stats.TotalPartitionedMerges(),
			SplitterSamples:   env.Stats.TotalSplitterSamples(),
			MergeSeconds:      wall,
		},
		wall:   wall,
		hash:   h.Sum64(),
		bytes:  outBytes,
		ledger: logicalLedger(snap),
	}, nil
}

// PMergeTable renders the partitioned-merge experiment.
func PMergeTable(rows []PMergeRow) *Table {
	t := &Table{
		Title:  "Range-partitioned merge — merge-phase wall clock vs partition count on the file backend, simulated device latency (not a paper figure)",
		Header: []string{"merge-parallel", "records", "runs", "total I/Os", "pmerges", "samples", "merge wall(s)", "speedup"},
	}
	for _, r := range rows {
		name := fmt.Sprintf("%d", r.Parallel)
		if r.Parallel == 0 {
			name = "serial"
		}
		t.Rows = append(t.Rows, []string{
			name, d64(r.Records), fmt.Sprintf("%d", r.Runs),
			d64(r.TotalIOs), d64(r.PartitionedMerges), d64(r.SplitterSamples),
			f3(r.MergeSeconds), fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t
}
