package bench

import (
	"fmt"
	"math"

	"nexsort/internal/gen"
	"nexsort/internal/theory"
)

// Model carries the analytic parameters of Section 4 for one
// workload/environment pair, in the paper's notation: N elements, B
// elements per block, m memory blocks, k maximum fan-out, t sort threshold
// (in blocks here).
type Model struct {
	N       int64
	B       float64
	M       int
	K       int
	TBlocks float64
}

// ModelFor derives the analytic model from a workload's statistics and run
// parameters.
func ModelFor(w *Workload, p Params) Model {
	avgElem := float64(w.Stats.Bytes) / float64(w.Stats.Elements)
	t := float64(p.Threshold) / float64(p.BlockSize)
	if p.Threshold == 0 {
		t = 2
	}
	return Model{
		N:       w.Stats.Elements,
		B:       float64(p.BlockSize) / avgElem,
		M:       p.MemBlocks,
		K:       w.Stats.MaxFanout,
		TBlocks: t,
	}
}

// n returns the input size in blocks.
func (m Model) n() float64 { return float64(m.N) / m.B }

// logM returns log base m of x, clamped at zero.
func (m Model) logM(x float64) float64 {
	if x <= 1 || m.M <= 1 {
		return 0
	}
	return math.Log(x) / math.Log(float64(m.M))
}

// LowerBoundIOs evaluates Theorem 4.4's lower bound
// Ω(max{n, n·log_m(k/B)}) with unit constants.
func (m Model) LowerBoundIOs() float64 {
	n := m.n()
	return math.Max(n, n*m.logM(float64(m.K)/m.B))
}

// NEXSORTUpperIOs evaluates Theorem 4.5's upper bound
// O(n + n·log_m(min{kt, N}/B)) with unit constants (t in blocks, so kt/B
// becomes k·t directly in block units).
func (m Model) NEXSORTUpperIOs() float64 {
	n := m.n()
	arg := math.Min(float64(m.K)*m.TBlocks, m.n())
	return n + n*m.logM(arg)
}

// MergeSortIOs evaluates the flat-file bound Θ(n·log_m(n)) with unit
// constants, the baseline's asymptotic cost.
func (m Model) MergeSortIOs() float64 {
	n := m.n()
	return math.Max(n, n*m.logM(n))
}

// BoundsRow is one point of the bounds-check experiment.
type BoundsRow struct {
	Label    string
	Model    Model
	Measured *Result
	// LB, UB and Flat are the three analytic curves (unit constants).
	LB, UB, Flat float64
	// ExactLB is Lemma 4.3's counting bound evaluated in exact big-integer
	// arithmetic for the worst-case document with this N and k, floored at
	// n (any algorithm reads its input — Theorem 4.4's outer max). When
	// k < B the counting term vanishes and the scan term is the bound:
	// the regime where XML sorting is provably scan-cheap.
	ExactLB int64
	// MeasuredOverUB is the empirical constant of Theorem 4.5: measured
	// NEXSORT I/Os divided by the unit-constant upper-bound formula. The
	// theorem holds iff this stays bounded across the grid.
	MeasuredOverUB float64
}

// BoundsConfig parameterizes the bounds check.
type BoundsConfig struct {
	Scale      Scale
	ScratchDir string
	Seed       int64
}

// Bounds validates Theorems 4.4/4.5 empirically: NEXSORT runs over a grid
// of shapes and memory budgets, and its measured I/O count is compared to
// the closed-form bounds. Within a constant factor, measured cost must
// track the upper bound — and the constant must not drift as N, k, or M
// change, which is exactly what "matches the bound up to a constant
// factor" means operationally.
func Bounds(cfg BoundsConfig) ([]BoundsRow, error) {
	type point struct {
		label string
		spec  gen.CustomSpec
		mem   int
	}
	base := cfg.Scale.n(40000)
	var points []point
	for _, sh := range []struct {
		name string
		spec gen.CustomSpec
	}{
		{"wide(k~N^1/2)", gen.CappedShape(base, 1<<20)},
		{"capped(k<=85)", gen.CappedShape(base, 85)},
		{"deep(k<=12)", gen.CappedShape(base, 12)},
	} {
		for _, mem := range []int{12, 32, 128} {
			points = append(points, point{
				label: fmt.Sprintf("%s m=%d", sh.name, mem),
				spec:  sh.spec,
				mem:   mem,
			})
		}
	}

	var rows []BoundsRow
	for i, pt := range points {
		spec := pt.spec
		spec.Seed = cfg.Seed + int64(i)
		w, err := GenerateWorkload(spec, cfg.ScratchDir, fmt.Sprintf("bounds-%d.xml", i))
		if err != nil {
			return nil, err
		}
		params := Params{Algo: AlgoNEXSORT, BlockSize: DefaultBlockSize, MemBlocks: pt.mem, Compact: true, ScratchDir: cfg.ScratchDir}
		res, err := Run(w, params)
		if err != nil {
			w.Close()
			return nil, err
		}
		model := ModelFor(w, params)
		w.Close()
		bElems := int64(model.B)
		if bElems < 1 {
			bElems = 1
		}
		exact := theory.MinIOs(
			theory.MaxOutcomes(model.N, int64(model.K)),
			model.N, bElems, int64(model.M))
		if scan := int64(model.n()); exact < scan {
			exact = scan
		}
		row := BoundsRow{
			Label:    pt.label,
			Model:    model,
			Measured: res,
			LB:       model.LowerBoundIOs(),
			UB:       model.NEXSORTUpperIOs(),
			Flat:     model.MergeSortIOs(),
			ExactLB:  exact,
		}
		row.MeasuredOverUB = float64(res.TotalIOs) / row.UB
		rows = append(rows, row)
	}
	return rows, nil
}
