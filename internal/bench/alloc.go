package bench

import (
	"testing"

	"nexsort/internal/gen"
)

// AllocConfig parameterizes the allocation-profile experiment.
type AllocConfig struct {
	Scale      Scale
	ScratchDir string
	// MemBlocks fixes the memory budget (default 48 blocks, the Figure 6
	// setting).
	MemBlocks int
	Seed      int64
}

// AllocRow is one measured pipeline: a complete sort of the workload run
// under Go's benchmark machinery with allocation tracking on — the
// -benchmem columns (allocs/op, B/op) for an "op" that is one whole sort.
type AllocRow struct {
	Name        string
	Elements    int64
	NsPerOp     int64
	AllocsPerOp int64
	BytesPerOp  int64
	// AllocsPerElement normalizes heap churn by input size: with the frame
	// pool recycling every block buffer, this should stay O(1) per node
	// (token/record decode) rather than grow with buffer traffic.
	AllocsPerElement float64
}

// Alloc measures the steady-state heap churn of both sorters end to end.
// It is not a paper experiment: the paper counts block transfers, not
// allocator pressure. It exists because the frame-pool substrate trades
// per-buffer make calls for pooled reuse, and this is the harness-level
// check that the trade actually lands (see DESIGN.md §10). Runs are pinned
// to parallelism 1 so allocs/op is a stable, comparable figure.
func Alloc(cfg AllocConfig) ([]AllocRow, error) {
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 48
	}
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(30000),
		Seed:        cfg.Seed + 9,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "alloc.xml")
	if err != nil {
		return nil, err
	}
	defer w.Close()

	var rows []AllocRow
	for _, algo := range []Algo{AlgoNEXSORT, AlgoMergeSort} {
		var elements int64
		var runErr error
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N && runErr == nil; i++ {
				r, err := Run(w, Params{
					Algo: algo, BlockSize: DefaultBlockSize, MemBlocks: mem,
					Compact: true, ScratchDir: cfg.ScratchDir, Parallelism: 1,
				})
				if err != nil {
					runErr = err
					return
				}
				elements = r.Elements
			}
		})
		if runErr != nil {
			return nil, runErr
		}
		row := AllocRow{
			Name:        algo.String(),
			Elements:    elements,
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		}
		if elements > 0 {
			row.AllocsPerElement = float64(row.AllocsPerOp) / float64(elements)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AllocTable renders the allocation profile.
func AllocTable(rows []AllocRow) *Table {
	t := &Table{
		Title:  "Allocation profile — one op = one complete sort (frame-pool check, not a paper figure)",
		Header: []string{"algorithm", "elements", "ms/op", "allocs/op", "B/op", "allocs/elem"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Name, d64(r.Elements),
			f2(float64(r.NsPerOp) / 1e6),
			d64(r.AllocsPerOp), d64(r.BytesPerOp),
			f3(r.AllocsPerElement),
		})
	}
	return t
}
