package bench

import (
	"fmt"
	"time"

	"nexsort/internal/em"
	"nexsort/internal/gen"
)

// OverlapConfig parameterizes the overlapped-I/O experiment: both
// algorithms against the file-backed scratch device, sweeping the
// read-ahead/write-behind pipeline depths at several parallelism levels.
type OverlapConfig struct {
	Scale Scale
	// ScratchDir hosts the workload and the spill device file. The
	// experiment exists to measure overlap against a real device seam, so
	// the directory is required.
	ScratchDir string
	Seed       int64
	// MemBlocks fixes the memory budget (default 64 blocks: enough to
	// carve the deepest swept pipeline out of and still spill heavily).
	MemBlocks int
	// Latency is the simulated per-operation device service time, layered
	// beneath the hardening stack with em.LatencyBackend (default 300µs —
	// a 2003-era disk's per-block cost at the default block size, the
	// hardware the paper's cost model counts transfers for). Zero keeps
	// the raw file backend, whose microsecond ops leave little to overlap.
	Latency time.Duration
}

// OverlapRow is one measured configuration. Speedup compares against the
// synchronous (depth 0) row with the same algorithm and parallelism; the
// logical ledger is hard-checked, not reported: every depth must count
// exactly the block transfers depth 0 counts.
type OverlapRow struct {
	Algo        string
	Parallelism int
	ReadAhead   int
	WriteBehind int
	Elements    int64

	TotalIOs       int64
	PrefetchHits   int64
	PrefetchWasted int64
	FlushStalls    int64
	WallSeconds    float64
	// Speedup is the synchronous wall clock over this row's (1.0 for the
	// depth-0 rows themselves; higher is better).
	Speedup float64
}

// overlapDepths is the swept (ReadAhead, WriteBehind) grid: the
// synchronous baseline, a shallow pipeline, and a deep one.
var overlapDepths = [][2]int{{0, 0}, {2, 2}, {8, 8}}

// overlapParallelism matches the paralleldiff sweep.
var overlapParallelism = []int{1, 2, 8}

// Overlap measures the asynchronous I/O engine (DESIGN.md §15): the same
// workload sorted by both algorithms at every (Parallelism, ReadAhead,
// WriteBehind) combination on the file backend, under a simulated device
// service time. One property is enforced rather than reported: the logical
// per-category ledger — the paper's counted block transfers — must be
// identical at every pipeline depth to the synchronous run with the same
// algorithm and parallelism. Only wall clock and the overlap counters
// (prefetch hits/waste, flush stalls) may move.
func Overlap(cfg OverlapConfig) ([]OverlapRow, error) {
	if cfg.ScratchDir == "" {
		return nil, fmt.Errorf("bench: the overlap experiment measures the file backend and needs a scratch directory")
	}
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 64
	}
	latency := cfg.Latency
	if latency == 0 {
		latency = 300 * time.Microsecond
	}
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(30000),
		Seed:        cfg.Seed + 15,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "overlap.xml")
	if err != nil {
		return nil, err
	}
	defer w.Close()

	if latency > 0 {
		prev := WrapBackend
		WrapBackend = func(b em.Backend) em.Backend {
			return em.NewLatencyBackend(b, latency, latency)
		}
		defer func() { WrapBackend = prev }()
	}

	var rows []OverlapRow
	for _, algo := range []Algo{AlgoNEXSORT, AlgoMergeSort} {
		for _, par := range overlapParallelism {
			var baseWall float64
			var baseLedger map[string]logicalIO
			for _, depth := range overlapDepths {
				res, err := Run(w, Params{
					Algo:        algo,
					BlockSize:   DefaultBlockSize,
					MemBlocks:   mem,
					ScratchDir:  cfg.ScratchDir,
					Parallelism: par,
					ReadAhead:   depth[0],
					WriteBehind: depth[1],
				})
				if err != nil {
					return nil, err
				}
				row := OverlapRow{
					Algo:        algo.String(),
					Parallelism: par,
					ReadAhead:   depth[0],
					WriteBehind: depth[1],
					Elements:    res.Elements,
					TotalIOs:    res.TotalIOs,
					WallSeconds: res.WallSeconds,
				}
				for _, c := range res.IOs {
					row.PrefetchHits += c.PrefetchHits
					row.PrefetchWasted += c.PrefetchWasted
					row.FlushStalls += c.FlushStalls
				}
				ledger := logicalLedger(res.IOs)
				if depth == overlapDepths[0] {
					baseWall, baseLedger = res.WallSeconds, ledger
					row.Speedup = 1
				} else {
					if err := sameLedger(baseLedger, ledger); err != nil {
						return nil, fmt.Errorf("bench: %v P=%d ra=%d wb=%d: the pipeline moved the logical ledger: %w",
							algo, par, depth[0], depth[1], err)
					}
					if row.WallSeconds > 0 {
						row.Speedup = baseWall / row.WallSeconds
					}
				}
				rows = append(rows, row)
			}
		}
	}
	return rows, nil
}

// logicalIO is the logical projection of one category's ledger: the
// counted block transfers and their bytes, exactly the fields the paper's
// accounting is made of. Physical counters and the overlap counters are
// deliberately absent — those are the pipeline's own traffic and may move
// with depth.
type logicalIO struct {
	Reads, Writes         int64
	ReadBytes, WriteBytes int64
}

// logicalLedger projects the per-category I/O map onto its logical fields.
func logicalLedger(ios map[string]em.IOCount) map[string]logicalIO {
	out := make(map[string]logicalIO, len(ios))
	for cat, c := range ios {
		out[cat] = logicalIO{
			Reads: c.Reads, Writes: c.Writes,
			ReadBytes: c.ReadBytes, WriteBytes: c.WriteBytes,
		}
	}
	return out
}

// sameLedger reports the first category whose logical ledger differs.
func sameLedger(want, got map[string]logicalIO) error {
	for cat, w := range want {
		if g := got[cat]; g != w {
			return fmt.Errorf("category %s: %+v at depth 0, %+v here", cat, w, g)
		}
	}
	for cat := range got {
		if _, ok := want[cat]; !ok && got[cat] != (logicalIO{}) {
			return fmt.Errorf("category %s: absent at depth 0, %+v here", cat, got[cat])
		}
	}
	return nil
}

// OverlapTable renders the overlap experiment.
func OverlapTable(rows []OverlapRow) *Table {
	t := &Table{
		Title:  "Asynchronous I/O engine — wall clock vs pipeline depth on the file backend, simulated device latency (not a paper figure)",
		Header: []string{"algorithm", "P", "read-ahead", "write-behind", "elements", "total I/Os", "pref hits", "pref waste", "flush stalls", "wall(s)", "speedup"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Algo, fmt.Sprintf("%d", r.Parallelism),
			fmt.Sprintf("%d", r.ReadAhead), fmt.Sprintf("%d", r.WriteBehind),
			d64(r.Elements), d64(r.TotalIOs),
			d64(r.PrefetchHits), d64(r.PrefetchWasted), d64(r.FlushStalls),
			f3(r.WallSeconds), fmt.Sprintf("%.2fx", r.Speedup),
		})
	}
	return t
}
