package bench

import (
	"strings"
	"testing"

	"nexsort/internal/gen"
)

// testScale keeps unit tests fast; the real experiments run at Scale 1+
// through cmd/nexbench and the top-level benchmarks.
const testScale = Scale(0.04)

func TestWorkloadLifecycle(t *testing.T) {
	dir := t.TempDir()
	w, err := GenerateWorkload(gen.CustomSpec{Fanouts: []int{5, 5}, Seed: 1}, dir, "w.xml")
	if err != nil {
		t.Fatal(err)
	}
	if w.Stats.Elements != 31 {
		t.Errorf("Elements = %d", w.Stats.Elements)
	}
	res, err := Run(w, Params{Algo: AlgoNEXSORT, BlockSize: 256, MemBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elements != 31 || res.TotalIOs == 0 {
		t.Errorf("run result: %+v", res)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(w, Params{Algo: AlgoNEXSORT, BlockSize: 256, MemBlocks: 16}); err == nil {
		t.Error("run after Close should fail (file removed)")
	}
}

func TestBothAlgosAgreeOnElements(t *testing.T) {
	dir := t.TempDir()
	w, err := GenerateWorkload(gen.CappedShape(1500, 20), dir, "agree.xml")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	nex, err := Run(w, Params{Algo: AlgoNEXSORT, BlockSize: 512, MemBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	ms, err := Run(w, Params{Algo: AlgoMergeSort, BlockSize: 512, MemBlocks: 16})
	if err != nil {
		t.Fatal(err)
	}
	if nex.Elements != ms.Elements || nex.Elements != w.Stats.Elements {
		t.Errorf("element counts: nex=%d ms=%d gen=%d", nex.Elements, ms.Elements, w.Stats.Elements)
	}
	if ms.Passes < 1 {
		t.Errorf("merge sort passes = %d", ms.Passes)
	}
}

func TestFig5Shape(t *testing.T) {
	rows, w, err := Fig5(Fig5Config{Scale: 0.2, ScratchDir: "", MemBlocks: []int{24, 48, 256}})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper finding 1: merge sort slower at every memory size.
	for _, r := range rows {
		if r.Merge.TotalIOs <= r.Nex.TotalIOs {
			t.Errorf("mem=%d: merge sort not slower (%d vs %d IOs)",
				r.MemBlocks, r.Merge.TotalIOs, r.Nex.TotalIOs)
		}
	}
	// Paper finding 2: as memory shrinks, NEXSORT barely moves while
	// merge sort climbs: the spread between the two widens.
	low, high := rows[0], rows[len(rows)-1]
	spreadLow := float64(low.Merge.TotalIOs) / float64(low.Nex.TotalIOs)
	spreadHigh := float64(high.Merge.TotalIOs) / float64(high.Nex.TotalIOs)
	if spreadLow <= spreadHigh {
		t.Errorf("spread did not widen at low memory: %.2f (m=%d) vs %.2f (m=%d)",
			spreadLow, low.MemBlocks, spreadHigh, high.MemBlocks)
	}
	// NEXSORT near-flat: low-memory cost within 2x of high-memory cost.
	if float64(low.Nex.TotalIOs) > 2*float64(high.Nex.TotalIOs) {
		t.Errorf("NEXSORT too memory-sensitive: %d @m=%d vs %d @m=%d",
			low.Nex.TotalIOs, low.MemBlocks, high.Nex.TotalIOs, high.MemBlocks)
	}
	var sb strings.Builder
	if err := Fig5Table(rows).Fprint(&sb); err != nil || !strings.Contains(sb.String(), "mem(KiB)") {
		t.Errorf("table render: %v\n%s", err, sb.String())
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := Fig6(Fig6Config{Scale: testScale, Sizes: []int64{1000, 4000, 16000}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// Paper finding: NEXSORT linear in input size — I/Os per element
	// roughly constant across a 16x size range.
	perElemFirst := float64(rows[0].Nex.TotalIOs) / float64(rows[0].Elements)
	perElemLast := float64(rows[len(rows)-1].Nex.TotalIOs) / float64(rows[len(rows)-1].Elements)
	if perElemLast > perElemFirst*1.5 {
		t.Errorf("NEXSORT superlinear: %.4f -> %.4f IOs/element", perElemFirst, perElemLast)
	}
	// Merge sort's passes grow with input size.
	if rows[len(rows)-1].Merge.Passes < rows[0].Merge.Passes {
		t.Errorf("merge passes shrank with size: %d -> %d",
			rows[0].Merge.Passes, rows[len(rows)-1].Merge.Passes)
	}
	var sb strings.Builder
	if err := Fig6Table(rows).Fprint(&sb); err != nil {
		t.Error(err)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(Fig7Config{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("%d rows, want heights 2-6", len(rows))
	}
	// Paper finding 1: on the flat two-level input, unoptimized NEXSORT
	// loses to merge sort.
	if rows[0].Height != 2 || rows[0].Nex.TotalIOs <= rows[0].Merge.TotalIOs {
		t.Errorf("height 2: NEXSORT should lose (%d vs %d IOs)",
			rows[0].Nex.TotalIOs, rows[0].Merge.TotalIOs)
	}
	// Paper finding 2: past the critical height NEXSORT wins clearly.
	deepest := rows[len(rows)-1]
	if deepest.Nex.TotalIOs >= deepest.Merge.TotalIOs {
		t.Errorf("height %d: NEXSORT should win (%d vs %d IOs)",
			deepest.Height, deepest.Nex.TotalIOs, deepest.Merge.TotalIOs)
	}
	var sb strings.Builder
	if err := Fig7Table(rows).Fprint(&sb); err != nil {
		t.Error(err)
	}
}

func TestThresholdShape(t *testing.T) {
	rows, err := Threshold(ThresholdConfig{Scale: testScale, ThresholdBlocks: []float64{0.25, 2, 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	// The U-shape: the paper's recommended t=2 blocks beats both a tiny
	// and a huge threshold.
	mid := rows[1].Nex.TotalIOs
	if rows[0].Nex.SubtreeSorts <= rows[1].Nex.SubtreeSorts {
		t.Errorf("tiny threshold should cause more subtree sorts: %d vs %d",
			rows[0].Nex.SubtreeSorts, rows[1].Nex.SubtreeSorts)
	}
	if rows[2].Nex.TotalIOs <= mid {
		t.Errorf("huge threshold should cost more I/O: %d vs %d", rows[2].Nex.TotalIOs, mid)
	}
	var sb strings.Builder
	if err := ThresholdTable(rows).Fprint(&sb); err != nil {
		t.Error(err)
	}
}

func TestBoundsShape(t *testing.T) {
	rows, err := Bounds(BoundsConfig{Scale: testScale})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows", len(rows))
	}
	// Theorem 4.5 empirically: the measured/UB constant stays within a
	// modest band across the whole grid — no drift with k, N, or m.
	minC, maxC := rows[0].MeasuredOverUB, rows[0].MeasuredOverUB
	for _, r := range rows {
		if r.MeasuredOverUB <= 0 {
			t.Errorf("%s: nonpositive ratio", r.Label)
		}
		if r.MeasuredOverUB < minC {
			minC = r.MeasuredOverUB
		}
		if r.MeasuredOverUB > maxC {
			maxC = r.MeasuredOverUB
		}
		if r.UB < r.LB {
			t.Errorf("%s: UB %f below LB %f", r.Label, r.UB, r.LB)
		}
	}
	if maxC > 12*minC {
		t.Errorf("constant drifts too much: [%.2f, %.2f]", minC, maxC)
	}
	var sb strings.Builder
	if err := BoundsTable(rows).Fprint(&sb); err != nil {
		t.Error(err)
	}
}

func TestTable1(t *testing.T) {
	rows, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("%d rows, want 9 (Table 1)", len(rows))
	}
	if rows[0].Path != "/" || rows[0].Content != "<company>" {
		t.Errorf("first row = %+v", rows[0])
	}
	if rows[5].Path != "/AC/Durham/323/name" || rows[5].Content != "<name>Smith" {
		t.Errorf("name row = %+v", rows[5])
	}
	var sb strings.Builder
	if err := Table1Render(rows).Fprint(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "/AC/Durham/323/phone") {
		t.Errorf("table output:\n%s", sb.String())
	}
}

func TestTable2(t *testing.T) {
	paper, scaled := Table2(testScale)
	if len(paper) != 5 || len(scaled) != 5 {
		t.Fatalf("lengths %d, %d", len(paper), len(scaled))
	}
	if paper[1].Elements() != 3005023 {
		t.Errorf("paper height-3 = %d", paper[1].Elements())
	}
	var sb strings.Builder
	if err := Table2Render(paper, scaled).Fprint(&sb); err != nil {
		t.Error(err)
	}
	if !strings.Contains(sb.String(), "1733") {
		t.Errorf("table output:\n%s", sb.String())
	}
}

func TestAblationShape(t *testing.T) {
	rows, err := Ablation(AblationConfig{Scale: 0.05, MemBlocks: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 { // 2 documents x 4 variants
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]*Result{}
	for _, r := range rows {
		byKey[r.Doc+"/"+r.Variant] = r.Result
	}
	// Degeneration must cut incomplete runs on the flat document and
	// reduce its I/O relative to plain.
	flatPlain := byKey["flat(h=2)/plain"]
	flatDegen := byKey["flat(h=2)/+degenerate"]
	if flatDegen.IncompleteRuns == 0 {
		t.Error("no incomplete runs cut on the flat document")
	}
	if flatDegen.TotalIOs >= flatPlain.TotalIOs {
		t.Errorf("degeneration did not help the flat document: %d vs %d",
			flatDegen.TotalIOs, flatPlain.TotalIOs)
	}
	// Compaction must not hurt.
	hPlain := byKey["hierarchical(h=6)/plain"]
	hCompact := byKey["hierarchical(h=6)/+compact"]
	if hCompact.TotalIOs > hPlain.TotalIOs {
		t.Errorf("compaction increased I/O: %d vs %d", hCompact.TotalIOs, hPlain.TotalIOs)
	}
	var sb strings.Builder
	if err := AblationTable(rows).Fprint(&sb); err != nil || !strings.Contains(sb.String(), "+degenerate") {
		t.Errorf("table render: %v", err)
	}
}

func TestSpillShape(t *testing.T) {
	rows, err := Spill(SpillConfig{Scale: 0.2, ScratchDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 { // 2 algorithms x codec off/on
		t.Fatalf("%d rows", len(rows))
	}
	byKey := map[string]SpillRow{}
	for _, r := range rows {
		key := r.Algo + "/off"
		if r.Compress {
			key = r.Algo + "/on"
		}
		byKey[key] = r
	}
	for _, algo := range []Algo{AlgoNEXSORT, AlgoMergeSort} {
		off, on := byKey[algo.String()+"/off"], byKey[algo.String()+"/on"]
		if off.PhysicalBytes == 0 || on.PhysicalBytes == 0 {
			t.Fatalf("%v: no physical scratch traffic measured", algo)
		}
		// The acceptance criterion: the key-path spill data compresses at
		// least 2x — written bytes, so rereads can't pad the ratio.
		if on.PhysicalWriteBytes*2 > off.PhysicalWriteBytes {
			t.Errorf("%v: physical write bytes %d compressed vs %d plain; want at least a 2x reduction",
				algo, on.PhysicalWriteBytes, off.PhysicalWriteBytes)
		}
		if off.TotalIOs != on.TotalIOs {
			t.Errorf("%v: codec moved the counted block transfers: %d vs %d", algo, off.TotalIOs, on.TotalIOs)
		}
	}
	var sb strings.Builder
	if err := SpillTable(rows).Fprint(&sb); err != nil || !strings.Contains(sb.String(), "front+flate") {
		t.Errorf("table render: %v\n%s", err, sb.String())
	}
}

func TestSpillNeedsScratchDir(t *testing.T) {
	if _, err := Spill(SpillConfig{Scale: 0.1}); err == nil {
		t.Error("in-memory spill experiment should be rejected")
	}
}

func TestAlgoString(t *testing.T) {
	if AlgoNEXSORT.String() != "NeXSort" || AlgoMergeSort.String() != "Merge Sort" {
		t.Error("algo names")
	}
}
