package bench

import (
	"fmt"
	"sort"

	"nexsort/internal/gen"
	"nexsort/internal/keypath"
	"nexsort/internal/keys"
	"nexsort/internal/xmltok"
	"nexsort/internal/xmltree"
)

// Scale multiplies every experiment's input size. 1.0 is the fast default
// (seconds per experiment); the paper's absolute scale would be roughly
// Scale 50-100 with proportionally larger blocks and memory.
//
// All defaults keep the *ratios* that drive the analysis close to the
// paper's regimes: the paper runs 3 M-element documents with 64 KiB blocks
// and 3-32 MB of memory (M/B from 48 to 512, B ≈ 430 elements); we default
// to 4 KiB blocks (B ≈ 27 elements at the standard 150-byte element), so a
// 120 k-element document against 48-512 blocks of memory sits in the same
// n/m band.
type Scale float64

func (s Scale) n(base int64) int64 {
	if s <= 0 {
		s = 1
	}
	return int64(float64(base) * float64(s))
}

// DefaultBlockSize is the experiments' block size.
const DefaultBlockSize = 4096

// fig6FanoutCap preserves the paper's k/B ≈ 0.2 at the 4 KiB block size.
const fig6FanoutCap = 6

// Fig5Config parameterizes the main-memory sweep of Figure 5.
type Fig5Config struct {
	Scale      Scale
	ScratchDir string
	// MemBlocks to sweep; nil selects the default ladder 12..512 blocks
	// (48 KiB - 2 MiB at the 4 KiB default block), mirroring the paper's
	// 3-32 MB at 64 KiB blocks.
	MemBlocks []int
	Seed      int64
}

// Fig5Row is one memory point.
type Fig5Row struct {
	MemBlocks int
	MemBytes  int
	Nex       *Result
	Merge     *Result
}

// Fig5 runs the Figure 5 experiment — "Effect of main memory size": one
// document, both algorithms, a ladder of memory budgets. The paper's
// findings to reproduce: merge sort is uniformly slower (13-27% there);
// NEXSORT's cost barely moves as memory shrinks, while merge sort's climbs
// and jumps where it is forced into extra passes.
func Fig5(cfg Fig5Config) ([]Fig5Row, *Workload, error) {
	mems := cfg.MemBlocks
	if mems == nil {
		// The paper sweeps 3-32 MB at 64 KiB blocks, i.e. M/B from 48 to
		// 512; the same band at the 4 KiB default block.
		mems = []int{24, 32, 48, 64, 96, 128, 192, 256, 384, 512}
	}
	// The paper reuses the sort-threshold experiment's document, produced
	// by the IBM generator with modest fan-outs ("when fan-outs are
	// small, NEXSORT is not very dependent on main memory size" — small k
	// keeps every subtree sort within even the smallest budget).
	// Height 11 with mean fan-out 3.5 makes the element cap bind, so the
	// document's size tracks Scale while k stays small.
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(120000),
		Seed:        cfg.Seed + 5,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "fig5.xml")
	if err != nil {
		return nil, nil, err
	}

	var rows []Fig5Row
	for _, m := range mems {
		row := Fig5Row{MemBlocks: m, MemBytes: m * DefaultBlockSize}
		if row.Nex, err = Run(w, Params{Algo: AlgoNEXSORT, BlockSize: DefaultBlockSize, MemBlocks: m, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, nil, err
		}
		if row.Merge, err = Run(w, Params{Algo: AlgoMergeSort, BlockSize: DefaultBlockSize, MemBlocks: m, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, nil, err
		}
		rows = append(rows, row)
	}
	return rows, w, nil
}

// Fig6Config parameterizes the input-size sweep of Figure 6.
type Fig6Config struct {
	Scale      Scale
	ScratchDir string
	// Sizes in elements; nil selects the default geometric ladder.
	Sizes []int64
	// MemBlocks fixes the memory budget (default 16 blocks = 64 KiB,
	// the analogue of the paper's 3 MB against its far larger inputs).
	MemBlocks int
	Seed      int64
}

// Fig6Row is one input size.
type Fig6Row struct {
	Elements int64
	Stats    gen.Stats
	Nex      *Result
	Merge    *Result
}

// Fig6 runs the Figure 6 experiment — "Effect of input size with constant
// maximum fan-out": a series of documents growing ~100x with a constant
// fan-out cap, both algorithms at a small fixed memory. The findings to
// reproduce: NEXSORT grows linearly in input size (its log factor
// log_{M/B}(kt/B) does not depend on N); merge sort grows superlinearly,
// with visible jumps where log_{M/B}(N/B) crosses to an extra pass.
//
// The paper caps fan-out at 85 against B ≈ 430 elements per block, so
// k/B ≈ 0.2 — the regime where every subtree sort fits in memory and the
// XML lower bound degenerates to a scan. We preserve that ratio at our
// block size: k ≤ 6 against B ≈ 27.
func Fig6(cfg Fig6Config) ([]Fig6Row, error) {
	sizes := cfg.Sizes
	if sizes == nil {
		sizes = []int64{
			cfg.Scale.n(4000), cfg.Scale.n(12000), cfg.Scale.n(40000),
			cfg.Scale.n(120000), cfg.Scale.n(400000),
		}
	}
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 48 // the paper's 3 MB at 64 KiB blocks
	}
	var rows []Fig6Row
	for i, n := range sizes {
		spec := gen.CappedShape(n, fig6FanoutCap)
		spec.Seed = cfg.Seed + int64(i)
		w, err := GenerateWorkload(spec, cfg.ScratchDir, fmt.Sprintf("fig6-%d.xml", n))
		if err != nil {
			return nil, err
		}
		row := Fig6Row{Elements: spec.Elements(), Stats: w.Stats}
		if row.Nex, err = Run(w, Params{Algo: AlgoNEXSORT, BlockSize: DefaultBlockSize, MemBlocks: mem, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, err
		}
		if row.Merge, err = Run(w, Params{Algo: AlgoMergeSort, BlockSize: DefaultBlockSize, MemBlocks: mem, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, err
		}
		w.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig7Config parameterizes the tree-shape sweep of Figure 7 / Table 2.
type Fig7Config struct {
	Scale      Scale
	ScratchDir string
	// MemBlocks fixes the memory budget (default 64 blocks = 256 KiB,
	// the analogue of the paper's 4 MB).
	MemBlocks int
	Seed      int64
}

// Fig7Row is one input shape (Table 2 row + Figure 7 points).
type Fig7Row struct {
	Height   int
	Fanouts  []int
	Elements int64
	Nex      *Result
	Merge    *Result
}

// Fig7 runs the tree-shape experiment — Table 2's five document shapes
// (heights 2-6, near-constant size) and Figure 7's timings over them. The
// findings to reproduce: at height 2 (a flat file) NEXSORT — without the
// degeneration optimization, exactly like the paper's implementation — is
// worse than merge sort; past the critical height the fan-out drops enough
// for subtree sorts to fit in memory and NEXSORT wins decisively; merge
// sort degrades slowly with height as key paths lengthen.
func Fig7(cfg Fig7Config) ([]Fig7Row, error) {
	mem := cfg.MemBlocks
	if mem == 0 {
		// The paper's 4 MB at 64 KiB blocks; sized so the height-4
		// shape's level-2 subtrees fit in the sort area (f² elements just
		// under memory), the same relationship the paper's Table 2
		// shapes have to its 4 MB.
		mem = 96
	}
	specs := gen.ScaledShapeSeries(cfg.Scale.n(100000), 6)
	var rows []Fig7Row
	for i, spec := range specs {
		spec.Seed = cfg.Seed + int64(i)
		w, err := GenerateWorkload(spec, cfg.ScratchDir, fmt.Sprintf("fig7-h%d.xml", i+2))
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Height: i + 2, Fanouts: spec.Fanouts, Elements: spec.Elements()}
		if row.Nex, err = Run(w, Params{Algo: AlgoNEXSORT, BlockSize: DefaultBlockSize, MemBlocks: mem, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, err
		}
		if row.Merge, err = Run(w, Params{Algo: AlgoMergeSort, BlockSize: DefaultBlockSize, MemBlocks: mem, Compact: true, ScratchDir: cfg.ScratchDir}); err != nil {
			return nil, err
		}
		w.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// ThresholdConfig parameterizes the sort-threshold sweep (discussed in
// Section 5, curve omitted from the paper for space).
type ThresholdConfig struct {
	Scale      Scale
	ScratchDir string
	// Thresholds in block multiples; nil selects {1/2, 1, 2, 4, 8, 16, 32}.
	ThresholdBlocks []float64
	MemBlocks       int
	Seed            int64
}

// ThresholdRow is one threshold point.
type ThresholdRow struct {
	Threshold float64 // in blocks
	Nex       *Result
}

// Threshold runs the sort-threshold experiment: the same document under a
// ladder of t values. The paper's (unshown) finding to reproduce is the
// U-shape: a tiny threshold causes many small sorts whose per-run overhead
// dominates; an oversized threshold forces multi-level subtrees into
// external sorts that ignore the structure; "roughly twice the block size
// works well for most inputs".
func Threshold(cfg ThresholdConfig) ([]ThresholdRow, error) {
	factors := cfg.ThresholdBlocks
	if factors == nil {
		factors = []float64{0.5, 1, 2, 4, 8, 16, 32}
	}
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 24
	}
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(120000),
		Seed:        cfg.Seed + 5,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "threshold.xml")
	if err != nil {
		return nil, err
	}
	defer w.Close()

	var rows []ThresholdRow
	for _, f := range factors {
		t := int(f * DefaultBlockSize)
		if t < 1 {
			t = 1
		}
		res, err := Run(w, Params{Algo: AlgoNEXSORT, BlockSize: DefaultBlockSize, MemBlocks: mem, Threshold: t, Compact: true, ScratchDir: cfg.ScratchDir})
		if err != nil {
			return nil, err
		}
		rows = append(rows, ThresholdRow{Threshold: f, Nex: res})
	}
	return rows, nil
}

// Table2 returns the paper's Table 2 verbatim (full scale) alongside the
// scaled shapes the Figure 7 run actually uses.
func Table2(scale Scale) (paper []gen.CustomSpec, scaled []gen.CustomSpec) {
	return gen.Table2Spec(), gen.ScaledShapeSeries(scale.n(120000), 6)
}

// Table1 reproduces the paper's Table 1: the key-path representation of
// document D1 from Figure 1, sorted.
func Table1() ([]keypath.Row, error) {
	const d1 = `<company>
  <region name="NE"/>
  <region name="AC">
    <branch name="Durham">
      <employee ID="454"/>
      <employee ID="323"><name>Smith</name><phone>5552345</phone></employee>
    </branch>
    <branch name="Atlanta"/>
  </region>
</company>`
	crit := &keys.Criterion{Rules: []keys.Rule{
		{Tag: "region", Source: keys.ByAttr("name")},
		{Tag: "branch", Source: keys.ByAttr("name")},
		{Tag: "employee", Source: keys.ByAttr("ID")},
		{Tag: "", Source: keys.ByTag()},
	}}
	tree, err := xmltree.ParseString(d1)
	if err != nil {
		return nil, err
	}
	annot := keys.NewAnnotator(crit, nil)
	extract := keypath.NewExtractor()
	var recs []keypath.Record
	err = tree.EmitTokens(func(tok xmltok.Token) error {
		if tok.Kind == xmltok.KindStart {
			tok.HasKey = false
		}
		atok, err := annot.Annotate(tok)
		if err != nil {
			return err
		}
		rec, ok, err := extract.OnToken(atok)
		if err != nil {
			return err
		}
		if ok {
			recs = append(recs, rec)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Compare(recs[j]) < 0 })
	return keypath.FormatTable(recs), nil
}
