package bench

import (
	"fmt"
	"io"
	"strings"

	"nexsort/internal/gen"
	"nexsort/internal/keypath"
)

// Table is a rendered experiment: a title, a header, and formatted rows.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Fprint writes the table with aligned columns.
func (t *Table) Fprint(w io.Writer) error {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title + "\n")
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(fmt.Sprintf("%-*s", widths[i], cell))
		}
		sb.WriteString("\n")
	}
	line(t.Header)
	rule := make([]string, len(t.Header))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	line(rule)
	for _, row := range t.Rows {
		line(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func f2(v float64) string    { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string    { return fmt.Sprintf("%.3f", v) }
func d64(v int64) string     { return fmt.Sprintf("%d", v) }
func di(v int) string        { return fmt.Sprintf("%d", v) }
func ratio(v float64) string { return fmt.Sprintf("%.2fx", v) }

// Fig5Table renders the Figure 5 series.
func Fig5Table(rows []Fig5Row) *Table {
	t := &Table{
		Title: "Figure 5 — Effect of main memory size (sort time vs memory)",
		Header: []string{"mem(KiB)", "nexsort IOs", "nexsort sim(s)", "mergesort IOs",
			"mergesort sim(s)", "ms passes", "ms/nex"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			di(r.MemBytes / 1024),
			d64(r.Nex.TotalIOs), f2(r.Nex.SimSeconds),
			d64(r.Merge.TotalIOs), f2(r.Merge.SimSeconds),
			di(r.Merge.Passes),
			ratio(float64(r.Merge.TotalIOs) / float64(r.Nex.TotalIOs)),
		})
	}
	return t
}

// Fig6Table renders the Figure 6 series.
func Fig6Table(rows []Fig6Row) *Table {
	t := &Table{
		Title: "Figure 6 — Effect of input size with constant maximum fan-out (paper k<=85 at B~430; here k<=6 at B~27)",
		Header: []string{"elements", "height", "nexsort IOs", "nexsort sim(s)",
			"mergesort IOs", "mergesort sim(s)", "ms passes", "nex IOs/elem"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			d64(r.Elements), di(r.Stats.Height),
			d64(r.Nex.TotalIOs), f2(r.Nex.SimSeconds),
			d64(r.Merge.TotalIOs), f2(r.Merge.SimSeconds),
			di(r.Merge.Passes),
			f3(float64(r.Nex.TotalIOs) / float64(r.Elements) * 1000),
		})
	}
	return t
}

// Fig7Table renders the Figure 7 series with its Table 2 shape columns.
func Fig7Table(rows []Fig7Row) *Table {
	t := &Table{
		Title: "Figure 7 / Table 2 — Effect of input tree shape",
		Header: []string{"height", "fan-out per level", "elements",
			"nexsort IOs", "mergesort IOs", "nex sim(s)", "ms sim(s)", "winner"},
	}
	for _, r := range rows {
		winner := "nexsort"
		if r.Merge.TotalIOs < r.Nex.TotalIOs {
			winner = "mergesort"
		}
		t.Rows = append(t.Rows, []string{
			di(r.Height), fmt.Sprint(r.Fanouts), d64(r.Elements),
			d64(r.Nex.TotalIOs), d64(r.Merge.TotalIOs),
			f2(r.Nex.SimSeconds), f2(r.Merge.SimSeconds), winner,
		})
	}
	return t
}

// ThresholdTable renders the sort-threshold sweep.
func ThresholdTable(rows []ThresholdRow) *Table {
	t := &Table{
		Title:  "Sort threshold sweep (Section 5; curve omitted in the paper)",
		Header: []string{"t (blocks)", "IOs", "sim(s)", "subtree sorts", "internal", "external"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%g", r.Threshold),
			d64(r.Nex.TotalIOs), f2(r.Nex.SimSeconds),
			di(r.Nex.SubtreeSorts), di(r.Nex.InternalSorts), di(r.Nex.ExternalSorts),
		})
	}
	return t
}

// BoundsTable renders the bounds check.
func BoundsTable(rows []BoundsRow) *Table {
	t := &Table{
		Title: "Theorem 4.4/4.5 check — measured NEXSORT I/Os vs analytic bounds (unit constants)",
		Header: []string{"config", "N", "k", "m", "measured IOs",
			"LB", "exact-LB", "UB", "flat-file", "measured/UB"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{
			r.Label, d64(r.Model.N), di(r.Model.K), di(r.Model.M),
			d64(r.Measured.TotalIOs),
			f2(r.LB), d64(r.ExactLB), f2(r.UB), f2(r.Flat), f2(r.MeasuredOverUB),
		})
	}
	return t
}

// Table1Render renders the key-path representation table.
func Table1Render(rows []keypath.Row) *Table {
	t := &Table{
		Title:  "Table 1 — Key-path representation of D1",
		Header: []string{"Key path", "Element content"},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, []string{r.Path, r.Content})
	}
	return t
}

// Table2Render renders the input shapes, paper-scale and as-run.
func Table2Render(paper, scaled []gen.CustomSpec) *Table {
	t := &Table{
		Title:  "Table 2 — Input document shapes (paper scale | as run)",
		Header: []string{"height", "paper fan-outs", "paper elements", "run fan-outs", "run elements"},
	}
	for i := range paper {
		t.Rows = append(t.Rows, []string{
			di(i + 2), fmt.Sprint(paper[i].Fanouts), d64(paper[i].Elements()),
			fmt.Sprint(scaled[i].Fanouts), d64(scaled[i].Elements()),
		})
	}
	return t
}
