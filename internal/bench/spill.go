package bench

import (
	"fmt"

	"nexsort/internal/gen"
)

// SpillConfig parameterizes the spill-format experiment: both algorithms
// against the file-backed scratch device, with the spill codec off and on.
type SpillConfig struct {
	Scale Scale
	// ScratchDir hosts the workload and the spill device file. The
	// experiment exists to measure bytes crossing a real device, so the
	// directory is required.
	ScratchDir string
	Seed       int64
	// MemBlocks fixes the memory budget (default 48 blocks), small enough
	// that the workload spills heavily.
	MemBlocks int
}

// SpillRow is one measured configuration. The byte columns sum reads and
// writes over the categories that reached the scratch device: the logical
// side is the paper's accounting (block transfers × block size) and must be
// identical with the codec off and on; the physical side is what actually
// crossed the device, and shrinking it is the codec's whole job.
type SpillRow struct {
	Algo     string
	Compress bool
	Elements int64

	LogicalBytes  int64
	PhysicalBytes int64
	// Write-only views of the same ledgers, for the acceptance ratio:
	// every spilled block is written once but may be read many times.
	LogicalWriteBytes  int64
	PhysicalWriteBytes int64
	// Ratio is LogicalBytes / PhysicalBytes — the codec's compression
	// factor on scratch traffic (≈1 with the codec off).
	Ratio       float64
	TotalIOs    int64
	WallSeconds float64
}

// Spill measures the compressed spill format (DESIGN.md §14): the same
// workload sorted by both algorithms with CompressSpill off and on, on the
// file backend. Two properties are enforced here rather than reported: the
// logical ledger must not move when the codec is switched on (the paper's
// counted block transfers are representation-independent), and the codec
// must never inflate physical traffic (the stored-fallback guarantee).
func Spill(cfg SpillConfig) ([]SpillRow, error) {
	if cfg.ScratchDir == "" {
		return nil, fmt.Errorf("bench: the spill experiment measures the file backend and needs a scratch directory")
	}
	mem := cfg.MemBlocks
	if mem == 0 {
		mem = 48
	}
	spec := gen.IBMSpec{
		Height:      11,
		MaxFanout:   6,
		MaxElements: cfg.Scale.n(60000),
		Seed:        cfg.Seed + 14,
	}
	w, err := GenerateWorkload(spec, cfg.ScratchDir, "spill.xml")
	if err != nil {
		return nil, err
	}
	defer w.Close()

	var rows []SpillRow
	for _, algo := range []Algo{AlgoNEXSORT, AlgoMergeSort} {
		var logicalOff int64
		for _, compress := range []bool{false, true} {
			res, err := Run(w, Params{
				Algo:          algo,
				BlockSize:     DefaultBlockSize,
				MemBlocks:     mem,
				ScratchDir:    cfg.ScratchDir,
				CompressSpill: compress,
			})
			if err != nil {
				return nil, err
			}
			row := SpillRow{
				Algo:        algo.String(),
				Compress:    compress,
				Elements:    res.Elements,
				TotalIOs:    res.TotalIOs,
				WallSeconds: res.WallSeconds,
			}
			for _, c := range res.IOs {
				if c.PhysReads == 0 && c.PhysWrites == 0 {
					continue // never reached the scratch device
				}
				row.LogicalBytes += c.ReadBytes + c.WriteBytes
				row.PhysicalBytes += c.PhysReadBytes + c.PhysWriteBytes
				row.LogicalWriteBytes += c.WriteBytes
				row.PhysicalWriteBytes += c.PhysWriteBytes
			}
			if row.PhysicalBytes > 0 {
				row.Ratio = float64(row.LogicalBytes) / float64(row.PhysicalBytes)
			}
			if compress {
				if row.LogicalBytes != logicalOff {
					return nil, fmt.Errorf("bench: %v: the codec moved the logical spill ledger: %d bytes off, %d on",
						algo, logicalOff, row.LogicalBytes)
				}
				if row.PhysicalBytes > logicalOff {
					return nil, fmt.Errorf("bench: %v: compressed physical traffic %d exceeds the logical ledger %d",
						algo, row.PhysicalBytes, logicalOff)
				}
			} else {
				logicalOff = row.LogicalBytes
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SpillTable renders the spill-format experiment.
func SpillTable(rows []SpillRow) *Table {
	t := &Table{
		Title:  "Compressed spill format — logical vs physical scratch traffic on the file backend (not a paper figure)",
		Header: []string{"algorithm", "spill codec", "elements", "logical B", "physical B", "logical wB", "physical wB", "ratio", "total I/Os", "wall(s)"},
	}
	for _, r := range rows {
		codec := "off"
		if r.Compress {
			codec = "front+flate"
		}
		t.Rows = append(t.Rows, []string{
			r.Algo, codec, d64(r.Elements),
			d64(r.LogicalBytes), d64(r.PhysicalBytes),
			d64(r.LogicalWriteBytes), d64(r.PhysicalWriteBytes),
			ratio(r.Ratio), d64(r.TotalIOs), f3(r.WallSeconds),
		})
	}
	return t
}
