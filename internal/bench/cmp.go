package bench

import (
	"bytes"
	"container/heap"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"math/rand"
	"slices"
	"testing"

	"nexsort/internal/keypath"
	"nexsort/internal/sortkey"
)

// CmpConfig parameterizes the comparison-kernel experiment.
type CmpConfig struct {
	Scale Scale
	Seed  int64
	// Runs is the merge fan-in k (default 16).
	Runs int
}

// CmpRow is one measured comparison path. For the comparator rows an op is
// one record comparison; for the merge rows an op is one full k-way merge,
// with Comparisons the comparator invocations of a single merge and Bound
// the k-1 + (n+k)·⌈log₂k⌉ tournament-tree budget (0 where not applicable).
type CmpRow struct {
	Name        string
	Records     int64
	Runs        int
	NsPerOp     int64
	AllocsPerOp int64
	BytesPerOp  int64
	Comparisons int64
	Bound       int64
}

// legacyCompareEncoded is the comparator this experiment exists to retire:
// the pre-kernel keypath.CompareEncoded, which materialized every path key
// as a string (one allocation per component per comparison) on the sort
// hot path. Kept here verbatim as the measured baseline.
func legacyCompareEncoded(a, b []byte) int {
	ra := &legacyCursor{buf: a}
	rb := &legacyCursor{buf: b}
	na, _ := binary.ReadUvarint(ra)
	nb, _ := binary.ReadUvarint(rb)
	n := na
	if nb < n {
		n = nb
	}
	for i := uint64(0); i < n; i++ {
		ka := ra.readString()
		kb := rb.readString()
		if ka != kb {
			if ka < kb {
				return -1
			}
			return 1
		}
		sa, _ := binary.ReadUvarint(ra)
		sb, _ := binary.ReadUvarint(rb)
		if sa != sb {
			if sa < sb {
				return -1
			}
			return 1
		}
	}
	switch {
	case na < nb:
		return -1
	case na > nb:
		return 1
	default:
		return 0
	}
}

type legacyCursor struct {
	buf []byte
	pos int
}

func (c *legacyCursor) ReadByte() (byte, error) {
	if c.pos >= len(c.buf) {
		return 0, io.EOF
	}
	b := c.buf[c.pos]
	c.pos++
	return b, nil
}

func (c *legacyCursor) readString() string {
	n, err := binary.ReadUvarint(c)
	if err != nil || c.pos+int(n) > len(c.buf) {
		return ""
	}
	s := string(c.buf[c.pos : c.pos+int(n)])
	c.pos += int(n)
	return s
}

// genKeyPathRecords synthesizes n encoded key-path records with the shape
// the XML sorters produce: shared ancestor prefixes, short keys, small
// seqs — so comparisons routinely walk several equal components before
// deciding, the case normalized-key prefixes accelerate.
func genKeyPathRecords(n int, seed int64) [][]byte {
	rng := rand.New(rand.NewSource(seed))
	keyPool := []string{"", "NE", "SW", "alpha", "beta", "gamma", "delta", "k\x00z"}
	recs := make([][]byte, n)
	for i := range recs {
		depth := 1 + rng.Intn(6)
		rec := keypath.Record{Path: make([]keypath.Component, depth)}
		for d := range rec.Path {
			rec.Path[d] = keypath.Component{
				Key: keyPool[rng.Intn(len(keyPool))],
				Seq: int64(rng.Intn(40)),
			}
		}
		recs[i] = keypath.AppendRecord(nil, rec)
	}
	return recs
}

// countingHeap replays the container/heap merge loop the loser tree
// replaced, counting comparator invocations.
type countingHeap struct {
	idx  []int // cursor index per heap slot
	recs [][][]byte
	head []int
	cmps *int64
}

func (h countingHeap) Len() int { return len(h.idx) }
func (h countingHeap) Less(i, j int) bool {
	*h.cmps++
	a, b := h.idx[i], h.idx[j]
	c := sortkey.CompareKeyPath(h.recs[a][h.head[a]], h.recs[b][h.head[b]])
	if c != 0 {
		return c < 0
	}
	return a < b
}
func (h countingHeap) Swap(i, j int) { h.idx[i], h.idx[j] = h.idx[j], h.idx[i] }
func (h *countingHeap) Push(x any)   { h.idx = append(h.idx, x.(int)) }
func (h *countingHeap) Pop() any {
	old := h.idx
	x := old[len(old)-1]
	h.idx = old[:len(old)-1]
	return x
}

// dealRuns splits sorted records round-robin into k sorted runs.
func dealRuns(sorted [][]byte, k int) [][][]byte {
	runs := make([][][]byte, k)
	for i, r := range sorted {
		runs[i%k] = append(runs[i%k], r)
	}
	return runs
}

func mergeWithHeap(runs [][][]byte) (out int, cmps int64) {
	h := &countingHeap{recs: runs, head: make([]int, len(runs)), cmps: &cmps}
	for i, r := range runs {
		if len(r) > 0 {
			heap.Push(h, i)
		}
	}
	for h.Len() > 0 {
		cur := h.idx[0]
		out++
		h.head[cur]++
		if h.head[cur] == len(runs[cur]) {
			heap.Pop(h)
			continue
		}
		heap.Fix(h, 0)
	}
	return out, cmps
}

func mergeWithLoserTree(runs [][][]byte) (out int, cmps int64) {
	head := make([]int, len(runs))
	eof := make([]bool, len(runs))
	for i, r := range runs {
		if len(r) == 0 {
			eof[i] = true
		}
	}
	t := sortkey.NewLoserTree(len(runs), func(a, b int32) bool {
		if eof[a] != eof[b] {
			return !eof[a]
		}
		if eof[a] {
			return a < b
		}
		c := sortkey.CompareKeyPath(runs[a][head[a]], runs[b][head[b]])
		if c != 0 {
			return c < 0
		}
		return a < b
	})
	for {
		w := t.Winner()
		if eof[w] {
			return out, t.Comparisons()
		}
		out++
		head[w]++
		if head[w] == len(runs[w]) {
			eof[w] = true
		}
		t.Fix()
	}
}

// Cmp benchmarks the comparison kernel against what it replaced: the
// allocating legacy comparator vs the zero-allocation kernel comparator vs
// raw bytes.Compare over precomputed normalized keys, then a k-way merge
// selecting with the old binary heap vs the loser tree. The loser-tree
// comparison count is cross-checked against the k-1 + (n+k)·⌈log₂k⌉
// tournament bound; exceeding it is an error, not a slow result.
func Cmp(cfg CmpConfig) ([]CmpRow, error) {
	k := cfg.Runs
	if k == 0 {
		k = 16
	}
	n := int(cfg.Scale.n(20000))
	recs := genKeyPathRecords(n, cfg.Seed+31)

	var rows []CmpRow
	benchCompare := func(name string, cmp func(a, b []byte) int) {
		res := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				p := recs[i%n]
				q := recs[(i*7+1)%n]
				cmp(p, q)
			}
		})
		rows = append(rows, CmpRow{
			Name: name, Records: int64(n),
			NsPerOp:     res.NsPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
			BytesPerOp:  res.AllocedBytesPerOp(),
		})
	}
	benchCompare("compare/legacy-decoding", legacyCompareEncoded)
	benchCompare("compare/kernel", sortkey.CompareKeyPath)

	keys := make([][]byte, n)
	for i, r := range recs {
		keys[i] = sortkey.AppendKeyPathKey(nil, r, 0)
	}
	res := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			bytes.Compare(keys[i%n], keys[(i*7+1)%n])
		}
	})
	rows = append(rows, CmpRow{
		Name: "compare/normalized-memcmp", Records: int64(n),
		NsPerOp:     res.NsPerOp(),
		AllocsPerOp: res.AllocsPerOp(),
		BytesPerOp:  res.AllocedBytesPerOp(),
	})

	sorted := make([][]byte, n)
	copy(sorted, recs)
	slices.SortFunc(sorted, sortkey.CompareKeyPath)
	runs := dealRuns(sorted, k)

	var heapOut int
	var heapCmps int64
	resHeap := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			heapOut, heapCmps = mergeWithHeap(runs)
		}
	})
	if heapOut != n {
		return nil, fmt.Errorf("bench: heap merge produced %d of %d records", heapOut, n)
	}
	rows = append(rows, CmpRow{
		Name: "merge/heap", Records: int64(n), Runs: k,
		NsPerOp:     resHeap.NsPerOp(),
		AllocsPerOp: resHeap.AllocsPerOp(),
		BytesPerOp:  resHeap.AllocedBytesPerOp(),
		Comparisons: heapCmps,
	})

	var ltOut int
	var ltCmps int64
	resLT := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ltOut, ltCmps = mergeWithLoserTree(runs)
		}
	})
	if ltOut != n {
		return nil, fmt.Errorf("bench: loser-tree merge produced %d of %d records", ltOut, n)
	}
	depth := int64(math.Ceil(math.Log2(float64(k))))
	bound := int64(k-1) + (int64(n)+int64(k))*depth
	if ltCmps > bound {
		return nil, fmt.Errorf("bench: loser tree spent %d comparisons, above the n·⌈log₂k⌉ bound %d (n=%d k=%d)",
			ltCmps, bound, n, k)
	}
	rows = append(rows, CmpRow{
		Name: "merge/loser-tree", Records: int64(n), Runs: k,
		NsPerOp:     resLT.NsPerOp(),
		AllocsPerOp: resLT.AllocsPerOp(),
		BytesPerOp:  resLT.AllocedBytesPerOp(),
		Comparisons: ltCmps,
		Bound:       bound,
	})
	return rows, nil
}

// CmpTable renders the comparison-kernel experiment.
func CmpTable(rows []CmpRow) *Table {
	t := &Table{
		Title:  "Comparison kernel — normalized keys and loser-tree selection vs the decoded comparator and binary heap (not a paper figure)",
		Header: []string{"path", "records", "runs", "ns/op", "allocs/op", "B/op", "comparisons", "bound"},
	}
	for _, r := range rows {
		runsCell, cmpCell, boundCell := "-", "-", "-"
		if r.Runs > 0 {
			runsCell = fmt.Sprintf("%d", r.Runs)
			cmpCell = d64(r.Comparisons)
			if r.Bound > 0 {
				boundCell = d64(r.Bound)
			}
		}
		t.Rows = append(t.Rows, []string{
			r.Name, d64(r.Records), runsCell,
			d64(r.NsPerOp), d64(r.AllocsPerOp), d64(r.BytesPerOp),
			cmpCell, boundCell,
		})
	}
	return t
}
