package extsort

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"nexsort/internal/em"
)

// BenchmarkSorterExternal measures a genuinely external record sort
// (multiple initial runs plus merging).
func BenchmarkSorterExternal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	recs := make([][]byte, 20000)
	var bytesTotal int64
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("%08d-%032x", rng.Intn(1e8), rng.Int63()))
		bytesTotal += int64(len(recs[i]))
	}
	b.SetBytes(bytesTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 16})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(env, em.CatMergeRun, func(a, c []byte) int { return bytes.Compare(a, c) }, 14)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("%d records out", n)
		}
		it.Close()
		s.Close()
		env.Close()
	}
}

// BenchmarkFramePool measures the allocation profile of the extsort record
// path — Add's per-record copy plus run formation and merging — which is
// the hot loop the frame-pool arena exists for. Run with -benchmem.
func BenchmarkFramePool(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	recs := make([][]byte, 50000)
	var bytesTotal int64
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("%08d-%024x", rng.Intn(1e8), rng.Int63()))
		bytesTotal += int64(len(recs[i]))
	}
	b.SetBytes(bytesTotal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 32, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(env, em.CatMergeRun, func(a, c []byte) int { return bytes.Compare(a, c) }, 30)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("%d records out", n)
		}
		it.Close()
		s.Close()
		env.Close()
	}
}
