package extsort

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/keypath"
	"nexsort/internal/sortkey"
	"nexsort/internal/xmltok"
)

// BenchmarkSorterExternal measures a genuinely external record sort
// (multiple initial runs plus merging).
func BenchmarkSorterExternal(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	recs := make([][]byte, 20000)
	var bytesTotal int64
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("%08d-%032x", rng.Intn(1e8), rng.Int63()))
		bytesTotal += int64(len(recs[i]))
	}
	b.SetBytes(bytesTotal)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 16})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(env, em.CatMergeRun, func(a, c []byte) int { return bytes.Compare(a, c) }, 14)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("%d records out", n)
		}
		it.Close()
		s.Close()
		env.Close()
	}
}

// BenchmarkFramePool measures the allocation profile of the extsort record
// path — Add's per-record copy plus run formation and merging — which is
// the hot loop the frame-pool arena exists for. Run with -benchmem.
func BenchmarkFramePool(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	recs := make([][]byte, 50000)
	var bytesTotal int64
	for i := range recs {
		recs[i] = []byte(fmt.Sprintf("%08d-%024x", rng.Intn(1e8), rng.Int63()))
		bytesTotal += int64(len(recs[i]))
	}
	b.SetBytes(bytesTotal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 32, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(env, em.CatMergeRun, func(a, c []byte) int { return bytes.Compare(a, c) }, 30)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("%d records out", n)
		}
		it.Close()
		s.Close()
		env.Close()
	}
}

// BenchmarkKeyPathSorterExternal measures the external sort on its product
// workload: keypath-encoded records under the comparison kernel (normalized
// key prefixes + loser-tree merge). This is the configuration SortXML and
// core's subtree sorts run, so its ns/op is the end-to-end figure for the
// sort hot path.
func BenchmarkKeyPathSorterExternal(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	keyPool := []string{"", "NE", "SW", "alpha", "beta", "gamma", "delta"}
	recs := make([][]byte, 20000)
	var bytesTotal int64
	for i := range recs {
		depth := 1 + rng.Intn(6)
		rec := keypath.Record{Path: make([]keypath.Component, depth)}
		for d := range rec.Path {
			rec.Path[d] = keypath.Component{
				Key: keyPool[rng.Intn(len(keyPool))],
				Seq: int64(rng.Intn(40)),
			}
		}
		rec.Tok = xmltok.Token{Kind: xmltok.KindText, Text: fmt.Sprintf("text-%06d", i)}
		recs[i] = keypath.AppendRecord(nil, rec)
		bytesTotal += int64(len(recs[i]))
	}
	b.SetBytes(bytesTotal)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := em.NewEnv(em.Config{BlockSize: 4096, MemBlocks: 16, Parallelism: 1})
		if err != nil {
			b.Fatal(err)
		}
		s, err := NewKernel(env, em.CatMergeRun, sortkey.KeyPath(), 14)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range recs {
			if err := s.Add(r); err != nil {
				b.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for {
			if _, err := it.Next(); err == io.EOF {
				break
			} else if err != nil {
				b.Fatal(err)
			}
			n++
		}
		if n != len(recs) {
			b.Fatalf("%d records out", n)
		}
		it.Close()
		s.Close()
		env.Close()
	}
}
