package extsort

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"testing"

	"nexsort/internal/em"
)

// Engine-level tests for pipelined run formation: the worker pool must not
// change a single output byte, and the error/Close paths must drain every
// in-flight batch before the budget is released — no leaks, no panics,
// whichever call surfaces the failure.

// poolEnv builds an in-memory environment with the worker pool switched on
// and an armable fault backend spliced beneath the accounting layers.
func poolEnv(t *testing.T, memBlocks, parallelism int) (*em.Env, *em.FaultBackend) {
	t.Helper()
	var fb *em.FaultBackend
	env, err := em.NewEnv(em.Config{
		BlockSize:   256,
		MemBlocks:   memBlocks,
		Parallelism: parallelism,
		WrapBackend: func(b em.Backend) em.Backend {
			fb = em.NewFaultBackend(b)
			return fb
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { env.Close() })
	return env, fb
}

// addRecords feeds n deterministic pseudo-random records, stopping at the
// first Add error.
func addRecords(s *Sorter, n int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		rec := fmt.Sprintf("%08d-%06d", rng.Intn(1_000_000), i)
		if err := s.Add([]byte(rec)); err != nil {
			return err
		}
	}
	return nil
}

// collect drains the iterator into one flat string per record.
func collect(t *testing.T, it *Iterator) []string {
	t.Helper()
	var out []string
	for {
		rec, err := it.Next()
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, string(rec))
	}
}

// TestParallelRunFormationMatchesSequential pins the engine's determinism
// contract directly: same records in, byte-identical sequence out, same run
// structure, at any parallelism.
func TestParallelRunFormationMatchesSequential(t *testing.T) {
	const records = 2000
	run := func(parallelism int) ([]string, Stats) {
		env, _ := poolEnv(t, 64, parallelism)
		s, err := New(env, em.CatMergeRun, bytesCompare, 4)
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := addRecords(s, records, 42); err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		it, err := s.Sort()
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		defer it.Close()
		return collect(t, it), s.Stats()
	}

	wantOut, wantStats := run(1)
	if !wantStats.Spilled {
		t.Fatal("sequential run never spilled; the test exercises nothing")
	}
	for _, p := range []int{2, 8} {
		out, stats := run(p)
		if stats != wantStats {
			t.Errorf("parallelism=%d: stats %+v, sequential %+v", p, stats, wantStats)
		}
		if len(out) != len(wantOut) {
			t.Fatalf("parallelism=%d: %d records, sequential %d", p, len(out), len(wantOut))
		}
		for i := range out {
			if out[i] != wantOut[i] {
				t.Fatalf("parallelism=%d: record %d = %q, sequential %q", p, i, out[i], wantOut[i])
			}
		}
	}
}

// TestWorkerFaultDrainsAndReleasesBudget arms a single write fault so that
// a pooled batch fails mid-spill, then checks the contract of the error
// path: the failure surfaces as the injected error from Add or Sort, Close
// drains the remaining in-flight workers without panicking, and afterwards
// not one budget block is still granted. (A double release would panic in
// Budget.Release, so InUse()==0 proves exactly-once accounting.)
func TestWorkerFaultDrainsAndReleasesBudget(t *testing.T) {
	sentinel := errors.New("injected spill failure")
	for _, parallelism := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("parallelism=%d", parallelism), func(t *testing.T) {
			env, fb := poolEnv(t, 64, parallelism)
			s, err := New(env, em.CatMergeRun, bytesCompare, 4)
			if err != nil {
				t.Fatal(err)
			}
			fb.FailWriteAfter(5, sentinel)

			addErr := addRecords(s, 2000, 7)
			var sortErr error
			if addErr == nil {
				var it *Iterator
				if it, sortErr = s.Sort(); sortErr == nil {
					it.Close()
				}
			}
			err = addErr
			if err == nil {
				err = sortErr
			}
			if err == nil {
				t.Fatal("armed write fault never surfaced from Add or Sort")
			}
			if !errors.Is(err, sentinel) {
				t.Fatalf("surfaced error %v, want the injected fault", err)
			}

			s.Close()
			s.Close() // idempotent, must not double-release
			if n := env.Budget.InUse(); n != 0 {
				t.Fatalf("%d budget blocks still granted after Close", n)
			}
		})
	}
}

// TestCloseMidFlightReleasesBudget abandons the sorter while batches are
// still being spilled on workers — the caller-gave-up path. Close must wait
// for them and hand back every block.
func TestCloseMidFlightReleasesBudget(t *testing.T) {
	env, _ := poolEnv(t, 64, 8)
	s, err := New(env, em.CatMergeRun, bytesCompare, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := addRecords(s, 2000, 11); err != nil {
		t.Fatal(err)
	}
	s.Close() // no Sort: in-flight workers must still be drained
	if n := env.Budget.InUse(); n != 0 {
		t.Fatalf("%d budget blocks still granted after mid-flight Close", n)
	}
}
