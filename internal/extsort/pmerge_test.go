package extsort

import (
	"bytes"
	"fmt"
	"io"
	"testing"

	"nexsort/internal/em"
	"nexsort/internal/fence"
	"nexsort/internal/sortkey"
)

// runPartitioned sorts n synthetic records at the given final-merge
// partition count and returns the concatenated output records plus the
// environment's stats snapshot.
func runPartitioned(t *testing.T, n, mergeParallel int) ([]byte, map[string]em.IOCount) {
	t.Helper()
	env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: 24, Parallelism: 2, MergeParallel: mergeParallel})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	s, err := NewKernel(env, em.CatMergeRun, sortkey.KeySeq(), env.Budget.Free())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		rec := []byte(fmt.Sprintf("rec-%05d-%s", i*7919%n, bytes.Repeat([]byte("x"), i%40)))
		if err := s.Add(rec); err != nil {
			t.Fatal(err)
		}
	}
	it, err := s.Sort()
	if err != nil {
		t.Fatalf("MergeParallel=%d: %v", mergeParallel, err)
	}
	defer it.Close()
	var out []byte
	for {
		rec, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, rec...)
		out = append(out, '\n')
	}
	return out, env.Stats.Snapshot()
}

// TestPartitionedMergeDirect drives the sorter kernel straight into a
// partitioned final merge: at every partition count the record stream must
// be byte-identical to the serial merge's and the partitioned ledgers must
// agree with each other (one partitioned merge, the same splitter-sample
// count, the same logical block transfers).
func TestPartitionedMergeDirect(t *testing.T) {
	want, _ := runPartitioned(t, 4000, 0)
	var base map[string]em.IOCount
	for _, p := range []int{1, 2, 4, 8} {
		got, snap := runPartitioned(t, 4000, p)
		if !bytes.Equal(got, want) {
			t.Fatalf("MergeParallel=%d: output differs from serial merge", p)
		}
		cat := em.CatMergeRun.String()
		if snap[cat].PartitionedMerges == 0 {
			t.Fatalf("MergeParallel=%d: no partitioned merge ran", p)
		}
		if base == nil {
			base = snap
		} else {
			for _, k := range []string{cat, em.CatFenceIndex.String()} {
				if snap[k] != base[k] {
					t.Errorf("MergeParallel=%d: %s ledger moved\nP=1: %+v\nP=%d: %+v", p, k, base[k], p, snap[k])
				}
			}
		}
	}
}

// TestPartitionedMergePresortedFallback pins the serial fallback: a run
// added with AddPresortedRun has no fence index, so the final merge must
// fall back to the single loser tree — same bytes, no partitioned merge
// counted — rather than fail or partition blindly.
func TestPartitionedMergePresortedFallback(t *testing.T) {
	build := func(mergeParallel int) ([]byte, *em.Stats) {
		env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: 24, MergeParallel: mergeParallel})
		if err != nil {
			t.Fatal(err)
		}
		defer env.Close()

		// A presorted run, written directly with no fence index.
		pre := em.NewStream(env.Dev, em.CatMergeRun)
		w, err := pre.NewWriter(env.Budget)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 200; i++ {
			rec := []byte(fmt.Sprintf("pre-%04d", i*2))
			var lenBuf [8]byte
			n := putUvarintLen(lenBuf[:], len(rec))
			if _, err := w.Write(lenBuf[:n]); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Write(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}

		s, err := NewKernel(env, em.CatMergeRun, sortkey.KeySeq(), env.Budget.Free())
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		if err := s.AddPresortedRun(pre); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2000; i++ {
			if err := s.Add([]byte(fmt.Sprintf("pre-%04d", i%400))); err != nil {
				t.Fatal(err)
			}
		}
		it, err := s.Sort()
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var out []byte
		for {
			rec, err := it.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, rec...)
			out = append(out, '\n')
		}
		return out, env.Stats
	}
	want, _ := build(0)
	got, stats := build(8)
	if !bytes.Equal(got, want) {
		t.Fatal("MergeParallel=8 with a presorted run: output differs from serial merge")
	}
	if n := stats.TotalPartitionedMerges(); n != 0 {
		t.Fatalf("MergeParallel=8 with a presorted run: %d partitioned merges ran; want serial fallback", n)
	}
}

// TestFenceIndexSpilled pins the side-stream mechanics: with FenceIndex on
// (and no MergeParallel), every spilled run gets a CatFenceIndex stream
// whose decoded entries are valid fences into the run — first fence at
// offset 0, offsets strictly increasing, at most one per run block.
func TestFenceIndexSpilled(t *testing.T) {
	env, err := em.NewEnv(em.Config{BlockSize: 512, MemBlocks: 24, FenceIndex: true})
	if err != nil {
		t.Fatal(err)
	}
	defer env.Close()
	s, err := NewKernel(env, em.CatMergeRun, sortkey.KeySeq(), env.Budget.Free())
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 2000; i++ {
		if err := s.Add([]byte(fmt.Sprintf("rec-%05d", i*31%2000))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	runs := append([]*em.Stream(nil), s.runs...)
	fences := make(map[*em.Stream]*em.Stream, len(s.fences))
	for r, idx := range s.fences {
		fences[r] = idx
	}
	s.mu.Unlock()
	if len(runs) < 2 {
		t.Fatalf("only %d runs formed; the test needs spills", len(runs))
	}
	for i, run := range runs {
		idx := fences[run]
		if idx == nil {
			t.Fatalf("run %d has no fence index", i)
		}
		entries, err := readFenceIndex(idx)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		nblocks := int((run.Size() + 511) / 512)
		if len(entries) == 0 || len(entries) > nblocks {
			t.Fatalf("run %d: %d fences for %d blocks", i, len(entries), nblocks)
		}
		if entries[0].Offset != 0 {
			t.Fatalf("run %d: first fence at %d", i, entries[0].Offset)
		}
		for j := 1; j < len(entries); j++ {
			if entries[j].Offset <= entries[j-1].Offset || entries[j].Offset >= run.Size() {
				t.Fatalf("run %d: fence %d offset %d out of order", i, j, entries[j].Offset)
			}
			if bytes.Compare(entries[j].Key, entries[j-1].Key) < 0 {
				t.Fatalf("run %d: fence %d key decreases", i, j)
			}
		}
	}
	// The fences must round-trip through the codec they were stored with.
	var all []fence.Entry
	for _, idx := range fences {
		es, err := readFenceIndex(idx)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, es...)
	}
	if len(all) == 0 {
		t.Fatal("no fence entries decoded")
	}
}

// putUvarintLen is a tiny local uvarint encoder for test records.
func putUvarintLen(dst []byte, v int) int {
	i := 0
	for v >= 0x80 {
		dst[i] = byte(v) | 0x80
		v >>= 7
		i++
	}
	dst[i] = byte(v)
	return i + 1
}
