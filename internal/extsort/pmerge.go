// Range-partitioned parallel merge (DESIGN.md §17).
//
// The serial loser tree funnels every record of the final merge through
// one goroutine; this file removes that Amdahl floor. Run formation emits
// a fence-key sparse index per run (the first normalized key of every run
// block, spilled as a CatFenceIndex side stream). The final merge samples
// those fences to pick P−1 byte-comparable splitters, locates each
// splitter's cut offset in each run with a bounded block-aligned scan,
// and then merges the P disjoint key ranges on independent loser trees —
// dispatched on the worker pool — each writing its own segment of a
// preallocated output stream.
//
// Two invariants carry the whole design:
//
//   - Equal keys never straddle a splitter (a cut is the offset of the
//     first record with key >= splitter, in every run), so each
//     partition's output is a contiguous slice of the serial merge's and
//     the concatenation is byte-identical — the run-index tie-break never
//     has to arbitrate across partitions.
//   - Every run block is entered by exactly one reader (the planner's
//     scan or one partition's range reader), every output block is
//     written exactly once (interior blocks by their partition's segment
//     writer, boundary blocks by the final stitch), and the fence indexes
//     are always read in full — so the logical per-category ledger is
//     identical to the serial merge's at every partition count.
//
// The planner's scan state (cut regions) and the fence entries are plain
// heap bookkeeping like the streams' extent tables: a region is the block
// or two around each cut, O(P·R) blocks total, transient within the merge.
package extsort

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"
	"sync"

	"nexsort/internal/em"
	"nexsort/internal/fence"
)

// Flush finishes run formation without starting the merge: the buffered
// records are cut as a final initial run and every background batch is
// drained. Benchmark harnesses call Flush so that a following Sort times
// the merge phase alone.
func (s *Sorter) Flush() error {
	if s.sorted {
		return fmt.Errorf("extsort: Flush after Sort")
	}
	if err := s.cutRun(); err != nil {
		return err
	}
	return s.drain()
}

// spillFenceIndex serializes a run's fence entries as a CatFenceIndex side
// stream — through the full hardened backend stack, like any other spill —
// and registers it for the partitioned final merge. Callers invoke it
// after the run's own writer has closed, so the index writer's frame rides
// the working set the run writer just returned.
func (s *Sorter) spillFenceIndex(run *em.Stream, entries []fence.Entry) error {
	idx := em.NewStream(s.env.Dev, em.CatFenceIndex)
	w, err := idx.NewWriter(nil)
	if err != nil {
		return err
	}
	defer w.Close()
	if _, err := w.Write(fence.Encode(nil, entries)); err != nil {
		return err
	}
	if err := w.Close(); err != nil {
		return err
	}
	s.mu.Lock()
	s.fences[run] = idx
	s.mu.Unlock()
	return nil
}

// forgetFences drops the fence-index registrations of consumed runs.
func (s *Sorter) forgetFences(runs []*em.Stream) {
	s.mu.Lock()
	for _, r := range runs {
		delete(s.fences, r)
	}
	s.mu.Unlock()
}

// mergePass merges runs in disjoint fanIn-sized groups into the next
// pass's runs. The groups read and write disjoint streams, so they are
// dispatched concurrently on the worker pool under the same admission rule
// as run formation — a pool slot AND a full extra working-set grant, with
// inline fallback — and each group's output lands in a pre-claimed slot,
// so the pass's result (and every downstream merge decision) is identical
// at every parallelism level.
func (s *Sorter) mergePass(runs []*em.Stream, fanIn int) ([]*em.Stream, error) {
	next := make([]*em.Stream, (len(runs)+fanIn-1)/fanIn)
	for lo, slot := 0, 0; lo < len(runs); lo, slot = lo+fanIn, slot+1 {
		hi := lo + fanIn
		if hi > len(runs) {
			hi = len(runs)
		}
		if hi-lo == 1 {
			next[slot] = runs[lo]
			continue
		}
		if err := s.err(); err != nil {
			break
		}
		if s.env.Pool().TryAcquire() {
			if err := s.env.Budget.Grant(s.memBlocks); err != nil {
				s.env.Pool().Release()
			} else {
				group, slot := runs[lo:hi], slot
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer s.env.Pool().Release()
					defer s.env.Budget.Release(s.memBlocks)
					defer func() {
						if r := recover(); r != nil {
							s.mu.Lock()
							if s.panicVal == nil {
								s.panicVal = r
							}
							s.mu.Unlock()
						}
					}()
					merged, err := s.mergeRuns(group)
					s.mu.Lock()
					if err != nil {
						if s.firstErr == nil {
							s.firstErr = err
						}
					} else {
						next[slot] = merged
					}
					s.mu.Unlock()
				}()
				continue
			}
		}
		merged, err := s.mergeRuns(runs[lo:hi])
		if err != nil {
			s.mu.Lock()
			if s.firstErr == nil {
				s.firstErr = err
			}
			s.mu.Unlock()
			break
		}
		next[slot] = merged
	}
	s.wg.Wait()
	if err := s.err(); err != nil {
		return nil, err
	}
	return next, nil
}

// finalMerge produces the last merged run: range-partitioned when
// partitioning is enabled and every input run has a fence index, on the
// serial loser tree otherwise (no keyer, an AddPresortedRun input, or
// MergeParallel unset) — byte for byte the same output either way.
func (s *Sorter) finalMerge(runs []*em.Stream) (*em.Stream, error) {
	if len(runs) == 1 {
		return runs[0], nil
	}
	if s.mergeParallel > 0 && s.fenceOn {
		idxs := make([]*em.Stream, len(runs))
		ok := true
		s.mu.Lock()
		for i, r := range runs {
			if idxs[i] = s.fences[r]; idxs[i] == nil {
				ok = false
				break
			}
		}
		s.mu.Unlock()
		if ok {
			return s.mergeRunsPartitioned(runs, idxs)
		}
	}
	return s.mergeRuns(runs)
}

// readFenceIndex reads an index side stream back in full and decodes it.
func readFenceIndex(idx *em.Stream) ([]fence.Entry, error) {
	r, err := idx.NewReader(nil, 0)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	data := make([]byte, idx.Size())
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, err
	}
	return fence.Decode(data)
}

// scanRegion is a block-aligned span of a run the planner read while
// locating cut offsets: start is an absolute byte offset (a multiple of
// the block size), buf the raw bytes [start, start+len(buf)). The blocks a
// region covers are read exactly once — partitions whose boundaries fall
// inside a region reuse its bytes as in-memory fragments instead of
// touching the device again.
type scanRegion struct {
	start int64
	buf   []byte
}

// runCut is one partition boundary inside a run: the byte offset of the
// partition's first record, plus the index of the scan region holding the
// bytes around it (-1 when no scan was needed — a cut at offset 0, or the
// run-end marker).
type runCut struct {
	off int64
	reg int
}

// runPlan is one run's partitioning: P+1 cuts (first is offset 0, last the
// run size) and the scan regions read to locate them. Regions are
// disjoint, ordered, and block-aligned at their starts, so the device
// ranges between them — what the partitions' range readers consume — are
// block-aligned too.
type runPlan struct {
	run     *em.Stream
	size    int64
	cuts    []runCut
	regions []scanRegion
}

// runPiece is a partition's slice of one run, in up to three parts: bytes
// already in memory from the planner's scan (head), a block-aligned device
// range no scan touched, and more scanned bytes (tail). Record decoding
// reads across the seams via chainSource.
type runPiece struct {
	head, tail       []byte
	devStart, devEnd int64
}

// pieces assembles partition p's slice [cuts[p], cuts[p+1]) of the run.
func (pl *runPlan) pieces(p int) runPiece {
	lo, hi := pl.cuts[p], pl.cuts[p+1]
	var pc runPiece
	if lo.off == hi.off {
		return pc
	}
	if lo.reg >= 0 {
		r := pl.regions[lo.reg]
		if hi.reg == lo.reg {
			pc.head = r.buf[lo.off-r.start : hi.off-r.start]
			return pc
		}
		pc.head = r.buf[lo.off-r.start:]
		pc.devStart = r.start + int64(len(r.buf))
	} else {
		pc.devStart = lo.off // 0: a cut that needed no scan
	}
	if hi.reg >= 0 {
		r := pl.regions[hi.reg]
		pc.devEnd = r.start
		pc.tail = r.buf[:hi.off-r.start]
	} else {
		pc.devEnd = hi.off // the run-end marker
	}
	return pc
}

// runScanner incrementally reads one block-aligned region of a run and
// parses records to locate cut offsets.
type runScanner struct {
	rd     *em.StreamReader
	bs     int64
	start  int64 // absolute offset of buf[0]; block-aligned
	size   int64 // run size
	buf    []byte
	parse  int // position in buf: a record boundary (or the opening fence offset)
	atEnd  bool
	regIdx int // index this region will take in runPlan.regions
	keyBuf []byte
}

// openScanner starts a region at the block containing absolute offset at,
// with parsing positioned on at (a known record boundary: a fence).
func (s *Sorter) openScanner(run *em.Stream, at int64, regIdx int) (*runScanner, error) {
	bs := int64(s.env.Conf.BlockSize)
	start := at / bs * bs
	rd, err := run.NewReader(nil, start)
	if err != nil {
		return nil, err
	}
	return &runScanner{
		rd: rd, bs: bs, start: start, size: run.Size(),
		parse: int(at - start), regIdx: regIdx,
	}, nil
}

// finish closes the scanner's reader and appends its region to the plan.
func (sc *runScanner) finish(pl *runPlan) {
	pl.regions = append(pl.regions, scanRegion{start: sc.start, buf: sc.buf})
	sc.rd.Close()
}

// extend grows the region by one block (or the run's short tail),
// reporting io.EOF once the run is fully buffered.
func (sc *runScanner) extend() error {
	if sc.atEnd {
		return io.EOF
	}
	have := sc.start + int64(len(sc.buf))
	want := min(sc.bs, sc.size-have)
	if want <= 0 {
		sc.atEnd = true
		return io.EOF
	}
	off := len(sc.buf)
	sc.buf = append(sc.buf, make([]byte, want)...)
	if _, err := io.ReadFull(sc.rd, sc.buf[off:]); err != nil {
		return err
	}
	if sc.start+int64(len(sc.buf)) == sc.size {
		sc.atEnd = true
	}
	return nil
}

// ensure makes at least n bytes available at the parse position.
func (sc *runScanner) ensure(n int) error {
	for len(sc.buf)-sc.parse < n {
		if err := sc.extend(); err != nil {
			return err
		}
	}
	return nil
}

// peekUvarint decodes the record-length varint at the parse position
// without consuming it, extending the region as needed. io.EOF means the
// parse position sits cleanly at the run's end.
func (sc *runScanner) peekUvarint() (uint64, int, error) {
	for {
		// A fresh scanner's region buffer may not reach the parse position
		// yet (it opens at the block boundary below a fence offset).
		if sc.parse <= len(sc.buf) {
			v, n := binary.Uvarint(sc.buf[sc.parse:])
			if n > 0 {
				return v, n, nil
			}
			if n < 0 {
				return 0, 0, fmt.Errorf("extsort: corrupt run: bad record length at %d", sc.start+int64(sc.parse))
			}
		}
		if err := sc.extend(); err != nil {
			if err == io.EOF {
				if sc.parse == len(sc.buf) {
					return 0, 0, io.EOF
				}
				return 0, 0, fmt.Errorf("extsort: truncated record length at %d", sc.start+int64(sc.parse))
			}
			return 0, 0, err
		}
	}
}

// findCut scans forward to the first record whose full normalized key is
// >= splitter and returns its absolute offset; reaching the run end
// cleanly returns the run size. The parse position is left AT the found
// record — the next (larger) splitter's scan resumes there, and the same
// record can be the cut for several splitters.
func (sc *runScanner) findCut(s *Sorter, splitter []byte) (int64, error) {
	for {
		recLen, lenN, err := sc.peekUvarint()
		if err == io.EOF {
			return sc.size, nil
		}
		if err != nil {
			return 0, err
		}
		if recLen > maxRecordLen {
			return 0, fmt.Errorf("extsort: corrupt run: record length %d", recLen)
		}
		if err := sc.ensure(lenN + int(recLen)); err != nil {
			if err == io.EOF {
				return 0, fmt.Errorf("extsort: truncated record at %d", sc.start+int64(sc.parse))
			}
			return 0, err
		}
		rec := sc.buf[sc.parse+lenN : sc.parse+lenN+int(recLen)]
		sc.keyBuf = s.keyer(sc.keyBuf[:0], rec, 0)
		if bytes.Compare(sc.keyBuf, splitter) >= 0 {
			return sc.start + int64(sc.parse), nil
		}
		sc.parse += lenN + int(recLen)
	}
}

// planRun locates every splitter's cut offset in one run. Splitters arrive
// in increasing order, so at most one scan region is open at a time; a new
// region opens only when the next splitter's fence lies beyond the open
// region's bytes, which keeps regions disjoint and ordered, with the gap
// blocks between them left for the partitions' range readers.
func (s *Sorter) planRun(run *em.Stream, entries []fence.Entry, splitters [][]byte) (_ *runPlan, retErr error) {
	pl := &runPlan{run: run, size: run.Size()}
	pl.cuts = append(pl.cuts, runCut{off: 0, reg: -1})
	var sc *runScanner
	defer func() {
		if retErr != nil && sc != nil {
			sc.finish(pl) // error path: the reader must still close
		}
	}()
	for _, sp := range splitters {
		// The last fence with key < sp: records before it are all < sp,
		// so the scan can start at that record.
		fi := sort.Search(len(entries), func(i int) bool {
			return bytes.Compare(entries[i].Key, sp) >= 0
		}) - 1
		if fi < 0 {
			// Even the run's first record is >= sp: cut at 0, nothing read.
			pl.cuts = append(pl.cuts, runCut{off: 0, reg: -1})
			continue
		}
		fenceOff := entries[fi].Offset
		if sc == nil || fenceOff >= sc.start+int64(len(sc.buf)) {
			if sc != nil {
				sc.finish(pl)
				sc = nil
			}
			nsc, err := s.openScanner(run, fenceOff, len(pl.regions))
			if err != nil {
				return nil, err
			}
			sc = nsc
		} else if off := fenceOff - sc.start; off > int64(sc.parse) {
			// Fast-forward within the open region: the fence is a known
			// record boundary ahead of the parse position.
			sc.parse = int(off)
		}
		cut, err := sc.findCut(s, sp)
		if err != nil {
			return nil, err
		}
		pl.cuts = append(pl.cuts, runCut{off: cut, reg: sc.regIdx})
	}
	if sc != nil {
		sc.finish(pl)
		sc = nil
	}
	pl.cuts = append(pl.cuts, runCut{off: pl.size, reg: -1})
	return pl, nil
}

// chainSource concatenates record byte sources; decoding reads across the
// seams transparently.
type chainSource struct {
	srcs []recordByteSource
	cur  int
}

func (c *chainSource) Read(p []byte) (int, error) {
	for c.cur < len(c.srcs) {
		n, err := c.srcs[c.cur].Read(p)
		if err == io.EOF {
			c.cur++
			if n > 0 {
				return n, nil
			}
			continue
		}
		return n, err
	}
	return 0, io.EOF
}

func (c *chainSource) ReadByte() (byte, error) {
	for c.cur < len(c.srcs) {
		b, err := c.srcs[c.cur].ReadByte()
		if err == io.EOF {
			c.cur++
			continue
		}
		return b, err
	}
	return 0, io.EOF
}

// mergePartition merges one key-range partition of every run into its
// segment [off, end) of the output stream. Readers are built in run order,
// so cursor index — the loser tree's tie-break — ranks exactly as the
// serial merge's run order does.
func (s *Sorter) mergePartition(plans []*runPlan, p int, out *em.Stream, off, end int64) (retErr error) {
	readers := make([]*runReader, len(plans))
	for i, pl := range plans {
		pc := pl.pieces(p)
		var srcs []recordByteSource
		var closeFn func()
		if len(pc.head) > 0 {
			srcs = append(srcs, &sliceCursor{buf: pc.head})
		}
		if pc.devEnd > pc.devStart {
			sr, err := pl.run.NewRangeReader(nil, pc.devStart, pc.devEnd)
			if err != nil {
				for _, r := range readers[:i] {
					r.close()
				}
				return err
			}
			closeFn = func() { sr.Close() }
			srcs = append(srcs, sr)
		}
		if len(pc.tail) > 0 {
			srcs = append(srcs, &sliceCursor{buf: pc.tail})
		}
		readers[i] = &runReader{src: &chainSource{srcs: srcs}, closeFn: closeFn}
	}
	m, err := newStreamMergerReaders(s, readers)
	if err != nil {
		return err
	}
	defer m.close()
	w, err := out.NewSegmentWriter(nil, off, end)
	if err != nil {
		return err
	}
	defer func() {
		if retErr != nil {
			w.Close() //nolint:errcheck // best-effort frame return on the error path
		}
	}()
	var lenBuf [binary.MaxVarintLen64]byte
	for {
		rec, err := m.next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		n := binary.PutUvarint(lenBuf[:], uint64(len(rec)))
		if _, err := w.Write(lenBuf[:n]); err != nil {
			return err
		}
		if _, err := w.Write(rec); err != nil {
			return err
		}
	}
	return w.Close()
}

// mergeRunsPartitioned is the range-partitioned final merge. See the file
// comment for the two invariants (equal-key confinement → byte-identical
// output; exactly-once block access → partition-count-invariant ledger).
func (s *Sorter) mergeRunsPartitioned(runs, idxs []*em.Stream) (*em.Stream, error) {
	// 1. Fence indexes → weighted samples. Every index is read in full
	// regardless of the partition count (P=1 included), so index reads and
	// the sample count are partition-count-invariant.
	entries := make([][]fence.Entry, len(runs))
	var samples []fence.Sample
	for i, idx := range idxs {
		es, err := readFenceIndex(idx)
		if err != nil {
			return nil, err
		}
		entries[i] = es
		size := runs[i].Size()
		for j, e := range es {
			end := size
			if j+1 < len(es) {
				end = es[j+1].Offset
			}
			samples = append(samples, fence.Sample{Key: e.Key, Weight: end - e.Offset})
		}
	}
	s.env.Stats.AddSplitterSamples(s.cat, int64(len(samples)))
	splitters := fence.SelectSplitters(samples, s.mergeParallel)

	// 2. Cut offsets per run.
	plans := make([]*runPlan, len(runs))
	for i, run := range runs {
		pl, err := s.planRun(run, entries[i], splitters)
		if err != nil {
			return nil, err
		}
		plans[i] = pl
	}

	// 3. Output segmentation. Record bytes pass through a merge unchanged
	// (length prefixes included), so each partition's output size is the
	// sum of its input slices — exact, not estimated.
	nParts := len(splitters) + 1
	offs := make([]int64, nParts+1)
	for p := 0; p < nParts; p++ {
		var sz int64
		for _, pl := range plans {
			sz += pl.cuts[p+1].off - pl.cuts[p].off
		}
		offs[p+1] = offs[p] + sz
	}
	out := em.NewStream(s.env.Dev, s.cat)
	if err := out.PreallocateSegmented(offs[nParts]); err != nil {
		return nil, err
	}

	// 4. Merge the partitions, pool-dispatched. The merge phase holds the
	// sorter's whole base grant and a partition needs one frame per
	// nonempty device range plus the segment writer's, so worker frames
	// ride that grant under sorter-local accounting (the inline working
	// set stays reserved); admission is that headroom plus a pool slot,
	// with inline fallback. Where a partition runs can never change its
	// bytes or its block transfers.
	maxNeed := len(runs) + 1
	var admMu sync.Mutex
	avail := s.memBlocks - maxNeed
	for p := 0; p < nParts; p++ {
		if err := s.err(); err != nil {
			break
		}
		need := 1
		for _, pl := range plans {
			if pc := pl.pieces(p); pc.devEnd > pc.devStart {
				need++
			}
		}
		admitted := false
		if s.env.Pool().TryAcquire() {
			admMu.Lock()
			granted := avail >= need
			if granted {
				avail -= need
			}
			admMu.Unlock()
			if granted {
				p := p
				s.wg.Add(1)
				go func() {
					defer s.wg.Done()
					defer s.env.Pool().Release()
					defer func() {
						admMu.Lock()
						avail += need
						admMu.Unlock()
					}()
					defer func() {
						if r := recover(); r != nil {
							s.mu.Lock()
							if s.panicVal == nil {
								s.panicVal = r
							}
							s.mu.Unlock()
						}
					}()
					if err := s.mergePartition(plans, p, out, offs[p], offs[p+1]); err != nil {
						s.mu.Lock()
						if s.firstErr == nil {
							s.firstErr = err
						}
						s.mu.Unlock()
					}
				}()
				admitted = true
			} else {
				s.env.Pool().Release()
			}
		}
		if !admitted {
			if err := s.mergePartition(plans, p, out, offs[p], offs[p+1]); err != nil {
				s.mu.Lock()
				if s.firstErr == nil {
					s.firstErr = err
				}
				s.mu.Unlock()
				break
			}
		}
	}
	s.wg.Wait()
	if err := s.err(); err != nil {
		return nil, err
	}

	// 5. Stitch the boundary blocks and seal.
	if err := out.FinishSegmented(); err != nil {
		return nil, err
	}
	s.env.Stats.AddPartitionedMerges(s.cat, 1)
	s.forgetFences(runs)
	return out, nil
}
